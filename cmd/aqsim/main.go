// Command aqsim runs the paper's experiments and prints the tables and
// series of §5 (plus the motivating Figure 1 and conceptual Figure 3).
// Experiments are dispatched from the harness registry, run on a worker
// pool (each run owns its engine, so parallel batches are byte-identical
// to sequential ones), and optionally serialized to JSON.
//
// Usage:
//
//	aqsim -list                               # show registered experiments
//	aqsim -experiment all                     # everything (slow)
//	aqsim -experiment table2                  # one experiment
//	aqsim -experiment fig6,fig7 -quick        # reduced workload, two experiments
//	aqsim -experiment all -parallel 8         # saturate 8 workers
//	aqsim -experiment all -json out.json      # machine-readable results
//	aqsim -experiment fig6 -seeds 1,2,3       # multi-seed sweep
//	aqsim -experiment table2 -domains 4       # partitioned engines, same bytes
//	aqsim -bench -quick                       # harness speedup check (untracked output)
//	aqsim -benchcore                          # regenerate BENCH_simcore.json
//	aqsim -benchcore -cpuprofile cpu.pprof    # profile the hot path
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"aqueue/internal/experiments"
	"aqueue/internal/harness"
	"aqueue/internal/sim"
)

func main() {
	exp := flag.String("experiment", "all", "experiment name, comma list, or all")
	quick := flag.Bool("quick", false, "use reduced horizons/workloads")
	format := flag.String("format", "text", "output format: text|csv|none")
	seed := flag.Uint64("seed", 1, "workload seed")
	domains := flag.Int("domains", 1, "partition each run's topology into this many time-synced simulation domains (results are byte-identical for any value)")
	parallelDomains := flag.Bool("parallel-domains", false, "advance each run's domains on worker goroutines (needs -domains >= 2; results are byte-identical either way)")
	seeds := flag.String("seeds", "", "comma-separated seeds for a multi-seed sweep (overrides -seed)")
	parallel := flag.Int("parallel", 1, "concurrent runs (0 = GOMAXPROCS)")
	jsonOut := flag.String("json", "", "write a JSON results report to this path")
	list := flag.Bool("list", false, "list registered experiments and exit")
	bench := flag.Bool("bench", false, "run the benchmark mode (sequential vs parallel) and write -benchout")
	benchOut := flag.String("benchout", "BENCH_harness.json", "path of the benchmark record written by -bench")
	benchCore := flag.Bool("benchcore", false, "run the simulation-core benchmarks and write -benchcoreout")
	benchCoreOut := flag.String("benchcoreout", "BENCH_simcore.json", "path of the record written by -benchcore")
	burst := flag.Int("burst", sim.DefaultBurstSize, "burst size for the -benchcore forwarding macro-bench (0 disables burst draining)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memprofile := flag.String("memprofile", "", "write a heap profile to this path on exit")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatalf("creating %s: %v", *cpuprofile, err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("starting CPU profile: %v", err)
		}
		// Flushed on normal return; fatalf exits hard and skips profiles.
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer writeMemProfile(*memprofile)
	}

	switch *format {
	case "text", "csv", "none":
	default:
		fatalf("bad -format %q: want text, csv, or none", *format)
	}

	if *list {
		for _, name := range harness.Names() {
			fmt.Printf("%-10s %s\n", name, experiments.Description(name))
		}
		return
	}

	names := harness.Names()
	if *exp != "all" {
		names = splitList(*exp)
	}
	if *benchCore {
		runBenchCore(*parallel, *domains, *burst, *benchCoreOut)
		return
	}

	base := experiments.DefaultParams(*quick)
	base.Seed = *seed
	base.Domains = *domains
	base.Parallel = *parallelDomains
	seedList, err := parseSeeds(*seeds)
	if err != nil {
		fatalf("bad -seeds: %v", err)
	}

	jobs, err := harness.Jobs(names, seedList, base)
	if err != nil {
		fatalf("%v (use -list to see the registry)", err)
	}

	if *bench {
		runBench(jobs, *parallel, *benchOut)
		return
	}

	pool := &harness.Pool{Workers: *parallel}
	start := time.Now()
	results := pool.Run(jobs)
	elapsed := time.Since(start)

	failed := 0
	for _, r := range results {
		printResult(r, *format)
		if r.Error != "" {
			failed++
		}
	}
	if len(results) > 1 {
		fmt.Printf("[%d runs in %v, %d workers]\n", len(results), elapsed.Round(time.Millisecond), effectiveWorkers(*parallel, len(jobs)))
	}
	if *jsonOut != "" {
		report := harness.NewReport(effectiveWorkers(*parallel, len(jobs)), results)
		if err := report.WriteJSONFile(*jsonOut); err != nil {
			fatalf("writing %s: %v", *jsonOut, err)
		}
		fmt.Printf("[results written to %s]\n", *jsonOut)
	}
	if failed > 0 {
		fatalf("%d of %d runs failed", failed, len(results))
	}
}

// runBench executes the batch sequentially and in parallel, prints the
// comparison, and writes the machine-readable record.
func runBench(jobs []harness.Job, parallel int, path string) {
	workers := effectiveWorkers(parallel, len(jobs))
	fmt.Printf("benchmark: %d jobs, sequential then %d workers (GOMAXPROCS=%d)\n",
		len(jobs), workers, runtime.GOMAXPROCS(0))
	b, err := harness.RunBench(jobs, workers)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("sequential: %v\n", time.Duration(b.SequentialNS).Round(time.Millisecond))
	fmt.Printf("parallel:   %v (speedup %.2fx, utilization %.0f%%, identical=%v)\n",
		time.Duration(b.ParallelNS).Round(time.Millisecond), b.Speedup, 100*b.Utilization, b.Identical)
	if err := b.WriteJSONFile(path); err != nil {
		fatalf("writing %s: %v", path, err)
	}
	fmt.Printf("[benchmark written to %s]\n", path)
	if !b.Identical {
		fatalf("parallel results differ from sequential — determinism regression")
	}
}

func printResult(r *harness.Result, format string) {
	if r.Error != "" {
		fmt.Fprintf(os.Stderr, "[%s seed=%d FAILED: %s]\n\n", r.Name, r.Params.Seed, firstLine(r.Error))
		return
	}
	switch format {
	case "csv":
		for _, t := range r.Tables {
			fmt.Print(t.CSV())
			fmt.Println()
		}
	case "none":
	default:
		for _, t := range r.Tables {
			fmt.Println(t.Render())
		}
	}
	fmt.Printf("[%s seed=%d done in %v]\n\n", r.Name, r.Params.Seed,
		time.Duration(r.WallNS).Round(time.Millisecond))
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

func parseSeeds(s string) ([]uint64, error) {
	if s == "" {
		return nil, nil
	}
	var out []uint64
	for _, f := range splitList(s) {
		v, err := strconv.ParseUint(f, 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func effectiveWorkers(parallel, jobs int) int {
	if parallel < 1 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > jobs {
		parallel = jobs
	}
	return parallel
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// writeMemProfile dumps the live heap after a final GC, the same shape
// `go test -memprofile` produces.
func writeMemProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "creating %s: %v\n", path, err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "writing heap profile: %v\n", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
