// Command aqsim runs the paper's experiments and prints the tables and
// series of §5 (plus the motivating Figure 1 and conceptual Figure 3).
//
// Usage:
//
//	aqsim -experiment all            # everything (slow)
//	aqsim -experiment table2         # one experiment
//	aqsim -experiment fig6 -quick    # reduced workload for a fast look
//
// Experiments: fig1 fig3 fig6 fig7 fig8 fig9 fig10 fig11 fig12
// table2 table3 table4 all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"aqueue/internal/experiments"
	"aqueue/internal/sim"
)

func main() {
	exp := flag.String("experiment", "all", "experiment to run (fig1..fig12, table2..table4, all)")
	quick := flag.Bool("quick", false, "use reduced horizons/workloads")
	format := flag.String("format", "text", "output format: text|csv")
	seed := flag.Uint64("seed", 1, "workload seed")
	flag.Parse()
	outputFormat = *format

	horizon := 400 * sim.Millisecond
	flows := 150
	if *quick {
		horizon = 120 * sim.Millisecond
		flows = 40
	}

	runners := map[string]func(){
		"fig1": func() { show(experiments.Fig1(horizon)) },
		"fig3": func() { show(experiments.Fig3Table(8)) },
		"fig6": func() { show(experiments.Fig6(nil, flows, *seed)) },
		"fig7": func() { show(experiments.Fig7(nil, flows, *seed)) },
		"fig8": func() { show(experiments.Fig8(nil, horizon)) },
		"fig9": func() {
			a, b := experiments.Fig9(horizon / 4)
			show(a)
			show(b)
		},
		"fig10": func() {
			a, b := experiments.Fig10(flows, *seed)
			show(a)
			show(b)
		},
		"fig11":  func() { show(experiments.Fig11()) },
		"fig12":  func() { show(experiments.Fig12()) },
		"table2": func() { show(experiments.Table2(horizon)) },
		"table3": func() { show(experiments.Table3()) },
		"table4": func() {
			t, _ := experiments.Table4()
			show(t)
		},
		"extfabric": func() { show(experiments.ExtFabric(horizon)) },
		"extqueues": func() { show(experiments.ExtPerQueueTable(horizon)) },
	}
	order := []string{"fig1", "fig3", "fig6", "fig7", "fig8", "fig9", "fig10",
		"fig11", "fig12", "table2", "table3", "table4", "extfabric", "extqueues"}

	if *exp == "all" {
		for _, name := range order {
			timed(name, runners[name])
		}
		return
	}
	run, ok := runners[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; options: %v, all\n", *exp, order)
		os.Exit(2)
	}
	timed(*exp, run)
}

var outputFormat = "text"

func show(t *experiments.Table) {
	if outputFormat == "csv" {
		fmt.Print(t.CSV())
		fmt.Println()
		return
	}
	fmt.Println(t.Render())
}

func timed(name string, fn func()) {
	start := time.Now()
	fn()
	fmt.Printf("[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
}
