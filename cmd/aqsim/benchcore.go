package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"aqueue/internal/benchcore"
	"aqueue/internal/experiments"
	"aqueue/internal/harness"
	"aqueue/internal/sim"
)

// BenchCoreSchema versions the BENCH_simcore.json layout.
const BenchCoreSchema = "aq-benchcore/v1"

// coreMetrics is one measured point of the simulation-core benchmarks.
type coreMetrics struct {
	Engine     benchcore.EngineResult     `json:"engine"`
	Forwarding benchcore.ForwardingResult `json:"forwarding"`
	Drain      *benchcore.DrainResult     `json:"drain,omitempty"`
	Timers     *benchcore.TimersResult    `json:"timers,omitempty"`
	FatTree    *benchcore.FatTreeResult   `json:"fattree,omitempty"`
	// FatTreeWide is the k=8 fabric, measured only on hosts whose
	// GOMAXPROCS can back the domain workers — it carries the parallel
	// speedup acceptance gate (see benchcore.SpeedupTarget).
	FatTreeWide *benchcore.FatTreeResult `json:"fattree_wide,omitempty"`
	// Fluid is the million-entity scenario: fluid background entities on
	// every edge switch of a k=8 fat tree sharing host uplinks with a
	// packet foreground, plus the fidelity delta of the hybrid split
	// measured by the paired fluid-background experiment.
	Fluid *fluidMetrics  `json:"fluid,omitempty"`
	Sweep *harness.Bench `json:"sweep,omitempty"`
	// Note documents provenance (e.g. that a baseline was measured before
	// a refactor landed).
	Note string `json:"note,omitempty"`
}

// fluidMetrics pairs the scale measurement with the fidelity check that
// licenses it: the entity-epoch throughput numbers only matter if replacing
// background packets with rate ODEs leaves packet-level foreground results
// within tolerance of the all-packet baseline.
type fluidMetrics struct {
	Scale benchcore.FluidScaleResult `json:"scale"`
	// Scale10M is the 10M-entity variant: AQ grants shared across entity
	// groups plus a quiescent fill population, gated on the per-entity
	// heap budget (benchcore.HeapBudgetPerEntity).
	Scale10M *benchcore.FluidScaleResult `json:"scale_10m,omitempty"`
	// FidelityDeltaPct is experiments.FluidBG's worst gated delta
	// (guarantee precision, Jain fairness, workload completion) between the
	// packet-background and fluid-background runs, in percent.
	FidelityDeltaPct     float64 `json:"fidelity_delta_pct"`
	FidelityTolerancePct float64 `json:"fidelity_tolerance_pct"`
}

// coreRecord is the BENCH_simcore.json document: the current measurement
// plus a preserved baseline so before/after stays in one artifact. When the
// output file already exists its baseline section is carried over verbatim;
// regenerating never erases the reference point.
type coreRecord struct {
	Schema     string       `json:"schema"`
	GoVersion  string       `json:"go_version"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Baseline   *coreMetrics `json:"baseline,omitempty"`
	Current    coreMetrics  `json:"current"`
}

// runBenchCore measures the simulation-core benchmarks — engine event
// churn, single-bottleneck forwarding, the partitioned fat-tree fabric,
// and the full quick experiment sweep — and writes the record to path,
// preserving any existing baseline.
func runBenchCore(parallel, domains, burst int, path string) {
	const (
		engineEvents   = 5_000_000
		forwardingRuns = 20
	)

	fmt.Printf("benchcore: engine churn, %d events\n", engineEvents)
	eng := benchcore.MeasureEngine(engineEvents)
	fmt.Printf("  %.1f ns/event (%.2fM events/sec)\n", eng.NsPerEvent, eng.EventsPerSec/1e6)

	fmt.Printf("benchcore: single-bottleneck forwarding, %d x 10ms runs, burst %d\n", forwardingRuns, burst)
	fwd := benchcore.MeasureForwarding(forwardingRuns, 10*sim.Millisecond, burst)
	fmt.Printf("  %.0f ns/op, %.0f allocs/op, %d pkts/op (%.0f ns/pkt, %.2fM pkts/sec)\n",
		fwd.NsPerOp, fwd.AllocsPerOp, fwd.PacketsPerOp, fwd.NsPerPacket, fwd.PacketsPerSec/1e6)
	fmt.Printf("  %.2f events/pkt burst vs %.2f per-packet (%d inlined/op, identical=%v)\n",
		fwd.EventsPerPacket, fwd.NoBurstEventsPerPacket, fwd.InlinedPerOp, fwd.Identical)

	const drainPackets = 20_000
	fmt.Printf("benchcore: drain run, %d x %d-packet back-to-back drains, burst %d\n",
		forwardingRuns, drainPackets, burst)
	drn := benchcore.MeasureDrain(forwardingRuns, drainPackets, burst)
	fmt.Printf("  %.4f events/pkt burst vs %.2f per-packet (%d inlined/op, %.0f ns/pkt, identical=%v)\n",
		drn.EventsPerPacket, drn.NoBurstEventsPerPacket, drn.InlinedPerOp, drn.NsPerPacket, drn.Identical)

	const timerFlows = 64
	fmt.Printf("benchcore: timer-heavy churn, %d flows x 20ms, wheel vs heap\n", timerFlows)
	tmr := benchcore.MeasureTimers(timerFlows, 20*sim.Millisecond)
	fmt.Printf("  wheel %v, heap %v (speedup %.2fx, %d pkts/op, identical=%v)\n",
		time.Duration(tmr.WheelNS).Round(time.Millisecond),
		time.Duration(tmr.HeapNS).Round(time.Millisecond),
		tmr.Speedup, tmr.PacketsPerOp, tmr.Identical)

	ftDomains := domains
	if ftDomains < 2 {
		ftDomains = 2
	}
	fmt.Printf("benchcore: fat-tree fabric (k=4), single engine vs %d domains\n", ftDomains)
	ft := benchcore.MeasureFatTree(4, 10*sim.Millisecond, ftDomains)
	printFatTree(&ft)

	// The wide-fabric speedup gate arms itself the moment the host has the
	// cores: on a machine where the parallel pass is measurable, a k=8
	// fabric must come in at or above benchcore.SpeedupTarget, or the
	// benchmark run fails. On narrower hosts the pass is skipped entirely —
	// recording a cooperative k=8 "speedup" would be fiction.
	var ftWide *benchcore.FatTreeResult
	if runtime.GOMAXPROCS(0) >= ftDomains {
		fmt.Printf("benchcore: wide fat-tree fabric (k=8), single engine vs %d domains\n", ftDomains)
		wide := benchcore.MeasureFatTree(8, 10*sim.Millisecond, ftDomains)
		printFatTree(&wide)
		ftWide = &wide
	} else {
		fmt.Printf("benchcore: skipping wide (k=8) fat tree — GOMAXPROCS=%d cannot back %d domain workers\n",
			runtime.GOMAXPROCS(0), ftDomains)
	}

	// The million-entity fluid scenario: the first headline number at
	// production entity counts. It is recorded alongside the fidelity delta
	// that licenses it — scale bought by the hybrid split is only worth
	// recording if the split is unobservable to the packet foreground.
	const (
		fluidEntities = 1_000_000
		fluidFlows    = 64
	)
	fmt.Printf("benchcore: fluid scale, %d entities + %d packet flows on a k=8 fat tree, %d domains\n",
		fluidEntities, fluidFlows, ftDomains)
	fls := benchcore.MeasureFluidScale(benchcore.FluidScaleSpec{
		K: 8, Entities: fluidEntities, FGFlows: fluidFlows,
		Epoch: 500 * sim.Microsecond, Horizon: 5 * sim.Millisecond,
	}, ftDomains)
	printFluidScale(&fls)
	// The 10M-entity variant: AQ grants shared across groups of entities
	// (the paper's tenant-level grant carried by many flows) plus a
	// quiescent untagged fill the lane folds in O(1) per cohort-epoch.
	// This record gates on the heap budget — the whole population must fit
	// in HeapBudgetPerEntity bytes of host memory per entity.
	const fluid10M = 10_000_000
	fmt.Printf("benchcore: fluid scale x10, %d entities (%d/AQ, 25%% quiescent fill), %d domains\n",
		fluid10M, 16, ftDomains)
	fls10 := benchcore.MeasureFluidScale(benchcore.FluidScaleSpec{
		K: 8, Entities: fluid10M, FGFlows: fluidFlows,
		Epoch: 500 * sim.Microsecond, Horizon: 2 * sim.Millisecond,
		EntitiesPerAQ: 16, FillFrac: 0.25,
	}, ftDomains)
	printFluidScale(&fls10)
	fmt.Printf("benchcore: fluid fidelity gate (paired packet/fluid background runs)\n")
	fid := experiments.FluidBG(60*sim.Millisecond, 12, 1, 1)
	fluidSec := fluidMetrics{
		Scale:                fls,
		Scale10M:             &fls10,
		FidelityDeltaPct:     fid.MaxDeltaPct(),
		FidelityTolerancePct: experiments.FluidBGTolerancePct,
	}
	fmt.Printf("  worst delta %.2f%% (guarantee %.2f%%, Jain %.2f%%, completion %.2f%%; tolerance %.1f%%)\n",
		fid.MaxDeltaPct(), fid.GuaranteeDeltaPct, fid.JainDeltaPct, fid.CompletionDeltaPct,
		experiments.FluidBGTolerancePct)

	jobs, err := harness.Jobs(harness.Names(), nil, experiments.DefaultParams(true))
	if err != nil {
		fatalf("building sweep jobs: %v", err)
	}
	// The sweep's whole point is sequential vs parallel, so -parallel 1
	// (the global default) means "as wide as the machine allows", capped
	// at 4 to keep the recorded configuration comparable across hosts.
	// RunBench itself refuses worker counts beyond GOMAXPROCS.
	workers := parallel
	if workers <= 1 {
		workers = runtime.GOMAXPROCS(0)
		if workers > 4 {
			workers = 4
		}
	}
	fmt.Printf("benchcore: quick sweep, %d jobs, sequential then %d workers (GOMAXPROCS=%d)\n",
		len(jobs), workers, runtime.GOMAXPROCS(0))
	if runtime.GOMAXPROCS(0) < 4 {
		fmt.Printf("  [warning: GOMAXPROCS=%d — a multicore speedup cannot be demonstrated on this host]\n",
			runtime.GOMAXPROCS(0))
	}
	sweep, err := harness.RunBench(jobs, workers)
	if err != nil {
		fatalf("sweep: %v", err)
	}
	fmt.Printf("  sequential %v, parallel %v (speedup %.2fx at %d/%d workers, utilization %.0f%%, identical=%v)\n",
		time.Duration(sweep.SequentialNS).Round(time.Millisecond),
		time.Duration(sweep.ParallelNS).Round(time.Millisecond),
		sweep.Speedup, sweep.Workers, sweep.RequestedWorkers, 100*sweep.Utilization, sweep.Identical)

	rec := coreRecord{
		Schema:     BenchCoreSchema,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Baseline:   readBaseline(path),
		Current:    coreMetrics{Engine: eng, Forwarding: fwd, Drain: &drn, Timers: &tmr, FatTree: &ft, FatTreeWide: ftWide, Fluid: &fluidSec, Sweep: sweep},
	}
	if rec.Baseline != nil {
		b, c := rec.Baseline.Forwarding, rec.Current.Forwarding
		if b.NsPerOp > 0 && b.AllocsPerOp > 0 {
			fmt.Printf("benchcore: vs baseline — forwarding %.2fx time, %.0fx allocs\n",
				b.NsPerOp/c.NsPerOp, b.AllocsPerOp/c.AllocsPerOp)
		}
	}
	if err := writeJSON(path, &rec); err != nil {
		fatalf("writing %s: %v", path, err)
	}
	fmt.Printf("[benchcore written to %s]\n", path)
	if !sweep.Identical {
		fatalf("parallel sweep differs from sequential — determinism regression")
	}
	if !ft.Identical {
		fatalf("partitioned fat-tree run differs from single-engine — determinism regression")
	}
	if ftWide != nil {
		if !ftWide.Identical {
			fatalf("partitioned wide fat-tree run differs from single-engine — determinism regression")
		}
		if err := ftWide.CheckSpeedup(); err != nil {
			fatalf("%v", err)
		}
	}
	if !tmr.Identical {
		fatalf("wheel timer run differs from heap run — determinism regression")
	}
	if !fls.Identical {
		fatalf("partitioned fluid-scale run differs from single-engine — determinism regression")
	}
	if !fls10.Identical {
		fatalf("partitioned 10M fluid-scale run differs from single-engine — determinism regression")
	}
	if fls10.HeapBytesPerEntity > benchcore.HeapBudgetPerEntity {
		fatalf("10M fluid-scale heap %.1f B/entity exceeds the %.0f B/entity budget",
			fls10.HeapBytesPerEntity, benchcore.HeapBudgetPerEntity)
	}
	if fluidSec.FidelityDeltaPct > fluidSec.FidelityTolerancePct {
		fatalf("fluid fidelity delta %.2f%% exceeds the %.1f%% tolerance",
			fluidSec.FidelityDeltaPct, fluidSec.FidelityTolerancePct)
	}
	if !fwd.Identical {
		fatalf("burst forwarding run differs from per-packet run — determinism regression")
	}
	if !drn.Identical {
		fatalf("burst drain run differs from per-packet run — determinism regression")
	}
}

// printFatTree reports one fat-tree measurement: wall times, the window
// count and barrier cost the lookahead work is judged by, and the
// per-domain load balance.
func printFatTree(ft *benchcore.FatTreeResult) {
	if ft.ParallelMeasured {
		fmt.Printf("  single %v, partitioned %v (speedup %.2fx over %d windows, identical=%v)\n",
			time.Duration(ft.SingleNS).Round(time.Millisecond),
			time.Duration(ft.PartitionedNS).Round(time.Millisecond),
			ft.Speedup, ft.Windows, ft.Identical)
	} else {
		fmt.Printf("  single %v, partitioned %v cooperatively over %d windows (identical=%v)\n",
			time.Duration(ft.SingleNS).Round(time.Millisecond),
			time.Duration(ft.PartitionedNS).Round(time.Millisecond),
			ft.Windows, ft.Identical)
		fmt.Printf("  [%s]\n", ft.Note)
	}
	fmt.Printf("  sync: %d msgs over %d flushes, barrier %v of %v (utilization %.0f%%)\n",
		ft.FlushedMsgs, ft.Flushes,
		time.Duration(ft.BarrierNS).Round(time.Microsecond),
		time.Duration(ft.AdvanceNS).Round(time.Millisecond),
		100*ft.Utilization)
	for _, d := range ft.DomainLoads {
		fmt.Printf("    domain %d: %d runs, busy %v\n",
			d.Domain, d.Runs, time.Duration(d.BusyNS).Round(time.Microsecond))
	}
}

// printFluidScale reports the million-entity measurement: the per-entity-
// epoch cost, throughput, memory (both the paper's 15 B/AQ switch model and
// the measured host heap), and the cross-domain determinism check.
func printFluidScale(r *benchcore.FluidScaleResult) {
	fmt.Printf("  %.0f ns/entity-epoch (%.1fM entity-epochs/sec, %d entity-epochs over %d epochs)\n",
		r.NsPerEntityEpoch, r.EntityEpochsPerSec/1e6, r.EntityEpochs, r.Epochs)
	fmt.Printf("  setup %v, single %v, partitioned %v",
		time.Duration(r.SetupNS).Round(time.Millisecond),
		time.Duration(r.SingleNS).Round(time.Millisecond),
		time.Duration(r.PartitionedNS).Round(time.Millisecond))
	if r.ParallelMeasured {
		fmt.Printf(" (speedup %.2fx)", r.Speedup)
	} else {
		fmt.Printf(" cooperatively")
	}
	fmt.Printf(", identical=%v\n", r.Identical)
	fmt.Printf("  fluid delivered %.1f MB, shed %.1f MB, fg %d pkts; AQ model %.1f MB, heap %.0f MB",
		r.FluidDeliveredBytes/1e6, r.FluidDroppedBytes/1e6, r.FGPackets,
		float64(r.AQModelBytes)/1e6, float64(r.HeapBytes)/1e6)
	if r.HeapBytesPerEntity > 0 {
		fmt.Printf(" (%.1f B/entity)", r.HeapBytesPerEntity)
	}
	fmt.Printf("\n")
	if r.SkippedEntityEpochs > 0 {
		fmt.Printf("  quiescent skip: %d of %d entity-epochs (%.1f%%)\n",
			r.SkippedEntityEpochs, r.EntityEpochs, r.QuiescentSkipPct)
	}
	if r.Note != "" {
		fmt.Printf("  [%s]\n", r.Note)
	}
}

// readBaseline carries the baseline section over from an existing record,
// so regenerating the artifact keeps the reference measurement.
func readBaseline(path string) *coreMetrics {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var old coreRecord
	if err := json.Unmarshal(data, &old); err != nil {
		fmt.Fprintf(os.Stderr, "[ignoring unparseable %s: %v]\n", path, err)
		return nil
	}
	return old.Baseline
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
