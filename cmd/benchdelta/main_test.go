package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestReportToleratesV1Records feeds the delta report a real pre-PR record
// (harness-bench/v1 sweep section: no utilization, no fattree section at
// all) as the baseline against a current-schema record. Every entry both
// records carry must diff normally; every entry the old record predates
// must degrade to "incomparable" instead of failing the run or reporting
// a fabricated zero.
func TestReportToleratesV1Records(t *testing.T) {
	var sb strings.Builder
	err := report(&sb, filepath.Join("testdata", "v1.json"), filepath.Join("testdata", "v2.json"))
	if err != nil {
		t.Fatalf("report on v1 baseline: %v", err)
	}
	out := sb.String()

	for _, want := range []string{
		"forwarding ns/packet",
		"engine ns/event",
	} {
		line := lineWith(t, out, want)
		if strings.Contains(line, "incomparable") {
			t.Errorf("%q should be comparable between the fixtures:\n%s", want, line)
		}
		if !strings.Contains(line, "%") {
			t.Errorf("%q row has no percentage delta:\n%s", want, line)
		}
	}
	for _, want := range []string{
		"forwarding events/packet",
		"sweep utilization",
		"timers wheel ns/op",
		"timers heap ns/op",
		"timers identical",
		"fat-tree single-engine ns/op",
		"fat-tree partitioned ns/op",
		"fat-tree windows/run",
		"fat-tree barrier ns/op",
		"fat-tree utilization",
		"fat-tree identical",
		"fluid ns/entity-epoch",
		"fluid entity-epochs/sec",
		"fluid identical",
		"fluid fidelity delta %",
	} {
		line := lineWith(t, out, want)
		if !strings.Contains(line, "incomparable") {
			t.Errorf("%q predates the v1 record and must be incomparable:\n%s", want, line)
		}
	}
	// The v1 sweep does carry speedup and identical — those stay comparable.
	if line := lineWith(t, out, "sweep speedup"); strings.Contains(line, "incomparable") {
		t.Errorf("sweep speedup exists in both fixtures:\n%s", line)
	}
	if line := lineWith(t, out, "sweep identical"); strings.Contains(line, "incomparable") {
		t.Errorf("sweep identical exists in both fixtures:\n%s", line)
	}
}

// TestReportSymmetricAbsence swaps the fixtures: a fresh v1 record against
// a current baseline must also degrade per entry, not fail.
func TestReportSymmetricAbsence(t *testing.T) {
	var sb strings.Builder
	err := report(&sb, filepath.Join("testdata", "v2.json"), filepath.Join("testdata", "v1.json"))
	if err != nil {
		t.Fatalf("report with v1 as fresh side: %v", err)
	}
	if line := lineWith(t, sb.String(), "sweep utilization"); !strings.Contains(line, "incomparable") {
		t.Errorf("sweep utilization must be incomparable when the fresh side lacks it:\n%s", line)
	}
}

// TestReportRejectsNonRecords keeps the one hard failure: unreadable input.
func TestReportRejectsNonRecords(t *testing.T) {
	var sb strings.Builder
	if err := report(&sb, filepath.Join("testdata", "v1.json"), filepath.Join("testdata", "missing.json")); err == nil {
		t.Fatal("want error for missing file")
	}
}

// renderPair runs the report over two inline record bodies.
func renderPair(t *testing.T, oldBody, newBody string) string {
	t.Helper()
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	if err := os.WriteFile(oldPath, []byte(oldBody), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newPath, []byte(newBody), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := report(&sb, oldPath, newPath); err != nil {
		t.Fatalf("report: %v", err)
	}
	return sb.String()
}

func TestReportSameSpeedHostsOmitsNormalization(t *testing.T) {
	out := renderPair(t,
		`{"schema":"s1","current":{"engine":{"ns_per_event":40},"forwarding":{"ns_per_packet":1000}}}`,
		`{"schema":"s1","current":{"engine":{"ns_per_event":42},"forwarding":{"ns_per_packet":1050}}}`)
	if strings.Contains(out, "speed-normalized") {
		t.Fatalf("normalization row printed for same-speed hosts:\n%s", out)
	}
	if !strings.Contains(out, "| forwarding ns/packet | 1000.00 | 1050.00 | +5.0% |") {
		t.Fatalf("raw forwarding row missing or wrong:\n%s", out)
	}
}

func TestReportCrossMachineNormalization(t *testing.T) {
	// The "new" host is ~2x faster (engine 20 vs 40 ns/event). Raw
	// forwarding reads as a huge improvement (1000 -> 520), but in
	// engine-event units it is 1000/40=25 vs 520/20=26: a +4% residual.
	out := renderPair(t,
		`{"schema":"s1","current":{"engine":{"ns_per_event":40},"forwarding":{"ns_per_packet":1000}}}`,
		`{"schema":"s1","current":{"engine":{"ns_per_event":20},"forwarding":{"ns_per_packet":520}}}`)
	if !strings.Contains(out, "| forwarding events-equivalent/packet (speed-normalized) | 25.00 | 26.00 | +4.0% |") {
		t.Fatalf("normalized row missing or wrong:\n%s", out)
	}
	if !strings.Contains(out, "engine churn differs -50% between hosts") {
		t.Fatalf("speed hint missing:\n%s", out)
	}
	// The raw row still prints — normalization augments, never hides data.
	if !strings.Contains(out, "| forwarding ns/packet | 1000.00 | 520.00 | -48.0% |") {
		t.Fatalf("raw forwarding row should still print:\n%s", out)
	}
}

func TestReportNormalizationNeedsBothEngines(t *testing.T) {
	// A baseline that predates the engine section can't be normalized;
	// the report must not invent a factor.
	out := renderPair(t,
		`{"schema":"s1","current":{"forwarding":{"ns_per_packet":1000}}}`,
		`{"schema":"s1","current":{"engine":{"ns_per_event":20},"forwarding":{"ns_per_packet":520}}}`)
	if strings.Contains(out, "speed-normalized") {
		t.Fatalf("normalization row printed without baseline engine data:\n%s", out)
	}
}

// TestReportFatTreeSyncRowsPresenceAware pins the per-row degradation for
// the sync-cost columns: a baseline whose fattree section carries windows
// but predates barrier_ns/utilization diffs the windows row normally while
// the newer rows degrade to incomparable.
func TestReportFatTreeSyncRowsPresenceAware(t *testing.T) {
	out := renderPair(t,
		`{"schema":"s1","current":{"fattree":{"windows":2000,"single_ns":10,"partitioned_ns":20,"identical":true}}}`,
		`{"schema":"s1","current":{"fattree":{"windows":1000,"barrier_ns":5000000,"utilization":0.5,"single_ns":10,"partitioned_ns":20,"identical":true}}}`)
	if line := lineWith(t, out, "fat-tree windows/run"); !strings.Contains(line, "-50.0%") {
		t.Errorf("windows row should diff normally:\n%s", line)
	}
	if line := lineWith(t, out, "fat-tree barrier ns/op"); !strings.Contains(line, "incomparable") {
		t.Errorf("barrier row must degrade when the baseline predates it:\n%s", line)
	}
	if line := lineWith(t, out, "fat-tree utilization"); !strings.Contains(line, "incomparable") {
		t.Errorf("utilization row must degrade when the baseline predates it:\n%s", line)
	}
}

// TestReportFluidRowsPresenceAware pins the fluid-section behaviour both
// ways: against a baseline that predates the section every fluid row
// degrades to incomparable, and once both records carry it the rows diff
// normally with the entity counts surfaced in the throughput label.
func TestReportFluidRowsPresenceAware(t *testing.T) {
	withFluid := `{"schema":"s1","current":{"fluid":{` +
		`"scale":{"entities":1000000,"ns_per_entity_epoch":114,"entity_epochs_per_sec":8700000,"identical":true},` +
		`"fidelity_delta_pct":1.45,"fidelity_tolerance_pct":5}}}`
	without := `{"schema":"s1","current":{"engine":{"ns_per_event":40}}}`

	out := renderPair(t, without, withFluid)
	for _, name := range []string{
		"fluid ns/entity-epoch",
		"fluid entity-epochs/sec",
		"fluid identical",
		"fluid fidelity delta %",
	} {
		if line := lineWith(t, out, name); !strings.Contains(line, "incomparable") {
			t.Errorf("%q must degrade when the baseline predates the fluid section:\n%s", name, line)
		}
	}

	newer := `{"schema":"s1","current":{"fluid":{` +
		`"scale":{"entities":1000000,"ns_per_entity_epoch":100,"entity_epochs_per_sec":10000000,"identical":true},` +
		`"fidelity_delta_pct":2.9,"fidelity_tolerance_pct":5}}}`
	out = renderPair(t, withFluid, newer)
	if line := lineWith(t, out, "fluid ns/entity-epoch (1000000→1000000 entities)"); !strings.Contains(line, "-12.3%") {
		t.Errorf("fluid throughput row should diff normally:\n%s", line)
	}
	if line := lineWith(t, out, "fluid fidelity delta %"); !strings.Contains(line, "+100.0%") {
		t.Errorf("fidelity row should diff normally:\n%s", line)
	}
	if line := lineWith(t, out, "fluid identical"); strings.Contains(line, "incomparable") {
		t.Errorf("fluid identical exists on both sides:\n%s", line)
	}
}

// TestReportFluidHeapAndSkipRowsPresenceAware pins the next fluid schema
// generation: heap bytes/entity, quiescent-skip %, and the 10M-entity
// section. A baseline whose fluid section predates them keeps its existing
// rows comparable while every new row degrades; once both sides carry
// them, they diff normally.
func TestReportFluidHeapAndSkipRowsPresenceAware(t *testing.T) {
	older := `{"schema":"s1","current":{"fluid":{` +
		`"scale":{"entities":1000000,"ns_per_entity_epoch":114,"entity_epochs_per_sec":8700000,"identical":true},` +
		`"fidelity_delta_pct":1.45}}}`
	newer := `{"schema":"s1","current":{"fluid":{` +
		`"scale":{"entities":1000000,"ns_per_entity_epoch":50,"entity_epochs_per_sec":20000000,` +
		`"heap_bytes_per_entity":280,"identical":true},` +
		`"scale_10m":{"entities":10000000,"ns_per_entity_epoch":31,"entity_epochs_per_sec":32000000,` +
		`"heap_bytes_per_entity":84,"quiescent_skip_pct":18.8,"identical":true},` +
		`"fidelity_delta_pct":1.45}}}`

	out := renderPair(t, older, newer)
	if line := lineWith(t, out, "fluid ns/entity-epoch (1000000→1000000 entities)"); strings.Contains(line, "incomparable") {
		t.Errorf("existing throughput row must stay comparable:\n%s", line)
	}
	for _, name := range []string{
		"fluid heap bytes/entity",
		"fluid quiescent-skip %",
		"fluid 10M ns/entity-epoch",
		"fluid 10M heap bytes/entity",
		"fluid 10M quiescent-skip %",
		"fluid 10M identical",
	} {
		if line := lineWith(t, out, name); !strings.Contains(line, "incomparable") {
			t.Errorf("%q must degrade against a baseline that predates it:\n%s", name, line)
		}
	}

	newest := `{"schema":"s1","current":{"fluid":{` +
		`"scale":{"entities":1000000,"ns_per_entity_epoch":45,"entity_epochs_per_sec":22000000,` +
		`"heap_bytes_per_entity":140,"identical":true},` +
		`"scale_10m":{"entities":10000000,"ns_per_entity_epoch":31,"entity_epochs_per_sec":32000000,` +
		`"heap_bytes_per_entity":84,"quiescent_skip_pct":37.6,"identical":true},` +
		`"fidelity_delta_pct":1.45}}}`
	out = renderPair(t, newer, newest)
	if line := lineWith(t, out, "fluid heap bytes/entity"); !strings.Contains(line, "-50.0%") {
		t.Errorf("heap row should diff normally:\n%s", line)
	}
	if line := lineWith(t, out, "fluid 10M quiescent-skip %"); !strings.Contains(line, "+100.0%") {
		t.Errorf("10M skip row should diff normally:\n%s", line)
	}
	if line := lineWith(t, out, "fluid 10M identical"); strings.Contains(line, "incomparable") {
		t.Errorf("10M identical exists on both sides:\n%s", line)
	}
}

// lineWith returns the single report line containing the substring.
func lineWith(t *testing.T, out, sub string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, sub) {
			return line
		}
	}
	t.Fatalf("report has no line containing %q:\n%s", sub, out)
	return ""
}
