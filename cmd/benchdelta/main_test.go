package main

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestReportToleratesV1Records feeds the delta report a real pre-PR record
// (harness-bench/v1 sweep section: no utilization, no fattree section at
// all) as the baseline against a current-schema record. Every entry both
// records carry must diff normally; every entry the old record predates
// must degrade to "incomparable" instead of failing the run or reporting
// a fabricated zero.
func TestReportToleratesV1Records(t *testing.T) {
	var sb strings.Builder
	err := report(&sb, filepath.Join("testdata", "v1.json"), filepath.Join("testdata", "v2.json"))
	if err != nil {
		t.Fatalf("report on v1 baseline: %v", err)
	}
	out := sb.String()

	for _, want := range []string{
		"forwarding ns/packet",
		"engine ns/event",
	} {
		line := lineWith(t, out, want)
		if strings.Contains(line, "incomparable") {
			t.Errorf("%q should be comparable between the fixtures:\n%s", want, line)
		}
		if !strings.Contains(line, "%") {
			t.Errorf("%q row has no percentage delta:\n%s", want, line)
		}
	}
	for _, want := range []string{
		"forwarding events/packet",
		"sweep utilization",
		"timers wheel ns/op",
		"timers heap ns/op",
		"timers identical",
		"fat-tree single-engine ns/op",
		"fat-tree partitioned ns/op",
		"fat-tree identical",
	} {
		line := lineWith(t, out, want)
		if !strings.Contains(line, "incomparable") {
			t.Errorf("%q predates the v1 record and must be incomparable:\n%s", want, line)
		}
	}
	// The v1 sweep does carry speedup and identical — those stay comparable.
	if line := lineWith(t, out, "sweep speedup"); strings.Contains(line, "incomparable") {
		t.Errorf("sweep speedup exists in both fixtures:\n%s", line)
	}
	if line := lineWith(t, out, "sweep identical"); strings.Contains(line, "incomparable") {
		t.Errorf("sweep identical exists in both fixtures:\n%s", line)
	}
}

// TestReportSymmetricAbsence swaps the fixtures: a fresh v1 record against
// a current baseline must also degrade per entry, not fail.
func TestReportSymmetricAbsence(t *testing.T) {
	var sb strings.Builder
	err := report(&sb, filepath.Join("testdata", "v2.json"), filepath.Join("testdata", "v1.json"))
	if err != nil {
		t.Fatalf("report with v1 as fresh side: %v", err)
	}
	if line := lineWith(t, sb.String(), "sweep utilization"); !strings.Contains(line, "incomparable") {
		t.Errorf("sweep utilization must be incomparable when the fresh side lacks it:\n%s", line)
	}
}

// TestReportRejectsNonRecords keeps the one hard failure: unreadable input.
func TestReportRejectsNonRecords(t *testing.T) {
	var sb strings.Builder
	if err := report(&sb, filepath.Join("testdata", "v1.json"), filepath.Join("testdata", "missing.json")); err == nil {
		t.Fatal("want error for missing file")
	}
}

// lineWith returns the single report line containing the substring.
func lineWith(t *testing.T, out, sub string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, sub) {
			return line
		}
	}
	t.Fatalf("report has no line containing %q:\n%s", sub, out)
	return ""
}
