// Command benchdelta compares two BENCH_simcore.json records and prints a
// markdown table of the interesting deltas — forwarding ns/packet,
// allocs/op, engine ns/event, and sweep speedup/utilization. CI runs it
// with the committed record and a freshly regenerated one and appends the
// output to the job summary; it is informational and never fails on a
// slow result (shared runners are noisy), only on unreadable input.
//
// Usage:
//
//	benchdelta OLD.json NEW.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// record mirrors the parts of the aq-benchcore/v1 document the delta
// report needs; unknown fields are ignored so schema growth stays
// backward compatible.
type record struct {
	Schema     string  `json:"schema"`
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Current    metrics `json:"current"`
}

type metrics struct {
	Engine struct {
		NsPerEvent float64 `json:"ns_per_event"`
	} `json:"engine"`
	Forwarding struct {
		NsPerPacket float64 `json:"ns_per_packet"`
		AllocsPerOp float64 `json:"allocs_per_op"`
	} `json:"forwarding"`
	Sweep *struct {
		Workers     int     `json:"workers"`
		Speedup     float64 `json:"speedup"`
		Utilization float64 `json:"utilization"`
		Identical   bool    `json:"identical"`
	} `json:"sweep"`
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchdelta OLD.json NEW.json")
		os.Exit(2)
	}
	oldRec, err := read(os.Args[1])
	if err != nil {
		fatalf("%s: %v", os.Args[1], err)
	}
	newRec, err := read(os.Args[2])
	if err != nil {
		fatalf("%s: %v", os.Args[2], err)
	}

	fmt.Printf("### Simulation-core benchmark delta\n\n")
	fmt.Printf("Baseline `%s` (%s, GOMAXPROCS=%d) vs fresh `%s` (%s, GOMAXPROCS=%d).\n\n",
		os.Args[1], oldRec.GoVersion, oldRec.GOMAXPROCS,
		os.Args[2], newRec.GoVersion, newRec.GOMAXPROCS)
	fmt.Printf("| metric | baseline | fresh | delta |\n")
	fmt.Printf("|---|---:|---:|---:|\n")
	row("forwarding ns/packet", oldRec.Current.Forwarding.NsPerPacket, newRec.Current.Forwarding.NsPerPacket)
	row("forwarding allocs/op", oldRec.Current.Forwarding.AllocsPerOp, newRec.Current.Forwarding.AllocsPerOp)
	row("engine ns/event", oldRec.Current.Engine.NsPerEvent, newRec.Current.Engine.NsPerEvent)
	if o, n := oldRec.Current.Sweep, newRec.Current.Sweep; o != nil && n != nil {
		row(fmt.Sprintf("sweep speedup (%d→%d workers)", o.Workers, n.Workers), o.Speedup, n.Speedup)
		row("sweep utilization", o.Utilization, n.Utilization)
		fmt.Printf("| sweep identical | %v | %v | |\n", o.Identical, n.Identical)
	}
	fmt.Println()
	fmt.Println("_Lower is better for the first three rows; numbers from shared runners are noisy._")
}

func row(name string, oldV, newV float64) {
	delta := "n/a"
	if oldV != 0 {
		delta = fmt.Sprintf("%+.1f%%", (newV-oldV)/oldV*100)
	}
	fmt.Printf("| %s | %.2f | %.2f | %s |\n", name, oldV, newV, delta)
}

func read(path string) (*record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r record
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	if r.Schema == "" {
		return nil, fmt.Errorf("no schema field — not a benchcore record")
	}
	return &r, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
