// Command benchdelta compares two BENCH_simcore.json records and prints a
// markdown table of the interesting deltas — forwarding ns/packet,
// allocs/op, engine ns/event, fat-tree partitioning overhead, fluid-lane
// entity throughput and fidelity, and sweep speedup/utilization. CI runs it with the committed record and a freshly
// regenerated one and appends the output to the job summary; it is
// informational and never fails on a slow result (shared runners are
// noisy), only on unreadable input.
//
// The record format grows across PRs (the sweep section, then the fattree
// section, arrived after the first committed records), so each table row
// degrades independently: an entry absent on either side is reported as
// "incomparable" instead of failing the comparison or inventing a zero.
//
// Usage:
//
//	benchdelta OLD.json NEW.json
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// record mirrors the parts of the aq-benchcore document the delta report
// needs. Every leaf is a pointer so that a field a record predates is
// distinguishable from a measured zero; unknown fields are ignored so
// schema growth stays backward compatible in the other direction too.
type record struct {
	Schema     string  `json:"schema"`
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Current    metrics `json:"current"`
}

type metrics struct {
	Engine *struct {
		NsPerEvent *float64 `json:"ns_per_event"`
	} `json:"engine"`
	Forwarding *struct {
		NsPerPacket     *float64 `json:"ns_per_packet"`
		AllocsPerOp     *float64 `json:"allocs_per_op"`
		EventsPerPacket *float64 `json:"events_per_packet"`
	} `json:"forwarding"`
	Drain *struct {
		EventsPerPacket *float64 `json:"events_per_packet"`
		Identical       *bool    `json:"identical"`
	} `json:"drain"`
	Timers *struct {
		WheelNS   *float64 `json:"wheel_ns"`
		HeapNS    *float64 `json:"heap_ns"`
		Speedup   *float64 `json:"speedup"`
		Identical *bool    `json:"identical"`
	} `json:"timers"`
	FatTree *struct {
		Domains          int      `json:"domains"`
		SingleNS         *float64 `json:"single_ns"`
		PartitionedNS    *float64 `json:"partitioned_ns"`
		Windows          *float64 `json:"windows"`
		BarrierNS        *float64 `json:"barrier_ns"`
		Utilization      *float64 `json:"utilization"`
		ParallelMeasured bool     `json:"parallel_measured"`
		Identical        *bool    `json:"identical"`
	} `json:"fattree"`
	Fluid *fluidSection `json:"fluid"`
	Sweep *struct {
		Workers     int      `json:"workers"`
		Speedup     *float64 `json:"speedup"`
		Utilization *float64 `json:"utilization"`
		Identical   *bool    `json:"identical"`
	} `json:"sweep"`
}

// fluidSection is the million-entity fluid record (a later schema
// addition, so like the others every leaf degrades independently). The
// 10M-entity variant and the heap/skip leaves arrived another schema
// generation later, under the same rules.
type fluidSection struct {
	Scale            *fluidScale `json:"scale"`
	Scale10M         *fluidScale `json:"scale_10m"`
	FidelityDeltaPct *float64    `json:"fidelity_delta_pct"`
}

type fluidScale struct {
	Entities           int      `json:"entities"`
	NsPerEntityEpoch   *float64 `json:"ns_per_entity_epoch"`
	EntityEpochsPerSec *float64 `json:"entity_epochs_per_sec"`
	HeapBytesPerEntity *float64 `json:"heap_bytes_per_entity"`
	QuiescentSkipPct   *float64 `json:"quiescent_skip_pct"`
	Identical          *bool    `json:"identical"`
}

// scaleOf guards the doubly-nested fluid scale section.
func scaleOf(m metrics) *fluidScale {
	if m.Fluid == nil {
		return nil
	}
	return m.Fluid.Scale
}

// scale10MOf guards the 10M-entity variant the same way.
func scale10MOf(m metrics) *fluidScale {
	if m.Fluid == nil {
		return nil
	}
	return m.Fluid.Scale10M
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchdelta OLD.json NEW.json")
		os.Exit(2)
	}
	if err := report(os.Stdout, os.Args[1], os.Args[2]); err != nil {
		fatalf("%v", err)
	}
}

// report renders the full delta table for the two record paths.
func report(w io.Writer, oldPath, newPath string) error {
	oldRec, err := read(oldPath)
	if err != nil {
		return fmt.Errorf("%s: %w", oldPath, err)
	}
	newRec, err := read(newPath)
	if err != nil {
		return fmt.Errorf("%s: %w", newPath, err)
	}

	fmt.Fprintf(w, "### Simulation-core benchmark delta\n\n")
	fmt.Fprintf(w, "Baseline `%s` (%s, GOMAXPROCS=%d) vs fresh `%s` (%s, GOMAXPROCS=%d).\n\n",
		oldPath, oldRec.GoVersion, oldRec.GOMAXPROCS,
		newPath, newRec.GoVersion, newRec.GOMAXPROCS)
	fmt.Fprintf(w, "| metric | baseline | fresh | delta |\n")
	fmt.Fprintf(w, "|---|---:|---:|---:|\n")

	o, n := oldRec.Current, newRec.Current
	row(w, "forwarding ns/packet",
		fieldOf(o.Forwarding, func() *float64 { return o.Forwarding.NsPerPacket }),
		fieldOf(n.Forwarding, func() *float64 { return n.Forwarding.NsPerPacket }))
	normalizedForwardingRow(w, o, n)
	row(w, "forwarding allocs/op",
		fieldOf(o.Forwarding, func() *float64 { return o.Forwarding.AllocsPerOp }),
		fieldOf(n.Forwarding, func() *float64 { return n.Forwarding.AllocsPerOp }))
	row(w, "forwarding events/packet",
		fieldOf(o.Forwarding, func() *float64 { return o.Forwarding.EventsPerPacket }),
		fieldOf(n.Forwarding, func() *float64 { return n.Forwarding.EventsPerPacket }))
	row(w, "drain events/packet",
		fieldOf(o.Drain, func() *float64 { return o.Drain.EventsPerPacket }),
		fieldOf(n.Drain, func() *float64 { return n.Drain.EventsPerPacket }))
	boolRow(w, "drain identical",
		fieldOf(o.Drain, func() *bool { return o.Drain.Identical }),
		fieldOf(n.Drain, func() *bool { return n.Drain.Identical }))
	row(w, "engine ns/event",
		fieldOf(o.Engine, func() *float64 { return o.Engine.NsPerEvent }),
		fieldOf(n.Engine, func() *float64 { return n.Engine.NsPerEvent }))
	row(w, "timers wheel ns/op",
		fieldOf(o.Timers, func() *float64 { return o.Timers.WheelNS }),
		fieldOf(n.Timers, func() *float64 { return n.Timers.WheelNS }))
	row(w, "timers heap ns/op",
		fieldOf(o.Timers, func() *float64 { return o.Timers.HeapNS }),
		fieldOf(n.Timers, func() *float64 { return n.Timers.HeapNS }))
	boolRow(w, "timers identical",
		fieldOf(o.Timers, func() *bool { return o.Timers.Identical }),
		fieldOf(n.Timers, func() *bool { return n.Timers.Identical }))
	row(w, "fat-tree single-engine ns/op",
		fieldOf(o.FatTree, func() *float64 { return o.FatTree.SingleNS }),
		fieldOf(n.FatTree, func() *float64 { return n.FatTree.SingleNS }))
	row(w, "fat-tree partitioned ns/op",
		fieldOf(o.FatTree, func() *float64 { return o.FatTree.PartitionedNS }),
		fieldOf(n.FatTree, func() *float64 { return n.FatTree.PartitionedNS }))
	row(w, "fat-tree windows/run",
		fieldOf(o.FatTree, func() *float64 { return o.FatTree.Windows }),
		fieldOf(n.FatTree, func() *float64 { return n.FatTree.Windows }))
	row(w, "fat-tree barrier ns/op",
		fieldOf(o.FatTree, func() *float64 { return o.FatTree.BarrierNS }),
		fieldOf(n.FatTree, func() *float64 { return n.FatTree.BarrierNS }))
	row(w, "fat-tree utilization",
		fieldOf(o.FatTree, func() *float64 { return o.FatTree.Utilization }),
		fieldOf(n.FatTree, func() *float64 { return n.FatTree.Utilization }))
	boolRow(w, "fat-tree identical",
		fieldOf(o.FatTree, func() *bool { return o.FatTree.Identical }),
		fieldOf(n.FatTree, func() *bool { return n.FatTree.Identical }))
	oScale, nScale := scaleOf(o), scaleOf(n)
	fluidName := "fluid ns/entity-epoch"
	if oScale != nil && nScale != nil {
		fluidName = fmt.Sprintf("fluid ns/entity-epoch (%d→%d entities)",
			oScale.Entities, nScale.Entities)
	}
	row(w, fluidName,
		fieldOf(oScale, func() *float64 { return oScale.NsPerEntityEpoch }),
		fieldOf(nScale, func() *float64 { return nScale.NsPerEntityEpoch }))
	row(w, "fluid entity-epochs/sec",
		fieldOf(oScale, func() *float64 { return oScale.EntityEpochsPerSec }),
		fieldOf(nScale, func() *float64 { return nScale.EntityEpochsPerSec }))
	row(w, "fluid heap bytes/entity",
		fieldOf(oScale, func() *float64 { return oScale.HeapBytesPerEntity }),
		fieldOf(nScale, func() *float64 { return nScale.HeapBytesPerEntity }))
	row(w, "fluid quiescent-skip %",
		fieldOf(oScale, func() *float64 { return oScale.QuiescentSkipPct }),
		fieldOf(nScale, func() *float64 { return nScale.QuiescentSkipPct }))
	boolRow(w, "fluid identical",
		fieldOf(oScale, func() *bool { return oScale.Identical }),
		fieldOf(nScale, func() *bool { return nScale.Identical }))
	o10, n10 := scale10MOf(o), scale10MOf(n)
	row(w, "fluid 10M ns/entity-epoch",
		fieldOf(o10, func() *float64 { return o10.NsPerEntityEpoch }),
		fieldOf(n10, func() *float64 { return n10.NsPerEntityEpoch }))
	row(w, "fluid 10M heap bytes/entity",
		fieldOf(o10, func() *float64 { return o10.HeapBytesPerEntity }),
		fieldOf(n10, func() *float64 { return n10.HeapBytesPerEntity }))
	row(w, "fluid 10M quiescent-skip %",
		fieldOf(o10, func() *float64 { return o10.QuiescentSkipPct }),
		fieldOf(n10, func() *float64 { return n10.QuiescentSkipPct }))
	boolRow(w, "fluid 10M identical",
		fieldOf(o10, func() *bool { return o10.Identical }),
		fieldOf(n10, func() *bool { return n10.Identical }))
	row(w, "fluid fidelity delta %",
		fieldOf(o.Fluid, func() *float64 { return o.Fluid.FidelityDeltaPct }),
		fieldOf(n.Fluid, func() *float64 { return n.Fluid.FidelityDeltaPct }))
	sweepName := "sweep speedup"
	if o.Sweep != nil && n.Sweep != nil {
		sweepName = fmt.Sprintf("sweep speedup (%d→%d workers)", o.Sweep.Workers, n.Sweep.Workers)
	}
	row(w, sweepName,
		fieldOf(o.Sweep, func() *float64 { return o.Sweep.Speedup }),
		fieldOf(n.Sweep, func() *float64 { return n.Sweep.Speedup }))
	row(w, "sweep utilization",
		fieldOf(o.Sweep, func() *float64 { return o.Sweep.Utilization }),
		fieldOf(n.Sweep, func() *float64 { return n.Sweep.Utilization }))
	boolRow(w, "sweep identical",
		fieldOf(o.Sweep, func() *bool { return o.Sweep.Identical }),
		fieldOf(n.Sweep, func() *bool { return n.Sweep.Identical }))

	fmt.Fprintln(w)
	fmt.Fprintln(w, "_Lower is better for the timing rows; numbers from shared runners are noisy._")
	return nil
}

// machineSpeedTolerance is how far the two records' engine ns/event may
// diverge before the raw forwarding delta is considered dominated by host
// speed rather than by a code change.
const machineSpeedTolerance = 0.15

// normalizedForwardingRow adds a machine-speed-normalized view of the
// forwarding cost when the two records clearly come from hosts of
// different speeds. The engine's ns/event is the repository's purest
// single-core churn number (a tight heap/dispatch loop with no topology
// in it), so expressing forwarding cost in engine events — (forwarding
// ns/packet) / (engine ns/event) — cancels the host out. A baseline
// recorded on a slower box then stops reading as a regression on a
// faster one and vice versa; the residual delta is the code's.
func normalizedForwardingRow(w io.Writer, o, n metrics) {
	oFwd := fieldOf(o.Forwarding, func() *float64 { return o.Forwarding.NsPerPacket })
	nFwd := fieldOf(n.Forwarding, func() *float64 { return n.Forwarding.NsPerPacket })
	oEv := fieldOf(o.Engine, func() *float64 { return o.Engine.NsPerEvent })
	nEv := fieldOf(n.Engine, func() *float64 { return n.Engine.NsPerEvent })
	if oFwd == nil || nFwd == nil || oEv == nil || nEv == nil ||
		*oEv <= 0 || *nEv <= 0 || *oFwd <= 0 {
		return
	}
	speed := *nEv / *oEv
	if diff := speed - 1; diff < machineSpeedTolerance && diff > -machineSpeedTolerance {
		return // same-speed hosts: the raw row is already honest
	}
	oNorm := *oFwd / *oEv
	nNorm := *nFwd / *nEv
	fmt.Fprintf(w, "| forwarding events-equivalent/packet (speed-normalized) | %.2f | %.2f | %+.1f%% |\n",
		oNorm, nNorm, (nNorm-oNorm)/oNorm*100)
	fmt.Fprintf(w, "| ↳ engine churn differs %+.0f%% between hosts; read the normalized row, not the raw one | | | |\n",
		(speed-1)*100)
}

// fieldOf guards a leaf access behind its section pointer: it returns nil
// when the section itself is absent, and the leaf pointer (possibly nil)
// otherwise.
func fieldOf[S, T any](section *S, leaf func() *T) *T {
	if section == nil {
		return nil
	}
	return leaf()
}

// row prints one numeric comparison. Entries a record predates render as
// "incomparable" with an em-dash value, so diffing a fresh record against
// an old-schema baseline degrades per entry instead of failing.
func row(w io.Writer, name string, oldV, newV *float64) {
	if oldV == nil || newV == nil {
		fmt.Fprintf(w, "| %s | %s | %s | incomparable |\n", name, numOrDash(oldV), numOrDash(newV))
		return
	}
	delta := "n/a"
	if *oldV != 0 {
		delta = fmt.Sprintf("%+.1f%%", (*newV-*oldV) / *oldV * 100)
	}
	fmt.Fprintf(w, "| %s | %.2f | %.2f | %s |\n", name, *oldV, *newV, delta)
}

// boolRow prints one boolean comparison under the same absence rules.
func boolRow(w io.Writer, name string, oldV, newV *bool) {
	if oldV == nil || newV == nil {
		fmt.Fprintf(w, "| %s | %s | %s | incomparable |\n", name, boolOrDash(oldV), boolOrDash(newV))
		return
	}
	fmt.Fprintf(w, "| %s | %v | %v | |\n", name, *oldV, *newV)
}

func numOrDash(v *float64) string {
	if v == nil {
		return "—"
	}
	return fmt.Sprintf("%.2f", *v)
}

func boolOrDash(v *bool) string {
	if v == nil {
		return "—"
	}
	return fmt.Sprintf("%v", *v)
}

func read(path string) (*record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r record
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	if r.Schema == "" {
		return nil, fmt.Errorf("no schema field — not a benchcore record")
	}
	return &r, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
