// Command aqsimd hosts a long-running simulated fabric as a daemon: a
// cluster-built topology with an AQ controller that free-runs (optionally
// paced against the wall clock) and accepts runtime mutations over the
// versioned wire protocol — tenant grants and guarantee reconfigurations,
// open-loop workload attach/detach, telemetry snapshots and trace tails,
// and run control. Mutations land only at window boundaries, so a session
// scripted at fixed windows replays byte-identically (see
// internal/service).
//
// Serve a 8x8 dumbbell advancing in 1 ms windows as fast as possible:
//
//	aqsimd -listen 127.0.0.1:7171
//
// Real-time pacing, paused until a client steps it:
//
//	aqsimd -listen 127.0.0.1:7171 -pace 1 -paused
//
// Drive it with aqctl (see cmd/aqctl): grant, attach, stats, watch,
// trace, pause/step/advance/resume, quit.
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"aqueue/internal/control"
	"aqueue/internal/service"
	"aqueue/internal/sim"
	"aqueue/internal/topo"
	"aqueue/internal/units"
)

func main() {
	var (
		listen   = flag.String("listen", "127.0.0.1:7171", "listen address")
		topoN    = flag.String("topo", "dumbbell", "topology: dumbbell|star")
		hosts    = flag.Int("hosts", 8, "hosts per dumbbell side, or total star size")
		domains  = flag.Int("domains", 1, "simulation domains (results identical for any value)")
		parallel = flag.Bool("parallel", false, "advance domains on worker goroutines (needs -domains >= 2; results identical either way)")
		window   = flag.Duration("window", time.Millisecond, "mutation window (simulated time)")
		pace     = flag.Float64("pace", 0, "simulated seconds per wall second; 0 = as fast as possible")
		paused   = flag.Bool("paused", false, "start paused, waiting for run-control commands")
		traceN   = flag.Int("trace", 4096, "trace ring size in events; 0 disables tracing")
		ccName   = flag.String("cc", "cubic", "default congestion control for attached drivers")
		rate     = flag.Float64("rate", 0, "link rate in bits/s (0 = paper default 10 Gbps)")
		fluidEp  = flag.Duration("fluidepoch", 0, "integration epoch for kind \"fluid\" drivers (simulated time; 0 = default 100µs)")
	)
	flag.Parse()

	cfg := service.Config{
		Topo:       *topoN,
		Hosts:      *hosts,
		Domains:    *domains,
		Parallel:   *parallel,
		Window:     sim.Time(window.Nanoseconds()),
		TraceLen:   *traceN,
		CC:         *ccName,
		FluidEpoch: sim.Time(fluidEp.Nanoseconds()),
	}
	if *rate > 0 {
		spec := topo.DefaultSim()
		spec.Rate = units.BitRate(*rate)
		cfg.Edge, cfg.Trunk = spec, spec
	}
	f, err := service.NewFabric(cfg)
	if err != nil {
		log.Fatalf("fabric: %v", err)
	}
	s := service.Start(f, service.RunConfig{Pace: *pace, StartPaused: *paused})
	ws := control.NewWireServer(s.Handler())
	s.SetOnQuit(func() { ws.Close() })

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("aqsimd: %s fabric (%d hosts, %d domain(s)), window %v, capacity %v, listening on %s",
		cfg.Topo, *hosts, *domains, *window, f.Capacity(), ln.Addr())

	// SIGINT/SIGTERM shut down like a wire "quit": stop at the next
	// boundary, then close the listener.
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		log.Printf("aqsimd: signal received, stopping at next window boundary")
		s.Quit()
		ws.Close()
	}()

	// Serve returns once the listener closes — via wire "quit" (the
	// SetOnQuit hook) or a signal.
	if err := ws.Serve(ln); err != nil {
		// The accept error after Close is the normal shutdown path.
		log.Printf("aqsimd: listener closed (%v)", err)
	}
	select {
	case <-s.Done():
	default:
		s.Quit()
	}
	snap := s.Latest()
	log.Printf("aqsimd: stopped after %d windows (%v simulated), fingerprint %s",
		snap.Window, time.Duration(snap.NowNS), f.Fingerprint())
}
