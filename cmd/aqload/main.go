// Command aqload sweeps a parameter of the AQ system and emits CSV for
// plotting. It complements cmd/aqsim (which reproduces the paper's exact
// tables) with continuous sensitivity curves.
//
// Sweeps:
//
//	aqload -sweep entities   # fairness and utilization vs entity count
//	aqload -sweep limit      # achieved rate vs AQ limit (§6 sizing)
//	aqload -sweep load       # FCT vs offered load under AQ vs PQ
//
// Output is CSV on stdout; -ms and -seed tune the runs.
package main

import (
	"flag"
	"fmt"
	"os"

	"aqueue/internal/cc"
	"aqueue/internal/control"
	"aqueue/internal/experiments"
	"aqueue/internal/sim"
	"aqueue/internal/stats"
	"aqueue/internal/topo"
	"aqueue/internal/transport"
	"aqueue/internal/workload"
)

func main() {
	sweep := flag.String("sweep", "entities", "entities|limit|load")
	ms := flag.Int("ms", 80, "simulated horizon in milliseconds")
	seed := flag.Uint64("seed", 1, "workload seed")
	flag.Parse()
	h := sim.Time(*ms) * sim.Millisecond

	switch *sweep {
	case "entities":
		sweepEntities(h)
	case "limit":
		sweepLimit(h)
	case "load":
		sweepLoad(h, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown sweep %q\n", *sweep)
		os.Exit(2)
	}
}

// sweepEntities: n weighted entities share 10G; report Jain fairness and
// total utilization as n grows (the R3 scalability requirement, in vivo).
func sweepEntities(horizon sim.Time) {
	fmt.Println("entities,jain,total_gbps")
	for _, n := range []int{2, 4, 8, 16, 32, 64} {
		eng := sim.NewEngine()
		spec := topo.DefaultSim()
		d := topo.NewDumbbell(eng, n, n, spec, spec)
		ctrl := control.NewController(spec.Rate)
		senders := make([][]*transport.Sender, n)
		for i := 0; i < n; i++ {
			g, err := ctrl.Grant(control.Request{Tenant: fmt.Sprint(i),
				Mode: control.Weighted, Weight: 1, Limit: spec.QueueLimit,
				Position: control.Ingress}, d.S1.Ingress)
			if err != nil {
				panic(err)
			}
			s := transport.NewSender(d.Left[i], d.Right[i], 0, cc.NewCubic(),
				transport.Options{IngressAQ: g.ID})
			s.Start(sim.Time(i) * 10 * sim.Microsecond)
			senders[i] = []*transport.Sender{s}
		}
		eng.RunUntil(horizon)
		shares := make([]float64, n)
		var total float64
		for i := range senders {
			shares[i] = float64(senders[i][0].AckedBytes())
			total += shares[i]
		}
		fmt.Printf("%d,%.4f,%.3f\n", n, stats.JainIndex(shares),
			stats.RateGbps(uint64(total), horizon))
	}
}

// sweepLimit: achieved fraction of a 5G allocation vs the AQ limit.
func sweepLimit(horizon sim.Time) {
	fmt.Println("limit_bytes,gbps,fraction_of_allocation")
	for _, limit := range []int{2_000, 4_000, 8_000, 16_000, 40_000, 100_000, 400_000} {
		g := experiments.AblationAQLimit(limit, horizon)
		fmt.Printf("%d,%.3f,%.3f\n", limit, g, g/5.0)
	}
}

// sweepLoad: mean FCT of a web-search batch vs offered load, PQ vs AQ
// (one entity holding the full link, so AQ overhead is isolated).
func sweepLoad(horizon sim.Time, seed uint64) {
	fmt.Println("load,pq_mean_fct_us,aq_mean_fct_us")
	for _, load := range []float64{0.2, 0.4, 0.6, 0.8} {
		row := make([]float64, 0, 2)
		for _, useAQ := range []bool{false, true} {
			eng := sim.NewEngine()
			spec := topo.DefaultSim()
			d := topo.NewDumbbell(eng, 2, 2, spec, spec)
			var opt transport.Options
			opt.EcnCapable = true
			if useAQ {
				ctrl := control.NewController(spec.Rate)
				g, err := ctrl.Grant(control.Request{Tenant: "app",
					Mode: control.Weighted, Weight: 1, Limit: spec.QueueLimit,
					Position: control.Ingress}, d.S1.Ingress)
				if err != nil {
					panic(err)
				}
				opt.IngressAQ = g.ID
			}
			e := &workload.Entity{
				Name:    "app",
				Sources: d.Left,
				Dests:   d.Right,
				CC:      cc.ByName("dctcp"),
				Opt:     opt,
			}
			workload.Generate(eng, e, workload.Batch{
				Flows: 200,
				Sizes: workload.WebSearch{},
				Load:  load,
				Ref:   spec.Rate,
				Seed:  seed,
			})
			eng.RunUntil(10 * horizon)
			row = append(row, float64(e.Tracker.MeanFCT())/1000)
		}
		fmt.Printf("%.1f,%.1f,%.1f\n", load, row[0], row[1])
	}
}
