// Command aqctl runs the AQ Controller of §4.1 as a TCP daemon, or acts as
// a client sending it tenant requests. The client mode also speaks the v2
// service verbs of cmd/aqsimd: workload attach/detach, guarantee
// reconfiguration, telemetry and run control.
//
// Server:
//
//	aqctl -serve -listen 127.0.0.1:7070 -capacity 10e9 -switches S1,S2
//
// Client (controller verbs, against aqctl -serve or aqsimd):
//
//	aqctl -addr 127.0.0.1:7070 -op grant -tenant t1 -mode weighted \
//	      -weight 1 -cc ecn -position ingress -switch S1
//	aqctl -addr 127.0.0.1:7070 -op set_rate -id 3 -bandwidth 2e9
//	aqctl -addr 127.0.0.1:7070 -op set_weight -id 4 -weight 3
//	aqctl -addr 127.0.0.1:7070 -op release -id 3
//	aqctl -addr 127.0.0.1:7070 -op list
//
// Client (service verbs, against aqsimd):
//
//	aqctl -addr 127.0.0.1:7171 -op attach -tenant t1 -id 3 \
//	      -kind websearch -load 0.5
//	aqctl -addr 127.0.0.1:7171 -op attach -tenant bg -id 4 \
//	      -kind fluid -load 0.8 -entities 100000
//	aqctl -addr 127.0.0.1:7171 -op stats
//	aqctl -addr 127.0.0.1:7171 -op watch -count 10
//	aqctl -addr 127.0.0.1:7171 -op trace -count 50
//	aqctl -addr 127.0.0.1:7171 -op pause
//	aqctl -addr 127.0.0.1:7171 -op step -count 5
//	aqctl -addr 127.0.0.1:7171 -op advance -until 2000000000
//	aqctl -addr 127.0.0.1:7171 -op quit
//
// Requests are sent as protocol v2 by default; -proto 1 reproduces the
// legacy v1 exchanges byte for byte.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"

	"aqueue/internal/control"
	"aqueue/internal/units"
)

func main() {
	var (
		serve    = flag.Bool("serve", false, "run as the controller daemon")
		listen   = flag.String("listen", "127.0.0.1:7070", "daemon listen address")
		switches = flag.String("switches", "S1", "comma-separated switch names to manage")
		capacity = flag.Float64("capacity", 10e9, "managed link capacity in bits/s")

		addr     = flag.String("addr", "127.0.0.1:7070", "daemon address (client mode)")
		op       = flag.String("op", "", "operation: hello|grant|release|set_active|set_rate|set_weight|list|attach|detach|stats|watch|trace|fingerprint|pause|resume|step|advance|quit")
		proto    = flag.Int("proto", control.ProtoV2, "wire protocol version to speak")
		tenant   = flag.String("tenant", "", "tenant name")
		mode     = flag.String("mode", "absolute", "absolute|weighted")
		bw       = flag.Float64("bandwidth", 0, "bandwidth in bits/s (grant/set_rate)")
		weight   = flag.Float64("weight", 0, "network weight (grant/set_weight)")
		ccName   = flag.String("cc", "", "grant: drop|ecn|delay; attach: newreno|cubic|dctcp|...")
		position = flag.String("position", "ingress", "ingress|egress")
		swName   = flag.String("switch", "S1", "target switch")
		id       = flag.Uint("id", 0, "AQ id (release/set_active/set_rate/set_weight, attach tag) or driver id (detach)")
		active   = flag.Bool("active", true, "set_active value")
		kind     = flag.String("kind", "websearch", "attach: websearch|datamining|fixed|fluid")
		size     = flag.Int64("size", 0, "attach: flow size in bytes (kind fixed)")
		load     = flag.Float64("load", 0, "attach: offered load as a fraction of capacity")
		entities = flag.Int("entities", 0, "attach: fluid entity count (kind fluid, 0 = 1)")
		seed     = flag.Uint64("seed", 0, "attach: workload seed (0 = deterministic default)")
		count    = flag.Int("count", 0, "watch/trace/step: snapshots, events or windows")
		until    = flag.Int64("until", 0, "advance: absolute simulated time target in ns")
	)
	flag.Parse()

	if *serve {
		runServer(*listen, *switches, units.BitRate(*capacity))
		return
	}
	if *op == "" {
		flag.Usage()
		os.Exit(2)
	}
	v := *proto
	if v == control.ProtoV1 {
		v = 0 // v1 requests omit the field entirely
	}
	runClient(*addr, control.WireRequest{
		V:         v,
		Op:        *op,
		Tenant:    *tenant,
		Mode:      *mode,
		Bandwidth: *bw,
		Weight:    *weight,
		CC:        *ccName,
		Position:  *position,
		Switch:    *swName,
		ID:        uint32(*id),
		Active:    active,
		Kind:      *kind,
		Size:      *size,
		Load:      *load,
		Entities:  *entities,
		Seed:      *seed,
		Count:     *count,
		UntilNS:   *until,
	})
}

func runServer(listen, switches string, capacity units.BitRate) {
	ctrl := control.NewController(capacity)
	srv := control.NewServer(ctrl)
	for _, sw := range strings.Split(switches, ",") {
		sw = strings.TrimSpace(sw)
		if sw == "" {
			continue
		}
		srv.RegisterTable(sw, control.Ingress, nil)
		srv.RegisterTable(sw, control.Egress, nil)
		log.Printf("managing switch %s (ingress+egress pipelines)", sw)
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("AQ controller listening on %s, capacity %v", ln.Addr(), capacity)
	if err := srv.Serve(ln); err != nil {
		log.Printf("serve: %v", err)
	}
}

func runClient(addr string, req control.WireRequest) {
	cli, err := control.Dial(addr)
	if err != nil {
		log.Fatalf("dial: %v", err)
	}
	defer cli.Close()
	resp, err := cli.Do(req)
	if err != nil {
		if resp.Code != "" {
			log.Fatalf("%s: [%s] %v", req.Op, resp.Code, err)
		}
		log.Fatalf("%s: %v", req.Op, err)
	}
	print := func(resp control.WireResponse) {
		switch {
		case len(resp.Data) > 0:
			fmt.Println(string(resp.Data))
		case req.Op == "grant":
			fmt.Printf("granted AQ id=%d rate=%v\n", resp.ID, units.BitRate(resp.Rate))
		case req.Op == "attach":
			fmt.Printf("attached driver id=%d\n", resp.ID)
		case req.Op == "set_active" || req.Op == "set_rate" || req.Op == "set_weight":
			fmt.Printf("AQ id=%d rate=%v\n", resp.ID, units.BitRate(resp.Rate))
		case req.Op == "list":
			fmt.Printf("granted AQ ids: %v\n", resp.IDs)
		default:
			fmt.Println("ok")
		}
	}
	print(resp)
	// watch streams Count responses for the one request; drain the rest.
	if req.Op == "watch" {
		for i := 1; i < req.Count; i++ {
			resp, err := cli.Recv()
			if err != nil {
				log.Fatalf("watch: %v", err)
			}
			print(resp)
		}
	}
}
