// Command aqctl runs the AQ Controller of §4.1 as a TCP daemon, or acts as
// a client sending it tenant requests.
//
// Server:
//
//	aqctl -serve -listen 127.0.0.1:7070 -capacity 10e9 -switches S1,S2
//
// Client:
//
//	aqctl -addr 127.0.0.1:7070 -op grant -tenant t1 -mode weighted \
//	      -weight 1 -cc ecn -position ingress -switch S1
//	aqctl -addr 127.0.0.1:7070 -op set_active -id 3 -active=false
//	aqctl -addr 127.0.0.1:7070 -op release -id 3
//	aqctl -addr 127.0.0.1:7070 -op list
//
// The daemon owns one AQ table per registered switch pipeline; in a real
// deployment the table writes would be mirrored to the switch data plane
// through its runtime API (§4.1).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"strings"

	"aqueue/internal/control"
	"aqueue/internal/units"
)

func main() {
	var (
		serve    = flag.Bool("serve", false, "run as the controller daemon")
		listen   = flag.String("listen", "127.0.0.1:7070", "daemon listen address")
		switches = flag.String("switches", "S1", "comma-separated switch names to manage")
		capacity = flag.Float64("capacity", 10e9, "managed link capacity in bits/s")

		addr     = flag.String("addr", "127.0.0.1:7070", "daemon address (client mode)")
		op       = flag.String("op", "", "client operation: grant|release|set_active|list")
		tenant   = flag.String("tenant", "", "tenant name")
		mode     = flag.String("mode", "absolute", "absolute|weighted")
		bw       = flag.Float64("bandwidth", 0, "requested bandwidth in bits/s (absolute mode)")
		weight   = flag.Float64("weight", 0, "network weight (weighted mode)")
		ccName   = flag.String("cc", "drop", "drop|ecn|delay")
		position = flag.String("position", "ingress", "ingress|egress")
		swName   = flag.String("switch", "S1", "target switch")
		id       = flag.Uint("id", 0, "AQ id (release/set_active)")
		active   = flag.Bool("active", true, "set_active value")
	)
	flag.Parse()

	if *serve {
		runServer(*listen, *switches, units.BitRate(*capacity))
		return
	}
	if *op == "" {
		flag.Usage()
		os.Exit(2)
	}
	runClient(*addr, control.WireRequest{
		Op:        *op,
		Tenant:    *tenant,
		Mode:      *mode,
		Bandwidth: *bw,
		Weight:    *weight,
		CC:        *ccName,
		Position:  *position,
		Switch:    *swName,
		ID:        uint32(*id),
		Active:    active,
	})
}

func runServer(listen, switches string, capacity units.BitRate) {
	ctrl := control.NewController(capacity)
	srv := control.NewServer(ctrl)
	for _, sw := range strings.Split(switches, ",") {
		sw = strings.TrimSpace(sw)
		if sw == "" {
			continue
		}
		srv.RegisterTable(sw, control.Ingress, nil)
		srv.RegisterTable(sw, control.Egress, nil)
		log.Printf("managing switch %s (ingress+egress pipelines)", sw)
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("AQ controller listening on %s, capacity %v", ln.Addr(), capacity)
	if err := srv.Serve(ln); err != nil {
		log.Printf("serve: %v", err)
	}
}

func runClient(addr string, req control.WireRequest) {
	cli, err := control.Dial(addr)
	if err != nil {
		log.Fatalf("dial: %v", err)
	}
	defer cli.Close()
	resp, err := cli.Do(req)
	if err != nil {
		log.Fatalf("%s: %v", req.Op, err)
	}
	switch req.Op {
	case "grant":
		fmt.Printf("granted AQ id=%d rate=%v\n", resp.ID, units.BitRate(resp.Rate))
	case "set_active":
		fmt.Printf("AQ id=%d rate=%v\n", resp.ID, units.BitRate(resp.Rate))
	case "list":
		fmt.Printf("granted AQ ids: %v\n", resp.IDs)
	default:
		fmt.Println("ok")
	}
}
