package sim

import (
	"fmt"
	"testing"
)

// TestAtOrderedLaneOrdering: at one instant, events fire by lane first and
// scheduling order only within a lane — regardless of push order.
func TestAtOrderedLaneOrdering(t *testing.T) {
	e := NewEngine()
	var got []string
	rec := func(x any) { got = append(got, x.(string)) }
	e.AtOrdered(2, 10, rec, "lane2-a")
	e.AtOrdered(1, 10, rec, "lane1-a")
	e.At(10, func() { got = append(got, "lane0-handle") })
	e.AtDetached(10, rec, "lane0-detached")
	e.AtOrdered(1, 10, rec, "lane1-b")
	e.AtOrdered(2, 10, rec, "lane2-b")
	e.Run()
	want := []string{"lane0-handle", "lane0-detached", "lane1-a", "lane1-b", "lane2-a", "lane2-b"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("fire order %v, want %v", got, want)
	}
}

// TestAtOrderedLaneBeatsLateAnonymous: an anonymous event scheduled after
// billions of sequence draws still precedes any lane>0 event at the same
// instant (the lane occupies strictly higher bits than any realistic seq).
func TestAtOrderedLaneBeatsLateAnonymous(t *testing.T) {
	e := NewEngine()
	e.seq = 1 << 39 // deep into a long run, still below the lane bits
	var got []string
	rec := func(x any) { got = append(got, x.(string)) }
	e.AtOrdered(1, 5, rec, "lane1")
	e.AtDetached(5, rec, "anon")
	e.Run()
	if fmt.Sprint(got) != "[anon lane1]" {
		t.Fatalf("fire order %v, want [anon lane1]", got)
	}
}

func TestSeqDomainMatchesNextSeq(t *testing.T) {
	a, b := NewEngine(), NewEngine()
	d := a.SeqDomain("x")
	for i := 0; i < 5; i++ {
		if av, bv := a.NextIn(d), b.NextSeq("x"); av != bv {
			t.Fatalf("draw %d: handle gave %d, string gave %d", i, av, bv)
		}
	}
	// Distinct domains stay independent under both APIs.
	a.NextSeq("y")
	if v := a.NextIn(d); v != 6 {
		t.Fatalf("domain x disturbed by domain y: next = %d, want 6", v)
	}
}

// TestClusterWindowedExchange runs a two-domain ping-pong through outboxes
// and checks the conservative loop: messages cross only at flush points,
// arrive at their exact posted times, and the EAT-driven scheduler needs
// fewer rounds than the horizon/lookahead global-window count because it
// strides past the gaps between messages.
func TestClusterWindowedExchange(t *testing.T) {
	c := NewCluster(2)
	a, b := c.Engine(0), c.Engine(1)
	const delay = 10

	var log []string
	var toB, toA *Outbox
	toB = c.Outbox(a, b, c.NextLane(), delay, func(x any) {
		n := x.(int)
		log = append(log, fmt.Sprintf("b@%d:%d", b.Now(), n))
		if n < 3 {
			toA.Post(b.Now()+delay, n+1)
		}
	})
	toA = c.Outbox(b, a, c.NextLane(), delay, func(x any) {
		n := x.(int)
		log = append(log, fmt.Sprintf("a@%d:%d", a.Now(), n))
		toB.Post(a.Now()+delay, n+1)
	})
	a.At(0, func() { toB.Post(delay, 0) })

	c.RunUntil(100)
	want := "[b@10:0 a@20:1 b@30:2 a@40:3 b@50:4]"
	if fmt.Sprint(log) != want {
		t.Fatalf("exchange log %v, want %v", log, want)
	}
	if c.Now() != 100 || a.Now() != 100 || b.Now() != 100 {
		t.Fatalf("clocks: cluster %v, a %v, b %v, want all 100", c.Now(), a.Now(), b.Now())
	}
	// A global min-delay window would take horizon/delay = 10 rounds; the
	// per-channel scheduler covers the exchange plus the idle tail in fewer.
	if c.Windows >= 10 || c.Windows < 5 {
		t.Fatalf("windows = %d, want within [5, 10) (one round per hop plus the idle tail)", c.Windows)
	}
	st := c.SyncStats()
	if st.FlushedMsgs != 5 || st.Windows != c.Windows {
		t.Fatalf("sync stats %+v: want 5 flushed messages", st)
	}
}

// TestClusterPairLookahead: the matrix keeps the per-pair minimum of the
// declared channel delays, and pairs without a channel stay 0.
func TestClusterPairLookahead(t *testing.T) {
	c := NewCluster(3)
	sink := func(any) {}
	c.Outbox(c.Engine(0), c.Engine(1), c.NextLane(), 40, sink)
	c.Outbox(c.Engine(0), c.Engine(1), c.NextLane(), 25, sink)
	c.Outbox(c.Engine(1), c.Engine(2), c.NextLane(), 700, sink)
	if la := c.PairLookahead(0, 1); la != 25 {
		t.Fatalf("pair 0→1 lookahead %d, want 25 (min of declared delays)", la)
	}
	if la := c.PairLookahead(1, 2); la != 700 {
		t.Fatalf("pair 1→2 lookahead %d, want 700", la)
	}
	if la := c.PairLookahead(2, 0); la != 0 {
		t.Fatalf("pair 2→0 lookahead %d, want 0 (no channel)", la)
	}
}

// TestClusterAsymmetricChainStrides: in a 3-domain chain A→B→C where the
// A→B hop is tight (delay 10) and the B→C hop is loose (delay 400), C must
// rendezvous far less often than A and B — each pair syncs at its own
// stride instead of everyone sharing the global minimum window.
func TestClusterAsymmetricChainStrides(t *testing.T) {
	c := NewCluster(3)
	a, b, cc := c.Engine(0), c.Engine(1), c.Engine(2)
	const horizon = 10_000

	var atB, atC int
	toC := c.Outbox(b, cc, c.NextLane(), 400, func(any) { atC++ })
	toB := c.Outbox(a, b, c.NextLane(), 10, func(x any) {
		atB++
		toC.Post(b.Now()+400, x)
	})
	// Quiet reverse channels, as a bidirectional link would have: they
	// carry no traffic but still couple the pairs' clocks.
	c.Outbox(b, a, c.NextLane(), 10, func(any) {})
	c.Outbox(cc, b, c.NextLane(), 400, func(any) {})
	// A streams a message every 10 time units; B relays each to C.
	var send func()
	send = func() {
		toB.Post(a.Now()+10, 0)
		if a.Now()+10 < horizon {
			a.After(10, send)
		}
	}
	a.At(0, send)
	// Busy local ticks on every domain so no one is ever idle.
	for _, e := range []*Engine{a, b, cc} {
		e := e
		var tick func()
		tick = func() {
			if e.Now() < horizon {
				e.After(5, tick)
			}
		}
		e.At(0, tick)
	}

	c.RunUntil(horizon)
	// B hears messages at t = 10, 20, …, 10000; relays at t+400 land
	// inside the horizon only for t ≤ 9600.
	if atB != 1000 || atC != 960 {
		t.Fatalf("deliveries: B got %d, C got %d — want 1000 and 960", atB, atC)
	}
	st := c.SyncStats()
	runs := make(map[int]uint64)
	for _, d := range st.Domains {
		runs[d.Domain] = d.Runs
	}
	// B is held to ~10-unit strides by A; C only needs to wake when a
	// 400-delay delivery can actually reach it.
	if runs[2]*4 > runs[1] {
		t.Fatalf("domain runs %v: C (pair delay 400) should run at least 4× less often than B (pair delay 10)", runs)
	}
	if runs[1] == 0 || runs[2] == 0 {
		t.Fatalf("domain runs %v: every domain must have executed work", runs)
	}
}

// TestOutboxShrink: a single burst window must not pin its worst-case
// backing array forever — after enough small flushes the mailbox
// reallocates down toward the recent peak.
func TestOutboxShrink(t *testing.T) {
	c := NewCluster(2)
	o := c.Outbox(c.Engine(0), c.Engine(1), c.NextLane(), 1, func(any) {})
	for i := 0; i < 4096; i++ {
		o.Post(Time(i+1), nil)
	}
	o.flush()
	if cap(o.entries) < 4096 {
		t.Fatalf("cap %d after oversized window, expected ≥ 4096", cap(o.entries))
	}
	for f := 0; f < 2*shrinkCheckEvery; f++ {
		o.Post(Time(f+5000), nil)
		o.flush()
	}
	if cap(o.entries) > 64 {
		t.Fatalf("cap %d after %d small flushes, want shrunk to ≤ 64", cap(o.entries), 2*shrinkCheckEvery)
	}
}

// TestClusterNoBoundaries: independent domains run straight to the deadline
// in a single window.
func TestClusterNoBoundaries(t *testing.T) {
	c := NewCluster(3)
	fired := 0
	for i, e := range c.Engines() {
		e.At(Time(5+i), func() { fired++ })
	}
	c.RunUntil(50)
	if fired != 3 || c.Windows != 1 {
		t.Fatalf("fired %d windows %d, want 3 events in 1 window", fired, c.Windows)
	}
}

// TestClusterParallelWindows exercises the goroutine path (meaningful under
// -race): each domain runs local event chains while exchanging messages
// through outboxes every window.
func TestClusterParallelWindows(t *testing.T) {
	c := NewCluster(4)
	c.SetParallel(true)
	const delay = 7
	c.ObserveLinkDelay(delay)

	counts := make([]int, c.N())
	boxes := make([]*Outbox, c.N())
	for i := 0; i < c.N(); i++ {
		i := i
		e := c.Engine(i)
		// Domain i's inbox is fed by its left neighbour (the only poster).
		left := c.Engine((i + c.N() - 1) % c.N())
		boxes[i] = c.Outbox(left, e, c.NextLane(), delay, func(x any) { counts[i] += x.(int) })
		// A local self-rescheduling tick on every domain.
		var tick func()
		tick = func() {
			counts[i]++
			if e.Now() < 900 {
				e.After(3, tick)
			}
		}
		e.At(0, tick)
	}
	// Each domain posts to its right neighbour once per local tick epoch.
	for i := 0; i < c.N(); i++ {
		i := i
		e := c.Engine(i)
		next := boxes[(i+1)%c.N()]
		var send func()
		send = func() {
			next.Post(e.Now()+delay, 1000)
			if e.Now() < 800 {
				e.After(11, send)
			}
		}
		e.At(1, send)
	}
	c.RunUntil(1000)
	for i, n := range counts {
		if n <= 1000 {
			t.Fatalf("domain %d count %d: expected local ticks plus cross-domain posts", i, n)
		}
	}
}

// TestClusterSequencesArePartitionInvariant: cluster draws do not depend on
// how many domains exist.
func TestClusterSequencesArePartitionInvariant(t *testing.T) {
	draw := func(n int) []uint64 {
		c := NewCluster(n)
		var out []uint64
		for i := 0; i < 4; i++ {
			out = append(out, c.NextSeq("pipe"), c.NextSeq("queue"))
		}
		return out
	}
	one, four := draw(1), draw(4)
	if fmt.Sprint(one) != fmt.Sprint(four) {
		t.Fatalf("cluster sequences differ by partitioning: %v vs %v", one, four)
	}
}
