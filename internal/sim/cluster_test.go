package sim

import (
	"fmt"
	"testing"
)

// TestAtOrderedLaneOrdering: at one instant, events fire by lane first and
// scheduling order only within a lane — regardless of push order.
func TestAtOrderedLaneOrdering(t *testing.T) {
	e := NewEngine()
	var got []string
	rec := func(x any) { got = append(got, x.(string)) }
	e.AtOrdered(2, 10, rec, "lane2-a")
	e.AtOrdered(1, 10, rec, "lane1-a")
	e.At(10, func() { got = append(got, "lane0-handle") })
	e.AtDetached(10, rec, "lane0-detached")
	e.AtOrdered(1, 10, rec, "lane1-b")
	e.AtOrdered(2, 10, rec, "lane2-b")
	e.Run()
	want := []string{"lane0-handle", "lane0-detached", "lane1-a", "lane1-b", "lane2-a", "lane2-b"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("fire order %v, want %v", got, want)
	}
}

// TestAtOrderedLaneBeatsLateAnonymous: an anonymous event scheduled after
// billions of sequence draws still precedes any lane>0 event at the same
// instant (the lane occupies strictly higher bits than any realistic seq).
func TestAtOrderedLaneBeatsLateAnonymous(t *testing.T) {
	e := NewEngine()
	e.seq = 1 << 39 // deep into a long run, still below the lane bits
	var got []string
	rec := func(x any) { got = append(got, x.(string)) }
	e.AtOrdered(1, 5, rec, "lane1")
	e.AtDetached(5, rec, "anon")
	e.Run()
	if fmt.Sprint(got) != "[anon lane1]" {
		t.Fatalf("fire order %v, want [anon lane1]", got)
	}
}

func TestSeqDomainMatchesNextSeq(t *testing.T) {
	a, b := NewEngine(), NewEngine()
	d := a.SeqDomain("x")
	for i := 0; i < 5; i++ {
		if av, bv := a.NextIn(d), b.NextSeq("x"); av != bv {
			t.Fatalf("draw %d: handle gave %d, string gave %d", i, av, bv)
		}
	}
	// Distinct domains stay independent under both APIs.
	a.NextSeq("y")
	if v := a.NextIn(d); v != 6 {
		t.Fatalf("domain x disturbed by domain y: next = %d, want 6", v)
	}
}

// TestClusterWindowedExchange runs a two-domain ping-pong through outboxes
// and checks the conservative loop: messages cross only at flush points,
// arrive at their exact posted times, and the window count matches
// horizon/lookahead.
func TestClusterWindowedExchange(t *testing.T) {
	c := NewCluster(2)
	a, b := c.Engine(0), c.Engine(1)
	const delay = 10
	c.ObserveLinkDelay(delay)

	var log []string
	var toB, toA *Outbox
	toB = c.Outbox(b, c.NextLane(), func(x any) {
		n := x.(int)
		log = append(log, fmt.Sprintf("b@%d:%d", b.Now(), n))
		if n < 3 {
			toA.Post(b.Now()+delay, n+1)
		}
	})
	toA = c.Outbox(a, c.NextLane(), func(x any) {
		n := x.(int)
		log = append(log, fmt.Sprintf("a@%d:%d", a.Now(), n))
		toB.Post(a.Now()+delay, n+1)
	})
	a.At(0, func() { toB.Post(delay, 0) })

	c.RunUntil(100)
	want := "[b@10:0 a@20:1 b@30:2 a@40:3 b@50:4]"
	if fmt.Sprint(log) != want {
		t.Fatalf("exchange log %v, want %v", log, want)
	}
	if c.Now() != 100 || a.Now() != 100 || b.Now() != 100 {
		t.Fatalf("clocks: cluster %v, a %v, b %v, want all 100", c.Now(), a.Now(), b.Now())
	}
	if c.Windows != 10 {
		t.Fatalf("windows = %d, want 10 (horizon 100 / lookahead 10)", c.Windows)
	}
}

// TestClusterNoBoundaries: independent domains run straight to the deadline
// in a single window.
func TestClusterNoBoundaries(t *testing.T) {
	c := NewCluster(3)
	fired := 0
	for i, e := range c.Engines() {
		e.At(Time(5+i), func() { fired++ })
	}
	c.RunUntil(50)
	if fired != 3 || c.Windows != 1 {
		t.Fatalf("fired %d windows %d, want 3 events in 1 window", fired, c.Windows)
	}
}

// TestClusterParallelWindows exercises the goroutine path (meaningful under
// -race): each domain runs local event chains while exchanging messages
// through outboxes every window.
func TestClusterParallelWindows(t *testing.T) {
	c := NewCluster(4)
	c.SetParallel(true)
	const delay = 7
	c.ObserveLinkDelay(delay)

	counts := make([]int, c.N())
	boxes := make([]*Outbox, c.N())
	for i := 0; i < c.N(); i++ {
		i := i
		e := c.Engine(i)
		boxes[i] = c.Outbox(e, c.NextLane(), func(x any) { counts[i] += x.(int) })
		// A local self-rescheduling tick on every domain.
		var tick func()
		tick = func() {
			counts[i]++
			if e.Now() < 900 {
				e.After(3, tick)
			}
		}
		e.At(0, tick)
	}
	// Each domain posts to its right neighbour once per local tick epoch.
	for i := 0; i < c.N(); i++ {
		i := i
		e := c.Engine(i)
		next := boxes[(i+1)%c.N()]
		var send func()
		send = func() {
			next.Post(e.Now()+delay, 1000)
			if e.Now() < 800 {
				e.After(11, send)
			}
		}
		e.At(1, send)
	}
	c.RunUntil(1000)
	for i, n := range counts {
		if n <= 1000 {
			t.Fatalf("domain %d count %d: expected local ticks plus cross-domain posts", i, n)
		}
	}
}

// TestClusterSequencesArePartitionInvariant: cluster draws do not depend on
// how many domains exist.
func TestClusterSequencesArePartitionInvariant(t *testing.T) {
	draw := func(n int) []uint64 {
		c := NewCluster(n)
		var out []uint64
		for i := 0; i < 4; i++ {
			out = append(out, c.NextSeq("pipe"), c.NextSeq("queue"))
		}
		return out
	}
	one, four := draw(1), draw(4)
	if fmt.Sprint(one) != fmt.Sprint(four) {
		t.Fatalf("cluster sequences differ by partitioning: %v vs %v", one, four)
	}
}
