package sim

// Engine configuration. Every feature knob that used to be a package-global
// toggle (dense AQ tables, dense forwarding, the timer-wheel lane, packet
// pooling) plus the burst-drain size is carried by an Options value fixed at
// engine construction: two engines in one process can run with different
// configurations, and nothing a test flips can leak into an engine built
// elsewhere. The deprecated Set* shims (and the mutable process defaults
// behind them) are gone; DefaultOptions is a constant.

// Options is the per-engine feature configuration. The zero value is NOT
// the default configuration — use DefaultOptions (or just NewEngine, which
// starts from it) and override with With* options.
type Options struct {
	// DenseTables enables the direct-indexed AQ lookup layout for tables
	// built against this engine (see core.Table). Layout only — results are
	// byte-identical either way.
	DenseTables bool
	// DenseForwarding enables the direct-indexed forwarding tables of
	// switches and the dense flow dispatch of hosts built on this engine.
	DenseForwarding bool
	// TimerWheel routes timer-class events through the hierarchical timing
	// wheel; off, Timer handles fall back to heap events.
	TimerWheel bool
	// Pooling enables packet reuse through the engine's free list; off, Get
	// falls back to the garbage collector and Release is a no-op.
	Pooling bool
	// BurstSize caps how many back-to-back pipe deliveries one engine event
	// may drain inline (the burst-mode data plane); 0 disables bursting and
	// every delivery is its own event. Results are byte-identical for any
	// value — bursting elides only events that would fire next anyway.
	BurstSize int
	// ParallelDomains makes a Cluster built with this option advance each
	// round's domains on persistent worker goroutines instead of
	// cooperatively (see Cluster.SetParallel). Execution strategy only —
	// results are byte-identical — but only sound for scenarios whose
	// runtime state never crosses domains outside the cluster mailboxes.
	// Ignored by standalone engines.
	ParallelDomains bool
}

// Option overrides one knob of an engine's Options.
type Option func(*Options)

// WithDenseTables sets Options.DenseTables.
func WithDenseTables(on bool) Option { return func(o *Options) { o.DenseTables = on } }

// WithDenseForwarding sets Options.DenseForwarding.
func WithDenseForwarding(on bool) Option { return func(o *Options) { o.DenseForwarding = on } }

// WithTimerWheel sets Options.TimerWheel.
func WithTimerWheel(on bool) Option { return func(o *Options) { o.TimerWheel = on } }

// WithPooling sets Options.Pooling.
func WithPooling(on bool) Option { return func(o *Options) { o.Pooling = on } }

// WithParallelDomains sets Options.ParallelDomains.
func WithParallelDomains(on bool) Option { return func(o *Options) { o.ParallelDomains = on } }

// WithBurstSize sets Options.BurstSize; n <= 0 disables burst draining.
func WithBurstSize(n int) Option {
	return func(o *Options) {
		if n < 0 {
			n = 0
		}
		o.BurstSize = n
	}
}

// DefaultBurstSize is the default cap on inline deliveries per engine
// event. A burst ends the moment any other event (a timer, another pipe's
// delivery) is due first, so the cap only bounds the degenerate case of one
// pipe owning the whole window; 64 mirrors the DPDK burst convention.
const DefaultBurstSize = 64

// DefaultOptions returns the default engine configuration: everything on,
// BurstSize = DefaultBurstSize. It is a pure constant — there is no way to
// change the defaults process-wide; callers that want a different
// configuration pass With* options to NewEngine or NewCluster.
func DefaultOptions() Options {
	return Options{
		DenseTables:     true,
		DenseForwarding: true,
		TimerWheel:      true,
		Pooling:         true,
		BurstSize:       DefaultBurstSize,
	}
}
