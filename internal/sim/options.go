package sim

import "sync/atomic"

// Engine configuration. Every feature knob that used to be a package-global
// toggle (dense AQ tables, dense forwarding, the timer-wheel lane, packet
// pooling) plus the burst-drain size is carried by an Options value fixed at
// engine construction: two engines in one process can run with different
// configurations, and nothing a test flips can leak into an engine built
// elsewhere. Process-wide defaults exist only as the compatibility surface
// behind the deprecated Set* shims in core, topo, and packet.

// Options is the per-engine feature configuration. The zero value is NOT
// the default configuration — use DefaultOptions (or just NewEngine, which
// starts from it) and override with With* options.
type Options struct {
	// DenseTables enables the direct-indexed AQ lookup layout for tables
	// built against this engine (see core.Table). Layout only — results are
	// byte-identical either way.
	DenseTables bool
	// DenseForwarding enables the direct-indexed forwarding tables of
	// switches and the dense flow dispatch of hosts built on this engine.
	DenseForwarding bool
	// TimerWheel routes timer-class events through the hierarchical timing
	// wheel; off, Timer handles fall back to heap events.
	TimerWheel bool
	// Pooling enables packet reuse through the engine's free list; off, Get
	// falls back to the garbage collector and Release is a no-op.
	Pooling bool
	// BurstSize caps how many back-to-back pipe deliveries one engine event
	// may drain inline (the burst-mode data plane); 0 disables bursting and
	// every delivery is its own event. Results are byte-identical for any
	// value — bursting elides only events that would fire next anyway.
	BurstSize int
}

// Option overrides one knob of an engine's Options.
type Option func(*Options)

// WithDenseTables sets Options.DenseTables.
func WithDenseTables(on bool) Option { return func(o *Options) { o.DenseTables = on } }

// WithDenseForwarding sets Options.DenseForwarding.
func WithDenseForwarding(on bool) Option { return func(o *Options) { o.DenseForwarding = on } }

// WithTimerWheel sets Options.TimerWheel.
func WithTimerWheel(on bool) Option { return func(o *Options) { o.TimerWheel = on } }

// WithPooling sets Options.Pooling.
func WithPooling(on bool) Option { return func(o *Options) { o.Pooling = on } }

// WithBurstSize sets Options.BurstSize; n <= 0 disables burst draining.
func WithBurstSize(n int) Option {
	return func(o *Options) {
		if n < 0 {
			n = 0
		}
		o.BurstSize = n
	}
}

// DefaultBurstSize is the default cap on inline deliveries per engine
// event. A burst ends the moment any other event (a timer, another pipe's
// delivery) is due first, so the cap only bounds the degenerate case of one
// pipe owning the whole window; 64 mirrors the DPDK burst convention.
const DefaultBurstSize = 64

// The process-wide default options, read once per NewEngine and mutated
// only through SetDefaultOptions (i.e. the deprecated Set* shims). Stored
// as individual atomics so concurrent harness workers can build engines
// while a (badly behaved) caller flips a default.
var (
	defDenseTables     atomic.Bool
	defDenseForwarding atomic.Bool
	defTimerWheel      atomic.Bool
	defPooling         atomic.Bool
	defBurstSize       atomic.Int64
)

func init() {
	defDenseTables.Store(true)
	defDenseForwarding.Store(true)
	defTimerWheel.Store(true)
	defPooling.Store(true)
	defBurstSize.Store(DefaultBurstSize)
}

// DefaultOptions returns the process-wide default engine configuration:
// everything on, BurstSize = DefaultBurstSize, unless a deprecated shim
// changed a default.
func DefaultOptions() Options {
	return Options{
		DenseTables:     defDenseTables.Load(),
		DenseForwarding: defDenseForwarding.Load(),
		TimerWheel:      defTimerWheel.Load(),
		Pooling:         defPooling.Load(),
		BurstSize:       int(defBurstSize.Load()),
	}
}

// SetDefaultOptions applies opts to the process-wide defaults consulted by
// NewEngine (and by the few package-level call sites with no engine in
// reach, like packet.Get), returning the previous defaults. It exists for
// the deprecated Set* shims; new code should pass Options to NewEngine or
// NewCluster instead.
func SetDefaultOptions(opts ...Option) Options {
	prev := DefaultOptions()
	next := prev
	for _, f := range opts {
		f(&next)
	}
	defDenseTables.Store(next.DenseTables)
	defDenseForwarding.Store(next.DenseForwarding)
	defTimerWheel.Store(next.TimerWheel)
	defPooling.Store(next.Pooling)
	defBurstSize.Store(int64(next.BurstSize))
	return prev
}
