package sim

import (
	"fmt"
	"sync"
)

// Cluster runs a partitioned simulation: a topology is split into N
// domains, each owning a private Engine (clock, event heap, packet free
// list, ID/seed sequences), synchronized by conservative lookahead.
//
// The protocol is classic null-message-free windowed PDES. Let L be the
// minimum link propagation delay in the topology (builders report every
// link through ObserveLinkDelay). All domains advance to T+L, boundary
// pipes deposit their cross-domain deliveries in per-pipe mailboxes
// (Outbox) instead of scheduling on the remote engine directly, the
// mailboxes are flushed, and the next window starts. This is safe because
// a packet that leaves its domain during [T, T+L) cannot arrive before
// T+L: delivery time = departure + propagation ≥ T + L, so no domain ever
// receives an event in its past.
//
// Determinism does not depend on the window size. Cross-domain deliveries
// are pushed onto the destination heap at flush time — later than a
// single-domain run would have pushed them — so same-instant ordering
// cannot be left to scheduling order. Cluster-built pipes therefore
// deliver on per-pipe lanes (Engine.AtOrdered): at equal times the
// construction-assigned lane decides, local anonymous events (lane 0)
// always precede deliveries, and within one pipe delivery times are
// strictly increasing, so no tie ever falls through to the push order.
// With identities and seeds drawn from the cluster's own sequences during
// (single-threaded) construction, a scenario's results are a pure function
// of the topology and workload — byte-identical for any N.
//
// Construction is always single-threaded. RunUntil advances the domains
// of each window sequentially by default ("cooperative" mode, always
// safe); SetParallel runs them on goroutines, which is only sound when
// nothing crosses domains outside the mailboxes at runtime — no shared
// meters, no cross-domain flow registration — as in the benchcore
// fat-tree scenario.
type Cluster struct {
	engines []*Engine
	seqs    seqTable

	lanes     uint32
	lookahead Time // min observed link delay; 0 until a link is reported
	outboxes  []*Outbox
	parallel  bool
	now       Time

	// Windows counts synchronization windows executed, for tests and the
	// benchcore report.
	Windows uint64
}

// NewCluster returns a cluster of n fresh engines (n >= 1), each configured
// by the process defaults overridden with the same opts.
func NewCluster(n int, opts ...Option) *Cluster {
	if n < 1 {
		panic("sim: cluster needs at least one domain")
	}
	c := &Cluster{engines: make([]*Engine, n)}
	for i := range c.engines {
		c.engines[i] = NewEngine(opts...)
	}
	return c
}

// N returns the number of domains.
func (c *Cluster) N() int { return len(c.engines) }

// Engine returns domain i's engine.
func (c *Cluster) Engine(i int) *Engine { return c.engines[i] }

// Engines returns all domain engines, in domain order.
func (c *Cluster) Engines() []*Engine { return c.engines }

// Now returns the cluster clock: the time every domain has advanced to.
func (c *Cluster) Now() Time { return c.now }

// NextSeq draws from the named cluster-scoped sequence. Builders derive
// component identities and RNG seeds from cluster sequences (not engine
// ones) so that a component's identity depends only on construction order,
// never on which domain it was placed in.
func (c *Cluster) NextSeq(name string) uint64 { return c.seqs.next(c.seqs.domain(name)) }

// SeqDomain registers the named cluster sequence and returns its handle;
// see Engine.SeqDomain.
func (c *Cluster) SeqDomain(name string) SeqDomain { return c.seqs.domain(name) }

// NextIn draws from a cluster sequence registered with SeqDomain.
func (c *Cluster) NextIn(d SeqDomain) uint64 { return c.seqs.next(d) }

// NextLane hands out the next ordering lane (1, 2, ...); lane 0 is the
// anonymous lane of ordinary events. Builders assign one per pipe.
func (c *Cluster) NextLane() uint32 {
	if c.lanes >= MaxLane {
		panic("sim: out of ordering lanes")
	}
	c.lanes++
	return c.lanes
}

// ObserveLinkDelay folds one link's propagation delay into the lookahead.
// Builders report every link — not just boundary ones — so the window size
// is a property of the topology alone and identical for every partitioning.
func (c *Cluster) ObserveLinkDelay(d Time) {
	if d <= 0 {
		return
	}
	if c.lookahead == 0 || d < c.lookahead {
		c.lookahead = d
	}
}

// Lookahead returns the synchronization window: the minimum reported link
// delay, or 0 when no link has been reported yet.
func (c *Cluster) Lookahead() Time { return c.lookahead }

// SetParallel switches RunUntil between advancing the window's domains
// sequentially (false, the default, always safe) and on goroutines (true;
// sound only for scenarios with no cross-domain state outside the
// mailboxes).
func (c *Cluster) SetParallel(on bool) { c.parallel = on }

// Outbox creates the mailbox for one boundary pipe, delivering into dst on
// the given ordering lane, and registers it for flushing. fn is invoked
// with each posted argument at its posted time.
func (c *Cluster) Outbox(dst *Engine, lane uint32, fn func(any)) *Outbox {
	o := &Outbox{dst: dst, lane: lane, fn: fn}
	c.outboxes = append(c.outboxes, o)
	return o
}

// RunUntil advances every domain to deadline, window by window, flushing
// the boundary mailboxes between windows, then spills the domains' packet
// free lists back to the shared pool (mirroring Engine.RunUntil).
func (c *Cluster) RunUntil(deadline Time) {
	if deadline < c.now {
		panic(fmt.Sprintf("sim: cluster run until %v which is before now %v", deadline, c.now))
	}
	if len(c.outboxes) == 0 {
		// No boundary links: the domains cannot interact, so each runs
		// straight to the deadline in one window.
		if c.now < deadline {
			c.advance(deadline)
			c.now = deadline
			c.Windows++
		}
	} else {
		L := c.lookahead
		if L <= 0 {
			panic("sim: cluster has boundary links but no positive link delay for lookahead")
		}
		for c.now < deadline {
			w := c.now + L
			if w > deadline {
				w = deadline
			}
			c.advance(w)
			c.now = w
			c.Windows++
			for _, o := range c.outboxes {
				o.flush()
			}
		}
	}
	for _, e := range c.engines {
		e.drainPool()
	}
}

// advance runs every domain to w, sequentially or on goroutines.
func (c *Cluster) advance(w Time) {
	if !c.parallel || len(c.engines) == 1 {
		for _, e := range c.engines {
			e.runTo(w)
		}
		return
	}
	var wg sync.WaitGroup
	for _, e := range c.engines {
		wg.Add(1)
		go func(e *Engine) {
			defer wg.Done()
			e.runTo(w)
		}(e)
	}
	wg.Wait()
}

// Outbox is the deterministic mailbox of one boundary pipe: the pipe's
// sending side posts (delivery time, packet) pairs during a window, and
// the cluster flushes them onto the destination engine's heap — on the
// pipe's ordering lane — once the window ends. Entries are posted in
// strictly increasing delivery time (the pipe's no-reorder rule), so a
// flush preserves the pipe's FIFO order, and cross-pipe ordering at equal
// instants is fixed by the lanes. Exactly one goroutine (the source
// domain's) posts to an outbox, and flushes happen between windows, so no
// synchronization is needed even in parallel mode.
type Outbox struct {
	dst  *Engine
	lane uint32
	fn   func(any)
	at   []Time
	args []any
}

// Post records one delivery for the next flush.
func (o *Outbox) Post(at Time, arg any) {
	o.at = append(o.at, at)
	o.args = append(o.args, arg)
}

// flush schedules the posted deliveries on the destination engine and
// empties the mailbox, keeping its storage for the next window.
func (o *Outbox) flush() {
	for i, at := range o.at {
		o.dst.AtOrdered(o.lane, at, o.fn, o.args[i])
		o.args[i] = nil
	}
	o.at = o.at[:0]
	o.args = o.args[:0]
}
