package sim

import (
	"fmt"
	"time"
)

// Cluster runs a partitioned simulation: a topology is split into N
// domains, each owning a private Engine (clock, event heap, packet free
// list, ID/seed sequences), synchronized by conservative lookahead.
//
// The protocol is null-message-free windowed PDES, scheduled per channel
// rather than through one global window. Every boundary channel (an
// Outbox) declares its minimum propagation delay at creation; the cluster
// keeps the per-domain-pair minimum as a lookahead matrix. Between rounds
// the coordinator computes, for every domain d, a bound on how far d can
// safely run:
//
//	bound[d] = min over incoming channels s→d of
//	           max( now[s] + delay(s→d),            // inclusive floor
//	                horizon(s→d, EAT[s]) − 1 )       // strict dynamic term
//
// where EAT[d] — the earliest instant domain d can possibly process an
// event — is the least fixpoint of
//
//	EAT[d] = min( nextEvent(d), min over s→d of EAT[s] + delay(s→d) )
//
// computed by relaxation (all delays are positive, so it converges), and
// horizon is the channel's own refinement: a boundary pipe reports
// max(max(EAT[s], txFreeAt) + delay, lastPlan+1), so a backlogged uplink's
// serialization backlog becomes extra lookahead for its destination. The
// floor term reproduces the classic guarantee (anything s posts while
// running leaves no earlier than its clock plus the channel delay) and
// keeps the laggard domain always runnable; the EAT terms let loosely
// coupled or momentarily idle neighbourhoods stride far past the static
// window, which is what cuts the number of rounds — and with it the
// barrier and flush passes — on real topologies.
//
// Determinism does not depend on the round schedule. Cross-domain
// deliveries are pushed onto the destination heap at flush time — later
// than a single-domain run would have pushed them — so same-instant
// ordering cannot be left to scheduling order. Cluster-built pipes
// therefore deliver on per-pipe lanes (Engine.AtOrdered): at equal times
// the construction-assigned lane decides, local anonymous events (lane 0)
// always precede deliveries, and within one pipe delivery times are
// strictly increasing, so no tie ever falls through to the push order.
// With identities and seeds drawn from the cluster's own sequences during
// (single-threaded) construction, a scenario's results are a pure function
// of the topology and workload — byte-identical for any N, and identical
// whether the domains of a round run cooperatively or on workers (the
// bounds are computed from parked engine state either way).
//
// Construction is always single-threaded. RunUntil advances the domains
// of each round sequentially by default ("cooperative" mode, always
// safe); SetParallel (or the WithParallelDomains option) runs them on one
// persistent worker goroutine per domain, parked on a channel barrier
// between rounds. That is only sound when nothing crosses domains outside
// the mailboxes at runtime — no shared meters, no cross-domain flow
// registration — as in the benchcore fat-tree scenario and the fabric
// service (whose runtime mutations all go through its boundary-only
// mailbox). Long-lived embedders must Close a parallel cluster to release
// the workers.
type Cluster struct {
	engines []*Engine
	seqs    seqTable
	index   map[*Engine]int

	lanes     uint32
	lookahead Time // min reported link delay; 0 until a link is reported
	parallel  bool
	now       Time

	outboxes []*Outbox
	inChans  [][]*Outbox // incoming boundary channels, per destination domain
	la       []Time      // lookahead matrix: la[src*N+dst] = min channel delay, 0 = no channel
	minIn    []Time      // per-domain stride quantum: min incoming channel delay, 0 = no incoming

	// Per-round scratch, sized N at construction.
	next  []Time // earliest local pending event per domain (maxTime = none)
	eat   []Time // earliest-activity fixpoint per domain
	bound []Time // per-domain advance bound for the current round
	work  []int  // domains with events due inside their bound

	workers []*domainWorker

	// Windows counts synchronization rounds executed, for tests and the
	// benchcore report.
	Windows uint64

	flushes     uint64
	flushedMsgs uint64
	advanceNS   int64
	barrierNS   int64
	loads       []DomainLoad
}

// NewCluster returns a cluster of n fresh engines (n >= 1), each configured
// by the process defaults overridden with the same opts. The
// WithParallelDomains option pre-selects parallel execution (see
// SetParallel).
func NewCluster(n int, opts ...Option) *Cluster {
	if n < 1 {
		panic("sim: cluster needs at least one domain")
	}
	c := &Cluster{
		engines: make([]*Engine, n),
		index:   make(map[*Engine]int, n),
		inChans: make([][]*Outbox, n),
		la:      make([]Time, n*n),
		minIn:   make([]Time, n),
		next:    make([]Time, n),
		eat:     make([]Time, n),
		bound:   make([]Time, n),
		work:    make([]int, 0, n),
		loads:   make([]DomainLoad, n),
	}
	for i := range c.engines {
		c.engines[i] = NewEngine(opts...)
		c.engines[i].multiDomain = n > 1
		c.index[c.engines[i]] = i
		c.loads[i].Domain = i
	}
	c.parallel = c.engines[0].Options().ParallelDomains
	return c
}

// N returns the number of domains.
func (c *Cluster) N() int { return len(c.engines) }

// Engine returns domain i's engine.
func (c *Cluster) Engine(i int) *Engine { return c.engines[i] }

// Engines returns all domain engines, in domain order.
func (c *Cluster) Engines() []*Engine { return c.engines }

// Now returns the cluster clock: the time every domain has advanced to.
func (c *Cluster) Now() Time { return c.now }

// NextSeq draws from the named cluster-scoped sequence. Builders derive
// component identities and RNG seeds from cluster sequences (not engine
// ones) so that a component's identity depends only on construction order,
// never on which domain it was placed in.
func (c *Cluster) NextSeq(name string) uint64 { return c.seqs.next(c.seqs.domain(name)) }

// SeqDomain registers the named cluster sequence and returns its handle;
// see Engine.SeqDomain.
func (c *Cluster) SeqDomain(name string) SeqDomain { return c.seqs.domain(name) }

// NextIn draws from a cluster sequence registered with SeqDomain.
func (c *Cluster) NextIn(d SeqDomain) uint64 { return c.seqs.next(d) }

// NextLane hands out the next ordering lane (1, 2, ...); lane 0 is the
// anonymous lane of ordinary events. Builders assign one per pipe.
func (c *Cluster) NextLane() uint32 {
	if c.lanes >= MaxLane {
		panic("sim: out of ordering lanes")
	}
	c.lanes++
	return c.lanes
}

// ObserveLinkDelay folds one link's propagation delay into the global
// lookahead floor. Builders report every link — not just boundary ones —
// so Lookahead stays a property of the topology alone; the scheduler
// itself runs on the per-channel matrix built by Outbox.
func (c *Cluster) ObserveLinkDelay(d Time) {
	if d <= 0 {
		return
	}
	if c.lookahead == 0 || d < c.lookahead {
		c.lookahead = d
	}
}

// Lookahead returns the global synchronization floor: the minimum reported
// link delay, or 0 when no link has been reported yet.
func (c *Cluster) Lookahead() Time { return c.lookahead }

// PairLookahead returns the lookahead matrix entry for src→dst: the
// minimum declared delay of the boundary channels from domain src into
// domain dst, or 0 when no channel connects them.
func (c *Cluster) PairLookahead(src, dst int) Time { return c.la[src*len(c.engines)+dst] }

// SetParallel switches RunUntil between advancing a round's domains
// sequentially (false, the default, always safe) and on the persistent
// domain workers (true; sound only for scenarios with no cross-domain
// state outside the mailboxes).
func (c *Cluster) SetParallel(on bool) { c.parallel = on }

// Parallel reports whether the cluster advances domains on workers.
func (c *Cluster) Parallel() bool { return c.parallel }

// Outbox creates the mailbox for one boundary channel from src's domain
// into dst's domain, delivering on the given ordering lane, and registers
// it for flushing and lookahead. delay is the channel's minimum latency
// promise: every Post must carry a delivery time at least the poster's
// clock plus delay (a pipe's propagation delay satisfies this by
// construction). fn is invoked with each posted argument at its posted
// time, on the destination engine.
func (c *Cluster) Outbox(src, dst *Engine, lane uint32, delay Time, fn func(any)) *Outbox {
	si, ok := c.index[src]
	if !ok {
		panic("sim: outbox source engine is not a cluster domain")
	}
	di, ok := c.index[dst]
	if !ok {
		panic("sim: outbox destination engine is not a cluster domain")
	}
	if si == di {
		panic("sim: outbox endpoints are in the same domain")
	}
	if delay <= 0 {
		panic("sim: boundary channel needs a positive delay")
	}
	o := &Outbox{dst: dst, lane: lane, fn: fn, srcDom: si, dstDom: di, delay: delay}
	c.outboxes = append(c.outboxes, o)
	c.inChans[di] = append(c.inChans[di], o)
	n := len(c.engines)
	if cur := c.la[si*n+di]; cur == 0 || delay < cur {
		c.la[si*n+di] = delay
	}
	if cur := c.minIn[di]; cur == 0 || delay < cur {
		c.minIn[di] = delay
	}
	c.ObserveLinkDelay(delay)
	return o
}

// RunUntil advances every domain to deadline, round by round, flushing the
// boundary mailboxes between rounds, then spills the domains' packet free
// lists back to the shared pool (mirroring Engine.RunUntil).
func (c *Cluster) RunUntil(deadline Time) {
	if deadline < c.now {
		panic(fmt.Sprintf("sim: cluster run until %v which is before now %v", deadline, c.now))
	}
	if len(c.outboxes) == 0 {
		// No boundary links: the domains cannot interact, so each runs
		// straight to the deadline in one round.
		if c.now < deadline {
			for d := range c.engines {
				c.bound[d] = deadline
				c.next[d] = 0 // force full dispatch, workers included
			}
			c.advanceRound(deadline)
			c.now = deadline
			c.Windows++
		}
	} else {
		c.runRounds(deadline)
	}
	for _, e := range c.engines {
		e.drainPool()
	}
}

// runRounds is the windowed loop: flush, compute per-domain bounds from
// the lookahead matrix and the EAT fixpoint, advance, repeat until every
// domain reaches the deadline.
func (c *Cluster) runRounds(deadline Time) {
	for {
		moved := uint64(0)
		for _, o := range c.outboxes {
			moved += uint64(o.flush())
		}
		if moved > 0 {
			c.flushes++
			c.flushedMsgs += moved
		}
		done := true
		for _, e := range c.engines {
			if e.Now() < deadline {
				done = false
				break
			}
		}
		if done {
			break
		}
		c.computeEAT()
		for d := range c.engines {
			c.bound[d] = c.boundFor(d, deadline)
		}
		c.advanceRound(deadline)
		c.Windows++
	}
	c.now = deadline
}

// computeEAT fills next (each domain's earliest local pending event) and
// eat (the least fixpoint of next under channel relaxation): eat[d] lower-
// bounds the next instant domain d processes anything, however events
// cascade through the boundary channels. maxTime means "never again".
func (c *Cluster) computeEAT() {
	for d, e := range c.engines {
		if t, ok := e.NextEventTime(); ok {
			c.next[d] = t
		} else {
			c.next[d] = maxTime
		}
		c.eat[d] = c.next[d]
	}
	for changed := true; changed; {
		changed = false
		for _, o := range c.outboxes {
			s := c.eat[o.srcDom]
			if s >= maxTime {
				continue
			}
			if t := s + o.delay; t < c.eat[o.dstDom] {
				c.eat[o.dstDom] = t
				changed = true
			}
		}
	}
}

// boundFor computes how far domain d may run this round. Every incoming
// channel contributes the later of its inclusive floor (the source clock
// plus the channel delay — the classic conservative window, which keeps
// the laggard always runnable) and its strict dynamic term (the channel
// horizon at the source's EAT, minus one so a delivery at exactly the
// horizon still lands strictly in d's future). A source that can never
// post again (EAT = maxTime) contributes no constraint.
func (c *Cluster) boundFor(d int, deadline Time) Time {
	b := deadline
	for _, o := range c.inChans[d] {
		s := o.srcDom
		if c.eat[s] >= maxTime {
			continue
		}
		hz := c.eat[s] + o.delay
		if o.horizon != nil {
			if h := o.horizon(c.eat[s]); h > hz {
				hz = h
			}
		}
		lim := hz - 1
		if floor := c.engines[s].Now() + o.delay; floor > lim {
			lim = floor
		}
		if lim < b {
			b = lim
		}
	}
	if now := c.engines[d].Now(); b < now {
		b = now
	}
	return b
}

// advanceRound runs every domain with enough headroom to its bound.
// Headroom below the domain's stride quantum (its minimum incoming channel
// delay) is left to accumulate — a loosely coupled domain then wakes once
// per large stride instead of inching along with the tightest pair in the
// cluster. The global laggard's bound always clears its own quantum (every
// source clock is at or ahead of it), so at least one domain advances
// every round and the loop cannot stall; a bound that already reached the
// deadline is always taken, so the final catch-up cannot be deferred.
// Domains with no event due inside the bound get a coordinator-side clock
// hop; the rest are dispatched — to the persistent workers in parallel
// mode, inline otherwise — and their busy time is folded into the load
// stats. The wall time of the dispatch minus the useful work is accounted
// as barrier cost.
func (c *Cluster) advanceRound(deadline Time) {
	start := time.Now()
	c.work = c.work[:0]
	progressed := false
	for d, e := range c.engines {
		b := c.bound[d]
		now := e.Now()
		if b <= now {
			continue
		}
		if b < deadline && b-now < c.minIn[d] {
			continue // below the stride quantum: let headroom accumulate
		}
		progressed = true
		if c.next[d] > b {
			e.runTo(b) // clock hop: nothing to fire before the bound
			continue
		}
		c.work = append(c.work, d)
	}
	if !progressed {
		panic("sim: cluster round made no progress — lookahead invariant broken")
	}
	if c.parallel && len(c.work) > 1 {
		if c.workers == nil {
			c.startWorkers()
		}
		for _, d := range c.work {
			c.workers[d].work <- c.bound[d]
		}
		var maxBusy int64
		for _, d := range c.work {
			busy := <-c.workers[d].done
			c.loads[d].BusyNS += busy
			c.loads[d].Runs++
			if busy > maxBusy {
				maxBusy = busy
			}
		}
		wall := time.Since(start).Nanoseconds()
		c.advanceNS += wall
		if wall > maxBusy {
			c.barrierNS += wall - maxBusy
		}
	} else {
		var sum int64
		for _, d := range c.work {
			t0 := time.Now()
			c.engines[d].runTo(c.bound[d])
			busy := time.Since(t0).Nanoseconds()
			c.loads[d].BusyNS += busy
			c.loads[d].Runs++
			sum += busy
		}
		wall := time.Since(start).Nanoseconds()
		c.advanceNS += wall
		if wall > sum {
			c.barrierNS += wall - sum
		}
	}
}

// domainWorker is one domain's persistent executor: a goroutine parked on
// the work channel between rounds. The channel send/receive pair is the
// round barrier — it publishes the coordinator's pre-round state to the
// worker and the worker's post-round engine state back, so the coordinator
// may freely read engine and pipe state between rounds even in parallel
// mode.
type domainWorker struct {
	eng  *Engine
	work chan Time
	done chan int64
}

func (w *domainWorker) loop() {
	for target := range w.work {
		start := time.Now()
		w.eng.runTo(target)
		w.done <- time.Since(start).Nanoseconds()
	}
}

// startWorkers spawns the persistent domain workers; called lazily on the
// first parallel round so cooperative clusters never pay for goroutines.
func (c *Cluster) startWorkers() {
	c.workers = make([]*domainWorker, len(c.engines))
	for i, e := range c.engines {
		w := &domainWorker{eng: e, work: make(chan Time), done: make(chan int64)}
		c.workers[i] = w
		go w.loop()
	}
}

// Close releases the persistent domain workers, if parallel execution ever
// started them. It is idempotent, and the cluster stays usable — a later
// parallel round simply starts fresh workers. Long-lived embedders (the
// fabric service, benchmark loops constructing many clusters) must call it
// so parked goroutines don't accumulate.
func (c *Cluster) Close() {
	for _, w := range c.workers {
		close(w.work)
	}
	c.workers = nil
}

// DomainLoad is one domain's execution accounting: how many rounds
// dispatched real work to it and how many nanoseconds that work ran.
// Rounds that only hopped the domain's clock forward are not counted.
type DomainLoad struct {
	Domain int    `json:"domain"`
	Runs   uint64 `json:"runs"`
	BusyNS int64  `json:"busy_ns"`
}

// SyncStats is the cluster's synchronization cost report. All durations
// are host wall-clock — they never feed back into simulation results.
// BarrierNS is the dispatch wall time not covered by useful engine work
// (sum of busy times cooperatively, the longest domain's busy time in
// parallel mode): the cost of the barrier, the dispatch bookkeeping, and —
// in parallel mode — load imbalance.
type SyncStats struct {
	Windows     uint64       `json:"windows"`
	Flushes     uint64       `json:"flushes"`
	FlushedMsgs uint64       `json:"flushed_msgs"`
	AdvanceNS   int64        `json:"advance_ns"`
	BarrierNS   int64        `json:"barrier_ns"`
	Parallel    bool         `json:"parallel"`
	Domains     []DomainLoad `json:"domains"`
}

// SyncStats returns a snapshot of the synchronization counters. Call it
// between runs (or after Close); in parallel mode the workers are parked
// then, so the per-domain numbers are stable.
func (c *Cluster) SyncStats() SyncStats {
	return SyncStats{
		Windows:     c.Windows,
		Flushes:     c.flushes,
		FlushedMsgs: c.flushedMsgs,
		AdvanceNS:   c.advanceNS,
		BarrierNS:   c.barrierNS,
		Parallel:    c.parallel,
		Domains:     append([]DomainLoad(nil), c.loads...),
	}
}

// Outbox is the deterministic mailbox of one boundary channel: the source
// domain posts (delivery time, argument) pairs during a round, and the
// cluster flushes them onto the destination engine's heap — on the
// channel's ordering lane — once the round ends. Entries are posted in
// strictly increasing delivery time (the pipe's no-reorder rule), so a
// flush preserves the channel's FIFO order, and cross-channel ordering at
// equal instants is fixed by the lanes. Exactly one goroutine (the source
// domain's) posts to an outbox and flushes happen between rounds on the
// coordinator, so the mailbox is SPSC by protocol and needs no locks even
// in parallel mode.
type Outbox struct {
	dst  *Engine
	lane uint32
	fn   func(any)

	srcDom, dstDom int
	delay          Time
	// horizon, when set, refines the channel's lookahead: given a lower
	// bound on the source domain's next activity it returns a lower bound
	// on the earliest delivery the channel can still produce (a pipe folds
	// its transmitter backlog and no-reorder watermark in). Read by the
	// coordinator between rounds only.
	horizon func(Time) Time

	entries []outboxEntry

	// peak/checks implement the shrink policy: after shrinkCheckEvery
	// flushes, a backing array grown far beyond the recent peak is
	// reallocated, so one burst window doesn't pin worst-case memory for
	// the rest of a long-running fabric's life.
	peak   int
	checks int
}

type outboxEntry struct {
	at  Time
	arg any
}

// SetHorizon installs the channel's dynamic lookahead refinement; see the
// horizon field. The returned time must never exceed any delivery the
// channel can still post.
func (o *Outbox) SetHorizon(fn func(Time) Time) { o.horizon = fn }

// Post records one delivery for the next flush. at must be no earlier than
// the poster's current time plus the channel's declared delay.
func (o *Outbox) Post(at Time, arg any) {
	o.entries = append(o.entries, outboxEntry{at, arg})
}

// shrinkCheckEvery is how many flushes pass between shrink decisions, and
// shrinkSlack is how far capacity may exceed the recent peak before the
// backing array is reallocated.
const (
	shrinkCheckEvery = 64
	shrinkSlack      = 4
)

// flush schedules the posted deliveries on the destination engine, empties
// the mailbox, and returns how many entries it moved. The backing array is
// kept across flushes, but periodically shrunk back toward the recent peak
// so an oversized burst window doesn't pin its worst case forever.
func (o *Outbox) flush() int {
	n := len(o.entries)
	for i := range o.entries {
		e := &o.entries[i]
		o.dst.AtOrdered(o.lane, e.at, o.fn, e.arg)
		e.arg = nil
	}
	o.entries = o.entries[:0]
	if n > o.peak {
		o.peak = n
	}
	if o.checks++; o.checks >= shrinkCheckEvery {
		if cap(o.entries) > 64 && cap(o.entries) > shrinkSlack*o.peak {
			next := 2 * o.peak
			if next < 16 {
				next = 16
			}
			o.entries = make([]outboxEntry, 0, next)
		}
		o.peak, o.checks = 0, 0
	}
	return n
}
