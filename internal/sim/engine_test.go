package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	e.At(30, func() { got = append(got, e.Now()) })
	e.At(10, func() { got = append(got, e.Now()) })
	e.At(20, func() { got = append(got, e.Now()) })
	e.Run()
	want := []Time{10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEngineSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events fired out of order: %v", order)
		}
	}
}

func TestEngineAfterUsesCurrentTime(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(100, func() {
		e.After(50, func() { at = e.Now() })
	})
	e.Run()
	if at != 150 {
		t.Fatalf("nested After fired at %v, want 150", at)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(10, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() is false after Cancel")
	}
	if e.Processed != 0 {
		t.Fatalf("Processed = %d, want 0", e.Processed)
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %d events by t=25, want 2", len(fired))
	}
	if e.Now() != 25 {
		t.Fatalf("clock at %v after RunUntil(25)", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("fired %d events total, want 4", len(fired))
	}
	if e.Pending() != 0 {
		t.Fatalf("%d events still pending", e.Pending())
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(50, func() {})
}

func TestEngineClockNeverGoesBackwards(t *testing.T) {
	// Property: for any set of event times, observed firing times are
	// monotonically non-decreasing.
	f := func(delays []uint16) bool {
		e := NewEngine()
		last := Time(-1)
		ok := true
		for _, d := range delays {
			e.At(Time(d), func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRandExpTimeMean(t *testing.T) {
	r := NewRand(99)
	const mean = Time(1000000)
	var sum Time
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.ExpTime(mean)
	}
	avg := float64(sum) / n
	if avg < 0.97*float64(mean) || avg > 1.03*float64(mean) {
		t.Fatalf("exponential mean %v, want ~%v", avg, mean)
	}
}

func TestRandIntnBounds(t *testing.T) {
	r := NewRand(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	r := NewRand(11)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		5:           "5ns",
		1500:        "1.500us",
		2500000:     "2.500ms",
		3 * Second:  "3.000s",
		Microsecond: "1.000us",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(in), got, want)
		}
	}
}

func TestNextSeqPerDomainAndPerEngine(t *testing.T) {
	e := NewEngine()
	if e.NextSeq("a") != 1 || e.NextSeq("a") != 2 {
		t.Fatal("sequence not monotonic from 1")
	}
	if e.NextSeq("b") != 1 {
		t.Fatal("domains share a counter")
	}
	if NewEngine().NextSeq("a") != 1 {
		t.Fatal("engines share a counter")
	}
}
