// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is intentionally single-threaded: given the same seed and the
// same sequence of Schedule calls, a run is bit-for-bit reproducible, which
// is what the experiment harness and the regression tests rely on. Events
// scheduled for the same instant fire in scheduling order.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulated instant, in nanoseconds since the start of the run.
type Time int64

// Convenient duration constants in simulated time.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds converts the time to floating-point seconds, for rate math and
// report formatting.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// String renders the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/1e6)
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/1e3)
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Event is a scheduled callback. It can be cancelled before it fires; a
// cancelled event stays in the heap but is skipped when popped.
type Event struct {
	at        Time
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.cancelled = true
	}
}

// Cancelled reports whether Cancel was called.
func (e *Event) Cancelled() bool { return e != nil && e.cancelled }

// Time returns the instant the event is scheduled for.
func (e *Event) Time() Time { return e.at }

// Engine owns the simulated clock and the pending-event heap.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap
	ids    map[string]uint64
	// Processed counts events that have fired (not cancelled ones); it is
	// exposed for benchmarks and sanity checks.
	Processed uint64
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// NextSeq returns the next value (1, 2, ...) of the named per-engine
// sequence. Components derive identifiers and RNG seeds from these
// sequences instead of process globals, so a run is fully determined by
// its engine: two runs that build the same topology and schedule the same
// events get identical IDs and random streams, no matter how many other
// engines run before or concurrently with them.
func (e *Engine) NextSeq(domain string) uint64 {
	if e.ids == nil {
		e.ids = make(map[string]uint64)
	}
	e.ids[domain]++
	return e.ids[domain]
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a logic error in a discrete-event model.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v which is before now %v", t, e.now))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Pending reports the number of events still in the heap, including
// cancelled ones that have not been popped yet.
func (e *Engine) Pending() int { return len(e.events) }

// Step fires the earliest pending event and returns true, or returns false
// if the heap is empty. Cancelled events are discarded without firing.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		ev.fn()
		e.Processed++
		return true
	}
	return false
}

// Run fires events until the heap is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamps <= deadline and then advances the
// clock to the deadline. Events scheduled beyond the deadline stay pending.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.events) > 0 {
		next := e.events[0]
		if next.cancelled {
			heap.Pop(&e.events)
			continue
		}
		if next.at > deadline {
			break
		}
		heap.Pop(&e.events)
		e.now = next.at
		next.fn()
		e.Processed++
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// eventHeap orders events by (time, seq) so same-instant events fire in
// scheduling order, keeping runs deterministic.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
