// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is intentionally single-threaded: given the same seed and the
// same sequence of Schedule calls, a run is bit-for-bit reproducible, which
// is what the experiment harness and the regression tests rely on. Events
// scheduled for the same instant fire in scheduling order.
//
// The event core is built for the per-packet hot path:
//
//   - a 4-ary index heap (shallower than a binary heap, so fewer
//     comparisons and pointer moves per push/pop on the deep queues a
//     packet simulation builds);
//   - cancelled events are counted and opportunistically compacted away,
//     so Pending reports live events and cancel-heavy workloads do not
//     drag tombstones through every sift;
//   - timers can be rescheduled in place (Reschedule), so a retransmission
//     timer that re-arms on every ACK reuses one Event allocation for the
//     life of the flow;
//   - fire-and-forget callbacks (AtDetached/AfterDetached) live inline in
//     the heap slots — no Event object exists for them — making
//     steady-state packet forwarding allocation-free;
//   - timer-class events (RTO, pacing, periodic ticks) ride a second lane,
//     the hierarchical timing wheel of wheel.go, with O(1) arm/disarm/
//     re-arm and no tombstones; the dispatch loop merges the two lanes by
//     (time, ordering word), so lane choice never changes event order.
package sim

import "fmt"

// Time is a simulated instant, in nanoseconds since the start of the run.
type Time int64

// Convenient duration constants in simulated time.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds converts the time to floating-point seconds, for rate math and
// report formatting.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// String renders the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/1e6)
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/1e3)
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Event is a scheduled callback. It can be cancelled before it fires, or
// moved with Engine.Reschedule. A cancelled event stays in the heap as a
// tombstone until it is popped or compacted away; tombstones are excluded
// from Pending.
type Event struct {
	at  Time
	seq uint64
	eng *Engine

	fn func()

	index     int // heap index, -1 once popped
	cancelled bool
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e == nil || e.cancelled {
		return
	}
	e.cancelled = true
	if e.index >= 0 && e.eng != nil {
		e.eng.dead++
		e.eng.maybeCompact()
	}
}

// Cancelled reports whether Cancel was called.
func (e *Event) Cancelled() bool { return e != nil && e.cancelled }

// Pending reports whether the event is in the heap and will fire. Timer
// owners use it to skip a Reschedule when an already-armed event fires no
// later than needed (the lazy re-arm pattern: let it fire and re-check).
func (e *Event) Pending() bool { return e != nil && e.index >= 0 && !e.cancelled }

// Time returns the instant the event is scheduled for.
func (e *Event) Time() Time { return e.at }

// The pending-event heap is stored as two parallel arrays: 16-byte keys
// (what sift comparisons read — four children fit in one cache line) and
// the payloads (moved in tandem, never compared). Exactly one of a
// payload's ev and fnArg is set. Handle events (At/After/Reschedule) carry
// an *Event so the caller can cancel or re-arm them. Detached events
// (AtDetached) carry their callback inline: no Event object exists at all,
// so scheduling one allocates nothing and firing one dereferences nothing.
// The seq field actually holds an *ordering word*: lane<<laneOrdShift | seq.
// Ordinary events run on lane 0, so their word is the raw scheduling
// sequence and same-instant events fire in scheduling order, as ever.
// Components that must order same-instant events identically regardless of
// when (or on which engine) the event was pushed — boundary-pipe deliveries
// flushed from a cluster mailbox versus local deliveries armed in place —
// schedule through AtOrdered with a construction-assigned lane: at equal
// times the lane decides, and the push-order-dependent seq only breaks ties
// within one lane, where producers are strictly ordered by construction.
type heapKey struct {
	at  Time
	seq uint64
}

type heapVal struct {
	ev    *Event
	fnArg func(any)
	arg   any
}

// setIndex records the slot's heap position in its Event; detached slots
// have none to maintain.
func (e *Engine) setIndex(i int) {
	if ev := e.vals[i].ev; ev != nil {
		ev.index = i
	}
}

// Engine owns the simulated clock and the two scheduling lanes: the
// pending-event heap for packet and delivery events, and the hierarchical
// timing wheel (see wheel.go) for cancellable, re-armable timers. The
// dispatch loop merges the lanes by (time, ordering word), so which lane
// an event rode is invisible to the model.
type Engine struct {
	now  Time
	seq  uint64
	keys []heapKey // 4-ary min-heap on (at, ord)
	vals []heapVal // payloads, parallel to keys
	dead int       // cancelled events still in the heap
	seqs seqTable
	opt  Options

	// deadline is the inclusive bound of the dispatch loop currently
	// running (Run/RunUntil/runTo); 0 when no bounded dispatch is active
	// (e.g. during a bare Step), which disables inline burst draining.
	// Bursts may only consume events up to the deadline, so a windowed
	// cluster run can never drain a delivery past its window boundary.
	deadline Time

	// hole is true while the root slot holds the event currently firing:
	// the dispatch loop defers the physical pop so that the first event
	// the handler schedules can drop straight into the root with one
	// sift-down, fusing the pop's down + push's up of the ubiquitous
	// fire-then-reschedule pattern into a single down. While the hole is
	// open the root key is stale; peekHeap and Pending compensate, and
	// every path that moves heap slots (Reschedule, compaction) closes the
	// hole first.
	hole bool

	// wheel is the timer lane; nil when the engine was built with
	// WithTimerWheel(false), in which case Timer handles fall back to heap
	// events.
	wheel *timerWheel

	// Processed counts events that have fired (not cancelled ones); it is
	// exposed for benchmarks and sanity checks.
	Processed uint64

	// Inlined counts deliveries drained inline by burst mode — each one an
	// engine event (heap push + pop + dispatch) that never had to exist.
	Inlined uint64

	// packetPool is an opaque per-engine slot the packet package uses for
	// its engine-local free list (sim cannot import packet). See
	// PacketPoolSlot.
	packetPool any

	// multiDomain is set by NewCluster on every engine of a 2+ domain
	// cluster. Components built on the engine consult it (MultiDomain) to
	// decide whether state reachable from another domain — a host's flow
	// dispatch table, a shared stats sink — must be guarded for the
	// parallel window mode, where a sender created at runtime in one
	// domain registers its receiving half on a host whose own worker is
	// mid-window. Single-engine construction leaves it false and those
	// guards compile down to an untaken branch.
	multiDomain bool
}

// MultiDomain reports whether the engine is one domain of a 2+ domain
// cluster, i.e. whether objects built on it can be reached from other
// domains at runtime.
func (e *Engine) MultiDomain() bool { return e.multiDomain }

// PacketPoolSlot returns a pointer to the engine's opaque packet-pool slot.
// The packet package stores the engine-local free list here so parallel
// engines never contend on the process-wide pool; nothing in sim touches
// the value.
func (e *Engine) PacketPoolSlot() *any { return &e.packetPool }

// NewEngine returns an engine with the clock at zero and no pending events,
// configured by the process defaults overridden with opts. The timer-wheel
// lane is materialized here when enabled (the default), so one engine's
// lane choice — like every other option — is fixed for its lifetime.
func NewEngine(opts ...Option) *Engine {
	o := DefaultOptions()
	for _, f := range opts {
		f(&o)
	}
	e := &Engine{opt: o}
	if o.TimerWheel {
		e.wheel = newTimerWheel()
	}
	return e
}

// Options returns the engine's configuration, fixed at construction.
// Components built on the engine (switches, hosts, pipes, pools) read
// their layout and burst knobs from here instead of package globals.
func (e *Engine) Options() Options { return e.opt }

// EngineStats is a snapshot of the engine's dispatch counters, following
// the repo-wide stats convention (value type, no locks held).
type EngineStats struct {
	Now       Time   `json:"now_ns"`
	Processed uint64 `json:"processed"`
	Inlined   uint64 `json:"inlined"`
	Pending   int    `json:"pending"`
}

// Stats returns a snapshot of the clock and event counters.
func (e *Engine) Stats() EngineStats {
	return EngineStats{Now: e.now, Processed: e.Processed, Inlined: e.Inlined, Pending: e.Pending()}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// NextSeq returns the next value (1, 2, ...) of the named per-engine
// sequence. Components derive identifiers and RNG seeds from these
// sequences instead of process globals, so a run is fully determined by
// its engine: two runs that build the same topology and schedule the same
// events get identical IDs and random streams, no matter how many other
// engines run before or concurrently with them.
//
// NextSeq is the convenience form: it pays a map probe on the name every
// call. Hot callers should register the name once with SeqDomain and draw
// through NextIn.
func (e *Engine) NextSeq(domain string) uint64 {
	return e.seqs.next(e.seqs.domain(domain))
}

// SeqDomain registers (or finds) the named sequence and returns its handle.
// Handles are small integers valid for the life of the engine; drawing
// through one (NextIn) skips the per-call string hash and map probe that
// NextSeq pays.
func (e *Engine) SeqDomain(name string) SeqDomain { return e.seqs.domain(name) }

// NextIn returns the next value (1, 2, ...) of a sequence previously
// registered with SeqDomain.
func (e *Engine) NextIn(d SeqDomain) uint64 { return e.seqs.next(d) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a logic error in a discrete-event model.
func (e *Engine) At(t Time, fn func()) *Event {
	e.checkTime(t)
	ev := &Event{at: t, seq: e.seq, fn: fn, eng: e}
	e.seq++
	e.push(ev)
	return ev
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// AtDetached schedules fn(arg) at absolute time t without returning a
// handle: the event cannot be cancelled or rescheduled, which is exactly
// what lets it live inline in a heap node — no Event object is created, so
// scheduling and firing per-packet callbacks (transmit-done, delivery)
// allocates nothing and never touches Event memory.
func (e *Engine) AtDetached(t Time, fn func(any), arg any) {
	e.checkTime(t)
	k := heapKey{at: t, seq: e.seq}
	e.seq++
	e.place(k, heapVal{fnArg: fn, arg: arg})
}

// AfterDetached schedules fn(arg) to run d nanoseconds from now; see
// AtDetached.
func (e *Engine) AfterDetached(d Time, fn func(any), arg any) {
	if d < 0 {
		d = 0
	}
	e.AtDetached(e.now+d, fn, arg)
}

// laneOrdShift positions the lane in the high bits of the ordering word.
// 2^40 scheduling sequence numbers per engine (~a week of simulated
// traffic at the hot-path event rate) and 2^24 lanes per cluster are both
// far beyond any run this simulator hosts.
const laneOrdShift = 40

// MaxLane is the largest lane AtOrdered accepts.
const MaxLane = 1<<24 - 1

// AtOrdered is AtDetached on an explicit ordering lane: among events
// scheduled for the same instant, a lower lane fires first, and only ties
// within one lane fall back to scheduling order. Lane 0 is the anonymous
// lane every other scheduling call uses. Cluster-built pipes deliver on
// per-pipe lanes so that a partitioned run — where a boundary delivery is
// pushed by the window flush rather than at plan time — fires same-instant
// events in exactly the order the single-domain run does.
func (e *Engine) AtOrdered(lane uint32, t Time, fn func(any), arg any) {
	e.checkTime(t)
	k := heapKey{at: t, seq: uint64(lane)<<laneOrdShift | e.seq}
	e.seq++
	e.place(k, heapVal{fnArg: fn, arg: arg})
}

// The burst-drain protocol. A pipe whose deliveries are strictly ordered
// can elide the heap push/pop pair of its next delivery when that delivery
// is provably the engine's next event anyway:
//
//	ord := e.ReserveOrd(lane)      // draw the ordering word where AtOrdered would
//	dst.Receive(pkt)               // the receiver may schedule events
//	if e.InlineRunnable(at, ord) { // would (at, ord) fire next, within the window?
//	    e.AdvanceInline(at)        // yes: run it here, no event exists
//	} else {
//	    e.ScheduleReserved(at, ord, fn, arg) // no: arm it with the reserved word
//	}
//
// Determinism is exact, not approximate: the ordering word is drawn at the
// same logical point the per-packet path draws it (before Receive), so
// every event — inlined or armed — carries the key it would have carried,
// and InlineRunnable compares that key against both scheduling lanes. An
// inlined delivery therefore fires exactly when and where the per-packet
// schedule would have fired it; only the heap traffic disappears.

// ReserveOrd draws the next ordering word for the lane without scheduling
// anything; pair it with ScheduleReserved or an inline dispatch. Reserving
// consumes one scheduling sequence number, exactly like AtOrdered.
func (e *Engine) ReserveOrd(lane uint32) uint64 {
	ord := uint64(lane)<<laneOrdShift | e.seq
	e.seq++
	return ord
}

// ScheduleReserved schedules fn(arg) at absolute time t under a previously
// reserved ordering word. It is AtOrdered with the draw already made.
func (e *Engine) ScheduleReserved(t Time, ord uint64, fn func(any), arg any) {
	e.checkTime(t)
	e.place(heapKey{at: t, seq: ord}, heapVal{fnArg: fn, arg: arg})
}

// InlineRunnable reports whether an event with key (t, ord) would be the
// very next event the dispatch loop fires — no pending heap event or armed
// wheel timer precedes it — and t lies within the currently running
// bounded dispatch. False whenever no bounded dispatch is active, which
// disables bursting under bare Step loops.
func (e *Engine) InlineRunnable(t Time, ord uint64) bool {
	if e.deadline == 0 || t > e.deadline {
		return false
	}
	k := heapKey{at: t, seq: ord}
	if hk, ok := e.peekHeap(); ok && less(hk, k) {
		return false
	}
	if e.wheel != nil && e.wheel.live > 0 {
		if wk, _ := e.wheel.peek(e.now); less(wk, k) {
			return false
		}
	}
	return true
}

// InlineTruncated reports whether an inline dispatch of an event at t is
// ruled out by the dispatch bound itself — no bounded dispatch is running,
// or t lies beyond its deadline — rather than by competing events. Burst
// probers use this to tell a window truncation (try again next window)
// from an interleave defeat (worth backing off from).
func (e *Engine) InlineTruncated(t Time) bool {
	return e.deadline == 0 || t > e.deadline
}

// AdvanceInline moves the clock to t for an inlined event the caller has
// proved runnable with InlineRunnable, and accounts the elided event.
func (e *Engine) AdvanceInline(t Time) {
	e.now = t
	e.Inlined++
}

// Reschedule moves a timer to fire fn at absolute time t, reusing ev when
// possible instead of allocating: a pending event (cancelled or not) is
// updated and sifted in place; an already-fired event object is pushed
// back onto the heap. The rescheduled event takes a fresh sequence number,
// so it orders among same-instant events exactly as a newly scheduled one
// would. A nil fn keeps the event's current callback.
//
// The caller must be the sole holder of ev (true for the timer fields
// transport keeps); passing nil ev simply schedules a new event.
func (e *Engine) Reschedule(ev *Event, t Time, fn func()) *Event {
	e.checkTime(t)
	if ev == nil {
		return e.At(t, fn)
	}
	if ev.cancelled {
		ev.cancelled = false
		if ev.index >= 0 {
			e.dead--
		}
	}
	ev.at = t
	ev.seq = e.seq
	e.seq++
	if fn != nil {
		ev.fn = fn
	}
	ev.eng = e
	if ev.index >= 0 {
		if e.hole {
			e.closeHole() // fix moves slots; indices must be consistent
		}
		e.fix(ev.index)
	} else {
		e.push(ev)
	}
	return ev
}

// RescheduleAfter moves a timer to fire fn d nanoseconds from now; see
// Reschedule.
func (e *Engine) RescheduleAfter(ev *Event, d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.Reschedule(ev, e.now+d, fn)
}

func (e *Engine) checkTime(t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v which is before now %v", t, e.now))
	}
}

// Pending reports the number of live (non-cancelled) events across both
// lanes: heap events minus tombstones, plus armed wheel timers (the wheel
// has no tombstones to exclude).
func (e *Engine) Pending() int {
	n := len(e.keys) - e.dead
	if e.hole {
		n-- // the stale root is the event currently firing, not pending
	}
	if e.wheel != nil {
		n += e.wheel.live
	}
	return n
}

// NextEventTime reports the earliest pending instant across the heap and
// wheel lanes, or ok=false when the engine has nothing scheduled. The
// cluster coordinator reads it between rounds to bound how far a domain's
// neighbours may safely run.
func (e *Engine) NextEventTime() (Time, bool) {
	hk, ok := e.peekHeap()
	at := hk.at
	if e.wheel != nil && e.wheel.live > 0 {
		if wk, _ := e.wheel.peek(e.now); !ok || wk.at < at {
			at, ok = wk.at, true
		}
	}
	return at, ok
}

// peekHeap discards tombstones from the heap root and reports the key of
// the earliest live heap event, or ok=false when the heap has none.
func (e *Engine) peekHeap() (heapKey, bool) {
	if e.hole {
		return e.peekSansRoot()
	}
	for len(e.keys) > 0 {
		if v := e.vals[0]; v.ev != nil && v.ev.cancelled {
			e.pop()
			e.dead--
			continue
		}
		return e.keys[0], true
	}
	return heapKey{}, false
}

// peekSansRoot reports the earliest heap key excluding the stale root of an
// open hole: by the heap property that is the least of the root's (at most
// four) children. Tombstones are not discarded here — a cancelled child's
// key is a conservative answer for InlineRunnable, and the dispatch loop
// purges tombstones at its top, when the hole is closed.
func (e *Engine) peekSansRoot() (heapKey, bool) {
	n := len(e.keys)
	if n <= 1 {
		return heapKey{}, false
	}
	min := 1
	last := 5
	if last > n {
		last = n
	}
	for c := 2; c < last; c++ {
		if less(e.keys[c], e.keys[min]) {
			min = c
		}
	}
	return e.keys[min], true
}

// Step fires the earliest pending event — merging the heap and wheel lanes
// by (time, ordering word) — and returns true, or returns false when both
// lanes are empty. Cancelled heap events are discarded without firing.
// Keys never compare equal across lanes: both draw from the one scheduling
// sequence, so the merge is a strict total order.
func (e *Engine) Step() bool {
	hk, hasHeap := e.peekHeap()
	if e.wheel != nil && e.wheel.live > 0 {
		wk, wt := e.wheel.peek(e.now)
		if !hasHeap || less(wk, hk) {
			e.wheel.remove(wt)
			e.now = wk.at
			wt.fn()
			e.Processed++
			return true
		}
	}
	if !hasHeap {
		return false
	}
	v := e.vals[0]
	if ev := v.ev; ev != nil {
		ev.index = -1
	}
	e.hole = true
	e.now = hk.at
	e.fire(v)
	e.Processed++
	if e.hole {
		e.closeHole()
	}
	return true
}

// maxTime is the deadline sentinel for an unbounded dispatch (Run): far
// enough out that no schedulable time exceeds it, distinguishable from the
// zero that means "no dispatch active".
const maxTime = Time(1<<62 - 1)

// Run fires events until both lanes are empty.
func (e *Engine) Run() {
	e.deadline = maxTime
	for e.Step() {
	}
	e.deadline = 0
}

// RunUntil fires events with timestamps <= deadline and then advances the
// clock to the deadline. Events scheduled beyond the deadline stay pending.
func (e *Engine) RunUntil(deadline Time) {
	e.runTo(deadline)
	e.drainPool()
}

// runTo is RunUntil without the pool spill: the cluster's windowed loop
// calls it once per lookahead window, where draining the free list every
// window would throw the pooled packets away thousands of times per run.
// Wheel timers respect the deadline exactly like heap events, so a
// windowed cluster run can never skip a timer past a window boundary.
func (e *Engine) runTo(deadline Time) {
	e.deadline = deadline
	defer func() { e.deadline = 0 }()
	for {
		hk, hasHeap := e.peekHeap()
		if e.wheel != nil && e.wheel.live > 0 {
			wk, wt := e.wheel.peek(e.now)
			if !hasHeap || less(wk, hk) {
				if wk.at > deadline {
					break
				}
				e.wheel.remove(wt)
				e.now = wk.at
				wt.fn()
				e.Processed++
				continue
			}
		}
		if !hasHeap || hk.at > deadline {
			break
		}
		// Deferred pop: open the root hole and fire. The handler's first
		// scheduling call refills the root directly (see place); only a
		// handler that schedules nothing pays the full pop.
		v := e.vals[0]
		if ev := v.ev; ev != nil {
			ev.index = -1
		}
		e.hole = true
		e.now = hk.at
		e.fire(v)
		e.Processed++
		if e.hole {
			e.closeHole()
		}
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// drainPool spills the engine-local packet free list back to the shared
// pool so a finished run's packets are not stranded with the dying engine:
// the next engine in the process (another benchmark iteration, the next
// sweep job) refills from the shared tier instead of the allocator. Called
// once per RunUntil, not per event, so the assertion cost is noise.
func (e *Engine) drainPool() {
	if d, ok := e.packetPool.(interface{ Drain() }); ok {
		d.Drain()
	}
}

// fire invokes the slot's callback. The slot was already popped; it is
// passed by value so the callback may freely schedule new events.
func (e *Engine) fire(v heapVal) {
	if v.ev != nil {
		v.ev.fn()
		return
	}
	v.fnArg(v.arg)
}

// maybeCompact rebuilds the heap without tombstones once cancelled events
// outnumber live ones (and there are enough of them to matter). This keeps
// cancel-heavy workloads — retransmission timers under steady ACK clocking
// — from sifting dead weight on every operation.
func (e *Engine) maybeCompact() {
	if e.dead < 64 || e.dead*2 <= len(e.keys) {
		return
	}
	if e.hole {
		e.closeHole() // never rebuild the heap around a stale root
	}
	liveK, liveV := e.keys[:0], e.vals[:0]
	for i, v := range e.vals {
		if v.ev != nil && v.ev.cancelled {
			v.ev.index = -1
			continue
		}
		liveK = append(liveK, e.keys[i])
		liveV = append(liveV, v)
	}
	for i := len(liveK); i < len(e.keys); i++ {
		e.keys[i] = heapKey{}
		e.vals[i] = heapVal{}
	}
	e.keys, e.vals = liveK, liveV
	e.dead = 0
	// Floyd heapify: sift down every internal node.
	if n := len(e.keys); n > 1 {
		for i := (n - 2) / 4; i >= 0; i-- {
			e.down(i)
		}
	}
	for i := range e.keys {
		e.setIndex(i)
	}
}

// ---------------------------------------------------------------------------
// 4-ary index heap on (at, seq). Child c of node i is 4i+1 … 4i+4; the
// parent of i is (i-1)/4. Shallower than a binary heap: a million pending
// events sit 10 levels deep instead of 20. Keys live inline in heapNode so
// every comparison during a sift is a sequential read of the node array.

func less(a, b heapKey) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) push(ev *Event) {
	e.place(heapKey{at: ev.at, seq: ev.seq}, heapVal{ev: ev})
}

// place inserts one heap slot. When the dispatch loop's root hole is open
// (see Engine.hole), the slot drops straight into the root and sifts down —
// the fused form of pop-then-push. Otherwise it appends and sifts up; both
// paths record final positions via setIndex.
func (e *Engine) place(key heapKey, val heapVal) {
	if e.hole {
		e.hole = false
		e.keys[0] = key
		e.vals[0] = val
		e.down(0)
		return
	}
	i := len(e.keys)
	e.keys = append(e.keys, key)
	e.vals = append(e.vals, val)
	e.up(i)
}

// closeHole physically removes the stale root left by a deferred pop: the
// fired handler scheduled nothing, so the last slot moves up as a normal
// pop would have done. The stale payload is cleared first so pop cannot
// touch the fired event object (the handler may have re-armed it elsewhere
// in the heap).
func (e *Engine) closeHole() {
	e.hole = false
	e.vals[0] = heapVal{}
	e.pop()
}

// pop removes the heap root; callers copy the root's key/val first.
func (e *Engine) pop() {
	if ev := e.vals[0].ev; ev != nil {
		ev.index = -1
	}
	n := len(e.keys) - 1
	e.keys[0] = e.keys[n]
	e.vals[0] = e.vals[n]
	e.keys[n] = heapKey{}
	e.vals[n] = heapVal{}
	e.keys = e.keys[:n]
	e.vals = e.vals[:n]
	if n > 0 {
		e.down(0) // records the moved slot's final position
	}
}

func (e *Engine) up(i int) {
	k := e.keys
	key := k[i]
	val := e.vals[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !less(key, k[parent]) {
			break
		}
		k[i] = k[parent]
		e.vals[i] = e.vals[parent]
		e.setIndex(i)
		i = parent
	}
	k[i] = key
	e.vals[i] = val
	e.setIndex(i)
}

func (e *Engine) down(i int) {
	k := e.keys
	n := len(k)
	key := k[i]
	val := e.vals[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if less(k[c], k[min]) {
				min = c
			}
		}
		if !less(k[min], key) {
			break
		}
		k[i] = k[min]
		e.vals[i] = e.vals[min]
		e.setIndex(i)
		i = min
	}
	k[i] = key
	e.vals[i] = val
	e.setIndex(i)
}

// fix restores heap order after the event at index i changed its key,
// refreshing the inline key from the event first.
func (e *Engine) fix(i int) {
	ev := e.vals[i].ev
	e.keys[i] = heapKey{at: ev.at, seq: ev.seq}
	e.up(i)
	e.down(ev.index)
}
