// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is intentionally single-threaded: given the same seed and the
// same sequence of Schedule calls, a run is bit-for-bit reproducible, which
// is what the experiment harness and the regression tests rely on. Events
// scheduled for the same instant fire in scheduling order.
//
// The event core is built for the per-packet hot path:
//
//   - a 4-ary index heap (shallower than a binary heap, so fewer
//     comparisons and pointer moves per push/pop on the deep queues a
//     packet simulation builds);
//   - cancelled events are counted and opportunistically compacted away,
//     so Pending reports live events and cancel-heavy workloads do not
//     drag tombstones through every sift;
//   - timers can be rescheduled in place (Reschedule), so a retransmission
//     timer that re-arms on every ACK reuses one Event allocation for the
//     life of the flow;
//   - fire-and-forget callbacks (AtDetached/AfterDetached) hand the Event
//     object back to an engine-owned free list when they fire, making
//     steady-state packet forwarding allocation-free.
package sim

import "fmt"

// Time is a simulated instant, in nanoseconds since the start of the run.
type Time int64

// Convenient duration constants in simulated time.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Seconds converts the time to floating-point seconds, for rate math and
// report formatting.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// String renders the time with an adaptive unit.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/1e6)
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/1e3)
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Event is a scheduled callback. It can be cancelled before it fires, or
// moved with Engine.Reschedule. A cancelled event stays in the heap as a
// tombstone until it is popped or compacted away; tombstones are excluded
// from Pending.
type Event struct {
	at  Time
	seq uint64
	eng *Engine

	// Exactly one of fn and fnArg is set. The argful form lets hot-path
	// callers reuse one long-lived closure instead of capturing per packet.
	fn    func()
	fnArg func(any)
	arg   any

	index     int // heap index, -1 once popped
	cancelled bool
	// detached events were scheduled with AtDetached: no caller holds a
	// handle, so the engine recycles the object once it fires.
	detached bool
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e == nil || e.cancelled {
		return
	}
	e.cancelled = true
	if e.index >= 0 && e.eng != nil {
		e.eng.dead++
		e.eng.maybeCompact()
	}
}

// Cancelled reports whether Cancel was called.
func (e *Event) Cancelled() bool { return e != nil && e.cancelled }

// Time returns the instant the event is scheduled for.
func (e *Event) Time() Time { return e.at }

// Engine owns the simulated clock and the pending-event heap.
type Engine struct {
	now  Time
	seq  uint64
	heap []*Event // 4-ary min-heap on (at, seq)
	dead int      // cancelled events still in the heap
	free []*Event // recycled detached events
	ids  map[string]uint64
	// Processed counts events that have fired (not cancelled ones); it is
	// exposed for benchmarks and sanity checks.
	Processed uint64
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// NextSeq returns the next value (1, 2, ...) of the named per-engine
// sequence. Components derive identifiers and RNG seeds from these
// sequences instead of process globals, so a run is fully determined by
// its engine: two runs that build the same topology and schedule the same
// events get identical IDs and random streams, no matter how many other
// engines run before or concurrently with them.
func (e *Engine) NextSeq(domain string) uint64 {
	if e.ids == nil {
		e.ids = make(map[string]uint64)
	}
	e.ids[domain]++
	return e.ids[domain]
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// it is always a logic error in a discrete-event model.
func (e *Engine) At(t Time, fn func()) *Event {
	e.checkTime(t)
	ev := &Event{at: t, seq: e.seq, fn: fn, eng: e}
	e.seq++
	e.push(ev)
	return ev
}

// After schedules fn to run d nanoseconds from now.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// AtDetached schedules fn(arg) at absolute time t without returning a
// handle: the event cannot be cancelled or rescheduled, which is exactly
// what lets the engine recycle the Event object the moment it fires.
// Hot paths that schedule per-packet callbacks (transmit-done, delivery)
// use this with one long-lived fn, so steady-state forwarding allocates
// neither Events nor closures.
func (e *Engine) AtDetached(t Time, fn func(any), arg any) {
	e.checkTime(t)
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &Event{}
	}
	*ev = Event{at: t, seq: e.seq, fnArg: fn, arg: arg, eng: e, detached: true}
	e.seq++
	e.push(ev)
}

// AfterDetached schedules fn(arg) to run d nanoseconds from now; see
// AtDetached.
func (e *Engine) AfterDetached(d Time, fn func(any), arg any) {
	if d < 0 {
		d = 0
	}
	e.AtDetached(e.now+d, fn, arg)
}

// Reschedule moves a timer to fire fn at absolute time t, reusing ev when
// possible instead of allocating: a pending event (cancelled or not) is
// updated and sifted in place; an already-fired event object is pushed
// back onto the heap. The rescheduled event takes a fresh sequence number,
// so it orders among same-instant events exactly as a newly scheduled one
// would. A nil fn keeps the event's current callback.
//
// The caller must be the sole holder of ev (true for the timer fields
// transport keeps); passing nil ev simply schedules a new event.
func (e *Engine) Reschedule(ev *Event, t Time, fn func()) *Event {
	e.checkTime(t)
	if ev == nil || ev.detached {
		return e.At(t, fn)
	}
	if ev.cancelled {
		ev.cancelled = false
		if ev.index >= 0 {
			e.dead--
		}
	}
	ev.at = t
	ev.seq = e.seq
	e.seq++
	if fn != nil {
		ev.fn = fn
	}
	ev.eng = e
	if ev.index >= 0 {
		e.fix(ev.index)
	} else {
		e.push(ev)
	}
	return ev
}

// RescheduleAfter moves a timer to fire fn d nanoseconds from now; see
// Reschedule.
func (e *Engine) RescheduleAfter(ev *Event, d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.Reschedule(ev, e.now+d, fn)
}

func (e *Engine) checkTime(t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v which is before now %v", t, e.now))
	}
}

// Pending reports the number of live (non-cancelled) events in the heap.
func (e *Engine) Pending() int { return len(e.heap) - e.dead }

// Step fires the earliest pending event and returns true, or returns false
// if the heap is empty. Cancelled events are discarded without firing.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		ev := e.pop()
		if ev.cancelled {
			e.dead--
			continue
		}
		e.now = ev.at
		e.fire(ev)
		e.Processed++
		return true
	}
	return false
}

// Run fires events until the heap is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with timestamps <= deadline and then advances the
// clock to the deadline. Events scheduled beyond the deadline stay pending.
func (e *Engine) RunUntil(deadline Time) {
	for len(e.heap) > 0 {
		next := e.heap[0]
		if next.cancelled {
			e.pop()
			e.dead--
			continue
		}
		if next.at > deadline {
			break
		}
		e.pop()
		e.now = next.at
		e.fire(next)
		e.Processed++
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// fire invokes the event's callback, recycling detached events first (the
// callback may immediately schedule another detached event and get the
// same object back).
func (e *Engine) fire(ev *Event) {
	if ev.fnArg != nil {
		fn, arg := ev.fnArg, ev.arg
		if ev.detached {
			e.recycle(ev)
		}
		fn(arg)
		return
	}
	fn := ev.fn
	if ev.detached {
		e.recycle(ev)
	}
	fn()
}

func (e *Engine) recycle(ev *Event) {
	*ev = Event{index: -1}
	e.free = append(e.free, ev)
}

// maybeCompact rebuilds the heap without tombstones once cancelled events
// outnumber live ones (and there are enough of them to matter). This keeps
// cancel-heavy workloads — retransmission timers under steady ACK clocking
// — from sifting dead weight on every operation.
func (e *Engine) maybeCompact() {
	if e.dead < 64 || e.dead*2 <= len(e.heap) {
		return
	}
	live := e.heap[:0]
	for _, ev := range e.heap {
		if ev.cancelled {
			ev.index = -1
			if ev.detached {
				e.recycle(ev)
			}
			continue
		}
		live = append(live, ev)
	}
	for i := len(live); i < len(e.heap); i++ {
		e.heap[i] = nil
	}
	e.heap = live
	e.dead = 0
	// Floyd heapify: sift down every internal node.
	if n := len(e.heap); n > 1 {
		for i := (n - 2) / 4; i >= 0; i-- {
			e.down(i)
		}
	}
	for i, ev := range e.heap {
		ev.index = i
	}
}

// ---------------------------------------------------------------------------
// 4-ary index heap on (at, seq). Child c of node i is 4i+1 … 4i+4; the
// parent of i is (i-1)/4. Shallower than a binary heap: a million pending
// events sit 10 levels deep instead of 20.

func (e *Engine) less(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (e *Engine) push(ev *Event) {
	ev.index = len(e.heap)
	e.heap = append(e.heap, ev)
	e.up(ev.index)
}

func (e *Engine) pop() *Event {
	h := e.heap
	ev := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[0].index = 0
	h[n] = nil
	e.heap = h[:n]
	if n > 0 {
		e.down(0)
	}
	ev.index = -1
	return ev
}

func (e *Engine) up(i int) {
	h := e.heap
	ev := h[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !e.less(ev, h[parent]) {
			break
		}
		h[i] = h[parent]
		h[i].index = i
		i = parent
	}
	h[i] = ev
	ev.index = i
}

func (e *Engine) down(i int) {
	h := e.heap
	n := len(h)
	ev := h[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.less(h[c], h[min]) {
				min = c
			}
		}
		if !e.less(h[min], ev) {
			break
		}
		h[i] = h[min]
		h[i].index = i
		i = min
	}
	h[i] = ev
	ev.index = i
}

// fix restores heap order after the event at index i changed its key.
func (e *Engine) fix(i int) {
	ev := e.heap[i]
	e.up(i)
	e.down(ev.index)
}
