package sim

import (
	"testing"
	"testing/quick"
)

// TestPendingExcludesCancelled is the regression test for the tombstone
// miscount: Pending must report live events only, even when cancellations
// dominate the heap.
func TestPendingExcludesCancelled(t *testing.T) {
	e := NewEngine()
	var live, dead []*Event
	for i := 0; i < 1000; i++ {
		ev := e.At(Time(10+i), func() {})
		if i%2 == 0 {
			dead = append(dead, ev)
		} else {
			live = append(live, ev)
		}
	}
	for _, ev := range dead {
		ev.Cancel()
	}
	if got := e.Pending(); got != len(live) {
		t.Fatalf("Pending() = %d after cancelling half, want %d", got, len(live))
	}
	// Double-cancel must not double-count.
	dead[0].Cancel()
	if got := e.Pending(); got != len(live) {
		t.Fatalf("Pending() = %d after double cancel, want %d", got, len(live))
	}
	fired := 0
	for e.Step() {
		fired++
	}
	if fired != len(live) {
		t.Fatalf("fired %d events, want %d", fired, len(live))
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after drain, want 0", e.Pending())
	}
}

// TestPendingCancelHeavyWorkload drives a transport-like cancel/re-arm loop
// and checks Pending stays exact while compaction churns the heap.
func TestPendingCancelHeavyWorkload(t *testing.T) {
	e := NewEngine()
	liveTimers := make([]*Event, 0, 4096)
	for round := 0; round < 50; round++ {
		// Arm a batch of timers far in the future, then cancel them all —
		// the RTO pattern under a steady ACK clock.
		for i := 0; i < 200; i++ {
			liveTimers = append(liveTimers, e.After(Time(1000+i), func() {}))
		}
		for _, ev := range liveTimers {
			ev.Cancel()
		}
		liveTimers = liveTimers[:0]
		// One live event per round keeps the clock moving.
		e.After(1, func() {})
		if e.Pending() != 1 {
			t.Fatalf("round %d: Pending() = %d, want 1", round, e.Pending())
		}
		if !e.Step() {
			t.Fatalf("round %d: no live event to fire", round)
		}
		if e.Pending() != 0 {
			t.Fatalf("round %d: Pending() = %d after drain, want 0", round, e.Pending())
		}
	}
}

func TestRunUntilSkipsTombstones(t *testing.T) {
	e := NewEngine()
	fired := 0
	for i := 0; i < 100; i++ {
		ev := e.At(Time(10+i), func() { fired++ })
		if i%3 != 0 {
			ev.Cancel()
		}
	}
	e.RunUntil(200)
	if want := 34; fired != want { // i = 0, 3, 6, ..., 99
		t.Fatalf("fired %d, want %d", fired, want)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestRescheduleMovesPendingEvent(t *testing.T) {
	e := NewEngine()
	var at Time
	ev := e.At(10, func() { at = e.Now() })
	ev2 := e.Reschedule(ev, 50, nil)
	if ev2 != ev {
		t.Fatal("rescheduling a pending event allocated a new one")
	}
	e.Run()
	if at != 50 {
		t.Fatalf("rescheduled event fired at %v, want 50", at)
	}
}

func TestRescheduleReusesFiredEvent(t *testing.T) {
	e := NewEngine()
	count := 0
	ev := e.At(10, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatal("event did not fire")
	}
	// The holder re-arms the fired timer: same object, back on the heap.
	ev2 := e.Reschedule(ev, e.Now()+5, nil)
	if ev2 != ev {
		t.Fatal("rescheduling a fired event allocated a new one")
	}
	e.Run()
	if count != 2 {
		t.Fatalf("re-armed event fired %d times total, want 2", count)
	}
}

func TestRescheduleRevivesCancelledEvent(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(10, func() { fired = true })
	ev.Cancel()
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after cancel, want 0", e.Pending())
	}
	e.Reschedule(ev, 20, nil)
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d after revive, want 1", e.Pending())
	}
	e.Run()
	if !fired {
		t.Fatal("revived event did not fire")
	}
}

func TestRescheduleSameInstantOrdersAsFreshSchedule(t *testing.T) {
	// A rescheduled event must order among same-instant events exactly as a
	// newly scheduled one would (fresh sequence number) — this is what keeps
	// the cancel-and-reallocate → reschedule refactor byte-identical.
	e := NewEngine()
	var order []string
	ev := e.At(10, func() { order = append(order, "timer") })
	e.At(20, func() { order = append(order, "a") })
	e.Reschedule(ev, 20, nil) // after "a": must fire after it
	e.At(20, func() { order = append(order, "b") })
	e.Run()
	want := []string{"a", "timer", "b"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRescheduleNilSchedulesFresh(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Reschedule(nil, 10, func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("Reschedule(nil, ...) did not schedule")
	}
}

func TestDetachedEventsFireAndRecycle(t *testing.T) {
	e := NewEngine()
	sum := 0
	add := func(v any) { sum += v.(int) }
	for i := 1; i <= 10; i++ {
		e.AtDetached(Time(i), add, i)
	}
	e.Run()
	if sum != 55 {
		t.Fatalf("sum = %d, want 55", sum)
	}
	// Detached events live inline in heap nodes: once the heap slice has
	// grown, scheduling and firing them must not allocate at all. (The arg
	// is pre-boxed: converting an int to `any` at the call site would
	// itself allocate and hide an engine regression.)
	boxed := any(100)
	allocs := testing.AllocsPerRun(100, func() {
		e.AfterDetached(1, add, boxed)
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("detached schedule+fire allocated %.1f times per run, want 0", allocs)
	}
}

func TestDetachedInterleavesWithHandles(t *testing.T) {
	// Detached and handle events at the same instant fire in scheduling
	// order, like any other events.
	e := NewEngine()
	var order []int
	e.AtDetached(5, func(v any) { order = append(order, v.(int)) }, 0)
	e.At(5, func() { order = append(order, 1) })
	e.AtDetached(5, func(v any) { order = append(order, v.(int)) }, 2)
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

// TestHeapOrderingProperty re-checks time ordering under a mix of
// scheduling, cancellation and rescheduling on the 4-ary heap.
func TestHeapOrderingProperty(t *testing.T) {
	f := func(delays []uint16, cancelMask []bool) bool {
		e := NewEngine()
		last := Time(-1)
		ok := true
		evs := make([]*Event, 0, len(delays))
		for _, d := range delays {
			evs = append(evs, e.At(Time(d), func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			}))
		}
		for i, ev := range evs {
			if i < len(cancelMask) && cancelMask[i] {
				ev.Cancel()
			}
		}
		for i, ev := range evs {
			if i%7 == 3 && !ev.Cancelled() && ev.index >= 0 {
				e.Reschedule(ev, ev.Time()+Time(i%5), nil)
			}
		}
		e.Run()
		return ok && e.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
