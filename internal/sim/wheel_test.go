package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTimerFiresAtArmedInstant(t *testing.T) {
	e := NewEngine()
	var fired []Time
	tm := e.NewTimer(func() { fired = append(fired, e.Now()) })
	tm.Arm(100)
	e.Run()
	if len(fired) != 1 || fired[0] != 100 {
		t.Fatalf("fired = %v, want [100]", fired)
	}
	if tm.Pending() {
		t.Fatal("timer still pending after firing")
	}
	// Re-arm after firing: the same handle goes around again.
	tm.RearmAfter(50)
	e.Run()
	if len(fired) != 2 || fired[1] != 150 {
		t.Fatalf("fired = %v, want [100 150]", fired)
	}
}

func TestTimerSameInstantOrdersWithHeapEvents(t *testing.T) {
	// A timer armed between two heap schedules for the same instant fires
	// between them: the merge runs on the shared ordering sequence, so lane
	// choice is invisible. This is the ordering the wheel-off fallback (and
	// the pre-wheel engine) produces.
	for _, wheel := range []bool{true, false} {
		e := NewEngine(WithTimerWheel(wheel))
		var order []string
		e.At(20, func() { order = append(order, "a") })
		tm := e.NewTimer(func() { order = append(order, "timer") })
		tm.Arm(20)
		e.At(20, func() { order = append(order, "b") })
		e.Run()
		want := []string{"a", "timer", "b"}
		for i := range want {
			if i >= len(order) || order[i] != want[i] {
				t.Fatalf("wheel=%v: order = %v, want %v", wheel, order, want)
			}
		}
	}
}

func TestTimerRearmDrawsFreshOrderingWord(t *testing.T) {
	// Re-arming must order the timer among same-instant events as a fresh
	// schedule would — the Timer analogue of Reschedule's fresh-seq rule.
	e := NewEngine()
	var order []string
	tm := e.NewTimer(func() { order = append(order, "timer") })
	tm.Arm(10)
	e.At(20, func() { order = append(order, "a") })
	tm.Rearm(20) // after "a": must fire after it
	e.At(20, func() { order = append(order, "b") })
	e.Run()
	want := []string{"a", "timer", "b"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestTimerPullInAcrossSlotBoundary(t *testing.T) {
	// A timer parked in a coarse wheel level is pulled in to a near
	// deadline in a finer level — the RTO pull-in move when the estimate
	// shrinks. The old slot entry must vanish (no double fire), and the
	// timer must fire at the new instant.
	e := NewEngine()
	fired := 0
	var at Time
	tm := e.NewTimer(func() { fired++; at = e.Now() })
	tm.Arm(500_000) // level >= 2 at cur=0
	tm.Rearm(37)    // level 0, different level and slot
	e.Run()
	if fired != 1 || at != 37 {
		t.Fatalf("fired %d times at %v, want once at 37", fired, at)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after pull-in fire, want 0", e.Pending())
	}
}

func TestTimerPushOutAcrossSlotBoundary(t *testing.T) {
	// The opposite move: a near timer pushed far out (level 0 -> coarse
	// level). Heap events in between must fire first and exactly once.
	e := NewEngine()
	var order []Time
	tm := e.NewTimer(func() { order = append(order, e.Now()) })
	tm.Arm(10)
	tm.Rearm(1_000_000)
	e.At(5000, func() { order = append(order, e.Now()) })
	e.Run()
	if len(order) != 2 || order[0] != 5000 || order[1] != 1_000_000 {
		t.Fatalf("order = %v, want [5000 1000000]", order)
	}
}

func TestTimerDisarmThenRearmSameTick(t *testing.T) {
	// Disarm immediately followed by re-arm at the very same tick: the
	// cleared slot entry must not resurrect, and the re-armed instance
	// fires once with a fresh ordering word.
	e := NewEngine()
	fired := 0
	tm := e.NewTimer(func() { fired++ })
	tm.Arm(40)
	tm.Disarm()
	if tm.Pending() {
		t.Fatal("timer pending after disarm")
	}
	tm.Rearm(40)
	if !tm.Pending() || tm.Time() != 40 {
		t.Fatalf("pending=%v time=%v after rearm, want true/40", tm.Pending(), tm.Time())
	}
	e.Run()
	if fired != 1 {
		t.Fatalf("fired %d times, want 1", fired)
	}
	// And at the current instant: disarm/rearm at Now() while events at the
	// same instant are still being dispatched.
	e2 := NewEngine()
	fired = 0
	var tm2 *Timer
	tm2 = e2.NewTimer(func() { fired++ })
	e2.At(10, func() {
		tm2.Arm(10) // arm at the instant being dispatched
		tm2.Disarm()
		tm2.Rearm(10)
	})
	e2.Run()
	if fired != 1 {
		t.Fatalf("same-tick disarm/rearm at Now(): fired %d times, want 1", fired)
	}
}

func TestTimerDisarmLeavesNoTombstone(t *testing.T) {
	// The heap lane counts a cancelled event as a tombstone until it is
	// compacted or popped; the wheel lane must not — a disarmed timer
	// leaves Pending exact and the engine with literally nothing to do.
	e := NewEngine()
	timers := make([]*Timer, 1000)
	for i := range timers {
		timers[i] = e.NewTimer(func() {})
		timers[i].Arm(Time(10 + i))
	}
	if e.Pending() != 1000 {
		t.Fatalf("Pending() = %d, want 1000", e.Pending())
	}
	for _, tm := range timers {
		tm.Disarm()
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after disarm, want 0", e.Pending())
	}
	if e.Step() {
		t.Fatal("Step fired something after all timers were disarmed")
	}
	// Double disarm is a no-op, as for Event.Cancel.
	timers[0].Disarm()
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after double disarm, want 0", e.Pending())
	}
}

func TestPendingCountsLiveWheelTimers(t *testing.T) {
	// Pending must see both lanes: heap events minus tombstones plus armed
	// timers, through arm/disarm/fire churn.
	e := NewEngine()
	tm := e.NewTimer(func() {})
	tm.Arm(100)
	ev := e.At(50, func() {})
	e.At(60, func() {})
	if e.Pending() != 3 {
		t.Fatalf("Pending() = %d, want 3", e.Pending())
	}
	ev.Cancel()
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d after heap cancel, want 2", e.Pending())
	}
	if !e.Step() { // fires the heap event at 60
		t.Fatal("no event to fire")
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d after heap fire, want 1 (the timer)", e.Pending())
	}
	tm.Rearm(70)
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d after rearm, want 1", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after drain, want 0", e.Pending())
	}
}

func TestTimerRearmOnClusterWindowBoundary(t *testing.T) {
	// A timer re-armed for exactly a cluster window boundary T must fire
	// inside the window that ends at T — never be skipped past it by the
	// windowed runTo. The cluster below has a 1 us lookahead, so windows
	// end at 1000, 2000, ...; the timer lands exactly on 2000.
	c := NewCluster(2)
	// A boundary mailbox forces the windowed loop (no-outbox clusters run
	// a single window straight to the deadline).
	c.Outbox(c.Engine(0), c.Engine(1), c.NextLane(), Microsecond, func(any) {})
	e := c.Engine(0)
	var firedAt Time
	var clusterNowAtFire Time
	tm := e.NewTimer(func() {
		firedAt = e.Now()
		clusterNowAtFire = c.Now()
	})
	tm.Arm(500)
	e.At(500, func() { tm.Rearm(2 * Microsecond) }) // re-arm onto the boundary
	c.RunUntil(5 * Microsecond)
	if firedAt != 2*Microsecond {
		t.Fatalf("timer fired at %v, want exactly the 2us window boundary", firedAt)
	}
	// It fired during the window that ends at 2us: the cluster clock had
	// not advanced past the boundary yet.
	if clusterNowAtFire > 2*Microsecond {
		t.Fatalf("timer fired after the cluster advanced to %v — skipped past its window", clusterNowAtFire)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after run, want 0", e.Pending())
	}
}

func TestTimerLongHorizonCascades(t *testing.T) {
	// Timers across every wheel level — including one beyond the top
	// level's span (the overflow list) — fire in time order with nothing
	// lost as the clock cascades through window boundaries.
	e := NewEngine()
	deadlines := []Time{
		3,                 // level 0
		1000,              // level 1
		300_000,           // level 2
		20_000_000,        // level 3
		900_000_000,       // level 4
		60_000_000_000,    // level 5
		3_000_000_000_000, // level 6
		Time(1) << 45,     // beyond the wheel span: overflow list
	}
	var fired []Time
	for _, d := range deadlines {
		tm := e.NewTimer(func() { fired = append(fired, e.Now()) })
		tm.Arm(d)
	}
	e.Run()
	if len(fired) != len(deadlines) {
		t.Fatalf("fired %d timers, want %d", len(fired), len(deadlines))
	}
	for i, d := range deadlines {
		if fired[i] != d {
			t.Fatalf("fired[%d] = %v, want %v", i, fired[i], d)
		}
	}
}

func TestTimerRearmAllocationFree(t *testing.T) {
	// The whole point of the handle API: a re-arm in steady state touches
	// no allocator. (Slot slices are warmed by the first lap.)
	e := NewEngine()
	tm := e.NewTimer(func() {})
	tm.ArmAfter(100)
	e.Run()
	allocs := testing.AllocsPerRun(1000, func() {
		tm.RearmAfter(100)
		e.Run()
	})
	if allocs != 0 {
		t.Fatalf("rearm+fire allocated %.1f times per run, want 0", allocs)
	}
}

// TestWheelMatchesHeapReference drives an adversarial mix of timers and
// heap events through both lanes and through the heap-only fallback,
// requiring identical firing sequences. This is the lane-equivalence
// property the sweep fingerprint gates check at simulator scope.
func TestWheelMatchesHeapReference(t *testing.T) {
	run := func(wheel bool, seed int64) []Time {
		var trace []Time
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine(WithTimerWheel(wheel))
		const n = 40
		timers := make([]*Timer, n)
		record := func() { trace = append(trace, e.Now()) }
		for i := range timers {
			timers[i] = e.NewTimer(record)
		}
		var step func()
		steps := 0
		step = func() {
			trace = append(trace, -e.Now()) // mark driver ticks distinctly
			if steps++; steps > 400 {
				return
			}
			// The churn is deterministic per seed: arm, rearm, disarm a
			// few timers, sprinkle heap events, and keep the clock moving.
			for k := 0; k < 4; k++ {
				tm := timers[rng.Intn(n)]
				switch rng.Intn(3) {
				case 0:
					tm.ArmAfter(Time(rng.Intn(200_000)))
				case 1:
					tm.Disarm()
				case 2:
					tm.RearmAfter(Time(rng.Intn(5_000_000)))
				}
			}
			if rng.Intn(3) == 0 {
				e.After(Time(rng.Intn(1000)), record)
			}
			e.After(Time(1+rng.Intn(30_000)), step)
		}
		e.After(0, step)
		e.RunUntil(5 * Millisecond)
		return trace
	}
	for seed := int64(1); seed <= 20; seed++ {
		on := run(true, seed)
		off := run(false, seed)
		if len(on) != len(off) {
			t.Fatalf("seed %d: wheel trace has %d entries, heap trace %d", seed, len(on), len(off))
		}
		for i := range on {
			if on[i] != off[i] {
				t.Fatalf("seed %d: traces diverge at %d: wheel %v vs heap %v", seed, i, on[i], off[i])
			}
		}
	}
}

// TestWheelOrderingProperty is the quick.Check analogue of
// TestHeapOrderingProperty for the merged two-lane dispatch: arbitrary
// deadlines and disarm masks must still fire in nondecreasing time order
// with an exact Pending count.
func TestWheelOrderingProperty(t *testing.T) {
	f := func(delays []uint32, disarmMask []bool) bool {
		e := NewEngine()
		last := Time(-1)
		ok := true
		timers := make([]*Timer, 0, len(delays))
		for _, d := range delays {
			tm := e.NewTimer(func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
			tm.Arm(Time(d))
			timers = append(timers, tm)
		}
		live := len(timers)
		for i, tm := range timers {
			if i < len(disarmMask) && disarmMask[i] {
				tm.Disarm()
				live--
			}
		}
		if e.Pending() != live {
			return false
		}
		for i, tm := range timers {
			if i%5 == 2 && tm.Pending() {
				tm.Rearm(tm.Time() + Time(i%9))
			}
		}
		e.Run()
		return ok && e.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
