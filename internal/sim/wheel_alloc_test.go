package sim

import "testing"

// TestWheelSlotArenaLazyPerLevel pins the slot-slice allocation strategy:
// a fresh engine allocates no slot storage at all, the first timer placed
// at a level carves that level's slots out of one arena, and untouched
// levels stay unallocated. This is what keeps engine construction cheap
// across benchmark sweeps that build thousands of short-lived engines.
func TestWheelSlotArenaLazyPerLevel(t *testing.T) {
	e := NewEngine()
	w := e.wheel
	for l := range w.levels {
		if w.levels[l].ready {
			t.Fatalf("level %d slots initialized before any timer", l)
		}
	}
	tm := e.NewTimer(func() {})
	tm.Arm(3) // level 0 at cur=0
	if !w.levels[0].ready {
		t.Fatal("level 0 slots not carved by the first place")
	}
	for l := 1; l < wheelLevels; l++ {
		if w.levels[l].ready {
			t.Fatalf("level %d slots carved without being touched", l)
		}
	}
	for s := range w.levels[0].slots {
		if c := cap(w.levels[0].slots[s]); c != slotChunk {
			t.Fatalf("slot %d capacity = %d, want %d", s, c, slotChunk)
		}
	}
	// Emptying a slot resets it to the arena-backed [:0], never to nil, so
	// the capacity survives for the life of the engine.
	tm.Disarm()
	if c := cap(w.levels[0].slots[3]); c != slotChunk {
		t.Fatalf("slot capacity = %d after disarm, want %d", c, slotChunk)
	}
}

// TestWheelArmDisarmWithinChunkAllocationFree holds the arena fix to its
// point: steady-state arm/disarm churn within a slot's chunk touches the
// allocator zero times.
func TestWheelArmDisarmWithinChunkAllocationFree(t *testing.T) {
	e := NewEngine()
	tm := e.NewTimer(func() {})
	tm.Arm(5)
	tm.Disarm() // warm level 0's arena
	allocs := testing.AllocsPerRun(500, func() {
		tm.Arm(5)
		tm.Disarm()
	})
	if allocs != 0 {
		t.Fatalf("arm/disarm allocated %.1f times per run, want 0", allocs)
	}
}

// TestEngineConstructionDoesNotPreallocateSlots bounds what NewEngine
// allocates: the engine, its wheel header, and small fixed state — not the
// 7×64 slot slices the eager layout used to build.
func TestEngineConstructionDoesNotPreallocateSlots(t *testing.T) {
	allocs := testing.AllocsPerRun(100, func() {
		_ = NewEngine()
	})
	if allocs > 8 {
		t.Fatalf("NewEngine allocated %.1f times, want a small constant (≤8)", allocs)
	}
}
