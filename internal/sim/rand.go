package sim

import "math"

// Rand is a small, fast, deterministic pseudo-random source (splitmix64 /
// xorshift-style). The simulator does not use math/rand so that the
// experiment harness has identical streams regardless of the Go release and
// so each component can own an independent, seedable stream.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. A zero seed is remapped so
// the stream is never degenerate.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next 64 random bits (splitmix64).
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// ExpTime returns an exponentially distributed duration with the given mean,
// used for Poisson flow inter-arrival times. The result is at least 1 ns so
// that successive arrivals always advance the clock.
func (r *Rand) ExpTime(mean Time) Time {
	if mean <= 0 {
		return 1
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	d := Time(-math.Log(u) * float64(mean))
	if d < 1 {
		d = 1
	}
	return d
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
