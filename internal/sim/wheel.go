package sim

import "math/bits"

// The timer lane. Timer-class events — RTO re-arms, pacing gates, CBR and
// token-bucket ticks, periodic controller loops — are overwhelmingly
// short-horizon, frequently re-armed, and often disarmed before firing.
// On the event heap each of those operations costs a log-depth sift and a
// cancellation leaves a tombstone behind for Pending and maybeCompact to
// churn through. The wheel gives the same events O(1) arm, disarm, and
// re-arm with no tombstones at all: a disarm clears its slot entry in
// place, so the heap never sees timer garbage.
//
// Determinism is preserved exactly. Every armed timer carries an ordering
// word drawn from the engine's one scheduling-sequence counter — the same
// counter heap events draw from — and the engine's dispatch loop merges the
// two lanes by (time, ordering word). A timer armed between two heap
// schedules therefore fires between them at equal instants, byte-identical
// to the ordering a heap-only engine produces; the fingerprint gates run
// the full quick sweep with the wheel lane on and off to hold this.
//
// Structure: wheelLevels levels of wheelSlots slots. Level l slots are
// 64^l ns wide, so level 0 resolves exact nanoseconds and the hierarchy
// spans 64^wheelLevels ns (about 73 simulated minutes); the rare timer
// beyond that waits on an overflow list. Slotting is window-aligned: a
// deadline is filed at the smallest level whose next-coarser-aligned
// window still contains the current time, which gives the invariant the
// dispatch merge relies on — every live entry at level l precedes every
// live entry at level l+1, so the earliest timer is always in the first
// occupied slot of the lowest occupied level. As the clock crosses a
// level's window boundary the slot that just became current is cascaded
// down, preserving per-slot arm order; entries within one level-0 slot
// share one exact instant and are stored in ordering-word order by
// construction, so no sort ever runs.

const (
	wheelBits   = 6
	wheelSlots  = 1 << wheelBits // 64 slots per level
	wheelLevels = 7              // 64^7 ns ≈ 73 simulated minutes of span
)

// Timer is a cancellable, re-armable timer handle on the engine's wheel
// lane. Create one with Engine.NewTimer, then Arm/Rearm and Disarm it
// freely: all three are O(1), none allocates after construction, and a
// disarmed timer leaves nothing behind in any queue. A Timer is owned by
// one component (the transport's RTO field, a shaper's drain timer) and is
// not safe for concurrent use, exactly like the engine itself.
type Timer struct {
	eng *Engine
	fn  func()

	at  Time
	ord uint64 // ordering word: the engine scheduling sequence at arm time

	// Wheel position while armed: level wheelLevels means the overflow
	// list; idx is the entry index within the slot (or overflow) slice.
	level int32
	slot  int32
	idx   int32
	armed bool

	// ev is the heap fallback used when the engine was built with the
	// wheel lane disabled; nil otherwise.
	ev     *Event
	onHeap bool
}

// NewTimer returns an unarmed timer firing fn. The callback is fixed at
// construction — re-arming never allocates a closure.
func (e *Engine) NewTimer(fn func()) *Timer {
	return &Timer{eng: e, fn: fn, onHeap: e.wheel == nil}
}

// Arm schedules the timer to fire at absolute time t, moving it if it is
// already armed. Arming draws a fresh ordering word, so the timer orders
// among same-instant events exactly as a newly scheduled heap event would.
// Arming in the past panics, as for every scheduling call.
func (t *Timer) Arm(at Time) {
	e := t.eng
	e.checkTime(at)
	if t.onHeap {
		t.ev = e.Reschedule(t.ev, at, t.fn)
		return
	}
	w := e.wheel
	if t.armed {
		w.remove(t)
	}
	t.at = at
	t.ord = e.seq
	e.seq++
	t.armed = true
	w.advance(e.now)
	w.place(t)
	w.live++
	if w.min != nil && (at < w.min.at || (at == w.min.at && t.ord < w.min.ord)) {
		w.min = t
	}
}

// ArmAfter schedules the timer to fire d nanoseconds from now; see Arm.
func (t *Timer) ArmAfter(d Time) {
	if d < 0 {
		d = 0
	}
	t.Arm(t.eng.now + d)
}

// Rearm is Arm under the name re-arming call sites read naturally: a
// pending timer moves to the new deadline, a fired or disarmed one is
// armed afresh. Both draw a fresh ordering word.
func (t *Timer) Rearm(at Time) { t.Arm(at) }

// RearmAfter re-arms the timer to fire d nanoseconds from now; see Rearm.
func (t *Timer) RearmAfter(d Time) { t.ArmAfter(d) }

// Disarm stops the timer. Disarming an unarmed timer is a no-op. On the
// wheel lane the slot entry is cleared in place — no tombstone survives.
func (t *Timer) Disarm() {
	if t.onHeap {
		t.ev.Cancel()
		return
	}
	if t.armed {
		t.eng.wheel.remove(t)
	}
}

// Pending reports whether the timer is armed and will fire. Lazy re-arm
// callers use it the way they used Event.Pending: skip the re-arm when an
// already-armed timer fires no later than needed.
func (t *Timer) Pending() bool {
	if t.onHeap {
		return t.ev.Pending()
	}
	return t.armed
}

// Time returns the instant the timer is armed for (the last armed instant
// once fired).
func (t *Timer) Time() Time {
	if t.onHeap {
		return t.ev.Time()
	}
	return t.at
}

// timerWheel is the engine's hierarchical wheel state. It is created
// lazily by NewEngine (engines in timer-free benchmarks pay only a nil
// pointer) and holds no reference to the engine: the engine pushes its
// clock in through advance/peek.
type timerWheel struct {
	cur  Time // wheel clock: trails the engine clock, synced on use
	live int  // armed timers across all levels and the overflow list

	// min caches the earliest live timer; nil means unknown (recompute on
	// next peek). Arming something earlier updates it directly; removing
	// the cached timer invalidates it.
	min *Timer

	levels   [wheelLevels]wheelLevel
	overflow []*Timer // deadlines beyond the top level's span
	overLive int
}

// wheelLevel is one resolution tier: 64 slots, a bitmap of slots with live
// entries, and per-slot live counts so disarm-heavy slots can be reset the
// moment they empty.
type wheelLevel struct {
	occupied uint64
	ready    bool // slot slices carved from the arena (first place at this level)
	liveIn   [wheelSlots]uint32
	slots    [wheelSlots][]*Timer
}

// slotChunk is the initial capacity carved out for each slot slice. Steady
// state rarely holds more than a handful of timers per exact slot; a slot
// that outgrows its chunk just grows off-arena through append, once.
const slotChunk = 8

// initSlots carves one arena allocation into 64 zero-length, slotChunk-cap
// slot slices. Without this, a fresh engine's first pass through a level
// paid one allocation per touched slot (up to 64 per level) as each nil
// slice grew through append — measurable across benchmark runs that build
// thousands of short-lived engines. The capacity survives for the life of
// the engine: remove and advance reset slots with [:0], never to nil.
func (lv *wheelLevel) initSlots() {
	arena := make([]*Timer, wheelSlots*slotChunk)
	for s := range lv.slots {
		lv.slots[s] = arena[s*slotChunk : s*slotChunk : (s+1)*slotChunk]
	}
	lv.ready = true
}

func newTimerWheel() *timerWheel { return &timerWheel{} }

// levelFor returns the level a deadline files at: the smallest l whose
// 64^(l+1)-aligned window contains both at and cur, found from the highest
// differing bit. wheelLevels means the overflow list.
func (w *timerWheel) levelFor(at Time) int {
	b := bits.Len64(uint64(at ^ w.cur))
	if b <= wheelBits {
		return 0
	}
	l := (b - 1) / wheelBits
	if l > wheelLevels {
		l = wheelLevels
	}
	return l
}

// place files an armed timer into its slot (or the overflow list) without
// touching ordering words or live counts — shared by arm and cascade, so a
// cascaded entry keeps its original ordering word.
func (w *timerWheel) place(t *Timer) {
	l := w.levelFor(t.at)
	if l >= wheelLevels {
		t.level = wheelLevels
		t.idx = int32(len(w.overflow))
		w.overflow = append(w.overflow, t)
		w.overLive++
		return
	}
	lv := &w.levels[l]
	if !lv.ready {
		lv.initSlots()
	}
	s := int32(t.at>>(wheelBits*l)) & (wheelSlots - 1)
	t.level = int32(l)
	t.slot = s
	if n := len(lv.slots[s]); n >= 32 && int(lv.liveIn[s])*2 < n {
		compactSlot(&lv.slots[s])
	}
	t.idx = int32(len(lv.slots[s]))
	lv.slots[s] = append(lv.slots[s], t)
	lv.liveIn[s]++
	lv.occupied |= 1 << uint(s)
}

// compactSlot squeezes cleared entries out of a slot in place, preserving
// arm order (and thus ordering-word order) and refreshing entry indices.
func compactSlot(slot *[]*Timer) {
	live := (*slot)[:0]
	for _, t := range *slot {
		if t != nil {
			t.idx = int32(len(live))
			live = append(live, t)
		}
	}
	for i := len(live); i < len(*slot); i++ {
		(*slot)[i] = nil
	}
	*slot = live
}

// remove clears an armed timer's entry in place: O(1), no tombstone. The
// slot's bitmap bit drops the moment its last live entry goes.
func (w *timerWheel) remove(t *Timer) {
	if t.level == wheelLevels {
		w.overflow[t.idx] = nil
		w.overLive--
		if w.overLive == 0 {
			w.overflow = w.overflow[:0]
		} else if n := len(w.overflow); n >= 32 && w.overLive*2 < n {
			compactOverflow(w)
		}
	} else {
		lv := &w.levels[t.level]
		lv.slots[t.slot][t.idx] = nil
		lv.liveIn[t.slot]--
		if lv.liveIn[t.slot] == 0 {
			lv.occupied &^= 1 << uint(t.slot)
			lv.slots[t.slot] = lv.slots[t.slot][:0]
		}
	}
	t.armed = false
	w.live--
	if w.min == t {
		w.min = nil
	}
}

func compactOverflow(w *timerWheel) {
	live := w.overflow[:0]
	for _, t := range w.overflow {
		if t != nil {
			t.idx = int32(len(live))
			live = append(live, t)
		}
	}
	for i := len(live); i < len(w.overflow); i++ {
		w.overflow[i] = nil
	}
	w.overflow = live
}

// advance syncs the wheel clock to the engine clock, cascading every slot
// that became current at its level down to finer levels. The fast path —
// no 64 ns boundary crossed — is one shift and compare, which is what the
// per-event dispatch merge pays. Entries never live in the past when this
// runs: the engine fires all due events before moving its clock.
func (w *timerWheel) advance(now Time) {
	if now>>wheelBits == w.cur>>wheelBits {
		w.cur = now
		return
	}
	old := w.cur
	w.cur = now
	for l := 1; l < wheelLevels; l++ {
		sh := uint(wheelBits * l)
		if now>>sh == old>>sh {
			return // no boundary crossed at this level or above
		}
		lv := &w.levels[l]
		s := int32(now>>sh) & (wheelSlots - 1)
		if lv.liveIn[s] == 0 {
			continue
		}
		entries := lv.slots[s]
		lv.slots[s] = entries[:0]
		lv.liveIn[s] = 0
		lv.occupied &^= 1 << uint(s)
		for _, t := range entries {
			if t != nil {
				w.place(t) // lands strictly below level l
			}
		}
	}
	// Crossing the top level's window boundary re-files the overflow list;
	// entries still beyond the span go straight back.
	if len(w.overflow) > 0 && now>>(wheelBits*wheelLevels) != old>>(wheelBits*wheelLevels) {
		entries := w.overflow
		w.overflow = nil
		w.overLive = 0
		for _, t := range entries {
			if t != nil {
				w.place(t)
			}
		}
	}
}

// peek returns the earliest live timer and its merge key. The caller
// guarantees live > 0. The wheel clock is synced first, so the window
// ordering invariant (level l strictly precedes level l+1, slot order is
// time order within a level) holds and the answer is the first live entry
// of the first occupied slot of the lowest occupied level.
func (w *timerWheel) peek(now Time) (heapKey, *Timer) {
	if w.min == nil {
		// The slot scan below needs cascades current; syncing only here —
		// not on the cache-hit path — keeps the per-dispatch merge (and the
		// burst probe) at one pointer read. Cascading re-files timers but
		// never changes which one is earliest, so a cached minimum stays
		// valid however far the wheel clock trails. Arm syncs before
		// placing, so entries are always filed against a current clock.
		w.advance(now)
		w.recomputeMin()
	}
	return heapKey{at: w.min.at, seq: w.min.ord}, w.min
}

// recomputeMin rescans for the earliest live timer. Level 0 slots hold one
// exact instant each with entries already in ordering-word order, so the
// first live entry wins outright; a coarser slot is scanned for its
// earliest (time, ord) pair. Runs only after the cached minimum fired or
// was disarmed, and touches exactly one slot.
func (w *timerWheel) recomputeMin() {
	for l := 0; l < wheelLevels; l++ {
		lv := &w.levels[l]
		if lv.occupied == 0 {
			continue
		}
		s := bits.TrailingZeros64(lv.occupied)
		if l == 0 {
			for _, t := range lv.slots[s] {
				if t != nil {
					w.min = t
					return
				}
			}
		}
		var best *Timer
		for _, t := range lv.slots[s] {
			if t != nil && (best == nil || t.at < best.at || (t.at == best.at && t.ord < best.ord)) {
				best = t
			}
		}
		w.min = best
		return
	}
	var best *Timer
	for _, t := range w.overflow {
		if t != nil && (best == nil || t.at < best.at || (t.at == best.at && t.ord < best.ord)) {
			best = t
		}
	}
	w.min = best
}
