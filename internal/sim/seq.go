package sim

// SeqDomain is a pre-registered handle for a named ID/seed sequence (see
// Engine.SeqDomain and Cluster.SeqDomain). It is a plain index into the
// owner's sequence table: drawing through it is a bounds check and an
// increment, with no string hashing on the hot path.
type SeqDomain int

// seqTable is the storage behind the named sequences of an Engine or a
// Cluster: a registration map consulted only when a name is first seen (or
// looked up via the string shim), and a flat counter array indexed by the
// SeqDomain handles it hands out. Registration order is part of a run's
// determinism contract, exactly like scheduling order.
type seqTable struct {
	idx  map[string]SeqDomain
	vals []uint64
}

func (t *seqTable) domain(name string) SeqDomain {
	d, ok := t.idx[name]
	if !ok {
		if t.idx == nil {
			t.idx = make(map[string]SeqDomain)
		}
		d = SeqDomain(len(t.vals))
		t.idx[name] = d
		t.vals = append(t.vals, 0)
	}
	return d
}

func (t *seqTable) next(d SeqDomain) uint64 {
	t.vals[d]++
	return t.vals[d]
}
