package sim

import "testing"

func TestDefaultOptionsEverythingOn(t *testing.T) {
	o := DefaultOptions()
	if !o.DenseTables || !o.DenseForwarding || !o.TimerWheel || !o.Pooling {
		t.Fatalf("defaults not all on: %+v", o)
	}
	if o.BurstSize != DefaultBurstSize {
		t.Fatalf("default BurstSize = %d, want %d", o.BurstSize, DefaultBurstSize)
	}
}

func TestNewEngineCapturesOptionsAtConstruction(t *testing.T) {
	e := NewEngine(WithTimerWheel(false), WithBurstSize(3), WithPooling(false))
	o := e.Options()
	if o.TimerWheel || o.Pooling || o.BurstSize != 3 {
		t.Fatalf("engine options = %+v", o)
	}
	if e.wheel != nil {
		t.Fatal("wheel lane built despite WithTimerWheel(false)")
	}
	// A bare engine gets exactly the constant defaults.
	if e2 := NewEngine(); e2.Options() != DefaultOptions() {
		t.Fatalf("bare engine options = %+v, want DefaultOptions", e2.Options())
	}
}

func TestWithBurstSizeClampsNegative(t *testing.T) {
	e := NewEngine(WithBurstSize(-5))
	if got := e.Options().BurstSize; got != 0 {
		t.Fatalf("BurstSize = %d after WithBurstSize(-5), want 0", got)
	}
}

// TestReserveOrdMatchesAtOrdered pins the burst protocol's ordering
// contract: a ReserveOrd/ScheduleReserved pair must file an event under
// exactly the key AtOrdered would have drawn at the same logical point, so
// same-instant events interleave identically on both paths.
func TestReserveOrdMatchesAtOrdered(t *testing.T) {
	run := func(reserved bool) []string {
		e := NewEngine()
		var order []string
		e.AtOrdered(2, 10, func(any) { order = append(order, "a") }, nil)
		if reserved {
			ord := e.ReserveOrd(1)
			e.ScheduleReserved(10, ord, func(any) { order = append(order, "b") }, nil)
		} else {
			e.AtOrdered(1, 10, func(any) { order = append(order, "b") }, nil)
		}
		e.AtOrdered(1, 10, func(any) { order = append(order, "c") }, nil)
		e.Run()
		return order
	}
	want := run(false)
	got := run(true)
	if len(got) != 3 {
		t.Fatalf("fired %d events, want 3", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v via ScheduleReserved, want %v (the AtOrdered order)", got, want)
		}
	}
}

// TestInlineRunnableGates exercises the inline-eligibility predicate
// directly: no bounded dispatch, a deadline bound, an earlier heap event,
// and an earlier wheel timer must each defeat inlining.
func TestInlineRunnableGates(t *testing.T) {
	e := NewEngine()
	ord := e.ReserveOrd(1)
	if e.InlineRunnable(10, ord) {
		t.Fatal("inline allowed outside bounded dispatch")
	}
	e.deadline = 100
	if !e.InlineRunnable(10, ord) {
		t.Fatal("inline refused with nothing else pending")
	}
	if e.InlineRunnable(101, ord) {
		t.Fatal("inline allowed past the dispatch deadline")
	}
	e.At(5, func() {})
	if e.InlineRunnable(10, ord) {
		t.Fatal("inline allowed ahead of an earlier heap event")
	}
	e.deadline = 0
	e.Run()

	e2 := NewEngine()
	tm := e2.NewTimer(func() {})
	tm.Arm(7)
	e2.deadline = 100
	if e2.InlineRunnable(10, e2.ReserveOrd(1)) {
		t.Fatal("inline allowed ahead of an earlier wheel timer")
	}
	tm.Disarm()
	if !e2.InlineRunnable(10, e2.ReserveOrd(1)) {
		t.Fatal("inline refused after the only timer was disarmed")
	}
	e2.deadline = 0
}

// TestAdvanceInlineCountsAndMovesClock checks the inline bookkeeping the
// benchcore events/packet metric is built on.
func TestAdvanceInlineCountsAndMovesClock(t *testing.T) {
	e := NewEngine()
	e.AdvanceInline(42)
	if e.Now() != 42 {
		t.Fatalf("Now() = %v after AdvanceInline(42)", e.Now())
	}
	if s := e.Stats(); s.Inlined != 1 {
		t.Fatalf("Inlined = %d, want 1", s.Inlined)
	}
}
