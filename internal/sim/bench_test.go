package sim

import "testing"

// BenchmarkEngineScheduleFire measures raw event-core throughput: a fixed
// population of self-perpetuating timers, each firing and scheduling its
// successor, the pattern every transport timer and transmitter produces.
func BenchmarkEngineScheduleFire(b *testing.B) {
	const population = 1024
	e := NewEngine()
	var fire func()
	i := 0
	fire = func() {
		i++
		e.After(Time(i%97+1), fire)
	}
	for j := 0; j < population; j++ {
		e.After(Time(j%97+1), fire)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for e.Processed < uint64(b.N) {
		e.Step()
	}
}

// BenchmarkEngineCancelHeavy measures the cancel-and-rearm pattern of
// retransmission timers: every fired event schedules two successors and
// cancels one of them, so half the scheduled events become tombstones.
func BenchmarkEngineCancelHeavy(b *testing.B) {
	const population = 512
	e := NewEngine()
	var fire func()
	i := 0
	fire = func() {
		i++
		doomed := e.After(Time(i%89+1), func() {})
		e.After(Time(i%97+1), fire)
		doomed.Cancel()
	}
	for j := 0; j < population; j++ {
		e.After(Time(j%97+1), fire)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for e.Processed < uint64(b.N) {
		e.Step()
	}
}

// BenchmarkEngineReschedule measures moving a pending timer instead of
// cancelling and reallocating it — the pattern armRTO turns into.
func BenchmarkEngineReschedule(b *testing.B) {
	e := NewEngine()
	// A drain event keeps the clock moving.
	var tick func()
	tick = func() { e.After(10, tick) }
	e.After(10, tick)
	ev := e.After(1000, func() {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
		ev = rearm(e, ev, e.Now()+1000)
	}
	_ = ev
}

// rearm moves the timer. Pre-refactor this was cancel-and-reallocate
// (ev.Cancel() then a fresh e.At); the event core now reschedules in place.
func rearm(e *Engine, ev *Event, t Time) *Event {
	return e.Reschedule(ev, t, nil)
}
