// Package fluid implements the flow-level lane of the hybrid fidelity
// split: background entities modelled as piecewise-constant rate ODEs
// advanced at AQ-table epochs, instead of as individual packets.
//
// The paper's A-Gap is defined over an entity's arrival *rate* (Expression
// 7); nothing in Algorithms 1-2 requires discrete packets. The fluid lane
// exploits that: each entity carries a sending rate evolved by a
// first-order abstraction of its congestion-control family (additive
// increase, multiplicative decrease on the AQ's drop/mark/delay feedback),
// and every epoch the lane integrates rate·dt bytes through the same
// core.Table the packet lane uses and shares link capacity with packets
// via per-pipe residual-rate accounting (topo.Pipe.SetFluidRate).
// Foreground flows stay packet-level; the AQ sees the sum. This is the
// standard Level-3/Level-4 modelling technique, and it is what takes the
// simulator from thousands of concurrent flows to millions of entities.
//
// Entity state is structure-of-arrays: consecutively-registered entities
// of one (pipe, params) class form a cohort whose state lives in parallel
// float64 slices (cohort.go), stepped by per-model inner loops with the
// cohort's AQ resolved through a core.StreamCursor, quiescent cohorts
// skipped in O(1), and — under WithCohortBatching — a whole same-tag
// cohort integrated as one closed-form epoch. An Entity is a stable
// (cohort, index) handle.
package fluid

import (
	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/stats"
	"aqueue/internal/units"
)

// Model selects the first-order feedback reaction of a fluid entity,
// mirroring core.CCType on the sender side.
type Model uint8

const (
	// Fixed is a non-reactive constant-demand source — the fluid analogue
	// of a UDP blaster.
	Fixed Model = iota
	// Loss reacts to the drop fraction with multiplicative decrease
	// (NewReno/CUBIC/Illinois families to first order).
	Loss
	// ECN runs a DCTCP-style EWMA of the mark fraction and cuts
	// proportionally to it.
	ECN
	// Delay backs off when the AQ's virtual delay exceeds a target
	// (Swift/Timely families to first order).
	Delay
)

// Params is the first-order congestion model of one entity.
type Params struct {
	Model Model
	// MSS and RTT parameterise the additive-increase term MSS/RTT per
	// RTT — the classic fluid TCP ramp — and the rate floor of one MSS
	// per RTT.
	MSS int
	RTT sim.Time
	// Beta is the multiplicative decrease factor applied on loss
	// (rate *= 1-Beta). DCTCP uses alpha/2 instead; Delay scales Beta by
	// the relative target excess.
	Beta float64
	// Gain is the DCTCP alpha EWMA gain (Model == ECN).
	Gain float64
	// Target is the virtual-delay target (Model == Delay).
	Target sim.Time
	// MinRate floors the rate in bytes/ns; zero selects one MSS per RTT.
	MinRate float64
}

// ParamsFor maps a congestion-control algorithm name — the same names
// transport feeds cc.ByName — to its first-order fluid model. Unknown or
// empty names (and "udp"/"fixed") yield a non-reactive constant-demand
// source.
func ParamsFor(name string) Params {
	p := Params{
		MSS:  1460,
		RTT:  100 * sim.Microsecond,
		Beta: 0.5,
	}
	switch name {
	case "newreno", "illinois", "bbr":
		p.Model = Loss
	case "cubic":
		p.Model = Loss
		p.Beta = 0.3 // CUBIC's gentler backoff
	case "dctcp":
		p.Model = ECN
		p.Gain = 1.0 / 16
	case "swift", "timely":
		p.Model = Delay
		p.Target = 50 * sim.Microsecond
	default: // "", "udp", "fixed", anything unrecognised
		p.Model = Fixed
	}
	return p
}

// ai returns the additive-increase slope in bytes/ns per ns (MSS/RTT per
// RTT).
func (p Params) ai() float64 {
	if p.RTT <= 0 {
		return 0
	}
	return float64(p.MSS) / (float64(p.RTT) * float64(p.RTT))
}

// floor returns the minimum rate in bytes/ns.
func (p Params) floor() float64 {
	if p.MinRate > 0 {
		return p.MinRate
	}
	if p.RTT <= 0 {
		return 0
	}
	return float64(p.MSS) / float64(p.RTT)
}

// EntityConfig describes one fluid entity added to a Lane.
type EntityConfig struct {
	// AQ is the tag the entity's bytes carry through the lane's table,
	// exactly like a packet's header tag. NoAQ passes unmatched.
	AQ packet.AQID
	// CC selects the first-order model by cc.ByName family; ignored when
	// Params is non-zero-valued (Model set explicitly).
	CC     string
	Params *Params
	// Rate is the initial sending rate; Demand caps it (0 = uncapped
	// beyond the link accounting).
	Rate   units.BitRate
	Demand units.BitRate
	// Pipe is the index (from Lane.AddPipe) of the link the entity's
	// bytes traverse, for residual-rate accounting; -1 for none.
	Pipe int
	// Meter, when non-nil, receives the entity's accepted bytes per
	// epoch (fractional adds).
	Meter *stats.Meter
}

// Entity is a stable handle to one fluid flow: (cohort, index) into the
// lane's structure-of-arrays state. Handles stay valid for the lane's
// lifetime — cohorts only ever append. The zero Entity is not attached to
// a lane; using it panics.
type Entity struct {
	lane *Lane
	c, i int32
}

// AQID returns the tag the entity's bytes carry through the lane's table.
func (e Entity) AQID() packet.AQID { return e.lane.cohorts[e.c].aqid[e.i] }

// Rate returns the entity's current sending rate.
func (e Entity) Rate() units.BitRate {
	return units.BitRate(e.lane.cohorts[e.c].rate[e.i] * 8e9)
}

// Delivered returns the cumulative bytes the network accepted from the
// entity, including any epochs currently folded into a quiescent streak.
func (e Entity) Delivered() float64 { return e.lane.cohorts[e.c].deliveredAt(e.i) }

// Dropped returns the cumulative bytes shed by link sharing and the AQ,
// including any epochs currently folded into a quiescent streak.
func (e Entity) Dropped() float64 { return e.lane.cohorts[e.c].droppedAt(e.i) }
