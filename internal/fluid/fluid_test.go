package fluid

import (
	"math"
	"testing"

	"aqueue/internal/core"
	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/topo"
	"aqueue/internal/units"
)

// sink swallows delivered packets; the fluid tests only need a pipe for
// the residual accounting, not its traffic.
type sink struct{}

func (sink) Receive(p *packet.Packet) {}

// TestFixedEntityAQRateLimit: a non-reactive fluid blaster offered 10G
// against a 2G AQ allocation must be throttled to the allocation — the
// fluid form of Figure 1's rate-limiting result.
func TestFixedEntityAQRateLimit(t *testing.T) {
	eng := sim.NewEngine()
	table := core.NewTableDense(eng.Options().DenseTables)
	table.Deploy(core.Config{ID: 7, Rate: 2 * units.Gbps})
	lane := NewLane(eng, table, 0)
	lane.Add(EntityConfig{AQ: 7, CC: "udp", Rate: 10 * units.Gbps, Pipe: -1})
	lane.Start(0)
	horizon := 100 * sim.Millisecond
	lane.SetDeadline(horizon)
	eng.RunUntil(horizon)

	e := lane.Entities()[0]
	got := e.Delivered() * 8 / float64(horizon) // bits per ns = Gbps
	if math.Abs(got-2) > 0.05 {
		t.Fatalf("delivered rate = %.3f Gbps, want ~2 (AQ allocation)", got)
	}
	if e.Dropped() <= 0 {
		t.Fatalf("expected the AQ limit to shed the 8 Gbps excess")
	}
	st := lane.Stats()
	if st.Epochs == 0 || st.EntityEpochs != st.Epochs {
		t.Fatalf("stats = %+v, want one entity-epoch per epoch", st)
	}
}

// TestLossEntityConvergesToShare: two loss-model entities on one 10G pipe
// with no AQ should AIMD their way to roughly half the link each.
func TestLossEntityConvergesToShare(t *testing.T) {
	eng := sim.NewEngine()
	table := core.NewTableDense(eng.Options().DenseTables)
	pipe := topo.NewPipe(eng, 10*units.Gbps, sim.Microsecond, 0, 0, sink{})
	lane := NewLane(eng, table, 0)
	pi := lane.AddPipe(pipe)
	a := lane.Add(EntityConfig{CC: "cubic", Rate: units.Gbps, Pipe: pi})
	b := lane.Add(EntityConfig{CC: "cubic", Rate: 8 * units.Gbps, Pipe: pi})
	lane.Start(0)
	horizon := 200 * sim.Millisecond
	lane.SetDeadline(horizon)
	eng.RunUntil(horizon)

	// Delivered over the last ~full run should be near-equal: AIMD with a
	// shared clip converges to equal shares.
	ra := a.Delivered() * 8 / float64(horizon)
	rb := b.Delivered() * 8 / float64(horizon)
	sum := ra + rb
	if sum < 8 || sum > 10.1 {
		t.Fatalf("aggregate = %.2f Gbps, want near link capacity", sum)
	}
	if ratio := math.Min(ra, rb) / math.Max(ra, rb); ratio < 0.6 {
		t.Fatalf("shares %.2f/%.2f Gbps, ratio %.2f, want rough fairness", ra, rb, ratio)
	}
}

// TestResidualCoupling: accepted fluid rate must land on the pipe as the
// packet lane's residual, and be released when the deadline passes.
func TestResidualCoupling(t *testing.T) {
	eng := sim.NewEngine()
	table := core.NewTableDense(eng.Options().DenseTables)
	pipe := topo.NewPipe(eng, 10*units.Gbps, sim.Microsecond, 0, 0, sink{})
	lane := NewLane(eng, table, 0)
	pi := lane.AddPipe(pipe)
	lane.Add(EntityConfig{CC: "udp", Rate: 4 * units.Gbps, Pipe: pi})
	lane.Start(0)
	lane.SetDeadline(10 * sim.Millisecond)
	eng.RunUntil(5 * sim.Millisecond)
	if fr := pipe.FluidRate(); math.Abs(float64(fr-4*units.Gbps)) > float64(units.Gbps)/10 {
		t.Fatalf("mid-run FluidRate = %v, want ~4Gbps", fr)
	}
	eng.RunUntil(20 * sim.Millisecond)
	if fr := pipe.FluidRate(); fr != 0 {
		t.Fatalf("post-deadline FluidRate = %v, want 0 (released)", fr)
	}
}

// TestLaneRejectsForeignPipe: lanes are domain-local by construction.
func TestLaneRejectsForeignPipe(t *testing.T) {
	eng := sim.NewEngine()
	other := sim.NewEngine()
	pipe := topo.NewPipe(other, 10*units.Gbps, 0, 0, 0, sink{})
	lane := NewLane(eng, core.NewTable(), 0)
	defer func() {
		if recover() == nil {
			t.Fatalf("AddPipe accepted a pipe from another engine")
		}
	}()
	lane.AddPipe(pipe)
}

func TestParamsForFamilies(t *testing.T) {
	cases := map[string]Model{
		"newreno": Loss, "cubic": Loss, "illinois": Loss, "bbr": Loss,
		"dctcp": ECN,
		"swift": Delay, "timely": Delay,
		"udp": Fixed, "": Fixed, "fixed": Fixed,
	}
	for name, want := range cases {
		if got := ParamsFor(name).Model; got != want {
			t.Errorf("ParamsFor(%q).Model = %d, want %d", name, got, want)
		}
	}
}
