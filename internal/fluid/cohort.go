package fluid

import (
	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/stats"
)

// cohort is a maximal run of consecutively-registered entities sharing one
// (pipe, Params) class. Entity state lives in parallel slices — structure
// of arrays — so the epoch loop streams through contiguous float64 lanes
// instead of pointer-chasing one heap object per entity, and the model
// reaction is resolved once per cohort instead of once per entity.
//
// The run-based grouping is what keeps the default path byte-identical to
// the former per-object layout: iterating cohorts in creation order and
// entities in index order replays the exact global registration order, so
// every floating-point accumulation (pipe demand, lane totals, AQ state)
// sees the same operands in the same sequence.
type cohort struct {
	par  Params
	pipe int32 // index into the lane's pipes, -1 for none

	// Per-cohort precomputation of the Params-derived constants the epoch
	// loop consumes per entity: the additive-increase slope ai() and the
	// rate floor(). Same bit patterns as computing them inline — the
	// expressions are deterministic — just hoisted out of the hot loop.
	aiSlope   float64
	floorRate float64

	// Parallel per-entity state. aqid is per-entity (tags are not part of
	// the run key: a cohort may carry one tag per entity, as the scale
	// benchmarks do, or one tag for all, which the batched path exploits).
	aqid      []packet.AQID
	rate      []float64      // current sending rate, bytes/ns
	want      []float64      // pre-clip demanded rate for the current epoch
	demand    []float64      // cap on rate (0 = none)
	alpha     []float64      // DCTCP mark-fraction EWMA; allocated for ECN only
	delivered []float64      // cumulative accepted bytes
	dropped   []float64      // cumulative dropped bytes (link clip + AQ)
	meters    []*stats.Meter // allocated only once some entity has a meter

	uniformTag bool // every entity carries aqid[0] (batching eligibility)
	hasMeter   bool

	// Quiescence state. A Fixed-model cohort whose tags all missed the
	// table (or are untagged), with no meters attached, is inert: given the
	// same clip and epoch width, every per-entity number of the next epoch
	// is exactly the previous one's. One full pass primes the aggregates
	// below; subsequent epochs fold them in O(1) per cohort and count the
	// streak, and materialize() replays the streak into the per-entity
	// slices when anything changes (or on Stop/read).
	primed    bool
	aqGen     uint64  // table generation the all-miss observation was made at
	wantSum   float64 // Σ want[i], the cohort's phase-A demand contribution
	acceptSum float64 // Σ accepted bytes per epoch at (lastClip, lastFdt)
	lastClip  float64
	lastFdt   float64
	streak    uint64 // epochs skipped since the last full pass
}

// matches reports whether an entity with the given placement extends this
// cohort's run. Params is all-scalar, so == is exact class identity.
func (c *cohort) matches(pipe int32, par Params) bool {
	return c.pipe == pipe && c.par == par
}

// materialize replays a quiescent streak into the per-entity slices: each
// skipped epoch delivered want·clip·fdt bytes and shed the link-clip
// remainder, for every entity, with no AQ involved (the cohort was
// all-miss). Called before any state-changing step and on Stop.
func (c *cohort) materialize() {
	if c.streak == 0 {
		return
	}
	k := float64(c.streak)
	for i := range c.rate {
		x := c.want[i] * c.lastClip * c.lastFdt
		cl := c.want[i]*c.lastFdt - x
		if cl < 0 {
			cl = 0
		}
		c.delivered[i] += k * x
		c.dropped[i] += k * cl
	}
	c.streak = 0
}

// deliveredAt returns entity i's cumulative accepted bytes with any active
// streak folded in read-only — accessors must not mutate lane state.
func (c *cohort) deliveredAt(i int32) float64 {
	d := c.delivered[i]
	if c.streak > 0 {
		d += float64(c.streak) * (c.want[i] * c.lastClip * c.lastFdt)
	}
	return d
}

// droppedAt returns entity i's cumulative dropped bytes, streak folded in.
func (c *cohort) droppedAt(i int32) float64 {
	d := c.dropped[i]
	if c.streak > 0 {
		x := c.want[i] * c.lastClip * c.lastFdt
		cl := c.want[i]*c.lastFdt - x
		if cl < 0 {
			cl = 0
		}
		d += float64(c.streak) * cl
	}
	return d
}

// react folds one epoch's feedback into entity i's rate ODE — the exact
// per-model update of the former Entity.OnFeedback, with the composite
// loss already computed by the caller. Used by the batched path, where the
// whole cohort shares one feedback; the default path inlines the same
// arithmetic in per-model loops instead of switching per entity.
func (c *cohort) react(i int, loss, markFrac float64, delay sim.Time, fdt float64) {
	switch c.par.Model {
	case Fixed:
		return
	case Loss:
		if loss > 1e-9 {
			c.rate[i] *= 1 - c.par.Beta
		} else {
			c.rate[i] += c.aiSlope * fdt
		}
	case ECN:
		g := c.par.Gain
		c.alpha[i] = (1-g)*c.alpha[i] + g*markFrac
		if markFrac > 1e-9 || loss > 1e-9 {
			cut := c.alpha[i] / 2
			if loss > 1e-9 && cut < c.par.Beta {
				cut = c.par.Beta // losses still halve, as DCTCP does
			}
			c.rate[i] *= 1 - cut
		} else {
			c.rate[i] += c.aiSlope * fdt
		}
	case Delay:
		d := float64(delay)
		if t := float64(c.par.Target); d > t && d > 0 {
			f := 1 - c.par.Beta*(d-t)/d
			if f < 0.3 {
				f = 0.3
			}
			c.rate[i] *= f
		} else if loss > 1e-9 {
			c.rate[i] *= 1 - c.par.Beta
		} else {
			c.rate[i] += c.aiSlope * fdt
		}
	}
	if c.rate[i] < c.floorRate {
		c.rate[i] = c.floorRate
	}
	if d := c.demand[i]; d > 0 && c.rate[i] > d {
		c.rate[i] = d
	}
}
