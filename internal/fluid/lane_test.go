package fluid

import (
	"math"
	"testing"

	"aqueue/internal/core"
	"aqueue/internal/sim"
	"aqueue/internal/topo"
	"aqueue/internal/units"
)

// TestFireSteadyStateAllocFree pins the structure-of-arrays payoff: once a
// lane is warm, an epoch allocates nothing — no per-entity objects, no
// cursor churn, no timer garbage — across all four model loops, tagged and
// untagged entities, and a live pipe account.
func TestFireSteadyStateAllocFree(t *testing.T) {
	eng := sim.NewEngine()
	table := core.NewTableDense(eng.Options().DenseTables)
	table.Deploy(core.Config{ID: 1, Rate: 2 * units.Gbps})
	table.Deploy(core.Config{ID: 2, Rate: units.Gbps})
	pipe := topo.NewPipe(eng, 10*units.Gbps, sim.Microsecond, 0, 0, sink{})
	lane := NewLane(eng, table, 0)
	pi := lane.AddPipe(pipe)
	lane.AddN(EntityConfig{AQ: 1, CC: "cubic", Rate: units.Gbps, Pipe: pi}, 8)
	lane.AddN(EntityConfig{AQ: 2, CC: "dctcp", Rate: units.Gbps, Pipe: pi}, 8)
	lane.AddN(EntityConfig{CC: "swift", Rate: units.Gbps, Pipe: pi}, 8)
	lane.AddN(EntityConfig{CC: "udp", Rate: units.Gbps, Pipe: pi}, 8)
	lane.Start(0)

	// Warm up: first epochs carve wheel slots and touch every code path.
	next := 5 * lane.Epoch()
	eng.RunUntil(next)

	allocs := testing.AllocsPerRun(100, func() {
		next += lane.Epoch()
		eng.RunUntil(next)
	})
	if allocs != 0 {
		t.Fatalf("steady-state epoch allocated %.1f times, want 0", allocs)
	}
	if st := lane.Stats(); st.EntityEpochs == 0 {
		t.Fatalf("no entity-epochs advanced; the alloc measurement measured nothing")
	}
}

// TestCohortBatchingEquivalence: folding a uniform-tag cohort into one
// OnFluidEpoch call must track the per-entity path within the fluid lane's
// 5% fidelity tolerance. For a non-reactive cohort the two paths shed the
// same mass (the AQ's per-epoch drain is fixed, only its split over calls
// differs), so delivered AND dropped must agree. For a reactive cohort the
// loss signal's timing differs by construction — per-entity integration
// piles deposits up inside the epoch, so late entities absorb the shed
// while batching spreads it — which perturbs the AIMD trajectory; there
// the contract is on delivered bytes and the equal-share split, not on the
// offered-load transient.
func TestCohortBatchingEquivalence(t *testing.T) {
	run := func(cc string, rate units.BitRate, opts ...LaneOption) (*Lane, []Entity) {
		eng := sim.NewEngine()
		table := core.NewTableDense(eng.Options().DenseTables)
		table.Deploy(core.Config{ID: 3, Rate: 2 * units.Gbps})
		lane := NewLane(eng, table, 0, opts...)
		lane.AddN(EntityConfig{AQ: 3, CC: cc, Rate: rate, Pipe: -1}, 32)
		lane.Start(0)
		horizon := 20 * sim.Millisecond
		lane.SetDeadline(horizon)
		eng.RunUntil(horizon)
		return lane, lane.Entities()
	}
	relDiff := func(a, b float64) float64 {
		if a == 0 && b == 0 {
			return 0
		}
		return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
	}

	// Non-reactive overload: 4 Gbps offered against a 2 Gbps allocation.
	pf, _ := run("udp", 125*units.Mbps)
	bf, _ := run("udp", 125*units.Mbps, WithCohortBatching())
	pfs, bfs := pf.Stats(), bf.Stats()
	if bfs.BatchedEntityEpochs == 0 {
		t.Fatalf("batching enabled but no entity-epochs took the batched path")
	}
	if pfs.EntityEpochs != bfs.EntityEpochs {
		t.Fatalf("entity-epoch accounting diverged: %d vs %d", pfs.EntityEpochs, bfs.EntityEpochs)
	}
	if d := relDiff(pfs.DeliveredBytes, bfs.DeliveredBytes); d > 0.05 {
		t.Errorf("fixed: delivered diverged %.1f%%: per-entity %.0f vs batched %.0f",
			d*100, pfs.DeliveredBytes, bfs.DeliveredBytes)
	}
	if d := relDiff(pfs.DroppedBytes, bfs.DroppedBytes); d > 0.05 {
		t.Errorf("fixed: dropped diverged %.1f%%: per-entity %.0f vs batched %.0f",
			d*100, pfs.DroppedBytes, bfs.DroppedBytes)
	}

	// Reactive: cubic entities seeking the allocation.
	pr, _ := run("cubic", 250*units.Mbps)
	br, ents := run("cubic", 250*units.Mbps, WithCohortBatching())
	prs, brs := pr.Stats(), br.Stats()
	if d := relDiff(prs.DeliveredBytes, brs.DeliveredBytes); d > 0.05 {
		t.Errorf("reactive: delivered diverged %.1f%%: per-entity %.0f vs batched %.0f",
			d*100, prs.DeliveredBytes, brs.DeliveredBytes)
	}
	// Identical entities sharing one AQ must come out even under batching.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, e := range ents {
		d := e.Delivered()
		lo, hi = math.Min(lo, d), math.Max(hi, d)
	}
	if hi > 0 && lo/hi < 0.99 {
		t.Errorf("pro-rata split uneven across identical entities: min %.0f max %.0f", lo, hi)
	}
}

// TestLaneRestart: Stop must be a clean boundary — no epochs while
// stopped, and a later Start re-baselines the per-pipe tx counters so
// packet bytes sent in the gap are not billed against the first epoch's
// residual.
func TestLaneRestart(t *testing.T) {
	eng := sim.NewEngine()
	table := core.NewTableDense(eng.Options().DenseTables)
	pipe := topo.NewPipe(eng, 10*units.Gbps, sim.Microsecond, 0, 0, sink{})
	lane := NewLane(eng, table, 0)
	pi := lane.AddPipe(pipe)
	lane.Add(EntityConfig{CC: "udp", Rate: 4 * units.Gbps, Pipe: pi})
	lane.Start(0)
	eng.RunUntil(5 * sim.Millisecond)
	lane.Stop()
	st1 := lane.Stats()
	if st1.DeliveredBytes <= 0 {
		t.Fatalf("first run delivered nothing")
	}
	if fr := pipe.FluidRate(); fr != 0 {
		t.Fatalf("FluidRate = %v after Stop, want 0", fr)
	}

	// While stopped: time passes, no epochs fire, and the packet lane moves
	// a burst of bytes over the pipe.
	eng.RunUntil(10 * sim.Millisecond)
	if st := lane.Stats(); st.Epochs != st1.Epochs {
		t.Fatalf("epochs advanced while stopped: %d -> %d", st1.Epochs, st.Epochs)
	}
	pipe.TxBytes += 50_000_000 // ~40ms of line rate, sent in the gap

	lane.Start(eng.Now())
	eng.RunUntil(15 * sim.Millisecond)
	lane.Stop()
	st2 := lane.Stats()
	got := st2.DeliveredBytes - st1.DeliveredBytes
	want := 4e9 / 8e9 * 5e6 // 4 Gbps over 5ms, in bytes
	if got < 0.9*want {
		t.Fatalf("post-restart delivered %.0f bytes, want ~%.0f — stale lastTx billed the stopped gap's traffic", got, want)
	}
}

// TestPipeRateChangeMidRun is the stale-capacity regression: the lane must
// re-read the pipe's rate every epoch, so a runtime SetRate (what a wire
// set_rate lands as) reshapes the fluid residual from the next epoch on
// rather than clipping against the capacity captured at AddPipe.
func TestPipeRateChangeMidRun(t *testing.T) {
	eng := sim.NewEngine()
	table := core.NewTableDense(eng.Options().DenseTables)
	pipe := topo.NewPipe(eng, 10*units.Gbps, sim.Microsecond, 0, 0, sink{})
	lane := NewLane(eng, table, 0)
	pi := lane.AddPipe(pipe)
	lane.Add(EntityConfig{CC: "udp", Rate: 8 * units.Gbps, Pipe: pi})
	lane.Start(0)
	eng.RunUntil(2 * sim.Millisecond)
	if fr := float64(pipe.FluidRate()); math.Abs(fr-8e9) > 1e8 {
		t.Fatalf("pre-change FluidRate = %.2g, want ~8G", fr)
	}
	pipe.SetRate(4 * units.Gbps)
	eng.RunUntil(4 * sim.Millisecond)
	if fr := float64(pipe.FluidRate()); math.Abs(fr-4e9) > 1e8 {
		t.Fatalf("post-change FluidRate = %.2g, want ~4G (clipped to the new link rate)", fr)
	}
	lane.Stop()
}

// TestQuiescenceSkipping: an untagged Fixed cohort settles after one full
// epoch and is skipped from then on — with the counters recording the
// skips, the accessors folding the pending streak read-only, and any
// population change forcing a materialize + full pass. The skipped path
// must be numerically exact, not approximate: the totals after Stop equal
// the closed-form value.
func TestQuiescenceSkipping(t *testing.T) {
	eng := sim.NewEngine()
	table := core.NewTableDense(eng.Options().DenseTables)
	lane := NewLane(eng, table, 0)
	e0 := lane.Add(EntityConfig{CC: "udp", Rate: units.Gbps, Pipe: -1})
	lane.AddN(EntityConfig{CC: "udp", Rate: units.Gbps, Pipe: -1}, 3)
	lane.Start(0)
	ep := lane.Epoch()

	eng.RunUntil(10*ep + ep/2) // 10 epochs fired
	st := lane.Stats()
	if st.EntityEpochs != 40 {
		t.Fatalf("entity-epochs = %d, want 40 (4 entities x 10 epochs, skipped included)", st.EntityEpochs)
	}
	if st.SkippedEntityEpochs != 36 {
		t.Fatalf("skipped = %d, want 36 (epoch 1 primes, epochs 2-10 skip)", st.SkippedEntityEpochs)
	}
	// Mid-streak accessor: 1 Gbps over 10 epochs, folded without mutating.
	perEpoch := float64(units.Gbps) / 8e9 * float64(ep)
	if got, want := e0.Delivered(), 10*perEpoch; got != want {
		t.Fatalf("mid-streak Delivered = %v, want exactly %v", got, want)
	}
	if got := lane.Stats().DeliveredBytes; got != 40*perEpoch {
		t.Fatalf("lane delivered = %v, want exactly %v", got, 40*perEpoch)
	}

	// Growing the cohort invalidates the primed aggregates: the next epoch
	// is a full pass, then skipping resumes for the larger population.
	lane.Add(EntityConfig{CC: "udp", Rate: units.Gbps, Pipe: -1})
	eng.RunUntil(12*ep + ep/2)
	st2 := lane.Stats()
	if st2.SkippedEntityEpochs != 36+5 {
		t.Fatalf("skipped after growth = %d, want 41 (full pass on epoch 11, skip 5 on epoch 12)", st2.SkippedEntityEpochs)
	}
	lane.Stop()
	if got, want := e0.Delivered(), 12*perEpoch; got != want {
		t.Fatalf("post-Stop Delivered = %v, want exactly %v", got, want)
	}
}
