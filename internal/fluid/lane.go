package fluid

import (
	"fmt"

	"aqueue/internal/core"
	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/stats"
	"aqueue/internal/topo"
	"aqueue/internal/units"
)

// minResidualFrac mirrors topo.Pipe's residual floor: the packet lane is
// never starved below 1/1000 of a link, and symmetrically the fluid lane
// never claims more than 999/1000 of one.
const minResidualFrac = 1.0 / 1000

// DefaultEpoch is the fluid epoch width used when a Lane is built with
// epoch 0 — on the order of a datacenter RTT, so first-order AIMD
// reactions happen at the same cadence as the packet senders they stand
// in for.
const DefaultEpoch = 100 * sim.Microsecond

// pipeAccount tracks one link shared between the lanes: packet bytes
// observed per epoch become the fluid residual, and accepted fluid rate
// is pushed back as the packet lane's residual via SetFluidRate. Capacity
// is re-read from the pipe every epoch, so a runtime set_rate over the
// wire reshapes the residual from the next epoch on.
type pipeAccount struct {
	pipe   *topo.Pipe
	lastTx uint64 // pipe.TxBytes at the previous epoch

	demand   float64 // accumulated fluid demand this epoch, bytes/ns
	clip     float64 // allowed fraction of demand this epoch
	accepted float64 // accepted fluid rate this epoch, bytes/ns
}

// LaneOption configures a Lane at construction.
type LaneOption func(*Lane)

// WithCohortBatching folds each uniform-tag cohort's offered bytes into a
// single AQ.OnFluidEpoch call per epoch, distributing the feedback
// pro-rata by demand, instead of integrating one epoch per entity. For n
// same-tag entities this replaces n closed-form integrations (of which
// all but the first degenerate to point deposits, since the first already
// advanced last_time to the epoch boundary) with one integration of the
// summed rate — O(1) AQ work per cohort, and arguably closer to the
// continuous Expression 7 than the per-entity pile-up. The trajectory is
// not bit-identical to the per-entity path; the equivalence test bounds
// the divergence within the fluid lane's fidelity tolerance.
func WithCohortBatching() LaneOption {
	return func(l *Lane) { l.batch = true }
}

// Lane advances a set of fluid entities at a fixed epoch on its engine's
// timer wheel. Everything a Lane touches — its table, its pipes, its
// entities — lives on one engine: epochs are ordinary domain-local timer
// events, so in a partitioned run they never widen a sync window (timers
// only shrink a domain's earliest-arrival bound, which is always honest),
// and the cluster's fingerprint gates bind exactly as before.
//
// Entity state is held in structure-of-arrays cohorts (see cohort.go);
// the lane steps cohorts directly with per-model inner loops, resolving
// AQs through a core.StreamCursor, and skips quiescent cohorts outright.
// The steady state of fire allocates nothing.
type Lane struct {
	eng   *sim.Engine
	table *core.Table
	epoch sim.Time
	timer *sim.Timer
	batch bool

	cohorts []cohort
	pipes   []pipeAccount
	total   int // entity count across cohorts

	cursor core.StreamCursor

	// now/lastFire bracket the epoch being integrated while fire runs.
	now      sim.Time
	lastFire sim.Time
	deadline sim.Time // no epochs fire after this (0 = unbounded)
	running  bool

	epochs              uint64
	entityEpochs        uint64
	skippedEntityEpochs uint64
	batchedEntityEpochs uint64
	delivered           float64
	dropped             float64
}

// NewLane builds a fluid lane stepping the given table's AQs on eng every
// epoch (0 selects DefaultEpoch).
func NewLane(eng *sim.Engine, table *core.Table, epoch sim.Time, opts ...LaneOption) *Lane {
	if epoch <= 0 {
		epoch = DefaultEpoch
	}
	l := &Lane{eng: eng, table: table, epoch: epoch}
	for _, o := range opts {
		o(l)
	}
	l.timer = eng.NewTimer(l.fire)
	return l
}

// Epoch returns the lane's epoch width.
func (l *Lane) Epoch() sim.Time { return l.epoch }

// AddPipe registers a link for residual-rate accounting and returns its
// index for EntityConfig.Pipe. The pipe must belong to the lane's engine:
// fluid epochs are domain-local by construction, and accounting a remote
// pipe would race its domain.
func (l *Lane) AddPipe(p *topo.Pipe) int {
	if p.Engine() != l.eng {
		panic("fluid: pipe belongs to another engine; a lane is domain-local")
	}
	l.pipes = append(l.pipes, pipeAccount{
		pipe:   p,
		lastTx: p.TxBytes,
		clip:   1,
	})
	return len(l.pipes) - 1
}

// Add builds an entity from cfg and registers it with the lane, returning
// a stable handle. Consecutive Adds with the same (pipe, params) class
// extend one cohort.
func (l *Lane) Add(cfg EntityConfig) Entity { return l.AddN(cfg, 1) }

// AddN registers n identical entities from cfg — one cohort extension, the
// bulk path for drivers attaching whole populations — and returns the
// handle of the first. Handles for the rest follow in registration order
// via Entities().
func (l *Lane) AddN(cfg EntityConfig, n int) Entity {
	if n <= 0 {
		panic("fluid: AddN needs n >= 1")
	}
	par := ParamsFor(cfg.CC)
	if cfg.Params != nil {
		par = *cfg.Params
	}
	pipe := int32(-1)
	if cfg.Pipe >= 0 {
		if cfg.Pipe >= len(l.pipes) {
			panic(fmt.Sprintf("fluid: entity pipe index %d out of range", cfg.Pipe))
		}
		pipe = int32(cfg.Pipe)
	}
	ci := len(l.cohorts) - 1
	if ci < 0 || !l.cohorts[ci].matches(pipe, par) {
		l.cohorts = append(l.cohorts, cohort{
			par:        par,
			pipe:       pipe,
			aiSlope:    par.ai(),
			floorRate:  par.floor(),
			uniformTag: true,
		})
		ci++
	}
	c := &l.cohorts[ci]
	// A population change invalidates any primed quiescence aggregates.
	c.materialize()
	c.primed = false
	if len(c.aqid) > 0 && c.aqid[0] != cfg.AQ {
		c.uniformTag = false
	}
	if cfg.Meter != nil && c.meters == nil {
		// First metered entity: backfill nil meters for the earlier ones.
		c.meters = make([]*stats.Meter, len(c.aqid))
	}
	first := int32(len(c.aqid))
	rate := cfg.Rate.BytesPerNano()
	if par.Model != Fixed && rate < c.floorRate {
		rate = c.floorRate
	}
	demand := cfg.Demand.BytesPerNano()
	for k := 0; k < n; k++ {
		c.aqid = append(c.aqid, cfg.AQ)
		c.rate = append(c.rate, rate)
		c.want = append(c.want, 0)
		c.demand = append(c.demand, demand)
		c.delivered = append(c.delivered, 0)
		c.dropped = append(c.dropped, 0)
		if par.Model == ECN {
			c.alpha = append(c.alpha, 0)
		}
		if c.meters != nil {
			c.meters = append(c.meters, cfg.Meter)
		}
	}
	if cfg.Meter != nil {
		c.hasMeter = true
	}
	l.total += n
	return Entity{lane: l, c: int32(ci), i: first}
}

// Start arms the first epoch at now+epoch. Idempotent while running. On a
// restart after Stop, the per-pipe tx counters are re-baselined: packet
// bytes sent while the lane was stopped are not this lane's epoch traffic.
func (l *Lane) Start(now sim.Time) {
	if l.running {
		return
	}
	l.running = true
	l.lastFire = now
	for i := range l.pipes {
		l.pipes[i].lastTx = l.pipes[i].pipe.TxBytes
	}
	l.timer.Arm(now + l.epoch)
}

// SetDeadline stops the lane from re-arming past t; zero removes the
// bound. Bounding the lane matters in experiments that run the engine to
// a far horizon and rely on event exhaustion to finish early.
func (l *Lane) SetDeadline(t sim.Time) { l.deadline = t }

// Stop disarms the lane, settles any quiescent streaks into the per-entity
// state, and releases its pipes back to the packet lane. A stopped lane
// may be Started again.
func (l *Lane) Stop() {
	l.running = false
	l.timer.Disarm()
	l.settle()
	for i := range l.pipes {
		l.pipes[i].pipe.SetFluidRate(0)
	}
}

// settle materializes every cohort's pending streak.
func (l *Lane) settle() {
	for ci := range l.cohorts {
		l.cohorts[ci].materialize()
	}
}

// fire integrates one epoch: observe the packet lane's per-pipe usage,
// clip fluid demand to the residual, step every cohort through the AQ
// table, and push the accepted fluid rate back onto the pipes. Cohorts
// iterate in creation order and entities in index order — exactly the
// global registration order — so a run is deterministic for a given
// build-up sequence regardless of domain count, and the default path is
// byte-identical to the former per-entity-object layout.
func (l *Lane) fire() {
	now := l.eng.Now()
	dt := now - l.lastFire
	if dt <= 0 {
		l.rearm(now)
		return
	}
	l.now = now
	l.lastFire = now
	fdt := float64(dt)

	// Per-pipe residual: capacity minus what the packet lane actually
	// sent during the epoch, floored so fluid cannot starve packets.
	for i := range l.pipes {
		pa := &l.pipes[i]
		cap := pa.pipe.Rate().BytesPerNano()
		tx := pa.pipe.TxBytes
		pktRate := float64(tx-pa.lastTx) / fdt
		pa.lastTx = tx
		res := cap - pktRate
		if floor := cap * minResidualFrac; res < floor {
			res = floor
		}
		pa.demand = 0
		pa.accepted = 0
		pa.clip = res // reuse: holds residual until demand is known
	}
	gen := l.table.Generation()
	// Accumulate demand, then convert residuals into clip fractions. A
	// primed cohort's wants are unchanged by construction, so its
	// precomputed sum replaces the per-entity pass.
	for ci := range l.cohorts {
		c := &l.cohorts[ci]
		if c.primed && c.aqGen == gen {
			if c.pipe >= 0 {
				l.pipes[c.pipe].demand += c.wantSum
			}
			continue
		}
		if c.pipe >= 0 {
			pd := &l.pipes[c.pipe].demand
			for i, r := range c.rate {
				if d := c.demand[i]; d > 0 && r > d {
					r = d
				}
				c.want[i] = r
				*pd += r
			}
		} else {
			for i, r := range c.rate {
				if d := c.demand[i]; d > 0 && r > d {
					r = d
				}
				c.want[i] = r
			}
		}
	}
	for i := range l.pipes {
		pa := &l.pipes[i]
		res := pa.clip
		if pa.demand > res {
			pa.clip = res / pa.demand
		} else {
			pa.clip = 1
		}
	}
	// Per-cohort AQ step and model update.
	l.cursor.Bind(l.table)
	for ci := range l.cohorts {
		c := &l.cohorts[ci]
		clip := 1.0
		var pa *pipeAccount
		if c.pipe >= 0 {
			pa = &l.pipes[c.pipe]
			clip = pa.clip
		}
		if c.primed && c.aqGen == gen && clip == c.lastClip && fdt == c.lastFdt {
			// Quiescent: a Fixed all-miss meterless cohort under the same
			// clip and epoch width reproduces last epoch's numbers
			// exactly — fold the aggregates, extend the streak, done.
			c.streak++
			l.delivered += c.acceptSum
			if pa != nil {
				pa.accepted += c.acceptSum / fdt
			}
			l.skippedEntityEpochs += uint64(len(c.rate))
			continue
		}
		c.materialize()
		c.primed = false
		if l.batch && c.uniformTag && len(c.aqid) > 0 && c.aqid[0] != packet.NoAQ && l.table.Lookup(c.aqid[0]) != nil {
			l.stepCohortBatched(c, now, dt, fdt, clip, pa)
			continue
		}
		l.stepCohort(c, gen, now, dt, fdt, clip, pa)
	}
	l.entityEpochs += uint64(l.total)
	l.epochs++
	l.cursor.Flush()
	// Couple back: the packet lane serializes at the residual of the
	// accepted fluid rate until the next epoch.
	for i := range l.pipes {
		pa := &l.pipes[i]
		pa.pipe.SetFluidRate(units.BitRate(pa.accepted * 8e9))
	}
	l.rearm(now)
}

// stepCohort advances one cohort per-entity — the default, byte-identical
// path. The model dispatch is hoisted out of the entity loop: each model
// gets its own inner loop over the cohort's arrays, with both the epoch
// integration and the reaction arithmetic inlined exactly as the former
// ProcessStream + Entity.OnFeedback computed them (same operands, same
// order, per entity). The duplication across the four loops is deliberate:
// this is the hot loop of the million-entity scenarios, and keeping the
// body inline lets the compiler hold the lane accumulators in registers.
// The Fixed loop omits the loss computation entirely — the model ignores
// it, so the divisions had no observable effect.
func (l *Lane) stepCohort(c *cohort, gen uint64, now, dt sim.Time, fdt, clip float64, pa *pipeAccount) {
	n := len(c.rate)
	cur := &l.cursor
	switch c.par.Model {
	case Fixed:
		aqFree := true
		var wantSum, acceptSum float64
		for i := 0; i < n; i++ {
			want := c.want[i]
			var fb core.FluidFeedback
			if id := c.aqid[i]; id != packet.NoAQ {
				if aq := cur.Resolve(id); aq != nil {
					fb = aq.OnFluidEpoch(now, want*clip*fdt, dt)
					aqFree = false
				} else {
					fb.Accepted = want * clip * fdt
				}
			} else {
				fb.Accepted = want * clip * fdt
			}
			c.delivered[i] += fb.Accepted
			clipped := want*fdt - (fb.Accepted + fb.Dropped)
			if clipped < 0 {
				clipped = 0
			}
			c.dropped[i] += fb.Dropped + clipped
			if c.meters != nil {
				if m := c.meters[i]; m != nil {
					m.AddFloat(now, fb.Accepted)
				}
			}
			l.delivered += fb.Accepted
			l.dropped += fb.Dropped
			if pa != nil {
				pa.accepted += fb.Accepted / fdt
			}
			wantSum += want
			acceptSum += fb.Accepted
		}
		if aqFree && !c.hasMeter {
			// Prime the quiescence aggregates: nothing about this cohort
			// can change until the clip, the epoch width, the table
			// membership, or the population does.
			c.primed = true
			c.aqGen = gen
			c.wantSum, c.acceptSum = wantSum, acceptSum
			c.lastClip, c.lastFdt = clip, fdt
		}
	case Loss:
		beta := c.par.Beta
		for i := 0; i < n; i++ {
			want := c.want[i]
			var fb core.FluidFeedback
			if id := c.aqid[i]; id != packet.NoAQ {
				if aq := cur.Resolve(id); aq != nil {
					fb = aq.OnFluidEpoch(now, want*clip*fdt, dt)
				} else {
					fb.Accepted = want * clip * fdt
				}
			} else {
				fb.Accepted = want * clip * fdt
			}
			c.delivered[i] += fb.Accepted
			clipped := want*fdt - (fb.Accepted + fb.Dropped)
			if clipped < 0 {
				clipped = 0
			}
			c.dropped[i] += fb.Dropped + clipped
			if c.meters != nil {
				if m := c.meters[i]; m != nil {
					m.AddFloat(now, fb.Accepted)
				}
			}
			l.delivered += fb.Accepted
			l.dropped += fb.Dropped
			if pa != nil {
				pa.accepted += fb.Accepted / fdt
			}
			loss := fb.LossFrac()
			if clip < 1 {
				loss = 1 - clip*(1-loss)
			}
			r := c.rate[i]
			if loss > 1e-9 {
				r *= 1 - beta
			} else {
				r += c.aiSlope * fdt
			}
			if r < c.floorRate {
				r = c.floorRate
			}
			if d := c.demand[i]; d > 0 && r > d {
				r = d
			}
			c.rate[i] = r
		}
	case ECN:
		g := c.par.Gain
		beta := c.par.Beta
		for i := 0; i < n; i++ {
			want := c.want[i]
			var fb core.FluidFeedback
			if id := c.aqid[i]; id != packet.NoAQ {
				if aq := cur.Resolve(id); aq != nil {
					fb = aq.OnFluidEpoch(now, want*clip*fdt, dt)
				} else {
					fb.Accepted = want * clip * fdt
				}
			} else {
				fb.Accepted = want * clip * fdt
			}
			c.delivered[i] += fb.Accepted
			clipped := want*fdt - (fb.Accepted + fb.Dropped)
			if clipped < 0 {
				clipped = 0
			}
			c.dropped[i] += fb.Dropped + clipped
			if c.meters != nil {
				if m := c.meters[i]; m != nil {
					m.AddFloat(now, fb.Accepted)
				}
			}
			l.delivered += fb.Accepted
			l.dropped += fb.Dropped
			if pa != nil {
				pa.accepted += fb.Accepted / fdt
			}
			loss := fb.LossFrac()
			if clip < 1 {
				loss = 1 - clip*(1-loss)
			}
			a := (1-g)*c.alpha[i] + g*fb.MarkFrac
			c.alpha[i] = a
			r := c.rate[i]
			if fb.MarkFrac > 1e-9 || loss > 1e-9 {
				cut := a / 2
				if loss > 1e-9 && cut < beta {
					cut = beta // losses still halve, as DCTCP does
				}
				r *= 1 - cut
			} else {
				r += c.aiSlope * fdt
			}
			if r < c.floorRate {
				r = c.floorRate
			}
			if d := c.demand[i]; d > 0 && r > d {
				r = d
			}
			c.rate[i] = r
		}
	case Delay:
		beta := c.par.Beta
		target := float64(c.par.Target)
		for i := 0; i < n; i++ {
			want := c.want[i]
			var fb core.FluidFeedback
			if id := c.aqid[i]; id != packet.NoAQ {
				if aq := cur.Resolve(id); aq != nil {
					fb = aq.OnFluidEpoch(now, want*clip*fdt, dt)
				} else {
					fb.Accepted = want * clip * fdt
				}
			} else {
				fb.Accepted = want * clip * fdt
			}
			c.delivered[i] += fb.Accepted
			clipped := want*fdt - (fb.Accepted + fb.Dropped)
			if clipped < 0 {
				clipped = 0
			}
			c.dropped[i] += fb.Dropped + clipped
			if c.meters != nil {
				if m := c.meters[i]; m != nil {
					m.AddFloat(now, fb.Accepted)
				}
			}
			l.delivered += fb.Accepted
			l.dropped += fb.Dropped
			if pa != nil {
				pa.accepted += fb.Accepted / fdt
			}
			loss := fb.LossFrac()
			if clip < 1 {
				loss = 1 - clip*(1-loss)
			}
			r := c.rate[i]
			if d := float64(fb.Delay); d > target && d > 0 {
				f := 1 - beta*(d-target)/d
				if f < 0.3 {
					f = 0.3
				}
				r *= f
			} else if loss > 1e-9 {
				r *= 1 - beta
			} else {
				r += c.aiSlope * fdt
			}
			if r < c.floorRate {
				r = c.floorRate
			}
			if d := c.demand[i]; d > 0 && r > d {
				r = d
			}
			c.rate[i] = r
		}
	}
}

// stepCohortBatched integrates a uniform-tag cohort as one stream: the
// summed offered bytes go through AQ.OnFluidEpoch once, and the feedback
// is distributed pro-rata by each entity's demanded rate. Only reached
// under WithCohortBatching, and only when the shared tag resolves to a
// deployed AQ (misses fall back to the per-entity pass-through, which is
// already O(n) trivial work).
func (l *Lane) stepCohortBatched(c *cohort, now, dt sim.Time, fdt, clip float64, pa *pipeAccount) {
	n := len(c.rate)
	aq := l.cursor.Resolve(c.aqid[0])
	var wantSum float64
	for i := 0; i < n; i++ {
		wantSum += c.want[i]
	}
	fb := aq.OnFluidEpoch(now, wantSum*clip*fdt, dt)
	loss := fb.LossFrac()
	if clip < 1 {
		loss = 1 - clip*(1-loss)
	}
	inv := 0.0
	if wantSum > 0 {
		inv = 1 / wantSum
	}
	for i := 0; i < n; i++ {
		share := c.want[i] * inv
		acc := fb.Accepted * share
		drp := fb.Dropped * share
		c.delivered[i] += acc
		clipped := c.want[i]*fdt - (acc + drp)
		if clipped < 0 {
			clipped = 0
		}
		c.dropped[i] += drp + clipped
		if c.meters != nil {
			if m := c.meters[i]; m != nil {
				m.AddFloat(now, acc)
			}
		}
		c.react(i, loss, fb.MarkFrac, fb.Delay, fdt)
	}
	l.delivered += fb.Accepted
	l.dropped += fb.Dropped
	if pa != nil {
		pa.accepted += fb.Accepted / fdt
	}
	l.batchedEntityEpochs += uint64(n)
}

// rearm schedules the next epoch unless the deadline passed.
func (l *Lane) rearm(now sim.Time) {
	if !l.running {
		return
	}
	next := now + l.epoch
	if l.deadline > 0 && next > l.deadline {
		l.running = false
		l.settle()
		// Release the pipes back to the packet lane.
		for i := range l.pipes {
			l.pipes[i].pipe.SetFluidRate(0)
		}
		return
	}
	l.timer.Arm(next)
}

// LaneStats summarises a lane for telemetry and benchmarks. The skipped
// and batched counters are subsets of EntityEpochs: every entity is
// accounted every epoch, whether it was stepped individually, folded into
// a cohort aggregate, or skipped as quiescent.
type LaneStats struct {
	Entities            int     `json:"entities"`
	Epochs              uint64  `json:"epochs"`
	EntityEpochs        uint64  `json:"entity_epochs"`
	SkippedEntityEpochs uint64  `json:"skipped_entity_epochs,omitempty"`
	BatchedEntityEpochs uint64  `json:"batched_entity_epochs,omitempty"`
	DeliveredBytes      float64 `json:"delivered_bytes"`
	DroppedBytes        float64 `json:"dropped_bytes"`
	EpochNS             int64   `json:"epoch_ns"`
}

// Stats returns a snapshot of the lane's counters. Like the other
// simulation stats it is a pure function of simulated execution, safe to
// fold into fingerprints.
func (l *Lane) Stats() LaneStats {
	return LaneStats{
		Entities:            l.total,
		Epochs:              l.epochs,
		EntityEpochs:        l.entityEpochs,
		SkippedEntityEpochs: l.skippedEntityEpochs,
		BatchedEntityEpochs: l.batchedEntityEpochs,
		DeliveredBytes:      l.delivered,
		DroppedBytes:        l.dropped,
		EpochNS:             int64(l.epoch),
	}
}

// Entities returns handles for the lane's entities in registration order.
// The slice is built on demand — the lane itself never stores per-entity
// objects.
func (l *Lane) Entities() []Entity {
	out := make([]Entity, 0, l.total)
	for ci := range l.cohorts {
		for i := range l.cohorts[ci].rate {
			out = append(out, Entity{lane: l, c: int32(ci), i: int32(i)})
		}
	}
	return out
}
