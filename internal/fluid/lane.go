package fluid

import (
	"fmt"

	"aqueue/internal/core"
	"aqueue/internal/sim"
	"aqueue/internal/topo"
	"aqueue/internal/units"
)

// minResidualFrac mirrors topo.Pipe's residual floor: the packet lane is
// never starved below 1/1000 of a link, and symmetrically the fluid lane
// never claims more than 999/1000 of one.
const minResidualFrac = 1.0 / 1000

// DefaultEpoch is the fluid epoch width used when a Lane is built with
// epoch 0 — on the order of a datacenter RTT, so first-order AIMD
// reactions happen at the same cadence as the packet senders they stand
// in for.
const DefaultEpoch = 100 * sim.Microsecond

// pipeAccount tracks one link shared between the lanes: packet bytes
// observed per epoch become the fluid residual, and accepted fluid rate
// is pushed back as the packet lane's residual via SetFluidRate.
type pipeAccount struct {
	pipe   *topo.Pipe
	cap    float64 // link capacity, bytes/ns
	lastTx uint64  // pipe.TxBytes at the previous epoch

	demand   float64 // accumulated fluid demand this epoch, bytes/ns
	clip     float64 // allowed fraction of demand this epoch
	accepted float64 // accepted fluid rate this epoch, bytes/ns
}

// Lane advances a set of fluid entities at a fixed epoch on its engine's
// timer wheel. Everything a Lane touches — its table, its pipes, its
// entities — lives on one engine: epochs are ordinary domain-local timer
// events, so in a partitioned run they never widen a sync window (timers
// only shrink a domain's earliest-arrival bound, which is always honest),
// and the cluster's fingerprint gates bind exactly as before.
type Lane struct {
	eng   *sim.Engine
	table *core.Table
	epoch sim.Time
	timer *sim.Timer

	entities []*Entity
	pipes    []*pipeAccount

	// now/lastFire bracket the epoch being integrated while fire runs.
	now      sim.Time
	lastFire sim.Time
	deadline sim.Time // no epochs fire after this (0 = unbounded)
	running  bool

	epochs       uint64
	entityEpochs uint64
	delivered    float64
	dropped      float64
}

// NewLane builds a fluid lane stepping the given table's AQs on eng every
// epoch (0 selects DefaultEpoch).
func NewLane(eng *sim.Engine, table *core.Table, epoch sim.Time) *Lane {
	if epoch <= 0 {
		epoch = DefaultEpoch
	}
	l := &Lane{eng: eng, table: table, epoch: epoch}
	l.timer = eng.NewTimer(l.fire)
	return l
}

// Epoch returns the lane's epoch width.
func (l *Lane) Epoch() sim.Time { return l.epoch }

// AddPipe registers a link for residual-rate accounting and returns its
// index for EntityConfig.Pipe. The pipe must belong to the lane's engine:
// fluid epochs are domain-local by construction, and accounting a remote
// pipe would race its domain.
func (l *Lane) AddPipe(p *topo.Pipe) int {
	if p.Engine() != l.eng {
		panic("fluid: pipe belongs to another engine; a lane is domain-local")
	}
	l.pipes = append(l.pipes, &pipeAccount{
		pipe:   p,
		cap:    p.Rate().BytesPerNano(),
		lastTx: p.TxBytes,
		clip:   1,
	})
	return len(l.pipes) - 1
}

// Add builds an entity from cfg and registers it with the lane.
func (l *Lane) Add(cfg EntityConfig) *Entity {
	par := ParamsFor(cfg.CC)
	if cfg.Params != nil {
		par = *cfg.Params
	}
	e := &Entity{
		lane:   l,
		id:     cfg.AQ,
		par:    par,
		rate:   cfg.Rate.BytesPerNano(),
		demand: cfg.Demand.BytesPerNano(),
		clip:   1,
		pipe:   -1,
		meter:  cfg.Meter,
	}
	if cfg.Pipe >= 0 {
		if cfg.Pipe >= len(l.pipes) {
			panic(fmt.Sprintf("fluid: entity pipe index %d out of range", cfg.Pipe))
		}
		e.pipe = int32(cfg.Pipe)
	}
	if floor := par.floor(); e.rate < floor && par.Model != Fixed {
		e.rate = floor
	}
	l.entities = append(l.entities, e)
	return e
}

// Start arms the first epoch at now+epoch. Idempotent while running.
func (l *Lane) Start(now sim.Time) {
	if l.running {
		return
	}
	l.running = true
	l.lastFire = now
	l.timer.Arm(now + l.epoch)
}

// SetDeadline stops the lane from re-arming past t; zero removes the
// bound. Bounding the lane matters in experiments that run the engine to
// a far horizon and rely on event exhaustion to finish early.
func (l *Lane) SetDeadline(t sim.Time) { l.deadline = t }

// Stop disarms the lane and releases its pipes back to the packet lane.
func (l *Lane) Stop() {
	l.running = false
	l.timer.Disarm()
	for _, pa := range l.pipes {
		pa.pipe.SetFluidRate(0)
	}
}

// fire integrates one epoch: observe the packet lane's per-pipe usage,
// clip fluid demand to the residual, drive every entity through the AQ
// table, and push the accepted fluid rate back onto the pipes. Iteration
// is in registration order over plain slices, so a run is deterministic
// for a given build-up sequence regardless of domain count.
func (l *Lane) fire() {
	now := l.eng.Now()
	dt := now - l.lastFire
	if dt <= 0 {
		l.rearm(now)
		return
	}
	l.now = now
	l.lastFire = now
	fdt := float64(dt)

	// Per-pipe residual: capacity minus what the packet lane actually
	// sent during the epoch, floored so fluid cannot starve packets.
	for _, pa := range l.pipes {
		tx := pa.pipe.TxBytes
		pktRate := float64(tx-pa.lastTx) / fdt
		pa.lastTx = tx
		res := pa.cap - pktRate
		if floor := pa.cap * minResidualFrac; res < floor {
			res = floor
		}
		pa.demand = 0
		pa.accepted = 0
		pa.clip = res // reuse: holds residual until demand is known
	}
	// Accumulate demand, then convert residuals into clip fractions.
	for _, e := range l.entities {
		e.want = e.rate
		if e.demand > 0 && e.want > e.demand {
			e.want = e.demand
		}
		if e.pipe >= 0 {
			l.pipes[e.pipe].demand += e.want
		}
	}
	for _, pa := range l.pipes {
		res := pa.clip
		if pa.demand > res {
			pa.clip = res / pa.demand
		} else {
			pa.clip = 1
		}
	}
	// Per-entity AQ step and model update.
	for _, e := range l.entities {
		if e.pipe >= 0 {
			e.clip = l.pipes[e.pipe].clip
		} else {
			e.clip = 1
		}
		fb := l.table.ProcessStream(now, dt, e)
		l.delivered += fb.Accepted
		l.dropped += fb.Dropped
		if e.pipe >= 0 {
			l.pipes[e.pipe].accepted += fb.Accepted / fdt
		}
	}
	l.entityEpochs += uint64(len(l.entities))
	l.epochs++
	// Couple back: the packet lane serializes at the residual of the
	// accepted fluid rate until the next epoch.
	for _, pa := range l.pipes {
		pa.pipe.SetFluidRate(units.BitRate(pa.accepted * 8e9))
	}
	l.rearm(now)
}

// rearm schedules the next epoch unless the deadline passed.
func (l *Lane) rearm(now sim.Time) {
	if !l.running {
		return
	}
	next := now + l.epoch
	if l.deadline > 0 && next > l.deadline {
		l.running = false
		// Release the pipes back to the packet lane.
		for _, pa := range l.pipes {
			pa.pipe.SetFluidRate(0)
		}
		return
	}
	l.timer.Arm(next)
}

// LaneStats summarises a lane for telemetry and benchmarks.
type LaneStats struct {
	Entities       int     `json:"entities"`
	Epochs         uint64  `json:"epochs"`
	EntityEpochs   uint64  `json:"entity_epochs"`
	DeliveredBytes float64 `json:"delivered_bytes"`
	DroppedBytes   float64 `json:"dropped_bytes"`
	EpochNS        int64   `json:"epoch_ns"`
}

// Stats returns a snapshot of the lane's counters. Like the other
// simulation stats it is a pure function of simulated execution, safe to
// fold into fingerprints.
func (l *Lane) Stats() LaneStats {
	return LaneStats{
		Entities:       len(l.entities),
		Epochs:         l.epochs,
		EntityEpochs:   l.entityEpochs,
		DeliveredBytes: l.delivered,
		DroppedBytes:   l.dropped,
		EpochNS:        int64(l.epoch),
	}
}

// Entities returns the lane's entities in registration order.
func (l *Lane) Entities() []*Entity { return l.entities }
