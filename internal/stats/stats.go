// Package stats provides the measurement primitives the experiment harness
// uses: windowed throughput meters, percentile estimation over delay
// samples, Jain's fairness index, and flow-completion tracking per entity.
package stats

import (
	"math"
	"sort"
	"sync"

	"aqueue/internal/sim"
)

// Meter accumulates bytes into fixed-width time buckets so experiments can
// report throughput time series (Figure 9) as well as averages.
//
// A meter may be fed from several domains of a partitioned run at once —
// hooks on hosts that landed in different domains, advanced in parallel —
// so Add and the readers take mu. Every reduction is order-independent
// (integer bucket sums, min/max range), so the nondeterministic arrival
// order under parallel execution is unobservable in results.
type Meter struct {
	mu     sync.Mutex
	bucket sim.Time
	counts []uint64
	total  uint64
	first  sim.Time
	last   sim.Time
	// seen records that at least one add happened, so first/last track the
	// min/max add time even when the bytes of an add round to zero (fluid
	// epochs contribute fractions of a byte).
	seen bool
	// frac carries the sub-byte remainder of fractional adds (AddFloat)
	// until it accumulates to whole bytes, keeping the bucket counts
	// integral and every reduction order-independent.
	frac float64
}

// NewMeter returns a meter with the given bucket width.
func NewMeter(bucket sim.Time) *Meter {
	if bucket <= 0 {
		bucket = sim.Millisecond
	}
	return &Meter{bucket: bucket}
}

// Add accounts n bytes observed at time now.
func (m *Meter) Add(now sim.Time, n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	idx := int(now / m.bucket)
	for len(m.counts) <= idx {
		m.counts = append(m.counts, 0)
	}
	m.counts[idx] += uint64(n)
	m.total += uint64(n)
	m.mark(now)
}

// AddFloat accounts a fractional byte contribution observed at time now —
// the fluid lane's epochs integrate real-valued rates, so one entity's
// epoch share is rarely a whole byte. The metered range still extends to
// now's bucket even when the deposit rounds to zero, so the range clamp in
// Gbps and Series covers fluid-only traffic; sub-byte remainders carry
// over until they accumulate to whole bytes (the meter's lifetime total is
// within one byte of the sum of its adds).
func (m *Meter) AddFloat(now sim.Time, b float64) {
	if b < 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	idx := int(now / m.bucket)
	for len(m.counts) <= idx {
		m.counts = append(m.counts, 0)
	}
	m.frac += b
	n := uint64(m.frac)
	m.frac -= float64(n)
	m.counts[idx] += n
	m.total += n
	m.mark(now)
}

// mark folds one add time into the metered range. first/last are min/max,
// not first/latest-add-wins: a meter shared by hosts in different domains
// of a partitioned run sees adds grouped by domain, not globally
// time-sorted, and min/max are the only summaries of the range that are
// order-independent.
func (m *Meter) mark(now sim.Time) {
	if !m.seen || now < m.first {
		m.first = now
	}
	m.seen = true
	if now > m.last {
		m.last = now
	}
}

// TotalBytes returns the bytes accounted so far.
func (m *Meter) TotalBytes() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total
}

// End returns the end of the metered range: the close of the last bucket
// that received bytes (zero before any Add).
func (m *Meter) End() sim.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.end()
}

// end is End without the lock, for locked callers.
func (m *Meter) end() sim.Time { return sim.Time(len(m.counts)) * m.bucket }

// Gbps returns the average rate in Gbit/s over [from, to]. The window is
// clamped to the metered range: a `to` past the end of the last recorded
// bucket is pulled back to End(), so a run that stopped early reports the
// rate over the interval it actually covered instead of a rate deflated
// by empty tail buckets. A window entirely past the metered range is 0.
func (m *Meter) Gbps(from, to sim.Time) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.gbps(from, to)
}

// gbps is Gbps without the lock, for locked callers.
func (m *Meter) gbps(from, to sim.Time) float64 {
	if end := m.end(); to > end {
		to = end
	}
	if to <= from {
		return 0
	}
	var sum uint64
	lo, hi := int(from/m.bucket), int(to/m.bucket)
	for i := lo; i <= hi && i < len(m.counts); i++ {
		sum += m.counts[i]
	}
	return float64(sum) * 8 / (to - from).Seconds() / 1e9
}

// Series returns the per-bucket rates in Gbit/s for buckets [0, n),
// clamped to the metered range: at most len-of-metered-buckets entries are
// returned, so a short run yields a short series rather than one padded
// with zero-rate buckets that were never metered.
func (m *Meter) Series(n int) []float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n > len(m.counts) {
		n = len(m.counts)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = float64(m.counts[i]) * 8 / m.bucket.Seconds() / 1e9
	}
	return out
}

// MeterStats is the JSON-friendly summary of a Meter, used by the harness
// when serializing experiment results.
type MeterStats struct {
	TotalBytes uint64  `json:"total_bytes"`
	BucketNS   int64   `json:"bucket_ns"`
	Buckets    int     `json:"buckets"`
	FirstNS    int64   `json:"first_ns"`
	LastNS     int64   `json:"last_ns"`
	AvgGbps    float64 `json:"avg_gbps"`
}

// Stats summarises the meter over its metered range.
func (m *Meter) Stats() MeterStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MeterStats{
		TotalBytes: m.total,
		BucketNS:   int64(m.bucket),
		Buckets:    len(m.counts),
		FirstNS:    int64(m.first),
		LastNS:     int64(m.last),
		AvgGbps:    m.gbps(0, m.end()),
	}
}

// RateGbps converts a byte count over a duration into Gbit/s.
func RateGbps(bytes uint64, d sim.Time) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) * 8 / d.Seconds() / 1e9
}

// Percentiles collects samples and reports order statistics. Samples are
// kept exactly (the experiments generate at most a few million).
//
// Like Meter, a distribution may be fed from several domains of a
// partitioned run concurrently, so every method takes mu. The append
// order is nondeterministic under parallel execution, but every reduction
// runs over the sorted samples, so results depend only on the multiset.
type Percentiles struct {
	mu      sync.Mutex
	samples []float64
	sorted  bool
}

// AddDuration records a time sample.
func (p *Percentiles) AddDuration(d sim.Time) { p.Add(float64(d)) }

// Add records a sample.
func (p *Percentiles) Add(v float64) {
	p.mu.Lock()
	p.samples = append(p.samples, v)
	p.sorted = false
	p.mu.Unlock()
}

// Count returns the number of samples.
func (p *Percentiles) Count() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.samples)
}

// Quantile returns the q-th quantile (0 <= q <= 1), or 0 with no samples.
func (p *Percentiles) Quantile(q float64) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.quantile(q)
}

// quantile is Quantile without the lock, for locked callers.
func (p *Percentiles) quantile(q float64) float64 {
	if len(p.samples) == 0 {
		return 0
	}
	if !p.sorted {
		sort.Float64s(p.samples)
		p.sorted = true
	}
	if q <= 0 {
		return p.samples[0]
	}
	if q >= 1 {
		return p.samples[len(p.samples)-1]
	}
	pos := q * float64(len(p.samples)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(p.samples) {
		return p.samples[lo]
	}
	return p.samples[lo]*(1-frac) + p.samples[lo+1]*frac
}

// Mean returns the sample mean. The sum runs over the sorted samples:
// float addition is not associative, and a distribution filled by several
// domains of a partitioned run receives its samples grouped by domain, so
// summing in add order would make the last bit of the mean depend on the
// partitioning.
func (p *Percentiles) Mean() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.mean()
}

// mean is Mean without the lock, for locked callers.
func (p *Percentiles) mean() float64 {
	if len(p.samples) == 0 {
		return 0
	}
	if !p.sorted {
		sort.Float64s(p.samples)
		p.sorted = true
	}
	var sum float64
	for _, v := range p.samples {
		sum += v
	}
	return sum / float64(len(p.samples))
}

// PercentileStats is the JSON-friendly summary of a Percentiles
// distribution.
type PercentileStats struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// Stats summarises the distribution.
func (p *Percentiles) Stats() PercentileStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PercentileStats{
		Count: len(p.samples),
		Mean:  p.mean(),
		P50:   p.quantile(0.5),
		P95:   p.quantile(0.95),
		P99:   p.quantile(0.99),
		Max:   p.quantile(1),
	}
}

// JainIndex computes Jain's fairness index over the given allocations:
// (Σx)² / (n·Σx²). It is 1 for perfectly equal shares and 1/n in the
// maximally unfair case.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// MinMaxRatio returns min/max of the inputs — the paper's "entity fairness"
// metric (§5.2: the ratio of the shorter completion time to the longer).
func MinMaxRatio(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	if hi <= 0 {
		return 0
	}
	return lo / hi
}

// FCT tracks the flow completions of one entity's workload: it reports the
// workload completion time (when the last flow finishes) and FCT
// statistics.
//
// One entity's flows may start and complete in several domains at once
// (the incast pattern: 32 senders, one tracker), so the mutating methods
// take mu and every reduction is order-independent (counts, sums, max,
// sorted percentiles). The exported fields exist for post-run reporting;
// read them directly only after the run, or from a domain that is the
// tracker's sole writer — mid-run cross-domain reads must go through the
// method API.
type FCT struct {
	mu        sync.Mutex
	Started   int
	Completed int
	LastDone  sim.Time
	Bytes     int64
	fcts      Percentiles
}

// FlowStarted accounts a new flow of the given size.
func (f *FCT) FlowStarted(size int64) {
	f.mu.Lock()
	f.Started++
	f.Bytes += size
	f.mu.Unlock()
}

// FlowDone accounts a completion at time now for a flow started at start.
func (f *FCT) FlowDone(start, now sim.Time) {
	f.mu.Lock()
	f.Completed++
	if now > f.LastDone {
		f.LastDone = now
	}
	f.mu.Unlock()
	f.fcts.AddDuration(now - start)
}

// AllDone reports whether every started flow completed.
func (f *FCT) AllDone() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.Completed == f.Started && f.Started > 0
}

// CompletionTime returns when the last flow finished (the paper's workload
// completion time).
func (f *FCT) CompletionTime() sim.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.LastDone
}

// MeanFCT returns the mean flow completion time.
func (f *FCT) MeanFCT() sim.Time { return sim.Time(f.fcts.Mean()) }

// P99FCT returns the 99th-percentile flow completion time.
func (f *FCT) P99FCT() sim.Time { return sim.Time(f.fcts.Quantile(0.99)) }

// FCTStats is the JSON-friendly summary of an entity's flow completions.
type FCTStats struct {
	Started      int   `json:"started"`
	Completed    int   `json:"completed"`
	Bytes        int64 `json:"bytes"`
	CompletionNS int64 `json:"completion_ns"`
	MeanFCTNS    int64 `json:"mean_fct_ns"`
	P99FCTNS     int64 `json:"p99_fct_ns"`
}

// Stats summarises the tracker.
func (f *FCT) Stats() FCTStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return FCTStats{
		Started:      f.Started,
		Completed:    f.Completed,
		Bytes:        f.Bytes,
		CompletionNS: int64(f.LastDone),
		MeanFCTNS:    int64(f.MeanFCT()),
		P99FCTNS:     int64(f.P99FCT()),
	}
}
