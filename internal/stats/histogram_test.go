package stats

import (
	"math"
	"strings"
	"testing"

	"aqueue/internal/sim"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(1, 20)
	for i := 1; i <= 1000; i++ {
		h.Add(float64(i))
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Mean(); math.Abs(got-500.5) > 1e-9 {
		t.Fatalf("mean = %v", got)
	}
	if h.Max() != 1000 {
		t.Fatalf("max = %v", h.Max())
	}
	// p50 of 1..1000 is ~500; bucket upper bound gives 512.
	if got := h.Quantile(0.5); got != 512 {
		t.Fatalf("p50 bucket = %v, want 512", got)
	}
	// p99 ~ 990 -> bucket upper bound 1024.
	if got := h.Quantile(0.99); got != 1024 {
		t.Fatalf("p99 bucket = %v, want 1024", got)
	}
	if !strings.Contains(h.String(), "n=1000") {
		t.Fatalf("String() = %q", h.String())
	}
}

func TestHistogramUnderflowAndEmpty(t *testing.T) {
	h := NewHistogram(10, 8)
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	h.Add(1)
	h.Add(2)
	if got := h.Quantile(0.5); got != 10 {
		t.Fatalf("all-underflow p50 = %v, want base", got)
	}
}

func TestHistogramAgreesWithPercentiles(t *testing.T) {
	// The bucketed quantile must bound the exact quantile from above by at
	// most one octave.
	h := NewHistogram(1, 32)
	var p Percentiles
	r := sim.NewRand(12)
	for i := 0; i < 100000; i++ {
		v := float64(1 + r.Intn(1_000_000))
		h.Add(v)
		p.Add(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := p.Quantile(q)
		approx := h.Quantile(q)
		if approx < exact {
			t.Fatalf("q%.2f: bucketed %v below exact %v", q, approx, exact)
		}
		if approx > exact*2.2 {
			t.Fatalf("q%.2f: bucketed %v more than an octave above exact %v", q, approx, exact)
		}
	}
}
