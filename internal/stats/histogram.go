package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-bucket log-scale histogram for latency-like
// quantities: bucket i covers [base·2^i, base·2^(i+1)). It trades the
// exactness of Percentiles for O(1) memory, which matters when an
// experiment records tens of millions of samples.
type Histogram struct {
	base    float64
	buckets []uint64
	under   uint64
	count   uint64
	sum     float64
	max     float64
}

// NewHistogram returns a histogram with the given base (smallest resolved
// value) and bucket count.
func NewHistogram(base float64, buckets int) *Histogram {
	if base <= 0 {
		base = 1
	}
	if buckets < 1 {
		buckets = 32
	}
	return &Histogram{base: base, buckets: make([]uint64, buckets)}
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	if v < h.base {
		h.under++
		return
	}
	i := int(math.Log2(v / h.base))
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i]++
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the sample mean.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Max returns the largest sample.
func (h *Histogram) Max() float64 { return h.max }

// Quantile approximates the q-th quantile from the buckets (upper bound of
// the bucket containing it).
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := uint64(q * float64(h.count))
	if target <= h.under {
		return h.base
	}
	acc := h.under
	for i, c := range h.buckets {
		acc += c
		if acc >= target {
			return h.base * math.Pow(2, float64(i+1))
		}
	}
	return h.max
}

// String renders a compact sparkline-style summary.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.1f p50<=%.1f p99<=%.1f max=%.1f",
		h.count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.max)
	return b.String()
}
