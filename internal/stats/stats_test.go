package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"aqueue/internal/sim"
)

func TestMeterBuckets(t *testing.T) {
	m := NewMeter(sim.Millisecond)
	m.Add(100, 1000)
	m.Add(500_000, 1000)
	m.Add(1_500_000, 4000)
	if m.TotalBytes() != 6000 {
		t.Fatalf("total = %d", m.TotalBytes())
	}
	s := m.Series(3)
	// Bucket 0: 2000 bytes over 1ms = 16 Mbps = 0.016 Gbps.
	if math.Abs(s[0]-0.016) > 1e-9 {
		t.Fatalf("bucket 0 = %v", s[0])
	}
	if math.Abs(s[1]-0.032) > 1e-9 {
		t.Fatalf("bucket 1 = %v", s[1])
	}
	// Bucket 2 was never metered: Series clamps to the metered range
	// instead of padding with zero-rate buckets.
	if len(s) != 2 {
		t.Fatalf("len(Series(3)) = %d, want 2 (clamped to metered range)", len(s))
	}
}

func TestMeterGbpsClampsToMeteredRange(t *testing.T) {
	m := NewMeter(sim.Millisecond)
	for i := 0; i < 5; i++ {
		m.Add(sim.Time(i)*sim.Millisecond, 1250_000) // 10 Gbps per ms bucket
	}
	// The run stopped at 5 ms; asking for the rate up to 10 ms must not
	// halve the answer by averaging over 5 ms of never-metered tail.
	if got := m.Gbps(0, 10*sim.Millisecond); math.Abs(got-10) > 0.01 {
		t.Fatalf("Gbps over-long window = %v, want 10 (clamped)", got)
	}
	if m.End() != 5*sim.Millisecond {
		t.Fatalf("End = %v, want 5ms", m.End())
	}
	// A window entirely past the metered range has no data at all.
	if got := m.Gbps(6*sim.Millisecond, 10*sim.Millisecond); got != 0 {
		t.Fatalf("Gbps past metered range = %v, want 0", got)
	}
}

// TestMeterAddFloatFractional is the regression test for the fluid lane's
// fractional-byte contributions: sub-byte adds must carry over until they
// accumulate to whole bytes (conservation within one byte), and must still
// extend the metered range so the Gbps/Series clamp covers fluid-only
// buckets even when an add rounds to zero.
func TestMeterAddFloatFractional(t *testing.T) {
	m := NewMeter(sim.Millisecond)
	// 4000 epochs of 0.3 bytes each = 1200 bytes, never a whole byte at
	// a time for the first three adds of every ten.
	var want float64
	for i := 0; i < 4000; i++ {
		m.AddFloat(sim.Time(i)*250*sim.Microsecond, 0.3)
		want += 0.3
	}
	if got := float64(m.TotalBytes()); math.Abs(got-want) >= 1 {
		t.Fatalf("TotalBytes = %v, want within 1 byte of %v", got, want)
	}
	// The last add was at 999.75 ms: the metered range must cover bucket
	// 999 even though that particular add deposited no whole byte.
	if m.End() != 1000*sim.Millisecond {
		t.Fatalf("End = %v, want 1000ms", m.End())
	}
	if s := m.Stats(); s.FirstNS != 0 || s.LastNS != int64(999750*sim.Microsecond) {
		t.Fatalf("range = [%d, %d], want [0, 999.75ms]", s.FirstNS, s.LastNS)
	}
	// The clamp still pulls an over-long window back to the metered end
	// rather than deflating the average with unmetered tail.
	full := m.Gbps(0, 2000*sim.Millisecond)
	if clamped := m.Gbps(0, 1000*sim.Millisecond); full != clamped {
		t.Fatalf("Gbps clamp lost: full=%v clamped=%v", full, clamped)
	}
	if full <= 0 {
		t.Fatalf("Gbps = %v, want > 0", full)
	}
}

// TestMeterAddFloatZeroDeposit: a metered range opened by adds that all
// round to zero bytes still clamps Series to the touched buckets.
func TestMeterAddFloatZeroDeposit(t *testing.T) {
	m := NewMeter(sim.Millisecond)
	m.AddFloat(500_000, 0.25)
	if m.TotalBytes() != 0 {
		t.Fatalf("TotalBytes = %d, want 0 (carry held)", m.TotalBytes())
	}
	if m.End() != sim.Millisecond {
		t.Fatalf("End = %v, want 1ms (bucket touched)", m.End())
	}
	if s := m.Series(5); len(s) != 1 || s[0] != 0 {
		t.Fatalf("Series = %v, want one zero-rate bucket", s)
	}
	// The carry materializes once later adds top it up.
	m.AddFloat(600_000, 0.75)
	if m.TotalBytes() != 1 {
		t.Fatalf("TotalBytes = %d, want 1 after carry", m.TotalBytes())
	}
}

func TestMeterStatsJSONFriendly(t *testing.T) {
	m := NewMeter(sim.Millisecond)
	m.Add(100, 1000)
	m.Add(1_500_000, 3000)
	s := m.Stats()
	if s.TotalBytes != 4000 || s.Buckets != 2 || s.BucketNS != int64(sim.Millisecond) {
		t.Fatalf("Stats = %+v", s)
	}
	if s.FirstNS != 100 || s.LastNS != 1_500_000 {
		t.Fatalf("Stats range = %+v", s)
	}
	if math.Abs(s.AvgGbps-m.Gbps(0, m.End())) > 1e-12 {
		t.Fatalf("AvgGbps = %v", s.AvgGbps)
	}
}

func TestMeterGbpsWindow(t *testing.T) {
	m := NewMeter(sim.Millisecond)
	for i := 0; i < 10; i++ {
		m.Add(sim.Time(i)*sim.Millisecond, 1250_000) // 10 Gbps per ms bucket
	}
	got := m.Gbps(0, 10*sim.Millisecond)
	if math.Abs(got-10) > 0.01 {
		t.Fatalf("Gbps = %v, want 10", got)
	}
}

func TestRateGbps(t *testing.T) {
	if got := RateGbps(1250_000_000, sim.Second); math.Abs(got-10) > 1e-9 {
		t.Fatalf("RateGbps = %v", got)
	}
	if RateGbps(100, 0) != 0 {
		t.Fatal("zero duration should report 0")
	}
}

func TestPercentiles(t *testing.T) {
	var p Percentiles
	for i := 1; i <= 100; i++ {
		p.Add(float64(i))
	}
	if got := p.Quantile(0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := p.Quantile(1); got != 100 {
		t.Fatalf("q1 = %v", got)
	}
	if got := p.Quantile(0.5); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("median = %v", got)
	}
	if got := p.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("mean = %v", got)
	}
	if p.Count() != 100 {
		t.Fatalf("count = %d", p.Count())
	}
}

func TestPercentilesEmptyAndInterleaved(t *testing.T) {
	var p Percentiles
	if p.Quantile(0.5) != 0 || p.Mean() != 0 {
		t.Fatal("empty percentiles should report 0")
	}
	// Adding after querying must re-sort.
	p.Add(10)
	_ = p.Quantile(0.5)
	p.Add(1)
	if got := p.Quantile(0); got != 1 {
		t.Fatalf("q0 after late add = %v", got)
	}
}

func TestQuantileMatchesSortedOrder(t *testing.T) {
	f := func(vals []float64) bool {
		var p Percentiles
		clean := vals[:0]
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				p.Add(v)
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		sort.Float64s(clean)
		return p.Quantile(0) == clean[0] && p.Quantile(1) == clean[len(clean)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{5, 5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("equal shares: %v", got)
	}
	got := JainIndex([]float64{1, 0, 0, 0})
	if math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("single hog: %v, want 0.25", got)
	}
	if JainIndex(nil) != 0 || JainIndex([]float64{0, 0}) != 0 {
		t.Fatal("degenerate inputs should report 0")
	}
}

func TestJainIndexBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		any := false
		for i, v := range raw {
			xs[i] = float64(v)
			any = any || v != 0
		}
		if !any {
			return true
		}
		j := JainIndex(xs)
		return j >= 1/float64(len(xs))-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMinMaxRatio(t *testing.T) {
	if got := MinMaxRatio([]float64{2, 4}); got != 0.5 {
		t.Fatalf("ratio = %v", got)
	}
	if got := MinMaxRatio([]float64{3, 3, 3}); got != 1 {
		t.Fatalf("equal ratio = %v", got)
	}
	if MinMaxRatio(nil) != 0 {
		t.Fatal("empty should report 0")
	}
}

func TestFCTTracking(t *testing.T) {
	var f FCT
	f.FlowStarted(1000)
	f.FlowStarted(2000)
	if f.AllDone() {
		t.Fatal("AllDone before completions")
	}
	f.FlowDone(0, 10*sim.Millisecond)
	f.FlowDone(5*sim.Millisecond, 30*sim.Millisecond)
	if !f.AllDone() {
		t.Fatal("AllDone after completions")
	}
	if f.CompletionTime() != 30*sim.Millisecond {
		t.Fatalf("completion time = %v", f.CompletionTime())
	}
	if f.Bytes != 3000 {
		t.Fatalf("bytes = %d", f.Bytes)
	}
	// FCTs are 10ms and 25ms; mean 17.5ms.
	if got := f.MeanFCT(); got != sim.Time(17_500_000) {
		t.Fatalf("mean FCT = %v", got)
	}
}

func TestPercentileStats(t *testing.T) {
	var p Percentiles
	for i := 1; i <= 100; i++ {
		p.Add(float64(i))
	}
	s := p.Stats()
	if s.Count != 100 || s.Max != 100 {
		t.Fatalf("Stats = %+v", s)
	}
	if math.Abs(s.Mean-50.5) > 1e-9 || math.Abs(s.P50-50.5) > 1e-9 {
		t.Fatalf("Stats = %+v", s)
	}
}

func TestFCTStats(t *testing.T) {
	var f FCT
	f.FlowStarted(1000)
	f.FlowStarted(2000)
	f.FlowDone(0, 10*sim.Millisecond)
	f.FlowDone(0, 30*sim.Millisecond)
	s := f.Stats()
	if s.Started != 2 || s.Completed != 2 || s.Bytes != 3000 {
		t.Fatalf("Stats = %+v", s)
	}
	if s.CompletionNS != int64(30*sim.Millisecond) || s.MeanFCTNS != int64(20*sim.Millisecond) {
		t.Fatalf("Stats = %+v", s)
	}
}
