package service

import (
	"sync"
	"testing"

	"aqueue/internal/control"
	"aqueue/internal/packet"
	"aqueue/internal/sim"
)

// testConfig is a small, fast fabric: 2x2 dumbbell, 200 us windows.
func testConfig() Config {
	return Config{Hosts: 2, Window: 200 * sim.Microsecond, TraceLen: 256}
}

func grantWeighted(t *testing.T, f *Fabric, tenant string, weight float64) packet.AQID {
	t.Helper()
	g, err := f.Ctrl().Grant(control.Request{
		Tenant: tenant, Mode: control.Weighted, Weight: weight,
		Limit: f.Config().Trunk.QueueLimit,
	}, f.LookupTable("S1", control.Ingress))
	if err != nil {
		t.Fatalf("grant: %v", err)
	}
	return g.ID
}

func TestFabricWindowedAdvance(t *testing.T) {
	f, err := NewFabric(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	id := grantWeighted(t, f, "t1", 1)
	d, err := f.Attach(LoadSpec{Tenant: "t1", AQ: id, Kind: "fixed", Size: 20_000, Load: 0.5})
	if err != nil {
		t.Fatal(err)
	}

	var snap Snapshot
	for i := 0; i < 20; i++ {
		snap = f.AdvanceWindow()
		if want := uint64(i + 1); snap.Window != want {
			t.Fatalf("window %d, want %d", snap.Window, want)
		}
		if snap.NowNS != int64(snap.Window)*int64(f.Config().Window) {
			t.Fatalf("now %d not on boundary %d", snap.NowNS, snap.Window)
		}
	}
	if d.Snap().Started == 0 {
		t.Fatal("driver started no flows in 4 ms at load 0.5")
	}
	if len(snap.Tenants) != 1 || snap.Tenants[0].ID != id {
		t.Fatalf("tenants: %+v", snap.Tenants)
	}
	if snap.Tenants[0].AQ.Arrived == 0 {
		t.Fatal("granted AQ matched no packets — tagging broken")
	}
	var bottleneck PipeSnap
	for _, p := range snap.Pipes {
		if p.Name == "S1->S2" {
			bottleneck = p
		}
	}
	if bottleneck.TxBytes == 0 {
		t.Fatal("no bytes crossed the bottleneck")
	}
	if f.TraceTail(10) == nil {
		t.Fatal("trace ring empty with tracing enabled")
	}

	if !f.Detach(d.ID) {
		t.Fatal("detach of live driver failed")
	}
	if f.Detach(d.ID) {
		t.Fatal("second detach must miss")
	}
	started := d.Snap().Started
	for i := 0; i < 5; i++ {
		f.AdvanceWindow()
	}
	if d.Snap().Started != started {
		t.Fatal("detached driver kept starting flows")
	}
}

func TestFabricStarTopology(t *testing.T) {
	cfg := testConfig()
	cfg.Topo = "star"
	cfg.Hosts = 4
	f, err := NewFabric(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f.LookupTable("SW", control.Ingress) == nil {
		t.Fatal("star switch tables not registered")
	}
	if _, err := f.Attach(LoadSpec{Kind: "fixed", Size: 20_000, Load: 0.3}); err != nil {
		t.Fatal(err)
	}
	snap := f.AdvanceWindow()
	for i := 0; i < 9; i++ {
		snap = f.AdvanceWindow()
	}
	var tx uint64
	for _, p := range snap.Pipes {
		tx += p.TxBytes
	}
	if tx == 0 {
		t.Fatal("no traffic reached the star receivers")
	}

	if _, err := NewFabric(Config{Topo: "star", Hosts: 3}); err == nil {
		t.Fatal("odd star size accepted")
	}
	if _, err := NewFabric(Config{Topo: "ring"}); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestAttachValidation(t *testing.T) {
	f, err := NewFabric(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	bad := []LoadSpec{
		{Kind: "websearch"},                          // zero load
		{Kind: "bursty", Load: 0.5},                  // unknown kind
		{Kind: "fixed", Load: 0.5},                   // fixed without size
		{Kind: "websearch", Load: 0.5, CC: "osmium"}, // unknown cc
	}
	for _, spec := range bad {
		if _, err := f.Attach(spec); err == nil {
			t.Fatalf("spec %+v accepted", spec)
		}
	}
}

// TestServiceMailboxBoundaryOnly is the mid-window ordering gate: every
// mutation submitted while the fabric free-runs must execute with the
// clock parked exactly on a window boundary.
func TestServiceMailboxBoundaryOnly(t *testing.T) {
	f, err := NewFabric(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := Start(f, RunConfig{})
	defer s.Quit()

	window := f.Config().Window
	var wg sync.WaitGroup
	offsets := make(chan sim.Time, 64)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				resp := s.Do(func(f *Fabric) control.WireResponse {
					offsets <- f.Now() % window
					return control.WireResponse{OK: true}
				})
				if !resp.OK {
					t.Errorf("mailbox command failed: %+v", resp)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(offsets)
	n := 0
	for off := range offsets {
		n++
		if off != 0 {
			t.Fatalf("mutation executed %d ns into a window", off)
		}
	}
	if n != 64 {
		t.Fatalf("ran %d commands, want 64", n)
	}
}

func TestServiceRunControl(t *testing.T) {
	f, err := NewFabric(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := Start(f, RunConfig{StartPaused: true})

	if !s.Paused() {
		t.Fatal("service did not start paused")
	}
	if err := s.Step(3); err != nil {
		t.Fatal(err)
	}
	if got := s.Latest().Window; got != 3 {
		t.Fatalf("after step 3: window %d", got)
	}

	target := 2 * sim.Millisecond
	if err := s.AdvanceTo(target); err != nil {
		t.Fatal(err)
	}
	if got := s.Latest().NowNS; got < int64(target) {
		t.Fatalf("advance-to stopped at %d ns, want >= %d", got, target)
	}
	if !s.Paused() {
		t.Fatal("advance-to must leave the service paused")
	}
	if err := s.AdvanceTo(sim.Millisecond); err == nil {
		t.Fatal("advance into the past accepted")
	}

	s.Resume()
	if err := s.Step(1); err != ErrNotPaused {
		t.Fatalf("step while running: %v, want ErrNotPaused", err)
	}
	s.Pause()

	ch, cancel := s.Subscribe()
	defer cancel()
	if err := s.Step(2); err != nil {
		t.Fatal(err)
	}
	first := <-ch
	second := <-ch
	if second.Window != first.Window+1 {
		t.Fatalf("subscriber saw windows %d then %d", first.Window, second.Window)
	}

	s.Quit()
	if err := s.Step(1); err != ErrShuttingDown {
		t.Fatalf("step after quit: %v, want ErrShuttingDown", err)
	}
	resp := s.Do(func(*Fabric) control.WireResponse { return control.WireResponse{OK: true} })
	if resp.Code != control.CodeShuttingDown {
		t.Fatalf("Do after quit: %+v", resp)
	}
}
