package service

import (
	"encoding/json"
	"net"
	"sync"
	"testing"

	"aqueue/internal/control"
)

// testDaemon is one wire-served service instance plus a first client.
type testDaemon struct {
	cli  *control.Client
	s    *Service
	addr string
	done func()
}

// dialService starts a service daemon on a loopback listener and returns
// a connected client plus the daemon handles.
func dialService(t *testing.T, cfg Config, run RunConfig) testDaemon {
	t.Helper()
	f, err := NewFabric(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := Start(f, run)
	ws := control.NewWireServer(s.Handler())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan struct{})
	go func() { defer close(serveDone); ws.Serve(ln) }()
	s.SetOnQuit(func() { ws.Close() })
	cli, err := control.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	return testDaemon{cli: cli, s: s, addr: ln.Addr().String(), done: func() {
		cli.Close()
		ws.Close()
		select {
		case <-s.Done():
		default:
			s.Quit()
		}
		<-serveDone
	}}
}

// TestServiceWireSession drives the full live-session flow the CI smoke
// scripts: hello, grant, attach, step, stats, reconfigure, trace,
// fingerprint, detach, release, quit.
func TestServiceWireSession(t *testing.T) {
	td := dialService(t, testConfig(), RunConfig{StartPaused: true})
	defer td.done()
	cli, s := td.cli, td.s

	hello, err := cli.Do(control.WireRequest{Op: "hello", V: 2})
	if err != nil || hello.V != control.ProtoMax {
		t.Fatalf("hello: %+v err %v", hello, err)
	}

	grant, err := cli.Do(control.WireRequest{Op: "grant", V: 2, Tenant: "t1",
		Mode: "weighted", Weight: 1, Switch: "S1"})
	if err != nil || grant.ID == 0 {
		t.Fatalf("grant: %+v err %v", grant, err)
	}

	attach, err := cli.Do(control.WireRequest{Op: "attach", V: 2, Tenant: "t1",
		ID: grant.ID, Kind: "fixed", Size: 30_000, Load: 0.5})
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	driverID := attach.ID

	step, err := cli.Do(control.WireRequest{Op: "step", V: 2, Count: 10})
	if err != nil {
		t.Fatalf("step: %v", err)
	}
	var after Snapshot
	if err := json.Unmarshal(step.Data, &after); err != nil {
		t.Fatalf("step payload: %v", err)
	}
	if after.Window != 10 {
		t.Fatalf("stepped to window %d, want 10", after.Window)
	}

	stats, err := cli.Do(control.WireRequest{Op: "stats", V: 2})
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(stats.Data, &snap); err != nil {
		t.Fatalf("stats payload: %v", err)
	}
	if len(snap.Tenants) != 1 || snap.Tenants[0].Tenant != "t1" {
		t.Fatalf("tenants: %+v", snap.Tenants)
	}
	if len(snap.Drivers) != 1 || snap.Drivers[0].Started == 0 {
		t.Fatalf("drivers: %+v", snap.Drivers)
	}
	foundSeries := false
	for _, p := range snap.Pipes {
		if len(p.Series) > 0 && p.Meter != nil {
			foundSeries = true
		}
	}
	if !foundSeries {
		t.Fatalf("full snapshot lacks meter series: %+v", snap.Pipes)
	}

	rec, err := cli.Do(control.WireRequest{Op: "set_weight", V: 2, ID: grant.ID, Weight: 4})
	if err != nil || rec.Rate == 0 {
		t.Fatalf("set_weight: %+v err %v", rec, err)
	}

	tr, err := cli.Do(control.WireRequest{Op: "trace", V: 2, Count: 20})
	if err != nil {
		t.Fatalf("trace: %v", err)
	}
	var tail struct {
		Events []TraceEvent `json:"events"`
	}
	if err := json.Unmarshal(tr.Data, &tail); err != nil {
		t.Fatalf("trace payload: %v", err)
	}
	if len(tail.Events) == 0 || len(tail.Events) > 20 {
		t.Fatalf("trace tail has %d events", len(tail.Events))
	}

	fp1, err := cli.Do(control.WireRequest{Op: "fingerprint", V: 2})
	if err != nil {
		t.Fatalf("fingerprint: %v", err)
	}
	var fp struct {
		Window      uint64 `json:"window"`
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.Unmarshal(fp1.Data, &fp); err != nil || fp.Fingerprint == "" {
		t.Fatalf("fingerprint payload %s: %v", fp1.Data, err)
	}

	if _, err := cli.Do(control.WireRequest{Op: "detach", V: 2, ID: driverID}); err != nil {
		t.Fatalf("detach: %v", err)
	}
	if _, err := cli.Do(control.WireRequest{Op: "release", V: 2, ID: grant.ID}); err != nil {
		t.Fatalf("release: %v", err)
	}

	quit, err := cli.Do(control.WireRequest{Op: "quit", V: 2})
	if err != nil || !quit.OK {
		t.Fatalf("quit: %+v err %v", quit, err)
	}
	<-s.Done()
}

func TestServiceWireErrors(t *testing.T) {
	td := dialService(t, testConfig(), RunConfig{})
	defer td.done()
	cli := td.cli

	cases := []struct {
		req  control.WireRequest
		code string
	}{
		{control.WireRequest{Op: "transmogrify", V: 2}, control.CodeUnknownOp},
		{control.WireRequest{Op: "step", V: 2}, control.CodeNotPaused},
		{control.WireRequest{Op: "detach", V: 2, ID: 99}, control.CodeUnknownID},
		{control.WireRequest{Op: "attach", V: 2, Kind: "websearch"}, control.CodeBadRequest},
		{control.WireRequest{Op: "attach", V: 2, Kind: "nope", Load: 0.5}, control.CodeBadRequest},
		{control.WireRequest{Op: "release", V: 2, ID: 42}, control.CodeUnknownID},
		{control.WireRequest{Op: "grant", V: 2, Mode: "weighted", Weight: 1, Switch: "S9"}, control.CodeUnknownTable},
	}
	for _, c := range cases {
		resp, _ := cli.Do(c.req)
		if resp.OK || resp.Code != c.code {
			t.Errorf("%s: got %+v, want code %q", c.req.Op, resp, c.code)
		}
	}

	// advance must reject a target that is not ahead of the clock.
	resp, _ := cli.Do(control.WireRequest{Op: "advance", V: 2, UntilNS: 1})
	if resp.OK || resp.Code != control.CodeBadRequest {
		t.Fatalf("advance into past: %+v", resp)
	}

	// Malformed JSON gets a malformed code and the connection survives.
	raw, _, done2 := rawConn(t)
	defer done2()
	if _, err := raw.Write([]byte("{broken\n")); err != nil {
		t.Fatal(err)
	}
	rcli := control.NewClient(raw)
	bad, _ := rcli.Recv()
	if bad.OK || bad.Code != control.CodeMalformed {
		t.Fatalf("malformed: %+v", bad)
	}
	good, err := rcli.Do(control.WireRequest{Op: "list", V: 2})
	if err != nil || !good.OK {
		t.Fatalf("connection died after malformed line: %+v err %v", good, err)
	}
}

// rawConn starts a free-running service and returns a raw TCP connection.
func rawConn(t *testing.T) (net.Conn, *Service, func()) {
	t.Helper()
	f, err := NewFabric(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := Start(f, RunConfig{})
	ws := control.NewWireServer(s.Handler())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go ws.Serve(ln)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	return conn, s, func() { conn.Close(); ws.Close(); s.Quit() }
}

// TestServiceWireWatchStream checks the multi-response streaming verb:
// one watch request yields Count boundary snapshots with advancing
// windows.
func TestServiceWireWatchStream(t *testing.T) {
	td := dialService(t, testConfig(), RunConfig{})
	defer td.done()
	cli := td.cli

	resp, err := cli.Do(control.WireRequest{Op: "watch", V: 2, Count: 3})
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	var prev Snapshot
	if err := json.Unmarshal(resp.Data, &prev); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 3; i++ {
		resp, err = cli.Recv()
		if err != nil {
			t.Fatalf("watch frame %d: %v", i, err)
		}
		var snap Snapshot
		if err := json.Unmarshal(resp.Data, &snap); err != nil {
			t.Fatal(err)
		}
		if snap.Window <= prev.Window {
			t.Fatalf("watch windows not advancing: %d then %d", prev.Window, snap.Window)
		}
		prev = snap
	}
	// The connection is usable for ordinary requests after the stream.
	if _, err := cli.Do(control.WireRequest{Op: "list", V: 2}); err != nil {
		t.Fatalf("list after watch: %v", err)
	}
}

// TestServiceWireConcurrentMutators hammers one tenant's grant from many
// clients while the fabric free-runs: every mutation must serialize
// through the mailbox without tripping the race detector, and the grant
// must stay consistent.
func TestServiceWireConcurrentMutators(t *testing.T) {
	td := dialService(t, testConfig(), RunConfig{})
	defer td.done()
	cli := td.cli

	grant, err := cli.Do(control.WireRequest{Op: "grant", V: 2, Tenant: "shared",
		Mode: "weighted", Weight: 1, Switch: "S1"})
	if err != nil {
		t.Fatal(err)
	}

	const clients = 6
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c2, err := control.Dial(td.addr)
			if err != nil {
				errs <- err
				return
			}
			defer c2.Close()
			for j := 0; j < 10; j++ {
				var err error
				if i%2 == 0 {
					_, err = c2.Do(control.WireRequest{Op: "set_weight", V: 2,
						ID: grant.ID, Weight: float64(1 + j%3)})
				} else {
					active := j%2 == 0
					_, err = c2.Do(control.WireRequest{Op: "set_active", V: 2,
						ID: grant.ID, Active: &active})
				}
				if err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	list, err := cli.Do(control.WireRequest{Op: "list", V: 2})
	if err != nil || len(list.IDs) != 1 || list.IDs[0] != grant.ID {
		t.Fatalf("grant table corrupted: %+v err %v", list, err)
	}
}
