package service

import (
	"fmt"

	"aqueue/internal/cc"
	"aqueue/internal/fluid"
	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/stats"
	"aqueue/internal/transport"
	"aqueue/internal/units"
	"aqueue/internal/workload"
)

// LoadSpec describes one open-loop workload driver: Poisson flow arrivals
// at the given offered load (fraction of the guaranteed-link capacity),
// sizes drawn from the named distribution, every flow tagged with the
// tenant's granted AQ. It is the runtime analogue of what cmd/aqload
// scripts up front.
type LoadSpec struct {
	Tenant string      `json:"tenant,omitempty"`
	AQ     packet.AQID `json:"aq,omitempty"`   // ingress AQ tag (0 = untagged)
	Kind   string      `json:"kind"`           // websearch | datamining | fixed | fluid
	Size   int64       `json:"size,omitempty"` // bytes, kind "fixed" only
	Load   float64     `json:"load"`           // fraction of fabric capacity
	Seed   uint64      `json:"seed,omitempty"` // 0 derives one from the driver id
	CC     string      `json:"cc,omitempty"`   // defaults to Config.CC
	// Entities is the flow count of a kind "fluid" driver: the offered
	// load is split evenly across this many fluid entities, all tagged
	// with the driver's AQ. Zero means one entity.
	Entities int `json:"entities,omitempty"`
}

// Driver is one attached workload: an arrival process on the sender-side
// engine spawning transport flows between random src/dst pairs. All its
// callbacks run on the engine, so its state needs no locking as long as
// attach/detach happen at window boundaries — which the Fabric/Service
// contract guarantees.
type Driver struct {
	ID   uint32
	spec LoadSpec

	f       *Fabric
	eng     *sim.Engine
	rand    *sim.Rand
	sizer   workload.Sizer
	factory cc.Factory
	ecn     bool
	meanGap sim.Time

	next      *sim.Event
	stopped   bool
	tracker   stats.FCT
	doneBytes int64

	// lane is set on kind "fluid" drivers instead of the arrival process:
	// the driver's load runs as rate ODEs through the ingress table at
	// fluid epochs, not as individual packet flows.
	lane *fluid.Lane
}

func sizerFor(kind string, size int64) (workload.Sizer, error) {
	switch kind {
	case "websearch":
		return workload.WebSearch{}, nil
	case "datamining":
		return workload.DataMining{}, nil
	case "fixed":
		if size <= 0 {
			return nil, fmt.Errorf("service: kind \"fixed\" needs a positive size, got %d", size)
		}
		return workload.Fixed(size), nil
	default:
		return nil, fmt.Errorf("service: unknown workload kind %q", kind)
	}
}

// Attach starts a driver at the current window boundary and returns it.
// Arrivals are deterministic: the seed defaults to a function of the
// driver id, so a scripted attach replays identically.
func (f *Fabric) Attach(spec LoadSpec) (*Driver, error) {
	if spec.Load <= 0 {
		return nil, fmt.Errorf("service: attach needs a positive load, got %g", spec.Load)
	}
	if spec.Kind == "fluid" {
		return f.attachFluid(spec)
	}
	sizer, err := sizerFor(spec.Kind, spec.Size)
	if err != nil {
		return nil, err
	}
	ccName := spec.CC
	if ccName == "" {
		ccName = f.cfg.CC
	}
	factory := cc.ByName(ccName)
	if factory == nil {
		return nil, fmt.Errorf("service: unknown cc algorithm %q", ccName)
	}
	id := f.nextID
	f.nextID++
	seed := spec.Seed
	if seed == 0 {
		seed = 0x5eed<<32 | uint64(id)
	}
	mean := float64(0)
	if s, ok := sizer.(interface{ MeanBytes() float64 }); ok {
		mean = s.MeanBytes()
	} else {
		mean = float64(spec.Size)
	}
	loadRate := spec.Load * float64(f.capacity) / 8 // bytes per second offered
	meanGap := sim.Time(mean / loadRate * 1e9)
	if meanGap < 1 {
		meanGap = 1
	}
	d := &Driver{
		ID:      id,
		spec:    spec,
		f:       f,
		eng:     f.srcs[0].Engine(),
		rand:    sim.NewRand(seed),
		sizer:   sizer,
		factory: factory,
		ecn:     ccName == "dctcp",
		meanGap: meanGap,
	}
	f.drivers[id] = d
	f.order = append(f.order, id)
	d.arm()
	return d, nil
}

// attachFluid builds a kind "fluid" driver: the offered load split over
// spec.Entities rate-ODE entities advancing at the fabric's fluid epoch
// through the bottleneck switch's ingress table, sharing the trunk with
// the packet lane via residual accounting. Attach happens at a window
// boundary, so the first epoch lands cleanly inside the next window.
func (f *Fabric) attachFluid(spec LoadSpec) (*Driver, error) {
	if f.fluidSw == nil {
		return nil, fmt.Errorf("service: kind \"fluid\" needs the dumbbell topology (got %q)", f.cfg.Topo)
	}
	entities := spec.Entities
	if entities <= 0 {
		entities = 1
	}
	ccName := spec.CC
	if ccName == "" {
		ccName = f.cfg.CC
	}
	id := f.nextID
	f.nextID++
	lane := fluid.NewLane(f.fluidSw.Engine(), f.fluidSw.Ingress, f.cfg.FluidEpoch)
	pi := lane.AddPipe(f.fluidPipe)
	per := units.BitRate(spec.Load * float64(f.capacity) / float64(entities))
	lane.AddN(fluid.EntityConfig{AQ: spec.AQ, CC: ccName, Rate: per, Pipe: pi}, entities)
	lane.Start(f.Now())
	d := &Driver{ID: id, spec: spec, f: f, lane: lane}
	f.drivers[id] = d
	f.order = append(f.order, id)
	return d, nil
}

// Detach stops a driver's arrival process at the current boundary;
// in-flight flows run to completion. It reports whether the id named a
// live (not yet detached) driver. The driver's statistics stay visible in
// snapshots.
func (f *Fabric) Detach(id uint32) bool {
	d, ok := f.drivers[id]
	if !ok || d.stopped {
		return false
	}
	d.stopped = true
	if d.next != nil {
		d.next.Cancel()
		d.next = nil
	}
	if d.lane != nil {
		d.lane.Stop()
	}
	return true
}

// Driver returns an attached driver by id, nil if unknown.
func (f *Fabric) Driver(id uint32) *Driver { return f.drivers[id] }

func (d *Driver) arm() {
	d.next = d.eng.After(d.rand.ExpTime(d.meanGap), d.fire)
}

func (d *Driver) fire() {
	if d.stopped {
		return
	}
	d.arm()
	src := d.f.srcs[d.rand.Intn(len(d.f.srcs))]
	dst := d.f.dsts[d.rand.Intn(len(d.f.dsts))]
	size := d.sizer.Sample(d.rand)
	start := d.eng.Now()
	d.tracker.FlowStarted(size)
	s := transport.NewSender(src, dst, size, d.factory(), transport.Options{
		IngressAQ:  d.spec.AQ,
		EcnCapable: d.ecn,
	})
	s.OnComplete = func(now sim.Time) {
		d.tracker.FlowDone(start, now)
		d.doneBytes += size
	}
	s.Start(0)
}

// DriverSnap is a driver's slice of a telemetry snapshot. The fluid
// fields are set only on kind "fluid" drivers; they are omitempty so
// packet-only runs serialize — and therefore fingerprint — exactly as
// before the fluid lane existed.
type DriverSnap struct {
	ID         uint32  `json:"id"`
	Tenant     string  `json:"tenant,omitempty"`
	Kind       string  `json:"kind"`
	Load       float64 `json:"load"`
	AQ         uint32  `json:"aq,omitempty"`
	Active     bool    `json:"active"`
	Started    int     `json:"started"`
	Completed  int     `json:"completed"`
	AckedBytes int64   `json:"acked_bytes"`
	MeanFCTNS  int64   `json:"mean_fct_ns"`

	Entities       int     `json:"entities,omitempty"`
	EntityEpochs   uint64  `json:"entity_epochs,omitempty"`
	FluidDelivered float64 `json:"fluid_delivered_bytes,omitempty"`
	FluidDropped   float64 `json:"fluid_dropped_bytes,omitempty"`
}

// Snap summarises the driver.
func (d *Driver) Snap() DriverSnap {
	s := DriverSnap{
		ID:         d.ID,
		Tenant:     d.spec.Tenant,
		Kind:       d.spec.Kind,
		Load:       d.spec.Load,
		AQ:         uint32(d.spec.AQ),
		Active:     !d.stopped,
		Started:    d.tracker.Started,
		Completed:  d.tracker.Completed,
		AckedBytes: d.doneBytes,
		MeanFCTNS:  int64(d.tracker.MeanFCT()),
	}
	if d.lane != nil {
		st := d.lane.Stats()
		s.Entities = st.Entities
		s.EntityEpochs = st.EntityEpochs
		s.FluidDelivered = st.DeliveredBytes
		s.FluidDropped = st.DroppedBytes
	}
	return s
}
