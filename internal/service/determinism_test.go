package service

import (
	"testing"

	"aqueue/internal/control"
)

// scriptChurn registers the reference mutation script used by the
// determinism gates: grants, attaches, a live reconfiguration, a detach
// and an idle-marking, all pinned to fixed window boundaries.
func scriptChurn(f *Fabric) {
	f.ScriptAt(0, func(f *Fabric) {
		g, err := f.Ctrl().Grant(control.Request{Tenant: "t1", Mode: control.Weighted, Weight: 1},
			f.LookupTable("S1", control.Ingress))
		if err != nil {
			panic(err)
		}
		if _, err := f.Attach(LoadSpec{Tenant: "t1", AQ: g.ID, Kind: "websearch", Load: 0.4}); err != nil {
			panic(err)
		}
	})
	f.ScriptAt(4, func(f *Fabric) {
		g, err := f.Ctrl().Grant(control.Request{Tenant: "t2", Mode: control.Weighted, Weight: 2},
			f.LookupTable("S1", control.Ingress))
		if err != nil {
			panic(err)
		}
		if _, err := f.Attach(LoadSpec{Tenant: "t2", AQ: g.ID, Kind: "fixed", Size: 50_000, Load: 0.3}); err != nil {
			panic(err)
		}
	})
	f.ScriptAt(8, func(f *Fabric) {
		if _, err := f.Ctrl().SetGuarantee(1, 0, 3); err != nil {
			panic(err)
		}
	})
	f.ScriptAt(12, func(f *Fabric) {
		if !f.Detach(2) {
			panic("scripted detach missed")
		}
		if !f.Ctrl().SetActive(2, false) {
			panic("scripted set_active missed")
		}
	})
}

func runScripted(t *testing.T, cfg Config, windows int) string {
	t.Helper()
	f, err := NewFabric(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	scriptChurn(f)
	for i := 0; i < windows; i++ {
		f.AdvanceWindow()
	}
	return f.Fingerprint()
}

// TestScriptedRunFingerprintIdentical is the acceptance gate: a run with
// mutations scripted at fixed window boundaries is byte-identical across
// two executions, and stays identical when the same script is delivered
// through the Service run loop instead of synchronous calls.
func TestScriptedRunFingerprintIdentical(t *testing.T) {
	cfg := testConfig()
	const windows = 16

	a := runScripted(t, cfg, windows)
	b := runScripted(t, cfg, windows)
	if a != b {
		t.Fatalf("synchronous runs diverged:\n  %s\n  %s", a, b)
	}

	// Same script, but advanced by the service loop in stepped batches.
	f, err := NewFabric(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scriptChurn(f)
	s := Start(f, RunConfig{StartPaused: true})
	for _, n := range []int{3, 5, 8} {
		if err := s.Step(n); err != nil {
			t.Fatal(err)
		}
	}
	s.Quit()
	if got := f.Fingerprint(); got != a {
		t.Fatalf("service-driven run diverged from synchronous:\n  %s\n  %s", got, a)
	}
}

// TestFingerprintInvariantAcrossDomains pins partition-independence
// through the service layer: the same scripted run is byte-identical with
// 1 and 2 conservative time-synced domains.
func TestFingerprintInvariantAcrossDomains(t *testing.T) {
	cfg := testConfig()
	const windows = 12
	one := runScripted(t, cfg, windows)
	cfg.Domains = 2
	two := runScripted(t, cfg, windows)
	if one != two {
		t.Fatalf("domain split changed the run:\n  1 domain:  %s\n  2 domains: %s", one, two)
	}
}

// TestFingerprintInvariantUnderParallel pins that advancing a partitioned
// fabric's domains on the cluster's worker goroutines (Config.Parallel)
// does not change the run: same script, same windows, byte-identical
// fingerprint. The mailbox/boundary argument for why this holds is on the
// Service type; this test is the check. Runs with tracing enabled, so the
// locking trace sink is exercised too.
func TestFingerprintInvariantUnderParallel(t *testing.T) {
	cfg := testConfig()
	cfg.Domains = 2
	const windows = 12
	coop := runScripted(t, cfg, windows)
	cfg.Parallel = true
	par := runScripted(t, cfg, windows)
	if coop != par {
		t.Fatalf("parallel workers changed the run:\n  cooperative: %s\n  parallel:    %s", coop, par)
	}
}

// TestFingerprintSensitive guards against a fingerprint that ignores the
// simulation: changing the script must change the hash.
func TestFingerprintSensitive(t *testing.T) {
	cfg := testConfig()
	base := runScripted(t, cfg, 12)

	f, err := NewFabric(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scriptChurn(f)
	f.ScriptAt(6, func(f *Fabric) {
		if _, err := f.Attach(LoadSpec{Kind: "fixed", Size: 9000, Load: 0.1}); err != nil {
			panic(err)
		}
	})
	for i := 0; i < 12; i++ {
		f.AdvanceWindow()
	}
	if f.Fingerprint() == base {
		t.Fatal("extra scripted attach left the fingerprint unchanged")
	}
}

// TestScriptPastWindowPanics pins the misuse guard.
func TestScriptPastWindowPanics(t *testing.T) {
	f, err := NewFabric(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	f.AdvanceWindow()
	f.AdvanceWindow()
	defer func() {
		if recover() == nil {
			t.Fatal("scripting a completed window did not panic")
		}
	}()
	f.ScriptAt(1, func(*Fabric) {})
}
