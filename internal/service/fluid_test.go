package service

import (
	"testing"
)

// TestFabricFluidDriver attaches a kind "fluid" background to the fabric:
// entities must advance at epochs inside the windows, deliver bytes
// through the granted AQ, surface in driver snapshots, and stop (releasing
// the trunk's residual coupling) on detach.
func TestFabricFluidDriver(t *testing.T) {
	f, err := NewFabric(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	id := grantWeighted(t, f, "bg", 1)
	d, err := f.Attach(LoadSpec{Tenant: "bg", AQ: id, Kind: "fluid", Load: 0.8, Entities: 50})
	if err != nil {
		t.Fatal(err)
	}

	var snap Snapshot
	for i := 0; i < 10; i++ {
		snap = f.AdvanceWindow()
	}
	ds := d.Snap()
	if ds.Entities != 50 {
		t.Fatalf("snap entities = %d, want 50", ds.Entities)
	}
	// 10 windows x 200us at the default 100us epoch = 20 epochs each.
	if ds.EntityEpochs != 50*20 {
		t.Fatalf("entity-epochs = %d, want %d", ds.EntityEpochs, 50*20)
	}
	if ds.FluidDelivered <= 0 {
		t.Fatal("fluid driver delivered no bytes")
	}
	if snap.Drivers[0].FluidDelivered != ds.FluidDelivered {
		t.Fatal("snapshot driver entry does not carry the fluid counters")
	}
	// The granted AQ must have integrated the fluid arrivals.
	if len(snap.Tenants) != 1 || snap.Tenants[0].AQ.FluidBytes <= 0 {
		t.Fatalf("granted AQ saw no fluid bytes: %+v", snap.Tenants)
	}

	if !f.Detach(d.ID) {
		t.Fatal("detach of live fluid driver failed")
	}
	delivered := d.Snap().FluidDelivered
	for i := 0; i < 5; i++ {
		f.AdvanceWindow()
	}
	if got := d.Snap().FluidDelivered; got != delivered {
		t.Fatalf("detached fluid driver kept delivering: %.0f -> %.0f", delivered, got)
	}
	if fr := f.fluidPipe.FluidRate(); fr != 0 {
		t.Fatalf("trunk fluid rate %v after detach, want 0 (released)", fr)
	}
}

// TestFabricFluidNeedsDumbbell: the fluid driver anchors on the dumbbell
// bottleneck; other topologies must refuse the attach.
func TestFabricFluidNeedsDumbbell(t *testing.T) {
	cfg := testConfig()
	cfg.Topo = "star"
	cfg.Hosts = 4
	f, err := NewFabric(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Attach(LoadSpec{Kind: "fluid", Load: 0.5}); err == nil {
		t.Fatal("star fabric accepted a fluid driver")
	}
}

// TestFabricFluidDeterminism: two runs with the same scripted fluid
// attach/detach must fingerprint identically, and a packet-only run's
// fingerprint must not change because the fluid lane is compiled in.
func TestFabricFluidDeterminism(t *testing.T) {
	run := func(domains int) string {
		cfg := testConfig()
		cfg.Domains = domains
		f, err := NewFabric(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		id := grantWeighted(t, f, "bg", 1)
		f.ScriptAt(2, func(f *Fabric) {
			if _, err := f.Attach(LoadSpec{Tenant: "bg", AQ: id, Kind: "fluid",
				Load: 0.6, Entities: 20, CC: "cubic"}); err != nil {
				t.Errorf("scripted attach: %v", err)
			}
		})
		f.ScriptAt(8, func(f *Fabric) { f.Detach(1) })
		for i := 0; i < 12; i++ {
			f.AdvanceWindow()
		}
		return f.Fingerprint()
	}
	base := run(1)
	for _, domains := range []int{2, 1} {
		if got := run(domains); got != base {
			t.Fatalf("domains=%d fingerprint %s, want %s", domains, got, base)
		}
	}
}
