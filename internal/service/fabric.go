// Package service hosts a long-running simulated fabric: a cluster-built
// topology with an AQ controller that advances in fixed windows and
// accepts runtime mutations — tenant grants, guarantee reconfigurations,
// open-loop load attach/detach — only at window boundaries. That single
// rule is what keeps the daemon deterministic: a mutation script keyed by
// window index replays byte-identically no matter how the mutations were
// delivered (in-process, over the wire, or from a test), because the
// engine never observes a change mid-window.
//
// The package splits in two layers. Fabric is synchronous and
// single-goroutine: build it, script mutations, call AdvanceWindow in a
// loop. Service (service.go) wraps a Fabric in a run loop with a command
// mailbox, run control (pause/step/advance-to/quit) and snapshot
// streaming — the engine room of cmd/aqsimd.
package service

import (
	"encoding/json"
	"fmt"
	"hash"
	"hash/fnv"

	"aqueue/internal/control"
	"aqueue/internal/core"
	"aqueue/internal/sim"
	"aqueue/internal/stats"
	"aqueue/internal/topo"
	"aqueue/internal/trace"
	"aqueue/internal/units"
)

// Config describes the hosted fabric. Zero values select the defaults of
// DefaultConfig.
type Config struct {
	// Topo picks the topology: "dumbbell" (senders left, receivers right,
	// shared trunk) or "star" (first half of the hosts send to the second
	// half through one switch).
	Topo string
	// Hosts is the host count per dumbbell side, or the total star size
	// (even, ≥2).
	Hosts int
	// Domains partitions the fabric into conservative time-synced
	// simulation domains; results are byte-identical for any value.
	Domains int
	// Parallel advances the partitioned domains on the cluster's
	// persistent worker goroutines instead of cooperatively. Results stay
	// byte-identical — the window snapshots and the run fingerprint are
	// unchanged. This is sound for the service because every mutation goes
	// through the Service mailbox and lands only at window boundaries,
	// when the workers are parked: nothing ever writes across a domain
	// while a window is in flight. The one shared structure outside the
	// simulation proper, the trace ring, is wrapped in a locking sink
	// under this flag; its cross-domain interleaving (and only that) may
	// vary run to run. Ignored when Domains < 2.
	Parallel bool
	// Window is the mutation quantum: the fabric advances in steps of
	// this size and applies mutations only on its boundaries.
	Window sim.Time
	// Edge and Trunk configure the link classes; zero Rate selects
	// topo.DefaultSim for both.
	Edge, Trunk topo.LinkSpec
	// Sim forwards engine options (burst size, dense tables, ...).
	Sim []sim.Option
	// TraceLen bounds the event ring attached to hosts and switches;
	// 0 disables tracing entirely.
	TraceLen int
	// CC is the default congestion-control algorithm for attached load
	// drivers that do not name their own.
	CC string
	// FluidEpoch is the integration epoch of fluid load drivers (kind
	// "fluid"); zero selects fluid.DefaultEpoch.
	FluidEpoch sim.Time
}

// DefaultConfig is an 8x8 single-domain dumbbell advancing in 1 ms
// windows with the paper's §5.1 link parameters.
func DefaultConfig() Config {
	return Config{
		Topo:     "dumbbell",
		Hosts:    8,
		Domains:  1,
		Window:   sim.Millisecond,
		TraceLen: 4096,
		CC:       "cubic",
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Topo == "" {
		c.Topo = d.Topo
	}
	if c.Hosts <= 0 {
		c.Hosts = d.Hosts
	}
	if c.Domains <= 0 {
		c.Domains = d.Domains
	}
	if c.Window <= 0 {
		c.Window = d.Window
	}
	if c.Edge.Rate == 0 {
		c.Edge = topo.DefaultSim()
	}
	if c.Trunk.Rate == 0 {
		c.Trunk = topo.DefaultSim()
	}
	if c.CC == "" {
		c.CC = d.CC
	}
	return c
}

// fabricPipe is one telemetered link: its per-window byte meter and the
// TX counter high-water mark from the previous boundary.
type fabricPipe struct {
	name   string
	pipe   *topo.Pipe
	meter  *stats.Meter
	lastTx uint64
	// lastGbps is the throughput of the most recent completed window;
	// recent keeps the last maxSeriesPoints of them for full snapshots.
	lastGbps float64
	recent   []float64
}

type fabricSwitch struct {
	name string
	sw   *topo.Switch
}

// Fabric is the synchronous core of the service: topology, controller,
// load drivers and telemetry, advanced window by window. It is not safe
// for concurrent use — Service serializes access through its mailbox.
type Fabric struct {
	cfg      Config
	cluster  *sim.Cluster
	ctrl     *control.Controller
	tables   map[string]*core.Table
	srcs     []*topo.Host
	dsts     []*topo.Host
	pipes    []fabricPipe
	switches []fabricSwitch
	capacity units.BitRate
	ring     *trace.Ring
	// sink is what components emit into: the ring itself, or a locking
	// wrapper when parallel domain workers could append concurrently.
	sink trace.Sink

	// fluidSw/fluidPipe anchor fluid load drivers: the ingress table the
	// entities' epochs run through and the shared link they account. Only
	// the dumbbell topology sets them — it has the one well-defined
	// bottleneck a fluid background contends on.
	fluidSw   *topo.Switch
	fluidPipe *topo.Pipe

	drivers map[uint32]*Driver
	order   []uint32 // attach order, for deterministic snapshots
	nextID  uint32

	window uint64
	script map[uint64][]func(*Fabric)

	// fp folds every boundary snapshot into a running FNV-64a hash; two
	// runs with identical configs and identically-scheduled mutations
	// produce identical fingerprints.
	fp hash.Hash64
}

// NewFabric builds the fabric described by cfg.
func NewFabric(cfg Config) (*Fabric, error) {
	cfg = cfg.withDefaults()
	f := &Fabric{
		cfg:     cfg,
		cluster: sim.NewCluster(cfg.Domains, cfg.Sim...),
		tables:  make(map[string]*core.Table),
		drivers: make(map[uint32]*Driver),
		script:  make(map[uint64][]func(*Fabric)),
		fp:      fnv.New64a(),
		nextID:  1,
	}
	f.cluster.SetParallel(cfg.Parallel)
	if cfg.TraceLen > 0 {
		f.ring = trace.NewRing(cfg.TraceLen)
		f.sink = f.ring
		if cfg.Parallel && cfg.Domains > 1 {
			f.sink = trace.NewLockedSink(f.ring)
		}
	}
	switch cfg.Topo {
	case "dumbbell":
		d := topo.NewDumbbellIn(f.cluster, cfg.Hosts, cfg.Hosts, cfg.Edge, cfg.Trunk)
		f.srcs, f.dsts = d.Left, d.Right
		f.capacity = cfg.Trunk.Rate
		f.addSwitch("S1", d.S1)
		f.addSwitch("S2", d.S2)
		f.addPipe("S1->S2", d.Bottleneck)
		f.addPipe("S2->S1", d.ReverseTrunk)
		f.fluidSw, f.fluidPipe = d.S1, d.Bottleneck
		if f.ring != nil {
			for _, h := range append(append([]*topo.Host{}, d.Left...), d.Right...) {
				h.SetTrace(f.sink)
			}
		}
	case "star":
		if cfg.Hosts < 2 || cfg.Hosts%2 != 0 {
			return nil, fmt.Errorf("service: star needs an even host count >= 2, got %d", cfg.Hosts)
		}
		s := topo.NewStarIn(f.cluster, cfg.Hosts, cfg.Edge)
		half := cfg.Hosts / 2
		f.srcs, f.dsts = s.Hosts[:half], s.Hosts[half:]
		f.capacity = cfg.Edge.Rate
		f.addSwitch("SW", s.SW)
		for i := half; i < cfg.Hosts; i++ {
			f.addPipe(fmt.Sprintf("SW->h%d", i), s.Down[i])
		}
		if f.ring != nil {
			for _, h := range s.Hosts {
				h.SetTrace(f.sink)
			}
		}
	default:
		return nil, fmt.Errorf("service: unknown topology %q", cfg.Topo)
	}
	f.ctrl = control.NewController(f.capacity)
	return f, nil
}

func (f *Fabric) addSwitch(name string, sw *topo.Switch) {
	f.switches = append(f.switches, fabricSwitch{name: name, sw: sw})
	f.tables[name+"/"+control.Ingress.String()] = sw.Ingress
	f.tables[name+"/"+control.Egress.String()] = sw.Egress
	if f.ring != nil {
		sw.SetTrace(f.sink)
	}
}

func (f *Fabric) addPipe(name string, p *topo.Pipe) {
	f.pipes = append(f.pipes, fabricPipe{name: name, pipe: p, meter: stats.NewMeter(f.cfg.Window)})
}

// Config returns the normalized configuration.
func (f *Fabric) Config() Config { return f.cfg }

// Ctrl exposes the AQ controller for dispatching controller verbs.
func (f *Fabric) Ctrl() *control.Controller { return f.ctrl }

// Now returns the fabric's simulated clock (always a window boundary
// between AdvanceWindow calls).
func (f *Fabric) Now() sim.Time { return f.cluster.Now() }

// Window returns the number of completed windows.
func (f *Fabric) Window() uint64 { return f.window }

// Capacity returns the guaranteed-link capacity grants are admitted
// against.
func (f *Fabric) Capacity() units.BitRate { return f.capacity }

// LookupTable resolves a pipeline table by switch name and position, the
// shape control.DispatchController wants.
func (f *Fabric) LookupTable(sw string, pos control.Position) *core.Table {
	return f.tables[sw+"/"+pos.String()]
}

// ScriptAt registers a mutation to run at the boundary entering window w
// (w completed windows, i.e. sim time w·Window). Scripting a window that
// already passed is a programming error and panics; scripted mutations
// are what the determinism gates replay.
func (f *Fabric) ScriptAt(w uint64, fn func(*Fabric)) {
	if w < f.window {
		panic(fmt.Sprintf("service: scripting window %d but %d already completed", w, f.window))
	}
	f.script[w] = append(f.script[w], fn)
}

// AdvanceWindow applies the mutations scripted for the current boundary,
// simulates one window, rolls the telemetry meters and returns the
// boundary snapshot (folded into the run fingerprint).
func (f *Fabric) AdvanceWindow() Snapshot {
	if fns := f.script[f.window]; len(fns) > 0 {
		delete(f.script, f.window)
		for _, fn := range fns {
			fn(f)
		}
	}
	f.window++
	boundary := sim.Time(f.window) * f.cfg.Window
	f.cluster.RunUntil(boundary)
	for i := range f.pipes {
		fp := &f.pipes[i]
		tx := fp.pipe.Stats().TxBytes
		delta := tx - fp.lastTx
		fp.lastTx = tx
		// boundary-1 files window w's bytes under bucket index w-1.
		fp.meter.Add(boundary-1, int(delta))
		// bits per nanosecond is Gbps exactly.
		fp.lastGbps = float64(delta*8) / float64(f.cfg.Window)
		if len(fp.recent) == maxSeriesPoints {
			copy(fp.recent, fp.recent[1:])
			fp.recent = fp.recent[:maxSeriesPoints-1]
		}
		fp.recent = append(fp.recent, fp.lastGbps)
	}
	snap := f.Snapshot(false)
	f.foldFingerprint(snap)
	return snap
}

func (f *Fabric) foldFingerprint(snap Snapshot) {
	b, err := json.Marshal(snap)
	if err != nil {
		panic(fmt.Sprintf("service: snapshot not marshalable: %v", err))
	}
	f.fp.Write(b)
	f.fp.Write([]byte{'\n'})
}

// Fingerprint returns the run's accumulated window-snapshot hash together
// with the window count. Two runs of the same config with the same
// mutations scripted at the same boundaries report identical strings.
func (f *Fabric) Fingerprint() string {
	return fmt.Sprintf("%016x/%d", f.fp.Sum64(), f.window)
}

// SyncStats reports the cluster's synchronization accounting: rounds run,
// boundary flushes, barrier cost and per-domain busy time. The NS fields
// are host wall-clock — they never feed the simulation and are therefore
// kept out of Snapshot, whose byte stream is the determinism fingerprint.
func (f *Fabric) SyncStats() sim.SyncStats { return f.cluster.SyncStats() }

// Close stops the cluster's domain worker goroutines (if any were
// started). The fabric must not be advanced afterwards; Service calls
// this when its run loop exits.
func (f *Fabric) Close() { f.cluster.Close() }
