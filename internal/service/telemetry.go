package service

import (
	"aqueue/internal/control"
	"aqueue/internal/core"
	"aqueue/internal/stats"
	"aqueue/internal/topo"
	"aqueue/internal/trace"
)

// Snapshot is the fabric's state at one window boundary. Every field is a
// pure function of the simulation (no wall-clock, no pointer identity),
// so the per-window snapshot stream doubles as the determinism
// fingerprint: byte-identical runs produce byte-identical snapshots.
type Snapshot struct {
	// Window counts completed windows; NowNS is Window times the window
	// size.
	Window   uint64              `json:"window"`
	NowNS    int64               `json:"now_ns"`
	Tenants  []control.GrantInfo `json:"tenants,omitempty"`
	Pipes    []PipeSnap          `json:"pipes,omitempty"`
	Switches []SwitchSnap        `json:"switches,omitempty"`
	Drivers  []DriverSnap        `json:"drivers,omitempty"`
}

// PipeSnap is one telemetered link: cumulative wire counters plus the
// throughput of the last completed window, and — when a full snapshot is
// requested — the per-window Gbps series since the run started.
type PipeSnap struct {
	Name string `json:"name"`
	topo.PipeStats
	Gbps   float64           `json:"gbps"`
	Series []float64         `json:"series_gbps,omitempty"`
	Meter  *stats.MeterStats `json:"meter,omitempty"`
}

// SwitchSnap is one switch's forwarding and pipeline-table counters.
type SwitchSnap struct {
	Name string `json:"name"`
	topo.SwitchStats
	Ingress core.TableStats `json:"ingress"`
	Egress  core.TableStats `json:"egress"`
}

// maxSeriesPoints bounds the per-pipe series in a full snapshot so
// long-running daemons do not stream unbounded payloads.
const maxSeriesPoints = 64

// Snapshot builds the boundary snapshot. series additionally includes the
// per-pipe throughput history (downsampled to maxSeriesPoints buckets) —
// the expensive part, so only the explicit "stats" verb asks for it.
func (f *Fabric) Snapshot(series bool) Snapshot {
	s := Snapshot{
		Window:  f.window,
		NowNS:   int64(f.Now()),
		Tenants: f.ctrl.Info(),
	}
	for i := range f.pipes {
		fp := &f.pipes[i]
		ps := PipeSnap{Name: fp.name, PipeStats: fp.pipe.Stats(), Gbps: fp.lastGbps}
		if series {
			ps.Series = append([]float64(nil), fp.recent...)
			ms := fp.meter.Stats()
			ps.Meter = &ms
		}
		s.Pipes = append(s.Pipes, ps)
	}
	for _, fs := range f.switches {
		s.Switches = append(s.Switches, SwitchSnap{
			Name:        fs.name,
			SwitchStats: fs.sw.Stats(),
			Ingress:     fs.sw.Ingress.Stats(),
			Egress:      fs.sw.Egress.Stats(),
		})
	}
	for _, id := range f.order {
		s.Drivers = append(s.Drivers, f.drivers[id].Snap())
	}
	return s
}

// TraceEvent is the wire form of one trace-ring entry.
type TraceEvent struct {
	AtNS  int64  `json:"at_ns"`
	Kind  string `json:"kind"`
	Flow  uint64 `json:"flow,omitempty"`
	Src   int32  `json:"src"`
	Dst   int32  `json:"dst"`
	Seq   int64  `json:"seq,omitempty"`
	Size  int    `json:"size,omitempty"`
	Where string `json:"where,omitempty"`
}

// TraceTail returns the newest n ring events (oldest first). It returns
// nil when tracing is disabled.
func (f *Fabric) TraceTail(n int) []TraceEvent {
	if f.ring == nil || n <= 0 {
		return nil
	}
	evs := f.ring.Events()
	if len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	out := make([]TraceEvent, len(evs))
	for i, e := range evs {
		out[i] = wireEvent(e)
	}
	return out
}

func wireEvent(e trace.Event) TraceEvent {
	return TraceEvent{
		AtNS:  int64(e.At),
		Kind:  e.Kind.String(),
		Flow:  uint64(e.Flow),
		Src:   int32(e.Src),
		Dst:   int32(e.Dst),
		Seq:   e.Seq,
		Size:  e.Size,
		Where: e.Where,
	}
}
