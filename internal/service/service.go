package service

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"aqueue/internal/control"
	"aqueue/internal/sim"
)

// Run-control errors, mapped to wire codes by the dispatcher.
var (
	// ErrNotPaused rejects a step while the fabric free-runs.
	ErrNotPaused = errors.New("service: not paused")
	// ErrShuttingDown rejects work submitted after Quit.
	ErrShuttingDown = errors.New("service: shutting down")
)

// RunConfig tunes the Service run loop (not the fabric it drives).
type RunConfig struct {
	// Pace throttles the loop to Pace simulated seconds per wall second;
	// 1 is real time, 0 runs as fast as possible.
	Pace float64
	// StartPaused starts the loop at window 0 waiting for run-control
	// commands instead of free-running.
	StartPaused bool
}

// command is one queued mutation: executed by the loop goroutine at a
// window boundary, its response handed back to the waiting caller.
type command struct {
	fn   func(*Fabric) control.WireResponse
	resp chan control.WireResponse
}

// Service owns a Fabric's run loop. All fabric access is funneled through
// the loop goroutine: mutations submitted with Do are queued in a mailbox
// the loop drains only between windows, so no change ever lands inside a
// window — the invariant the determinism gates rely on. Telemetry readers
// never touch the fabric either; they read the immutable Snapshot values
// the loop publishes at each boundary.
//
// The same boundary-only mailbox is what makes Config.Parallel sound:
// while a window is in flight the only goroutines touching simulation
// state are the cluster's domain workers, each confined to its own
// domain, exchanging packets exclusively through boundary mailboxes at
// round barriers. Mutations, snapshots and trace reads all happen on the
// loop goroutine between windows, when every worker is parked at its
// channel — there is no instant at which a command and a domain can see
// the same state.
type Service struct {
	f   *Fabric
	cfg RunConfig

	mu   sync.Mutex
	cond *sync.Cond
	cmds []*command

	paused bool
	steps  uint64   // windows still to advance while paused
	target sim.Time // advance-to deadline; 0 = none
	quit   bool

	snap    Snapshot // latest boundary snapshot
	subs    map[int]chan Snapshot
	nextSub int

	onQuit func() // wire "quit" hook, see SetOnQuit

	done chan struct{}
}

// Start builds the run loop around f and launches it.
func Start(f *Fabric, cfg RunConfig) *Service {
	s := &Service{
		f:      f,
		cfg:    cfg,
		paused: cfg.StartPaused,
		subs:   make(map[int]chan Snapshot),
		done:   make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	go s.loop()
	return s
}

func (s *Service) loop() {
	s.mu.Lock()
	for {
		// A loop iteration always starts at a window boundary: drain the
		// mailbox here and nowhere else.
		s.drainLocked()
		if s.quit {
			break
		}
		advance := false
		switch {
		case s.steps > 0:
			s.steps--
			advance = true
		case !s.paused:
			if s.target > 0 && s.f.Now() >= s.target {
				// advance-to reached its deadline: park.
				s.paused, s.target = true, 0
				s.cond.Broadcast()
				continue
			}
			advance = true
		}
		if !advance {
			s.cond.Wait()
			continue
		}
		s.mu.Unlock()
		start := time.Now()
		snap := s.f.AdvanceWindow()
		if s.cfg.Pace > 0 {
			wall := time.Duration(float64(s.f.cfg.Window) / s.cfg.Pace)
			if d := wall - time.Since(start); d > 0 {
				time.Sleep(d)
			}
		}
		s.mu.Lock()
		s.snap = snap
		for _, ch := range s.subs {
			select {
			case ch <- snap:
			default: // slow subscriber: drop rather than stall the fabric
			}
		}
		s.cond.Broadcast()
	}
	// Shutdown: stop the cluster's domain workers, answer whatever is
	// still queued, wake every waiter, end every stream.
	s.f.Close()
	for _, c := range s.cmds {
		c.resp <- control.Errf(control.CodeShuttingDown, "service shutting down")
	}
	s.cmds = nil
	for _, ch := range s.subs {
		close(ch)
	}
	s.subs = nil
	s.cond.Broadcast()
	s.mu.Unlock()
	close(s.done)
}

func (s *Service) drainLocked() {
	for len(s.cmds) > 0 {
		c := s.cmds[0]
		s.cmds = s.cmds[1:]
		c.resp <- c.fn(s.f)
	}
}

// Do queues a mutation and blocks until the loop executes it at the next
// window boundary. fn runs on the loop goroutine with exclusive fabric
// access; it must not call back into Service.
func (s *Service) Do(fn func(*Fabric) control.WireResponse) control.WireResponse {
	c := &command{fn: fn, resp: make(chan control.WireResponse, 1)}
	s.mu.Lock()
	if s.quit {
		s.mu.Unlock()
		return control.Errf(control.CodeShuttingDown, "service shutting down")
	}
	s.cmds = append(s.cmds, c)
	s.cond.Broadcast()
	s.mu.Unlock()
	return <-c.resp
}

// Latest returns the most recently published boundary snapshot.
func (s *Service) Latest() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snap
}

// Paused reports whether the loop is parked at a boundary.
func (s *Service) Paused() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.paused
}

// Pause parks the loop at the next window boundary (the window being
// simulated completes first).
func (s *Service) Pause() {
	s.mu.Lock()
	s.paused = true
	s.target = 0
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Resume restarts free-running.
func (s *Service) Resume() {
	s.mu.Lock()
	s.paused = false
	s.target = 0
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Step advances a paused fabric by n windows (n<1 means 1) and returns
// once they completed.
func (s *Service) Step(n int) error {
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.quit {
		return ErrShuttingDown
	}
	if !s.paused {
		return ErrNotPaused
	}
	s.steps += uint64(n)
	target := s.snap.Window + s.steps
	s.cond.Broadcast()
	for s.snap.Window < target && !s.quit {
		s.cond.Wait()
	}
	if s.snap.Window < target {
		return ErrShuttingDown
	}
	return nil
}

// AdvanceTo free-runs until simulated time reaches t (the first boundary
// at or past it), then pauses. It blocks until the target is reached.
func (s *Service) AdvanceTo(t sim.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.quit {
		return ErrShuttingDown
	}
	if t <= sim.Time(s.snap.NowNS) {
		return fmt.Errorf("target %d ns not ahead of now %d ns", t, s.snap.NowNS)
	}
	s.target = t
	s.paused = false
	s.cond.Broadcast()
	for sim.Time(s.snap.NowNS) < t && !s.quit {
		s.cond.Wait()
	}
	if sim.Time(s.snap.NowNS) < t {
		return ErrShuttingDown
	}
	return nil
}

// Subscribe registers a snapshot stream (buffered; the loop drops frames
// a slow reader misses rather than stalling). The channel closes on
// shutdown. Call cancel when done.
func (s *Service) Subscribe() (<-chan Snapshot, func()) {
	ch := make(chan Snapshot, 64)
	s.mu.Lock()
	if s.quit {
		close(ch)
		s.mu.Unlock()
		return ch, func() {}
	}
	id := s.nextSub
	s.nextSub++
	s.subs[id] = ch
	s.mu.Unlock()
	return ch, func() {
		s.mu.Lock()
		if s.subs != nil {
			delete(s.subs, id)
		}
		s.mu.Unlock()
	}
}

// Quit stops the loop at the next boundary and waits for it to exit.
// Pending mailbox commands are answered with CodeShuttingDown.
func (s *Service) Quit() {
	s.mu.Lock()
	s.quit = true
	s.cond.Broadcast()
	s.mu.Unlock()
	<-s.done
}

// Done closes once the loop has exited.
func (s *Service) Done() <-chan struct{} { return s.done }
