package service

import (
	"encoding/json"

	"aqueue/internal/control"
	"aqueue/internal/packet"
	"aqueue/internal/sim"
)

// This file is the fabric service's wire front end: a control.Handler
// implementing the v2 service verbs on top of the shared NDJSON loop
// (control.WireServer). Controller verbs are delegated to
// control.DispatchController; everything that mutates the fabric goes
// through the Service mailbox, so wire clients can never land a change
// inside a simulation window.

// maxWatch bounds one watch request so a typo'd count cannot pin a
// connection goroutine forever.
const maxWatch = 100_000

// StatsReply is the "stats" verb payload: the full boundary snapshot plus
// the cluster's sync/load accounting. The sync section lives here — next
// to the snapshot, never inside it — because its fields are host
// wall-clock measurements, and Snapshot's byte stream doubles as the run's
// determinism fingerprint.
type StatsReply struct {
	Snapshot
	Sync sim.SyncStats `json:"sync"`
}

// Handler returns the wire dispatcher to plug into control.NewWireServer.
func (s *Service) Handler() control.Handler {
	return func(req control.WireRequest, emit func(control.WireResponse) bool) {
		s.dispatch(req, emit)
	}
}

func (s *Service) dispatch(req control.WireRequest, emit func(control.WireResponse) bool) {
	switch req.Op {
	case "hello", "grant", "release", "set_active", "set_rate", "set_weight", "list":
		emit(s.Do(func(f *Fabric) control.WireResponse {
			resp, _ := control.DispatchController(f.Ctrl(), f.LookupTable, req)
			return resp
		}))

	case "attach":
		spec := LoadSpec{
			Tenant:   req.Tenant,
			AQ:       packet.AQID(req.ID), // the granted AQ to tag flows with
			Kind:     req.Kind,
			Size:     req.Size,
			Load:     req.Load,
			Seed:     req.Seed,
			CC:       req.CC,
			Entities: req.Entities,
		}
		emit(s.Do(func(f *Fabric) control.WireResponse {
			d, err := f.Attach(spec)
			if err != nil {
				return control.Errf(control.CodeBadRequest, "%v", err)
			}
			resp := dataResponse(d.Snap())
			resp.ID = d.ID // the driver id, for detach
			return resp
		}))

	case "detach":
		emit(s.Do(func(f *Fabric) control.WireResponse {
			if !f.Detach(req.ID) {
				return control.Errf(control.CodeUnknownID, "no attached driver %d", req.ID)
			}
			return control.WireResponse{OK: true, ID: req.ID}
		}))

	case "stats":
		emit(s.Do(func(f *Fabric) control.WireResponse {
			return dataResponse(StatsReply{
				Snapshot: f.Snapshot(true),
				Sync:     f.SyncStats(),
			})
		}))

	case "watch":
		n := req.Count
		if n <= 0 {
			n = 1
		}
		if n > maxWatch {
			n = maxWatch
		}
		ch, cancel := s.Subscribe()
		defer cancel()
		for i := 0; i < n; i++ {
			snap, ok := <-ch
			if !ok {
				emit(control.Errf(control.CodeShuttingDown, "service shutting down"))
				return
			}
			if !emit(dataResponse(snap)) {
				return
			}
		}

	case "trace":
		n := req.Count
		if n <= 0 {
			n = 100
		}
		emit(s.Do(func(f *Fabric) control.WireResponse {
			return dataResponse(struct {
				Events []TraceEvent `json:"events"`
			}{Events: f.TraceTail(n)})
		}))

	case "fingerprint":
		emit(s.Do(func(f *Fabric) control.WireResponse {
			return dataResponse(struct {
				Window      uint64 `json:"window"`
				NowNS       int64  `json:"now_ns"`
				Fingerprint string `json:"fingerprint"`
			}{Window: f.Window(), NowNS: int64(f.Now()), Fingerprint: f.Fingerprint()})
		}))

	case "pause":
		s.Pause()
		emit(control.WireResponse{OK: true})

	case "resume":
		s.Resume()
		emit(control.WireResponse{OK: true})

	case "step":
		if err := s.Step(req.Count); err != nil {
			emit(errResponse(err))
			return
		}
		emit(dataResponse(s.Latest()))

	case "advance":
		if err := s.AdvanceTo(sim.Time(req.UntilNS)); err != nil {
			emit(errResponse(err))
			return
		}
		emit(dataResponse(s.Latest()))

	case "quit":
		// Acknowledge first — the client's read must not race the
		// listener teardown the quit hook performs.
		emit(control.WireResponse{OK: true})
		s.Quit()
		s.runQuitHook()

	default:
		emit(control.Errf(control.CodeUnknownOp, "unknown op %q", req.Op))
	}
}

// SetOnQuit installs a hook run once after a wire "quit" stopped the
// loop; cmd/aqsimd uses it to close the listener and exit.
func (s *Service) SetOnQuit(fn func()) {
	s.mu.Lock()
	s.onQuit = fn
	s.mu.Unlock()
}

func (s *Service) runQuitHook() {
	s.mu.Lock()
	fn := s.onQuit
	s.onQuit = nil
	s.mu.Unlock()
	if fn != nil {
		fn()
	}
}

func errResponse(err error) control.WireResponse {
	switch err {
	case ErrNotPaused:
		return control.Errf(control.CodeNotPaused, "%v", err)
	case ErrShuttingDown:
		return control.Errf(control.CodeShuttingDown, "%v", err)
	default:
		return control.Errf(control.CodeBadRequest, "%v", err)
	}
}

// dataResponse marshals v into an OK response's data payload.
func dataResponse(v any) control.WireResponse {
	b, err := json.Marshal(v)
	if err != nil {
		return control.Errf(control.CodeInternal, "encoding payload: %v", err)
	}
	return control.WireResponse{OK: true, Data: b}
}
