package queue

import (
	"testing"

	"aqueue/internal/packet"
)

func classPkt(class uint64, size int) *packet.Packet {
	p := packet.NewData(0, 1, packet.FlowID(class), 0, size-packet.HeaderBytes)
	return p
}

func TestDRRFairServiceTwoClasses(t *testing.T) {
	byFlow := func(p *packet.Packet) uint64 { return uint64(p.Flow) }
	d := NewDRR(2, 1000, 0, byFlow)
	// Class 0: 20 packets of 1000B; class 1: 20 packets of 500B.
	for i := 0; i < 20; i++ {
		d.Push(0, classPkt(0, 1000))
		d.Push(0, classPkt(1, 500))
	}
	// Serve 15000 bytes; each class should get ~half the bytes.
	served := map[uint64]int{}
	total := 0
	for total < 15000 {
		p := d.Pop()
		if p == nil {
			t.Fatal("scheduler stalled")
		}
		served[uint64(p.Flow)] += p.Size
		total += p.Size
	}
	ratio := float64(served[0]) / float64(served[1])
	if ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("byte service ratio %.2f (%d vs %d), want ~1", ratio, served[0], served[1])
	}
}

func TestDRRSkipsEmptyQueues(t *testing.T) {
	d := NewDRR(4, 1500, 0, nil)
	d.Push(0, classPkt(2, 800))
	if p := d.Pop(); p == nil || p.Flow != 2 {
		t.Fatal("did not serve the only backlogged class")
	}
	if d.Pop() != nil {
		t.Fatal("pop on empty DRR returned a packet")
	}
}

func TestDRRPerQueueLimit(t *testing.T) {
	d := NewDRR(1, 1500, 2000, nil)
	if !d.Push(0, classPkt(1, 1000)) || !d.Push(0, classPkt(1, 1000)) {
		t.Fatal("pushes within limit rejected")
	}
	if d.Push(0, classPkt(1, 1000)) {
		t.Fatal("push beyond the per-queue limit accepted")
	}
	if d.Dropped != 1 {
		t.Fatalf("Dropped = %d", d.Dropped)
	}
	if d.Bytes() != 2000 || d.Len() != 2 {
		t.Fatalf("accounting: %d bytes / %d pkts", d.Bytes(), d.Len())
	}
}

func TestDRRHashCollisionsShareOneQueue(t *testing.T) {
	// More classes than queues: colliding classes share a queue and hence
	// a single service share — the scaling limitation AQ removes.
	d := NewDRR(2, 1000, 0, func(p *packet.Packet) uint64 { return uint64(p.Flow) })
	// Classes 0 and 2 collide (mod 2), class 1 is alone.
	for i := 0; i < 30; i++ {
		d.Push(0, classPkt(0, 1000))
		d.Push(0, classPkt(2, 1000))
		d.Push(0, classPkt(1, 1000))
	}
	served := map[uint64]int{}
	for total := 0; total < 30000; {
		p := d.Pop()
		served[uint64(p.Flow)] += p.Size
		total += p.Size
	}
	// Queue {0,2} and queue {1} each get ~15000 bytes, so class 1 gets
	// about twice the service of class 0.
	if served[1] < served[0]+served[2]-2500 || served[1] > served[0]+served[2]+2500 {
		t.Fatalf("service: class0=%d class1=%d class2=%d", served[0], served[1], served[2])
	}
}

func TestDRRPeekDoesNotMutate(t *testing.T) {
	d := NewDRR(2, 1000, 0, nil)
	d.Push(0, classPkt(0, 900))
	d.Push(0, classPkt(1, 900))
	a := d.Peek()
	b := d.Peek()
	if a != b {
		t.Fatal("peek changed scheduler state")
	}
	if d.Len() != 2 {
		t.Fatal("peek consumed a packet")
	}
}

func TestDRRByteConservation(t *testing.T) {
	d := NewDRR(3, 700, 0, nil)
	pushed := 0
	for i := 0; i < 100; i++ {
		p := classPkt(uint64(i%7), 100+10*(i%9))
		if d.Push(0, p) {
			pushed += p.Size
		}
	}
	popped := 0
	for {
		p := d.Pop()
		if p == nil {
			break
		}
		popped += p.Size
	}
	if pushed != popped {
		t.Fatalf("pushed %d bytes, popped %d", pushed, popped)
	}
	if d.Bytes() != 0 || d.Len() != 0 {
		t.Fatal("non-empty after full drain")
	}
}
