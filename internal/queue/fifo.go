// Package queue implements the physical FIFO queue of a switch port: a
// byte-limited tail-drop buffer with an optional ECN marking threshold.
//
// This is the "physical queue" (PQ) of the paper's §2 — the baseline whose
// limitations AQ addresses. Packets are marked with CE at enqueue time when
// the instantaneous queue length exceeds the ECN threshold, which is the
// DCTCP-style marking the paper assumes.
package queue

import (
	"aqueue/internal/packet"
	"aqueue/internal/sim"
)

// FIFO is a byte-limited tail-drop FIFO with optional ECN marking.
// The zero value is not usable; use New.
type FIFO struct {
	limit   int // bytes; <=0 means unlimited
	ecnKB   int // ECN marking threshold in bytes; <=0 disables marking
	bytes   int
	packets ring

	// AQMDropNonECT selects NS3/RED-style AQM semantics: above the ECN
	// threshold, ECN-capable packets are marked while everything else is
	// dropped with a probability that ramps linearly from 0 at the
	// threshold to 1 at twice the threshold. The probabilistic ramp
	// desynchronizes competing loss-based flows, exactly as RED does. The
	// paper's simulation platform behaves this way (which is why DCTCP
	// dominates loss-based CC in a shared queue there), while its Tofino
	// testbed is a plain tail-drop queue with marking (which is why
	// loss-based CC builds deep queues in Table 4).
	AQMDropNonECT bool
	rng           *sim.Rand

	// Stats counters.
	Enqueued uint64
	Dropped  uint64
	Marked   uint64
	MaxBytes int
	DropHook func(*packet.Packet) // optional, observes drops
}

// FIFOStats is a snapshot of the queue's counters and occupancy, following
// the repo-wide stats convention (value type, no locks held).
type FIFOStats struct {
	Enqueued uint64 `json:"enqueued"`
	Dropped  uint64 `json:"dropped"`
	Marked   uint64 `json:"marked"`
	MaxBytes int    `json:"max_bytes"`
	Bytes    int    `json:"bytes"`
	Packets  int    `json:"packets"`
}

// Stats returns a snapshot of the queue counters and current occupancy.
func (q *FIFO) Stats() FIFOStats {
	return FIFOStats{
		Enqueued: q.Enqueued,
		Dropped:  q.Dropped,
		Marked:   q.Marked,
		MaxBytes: q.MaxBytes,
		Bytes:    q.bytes,
		Packets:  q.packets.len(),
	}
}

// New returns a FIFO with the given byte limit and ECN threshold (both in
// bytes). limit <= 0 means unlimited; ecnThreshold <= 0 disables marking.
// The AQM random stream starts from a fixed seed; owners that build many
// queues derive distinct per-queue seeds from their engine and install
// them with SetAQMSeed (process globals would make runs depend on what
// else ran before or concurrently in the process).
func New(limit, ecnThreshold int) *FIFO {
	return &FIFO{limit: limit, ecnKB: ecnThreshold, rng: sim.NewRand(0xA11CE)}
}

// SetAQMSeed reseeds the AQM drop/mark random stream. Call before any
// traffic flows through the queue.
func (q *FIFO) SetAQMSeed(seed uint64) { q.rng = sim.NewRand(seed) }

// Limit returns the configured byte limit (<=0 when unlimited).
func (q *FIFO) Limit() int { return q.limit }

// ECNThreshold returns the marking threshold in bytes (<=0 when disabled).
func (q *FIFO) ECNThreshold() int { return q.ecnKB }

// Len returns the number of queued packets.
func (q *FIFO) Len() int { return q.packets.len() }

// Bytes returns the queued bytes.
func (q *FIFO) Bytes() int { return q.bytes }

// Push enqueues p at time now. It returns false — and does not take
// ownership of p — when the byte limit would be exceeded (tail drop).
// When the post-enqueue occupancy exceeds the ECN threshold and the packet
// is ECN-capable, the CE codepoint is set.
func (q *FIFO) Push(now sim.Time, p *packet.Packet) bool {
	if q.limit > 0 && q.bytes+p.Size > q.limit {
		q.Dropped++
		if q.DropHook != nil {
			q.DropHook(p)
		}
		return false
	}
	if q.AQMDropNonECT && q.ecnKB > 0 && !p.EcnCapable && q.bytes+p.Size > q.ecnKB {
		// RED-style probabilistic drop for non-ECN-capable traffic: the
		// probability ramps from 0 at the threshold to 1 at twice the
		// threshold. ECN-capable traffic is marked on the same ramp below.
		prob := float64(q.bytes+p.Size-q.ecnKB) / float64(q.ecnKB)
		if prob >= 1 || q.rng.Float64() < prob {
			q.Dropped++
			if q.DropHook != nil {
				q.DropHook(p)
			}
			return false
		}
	}
	p.EnqueuedAt = now
	q.bytes += p.Size
	q.packets.push(p)
	q.Enqueued++
	if q.bytes > q.MaxBytes {
		q.MaxBytes = q.bytes
	}
	if q.ecnKB > 0 && q.bytes > q.ecnKB && p.EcnCapable {
		if q.AQMDropNonECT {
			// RED/ECN mode: mark on the same probability ramp the
			// non-ECT traffic is dropped on, so a mark and a drop signal
			// the same congestion level (a mark just costs far less —
			// the asymmetry that lets DCTCP dominate loss-based CC in a
			// shared queue, §2.2).
			prob := float64(q.bytes-q.ecnKB) / float64(q.ecnKB)
			if prob < 1 && q.rng.Float64() >= prob {
				return true
			}
		}
		p.CE = true
		q.Marked++
	}
	return true
}

// PopDrained removes the head entry without touching the packet it holds.
// A pipe running the virtual-transmitter fast path delivers packets
// downstream at enqueue time and drains the queue's accounting lazily; by
// then the head packet may already have been recycled, so the caller —
// which recorded the size at enqueue — supplies it instead of Pop reading
// a possibly-reused object.
func (q *FIFO) PopDrained(size int) {
	q.packets.pop()
	q.bytes -= size
}

// PopDrainedN is PopDrained for a whole burst: it removes the n head
// entries in one ring operation and subtracts their total size, which the
// caller accumulated while walking its started-transmission record.
func (q *FIFO) PopDrainedN(n, totalSize int) {
	q.packets.popN(n)
	q.bytes -= totalSize
}

// Pop dequeues the head packet, or returns nil when empty.
func (q *FIFO) Pop() *packet.Packet {
	p := q.packets.pop()
	if p != nil {
		q.bytes -= p.Size
	}
	return p
}

// Peek returns the head packet without removing it.
func (q *FIFO) Peek() *packet.Packet { return q.packets.peek() }

// ring is a growable circular buffer of packets; it avoids the per-element
// allocation and pointer-chasing of container/list on the hot path. The
// buffer length is always a power of two (16, doubled), so index wrap is a
// mask, not a divide.
type ring struct {
	buf        []*packet.Packet
	head, size int
}

func (r *ring) len() int { return r.size }

func (r *ring) push(p *packet.Packet) {
	if r.size == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.size)&(len(r.buf)-1)] = p
	r.size++
}

// popN discards the n head entries (n <= size) without reading them.
func (r *ring) popN(n int) {
	for i := 0; i < n; i++ {
		r.buf[r.head] = nil
		r.head = (r.head + 1) & (len(r.buf) - 1)
	}
	r.size -= n
}

func (r *ring) pop() *packet.Packet {
	if r.size == 0 {
		return nil
	}
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.size--
	return p
}

func (r *ring) peek() *packet.Packet {
	if r.size == 0 {
		return nil
	}
	return r.buf[r.head]
}

func (r *ring) grow() {
	n := len(r.buf) * 2
	if n == 0 {
		n = 16
	}
	buf := make([]*packet.Packet, n)
	for i := 0; i < r.size; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = buf
	r.head = 0
}
