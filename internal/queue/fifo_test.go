package queue

import (
	"testing"
	"testing/quick"

	"aqueue/internal/packet"
)

func data(size int) *packet.Packet {
	p := packet.NewData(1, 2, 1, 0, size-packet.HeaderBytes)
	return p
}

func TestFIFOOrder(t *testing.T) {
	q := New(0, 0)
	var pkts []*packet.Packet
	for i := 0; i < 100; i++ {
		p := data(100 + i)
		pkts = append(pkts, p)
		if !q.Push(0, p) {
			t.Fatalf("push %d failed on unlimited queue", i)
		}
	}
	for i := 0; i < 100; i++ {
		if got := q.Pop(); got != pkts[i] {
			t.Fatalf("pop %d returned wrong packet", i)
		}
	}
	if q.Pop() != nil {
		t.Fatal("pop on empty queue returned a packet")
	}
}

func TestFIFOTailDrop(t *testing.T) {
	q := New(1000, 0)
	a := data(600)
	b := data(600)
	if !q.Push(0, a) {
		t.Fatal("first push rejected")
	}
	if q.Push(0, b) {
		t.Fatal("push exceeding limit accepted")
	}
	if q.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", q.Dropped)
	}
	if q.Bytes() != 600 {
		t.Fatalf("Bytes = %d, want 600", q.Bytes())
	}
	// After draining, space frees up.
	q.Pop()
	if !q.Push(0, b) {
		t.Fatal("push after drain rejected")
	}
}

func TestFIFOECNMarking(t *testing.T) {
	q := New(0, 500)
	a := data(400)
	a.EcnCapable = true
	b := data(400)
	b.EcnCapable = true
	c := data(400) // not ECN-capable
	q.Push(0, a)
	if a.CE {
		t.Fatal("marked below threshold")
	}
	q.Push(0, b)
	if !b.CE {
		t.Fatal("not marked above threshold")
	}
	q.Push(0, c)
	if c.CE {
		t.Fatal("non-ECN-capable packet was marked")
	}
	if q.Marked != 1 {
		t.Fatalf("Marked = %d, want 1", q.Marked)
	}
}

func TestFIFOByteAccounting(t *testing.T) {
	// Property: Bytes() always equals the sum of sizes of queued packets,
	// and never exceeds the limit.
	f := func(ops []uint8) bool {
		q := New(5000, 0)
		var queued []int
		sum := 0
		for _, op := range ops {
			if op%3 == 0 && len(queued) > 0 {
				p := q.Pop()
				if p.Size != queued[0] {
					return false
				}
				sum -= queued[0]
				queued = queued[1:]
			} else {
				size := 41 + int(op)
				p := data(size)
				if q.Push(0, p) {
					queued = append(queued, size)
					sum += size
				}
			}
			if q.Bytes() != sum || q.Len() != len(queued) {
				return false
			}
			if q.Bytes() > 5000 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFIFOPeek(t *testing.T) {
	q := New(0, 0)
	if q.Peek() != nil {
		t.Fatal("peek on empty returned a packet")
	}
	p := data(100)
	q.Push(0, p)
	if q.Peek() != p {
		t.Fatal("peek returned wrong packet")
	}
	if q.Len() != 1 {
		t.Fatal("peek removed the packet")
	}
}

func TestFIFOMaxBytesHighWater(t *testing.T) {
	q := New(0, 0)
	q.Push(0, data(100))
	q.Push(0, data(200))
	q.Pop()
	q.Pop()
	if q.MaxBytes != 300 {
		t.Fatalf("MaxBytes = %d, want 300", q.MaxBytes)
	}
}

func TestFIFOPopDrainedIgnoresRecycledHead(t *testing.T) {
	q := New(0, 0)
	a := data(100)
	b := data(200)
	q.Push(0, a)
	q.Push(0, b)
	// The drain contract: the caller recorded the size at enqueue time, and
	// the head object may have been recycled since. PopDrained must account
	// with the supplied size, never by reading the (possibly reused) packet.
	a.Size = 9999
	q.PopDrained(100)
	if q.Len() != 1 || q.Bytes() != 200 {
		t.Fatalf("after drain: len=%d bytes=%d, want 1/200", q.Len(), q.Bytes())
	}
	if q.Peek() != b {
		t.Fatal("drain removed the wrong entry")
	}
	q.PopDrained(200)
	if q.Len() != 0 || q.Bytes() != 0 {
		t.Fatalf("after full drain: len=%d bytes=%d, want 0/0", q.Len(), q.Bytes())
	}
	if q.Pop() != nil {
		t.Fatal("pop on fully drained queue returned a packet")
	}
}

func TestFIFOPopDrainedInterleavesWithPop(t *testing.T) {
	// Drains and pops can alternate (the pipe drains lazily, stats code
	// pops); byte accounting must stay exact either way.
	q := New(0, 0)
	sizes := []int{100, 200, 300, 400}
	for _, s := range sizes {
		q.Push(0, data(s))
	}
	q.PopDrained(100)
	if got := q.Pop(); got == nil || got.Size != 200 {
		t.Fatalf("pop after drain returned size %v, want 200", got)
	}
	q.PopDrained(300)
	if q.Len() != 1 || q.Bytes() != 400 {
		t.Fatalf("len=%d bytes=%d, want 1/400", q.Len(), q.Bytes())
	}
}

func TestRingGrowthPreservesOrder(t *testing.T) {
	q := New(0, 0)
	// Interleave pushes and pops so head moves, then force growth.
	for i := 0; i < 8; i++ {
		q.Push(0, data(100))
	}
	for i := 0; i < 5; i++ {
		q.Pop()
	}
	var want []*packet.Packet
	want = append(want, q.Peek())
	for i := 0; i < 40; i++ {
		p := data(50 + i)
		want = append(want, p)
		q.Push(0, p)
	}
	// Drain remaining pre-growth packets first.
	q.Pop() // the peeked one
	q.Pop()
	q.Pop()
	for i := 1; i < len(want); i++ {
		if got := q.Pop(); got != want[i] {
			t.Fatalf("order broken after growth at %d", i)
		}
	}
}
