package queue

import (
	"aqueue/internal/packet"
	"aqueue/internal/sim"
)

// Interface is the behaviour a switch-port scheduler must provide; FIFO
// (the paper's physical queue) and DRR (the per-flow-queue alternative of
// §7's related work) both implement it.
type Interface interface {
	// Push enqueues at time now; false reports a drop (ownership stays
	// with the caller).
	Push(now sim.Time, p *packet.Packet) bool
	// Pop dequeues the next scheduled packet, or nil.
	Pop() *packet.Packet
	// Peek returns the next packet without dequeuing.
	Peek() *packet.Packet
	// Bytes is the total queued bytes.
	Bytes() int
	// Len is the total queued packets.
	Len() int
}

var _ Interface = (*FIFO)(nil)
var _ Interface = (*DRR)(nil)

// Classifier maps a packet to a service-class key (an entity, a flow, ...).
type Classifier func(*packet.Packet) uint64

// DRR is a deficit-round-robin fair scheduler over a fixed number of
// hardware queues [54]: packets are classified to a class, classes are
// hashed onto the available queues, and the queues are served round-robin
// with a per-visit quantum. It models the "per-flow queue" alternative the
// paper's related work discusses: fair as long as the number of traffic
// constituents does not exceed the number of physical queues — and hash-
// collided beyond that, which is exactly AQ's scaling argument.
type DRR struct {
	queues   []drrQueue
	quantum  int
	perQ     int // byte limit per queue
	classify Classifier
	bytes    int
	count    int
	next     int  // round-robin position
	charged  bool // whether the current queue received its quantum this visit

	// Dropped counts per-queue tail drops.
	Dropped uint64
}

type drrQueue struct {
	fifo    ring
	bytes   int
	deficit int
}

// NewDRR builds a scheduler with n hardware queues of perQueueLimit bytes
// each, serving quantum bytes per visit. classify assigns packets to
// classes; nil classifies by flow ID.
func NewDRR(n, quantum, perQueueLimit int, classify Classifier) *DRR {
	if n < 1 {
		n = 1
	}
	if quantum <= 0 {
		quantum = packet.MaxDataBytes
	}
	if classify == nil {
		classify = func(p *packet.Packet) uint64 { return uint64(p.Flow) }
	}
	return &DRR{
		queues:   make([]drrQueue, n),
		quantum:  quantum,
		perQ:     perQueueLimit,
		classify: classify,
	}
}

// NumQueues returns the hardware queue count.
func (d *DRR) NumQueues() int { return len(d.queues) }

// Push implements Interface.
func (d *DRR) Push(now sim.Time, p *packet.Packet) bool {
	q := &d.queues[d.classify(p)%uint64(len(d.queues))]
	if d.perQ > 0 && q.bytes+p.Size > d.perQ {
		d.Dropped++
		return false
	}
	p.EnqueuedAt = now
	q.fifo.push(p)
	q.bytes += p.Size
	d.bytes += p.Size
	d.count++
	return true
}

// Pop implements Interface: serve the current queue while its deficit
// covers its head packet; otherwise recharge the next non-empty queue.
func (d *DRR) Pop() *packet.Packet {
	if d.count == 0 {
		return nil
	}
	n := len(d.queues)
	advance := func() {
		d.next = (d.next + 1) % n
		d.charged = false
	}
	// Deficits grow by one quantum per visit, so the scheduler is
	// guaranteed to serve within ceil(maxPacket/quantum) full rounds; the
	// bound below is a defensive cap far above that.
	for scanned := 0; scanned < 64*n+64; scanned++ {
		q := &d.queues[d.next]
		head := q.fifo.peek()
		if head == nil {
			q.deficit = 0
			advance()
			continue
		}
		if !d.charged {
			// One quantum per round-robin visit (classic DRR).
			q.deficit += d.quantum
			d.charged = true
		}
		if q.deficit >= head.Size {
			q.deficit -= head.Size
			q.fifo.pop()
			q.bytes -= head.Size
			d.bytes -= head.Size
			d.count--
			return head
		}
		advance()
	}
	return nil
}

// Peek implements Interface (the next packet the scheduler would serve).
func (d *DRR) Peek() *packet.Packet {
	if d.count == 0 {
		return nil
	}
	// Peek must not mutate scheduler state; report the head of the next
	// non-empty queue in round-robin order.
	n := len(d.queues)
	for i := 0; i < n; i++ {
		if head := d.queues[(d.next+i)%n].fifo.peek(); head != nil {
			return head
		}
	}
	return nil
}

// Bytes implements Interface.
func (d *DRR) Bytes() int { return d.bytes }

// Len implements Interface.
func (d *DRR) Len() int { return d.count }
