package trace_test

import (
	"testing"

	"aqueue/internal/cc"
	"aqueue/internal/core"
	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/topo"
	"aqueue/internal/trace"
	"aqueue/internal/transport"
	"aqueue/internal/units"
)

// TestTraceAQDropsEndToEnd attaches the ring to a switch's AQ-drop hook
// and a host's receive hook and reconstructs one flow's timeline.
func TestTraceAQDropsEndToEnd(t *testing.T) {
	eng := sim.NewEngine()
	spec := topo.DefaultSim()
	d := topo.NewDumbbell(eng, 1, 1, spec, spec)
	d.S1.Ingress.Deploy(core.Config{ID: 1, Rate: 1 * units.Gbps, Limit: 30_000})

	ring := trace.NewRing(4096)
	d.S1.AQDropHook = func(p *packet.Packet) {
		ring.Add(trace.FromPacket(eng.Now(), trace.AQDrop, p, "S1/ingress"))
	}
	d.Right[0].RxHook = func(p *packet.Packet) {
		if p.Kind == packet.Data {
			ring.Add(trace.FromPacket(eng.Now(), trace.Recv, p, "host"))
		}
	}

	s := transport.NewSender(d.Left[0], d.Right[0], 0, cc.NewCubic(),
		transport.Options{IngressAQ: 1})
	s.Start(0)
	eng.RunUntil(30 * sim.Millisecond)
	s.Stop()

	events := ring.Filter(s.Flow())
	if len(events) == 0 {
		t.Fatal("no events traced")
	}
	drops, recvs := 0, 0
	last := sim.Time(-1)
	for _, e := range events {
		if e.At < last {
			t.Fatal("trace out of order")
		}
		last = e.At
		switch e.Kind {
		case trace.AQDrop:
			drops++
			if e.Where != "S1/ingress" {
				t.Fatalf("drop located at %q", e.Where)
			}
		case trace.Recv:
			recvs++
		}
	}
	if drops == 0 {
		t.Fatal("a 1 Gbps AQ under a CUBIC flow must drop")
	}
	if recvs == 0 {
		t.Fatal("no deliveries traced")
	}
}

// TestSinkWiringEndToEnd attaches one ring through the SetTrace plumbing —
// hosts for the send/recv endpoints, the switch for its AQ pipelines — and
// checks every event class shows up exactly where it was emitted.
func TestSinkWiringEndToEnd(t *testing.T) {
	eng := sim.NewEngine()
	spec := topo.DefaultSim()
	d := topo.NewDumbbell(eng, 1, 1, spec, spec)
	d.S1.Ingress.Deploy(core.Config{
		ID: 1, Rate: 1 * units.Gbps, Limit: 30_000,
		CC: core.ECNType, ECNThreshold: 10_000,
	})

	ring := trace.NewRing(8192)
	d.Left[0].SetTrace(ring)
	d.Right[0].SetTrace(ring)
	d.S1.SetTrace(ring)

	s := transport.NewSender(d.Left[0], d.Right[0], 0, cc.NewCubic(),
		transport.Options{IngressAQ: 1, EcnCapable: true})
	s.Start(0)
	eng.RunUntil(30 * sim.Millisecond)
	s.Stop()

	counts := map[trace.Kind]int{}
	// Both endpoints emit Send events for the one flow (data from host 0,
	// ACKs from host 1), so locations are checked per (kind, where) rather
	// than by whichever event happened to be traced last.
	at := map[trace.Kind]map[string]int{}
	for _, e := range ring.Filter(s.Flow()) {
		counts[e.Kind]++
		if at[e.Kind] == nil {
			at[e.Kind] = map[string]int{}
		}
		at[e.Kind][e.Where]++
	}
	if at[trace.Send]["host:0"] == 0 {
		t.Fatalf("sends: %v, want >0 at host:0", at[trace.Send])
	}
	if counts[trace.Recv] == 0 {
		t.Fatalf("no deliveries traced")
	}
	if at[trace.AQMark]["S1:ingress"] == 0 || len(at[trace.AQMark]) != 1 {
		t.Fatalf("marks: %v, want >0 at S1:ingress only", at[trace.AQMark])
	}
	if counts[trace.Send] < counts[trace.Recv] {
		t.Fatalf("more deliveries (%d) than sends (%d)", counts[trace.Recv], counts[trace.Send])
	}

	// Detach: the components must go quiet.
	d.Left[0].SetTrace(nil)
	d.Right[0].SetTrace(nil)
	d.S1.SetTrace(nil)
	before := ring.Recorded
	s2 := transport.NewSender(d.Left[0], d.Right[0], 0, cc.NewCubic(),
		transport.Options{IngressAQ: 1})
	s2.Start(0)
	eng.RunUntil(eng.Now() + 5*sim.Millisecond)
	if ring.Recorded != before {
		t.Fatalf("detached components recorded %d events", ring.Recorded-before)
	}

	// Nop swallows everything without touching the ring.
	trace.Nop.Record(trace.Event{Kind: trace.Send})
}
