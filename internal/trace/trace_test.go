package trace

import (
	"strings"
	"testing"

	"aqueue/internal/packet"
)

func TestRingRetention(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 3; i++ {
		r.Add(Event{Seq: int64(i)})
	}
	if r.Len() != 3 || r.Recorded != 3 {
		t.Fatalf("len=%d recorded=%d", r.Len(), r.Recorded)
	}
	got := r.Events()
	for i, e := range got {
		if e.Seq != int64(i) {
			t.Fatalf("order broken: %v", got)
		}
	}
}

func TestRingWrapsOldestFirst(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Add(Event{Seq: int64(i)})
	}
	if r.Len() != 4 || r.Recorded != 10 {
		t.Fatalf("len=%d recorded=%d", r.Len(), r.Recorded)
	}
	got := r.Events()
	want := []int64{6, 7, 8, 9}
	for i := range want {
		if got[i].Seq != want[i] {
			t.Fatalf("wrapped order = %v", got)
		}
	}
}

func TestRingFilter(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 12; i++ {
		r.Add(Event{Flow: packet.FlowID(i % 3), Seq: int64(i)})
	}
	f1 := r.Filter(1)
	if len(f1) != 4 {
		t.Fatalf("flow 1 events = %d", len(f1))
	}
	for _, e := range f1 {
		if e.Flow != 1 {
			t.Fatal("filter leaked other flows")
		}
	}
}

func TestWriteCSV(t *testing.T) {
	r := NewRing(8)
	p := packet.NewData(1, 2, 9, 3000, 1000)
	r.Add(FromPacket(12345, AQDrop, p, "S1/ingress"))
	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "aq-drop") || !strings.Contains(out, "S1/ingress") {
		t.Fatalf("csv = %q", out)
	}
	lines := strings.Count(out, "\n")
	if lines != 2 { // header + one event
		t.Fatalf("csv has %d lines", lines)
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		Send: "send", Recv: "recv", AQDrop: "aq-drop", AQMark: "aq-mark", QueueDrop: "q-drop",
	} {
		if k.String() != want {
			t.Fatalf("%d = %q", k, k.String())
		}
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Fatal("unknown kind string")
	}
}

func TestRingString(t *testing.T) {
	r := NewRing(2)
	r.Add(Event{})
	if !strings.Contains(r.String(), "1 retained") {
		t.Fatalf("String() = %q", r.String())
	}
}
