// Package trace provides lightweight observability for simulation runs:
// a bounded in-memory event ring the harness can attach to hosts, switches
// and AQs, plus per-flow record export. It is the debugging substrate the
// repository's own development used; experiments keep it detached unless
// asked, so the hot path stays allocation-free.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"aqueue/internal/packet"
	"aqueue/internal/sim"
)

// Kind classifies trace events.
type Kind uint8

// Event kinds.
const (
	Send Kind = iota
	Recv
	AQDrop
	AQMark
	QueueDrop
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Send:
		return "send"
	case Recv:
		return "recv"
	case AQDrop:
		return "aq-drop"
	case AQMark:
		return "aq-mark"
	case QueueDrop:
		return "q-drop"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one recorded occurrence.
type Event struct {
	At    sim.Time
	Kind  Kind
	Flow  packet.FlowID
	Src   packet.HostID
	Dst   packet.HostID
	Seq   int64
	Size  int
	Where string
}

// Sink consumes trace events. Hosts, switches and AQ tables accept a Sink
// via their SetTrace methods and emit into it on the hot path behind a nil
// check, so detached components pay one branch per packet and nothing else.
type Sink interface {
	Record(Event)
}

// Nop is a Sink that discards every event. Use it to keep trace wiring in
// place (e.g. in a table-driven test) while recording nothing.
var Nop Sink = nopSink{}

type nopSink struct{}

func (nopSink) Record(Event) {}

// Ring is a bounded event buffer: when full, the oldest events are
// overwritten, so attaching it to a long run keeps the tail.
type Ring struct {
	buf     []Event
	next    int
	wrapped bool

	// Recorded counts all events ever offered, including overwritten ones.
	Recorded uint64
}

// NewRing returns a ring holding up to n events.
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1024
	}
	return &Ring{buf: make([]Event, n)}
}

// Record implements Sink.
func (r *Ring) Record(e Event) { r.Add(e) }

// Add records an event.
func (r *Ring) Add(e Event) {
	r.buf[r.next] = e
	r.next++
	r.Recorded++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrapped = true
	}
}

// Len returns the number of retained events.
func (r *Ring) Len() int {
	if r.wrapped {
		return len(r.buf)
	}
	return r.next
}

// Events returns the retained events oldest-first.
func (r *Ring) Events() []Event {
	if !r.wrapped {
		out := make([]Event, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Filter returns the retained events of one flow, oldest-first.
func (r *Ring) Filter(flow packet.FlowID) []Event {
	var out []Event
	for _, e := range r.Events() {
		if e.Flow == flow {
			out = append(out, e)
		}
	}
	return out
}

// WriteCSV dumps the retained events as CSV.
func (r *Ring) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t_ns", "kind", "flow", "src", "dst", "seq", "size", "where"}); err != nil {
		return err
	}
	for _, e := range r.Events() {
		rec := []string{
			strconv.FormatInt(int64(e.At), 10),
			e.Kind.String(),
			strconv.FormatUint(uint64(e.Flow), 10),
			strconv.Itoa(int(e.Src)),
			strconv.Itoa(int(e.Dst)),
			strconv.FormatInt(e.Seq, 10),
			strconv.Itoa(e.Size),
			e.Where,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// String summarizes the ring.
func (r *Ring) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace.Ring{%d retained, %d recorded}", r.Len(), r.Recorded)
	return b.String()
}

// LockedSink serializes Record calls into a Ring with a mutex. Attach it
// in place of the Ring when emitters live on multiple goroutines — hosts
// in different simulation domains under parallel cluster execution —
// where bare Ring appends would race. Per-emitter event order is
// preserved, but the cross-goroutine interleaving in the ring is whatever
// the scheduler produced: the ring is a debugging aid, never part of a
// fingerprint. Reads still go through the wrapped Ring directly and are
// safe only while the emitting goroutines are parked (between cluster
// rounds), which is when the service reads it.
type LockedSink struct {
	mu   sync.Mutex
	ring *Ring
}

// NewLockedSink wraps r.
func NewLockedSink(r *Ring) *LockedSink { return &LockedSink{ring: r} }

// Record implements Sink.
func (l *LockedSink) Record(e Event) {
	l.mu.Lock()
	l.ring.Add(e)
	l.mu.Unlock()
}

// FromPacket builds an event from a packet at a location.
func FromPacket(at sim.Time, k Kind, p *packet.Packet, where string) Event {
	return Event{
		At: at, Kind: k, Flow: p.Flow, Src: p.Src, Dst: p.Dst,
		Seq: p.Seq, Size: p.Size, Where: where,
	}
}
