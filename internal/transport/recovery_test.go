package transport

import (
	"testing"
	"testing/quick"

	"aqueue/internal/cc"
	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/topo"
	"aqueue/internal/units"
)

// lossyFilter drops data packets pseudo-randomly at the given rate,
// injecting loss upstream of the whole network.
func lossyFilter(h *topo.Host, rate float64, seed uint64) *uint64 {
	r := sim.NewRand(seed)
	var dropped uint64
	h.Filter = func(p *packet.Packet) bool {
		if p.Kind == packet.Data && r.Float64() < rate {
			dropped++
			return true
		}
		return false
	}
	return &dropped
}

func TestRecoveryUnderRandomLoss(t *testing.T) {
	// 10% random loss: the flow must still deliver the exact byte stream.
	eng := sim.NewEngine()
	d := topo.NewDumbbell(eng, 1, 1, topo.DefaultSim(), topo.DefaultSim())
	dropped := lossyFilter(d.Left[0], 0.10, 42)
	s := NewSender(d.Left[0], d.Right[0], 500_000, cc.NewNewReno(), Options{})
	s.Start(0)
	eng.RunUntil(5 * sim.Second)
	if !s.Done() {
		t.Fatalf("flow did not complete under 10%% loss (acked %d)", s.AckedBytes())
	}
	if s.Receiver().Delivered != 500_000 {
		t.Fatalf("delivered %d bytes, want 500000", s.Receiver().Delivered)
	}
	if *dropped == 0 {
		t.Fatal("loss injector never fired")
	}
	if s.Retransmits == 0 {
		t.Fatal("no retransmissions under loss")
	}
}

func TestRecoveryPropertyAnyLossRate(t *testing.T) {
	// Property: for any loss rate in [0, 35%] and any seed, a small flow
	// completes with exact delivery.
	f := func(seed uint16, ratePct uint8) bool {
		rate := float64(ratePct%36) / 100
		eng := sim.NewEngine()
		d := topo.NewDumbbell(eng, 1, 1, topo.DefaultSim(), topo.DefaultSim())
		lossyFilter(d.Left[0], rate, uint64(seed)+1)
		s := NewSender(d.Left[0], d.Right[0], 60_000, cc.NewNewReno(), Options{})
		s.Start(0)
		eng.RunUntil(20 * sim.Second)
		return s.Done() && s.Receiver().Delivered == 60_000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestBlackholeRecoversViaRTO(t *testing.T) {
	// Total blackhole for the first 5 ms, then the path heals: the sender
	// must survive on its RTO with exponential backoff and finish.
	eng := sim.NewEngine()
	d := topo.NewDumbbell(eng, 1, 1, topo.DefaultSim(), topo.DefaultSim())
	blackhole := true
	d.Left[0].Filter = func(p *packet.Packet) bool {
		return blackhole && p.Kind == packet.Data
	}
	eng.At(5*sim.Millisecond, func() { blackhole = false })
	s := NewSender(d.Left[0], d.Right[0], 50_000, cc.NewCubic(), Options{})
	s.Start(0)
	eng.RunUntil(2 * sim.Second)
	if !s.Done() {
		t.Fatalf("flow did not recover from blackhole (timeouts=%d)", s.Timeouts)
	}
	if s.Timeouts == 0 {
		t.Fatal("expected RTO firings during the blackhole")
	}
}

func TestStopHaltsLongFlow(t *testing.T) {
	eng := sim.NewEngine()
	d := topo.NewDumbbell(eng, 1, 1, topo.DefaultSim(), topo.DefaultSim())
	s := NewSender(d.Left[0], d.Right[0], 0, cc.NewCubic(), Options{})
	s.Start(0)
	eng.RunUntil(10 * sim.Millisecond)
	s.Stop()
	sent := s.SentPackets
	eng.RunUntil(30 * sim.Millisecond)
	if s.SentPackets != sent {
		t.Fatal("sender kept transmitting after Stop")
	}
}

func TestReceiveWindowBoundsOutstanding(t *testing.T) {
	// A blackholed ACK path means cumAck never advances; the sender must
	// stop at the receive window, not run away.
	eng := sim.NewEngine()
	d := topo.NewDumbbell(eng, 1, 1, topo.DefaultSim(), topo.DefaultSim())
	d.Right[0].Filter = func(p *packet.Packet) bool { return p.Kind == packet.Ack }
	s := NewSender(d.Left[0], d.Right[0], 0, cc.NewCubic(), Options{})
	s.Start(0)
	eng.RunUntil(300 * sim.Millisecond)
	if s.nextSeq > rwndBytes {
		t.Fatalf("sender ran %d bytes past a dead cumAck (rwnd %d)", s.nextSeq, rwndBytes)
	}
}

func TestSwiftFractionalWindowPacing(t *testing.T) {
	// Force Swift into cwnd < 1 via an overloaded shared link, then verify
	// it keeps transmitting slowly (paced) instead of stalling.
	eng := sim.NewEngine()
	d := topo.NewDumbbell(eng, 2, 2, topo.DefaultSim(), topo.DefaultSim())
	u := NewUDPSender(d.Left[0], d.Right[0], 10*units.Gbps, Options{})
	u.Start(0)
	s := NewSender(d.Left[1], d.Right[1], 0, cc.NewSwiftTarget(20*sim.Microsecond), Options{})
	s.Start(0)
	eng.RunUntil(200 * sim.Millisecond)
	if w := s.Algorithm().Cwnd(); w >= 1 {
		t.Fatalf("Swift cwnd = %v under UDP blast, want fractional", w)
	}
	if s.AckedBytes() == 0 {
		t.Fatal("paced Swift stalled entirely")
	}
	u.Stop()
	s.Stop()
}

func TestScoreboardPipeNeverNegative(t *testing.T) {
	// Property: under random loss the pipe estimate stays within sane
	// bounds for the whole run.
	eng := sim.NewEngine()
	d := topo.NewDumbbell(eng, 1, 1, topo.DefaultSim(), topo.DefaultSim())
	lossyFilter(d.Left[0], 0.2, 7)
	s := NewSender(d.Left[0], d.Right[0], 300_000, cc.NewCubic(), Options{})
	s.Start(0)
	for ms := 1; ms < 3000 && !s.Done(); ms++ {
		eng.RunUntil(sim.Time(ms) * sim.Millisecond)
		if s.pipe < 0 {
			t.Fatalf("pipe went negative at %dms", ms)
		}
		if got := int64(s.pipe) * int64(s.opt.MSS); got > s.nextSeq-s.cumAck+int64(s.opt.MSS) {
			t.Fatalf("pipe %d exceeds outstanding bytes", s.pipe)
		}
	}
	if !s.Done() {
		t.Fatal("flow did not complete")
	}
}
