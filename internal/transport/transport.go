// Package transport implements the packet-level reliable transport the
// experiments run over, with a pluggable congestion-control algorithm
// (internal/cc), plus a constant-bit-rate UDP sender for the non-reactive
// entities of §5.2/§5.3.
//
// The transport is deliberately TCP-shaped but simplified to what the
// paper's experiments exercise: cumulative ACKs (one per data segment),
// SACK-based loss recovery in the style of RFC 6675 (the receiver echoes
// the sequence of the segment that triggered each ACK; the sender keeps a
// scoreboard and pipe estimate), an RTO with exponential backoff,
// per-packet ECN echo, and sender pacing when the window is fractional
// (Swift's cwnd < 1 regime).
package transport

import (
	"aqueue/internal/cc"
	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/topo"
)

// NextFlowID returns a fresh flow identifier scoped to the given engine.
// Flows only need to be unique within one simulation; deriving them from
// the engine (rather than a process global) keeps every run deterministic
// even when many runs execute concurrently in the same process.
//
// Senders themselves draw through topo.Host.NextFlowID instead: the host
// holds a pre-registered handle for this same sequence (no per-flow string
// map probe) and, in cluster-built topologies, a partition-invariant
// stride allocation. This shim remains for callers that only have an
// engine.
func NextFlowID(eng *sim.Engine) packet.FlowID {
	return packet.FlowID(eng.NextSeq("transport.flow"))
}

// Options configures a sender beyond its CC algorithm.
type Options struct {
	// MSS is the payload bytes per segment; zero selects packet.DefaultMSS.
	MSS int
	// EcnCapable marks data packets ECT so queues and ECN-type AQs may
	// mark them. Set for DCTCP entities.
	EcnCapable bool
	// IngressAQ and EgressAQ are the AQ tags stamped on data packets
	// (§4.1: the hypervisor tags packets with granted AQ IDs).
	IngressAQ packet.AQID
	EgressAQ  packet.AQID
	// RTOMin floors the retransmission timeout; zero selects 1 ms.
	RTOMin sim.Time
}

const (
	defaultRTOMin = sim.Millisecond
	rtoMax        = 100 * sim.Millisecond
	dupAckThresh  = 3
	// rwndBytes models the receive window: the sender never runs more than
	// this many bytes past the cumulative ACK, exactly as flow control
	// bounds a real TCP sender.
	rwndBytes = 2 * 1000 * 1000
)

// Scoreboard segment states. A zero entry means "sent and presumed in
// flight" for sequences in [cumAck, nextSeq).
const (
	stSacked uint8 = iota + 1 // acknowledged out of order
	stLost                    // presumed lost, queued for retransmission
	stRetx                    // retransmitted, in flight again
)

// Sender is the sending half of a reliable flow. Create with NewSender,
// then call Start.
type Sender struct {
	eng  *sim.Engine
	pool *packet.Pool
	src  *topo.Host
	dst  *topo.Host
	flow packet.FlowID
	alg  cc.Algorithm
	opt  Options

	size    int64 // flow size in bytes; 0 means long-lived
	nextSeq int64
	cumAck  int64
	dupacks int

	// Loss-event gating for the CC (RFC 6582 "recover" semantics): one
	// window reduction per loss event.
	inRecovery bool
	recoverSeq int64

	// SACK scoreboard: per-segment states for [sbBase, sbBase+len(sb)*MSS),
	// kept in a power-of-two ring indexed by segment offset. Every ACK
	// touches the scoreboard two or three times even on a clean path, so
	// this is a ring of bytes rather than a map — no hashing, no buckets.
	// sbBase advances by whole segments as cumAck moves (sbGet treats
	// anything below it as absent, which matches the deleted map entries).
	sb       []uint8
	sbBase   int64
	sbHead   int
	rtxQ     []int64
	pipe     int   // segments believed to be in the network
	lossScan int64 // sequences below this are classified
	fack     int64 // highest SACKed edge

	srtt, rttvar, minRTT sim.Time
	rto                  sim.Time
	rtoT                 *sim.Timer
	rtoPending           bool
	rtoDeadline          sim.Time // the time the RTO actually expires
	backoff              uint
	frontRetxAt          sim.Time // when the front hole was last retransmitted

	// Pacing state. nextPaced gates sends both in the fractional-window
	// regime (one segment per RTT/cwnd) and in the normal regime, where
	// segments are released at 1.25x cwnd/srtt like Linux's fair-queue
	// pacing — without it, window growth injects line-rate bursts that no
	// real NIC stack produces.
	nextPaced sim.Time
	pacedT    *sim.Timer

	done bool
	// OnComplete, when set, fires once when the last byte is acked.
	OnComplete func(now sim.Time)

	// trySendFn is the method value the start timer fires; cached once so
	// arming allocates no closure. The RTO and pacing timers carry their
	// callbacks in the Timer handle itself.
	trySendFn func()

	// Counters for tests and reports.
	SentPackets  uint64
	Retransmits  uint64
	Timeouts     uint64
	FastRecovers uint64

	receiver *Receiver
	startT   *sim.Timer
}

// NewSender wires a flow from src to dst carrying size bytes (0 = long
// lived) under the given CC algorithm, and installs the matching receiver
// on dst. The flow does not transmit until Start is called.
func NewSender(src, dst *topo.Host, size int64, alg cc.Algorithm, opt Options) *Sender {
	if opt.MSS == 0 {
		opt.MSS = packet.DefaultMSS
	}
	if opt.RTOMin == 0 {
		opt.RTOMin = defaultRTOMin
	}
	s := &Sender{
		eng:  src.Engine(),
		pool: packet.PoolFor(src.Engine()),
		src:  src,
		dst:  dst,
		flow: src.NextFlowID(),
		alg:  alg,
		opt:  opt,
		size: size,
		rto:  10 * sim.Millisecond,
	}
	s.trySendFn = s.trySend
	// All three flow timers live on the engine's wheel lane: re-arming on
	// every ACK or pacing gate is O(1) and a cancelled timer leaves no
	// tombstone behind for the event heap to churn through.
	s.rtoT = s.eng.NewTimer(s.onTimeout)
	s.pacedT = s.eng.NewTimer(s.trySendFn)
	s.startT = s.eng.NewTimer(s.trySendFn)
	s.receiver = newReceiver(s)
	src.Register(s.flow, s)
	dst.Register(s.flow, s.receiver)
	return s
}

// Flow returns the flow identifier.
func (s *Sender) Flow() packet.FlowID { return s.flow }

// Algorithm returns the CC algorithm instance driving this flow.
func (s *Sender) Algorithm() cc.Algorithm { return s.alg }

// Done reports whether the whole flow has been acknowledged.
func (s *Sender) Done() bool { return s.done }

// AckedBytes returns the cumulatively acknowledged bytes.
func (s *Sender) AckedBytes() int64 { return s.cumAck }

// Receiver returns the receiving half (for delivered-byte accounting).
func (s *Sender) Receiver() *Receiver { return s.receiver }

// SRTT exposes the smoothed RTT (for tests).
func (s *Sender) SRTT() sim.Time { return s.srtt }

// Start schedules the first transmission after the given delay.
func (s *Sender) Start(after sim.Time) {
	s.startT.ArmAfter(after)
}

// Stop halts a long-lived flow: timers are disarmed and the handlers
// unregistered.
func (s *Sender) Stop() {
	s.done = true
	s.rtoT.Disarm()
	s.pacedT.Disarm()
	s.startT.Disarm()
	s.src.Unregister(s.flow)
	s.dst.Unregister(s.flow)
}

// remaining reports whether there are new bytes left to send within the
// receive window.
func (s *Sender) remaining() bool {
	if s.nextSeq-s.cumAck >= rwndBytes {
		return false
	}
	return s.size == 0 || s.nextSeq < s.size
}

// segPayload returns the payload length of the segment starting at seq.
func (s *Sender) segPayload(seq int64) int {
	if s.size == 0 {
		return s.opt.MSS
	}
	left := s.size - seq
	if left > int64(s.opt.MSS) {
		return s.opt.MSS
	}
	return int(left)
}

// trySend transmits retransmissions first, then new segments, while the
// pipe estimate stays under the congestion window.
func (s *Sender) trySend() {
	if s.done {
		return
	}
	w := s.alg.Cwnd()
	if w >= 1 {
		now := s.eng.Now()
		for float64(s.pipe) < w {
			if now < s.nextPaced {
				// nextPaced only moves forward, so an already-armed pacing
				// timer can only be early: let it fire and re-check rather
				// than paying a re-arm on every gated attempt.
				if !s.pacedT.Pending() {
					s.pacedT.Rearm(s.nextPaced)
				}
				return
			}
			var sent int
			if seq, ok := s.popRtx(); ok {
				s.sendSegment(seq, true)
				sent = s.segPayload(seq) + packet.HeaderBytes
			} else if s.remaining() {
				sent = s.segPayload(s.nextSeq) + packet.HeaderBytes
				s.sendSegment(s.nextSeq, false)
				s.nextSeq += int64(s.segPayload(s.nextSeq))
			} else {
				return
			}
			if d := s.paceDelay(sent, w); d > 0 {
				s.nextPaced = now + d
			}
		}
		return
	}
	// Fractional window: at most one segment in flight, paced at one
	// segment every RTT/cwnd.
	if s.pipe > 0 {
		return
	}
	now := s.eng.Now()
	if now < s.nextPaced {
		if !s.pacedT.Pending() {
			s.pacedT.Rearm(s.nextPaced)
		}
		return
	}
	if seq, ok := s.popRtx(); ok {
		s.sendSegment(seq, true)
	} else if s.remaining() {
		s.sendSegment(s.nextSeq, false)
		s.nextSeq += int64(s.segPayload(s.nextSeq))
	} else {
		return
	}
	rtt := s.srtt
	if rtt <= 0 {
		rtt = 100 * sim.Microsecond
	}
	s.nextPaced = now + sim.Time(float64(rtt)/w)
}

// paceDelay returns the inter-segment spacing at 1.25x the cwnd/srtt rate,
// or 0 before an RTT estimate exists.
func (s *Sender) paceDelay(sizeBytes int, w float64) sim.Time {
	if s.srtt <= 0 {
		return 0
	}
	rate := 1.25 * w * float64(s.opt.MSS+packet.HeaderBytes) / float64(s.srtt)
	if rate <= 0 {
		return 0
	}
	return sim.Time(float64(sizeBytes) / rate)
}

// sbGet returns the scoreboard state for seq, or 0 ("in flight / absent")
// when seq lies outside the tracked window. Callers only ever ask about
// seq >= cumAck >= sbBase, so a below-window seq reads as absent exactly
// like a deleted map entry would.
func (s *Sender) sbGet(seq int64) uint8 {
	off := (seq - s.sbBase) / int64(s.opt.MSS)
	if off < 0 || off >= int64(len(s.sb)) {
		return 0
	}
	return s.sb[(s.sbHead+int(off))&(len(s.sb)-1)]
}

// sbSet records the scoreboard state for seq, growing the ring to cover it.
func (s *Sender) sbSet(seq int64, v uint8) {
	off := (seq - s.sbBase) / int64(s.opt.MSS)
	for off >= int64(len(s.sb)) {
		s.sbGrow()
	}
	s.sb[(s.sbHead+int(off))&(len(s.sb)-1)] = v
}

func (s *Sender) sbGrow() {
	n := len(s.sb) * 2
	if n == 0 {
		n = 64
	}
	buf := make([]uint8, n)
	for i := 0; i < len(s.sb); i++ {
		buf[i] = s.sb[(s.sbHead+i)&(len(s.sb)-1)]
	}
	s.sb = buf
	s.sbHead = 0
}

// sbAdvance slides the window start up to newBase, clearing vacated slots.
// The base only moves by whole segments (rounding the last, possibly
// partial, segment up) so segment offsets stay grid-aligned.
func (s *Sender) sbAdvance(newBase int64) {
	if newBase <= s.sbBase {
		return
	}
	mss := int64(s.opt.MSS)
	n := (newBase - s.sbBase + mss - 1) / mss
	if n >= int64(len(s.sb)) {
		for i := range s.sb {
			s.sb[i] = 0
		}
		s.sbHead = 0
	} else {
		mask := len(s.sb) - 1
		for i := int64(0); i < n; i++ {
			s.sb[s.sbHead] = 0
			s.sbHead = (s.sbHead + 1) & mask
		}
	}
	s.sbBase += n * mss
}

// popRtx returns the next scoreboard-lost segment, skipping entries that
// have since been SACKed or cumulatively acknowledged.
func (s *Sender) popRtx() (int64, bool) {
	for len(s.rtxQ) > 0 {
		seq := s.rtxQ[0]
		s.rtxQ = s.rtxQ[1:]
		if seq >= s.cumAck && s.sbGet(seq) == stLost {
			return seq, true
		}
	}
	return 0, false
}

// sendSegment emits the segment at seq and charges the pipe.
func (s *Sender) sendSegment(seq int64, retx bool) {
	p := s.pool.NewData(s.src.ID(), s.dst.ID(), s.flow, seq, s.segPayload(seq))
	p.SentAt = s.eng.Now()
	p.EcnCapable = s.opt.EcnCapable
	p.IngressAQ = s.opt.IngressAQ
	p.EgressAQ = s.opt.EgressAQ
	p.Retransmit = retx
	s.SentPackets++
	s.pipe++
	if retx {
		s.Retransmits++
		s.sbSet(seq, stRetx)
		if seq == s.cumAck {
			s.frontRetxAt = s.eng.Now()
		}
	}
	s.src.Send(p)
	// The RTO is anchored at the oldest outstanding segment: arm it only
	// when no timer is pending, so a steady stream of new sends cannot
	// push it out forever.
	if !s.rtoPending {
		s.armRTO()
	}
}

// markLost transitions an in-flight segment to lost and queues it for
// retransmission. Idempotent.
func (s *Sender) markLost(seq int64) {
	st := s.sbGet(seq)
	if st == stSacked || st == stLost {
		return
	}
	// In-flight (absent) and retransmitted segments both leave the pipe.
	s.sbSet(seq, stLost)
	s.pipe--
	if s.pipe < 0 {
		s.pipe = 0
	}
	s.rtxQ = append(s.rtxQ, seq)
}

// noteSack records the out-of-order information carried by an ACK.
func (s *Sender) noteSack(p *packet.Packet) {
	seq := p.EchoSeq
	if seq >= s.cumAck {
		switch s.sbGet(seq) {
		case stSacked:
			// already accounted
		case stLost:
			s.sbSet(seq, stSacked) // pipe already decremented
		default: // in flight or retransmitted
			s.sbSet(seq, stSacked)
			s.pipe--
			if s.pipe < 0 {
				s.pipe = 0
			}
		}
	}
	if edge := seq + int64(s.opt.MSS); edge > s.fack {
		s.fack = edge
	}
	s.advanceLossScan()
}

// advanceLossScan classifies segments more than dupAckThresh below the
// highest SACKed edge as lost (the FACK rule of RFC 6675).
func (s *Sender) advanceLossScan() {
	mss := int64(s.opt.MSS)
	upper := s.fack - dupAckThresh*mss
	if upper > s.nextSeq {
		upper = s.nextSeq
	}
	seq := s.lossScan
	if seq < s.cumAck {
		seq = s.cumAck
	}
	for ; seq < upper; seq += mss {
		s.markLost(seq)
	}
	if seq > s.lossScan {
		s.lossScan = seq
	}
}

// armRTO (re)schedules the retransmission timer. The deadline is lazy:
// while a timer is already armed it is left where it is (it can only be
// early, since the deadline slides forward under steady ACKs) and only the
// deadline field moves — onTimeout re-arms a too-early wakeup instead of
// acting. A flow under ACK clocking thus restarts its RTO with one field
// write per ACK instead of a timer re-arm per ACK.
func (s *Sender) armRTO() {
	timeout := s.rto << s.backoff
	if timeout > rtoMax {
		timeout = rtoMax
	}
	s.rtoDeadline = s.eng.Now() + timeout
	// An armed timer that fires at or before the deadline wakes early and
	// re-arms itself (onTimeout), so it can be left alone. One that fires
	// after the deadline cannot — the RTO estimate shrinks when the first
	// RTT sample replaces the conservative initial value — so pull it in.
	if s.rtoPending && s.rtoT.Pending() && s.rtoT.Time() <= s.rtoDeadline {
		return
	}
	s.rtoPending = true
	s.rtoT.Rearm(s.rtoDeadline)
}

// cancelRTO stops the pending timer.
func (s *Sender) cancelRTO() {
	s.rtoT.Disarm()
	s.rtoPending = false
}

// onTimeout handles a retransmission timeout: every unsacked outstanding
// segment is presumed lost, the pipe is reset, and transmission restarts
// from the front under the collapsed window. A wakeup before the lazily
// advanced deadline is not a timeout — it re-arms and goes back to sleep.
func (s *Sender) onTimeout() {
	if !s.done && s.eng.Now() < s.rtoDeadline {
		s.rtoT.Rearm(s.rtoDeadline)
		return
	}
	s.rtoPending = false
	if s.done || s.nextSeq == s.cumAck {
		return
	}
	s.Timeouts++
	s.backoff++
	s.alg.OnTimeout(s.eng.Now())
	s.dupacks = 0
	s.inRecovery = false
	mss := int64(s.opt.MSS)
	s.rtxQ = s.rtxQ[:0]
	s.pipe = 0
	for seq := s.cumAck; seq < s.nextSeq; seq += mss {
		if s.sbGet(seq) != stSacked {
			s.sbSet(seq, stLost)
			s.rtxQ = append(s.rtxQ, seq)
		}
	}
	s.trySend()
}

// Handle processes an incoming ACK (the sender is registered as the flow
// handler on the source host).
func (s *Sender) Handle(p *packet.Packet) {
	if p.Kind != packet.Ack || s.done {
		return
	}
	now := s.eng.Now()
	s.noteSack(p)
	if p.Ack > s.cumAck {
		s.onNewAck(now, p)
		return
	}
	// Duplicate ACK.
	if s.pipe == 0 && len(s.rtxQ) == 0 {
		return
	}
	s.dupacks++
	if s.dupacks == dupAckThresh {
		// The front hole is certainly lost. Marking only at exactly the
		// threshold (not above) avoids instantly re-marking a front
		// retransmission that is still in flight.
		s.markLost(s.cumAck)
		// One CC reduction per loss event (RFC 6582 recover guard).
		if !s.inRecovery && s.cumAck >= s.recoverSeq {
			s.inRecovery = true
			s.recoverSeq = s.nextSeq
			s.FastRecovers++
			s.alg.OnLoss(now)
		}
	} else if s.dupacks > dupAckThresh && s.sbGet(s.cumAck) == stRetx {
		// Rescue retransmission: the front retransmission itself appears
		// lost (duplicate ACKs keep arriving well past an RTT since it was
		// sent). Re-mark it so recovery does not stall until the RTO.
		wait := 2 * s.srtt
		if wait < 100*sim.Microsecond {
			wait = 100 * sim.Microsecond
		}
		if now-s.frontRetxAt > wait {
			s.sbSet(s.cumAck, 0) // force the lost transition
			s.markLost(s.cumAck)
		}
	}
	s.trySend()
}

// onNewAck processes a cumulative advance.
func (s *Sender) onNewAck(now sim.Time, p *packet.Packet) {
	acked := int(p.Ack - s.cumAck)
	mss := int64(s.opt.MSS)
	for seq := s.cumAck; seq < p.Ack; seq += mss {
		// In-flight and retransmitted segments leave the pipe; sacked and
		// lost ones were already removed when they changed state.
		if st := s.sbGet(seq); st != stSacked && st != stLost {
			s.pipe--
		}
	}
	s.sbAdvance(p.Ack)
	if s.pipe < 0 {
		s.pipe = 0
	}
	s.cumAck = p.Ack
	if s.lossScan < p.Ack {
		s.lossScan = p.Ack
	}
	s.dupacks = 0
	s.backoff = 0
	rtt := s.updateRTT(now, p)
	s.alg.OnAck(cc.Ack{
		Now:   now,
		RTT:   rtt,
		Delay: s.delaySignal(rtt, p),
		ECE:   p.EcnEcho,
		Bytes: acked,
		MSS:   s.opt.MSS,
	})
	if s.inRecovery && s.cumAck >= s.recoverSeq {
		s.inRecovery = false
	}
	if s.size != 0 && s.cumAck >= s.size {
		s.complete(now)
		return
	}
	if s.nextSeq > s.cumAck {
		s.armRTO() // restart: the timer tracks the oldest outstanding data
	} else {
		s.cancelRTO()
	}
	s.trySend()
}

// updateRTT folds a new sample into srtt/rttvar (RFC 6298 smoothing) and
// returns the sample.
func (s *Sender) updateRTT(now sim.Time, p *packet.Packet) sim.Time {
	if p.EchoSentAt <= 0 {
		return 0
	}
	sample := now - p.EchoSentAt
	if sample <= 0 {
		return 0
	}
	if s.minRTT == 0 || sample < s.minRTT {
		s.minRTT = sample
	}
	if s.srtt == 0 {
		s.srtt = sample
		s.rttvar = sample / 2
	} else {
		diff := s.srtt - sample
		if diff < 0 {
			diff = -diff
		}
		s.rttvar = (3*s.rttvar + diff) / 4
		s.srtt = (7*s.srtt + sample) / 8
	}
	s.rto = s.srtt + 4*s.rttvar
	if s.rto < s.opt.RTOMin {
		s.rto = s.opt.RTOMin
	}
	return sample
}

// delaySignal computes the fabric-delay feedback for delay-based CC: the
// physical queuing delay accumulated by the data packet (echoed) and by
// the ACK itself — the NIC-timestamp measurement Swift relies on — plus
// the virtual queuing delay stamped by AQs along the path (§3.3.2).
func (s *Sender) delaySignal(_ sim.Time, p *packet.Packet) sim.Time {
	return p.EchoQueueDelay + p.QueueDelay + p.EchoVirtualDelay
}

func (s *Sender) complete(now sim.Time) {
	s.done = true
	s.rtoT.Disarm()
	s.pacedT.Disarm()
	s.src.Unregister(s.flow)
	s.dst.Unregister(s.flow)
	if s.OnComplete != nil {
		s.OnComplete(now)
	}
}

// Receiver is the receiving half of a flow: it reassembles the byte stream
// cumulatively and acknowledges every new data segment, echoing the ECN
// mark, the send timestamp, the segment sequence (one-block SACK) and the
// accumulated virtual delay.
type Receiver struct {
	s *Sender
	// pool is the RECEIVING host's engine pool, not the sender's: in a
	// partitioned run the two ends of a flow can live in different
	// simulation domains, and under parallel domain workers an ACK
	// allocation here would otherwise contend unsynchronized with the
	// sender domain's own pool traffic. Which pool served an allocation is
	// unobservable in results (packets are zeroed on reuse).
	pool *packet.Pool
	cum  int64
	ooo  map[int64]int // out-of-order segments: seq -> payload

	// Delivered counts in-order delivered payload bytes.
	Delivered int64
	// RxData counts all data segments seen (including duplicates).
	RxData uint64
}

func newReceiver(s *Sender) *Receiver {
	return &Receiver{s: s, pool: packet.PoolFor(s.dst.Engine()), ooo: make(map[int64]int)}
}

// Handle processes an incoming data segment.
func (r *Receiver) Handle(p *packet.Packet) {
	if p.Kind != packet.Data {
		return
	}
	r.RxData++
	if p.Seq+int64(p.Payload) <= r.cum {
		// A fully duplicate segment (a spurious retransmission): acking it
		// would feed duplicate-ACK storms at the sender, so stay silent —
		// the moral equivalent of D-SACK suppression.
		return
	}
	switch {
	case p.Seq == r.cum:
		r.cum += int64(p.Payload)
		for {
			pl, ok := r.ooo[r.cum]
			if !ok {
				break
			}
			delete(r.ooo, r.cum)
			r.cum += int64(pl)
		}
	case p.Seq > r.cum:
		r.ooo[p.Seq] = p.Payload
	}
	r.Delivered = r.cum
	ack := r.pool.NewAck(r.s.dst.ID(), r.s.src.ID(), p.Flow, r.cum)
	ack.EcnEcho = p.CE
	ack.EchoSentAt = p.SentAt
	ack.EchoVirtualDelay = p.VirtualDelay
	ack.EchoQueueDelay = p.QueueDelay
	ack.EchoSeq = p.Seq
	r.s.dst.Send(ack)
}
