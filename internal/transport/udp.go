package transport

import (
	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/topo"
	"aqueue/internal/units"
)

// UDPSender is a constant-bit-rate unreliable sender. The paper's UDP
// entities blast at the link capacity (§5.2) and react to nothing, which is
// what makes them starve TCP under a shared physical queue and what AQ's
// limit-drops contain.
type UDPSender struct {
	eng  *sim.Engine
	pool *packet.Pool
	src  *topo.Host
	dst  *topo.Host
	flow packet.FlowID
	rate units.BitRate
	mss  int
	opt  Options

	interval sim.Time
	tickT    *sim.Timer
	running  bool
	seq      int64

	// SentPackets counts emitted packets.
	SentPackets uint64

	sink *UDPSink
}

// UDPSink counts what a UDP receiver actually gets.
type UDPSink struct {
	RxPackets uint64
	RxBytes   uint64
}

// Handle implements topo.FlowHandler.
func (u *UDPSink) Handle(p *packet.Packet) {
	u.RxPackets++
	u.RxBytes += uint64(p.Size)
}

// NewUDPSender wires a CBR flow from src to dst at the given rate and
// installs a counting sink on dst. AQ tags from opt are stamped on every
// packet; MSS defaults as for TCP senders.
func NewUDPSender(src, dst *topo.Host, rate units.BitRate, opt Options) *UDPSender {
	if opt.MSS == 0 {
		opt.MSS = packet.DefaultMSS
	}
	u := &UDPSender{
		eng:  src.Engine(),
		pool: packet.PoolFor(src.Engine()),
		src:  src,
		dst:  dst,
		flow: src.NextFlowID(),
		rate: rate,
		mss:  opt.MSS,
		opt:  opt,
		sink: &UDPSink{},
	}
	size := opt.MSS + packet.HeaderBytes
	u.interval = sim.Time(rate.TransmitNanos(size))
	if u.interval <= 0 {
		u.interval = 1
	}
	u.tickT = u.eng.NewTimer(u.tick)
	dst.Register(u.flow, u.sink)
	return u
}

// Flow returns the flow identifier.
func (u *UDPSender) Flow() packet.FlowID { return u.flow }

// Sink returns the receive-side counters.
func (u *UDPSender) Sink() *UDPSink { return u.sink }

// Start begins transmission after the given delay.
func (u *UDPSender) Start(after sim.Time) {
	u.running = true
	u.tickT.ArmAfter(after)
}

// Stop halts transmission.
func (u *UDPSender) Stop() {
	u.running = false
	u.tickT.Disarm()
}

func (u *UDPSender) tick() {
	if !u.running {
		return
	}
	p := u.pool.NewData(u.src.ID(), u.dst.ID(), u.flow, u.seq, u.mss)
	p.SentAt = u.eng.Now()
	p.IngressAQ = u.opt.IngressAQ
	p.EgressAQ = u.opt.EgressAQ
	u.seq += int64(u.mss)
	u.SentPackets++
	u.src.Send(p)
	// One persistent timer carries every tick for the life of the sender.
	u.tickT.RearmAfter(u.interval)
}
