package transport

import (
	"testing"

	"aqueue/internal/cc"
	"aqueue/internal/core"
	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/topo"
	"aqueue/internal/units"
)

// rig builds a 2x2 dumbbell with the default sim link spec.
func rig() (*sim.Engine, *topo.Dumbbell) {
	eng := sim.NewEngine()
	d := topo.NewDumbbell(eng, 2, 2, topo.DefaultSim(), topo.DefaultSim())
	return eng, d
}

func TestFlowCompletes(t *testing.T) {
	eng, d := rig()
	var fct sim.Time
	s := NewSender(d.Left[0], d.Right[0], 100*1000, cc.NewNewReno(), Options{})
	s.OnComplete = func(now sim.Time) { fct = now }
	s.Start(0)
	eng.RunUntil(sim.Second)
	if !s.Done() {
		t.Fatal("flow did not complete")
	}
	if fct == 0 {
		t.Fatal("OnComplete not called")
	}
	if s.Receiver().Delivered != 100*1000 {
		t.Fatalf("delivered %d, want 100000", s.Receiver().Delivered)
	}
	// 100 KB at 10 Gbps is 80 us of wire time; with slow start from 10
	// packets it should finish within a few ms.
	if fct > 5*sim.Millisecond {
		t.Fatalf("FCT = %v, unreasonably slow", fct)
	}
}

func TestSingleFlowSaturatesBottleneck(t *testing.T) {
	eng, d := rig()
	s := NewSender(d.Left[0], d.Right[0], 0, cc.NewCubic(), Options{})
	s.Start(0)
	const horizon = 100 * sim.Millisecond
	eng.RunUntil(horizon)
	gbps := float64(s.AckedBytes()) * 8 / horizon.Seconds() / 1e9
	if gbps < 8.5 {
		t.Fatalf("long CUBIC flow achieved %.2f Gbps on a 10 Gbps bottleneck", gbps)
	}
	s.Stop()
}

func TestLossRecoveryViaFastRetransmit(t *testing.T) {
	// Small physical queue at the bottleneck forces drops; the flow must
	// still deliver everything in order.
	eng := sim.NewEngine()
	spec := topo.DefaultSim()
	trunk := spec
	trunk.QueueLimit = 15 * 1000 // very shallow: guaranteed overflow
	d := topo.NewDumbbell(eng, 1, 1, spec, trunk)
	s := NewSender(d.Left[0], d.Right[0], 2*1000*1000, cc.NewNewReno(), Options{})
	s.Start(0)
	eng.RunUntil(2 * sim.Second)
	if !s.Done() {
		t.Fatalf("flow did not complete; acked %d", s.AckedBytes())
	}
	if s.Retransmits == 0 {
		t.Fatal("expected retransmissions on a shallow queue")
	}
	if s.FastRecovers == 0 {
		t.Fatal("expected fast-recovery episodes")
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	eng, d := rig()
	a := NewSender(d.Left[0], d.Right[0], 0, cc.NewNewReno(), Options{})
	b := NewSender(d.Left[1], d.Right[1], 0, cc.NewNewReno(), Options{})
	a.Start(0)
	b.Start(0)
	const horizon = 200 * sim.Millisecond
	eng.RunUntil(horizon)
	ga := float64(a.AckedBytes())
	gb := float64(b.AckedBytes())
	ratio := ga / gb
	if ratio < 0.6 || ratio > 1.67 {
		t.Fatalf("same-CC flows shared %0.2f:1, want near 1:1", ratio)
	}
	total := (ga + gb) * 8 / horizon.Seconds() / 1e9
	if total < 8.5 {
		t.Fatalf("aggregate %.2f Gbps, want near 10", total)
	}
	a.Stop()
	b.Stop()
}

func TestDCTCPKeepsQueueShort(t *testing.T) {
	eng, d := rig()
	s := NewSender(d.Left[0], d.Right[0], 0, cc.NewDCTCP(), Options{EcnCapable: true})
	s.Start(0)
	eng.RunUntil(100 * sim.Millisecond)
	gbps := float64(s.AckedBytes()) * 8 / 0.1 / 1e9
	if gbps < 8.5 {
		t.Fatalf("DCTCP achieved %.2f Gbps", gbps)
	}
	// With a single flow the edge uplink is the contended queue (it runs
	// at the same rate as the trunk); it should hover near the 65KB
	// marking threshold, well under the 400KB limit.
	up := d.Left[0].Uplink().Queue()
	// The one-time slow-start overshoot may spike past 3x the 65KB marking
	// threshold, but steady state must stay well below the 400KB limit.
	if up.MaxBytes > 250*1000 {
		t.Fatalf("DCTCP let the queue grow to %d bytes", up.MaxBytes)
	}
	if up.Marked == 0 {
		t.Fatal("no ECN marks recorded")
	}
	s.Stop()
}

func TestSwiftConvergesOnDelayTarget(t *testing.T) {
	eng, d := rig()
	s := NewSender(d.Left[0], d.Right[0], 0, cc.NewSwiftTarget(50*sim.Microsecond), Options{})
	s.Start(0)
	eng.RunUntil(100 * sim.Millisecond)
	gbps := float64(s.AckedBytes()) * 8 / 0.1 / 1e9
	if gbps < 8.0 {
		t.Fatalf("Swift achieved %.2f Gbps alone", gbps)
	}
	// 50us at 10 Gbps is 62.5KB of queue; it must not blow past that by
	// much.
	if max := d.Bottleneck.Queue().MaxBytes; max > 150*1000 {
		t.Fatalf("Swift queue reached %d bytes", max)
	}
	s.Stop()
}

func TestAQTagsAreStamped(t *testing.T) {
	eng, d := rig()
	seen := false
	d.Right[0].RxHook = func(p *packet.Packet) {
		if p.Kind == packet.Data {
			if p.IngressAQ != 7 || p.EgressAQ != 8 {
				t.Errorf("tags = (%d,%d), want (7,8)", p.IngressAQ, p.EgressAQ)
			}
			seen = true
		}
	}
	s := NewSender(d.Left[0], d.Right[0], 10000, cc.NewNewReno(),
		Options{IngressAQ: 7, EgressAQ: 8})
	s.Start(0)
	eng.RunUntil(50 * sim.Millisecond)
	if !seen {
		t.Fatal("no data packets observed")
	}
}

func TestAQRateLimitsDropBasedFlow(t *testing.T) {
	// Deploy a 2 Gbps drop-type AQ at the bottleneck switch ingress; a
	// long CUBIC flow must converge to ~2 Gbps even though the link is 10.
	eng, d := rig()
	d.S1.Ingress.Deploy(core.Config{ID: 1, Rate: 2 * units.Gbps})
	s := NewSender(d.Left[0], d.Right[0], 0, cc.NewCubic(), Options{IngressAQ: 1})
	s.Start(0)
	const horizon = 200 * sim.Millisecond
	eng.RunUntil(horizon)
	gbps := float64(s.AckedBytes()) * 8 / horizon.Seconds() / 1e9
	if gbps < 1.6 || gbps > 2.2 {
		t.Fatalf("AQ-limited CUBIC achieved %.2f Gbps, want ~2", gbps)
	}
	s.Stop()
}

func TestAQECNFeedbackForDCTCP(t *testing.T) {
	eng, d := rig()
	d.S1.Ingress.Deploy(core.Config{ID: 1, Rate: 3 * units.Gbps, CC: core.ECNType})
	s := NewSender(d.Left[0], d.Right[0], 0, cc.NewDCTCP(),
		Options{EcnCapable: true, IngressAQ: 1})
	s.Start(0)
	const horizon = 200 * sim.Millisecond
	eng.RunUntil(horizon)
	gbps := float64(s.AckedBytes()) * 8 / horizon.Seconds() / 1e9
	if gbps < 2.5 || gbps > 3.3 {
		t.Fatalf("AQ/ECN DCTCP achieved %.2f Gbps, want ~3", gbps)
	}
	st := d.S1.Ingress.Lookup(1).Stats()
	if st.Marks == 0 {
		t.Fatal("ECN-type AQ produced no marks")
	}
	if st.Drops > st.Arrived/10 {
		t.Fatalf("ECN-type AQ dropped too much: %d of %d", st.Drops, st.Arrived)
	}
	s.Stop()
}

func TestAQVirtualDelayFeedbackForSwift(t *testing.T) {
	eng, d := rig()
	d.S1.Ingress.Deploy(core.Config{ID: 1, Rate: 4 * units.Gbps, CC: core.DelayType})
	s := NewSender(d.Left[0], d.Right[0], 0, cc.NewSwiftTarget(50*sim.Microsecond),
		Options{IngressAQ: 1})
	s.Start(0)
	const horizon = 200 * sim.Millisecond
	eng.RunUntil(horizon)
	gbps := float64(s.AckedBytes()) * 8 / horizon.Seconds() / 1e9
	if gbps < 3.2 || gbps > 4.4 {
		t.Fatalf("AQ/delay Swift achieved %.2f Gbps, want ~4", gbps)
	}
	s.Stop()
}

func TestUDPSenderRate(t *testing.T) {
	eng, d := rig()
	u := NewUDPSender(d.Left[0], d.Right[0], 3*units.Gbps, Options{})
	u.Start(0)
	const horizon = 50 * sim.Millisecond
	eng.RunUntil(horizon)
	gbps := float64(u.Sink().RxBytes) * 8 / horizon.Seconds() / 1e9
	if gbps < 2.8 || gbps > 3.2 {
		t.Fatalf("UDP CBR delivered %.2f Gbps, want ~3", gbps)
	}
	u.Stop()
	before := u.SentPackets
	eng.RunUntil(horizon + 10*sim.Millisecond)
	if u.SentPackets != before {
		t.Fatal("UDP kept sending after Stop")
	}
}

func TestUDPStarvesTCPOnSharedPQ(t *testing.T) {
	// The motivating pathology of §2.1: a line-rate UDP blast through the
	// shared physical queue starves TCP.
	eng, d := rig()
	u := NewUDPSender(d.Left[0], d.Right[0], 10*units.Gbps, Options{})
	s := NewSender(d.Left[1], d.Right[1], 0, cc.NewCubic(), Options{})
	u.Start(0)
	s.Start(0)
	const horizon = 100 * sim.Millisecond
	eng.RunUntil(horizon)
	tcp := float64(s.AckedBytes()) * 8 / horizon.Seconds() / 1e9
	udp := float64(u.Sink().RxBytes) * 8 / horizon.Seconds() / 1e9
	if tcp > udp/4 {
		t.Fatalf("TCP got %.2f Gbps vs UDP %.2f — expected starvation", tcp, udp)
	}
	u.Stop()
	s.Stop()
}

func TestFlowIDsUnique(t *testing.T) {
	eng := sim.NewEngine()
	a, b := NextFlowID(eng), NextFlowID(eng)
	if a == b {
		t.Fatal("flow IDs collide")
	}
}

// TestFlowIDsEngineScoped pins the determinism contract the parallel
// harness relies on: two engines allocate the same IDs independently.
func TestFlowIDsEngineScoped(t *testing.T) {
	e1, e2 := sim.NewEngine(), sim.NewEngine()
	if NextFlowID(e1) != NextFlowID(e2) {
		t.Fatal("flow IDs are not engine-scoped")
	}
}
