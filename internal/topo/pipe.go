// Package topo models the network: unidirectional pipes (a link direction
// with its egress FIFO and transmitter), switches that run the AQ ingress
// and egress pipelines of §4.2, end hosts, and builders for the paper's two
// evaluation topologies (the NS3 dumbbell of Fig. 5a and the testbed star of
// Fig. 5b / Fig. 2).
package topo

import (
	"aqueue/internal/packet"
	"aqueue/internal/queue"
	"aqueue/internal/sim"
	"aqueue/internal/units"
)

// Receiver consumes packets delivered by a pipe.
type Receiver interface {
	Receive(p *packet.Packet)
}

// Pipe is one direction of a link: a FIFO egress buffer drained by a
// transmitter at the link rate, followed by a fixed propagation delay.
type Pipe struct {
	eng   *sim.Engine
	rate  units.BitRate
	delay sim.Time
	q     queue.Interface
	dst   Receiver
	busy  bool

	// jitter, when positive, adds a uniform random component in
	// [0, jitter) to each packet's propagation delay. Continuous streams
	// from equal-rate links otherwise phase-lock at a downstream
	// contention point, which a real network's clock and processing noise
	// prevents. Delivery order within the pipe is preserved.
	jitter   sim.Time
	rng      *sim.Rand
	lastPlan sim.Time // latest planned delivery time, for order preservation

	// DelayHook, when set, observes the physical queuing delay of every
	// packet at dequeue time (excludes serialization and propagation).
	DelayHook func(d sim.Time, p *packet.Packet)

	// txDoneFn and deliverFn are the long-lived callbacks the transmitter
	// schedules per packet (via the engine's detached events), so the hot
	// path allocates neither closures nor Event objects.
	txDoneFn  func(any)
	deliverFn func(any)

	// TxBytes counts bytes put on the wire (after any tail drops).
	TxBytes uint64
	// TxPackets counts packets put on the wire.
	TxPackets uint64
}

// NewPipe builds a pipe draining into dst. queueLimit and ecnThreshold are
// in bytes and configure the physical FIFO (see queue.New).
func NewPipe(eng *sim.Engine, rate units.BitRate, delay sim.Time, queueLimit, ecnThreshold int, dst Receiver) *Pipe {
	q := queue.New(queueLimit, ecnThreshold)
	// Derive the AQM stream from the engine so concurrent runs never share
	// (or race on) a process-global sequence and a run's randomness is a
	// pure function of its own construction order.
	q.SetAQMSeed(0xA11CE + eng.NextSeq("queue.aqm")*0x5bd1e995)
	p := &Pipe{
		eng:   eng,
		rate:  rate,
		delay: delay,
		q:     q,
		dst:   dst,
	}
	p.txDoneFn = func(x any) { p.txDone(x.(*packet.Packet)) }
	p.deliverFn = func(x any) { p.dst.Receive(x.(*packet.Packet)) }
	return p
}

// SetScheduler replaces the egress queue (e.g. with a queue.DRR). Only
// valid before any packet has been sent.
func (p *Pipe) SetScheduler(q queue.Interface) { p.q = q }

// Backlog returns the egress queue occupancy in bytes, whatever the
// scheduler type.
func (p *Pipe) Backlog() int { return p.q.Bytes() }

// SetJitter enables per-packet propagation jitter in [0, j) using a stream
// seeded with seed.
func (p *Pipe) SetJitter(j sim.Time, seed uint64) {
	p.jitter = j
	p.rng = sim.NewRand(seed)
}

// Queue exposes the physical FIFO for stats and work-conservation checks;
// it returns nil when a different scheduler is installed.
func (p *Pipe) Queue() *queue.FIFO {
	f, _ := p.q.(*queue.FIFO)
	return f
}

// Rate returns the link rate.
func (p *Pipe) Rate() units.BitRate { return p.rate }

// SetRate changes the link rate; used by tests that reconfigure link speeds
// (the paper's testbed runs ports at both 100 and 25 Gbps).
func (p *Pipe) SetRate(r units.BitRate) { p.rate = r }

// Send enqueues the packet for transmission. The packet is tail-dropped —
// and released back to the pool — when the FIFO is full, exactly what a
// physical port does.
func (p *Pipe) Send(pkt *packet.Packet) {
	if !p.q.Push(p.eng.Now(), pkt) {
		packet.Release(pkt)
		return
	}
	p.kick()
}

// kick starts the transmitter if it is idle and the queue is non-empty.
func (p *Pipe) kick() {
	if p.busy {
		return
	}
	pkt := p.q.Pop()
	if pkt == nil {
		return
	}
	waited := p.eng.Now() - pkt.EnqueuedAt
	pkt.QueueDelay += waited
	if p.DelayHook != nil {
		p.DelayHook(waited, pkt)
	}
	p.busy = true
	p.TxBytes += uint64(pkt.Size)
	p.TxPackets++
	tx := sim.Time(p.rate.TransmitNanos(pkt.Size))
	p.eng.AfterDetached(tx, p.txDoneFn, pkt)
}

// txDone fires when the packet's last bit leaves the port: plan delivery
// after propagation (plus jitter), then start on the next queued packet.
func (p *Pipe) txDone(pkt *packet.Packet) {
	p.busy = false
	d := p.delay
	if p.jitter > 0 {
		d += sim.Time(p.rng.Uint64() % uint64(p.jitter))
	}
	at := p.eng.Now() + d
	if at <= p.lastPlan {
		at = p.lastPlan + 1 // never reorder within a pipe
	}
	p.lastPlan = at
	p.eng.AtDetached(at, p.deliverFn, pkt)
	p.kick()
}
