// Package topo models the network: unidirectional pipes (a link direction
// with its egress FIFO and transmitter), switches that run the AQ ingress
// and egress pipelines of §4.2, end hosts, and builders for the paper's two
// evaluation topologies (the NS3 dumbbell of Fig. 5a and the testbed star of
// Fig. 5b / Fig. 2).
package topo

import (
	"math/bits"

	"aqueue/internal/packet"
	"aqueue/internal/queue"
	"aqueue/internal/sim"
	"aqueue/internal/units"
)

// Receiver consumes packets delivered by a pipe.
type Receiver interface {
	Receive(p *packet.Packet)
}

// probeCap bounds the adaptive probe backoff: in steady interleaved traffic
// a pipe probes roughly one delivery in 16, which keeps the probe cost in
// the noise while still noticing a drainable run within a dozen deliveries.
const probeCap = 15

// burstReceiver is implemented by receivers that can amortize per-packet
// work across a delivery burst (the Switch binds its table cursors in
// BeginBurst and flushes them in EndBurst). Brackets never nest: a Receive
// never synchronously triggers another pipe's deliver — onward hops always
// go through the engine as events.
type burstReceiver interface {
	BeginBurst()
	EndBurst()
}

// Pipe is one direction of a link: a FIFO egress buffer drained by a
// transmitter at the link rate, followed by a fixed propagation delay.
type Pipe struct {
	eng   *sim.Engine
	pool  *packet.Pool
	rate  units.BitRate
	delay sim.Time
	q     queue.Interface
	dst   Receiver
	busy  bool

	// fq is the plain FIFO behind q, enabling the virtual-transmitter
	// fast path: a FIFO drains deterministically, so each packet's
	// serialization window is known at enqueue time and Send can plan the
	// delivery directly — one engine event per packet instead of a
	// txDone/deliver pair. nil when a custom scheduler (DRR) is installed,
	// which falls back to the event-driven transmitter.
	fq *queue.FIFO
	// txFreeAt is when the transmitter finishes its current backlog; a
	// packet enqueued now starts serializing at max(now, txFreeAt).
	txFreeAt sim.Time
	// started holds the (start-time, size) of packets counted in fq but
	// whose serialization hasn't begun; entries are drained lazily so
	// fq's occupancy — which drives tail drop, ECN marking and Backlog —
	// matches what the event-driven transmitter would report.
	started startRing

	// lane is the pipe's ordering lane (0 for pipes built outside a
	// cluster): deliveries are scheduled with it so that same-instant
	// events fire in a partition-invariant order. See sim.Engine.AtOrdered.
	lane uint32
	// outbox, when non-nil, makes this a boundary pipe of a partitioned
	// run: its destination lives on another engine, so deliveries are
	// posted to the cluster mailbox instead of scheduled locally, and the
	// cluster flushes them across at the end of each lookahead window.
	outbox *sim.Outbox

	// jitter, when positive, adds a uniform random component in
	// [0, jitter) to each packet's propagation delay. Continuous streams
	// from equal-rate links otherwise phase-lock at a downstream
	// contention point, which a real network's clock and processing noise
	// prevents. Delivery order within the pipe is preserved.
	jitter   sim.Time
	rng      *sim.Rand
	lastPlan sim.Time // latest planned delivery time, for order preservation

	// txSize/txNanos memoize the serialization time of the last packet
	// size transmitted. A pipe direction carries almost exclusively one
	// size (MSS data one way, header-only ACKs the other), so this turns a
	// per-packet float division into a compare. SetRate invalidates it.
	txSize  int
	txNanos sim.Time

	// fluidRate is the bandwidth currently claimed by the fluid lane on
	// this pipe (internal/fluid): packet serialization runs at the
	// residual rate while it is nonzero. Zero — the universal case with
	// the fluid lane off — leaves the transmit path bit-for-bit as
	// before, so fingerprints are unperturbed. SetFluidRate invalidates
	// the memo like SetRate.
	fluidRate units.BitRate

	// inflight holds packets whose delivery time is planned but not yet
	// armed in the engine: deliveries within a pipe are strictly ordered
	// (lastPlan), so only the head needs a heap event — the rest wait in
	// this ring and chain as each delivery fires. A long fat pipe carries
	// delay/txTime packets in flight; keeping them out of the event heap
	// keeps every sift shallow.
	inflight      deliveryRing
	deliveryArmed bool

	// burstMax caps how many chained deliveries one engine event may drain
	// inline (from the engine's BurstSize option; 0 disables bursting), and
	// bdst is dst's burst bracket when it has one.
	burstMax int
	bdst     burstReceiver

	// probeSkip/probeBackoff implement adaptive burst probing. In
	// closed-loop traffic other pipes' events interleave every gap, so the
	// inline probe (InlineRunnable) almost never passes — and a failed
	// probe costs about what an elided event saves. After a failure the
	// pipe schedules the next probeSkip deliveries directly (the event keys
	// are identical either way, so this is invisible to determinism) with
	// the skip doubling up to probeCap; one success resets to eager, so a
	// back-to-back drain run pays the probe only on its first delivery.
	probeSkip    int
	probeBackoff int

	// DelayHook, when set, observes the physical queuing delay of every
	// packet at dequeue time (excludes serialization and propagation).
	DelayHook func(d sim.Time, p *packet.Packet)

	// txDoneFn and deliverFn are the long-lived callbacks the transmitter
	// schedules per packet (via the engine's detached events), so the hot
	// path allocates neither closures nor Event objects.
	txDoneFn  func(any)
	deliverFn func(any)

	// TxBytes counts bytes put on the wire (after any tail drops).
	TxBytes uint64
	// TxPackets counts packets put on the wire.
	TxPackets uint64
}

// NewPipe builds a pipe draining into dst. queueLimit and ecnThreshold are
// in bytes and configure the physical FIFO (see queue.New).
func NewPipe(eng *sim.Engine, rate units.BitRate, delay sim.Time, queueLimit, ecnThreshold int, dst Receiver) *Pipe {
	// Derive the AQM stream from the engine so concurrent runs never share
	// (or race on) a process-global sequence and a run's randomness is a
	// pure function of its own construction order.
	return newPipeWithAQMSeq(eng, rate, delay, queueLimit, ecnThreshold, dst, eng.NextSeq("queue.aqm"))
}

// newPipeWithAQMSeq is NewPipe with the AQM sequence draw supplied by the
// caller: cluster builders draw it from the cluster, not the engine, so a
// queue's RED stream does not depend on which domain its pipe landed in.
func newPipeWithAQMSeq(eng *sim.Engine, rate units.BitRate, delay sim.Time, queueLimit, ecnThreshold int, dst Receiver, aqmSeq uint64) *Pipe {
	q := queue.New(queueLimit, ecnThreshold)
	q.SetAQMSeed(0xA11CE + aqmSeq*0x5bd1e995)
	p := &Pipe{
		eng:      eng,
		pool:     packet.PoolFor(eng),
		rate:     rate,
		delay:    delay,
		q:        q,
		fq:       q,
		dst:      dst,
		burstMax: eng.Options().BurstSize,
	}
	p.bdst, _ = dst.(burstReceiver)
	p.txDoneFn = func(x any) { p.txDone(x.(*packet.Packet)) }
	p.deliverFn = func(x any) { p.deliver(x.(*packet.Packet)) }
	return p
}

// PipeStats is a snapshot of the pipe's wire counters and egress backlog,
// following the repo-wide stats convention (value type, no locks held).
type PipeStats struct {
	TxPackets uint64 `json:"tx_packets"`
	TxBytes   uint64 `json:"tx_bytes"`
	Backlog   int    `json:"backlog_bytes"`
}

// Stats returns a snapshot of the wire counters and current backlog.
func (p *Pipe) Stats() PipeStats {
	return PipeStats{TxPackets: p.TxPackets, TxBytes: p.TxBytes, Backlog: p.Backlog()}
}

// SetLane assigns the pipe's ordering lane. Cluster builders give every
// pipe a unique lane drawn in construction order, so the lane — and with
// it the relative order of same-instant deliveries — is independent of how
// the topology is partitioned.
func (p *Pipe) SetLane(lane uint32) { p.lane = lane }

// Lane returns the pipe's ordering lane.
func (p *Pipe) Lane() uint32 { return p.lane }

// BindOutbox turns the pipe into a boundary pipe: deliveries are posted to
// the mailbox (created by the cluster for this pipe's lane and destination
// engine) instead of being scheduled on the local engine, and the pipe's
// delivery horizon becomes the channel's dynamic lookahead. Must be called
// before any packet is sent.
func (p *Pipe) BindOutbox(o *sim.Outbox) {
	p.outbox = o
	o.SetHorizon(p.DeliveryHorizon)
}

// DeliveryHorizon reports a lower bound on the delivery time of any packet
// this pipe has not yet planned, assuming its sending domain processes no
// event before earliestSend: a future send starts serializing no earlier
// than max(earliestSend, txFreeAt) and then rides the propagation delay,
// and the no-reorder rule keeps every new plan strictly after lastPlan.
// The cluster coordinator calls this between rounds (the sending domain is
// parked), which turns a congested uplink's transmitter backlog into extra
// lookahead for the destination domain.
func (p *Pipe) DeliveryHorizon(earliestSend sim.Time) sim.Time {
	start := earliestSend
	if p.txFreeAt > start {
		start = p.txFreeAt
	}
	at := start + p.delay
	if at <= p.lastPlan {
		at = p.lastPlan + 1
	}
	return at
}

// DeliverFunc returns the callback an outbox must invoke to hand a posted
// packet to this pipe's destination; it runs on the destination engine, so
// it bypasses the local delivery chain entirely.
func (p *Pipe) DeliverFunc() func(any) {
	return func(x any) { p.dst.Receive(x.(*packet.Packet)) }
}

// SetScheduler replaces the egress queue (e.g. with a queue.DRR). Only
// valid before any packet has been sent. A non-FIFO scheduler disables the
// virtual-transmitter fast path: its dequeue order depends on arrivals, so
// departures must be computed event by event.
func (p *Pipe) SetScheduler(q queue.Interface) {
	p.q = q
	p.fq, _ = q.(*queue.FIFO)
}

// Backlog returns the egress queue occupancy in bytes, whatever the
// scheduler type.
func (p *Pipe) Backlog() int {
	if p.fq != nil {
		p.drainStarted(p.eng.Now())
	}
	return p.q.Bytes()
}

// SetJitter enables per-packet propagation jitter in [0, j) using a stream
// seeded with seed.
func (p *Pipe) SetJitter(j sim.Time, seed uint64) {
	p.jitter = j
	p.rng = sim.NewRand(seed)
}

// Queue exposes the physical FIFO for stats and work-conservation checks;
// it returns nil when a different scheduler is installed.
func (p *Pipe) Queue() *queue.FIFO {
	f, _ := p.q.(*queue.FIFO)
	return f
}

// Rate returns the link rate.
func (p *Pipe) Rate() units.BitRate { return p.rate }

// SetRate changes the link rate; used by tests that reconfigure link speeds
// (the paper's testbed runs ports at both 100 and 25 Gbps).
func (p *Pipe) SetRate(r units.BitRate) {
	p.rate = r
	p.txSize = 0
}

// txTime returns the serialization time for a packet of the given size at
// the pipe's current packet-lane rate, through the txSize/txNanos memo.
// With no fluid claim this is exactly rate.TransmitNanos — the pre-fluid
// transmit path, preserved bit-for-bit.
func (p *Pipe) txTime(size int) sim.Time {
	if size != p.txSize {
		p.txSize = size
		if p.fluidRate == 0 {
			p.txNanos = sim.Time(p.rate.TransmitNanos(size))
		} else {
			p.txNanos = sim.Time(p.residualRate().TransmitNanos(size))
		}
	}
	return p.txNanos
}

// residualRate is the bandwidth left for the packet lane after the fluid
// claim, floored at 1/1000 of the link so foreground packets keep moving
// (and the simulation keeps terminating) even when fluid demand saturates
// the pipe.
func (p *Pipe) residualRate() units.BitRate {
	res := p.rate - p.fluidRate
	if floor := p.rate / 1000; res < floor {
		res = floor
	}
	return res
}

// SetFluidRate installs the fluid lane's current claim on this pipe's
// bandwidth. The claim shapes only future serializations: packets already
// in flight keep their planned times, exactly like SetRate.
func (p *Pipe) SetFluidRate(r units.BitRate) {
	if r < 0 {
		r = 0
	}
	p.fluidRate = r
	p.txSize = 0
}

// FluidRate returns the fluid lane's current bandwidth claim.
func (p *Pipe) FluidRate() units.BitRate { return p.fluidRate }

// Engine returns the engine this pipe schedules on; the fluid lane uses it
// to enforce that every pipe it accounts is domain-local.
func (p *Pipe) Engine() *sim.Engine { return p.eng }

// Send enqueues the packet for transmission. The packet is tail-dropped —
// and released back to the pool — when the FIFO is full, exactly what a
// physical port does.
//
// On the FIFO fast path the transmitter is virtual: the queue drains in
// arrival order at a known rate, so the packet's serialization window
// [start, start+tx) is fixed the moment it is accepted, and the delivery
// is planned here instead of by a txDone event — one engine event per
// packet instead of two. The FIFO still sees every Push (tail-drop, ECN
// and AQM decisions are its, with identical occupancy), but its entries
// are drained lazily as their start times pass.
func (p *Pipe) Send(pkt *packet.Packet) {
	if p.fq == nil {
		if !p.q.Push(p.eng.Now(), pkt) {
			p.pool.Release(pkt)
			return
		}
		p.kick()
		return
	}
	now := p.eng.Now()
	p.drainStarted(now)
	if !p.fq.Push(now, pkt) {
		p.pool.Release(pkt)
		return
	}
	start := p.txFreeAt
	if start <= now {
		// Transmitter idle: serialization starts immediately, so the
		// packet never counts as queued.
		start = now
		p.fq.PopDrained(pkt.Size)
	} else {
		p.started.push(start, pkt.Size)
	}
	waited := start - now
	pkt.QueueDelay += waited
	if p.DelayHook != nil {
		p.DelayHook(waited, pkt)
	}
	p.txFreeAt = start + p.txTime(pkt.Size)
	p.TxBytes += uint64(pkt.Size)
	p.TxPackets++
	p.planDelivery(p.txFreeAt, pkt)
}

// drainStarted retires queue entries whose serialization has begun, so the
// FIFO's occupancy reflects only packets still waiting — the same set the
// event-driven transmitter would be holding. The whole run of due entries
// is retired in one FIFO transaction (PopDrainedN), so a burst's worth of
// departures costs one accounting update instead of one per packet.
func (p *Pipe) drainStarted(now sim.Time) {
	n, bytes := 0, 0
	for {
		at, size, ok := p.started.peek()
		if !ok || at > now {
			break
		}
		p.started.pop()
		n++
		bytes += size
	}
	if n > 0 {
		p.fq.PopDrainedN(n, bytes)
	}
}

// kick starts the transmitter if it is idle and the queue is non-empty.
func (p *Pipe) kick() {
	if p.busy {
		return
	}
	pkt := p.q.Pop()
	if pkt == nil {
		return
	}
	waited := p.eng.Now() - pkt.EnqueuedAt
	pkt.QueueDelay += waited
	if p.DelayHook != nil {
		p.DelayHook(waited, pkt)
	}
	p.busy = true
	p.TxBytes += uint64(pkt.Size)
	p.TxPackets++
	p.eng.AfterDetached(p.txTime(pkt.Size), p.txDoneFn, pkt)
}

// txDone fires when the packet's last bit leaves the port (event-driven
// path only): plan delivery, then start on the next queued packet.
func (p *Pipe) txDone(pkt *packet.Packet) {
	p.busy = false
	p.planDelivery(p.eng.Now(), pkt)
	p.kick()
}

// planDelivery schedules pkt to arrive at end (when its last bit leaves
// the port) plus propagation and jitter. Only the earliest planned
// delivery holds an engine event; later ones queue in the inflight ring
// and are armed as each delivery fires.
func (p *Pipe) planDelivery(end sim.Time, pkt *packet.Packet) {
	d := p.delay
	if p.jitter > 0 {
		// Multiply-shift range reduction (one draw, no divide): the high
		// 64 bits of x*jitter are uniform over [0, jitter) to the same
		// negligible bias as the modulo it replaces.
		hi, _ := bits.Mul64(p.rng.Uint64(), uint64(p.jitter))
		d += sim.Time(hi)
	}
	at := end + d
	if at <= p.lastPlan {
		at = p.lastPlan + 1 // never reorder within a pipe
	}
	p.lastPlan = at
	if p.outbox != nil {
		// Boundary pipe: the destination is on another engine. Post to the
		// mailbox; the cluster flushes it at the window end, which is never
		// after `at` because at ≥ departure + delay ≥ window start + lookahead.
		p.outbox.Post(at, pkt)
		return
	}
	if p.deliveryArmed {
		p.inflight.push(at, pkt)
	} else {
		p.deliveryArmed = true
		p.eng.AtOrdered(p.lane, at, p.deliverFn, pkt)
	}
}

// deliver hands the head packet to the destination and continues the
// delivery chain. With bursting off, the next planned delivery is armed as
// an engine event before Receive runs, so the chain's event schedule is
// independent of whatever the receiver does.
//
// With bursting on, one engine event drains a whole back-to-back run: the
// next delivery's ordering word is reserved at exactly the point the
// per-packet path would arm it, and — after Receive, so anything the
// receiver scheduled gets its say — the delivery runs inline when the
// engine proves nothing else precedes it (sim.Engine.InlineRunnable).
// Every elided event carries the key it would have carried, so burst
// boundaries can never reorder same-instant deliveries relative to the
// per-packet path; the fingerprint gates hold this across the sweep.
func (p *Pipe) deliver(pkt *packet.Packet) {
	next, at, ok := p.inflight.pop()
	if !ok {
		p.deliveryArmed = false
		p.dst.Receive(pkt)
		return
	}
	if p.burstMax <= 1 {
		p.eng.AtOrdered(p.lane, at, p.deliverFn, next)
		p.dst.Receive(pkt)
		return
	}
	ord := p.eng.ReserveOrd(p.lane)
	p.dst.Receive(pkt)
	if p.probeSkip > 0 {
		p.probeSkip--
		p.eng.ScheduleReserved(at, ord, p.deliverFn, next)
		return
	}
	if !p.eng.InlineRunnable(at, ord) {
		// No burst forms: the chain re-arms exactly as the per-packet path
		// would, and the receiver's cursor bracket is never opened — a
		// singleton delivery pays nothing for burst mode. Only an
		// interleave defeat feeds the backoff; a window truncation says
		// nothing about the next window's traffic.
		if !p.eng.InlineTruncated(at) {
			if p.probeBackoff < probeCap {
				p.probeBackoff = p.probeBackoff*2 + 1
			}
			p.probeSkip = p.probeBackoff
		}
		p.eng.ScheduleReserved(at, ord, p.deliverFn, next)
		return
	}
	p.probeBackoff = 0
	// A burst formed. Bracket the rest of the run so the receiver can
	// memoize table lookups and batch its counter flushes; packet 1 ran
	// unbracketed, which is unobservable (the bracket is pure memoization).
	if p.bdst != nil {
		p.bdst.BeginBurst()
	}
	p.eng.AdvanceInline(at)
	pkt = next
	for n := 2; ; n++ {
		next, at, ok = p.inflight.pop()
		if !ok {
			p.deliveryArmed = false
			p.dst.Receive(pkt)
			break
		}
		ord = p.eng.ReserveOrd(p.lane)
		p.dst.Receive(pkt)
		if n < p.burstMax && p.eng.InlineRunnable(at, ord) {
			p.eng.AdvanceInline(at)
			pkt = next
			continue
		}
		p.eng.ScheduleReserved(at, ord, p.deliverFn, next)
		break
	}
	if p.bdst != nil {
		p.bdst.EndBurst()
	}
}

// deliveryRing is a growable circular buffer of (deliver-at, packet) pairs.
type deliveryRing struct {
	buf        []delivery
	head, size int
}

type delivery struct {
	at  sim.Time
	pkt *packet.Packet
}

func (r *deliveryRing) push(at sim.Time, pkt *packet.Packet) {
	if r.size == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.size)&(len(r.buf)-1)] = delivery{at, pkt}
	r.size++
}

func (r *deliveryRing) pop() (*packet.Packet, sim.Time, bool) {
	if r.size == 0 {
		return nil, 0, false
	}
	d := r.buf[r.head]
	r.buf[r.head] = delivery{}
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.size--
	return d.pkt, d.at, true
}

// startRing is a growable circular buffer of (serialization-start, size)
// pairs for packets accepted by the virtual transmitter but not yet in
// service.
type startRing struct {
	buf        []pendingStart
	head, size int
}

type pendingStart struct {
	at   sim.Time
	size int
}

func (r *startRing) push(at sim.Time, size int) {
	if r.size == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.size)&(len(r.buf)-1)] = pendingStart{at, size}
	r.size++
}

func (r *startRing) peek() (sim.Time, int, bool) {
	if r.size == 0 {
		return 0, 0, false
	}
	e := r.buf[r.head]
	return e.at, e.size, true
}

func (r *startRing) pop() {
	r.buf[r.head] = pendingStart{}
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.size--
}

func (r *startRing) grow() {
	n := len(r.buf) * 2
	if n == 0 {
		n = 16
	}
	buf := make([]pendingStart, n)
	for i := 0; i < r.size; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = buf
	r.head = 0
}

func (r *deliveryRing) grow() {
	n := len(r.buf) * 2
	if n == 0 {
		n = 16
	}
	buf := make([]delivery, n)
	for i := 0; i < r.size; i++ {
		buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
	}
	r.buf = buf
	r.head = 0
}
