package topo

import (
	"strconv"
	"sync"

	"aqueue/internal/ident"
	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/trace"
)

// FlowHandler consumes packets belonging to one transport flow.
type FlowHandler interface {
	Handle(p *packet.Packet)
}

// SendFilter intercepts a host's outbound packets before they reach the
// NIC. Returning true means the filter consumed the packet (e.g. queued it
// in an end-host rate limiter that will transmit it later via Transmit);
// false lets the packet go straight out. This is how the PRL/DRL baselines
// (§5.1) attach to hosts without the transport knowing.
type SendFilter func(p *packet.Packet) bool

// Host is an end host (a VM in the paper's terms): it owns the uplink pipe
// to its switch, dispatches received packets to per-flow handlers, and runs
// outbound packets through an optional SendFilter.
type Host struct {
	eng      *sim.Engine
	pool     *packet.Pool
	id       packet.HostID
	out      *Pipe
	handlers map[packet.FlowID]FlowHandler

	// flowSeq is the host engine's pre-registered "transport.flow" handle
	// (the sequence transport draws flow IDs from): registering once at
	// construction keeps per-flow allocation off the string-keyed map.
	flowSeq sim.SeqDomain
	// flowNext/flowStride, when stride > 0, switch the host to
	// partition-invariant flow IDs: host h of H draws base+h, base+h+H,
	// base+h+2H, ... Each host owns a residue class, so the IDs a flow gets
	// — and everything derived from them, ECMP path hashes above all —
	// depend only on which host started it and how many flows that host
	// started before, never on how the topology is partitioned across
	// engines. Cluster builders configure this; without it flow IDs come
	// from the engine sequence (dense, but shared across the engine).
	flowNext   uint64
	flowStride uint64

	// dense, when non-nil, direct-indexes handlers by flow ID. Flow IDs
	// come from the engine's "transport.flow" sequence, so they are dense
	// per engine; per host the range stays tight enough for a flat slice
	// until flows churn far past the live set, at which point ident.Dense
	// rejects the layout and lookups fall back to the map. Rebuilt lazily
	// (dirty) so registration bursts at setup cost one rebuild. denseOK
	// permits the layout, fixed at construction from the engine options.
	dense   []FlowHandler
	dirty   bool
	denseOK bool

	// shared is set when the engine belongs to a multi-domain cluster: a
	// sender constructed at runtime in another domain registers its
	// receiving half here (transport.NewSender), possibly while this
	// domain's worker is mid-window, so dispatch-table access must take
	// mu. Determinism is unaffected — a flow's packets cannot reach this
	// host before the registration's window has flushed, so no lookup
	// ever observes a flow "early" — the lock only makes the table's
	// memory safe. Single-engine hosts skip it entirely.
	shared bool
	mu     sync.Mutex

	// Filter, when non-nil, intercepts outbound packets (see SendFilter).
	Filter SendFilter

	// RxHook, when set, observes every packet delivered to this host
	// before flow dispatch; the experiment harness uses it for throughput
	// and delay measurement.
	RxHook func(p *packet.Packet)

	// Counters.
	RxPackets uint64
	RxBytes   uint64
	Orphans   uint64 // packets with no registered flow handler

	// trace, when non-nil, receives a Send event per outbound packet and a
	// Recv event per delivery. traceWhere is precomputed at SetTrace time so
	// the hot path never formats strings.
	trace      trace.Sink
	traceWhere string
}

// NewHost returns a host with the given ID; attach its uplink with SetUplink.
func NewHost(eng *sim.Engine, id packet.HostID) *Host {
	return &Host{
		eng:      eng,
		pool:     packet.PoolFor(eng),
		id:       id,
		flowSeq:  eng.SeqDomain("transport.flow"),
		handlers: make(map[packet.FlowID]FlowHandler),
		denseOK:  eng.Options().DenseForwarding,
		shared:   eng.MultiDomain(),
	}
}

// HostStats is a snapshot of the host's delivery counters, following the
// repo-wide stats convention (value type, no locks held).
type HostStats struct {
	RxPackets uint64 `json:"rx_packets"`
	RxBytes   uint64 `json:"rx_bytes"`
	Orphans   uint64 `json:"orphans"`
}

// Stats returns a snapshot of the delivery counters.
func (h *Host) Stats() HostStats {
	return HostStats{RxPackets: h.RxPackets, RxBytes: h.RxBytes, Orphans: h.Orphans}
}

// SetFlowIDStride switches the host to partition-invariant flow-ID
// allocation: successive NextFlowID calls return first, first+stride,
// first+2·stride, ... Cluster builders give host h of H hosts first=h+1
// and stride=H, so every host owns a residue class and IDs are independent
// of domain placement.
func (h *Host) SetFlowIDStride(first, stride uint64) {
	h.flowNext = first
	h.flowStride = stride
}

// NextFlowID allocates the ID for a flow originating at this host: from
// the host's stride when configured (see SetFlowIDStride), else from the
// engine's shared "transport.flow" sequence via the pre-registered handle.
func (h *Host) NextFlowID() packet.FlowID {
	if h.flowStride > 0 {
		id := h.flowNext
		h.flowNext += h.flowStride
		return packet.FlowID(id)
	}
	return packet.FlowID(h.eng.NextIn(h.flowSeq))
}

// ID returns the host identifier.
func (h *Host) ID() packet.HostID { return h.id }

// Engine returns the simulation engine the host runs on.
func (h *Host) Engine() *sim.Engine { return h.eng }

// SetTrace attaches a sink that receives a Send event for every packet
// this host emits and a Recv event for every packet delivered to it,
// labelled "host:<id>". A nil sink detaches tracing.
func (h *Host) SetTrace(s trace.Sink) {
	h.trace = s
	h.traceWhere = "host:" + strconv.Itoa(int(h.id))
}

// SetUplink attaches the pipe that carries this host's outbound traffic.
func (h *Host) SetUplink(p *Pipe) { h.out = p }

// Uplink returns the host's outbound pipe.
func (h *Host) Uplink() *Pipe { return h.out }

// Register installs the handler for a flow ID. On a multi-domain host the
// caller may be another domain's worker (see the shared field).
func (h *Host) Register(id packet.FlowID, fh FlowHandler) {
	if h.shared {
		h.mu.Lock()
		defer h.mu.Unlock()
	}
	h.handlers[id] = fh
	h.dirty = true
}

// Unregister removes a flow handler.
func (h *Host) Unregister(id packet.FlowID) {
	if h.shared {
		h.mu.Lock()
		defer h.mu.Unlock()
	}
	delete(h.handlers, id)
	h.dirty = true
}

// rebuildDispatch refreshes the dense dispatch slice after handler churn.
func (h *Host) rebuildDispatch() {
	h.dirty = false
	h.dense = nil
	if !h.denseOK {
		return
	}
	maxID := -1
	for id := range h.handlers {
		if int(id) > maxID {
			maxID = int(id)
		}
	}
	if !ident.Dense(maxID, len(h.handlers)) {
		return
	}
	d := make([]FlowHandler, maxID+1)
	for id, fh := range h.handlers {
		d[id] = fh
	}
	h.dense = d
}

// handler resolves the flow's handler via the dense slice when present,
// else the map. Both layouts hold the same values, so which one serves a
// lookup is unobservable in results — as is the rebuild's timing relative
// to a foreign registration, which only ever adds flows whose packets
// haven't crossed the boundary yet.
func (h *Host) handler(id packet.FlowID) (fh FlowHandler) {
	if h.shared {
		h.mu.Lock()
		defer h.mu.Unlock()
	}
	if h.dirty {
		h.rebuildDispatch()
	}
	if h.dense != nil {
		if i := uint64(id); i < uint64(len(h.dense)) {
			fh = h.dense[i]
		}
		return fh
	}
	return h.handlers[id]
}

// Receive implements Receiver: account the packet, dispatch by flow ID,
// and release it — delivery ends the packet's ownership chain. Handlers
// and hooks may read the packet during the call but must not retain it.
func (h *Host) Receive(p *packet.Packet) {
	h.RxPackets++
	h.RxBytes += uint64(p.Size)
	if h.trace != nil {
		h.trace.Record(trace.FromPacket(h.eng.Now(), trace.Recv, p, h.traceWhere))
	}
	if h.RxHook != nil {
		h.RxHook(p)
	}
	if fh := h.handler(p.Flow); fh != nil {
		fh.Handle(p)
	} else {
		h.Orphans++
	}
	h.pool.Release(p)
}

// Send emits a packet from this host, honouring the send filter.
func (h *Host) Send(p *packet.Packet) {
	if h.trace != nil {
		h.trace.Record(trace.FromPacket(h.eng.Now(), trace.Send, p, h.traceWhere))
	}
	if h.Filter != nil && h.Filter(p) {
		return
	}
	h.Transmit(p)
}

// Transmit puts the packet on the uplink, bypassing the send filter. Rate
// limiters call this when they release a shaped packet.
func (h *Host) Transmit(p *packet.Packet) { h.out.Send(p) }
