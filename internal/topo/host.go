package topo

import (
	"aqueue/internal/packet"
	"aqueue/internal/sim"
)

// FlowHandler consumes packets belonging to one transport flow.
type FlowHandler interface {
	Handle(p *packet.Packet)
}

// SendFilter intercepts a host's outbound packets before they reach the
// NIC. Returning true means the filter consumed the packet (e.g. queued it
// in an end-host rate limiter that will transmit it later via Transmit);
// false lets the packet go straight out. This is how the PRL/DRL baselines
// (§5.1) attach to hosts without the transport knowing.
type SendFilter func(p *packet.Packet) bool

// Host is an end host (a VM in the paper's terms): it owns the uplink pipe
// to its switch, dispatches received packets to per-flow handlers, and runs
// outbound packets through an optional SendFilter.
type Host struct {
	eng      *sim.Engine
	id       packet.HostID
	out      *Pipe
	handlers map[packet.FlowID]FlowHandler

	// Filter, when non-nil, intercepts outbound packets (see SendFilter).
	Filter SendFilter

	// RxHook, when set, observes every packet delivered to this host
	// before flow dispatch; the experiment harness uses it for throughput
	// and delay measurement.
	RxHook func(p *packet.Packet)

	// Counters.
	RxPackets uint64
	RxBytes   uint64
	Orphans   uint64 // packets with no registered flow handler
}

// NewHost returns a host with the given ID; attach its uplink with SetUplink.
func NewHost(eng *sim.Engine, id packet.HostID) *Host {
	return &Host{eng: eng, id: id, handlers: make(map[packet.FlowID]FlowHandler)}
}

// ID returns the host identifier.
func (h *Host) ID() packet.HostID { return h.id }

// Engine returns the simulation engine the host runs on.
func (h *Host) Engine() *sim.Engine { return h.eng }

// SetUplink attaches the pipe that carries this host's outbound traffic.
func (h *Host) SetUplink(p *Pipe) { h.out = p }

// Uplink returns the host's outbound pipe.
func (h *Host) Uplink() *Pipe { return h.out }

// Register installs the handler for a flow ID.
func (h *Host) Register(id packet.FlowID, fh FlowHandler) { h.handlers[id] = fh }

// Unregister removes a flow handler.
func (h *Host) Unregister(id packet.FlowID) { delete(h.handlers, id) }

// Receive implements Receiver: account the packet and dispatch by flow ID.
func (h *Host) Receive(p *packet.Packet) {
	h.RxPackets++
	h.RxBytes += uint64(p.Size)
	if h.RxHook != nil {
		h.RxHook(p)
	}
	if fh, ok := h.handlers[p.Flow]; ok {
		fh.Handle(p)
		return
	}
	h.Orphans++
}

// Send emits a packet from this host, honouring the send filter.
func (h *Host) Send(p *packet.Packet) {
	if h.Filter != nil && h.Filter(p) {
		return
	}
	h.Transmit(p)
}

// Transmit puts the packet on the uplink, bypassing the send filter. Rate
// limiters call this when they release a shaped packet.
func (h *Host) Transmit(p *packet.Packet) { h.out.Send(p) }
