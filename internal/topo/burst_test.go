package topo

import (
	"testing"

	"aqueue/internal/core"
	"aqueue/internal/packet"
	"aqueue/internal/queue"
	"aqueue/internal/sim"
	"aqueue/internal/units"
)

// The burst-drain edge cases: every test runs the same scenario with burst
// draining on and off and requires identical deliveries — same packets,
// same instants, same marks and drops — while asserting the burst run
// actually elided events (Inlined > 0), so a silently disabled burst path
// cannot pass.

// burstRun captures one delivery trace.
type burstRun struct {
	times   []sim.Time
	ce      []bool
	seqs    []int64
	inlined uint64
}

func traceOf(eng *sim.Engine, c *collector) burstRun {
	r := burstRun{inlined: eng.Stats().Inlined, times: c.times}
	for _, p := range c.pkts {
		r.ce = append(r.ce, p.CE)
		r.seqs = append(r.seqs, p.Seq)
	}
	return r
}

func requireSameTrace(t *testing.T, on, off burstRun) {
	t.Helper()
	if on.inlined == 0 {
		t.Fatal("burst run inlined no deliveries — bursting never engaged")
	}
	if off.inlined != 0 {
		t.Fatalf("per-packet run inlined %d deliveries", off.inlined)
	}
	if len(on.times) != len(off.times) {
		t.Fatalf("burst delivered %d packets, per-packet %d", len(on.times), len(off.times))
	}
	for i := range on.times {
		if on.times[i] != off.times[i] {
			t.Fatalf("delivery %d at %v under burst, %v per-packet", i, on.times[i], off.times[i])
		}
		if on.seqs[i] != off.seqs[i] {
			t.Fatalf("delivery %d is seq %d under burst, %d per-packet", i, on.seqs[i], off.seqs[i])
		}
		if on.ce[i] != off.ce[i] {
			t.Fatalf("delivery %d CE = %v under burst, %v per-packet", i, on.ce[i], off.ce[i])
		}
	}
}

// TestBurstECNMarksMatchPerPacket drives a back-to-back run through a pipe
// whose FIFO crosses its ECN threshold mid-burst: the marked suffix must be
// the same set of packets the per-packet path marks.
func TestBurstECNMarksMatchPerPacket(t *testing.T) {
	run := func(burst int) burstRun {
		eng := sim.NewEngine(sim.WithBurstSize(burst))
		c := &collector{eng: eng}
		p := NewPipe(eng, 10*units.Gbps, 0, 64*1040, 3*1040, c)
		for i := 0; i < 24; i++ {
			pkt := packet.NewData(0, 1, 1, int64(i*1000), 1000)
			pkt.EcnCapable = true
			p.Send(pkt)
		}
		eng.Run()
		return traceOf(eng, c)
	}
	requireSameTrace(t, run(sim.DefaultBurstSize), run(0))
}

// TestBurstTailDropMatchesPerPacket overfills a slow pipe so the tail of
// the run drops: the surviving set and the drop counter must not depend on
// burst draining.
func TestBurstTailDropMatchesPerPacket(t *testing.T) {
	run := func(burst int) (burstRun, uint64) {
		eng := sim.NewEngine(sim.WithBurstSize(burst))
		c := &collector{eng: eng}
		p := NewPipe(eng, 10*units.Gbps, 0, 8*1040, 0, c)
		for i := 0; i < 32; i++ {
			p.Send(packet.NewData(0, 1, 1, int64(i*1000), 1000))
		}
		eng.Run()
		return traceOf(eng, c), p.Queue().Stats().Dropped
	}
	on, onDrops := run(sim.DefaultBurstSize)
	off, offDrops := run(0)
	if onDrops == 0 {
		t.Fatal("scenario produced no tail drops")
	}
	if onDrops != offDrops {
		t.Fatalf("burst dropped %d, per-packet %d", onDrops, offDrops)
	}
	requireSameTrace(t, on, off)
}

// TestBurstDRRAndFIFOCoexist puts a DRR-scheduled port and a FIFO port on
// one switch — the event-driven and the virtual-transmitter paths sharing
// one burst bracket — and requires identical interleaved deliveries.
func TestBurstDRRAndFIFOCoexist(t *testing.T) {
	run := func(burst int) (burstRun, burstRun, SwitchStats) {
		eng := sim.NewEngine(sim.WithBurstSize(burst))
		sw := NewSwitch(eng, "mix")
		c1 := &collector{eng: eng}
		c2 := &collector{eng: eng}
		drrPort := NewPipe(eng, units.Gbps, 0, 0, 0, c1)
		drrPort.SetScheduler(queue.NewDRR(2, 0, 64*1540, nil))
		fifoPort := NewPipe(eng, units.Gbps, 0, 0, 0, c2)
		sw.AddRoute(1, sw.AddPort(drrPort))
		sw.AddRoute(2, sw.AddPort(fifoPort))
		// An ingress AQ on the FIFO-bound entity so the burst cursors see
		// same-entity coalescing while the DRR port drains event by event.
		sw.Ingress.Deploy(core.Config{ID: 9, Rate: units.Gbps, Limit: 64 * 1540})
		feed := NewPipe(eng, 10*units.Gbps, 0, 0, 0, sw)
		for i := 0; i < 24; i++ {
			a := packet.NewData(0, 1, packet.FlowID(i%2), int64(i*1000), 1000)
			feed.Send(a)
			b := packet.NewData(0, 2, 3, int64(i*1000), 1000)
			b.IngressAQ = 9
			feed.Send(b)
		}
		eng.Run()
		return traceOf(eng, c1), traceOf(eng, c2), sw.Stats()
	}
	on1, on2, onStats := run(sim.DefaultBurstSize)
	off1, off2, offStats := run(0)
	if onStats != offStats {
		t.Fatalf("switch stats differ: burst %+v, per-packet %+v", onStats, offStats)
	}
	// The feed pipe bursts into the switch either way; the DRR port's own
	// deliveries may or may not inline, so only the combined run must have
	// inlined something.
	if on1.inlined == 0 && on2.inlined == 0 {
		t.Fatal("burst run inlined no deliveries")
	}
	on1.inlined, on2.inlined = 1, 1 // requireSameTrace per-port: already checked
	off1.inlined, off2.inlined = 0, 0
	requireSameTrace(t, on1, off1)
	requireSameTrace(t, on2, off2)
}

// TestBurstTruncatedAtClusterWindow runs a long back-to-back train inside a
// partitioned cluster whose 1 us lookahead windows are far shorter than the
// train: every window boundary must truncate the burst (the engine may not
// advance past its window), yet the delivery schedule stays identical to
// the per-packet run.
func TestBurstTruncatedAtClusterWindow(t *testing.T) {
	run := func(burst int) (burstRun, uint64) {
		cl := sim.NewCluster(2, sim.WithBurstSize(burst))
		// Mutual boundary mailboxes plus a live tick on engine 1 keep
		// engine 0 on a short leash: each round may only advance it
		// ~1-2 us, so the train keeps hitting round boundaries. (Without
		// the coupling, the EAT fixpoint would prove one side inert and
		// run the other to the deadline in a single round.)
		cl.Outbox(cl.Engine(1), cl.Engine(0), cl.NextLane(), sim.Microsecond, func(any) {})
		cl.Outbox(cl.Engine(0), cl.Engine(1), cl.NextLane(), sim.Microsecond, func(any) {})
		ticker := cl.Engine(1)
		var tick func()
		tick = func() {
			if ticker.Now() < 100*sim.Microsecond {
				ticker.After(sim.Microsecond, tick)
			}
		}
		ticker.At(0, tick)
		eng := cl.Engine(0)
		c := &collector{eng: eng}
		p := NewPipe(eng, 10*units.Gbps, 100, 0, 0, c)
		p.SetLane(cl.NextLane())
		for i := 0; i < 40; i++ {
			p.Send(packet.NewData(0, 1, 1, int64(i*1000), 1000))
		}
		cl.RunUntil(100 * sim.Microsecond)
		return traceOf(eng, c), cl.Windows
	}
	on, onWindows := run(sim.DefaultBurstSize)
	off, offWindows := run(0)
	if onWindows < 10 {
		t.Fatalf("cluster ran %d windows — the train never crossed window boundaries", onWindows)
	}
	if onWindows != offWindows {
		t.Fatalf("burst ran %d windows, per-packet %d", onWindows, offWindows)
	}
	// 40 packets at 832 ns spacing span ~33 windows, so bursts were cut at
	// boundaries; every delivery must still land on the per-packet schedule.
	if on.inlined >= uint64(len(on.times)-1) {
		t.Fatalf("burst inlined %d of %d deliveries — window truncation never happened", on.inlined, len(on.times))
	}
	requireSameTrace(t, on, off)
}
