package topo

import (
	"testing"

	"aqueue/internal/packet"
	"aqueue/internal/sim"
)

// TestDumbbellInBoundaryDelivery: a 2-domain dumbbell delivers traffic in
// both directions across the trunk mailboxes, and the packets — acquired
// from the sending domain's free list, released into the receiving
// domain's — survive the hand-off (the aqdebug CI step runs this same test
// under pool poisoning to prove no double-free or cross-drain).
func TestDumbbellInBoundaryDelivery(t *testing.T) {
	c := sim.NewCluster(2)
	d := NewDumbbellIn(c, 2, 2, DefaultSim(), DefaultSim())
	if d.S1.Engine() == d.S2.Engine() {
		t.Fatal("S1 and S2 should live in different domains")
	}
	const each = 50
	for i := 0; i < each; i++ {
		at := sim.Time(i) * 10 * sim.Microsecond
		d.Left[0].Engine().At(at, func() {
			d.Left[0].Send(packet.NewData(d.Left[0].ID(), d.Right[1].ID(), 7, 0, 1000))
		})
		d.Right[0].Engine().At(at, func() {
			d.Right[0].Send(packet.NewData(d.Right[0].ID(), d.Left[1].ID(), 8, 0, 1000))
		})
	}
	c.RunUntil(20 * sim.Millisecond)
	if d.Right[1].RxPackets != each || d.Left[1].RxPackets != each {
		t.Fatalf("delivered %d right / %d left, want %d each",
			d.Right[1].RxPackets, d.Left[1].RxPackets, each)
	}
	if d.S1.RouteMiss != 0 || d.S2.RouteMiss != 0 {
		t.Fatalf("route misses: S1=%d S2=%d", d.S1.RouteMiss, d.S2.RouteMiss)
	}
	// The one-shot sends span the first ~500 us of a 20 ms horizon. The
	// per-channel scheduler needs a healthy number of rounds while traffic
	// is in flight, but strides over the idle tail instead of paying the
	// old horizon/lookahead = 2000 global windows.
	if c.Windows < 20 || c.Windows >= 2000 {
		t.Fatalf("got %d rounds, want within [20, 2000): many while active, none for the idle tail", c.Windows)
	}
}

// TestFatTreeAllPairsReachable: in a k=4 fat tree every ordered host pair
// exchanges a packet with no routing miss, across 2 domains.
func TestFatTreeAllPairsReachable(t *testing.T) {
	c := sim.NewCluster(2)
	f := NewFatTreeIn(c, 4, DefaultSim(), DefaultSim())
	n := len(f.Hosts)
	if n != 16 {
		t.Fatalf("k=4 fat tree has %d hosts, want 16", n)
	}
	sent := 0
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			if s == d {
				continue
			}
			src, dst := f.Hosts[s], f.Hosts[d]
			flow := packet.FlowID(s*n + d + 1)
			src.Engine().At(sim.Time(sent)*sim.Microsecond, func() {
				src.Send(packet.NewData(src.ID(), dst.ID(), flow, 0, 1000))
			})
			sent++
		}
	}
	c.RunUntil(10 * sim.Millisecond)
	var rx uint64
	for _, h := range f.Hosts {
		rx += h.RxPackets
	}
	if rx != uint64(sent) {
		t.Fatalf("delivered %d of %d packets", rx, sent)
	}
	for _, sw := range f.Cores {
		if sw.RouteMiss != 0 {
			t.Fatalf("%v: route miss", sw)
		}
	}
}

// fatTreeTrafficFingerprint runs a fixed synthetic traffic pattern on a
// k=4 fat tree split into n domains and folds every delivery's
// (host, time, size) into an order-independent checksum.
func fatTreeTrafficFingerprint(t *testing.T, domains int) uint64 {
	t.Helper()
	c := sim.NewCluster(domains)
	f := NewFatTreeIn(c, 4, DefaultSim(), DefaultSim())
	n := len(f.Hosts)
	var sum uint64
	for i, h := range f.Hosts {
		h := h
		id := uint64(i)
		h.RxHook = func(p *packet.Packet) {
			// splitmix64-style mix, summed: commutative, so the checksum is
			// independent of the order domains execute within a window.
			z := id<<48 ^ uint64(h.Engine().Now())<<8 ^ uint64(p.Size) + 0x9e3779b97f4a7c15
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			sum += z ^ (z >> 27)
		}
	}
	// Bursty all-to-all shifts: every host streams to several destinations,
	// enough volume to queue, drop and jitter on the shared tiers.
	for s := 0; s < n; s++ {
		src := f.Hosts[s]
		for k := 1; k <= 5; k++ {
			dst := f.Hosts[(s+k*3)%n]
			if dst == src {
				continue
			}
			flow := src.NextFlowID()
			for q := 0; q < 40; q++ {
				at := sim.Time(s)*200 + sim.Time(q)*3*sim.Microsecond
				src.Engine().At(at, func() {
					src.Send(packet.NewData(src.ID(), dst.ID(), flow, 0, 1000))
				})
			}
		}
	}
	c.RunUntil(5 * sim.Millisecond)
	return sum
}

// TestFatTreePartitionParity: the same fat-tree traffic produces identical
// delivery checksums for 1, 2 and 4 domains — ECMP hashes, AQM seeds,
// jitter streams and delivery ordering all partition-invariant.
func TestFatTreePartitionParity(t *testing.T) {
	base := fatTreeTrafficFingerprint(t, 1)
	for _, n := range []int{2, 4} {
		if got := fatTreeTrafficFingerprint(t, n); got != base {
			t.Errorf("%d-domain checksum %#x differs from 1-domain %#x", n, got, base)
		}
	}
}
