package topo

import (
	"fmt"

	"aqueue/internal/core"
	"aqueue/internal/ident"
	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/trace"
)

// Switch is a store-and-forward switch with per-destination routing and the
// two AQ match points of §4.2: the ingress pipeline (matched on the
// packet's IngressAQ tag when the packet arrives) and the egress pipeline
// (matched on the EgressAQ tag before the packet is enqueued on its output
// port).
type Switch struct {
	eng    *sim.Engine
	pool   *packet.Pool
	name   string
	ports  []*Pipe
	routes map[packet.HostID]int
	// ecmp holds multi-path routes: the output port is chosen by a hash of
	// the flow ID, so one flow always follows one path (no reordering)
	// while flows spread across the group.
	ecmp map[packet.HostID][]int

	// fwd, when non-nil, is the dense forwarding table: indexed by
	// destination host ID, each entry caches the resolved egress pipe (or
	// the resolved ECMP pipe group), so the common hop touches no map and
	// no s.ports indirection. Rebuilt lazily (fwdDirty) after route
	// changes; ident.Dense decides whether the host-ID range justifies it.
	// denseFwd permits the layout, fixed at construction from the engine
	// options.
	fwd      []fwdEntry
	fwdDirty bool
	denseFwd bool

	// bursting is true between BeginBurst and EndBurst: Receive then runs
	// the AQ pipelines through the table cursors, which memoize the last
	// entity's lookup and batch counter updates for the whole burst.
	bursting bool
	inCur    core.BurstCursor
	egCur    core.BurstCursor

	// Ingress and Egress are the AQ tables for the two pipeline positions.
	Ingress *core.Table
	Egress  *core.Table

	// WorkConserving enables the §6 extension: AQ processing is bypassed
	// while the physical queue of the packet's output port is empty, so
	// entities may exceed their allocations when the network is idle.
	WorkConserving bool

	// AQDropHook, when set, observes every packet an AQ pipeline drops at
	// this switch (for tracing and per-entity loss accounting).
	AQDropHook func(p *packet.Packet)

	// Counters.
	RxPackets  uint64
	AQDrops    uint64
	RouteMiss  uint64
	AQBypassed uint64
}

// NewSwitch returns an empty switch, with the dense layouts of its AQ
// tables and forwarding table taken from the engine's options.
func NewSwitch(eng *sim.Engine, name string) *Switch {
	o := eng.Options()
	return &Switch{
		eng:      eng,
		pool:     packet.PoolFor(eng),
		name:     name,
		routes:   make(map[packet.HostID]int),
		ecmp:     make(map[packet.HostID][]int),
		Ingress:  core.NewTableDense(o.DenseTables),
		Egress:   core.NewTableDense(o.DenseTables),
		denseFwd: o.DenseForwarding,
	}
}

// Engine returns the simulation engine (domain) the switch runs on.
// Experiments that mutate a switch's AQ tables from timed events must
// schedule them here, not on an arbitrary domain's engine.
func (s *Switch) Engine() *sim.Engine { return s.eng }

// SetTrace attaches a sink to both AQ pipelines, labelled
// "<name>:ingress" and "<name>:egress". The switch itself emits nothing —
// the tables record the AQ drop/mark events, and hosts record the
// send/receive endpoints — so one sink attached at every component sees
// each occurrence exactly once. A nil sink detaches.
func (s *Switch) SetTrace(sk trace.Sink) {
	s.Ingress.SetTrace(sk, s.name+":ingress")
	s.Egress.SetTrace(sk, s.name+":egress")
}

// AddPort attaches an egress pipe and returns its port number.
func (s *Switch) AddPort(p *Pipe) int {
	s.ports = append(s.ports, p)
	return len(s.ports) - 1
}

// Port returns the pipe of the given port number.
func (s *Switch) Port(n int) *Pipe { return s.ports[n] }

// AddRoute directs traffic for dst out of the given port.
func (s *Switch) AddRoute(dst packet.HostID, port int) {
	if port < 0 || port >= len(s.ports) {
		panic(fmt.Sprintf("switch %s: route to %d via invalid port %d", s.name, dst, port))
	}
	s.routes[dst] = port
	s.fwdDirty = true
}

// AddECMPRoute directs traffic for dst over the given port group, hashed
// by flow ID.
func (s *Switch) AddECMPRoute(dst packet.HostID, ports ...int) {
	for _, port := range ports {
		if port < 0 || port >= len(s.ports) {
			panic(fmt.Sprintf("switch %s: ECMP route to %d via invalid port %d", s.name, dst, port))
		}
	}
	s.ecmp[dst] = append([]int(nil), ports...)
	s.fwdDirty = true
}

// fwdEntry is one dense forwarding slot: an exact route caches its pipe, an
// ECMP route caches the resolved pipe group (hashed per flow at lookup).
// Exact routes win, matching outPort's precedence.
type fwdEntry struct {
	pipe  *Pipe
	group []*Pipe
}

// rebuildFwd refreshes the dense forwarding table after a route change. The
// table is dropped (map fallback) when dense forwarding is disabled, when
// any destination ID is negative, or when the ID range is too sparse.
func (s *Switch) rebuildFwd() {
	s.fwdDirty = false
	s.fwd = nil
	if !s.denseFwd {
		return
	}
	maxDst, count := -1, 0
	seen := func(dst packet.HostID) bool {
		if dst < 0 {
			return false
		}
		if int(dst) > maxDst {
			maxDst = int(dst)
		}
		count++
		return true
	}
	for dst := range s.routes {
		if !seen(dst) {
			return
		}
	}
	for dst := range s.ecmp {
		if _, dup := s.routes[dst]; dup {
			continue // exact route shadows the group; count once
		}
		if !seen(dst) {
			return
		}
	}
	if !ident.Dense(maxDst, count) {
		return
	}
	fwd := make([]fwdEntry, maxDst+1)
	for dst, port := range s.routes {
		fwd[dst].pipe = s.ports[port]
	}
	for dst, group := range s.ecmp {
		pipes := make([]*Pipe, len(group))
		for i, port := range group {
			pipes[i] = s.ports[port]
		}
		fwd[dst].group = pipes
	}
	s.fwd = fwd
}

// outPipe resolves the egress pipe for a packet via the dense table when
// present, else the route maps. Both paths implement the same precedence
// (exact route, then ECMP by flow hash), so the choice of layout is
// unobservable in results.
func (s *Switch) outPipe(p *packet.Packet) *Pipe {
	if s.fwdDirty {
		s.rebuildFwd()
	}
	if s.fwd != nil {
		if d := uint(p.Dst); d < uint(len(s.fwd)) {
			e := &s.fwd[d]
			if e.pipe != nil {
				return e.pipe
			}
			if n := uint64(len(e.group)); n > 0 {
				return e.group[flowHash(p.Flow)%n]
			}
		}
		return nil
	}
	port, ok := s.outPort(p)
	if !ok {
		return nil
	}
	return s.ports[port]
}

// outPort resolves the output port for a packet: exact routes win, then
// ECMP groups.
func (s *Switch) outPort(p *packet.Packet) (int, bool) {
	if port, ok := s.routes[p.Dst]; ok {
		return port, true
	}
	if group, ok := s.ecmp[p.Dst]; ok && len(group) > 0 {
		return group[flowHash(p.Flow)%uint64(len(group))], true
	}
	return 0, false
}

// flowHash mixes the flow ID (splitmix64 finalizer) so consecutive IDs
// spread across ECMP groups.
func flowHash(f packet.FlowID) uint64 {
	z := uint64(f) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Receive implements Receiver: it runs the ingress AQ pipeline, routes the
// packet, runs the egress AQ pipeline, and enqueues on the output port.
func (s *Switch) Receive(p *packet.Packet) {
	s.RxPackets++
	out := s.outPipe(p)
	if out == nil {
		s.RouteMiss++
		s.pool.Release(p)
		return
	}
	if s.WorkConserving && out.Backlog() == 0 {
		// §6: bypass AQ while the physical queue is empty.
		s.AQBypassed++
		out.Send(p)
		return
	}
	now := s.eng.Now()
	if s.bursting {
		if s.inCur.Process(now, p.IngressAQ, p) == core.Drop {
			s.aqDrop(p)
			return
		}
		if s.egCur.Process(now, p.EgressAQ, p) == core.Drop {
			s.aqDrop(p)
			return
		}
		out.Send(p)
		return
	}
	if s.Ingress.Process(now, p.IngressAQ, p) == core.Drop {
		s.aqDrop(p)
		return
	}
	if s.Egress.Process(now, p.EgressAQ, p) == core.Drop {
		s.aqDrop(p)
		return
	}
	out.Send(p)
}

// BeginBurst brackets a delivery burst from one ingress pipe: the AQ
// pipelines run through per-burst table cursors that coalesce same-entity
// lookups and counter updates into one transaction each (core.BurstCursor).
// Verdicts are byte-identical to the per-packet path.
func (s *Switch) BeginBurst() {
	s.inCur.Bind(s.Ingress)
	s.egCur.Bind(s.Egress)
	s.bursting = true
}

// EndBurst closes the bracket, flushing the cursors' batched counts into
// the tables' atomic counters.
func (s *Switch) EndBurst() {
	s.inCur.Flush()
	s.egCur.Flush()
	s.bursting = false
}

// SwitchStats is a snapshot of the switch's data-plane counters, following
// the repo-wide stats convention (value type, no locks held). The AQ
// tables keep their own TableStats.
type SwitchStats struct {
	RxPackets  uint64 `json:"rx_packets"`
	AQDrops    uint64 `json:"aq_drops"`
	RouteMiss  uint64 `json:"route_miss"`
	AQBypassed uint64 `json:"aq_bypassed"`
}

// Stats returns a snapshot of the forwarding counters.
func (s *Switch) Stats() SwitchStats {
	return SwitchStats{
		RxPackets:  s.RxPackets,
		AQDrops:    s.AQDrops,
		RouteMiss:  s.RouteMiss,
		AQBypassed: s.AQBypassed,
	}
}

// aqDrop accounts an AQ-pipeline drop and releases the packet: the switch
// is the packet's last owner on this path.
func (s *Switch) aqDrop(p *packet.Packet) {
	s.AQDrops++
	if s.AQDropHook != nil {
		s.AQDropHook(p)
	}
	s.pool.Release(p)
}

// String identifies the switch in logs.
func (s *Switch) String() string { return "switch:" + s.name }
