package topo

import (
	"fmt"

	"aqueue/internal/packet"
	"aqueue/internal/sim"
)

// FatTree is a k-ary fat tree (k even): k pods of k/2 edge and k/2
// aggregation switches, (k/2)² core switches, and k/2 hosts per edge
// switch — k³/4 hosts in all. Traffic climbs with ECMP (edge → any of the
// pod's aggs, agg → any of its k/2 cores) and descends on exact routes, so
// one flow follows one path. This is the large-fabric shape the benchcore
// partitioning scenario scales on: pods are natural domains with all
// boundary links in the agg<->core tier.
type FatTree struct {
	Eng   *sim.Engine
	K     int
	Cores []*Switch
	// Aggs[p][j] and Edges[p][e] are pod p's aggregation and edge
	// switches; agg j uplinks to core group j (cores j·k/2 … j·k/2+k/2-1).
	Aggs  [][]*Switch
	Edges [][]*Switch
	Hosts []*Host
	// HostDown[h] is the edge-switch pipe down to host h.
	HostDown []*Pipe
}

// HostsPerPod returns (k/2)².
func (f *FatTree) HostsPerPod() int { return (f.K / 2) * (f.K / 2) }

// Host returns the host with the given ID.
func (f *FatTree) Host(id packet.HostID) *Host { return f.Hosts[id] }

// Pod returns the pod index of a host.
func (f *FatTree) Pod(id packet.HostID) int { return int(id) / f.HostsPerPod() }

// NewFatTreeIn builds a k-ary fat tree across a cluster's domains: pod p
// lives in domain p mod N and core switch c in domain c mod N, so host
// edges and the intra-pod mesh are always domain-internal and only
// agg<->core hops (and nothing else) cross domains. edge configures the
// host links, fabricLink every switch<->switch link.
func NewFatTreeIn(c *sim.Cluster, k int, edge, fabricLink LinkSpec) *FatTree {
	if k < 2 || k%2 != 0 {
		panic("topo: fat tree needs an even k >= 2")
	}
	b := newCbuild(c)
	half := k / 2
	podEng := func(p int) *sim.Engine { return c.Engine(p % c.N()) }
	coreEng := func(i int) *sim.Engine { return c.Engine(i % c.N()) }
	f := &FatTree{Eng: c.Engine(0), K: k}

	// Cores first, then pods, in fixed construction order.
	for i := 0; i < half*half; i++ {
		f.Cores = append(f.Cores, NewSwitch(coreEng(i), fmt.Sprintf("core%d", i)))
	}
	f.Aggs = make([][]*Switch, k)
	f.Edges = make([][]*Switch, k)
	for p := 0; p < k; p++ {
		for j := 0; j < half; j++ {
			f.Aggs[p] = append(f.Aggs[p], NewSwitch(podEng(p), fmt.Sprintf("agg%d.%d", p, j)))
		}
		for e := 0; e < half; e++ {
			f.Edges[p] = append(f.Edges[p], NewSwitch(podEng(p), fmt.Sprintf("edge%d.%d", p, e)))
		}
	}

	// Links. corePodPorts[i][p]: core i's port toward pod p.
	// aggCorePorts[p][j][m]: agg (p,j)'s port toward core j·half+m.
	// aggEdgePorts[p][j][e]: agg (p,j)'s port down to edge (p,e).
	// edgeUpPorts[p][e][j]: edge (p,e)'s port up to agg (p,j).
	corePodPorts := make([][]int, half*half)
	for i := range corePodPorts {
		corePodPorts[i] = make([]int, k)
	}
	aggCorePorts := make([][][]int, k)
	aggEdgePorts := make([][][]int, k)
	edgeUpPorts := make([][][]int, k)
	for p := 0; p < k; p++ {
		aggCorePorts[p] = make([][]int, half)
		aggEdgePorts[p] = make([][]int, half)
		edgeUpPorts[p] = make([][]int, half)
		for j := 0; j < half; j++ {
			aggCorePorts[p][j] = make([]int, half)
			aggEdgePorts[p][j] = make([]int, half)
			edgeUpPorts[p][j] = make([]int, half)
		}
		// Agg <-> core tier (the only possible boundary links).
		for j := 0; j < half; j++ {
			agg := f.Aggs[p][j]
			for m := 0; m < half; m++ {
				core := f.Cores[j*half+m]
				up := b.pipe(podEng(p), coreEng(j*half+m), fabricLink, core)
				aggCorePorts[p][j][m] = agg.AddPort(up)
				down := b.pipe(coreEng(j*half+m), podEng(p), fabricLink, agg)
				corePodPorts[j*half+m][p] = core.AddPort(down)
			}
		}
		// Edge <-> agg mesh within the pod.
		for e := 0; e < half; e++ {
			es := f.Edges[p][e]
			for j := 0; j < half; j++ {
				agg := f.Aggs[p][j]
				up := b.pipe(podEng(p), podEng(p), fabricLink, agg)
				edgeUpPorts[p][e][j] = es.AddPort(up)
				down := b.pipe(podEng(p), podEng(p), fabricLink, es)
				aggEdgePorts[p][j][e] = agg.AddPort(down)
			}
		}
	}

	// Hosts.
	total := k * half * half
	id := packet.HostID(0)
	hostPorts := make([][][]int, k) // hostPorts[p][e][i]
	for p := 0; p < k; p++ {
		hostPorts[p] = make([][]int, half)
		for e := 0; e < half; e++ {
			hostPorts[p][e] = make([]int, half)
			es := f.Edges[p][e]
			for i := 0; i < half; i++ {
				h := b.host(podEng(p), id, total)
				h.SetUplink(b.pipe(podEng(p), podEng(p), edge, es))
				down := b.pipe(podEng(p), podEng(p), edge, h)
				hostPorts[p][e][i] = es.AddPort(down)
				f.Hosts = append(f.Hosts, h)
				f.HostDown = append(f.HostDown, down)
				id++
			}
		}
	}

	// Routing: ECMP up, exact down.
	hostsPerPod := half * half
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			es := f.Edges[p][e]
			for h := 0; h < total; h++ {
				dst := packet.HostID(h)
				if h/hostsPerPod == p && (h%hostsPerPod)/half == e {
					es.AddRoute(dst, hostPorts[p][e][h%half])
				} else {
					es.AddECMPRoute(dst, edgeUpPorts[p][e]...)
				}
			}
		}
		for j := 0; j < half; j++ {
			agg := f.Aggs[p][j]
			for h := 0; h < total; h++ {
				dst := packet.HostID(h)
				if h/hostsPerPod == p {
					agg.AddRoute(dst, aggEdgePorts[p][j][(h%hostsPerPod)/half])
				} else {
					agg.AddECMPRoute(dst, aggCorePorts[p][j]...)
				}
			}
		}
	}
	for i := 0; i < half*half; i++ {
		core := f.Cores[i]
		for h := 0; h < total; h++ {
			core.AddRoute(packet.HostID(h), corePodPorts[i][h/hostsPerPod])
		}
	}
	return f
}
