package topo

import (
	"fmt"

	"aqueue/internal/packet"
	"aqueue/internal/sim"
)

// LeafSpine is a two-tier Clos fabric: every leaf connects to every spine,
// hosts hang off leaves, and inter-leaf traffic is ECMP-hashed across the
// spines. This is the "data center network" shape the paper targets; AQs
// deploy on the leaf switches' pipelines (an entity may hold AQs on
// several switches, §4.1).
type LeafSpine struct {
	Eng          *sim.Engine
	Spines       []*Switch
	Leaves       []*Switch
	Hosts        []*Host
	HostsPerLeaf int

	// LeafUp[l][s] is the uplink pipe from leaf l to spine s; SpineDown[s][l]
	// the downlink from spine s to leaf l; HostDown[h] the pipe from host
	// h's leaf down to it. Exposed for measurement hooks.
	LeafUp    [][]*Pipe
	SpineDown [][]*Pipe
	HostDown  []*Pipe
}

// NewLeafSpine builds a fabric with the given leaf, spine and per-leaf host
// counts. edge configures host links, fabricLink the leaf<->spine links.
func NewLeafSpine(eng *sim.Engine, leaves, spines, hostsPerLeaf int, edge, fabricLink LinkSpec) *LeafSpine {
	if leaves < 1 || spines < 1 || hostsPerLeaf < 1 {
		panic("topo: leaf-spine needs at least one of everything")
	}
	f := &LeafSpine{
		Eng:          eng,
		HostsPerLeaf: hostsPerLeaf,
		LeafUp:       make([][]*Pipe, leaves),
		SpineDown:    make([][]*Pipe, spines),
	}
	for s := 0; s < spines; s++ {
		f.Spines = append(f.Spines, NewSwitch(eng, fmt.Sprintf("spine%d", s)))
		f.SpineDown[s] = make([]*Pipe, leaves)
	}
	for l := 0; l < leaves; l++ {
		f.Leaves = append(f.Leaves, NewSwitch(eng, fmt.Sprintf("leaf%d", l)))
		f.LeafUp[l] = make([]*Pipe, spines)
	}

	// Leaf <-> spine mesh.
	upPorts := make([][]int, leaves) // upPorts[l][s] = port on leaf l toward spine s
	for l := 0; l < leaves; l++ {
		upPorts[l] = make([]int, spines)
		for s := 0; s < spines; s++ {
			up := newPipe(eng, fabricLink, f.Spines[s])
			f.LeafUp[l][s] = up
			upPorts[l][s] = f.Leaves[l].AddPort(up)
			down := newPipe(eng, fabricLink, f.Leaves[l])
			f.SpineDown[s][l] = down
			// Port number on the spine toward leaf l is assigned below
			// once we add routes (ports are added in leaf order).
			f.Spines[s].AddPort(down)
		}
	}

	// Hosts.
	id := packet.HostID(0)
	for l := 0; l < leaves; l++ {
		for i := 0; i < hostsPerLeaf; i++ {
			h := NewHost(eng, id)
			h.SetUplink(newPipe(eng, edge, f.Leaves[l]))
			down := newPipe(eng, edge, h)
			port := f.Leaves[l].AddPort(down)
			f.Leaves[l].AddRoute(id, port)
			f.Hosts = append(f.Hosts, h)
			f.HostDown = append(f.HostDown, down)
			id++
		}
	}

	// Routing: leaves reach remote hosts via ECMP over all spines; spines
	// reach every host via its leaf (spine port l is toward leaf l, since
	// ports were added in leaf order).
	total := leaves * hostsPerLeaf
	for l := 0; l < leaves; l++ {
		for h := 0; h < total; h++ {
			hostLeaf := h / hostsPerLeaf
			if hostLeaf == l {
				continue // local route already installed
			}
			f.Leaves[l].AddECMPRoute(packet.HostID(h), upPorts[l]...)
		}
	}
	for s := 0; s < spines; s++ {
		for h := 0; h < total; h++ {
			f.Spines[s].AddRoute(packet.HostID(h), h/hostsPerLeaf)
		}
	}
	return f
}

// NewLeafSpineIn builds the leaf-spine fabric across a cluster's domains
// with a per-pod split: leaf l and its hosts live in domain l mod N, spine
// s in domain s mod N. Boundary links are the leaf<->spine hops whose ends
// land in different domains; host edges are always domain-internal, so
// transports, their timers and per-host hooks stay with their leaf.
func NewLeafSpineIn(c *sim.Cluster, leaves, spines, hostsPerLeaf int, edge, fabricLink LinkSpec) *LeafSpine {
	if leaves < 1 || spines < 1 || hostsPerLeaf < 1 {
		panic("topo: leaf-spine needs at least one of everything")
	}
	b := newCbuild(c)
	leafEng := func(l int) *sim.Engine { return c.Engine(l % c.N()) }
	spineEng := func(s int) *sim.Engine { return c.Engine(s % c.N()) }
	f := &LeafSpine{
		Eng:          c.Engine(0),
		HostsPerLeaf: hostsPerLeaf,
		LeafUp:       make([][]*Pipe, leaves),
		SpineDown:    make([][]*Pipe, spines),
	}
	for s := 0; s < spines; s++ {
		f.Spines = append(f.Spines, NewSwitch(spineEng(s), fmt.Sprintf("spine%d", s)))
		f.SpineDown[s] = make([]*Pipe, leaves)
	}
	for l := 0; l < leaves; l++ {
		f.Leaves = append(f.Leaves, NewSwitch(leafEng(l), fmt.Sprintf("leaf%d", l)))
		f.LeafUp[l] = make([]*Pipe, spines)
	}

	// Leaf <-> spine mesh, in the same construction order as NewLeafSpine.
	upPorts := make([][]int, leaves)
	for l := 0; l < leaves; l++ {
		upPorts[l] = make([]int, spines)
		for s := 0; s < spines; s++ {
			up := b.pipe(leafEng(l), spineEng(s), fabricLink, f.Spines[s])
			f.LeafUp[l][s] = up
			upPorts[l][s] = f.Leaves[l].AddPort(up)
			down := b.pipe(spineEng(s), leafEng(l), fabricLink, f.Leaves[l])
			f.SpineDown[s][l] = down
			f.Spines[s].AddPort(down)
		}
	}

	// Hosts.
	total := leaves * hostsPerLeaf
	id := packet.HostID(0)
	for l := 0; l < leaves; l++ {
		for i := 0; i < hostsPerLeaf; i++ {
			h := b.host(leafEng(l), id, total)
			h.SetUplink(b.pipe(leafEng(l), leafEng(l), edge, f.Leaves[l]))
			down := b.pipe(leafEng(l), leafEng(l), edge, h)
			port := f.Leaves[l].AddPort(down)
			f.Leaves[l].AddRoute(id, port)
			f.Hosts = append(f.Hosts, h)
			f.HostDown = append(f.HostDown, down)
			id++
		}
	}

	// Routing: identical rules to NewLeafSpine.
	for l := 0; l < leaves; l++ {
		for h := 0; h < total; h++ {
			if h/hostsPerLeaf == l {
				continue
			}
			f.Leaves[l].AddECMPRoute(packet.HostID(h), upPorts[l]...)
		}
	}
	for s := 0; s < spines; s++ {
		for h := 0; h < total; h++ {
			f.Spines[s].AddRoute(packet.HostID(h), h/hostsPerLeaf)
		}
	}
	return f
}

// Leaf returns the leaf switch of the given host.
func (f *LeafSpine) Leaf(h packet.HostID) *Switch {
	return f.Leaves[int(h)/f.HostsPerLeaf]
}

// Host returns the host with the given ID.
func (f *LeafSpine) Host(h packet.HostID) *Host { return f.Hosts[h] }
