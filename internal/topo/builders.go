package topo

import (
	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/units"
)

// LinkSpec bundles the parameters of one link class.
type LinkSpec struct {
	Rate         units.BitRate
	Delay        sim.Time
	QueueLimit   int // bytes
	ECNThreshold int // bytes; 0 disables physical ECN marking
	// Jitter adds a uniform [0, Jitter) component to per-packet
	// propagation, modelling clock and processing noise; without it,
	// equal-rate continuous streams phase-lock at contention points.
	Jitter sim.Time
	// AQMDrop selects step-AQM (RED/ECN) semantics at the queue: above
	// the ECN threshold, non-ECN-capable packets are dropped instead of
	// queued. The paper's NS3 platform behaves this way; its Tofino
	// testbed does not. See queue.FIFO.AQMDropNonECT.
	AQMDrop bool
}

// DefaultSim matches the paper's NS3 setup (§5.1): 10 Gbps links with 10 us
// propagation delay. The queue limit and DCTCP-style marking threshold are
// the usual values for that speed.
func DefaultSim() LinkSpec {
	return LinkSpec{
		Rate:         10 * units.Gbps,
		Delay:        10 * sim.Microsecond,
		QueueLimit:   400 * 1000,
		ECNThreshold: 65 * 1000,
		Jitter:       400,
		AQMDrop:      true,
	}
}

// DefaultTestbed matches the paper's Tofino setup at 25 Gbps (§5.4).
func DefaultTestbed() LinkSpec {
	return LinkSpec{
		Rate:         25 * units.Gbps,
		Delay:        2 * sim.Microsecond,
		QueueLimit:   1000 * 1000,
		ECNThreshold: 160 * 1000,
		Jitter:       160,
	}
}

// newPipe builds a pipe from a spec, seeding its jitter stream uniquely
// within the engine (engine-scoped so concurrent runs stay deterministic).
func newPipe(eng *sim.Engine, spec LinkSpec, dst Receiver) *Pipe {
	p := NewPipe(eng, spec.Rate, spec.Delay, spec.QueueLimit, spec.ECNThreshold, dst)
	p.Queue().AQMDropNonECT = spec.AQMDrop
	if spec.Jitter > 0 {
		p.SetJitter(spec.Jitter, 0x9e3779b9+eng.NextSeq("topo.pipe")*0x1234567)
	}
	return p
}

// Dumbbell is the simulation topology of Fig. 5a: nLeft senders attach to
// switch S1, nRight receivers to S2, and S1—S2 is the shared bottleneck.
type Dumbbell struct {
	Eng          *sim.Engine
	Left, Right  []*Host
	S1, S2       *Switch
	Bottleneck   *Pipe // S1 -> S2 direction (the shared bottleneck)
	ReverseTrunk *Pipe // S2 -> S1 direction (carries ACKs)
}

// NewDumbbell builds a dumbbell. Host IDs are 0..nLeft-1 on the left and
// nLeft..nLeft+nRight-1 on the right. edge configures host<->switch links,
// trunk the S1<->S2 bottleneck.
func NewDumbbell(eng *sim.Engine, nLeft, nRight int, edge, trunk LinkSpec) *Dumbbell {
	d := &Dumbbell{
		Eng: eng,
		S1:  NewSwitch(eng, "S1"),
		S2:  NewSwitch(eng, "S2"),
	}
	d.Bottleneck = newPipe(eng, trunk, d.S2)
	d.ReverseTrunk = newPipe(eng, trunk, d.S1)
	trunkPort1 := d.S1.AddPort(d.Bottleneck)
	trunkPort2 := d.S2.AddPort(d.ReverseTrunk)

	id := packet.HostID(0)
	for i := 0; i < nLeft; i++ {
		h := NewHost(eng, id)
		h.SetUplink(newPipe(eng, edge, d.S1))
		down := newPipe(eng, edge, h)
		port := d.S1.AddPort(down)
		d.S1.AddRoute(id, port)
		d.S2.AddRoute(id, trunkPort2)
		d.Left = append(d.Left, h)
		id++
	}
	for i := 0; i < nRight; i++ {
		h := NewHost(eng, id)
		h.SetUplink(newPipe(eng, edge, d.S2))
		down := newPipe(eng, edge, h)
		port := d.S2.AddPort(down)
		d.S2.AddRoute(id, port)
		d.S1.AddRoute(id, trunkPort1)
		d.Right = append(d.Right, h)
		id++
	}
	return d
}

// Host returns the host with the given global ID.
func (d *Dumbbell) Host(id packet.HostID) *Host {
	if int(id) < len(d.Left) {
		return d.Left[id]
	}
	return d.Right[int(id)-len(d.Left)]
}

// Star is the testbed topology of Fig. 2 / Fig. 5b: n hosts (VMs) attached
// to a single switch.
type Star struct {
	Eng   *sim.Engine
	Hosts []*Host
	SW    *Switch
	// Down[i] is the switch->host pipe of host i (where inbound traffic of
	// VM i queues — the egress-AQ match point for inbound guarantees).
	Down []*Pipe
}

// NewStar builds a star with n hosts using the given link spec.
func NewStar(eng *sim.Engine, n int, edge LinkSpec) *Star {
	s := &Star{Eng: eng, SW: NewSwitch(eng, "SW")}
	for i := 0; i < n; i++ {
		id := packet.HostID(i)
		h := NewHost(eng, id)
		h.SetUplink(newPipe(eng, edge, s.SW))
		down := newPipe(eng, edge, h)
		port := s.SW.AddPort(down)
		s.SW.AddRoute(id, port)
		s.Hosts = append(s.Hosts, h)
		s.Down = append(s.Down, down)
	}
	return s
}
