package topo

import (
	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/units"
)

// LinkSpec bundles the parameters of one link class.
type LinkSpec struct {
	Rate         units.BitRate
	Delay        sim.Time
	QueueLimit   int // bytes
	ECNThreshold int // bytes; 0 disables physical ECN marking
	// Jitter adds a uniform [0, Jitter) component to per-packet
	// propagation, modelling clock and processing noise; without it,
	// equal-rate continuous streams phase-lock at contention points.
	Jitter sim.Time
	// AQMDrop selects step-AQM (RED/ECN) semantics at the queue: above
	// the ECN threshold, non-ECN-capable packets are dropped instead of
	// queued. The paper's NS3 platform behaves this way; its Tofino
	// testbed does not. See queue.FIFO.AQMDropNonECT.
	AQMDrop bool
}

// DefaultSim matches the paper's NS3 setup (§5.1): 10 Gbps links with 10 us
// propagation delay. The queue limit and DCTCP-style marking threshold are
// the usual values for that speed.
func DefaultSim() LinkSpec {
	return LinkSpec{
		Rate:         10 * units.Gbps,
		Delay:        10 * sim.Microsecond,
		QueueLimit:   400 * 1000,
		ECNThreshold: 65 * 1000,
		Jitter:       400,
		AQMDrop:      true,
	}
}

// DefaultTestbed matches the paper's Tofino setup at 25 Gbps (§5.4).
func DefaultTestbed() LinkSpec {
	return LinkSpec{
		Rate:         25 * units.Gbps,
		Delay:        2 * sim.Microsecond,
		QueueLimit:   1000 * 1000,
		ECNThreshold: 160 * 1000,
		Jitter:       160,
	}
}

// newPipe builds a pipe from a spec, seeding its jitter stream uniquely
// within the engine (engine-scoped so concurrent runs stay deterministic).
func newPipe(eng *sim.Engine, spec LinkSpec, dst Receiver) *Pipe {
	p := NewPipe(eng, spec.Rate, spec.Delay, spec.QueueLimit, spec.ECNThreshold, dst)
	p.Queue().AQMDropNonECT = spec.AQMDrop
	if spec.Jitter > 0 {
		p.SetJitter(spec.Jitter, 0x9e3779b9+eng.NextSeq("topo.pipe")*0x1234567)
	}
	return p
}

// cbuild is the shared state of one cluster-aware topology build: the
// cluster, with its sequence handles pre-registered. All identity-bearing
// draws (AQM seeds, jitter seeds, lanes) go through the cluster, so a
// component's identity is fixed by construction order alone — independent
// of which domain it is placed in and of how many domains exist.
type cbuild struct {
	c       *sim.Cluster
	aqmSeq  sim.SeqDomain
	pipeSeq sim.SeqDomain
}

func newCbuild(c *sim.Cluster) *cbuild {
	return &cbuild{
		c:       c,
		aqmSeq:  c.SeqDomain("queue.aqm"),
		pipeSeq: c.SeqDomain("topo.pipe"),
	}
}

// pipe builds one link direction owned by srcEng delivering into dst
// (which runs on dstEng): it assigns the pipe's ordering lane, folds the
// delay into the cluster lookahead, and — when the two ends live in
// different domains — binds the boundary mailbox that carries deliveries
// across engines at window flushes.
func (b *cbuild) pipe(srcEng, dstEng *sim.Engine, spec LinkSpec, dst Receiver) *Pipe {
	p := newPipeWithAQMSeq(srcEng, spec.Rate, spec.Delay, spec.QueueLimit,
		spec.ECNThreshold, dst, b.c.NextIn(b.aqmSeq))
	p.Queue().AQMDropNonECT = spec.AQMDrop
	if spec.Jitter > 0 {
		p.SetJitter(spec.Jitter, 0x9e3779b9+b.c.NextIn(b.pipeSeq)*0x1234567)
	}
	p.SetLane(b.c.NextLane())
	b.c.ObserveLinkDelay(spec.Delay)
	if srcEng != dstEng {
		p.BindOutbox(b.c.Outbox(srcEng, dstEng, p.Lane(), spec.Delay, p.DeliverFunc()))
	}
	return p
}

// host builds a host on eng with a partition-invariant flow-ID stride:
// host id of total hosts draws IDs id+1, id+1+total, id+1+2·total, ...
func (b *cbuild) host(eng *sim.Engine, id packet.HostID, total int) *Host {
	h := NewHost(eng, id)
	h.SetFlowIDStride(uint64(id)+1, uint64(total))
	return h
}

// Dumbbell is the simulation topology of Fig. 5a: nLeft senders attach to
// switch S1, nRight receivers to S2, and S1—S2 is the shared bottleneck.
type Dumbbell struct {
	Eng          *sim.Engine
	Left, Right  []*Host
	S1, S2       *Switch
	Bottleneck   *Pipe // S1 -> S2 direction (the shared bottleneck)
	ReverseTrunk *Pipe // S2 -> S1 direction (carries ACKs)
}

// NewDumbbell builds a dumbbell. Host IDs are 0..nLeft-1 on the left and
// nLeft..nLeft+nRight-1 on the right. edge configures host<->switch links,
// trunk the S1<->S2 bottleneck.
func NewDumbbell(eng *sim.Engine, nLeft, nRight int, edge, trunk LinkSpec) *Dumbbell {
	d := &Dumbbell{
		Eng: eng,
		S1:  NewSwitch(eng, "S1"),
		S2:  NewSwitch(eng, "S2"),
	}
	d.Bottleneck = newPipe(eng, trunk, d.S2)
	d.ReverseTrunk = newPipe(eng, trunk, d.S1)
	trunkPort1 := d.S1.AddPort(d.Bottleneck)
	trunkPort2 := d.S2.AddPort(d.ReverseTrunk)

	id := packet.HostID(0)
	for i := 0; i < nLeft; i++ {
		h := NewHost(eng, id)
		h.SetUplink(newPipe(eng, edge, d.S1))
		down := newPipe(eng, edge, h)
		port := d.S1.AddPort(down)
		d.S1.AddRoute(id, port)
		d.S2.AddRoute(id, trunkPort2)
		d.Left = append(d.Left, h)
		id++
	}
	for i := 0; i < nRight; i++ {
		h := NewHost(eng, id)
		h.SetUplink(newPipe(eng, edge, d.S2))
		down := newPipe(eng, edge, h)
		port := d.S2.AddPort(down)
		d.S2.AddRoute(id, port)
		d.S1.AddRoute(id, trunkPort1)
		d.Right = append(d.Right, h)
		id++
	}
	return d
}

// NewDumbbellIn builds the dumbbell across a cluster's domains with a
// side-based split: S1 and the left (sender) hosts live in domain 0, S2
// and the right hosts in domain 1 mod N, so the only boundary links are
// the two trunk directions. Keeping each side whole matters beyond
// minimizing mailboxes: controllers, rate limiters and samplers that touch
// the senders and S1 together stay within one domain, so their runtime
// state never crosses engines. With one domain the layout degenerates to
// the single-engine dumbbell (and is byte-identical to any N-domain run of
// the same scenario).
func NewDumbbellIn(c *sim.Cluster, nLeft, nRight int, edge, trunk LinkSpec) *Dumbbell {
	b := newCbuild(c)
	left := c.Engine(0)
	right := c.Engine(1 % c.N())
	d := &Dumbbell{
		Eng: left,
		S1:  NewSwitch(left, "S1"),
		S2:  NewSwitch(right, "S2"),
	}
	d.Bottleneck = b.pipe(left, right, trunk, d.S2)
	d.ReverseTrunk = b.pipe(right, left, trunk, d.S1)
	trunkPort1 := d.S1.AddPort(d.Bottleneck)
	trunkPort2 := d.S2.AddPort(d.ReverseTrunk)

	total := nLeft + nRight
	id := packet.HostID(0)
	for i := 0; i < nLeft; i++ {
		h := b.host(left, id, total)
		h.SetUplink(b.pipe(left, left, edge, d.S1))
		down := b.pipe(left, left, edge, h)
		port := d.S1.AddPort(down)
		d.S1.AddRoute(id, port)
		d.S2.AddRoute(id, trunkPort2)
		d.Left = append(d.Left, h)
		id++
	}
	for i := 0; i < nRight; i++ {
		h := b.host(right, id, total)
		h.SetUplink(b.pipe(right, right, edge, d.S2))
		down := b.pipe(right, right, edge, h)
		port := d.S2.AddPort(down)
		d.S2.AddRoute(id, port)
		d.S1.AddRoute(id, trunkPort1)
		d.Right = append(d.Right, h)
		id++
	}
	return d
}

// Host returns the host with the given global ID.
func (d *Dumbbell) Host(id packet.HostID) *Host {
	if int(id) < len(d.Left) {
		return d.Left[id]
	}
	return d.Right[int(id)-len(d.Left)]
}

// Star is the testbed topology of Fig. 2 / Fig. 5b: n hosts (VMs) attached
// to a single switch.
type Star struct {
	Eng   *sim.Engine
	Hosts []*Host
	SW    *Switch
	// Down[i] is the switch->host pipe of host i (where inbound traffic of
	// VM i queues — the egress-AQ match point for inbound guarantees).
	Down []*Pipe
}

// NewStar builds a star with n hosts using the given link spec.
func NewStar(eng *sim.Engine, n int, edge LinkSpec) *Star {
	s := &Star{Eng: eng, SW: NewSwitch(eng, "SW")}
	for i := 0; i < n; i++ {
		id := packet.HostID(i)
		h := NewHost(eng, id)
		h.SetUplink(newPipe(eng, edge, s.SW))
		down := newPipe(eng, edge, h)
		port := s.SW.AddPort(down)
		s.SW.AddRoute(id, port)
		s.Hosts = append(s.Hosts, h)
		s.Down = append(s.Down, down)
	}
	return s
}

// NewStarIn builds the star across a cluster's domains: all hosts in
// domain 0, the switch in domain 1 mod N, so every edge link is a
// boundary. The hosts stay together because the testbed experiments run
// host-spanning control loops (the DRL baseline re-programs every VM's
// token buckets each interval) whose state must live in one domain.
func NewStarIn(c *sim.Cluster, n int, edge LinkSpec) *Star {
	b := newCbuild(c)
	hostEng := c.Engine(0)
	swEng := c.Engine(1 % c.N())
	s := &Star{Eng: hostEng, SW: NewSwitch(swEng, "SW")}
	for i := 0; i < n; i++ {
		id := packet.HostID(i)
		h := b.host(hostEng, id, n)
		h.SetUplink(b.pipe(hostEng, swEng, edge, s.SW))
		down := b.pipe(swEng, hostEng, edge, h)
		port := s.SW.AddPort(down)
		s.SW.AddRoute(id, port)
		s.Hosts = append(s.Hosts, h)
		s.Down = append(s.Down, down)
	}
	return s
}
