package topo

import (
	"testing"

	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/units"
)

// TestFlowHashSpreadsConsecutiveFlows checks the ECMP hash against its
// actual workload: flow IDs are allocated consecutively, so the splitmix64
// finalizer must spread a contiguous block near-uniformly over a port
// group rather than striping it.
func TestFlowHashSpreadsConsecutiveFlows(t *testing.T) {
	for _, groupSize := range []uint64{2, 3, 4, 8} {
		const flows = 4096
		counts := make([]int, groupSize)
		for f := 0; f < flows; f++ {
			counts[flowHash(packet.FlowID(f))%groupSize]++
		}
		want := float64(flows) / float64(groupSize)
		for port, n := range counts {
			// ±25% of the expected share is ~9 standard deviations for
			// these sizes — loose enough to never flake, tight enough to
			// catch a degenerate hash.
			if float64(n) < 0.75*want || float64(n) > 1.25*want {
				t.Errorf("group of %d: port %d got %d of %d flows (want ≈%.0f)",
					groupSize, port, n, flows, want)
			}
		}
	}
}

// TestDenseECMPMatchesMapPath pins the dense forwarding table to the map
// path it replaces: for every (dst, flow), the slice-indexed lookup must
// resolve the identical port — exact-route precedence included. The layout
// is an engine option fixed at construction, so the test builds one switch
// per layout with identical routes and compares the chosen port indices.
func TestDenseECMPMatchesMapPath(t *testing.T) {
	build := func(dense bool) *Switch {
		eng := sim.NewEngine(sim.WithDenseForwarding(dense))
		sw := NewSwitch(eng, "ecmp")
		sink := &collector{eng: eng}
		for i := 0; i < 4; i++ {
			sw.AddPort(NewPipe(eng, units.Gbps, 0, 0, 0, sink))
		}
		sw.AddECMPRoute(1, 0, 1, 2, 3)
		sw.AddECMPRoute(2, 2, 3)
		sw.AddRoute(2, 0) // exact route shadows dst 2's group on both paths
		sw.AddRoute(3, 1)
		return sw
	}
	portIndex := func(sw *Switch, p *Pipe) int {
		if p == nil {
			return -1
		}
		for i, q := range sw.ports {
			if q == p {
				return i
			}
		}
		t.Fatal("outPipe returned a pipe that is not a port")
		return -2
	}

	dsw := build(true)
	msw := build(false)
	for dst := packet.HostID(1); dst <= 4; dst++ {
		for f := 0; f < 512; f++ {
			p := &packet.Packet{Dst: dst, Flow: packet.FlowID(f)}

			dense := portIndex(dsw, dsw.outPipe(p))
			if dsw.fwd == nil {
				t.Fatal("dense forwarding table not built for a dense topology")
			}

			mapped := portIndex(msw, msw.outPipe(p))
			if msw.fwd != nil {
				t.Fatal("map path still using the dense table")
			}

			if dense != mapped {
				t.Fatalf("dst %d flow %d: dense picked port %d, map picked port %d", dst, f, dense, mapped)
			}
			if dst == 4 && dense != -1 {
				t.Fatalf("dst 4 has no route but resolved a pipe")
			}
			if dst == 2 && dense != 0 {
				t.Fatalf("exact route for dst 2 did not shadow its ECMP group")
			}
		}
	}
}
