package topo

import (
	"testing"

	"aqueue/internal/core"
	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/units"
)

type collector struct {
	pkts  []*packet.Packet
	times []sim.Time
	eng   *sim.Engine
}

func (c *collector) Receive(p *packet.Packet) {
	c.pkts = append(c.pkts, p)
	c.times = append(c.times, c.eng.Now())
}

func TestPipeSerializationAndPropagation(t *testing.T) {
	eng := sim.NewEngine()
	c := &collector{eng: eng}
	// 10 Gbps, 10us prop: a 1040B packet serializes in 832ns.
	p := NewPipe(eng, 10*units.Gbps, 10*sim.Microsecond, 0, 0, c)
	pkt := packet.NewData(0, 1, 1, 0, 1000)
	p.Send(pkt)
	eng.Run()
	if len(c.pkts) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(c.pkts))
	}
	want := sim.Time(832 + 10000)
	if c.times[0] != want {
		t.Fatalf("delivered at %v, want %v", c.times[0], want)
	}
}

func TestPipeBackToBackSpacing(t *testing.T) {
	eng := sim.NewEngine()
	c := &collector{eng: eng}
	p := NewPipe(eng, 10*units.Gbps, 0, 0, 0, c)
	for i := 0; i < 3; i++ {
		p.Send(packet.NewData(0, 1, 1, int64(i*1000), 1000))
	}
	eng.Run()
	if len(c.pkts) != 3 {
		t.Fatalf("delivered %d, want 3", len(c.pkts))
	}
	// Each 1040B packet takes 832ns on the wire; deliveries are spaced by
	// exactly the serialization time.
	for i := 1; i < 3; i++ {
		if got := c.times[i] - c.times[i-1]; got != 832 {
			t.Fatalf("spacing %d = %v, want 832ns", i, got)
		}
	}
	if p.TxPackets != 3 || p.TxBytes != 3*1040 {
		t.Fatalf("tx counters = %d pkts / %d bytes", p.TxPackets, p.TxBytes)
	}
}

func TestPipeTailDropWhenFull(t *testing.T) {
	eng := sim.NewEngine()
	c := &collector{eng: eng}
	p := NewPipe(eng, 1*units.Mbps, 0, 2100, 0, c) // tiny slow link
	for i := 0; i < 5; i++ {
		p.Send(packet.NewData(0, 1, 1, int64(i*1000), 1000))
	}
	if p.Queue().Dropped == 0 {
		t.Fatal("no tail drops on overfull queue")
	}
	eng.Run()
	if len(c.pkts) >= 5 {
		t.Fatalf("delivered %d, want fewer than 5", len(c.pkts))
	}
}

func TestSwitchRoutesByDestination(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(eng, "t")
	c1 := &collector{eng: eng}
	c2 := &collector{eng: eng}
	p1 := sw.AddPort(NewPipe(eng, units.Gbps, 0, 0, 0, c1))
	p2 := sw.AddPort(NewPipe(eng, units.Gbps, 0, 0, 0, c2))
	sw.AddRoute(5, p1)
	sw.AddRoute(6, p2)
	sw.Receive(packet.NewData(0, 5, 1, 0, 100))
	sw.Receive(packet.NewData(0, 6, 2, 0, 100))
	sw.Receive(packet.NewData(0, 7, 3, 0, 100)) // no route
	eng.Run()
	if len(c1.pkts) != 1 || len(c2.pkts) != 1 {
		t.Fatalf("routing failed: %d/%d", len(c1.pkts), len(c2.pkts))
	}
	if sw.RouteMiss != 1 {
		t.Fatalf("RouteMiss = %d, want 1", sw.RouteMiss)
	}
}

func TestSwitchAQPipelines(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(eng, "t")
	c := &collector{eng: eng}
	port := sw.AddPort(NewPipe(eng, units.Gbps, 0, 0, 0, c))
	sw.AddRoute(5, port)
	// An ingress AQ with a tiny limit drops the second back-to-back packet.
	sw.Ingress.Deploy(core.Config{ID: 9, Rate: units.Kbps, Limit: 1200})
	a := packet.NewData(0, 5, 1, 0, 1000)
	a.IngressAQ = 9
	b := packet.NewData(0, 5, 1, 1000, 1000)
	b.IngressAQ = 9
	sw.Receive(a)
	sw.Receive(b)
	eng.Run()
	if len(c.pkts) != 1 {
		t.Fatalf("delivered %d, want 1 (AQ drop)", len(c.pkts))
	}
	if sw.AQDrops != 1 {
		t.Fatalf("AQDrops = %d, want 1", sw.AQDrops)
	}
}

func TestSwitchWorkConservingBypass(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(eng, "t")
	c := &collector{eng: eng}
	port := sw.AddPort(NewPipe(eng, units.Gbps, 0, 0, 0, c))
	sw.AddRoute(5, port)
	sw.WorkConserving = true
	sw.Ingress.Deploy(core.Config{ID: 9, Rate: units.Kbps, Limit: 100})
	// Empty physical queue: even a grossly over-limit entity passes.
	p := packet.NewData(0, 5, 1, 0, 1000)
	p.IngressAQ = 9
	sw.Receive(p)
	if sw.AQBypassed != 1 || sw.AQDrops != 0 {
		t.Fatalf("bypass not taken: bypassed=%d drops=%d", sw.AQBypassed, sw.AQDrops)
	}
	eng.Run()
}

func TestDumbbellEndToEnd(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDumbbell(eng, 2, 2, DefaultSim(), DefaultSim())
	if len(d.Left) != 2 || len(d.Right) != 2 {
		t.Fatal("wrong host counts")
	}
	// Left host 0 sends to right host 2 across the bottleneck.
	pkt := packet.NewData(0, 2, 1, 0, 1000)
	d.Left[0].Send(pkt)
	eng.Run()
	if d.Right[0].RxPackets != 1 {
		t.Fatalf("right host got %d packets, want 1", d.Right[0].RxPackets)
	}
	if d.Bottleneck.TxPackets != 1 {
		t.Fatalf("bottleneck carried %d packets, want 1", d.Bottleneck.TxPackets)
	}
	// Reverse direction crosses the reverse trunk.
	d.Right[1].Send(packet.NewData(3, 1, 2, 0, 1000))
	eng.Run()
	if d.Left[1].RxPackets != 1 {
		t.Fatal("reverse delivery failed")
	}
	if d.ReverseTrunk.TxPackets != 1 {
		t.Fatal("reverse trunk not used")
	}
	if d.Host(0) != d.Left[0] || d.Host(3) != d.Right[1] {
		t.Fatal("Host() indexing wrong")
	}
}

func TestStarDelivery(t *testing.T) {
	eng := sim.NewEngine()
	s := NewStar(eng, 4, DefaultTestbed())
	s.Hosts[1].Send(packet.NewData(1, 3, 1, 0, 1000))
	eng.Run()
	if s.Hosts[3].RxPackets != 1 {
		t.Fatal("star delivery failed")
	}
	if s.Down[3].TxPackets != 1 {
		t.Fatal("downlink pipe not used")
	}
}

func TestHostSendFilter(t *testing.T) {
	eng := sim.NewEngine()
	s := NewStar(eng, 2, DefaultTestbed())
	var intercepted []*packet.Packet
	s.Hosts[0].Filter = func(p *packet.Packet) bool {
		if p.Kind == packet.Data {
			intercepted = append(intercepted, p)
			return true
		}
		return false
	}
	s.Hosts[0].Send(packet.NewData(0, 1, 1, 0, 1000))
	s.Hosts[0].Send(packet.NewAck(0, 1, 1, 0))
	eng.Run()
	if len(intercepted) != 1 {
		t.Fatalf("filter consumed %d, want 1", len(intercepted))
	}
	if s.Hosts[1].RxPackets != 1 {
		t.Fatalf("host 1 got %d packets, want just the ACK", s.Hosts[1].RxPackets)
	}
	// Transmit bypasses the filter.
	s.Hosts[0].Transmit(intercepted[0])
	eng.Run()
	if s.Hosts[1].RxPackets != 2 {
		t.Fatal("Transmit did not bypass the filter")
	}
}

func TestHostOrphanCounting(t *testing.T) {
	eng := sim.NewEngine()
	h := NewHost(eng, 1)
	h.Receive(packet.NewData(0, 1, 99, 0, 100))
	if h.Orphans != 1 {
		t.Fatalf("Orphans = %d, want 1", h.Orphans)
	}
}

func TestPipeDelayHook(t *testing.T) {
	eng := sim.NewEngine()
	c := &collector{eng: eng}
	p := NewPipe(eng, 10*units.Gbps, 0, 0, 0, c)
	var delays []sim.Time
	p.DelayHook = func(d sim.Time, _ *packet.Packet) { delays = append(delays, d) }
	p.Send(packet.NewData(0, 1, 1, 0, 1000))
	p.Send(packet.NewData(0, 1, 1, 1000, 1000))
	eng.Run()
	if len(delays) != 2 {
		t.Fatalf("hook saw %d packets", len(delays))
	}
	if delays[0] != 0 {
		t.Fatalf("first packet queued %v, want 0", delays[0])
	}
	if delays[1] != 832 { // waits for the first packet's serialization
		t.Fatalf("second packet queued %v, want 832ns", delays[1])
	}
}
