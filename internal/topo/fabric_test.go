package topo

import (
	"testing"

	"aqueue/internal/core"
	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/units"
)

func fabricSpecs() (edge, fab LinkSpec) {
	edge = DefaultSim()
	fab = DefaultSim()
	fab.Rate = 40 * units.Gbps
	return
}

func TestLeafSpineLocalDelivery(t *testing.T) {
	eng := sim.NewEngine()
	edge, fab := fabricSpecs()
	f := NewLeafSpine(eng, 2, 2, 4, edge, fab)
	// Host 0 and 1 share leaf 0: local traffic must not touch the spines.
	f.Hosts[0].Send(packet.NewData(0, 1, 1, 0, 1000))
	eng.Run()
	if f.Hosts[1].RxPackets != 1 {
		t.Fatal("local delivery failed")
	}
	for s := range f.Spines {
		if f.Spines[s].RxPackets != 0 {
			t.Fatal("local traffic crossed a spine")
		}
	}
}

func TestLeafSpineRemoteDelivery(t *testing.T) {
	eng := sim.NewEngine()
	edge, fab := fabricSpecs()
	f := NewLeafSpine(eng, 3, 2, 2, edge, fab)
	// Host 0 (leaf 0) to host 5 (leaf 2).
	f.Hosts[0].Send(packet.NewData(0, 5, 7, 0, 1000))
	eng.Run()
	if f.Hosts[5].RxPackets != 1 {
		t.Fatal("remote delivery failed")
	}
	crossed := 0
	for s := range f.Spines {
		crossed += int(f.Spines[s].RxPackets)
	}
	if crossed != 1 {
		t.Fatalf("packet crossed %d spines, want exactly 1", crossed)
	}
}

func TestLeafSpineECMPSpreadsFlows(t *testing.T) {
	eng := sim.NewEngine()
	edge, fab := fabricSpecs()
	f := NewLeafSpine(eng, 2, 4, 2, edge, fab)
	// Many flows from leaf 0 to leaf 1: spine loads should spread.
	for flow := packet.FlowID(1); flow <= 64; flow++ {
		f.Hosts[0].Send(packet.NewData(0, 2, flow, 0, 1000))
	}
	eng.Run()
	for s := range f.Spines {
		if f.Spines[s].RxPackets == 0 {
			t.Fatalf("spine %d received nothing — ECMP not spreading", s)
		}
	}
	if f.Hosts[2].RxPackets != 64 {
		t.Fatalf("delivered %d of 64", f.Hosts[2].RxPackets)
	}
}

func TestLeafSpineFlowStaysOnOnePath(t *testing.T) {
	eng := sim.NewEngine()
	edge, fab := fabricSpecs()
	f := NewLeafSpine(eng, 2, 4, 1, edge, fab)
	// Many packets of ONE flow: exactly one spine must carry all of them
	// (per-flow hashing prevents reordering).
	for i := 0; i < 32; i++ {
		f.Hosts[0].Send(packet.NewData(0, 1, 99, int64(i*1000), 1000))
	}
	eng.Run()
	used := 0
	for s := range f.Spines {
		if f.Spines[s].RxPackets > 0 {
			used++
			if f.Spines[s].RxPackets != 32 {
				t.Fatalf("spine %d carried %d of 32", s, f.Spines[s].RxPackets)
			}
		}
	}
	if used != 1 {
		t.Fatalf("flow used %d spines, want 1", used)
	}
}

func TestLeafSpineVirtualDelayAccumulatesAcrossAQHops(t *testing.T) {
	// Deploy the same entity's AQ on both leaf switches; a packet crossing
	// the fabric accumulates virtual delay from each AQ hop (§3.3.2).
	eng := sim.NewEngine()
	edge, fab := fabricSpecs()
	f := NewLeafSpine(eng, 2, 1, 1, edge, fab)
	cfg := core.Config{ID: 5, Rate: units.Gbps, Limit: 1 << 30}
	f.Leaves[0].Ingress.Deploy(cfg)
	f.Leaves[1].Ingress.Deploy(cfg)
	var got sim.Time
	f.Hosts[1].RxHook = func(p *packet.Packet) { got = p.VirtualDelay }
	p := packet.NewData(0, 1, 3, 0, 960) // size 1000
	p.IngressAQ = 5
	f.Hosts[0].Send(p)
	eng.Run()
	// Each AQ hop adds gap/R = 1000 B / 0.125 B/ns = 8000 ns.
	if got != 16000 {
		t.Fatalf("virtual delay = %v, want 16us over two AQ hops", got)
	}
}
