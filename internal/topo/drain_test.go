// Edge cases of the virtual-transmitter lazy drain (FIFO.PopDrained via
// Pipe.drainStarted): deadline ties, interaction with ECN marking and tail
// drops, and coexistence with the event-driven transmitter that a DRR
// scheduler forces — all on the occupancy the queue reports, since that is
// what tail-drop, marking and Backlog decisions read.
package topo

import (
	"testing"

	"aqueue/internal/packet"
	"aqueue/internal/queue"
	"aqueue/internal/sim"
	"aqueue/internal/units"
)

// TestPipeDrainAtDeadlineTie pins the boundary of drainStarted: an entry
// whose serialization start equals the current instant has begun service
// and must be drained — at == now is "started", only at > now is "waiting".
// A packet enqueued on an idle transmitter (start == now) likewise never
// counts as queued.
func TestPipeDrainAtDeadlineTie(t *testing.T) {
	eng := sim.NewEngine()
	c := &collector{eng: eng}
	p := NewPipe(eng, 10*units.Gbps, 0, 0, 0, c)
	// Three 1040B packets at t=0 on a 10 Gbps link (832ns each): the first
	// starts serializing immediately and is drained inline; the others wait
	// with start deadlines at exactly 832 and 1664.
	for i := 0; i < 3; i++ {
		p.Send(packet.NewData(0, 1, 1, int64(i*1000), 1000))
	}
	if got := p.Backlog(); got != 2*1040 {
		t.Fatalf("backlog at t=0 = %d, want 2080 (idle-transmitter packet must not count)", got)
	}
	probes := []struct {
		at   sim.Time
		want int
	}{
		{831, 2 * 1040}, // 1ns before the deadline: still waiting
		{832, 1040},     // tie: serialization begins at this very instant
		{1663, 1040},    // 1ns before the next deadline
		{1664, 0},       // tie again, queue fully drained
	}
	got := make(map[sim.Time]int)
	for _, pr := range probes {
		at := pr.at
		eng.At(at, func() { got[at] = p.Backlog() })
	}
	eng.Run()
	for _, pr := range probes {
		if got[pr.at] != pr.want {
			t.Errorf("backlog at t=%d = %d, want %d", pr.at, got[pr.at], pr.want)
		}
	}
	if len(c.pkts) != 3 {
		t.Fatalf("delivered %d packets, want 3", len(c.pkts))
	}
}

// TestPipeDrainAfterECNMarkedTailDrop sends a burst that first drives the
// occupancy through the ECN threshold (marking every accepted packet) and
// then over the byte limit (tail-dropping the last). The dropped packet must
// not leave a pending-start entry behind — otherwise the lazy drain would
// retire one entry too many and the byte accounting would go negative.
func TestPipeDrainAfterECNMarkedTailDrop(t *testing.T) {
	eng := sim.NewEngine()
	c := &collector{eng: eng}
	// Limit admits four 1040B packets (4160 > 3200 rejects the fifth); the
	// ECN threshold is below a single packet, so every accepted one is
	// marked.
	p := NewPipe(eng, 10*units.Gbps, 0, 3200, 1000, c)
	for i := 0; i < 5; i++ {
		pkt := packet.NewData(0, 1, 1, int64(i*1000), 1000)
		pkt.EcnCapable = true
		p.Send(pkt)
	}
	q := p.Queue()
	if q.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", q.Dropped)
	}
	if q.Marked != 4 {
		t.Fatalf("Marked = %d, want 4", q.Marked)
	}
	// Mid-flight: starts at 832 and 1664 have passed, only the fourth packet
	// (start 2496) is still waiting. A stale entry from the dropped packet
	// would surface here as a wrong (or later, negative) backlog.
	var mid int
	eng.At(1664, func() { mid = p.Backlog() })
	eng.Run()
	if mid != 1040 {
		t.Fatalf("backlog at t=1664 = %d, want 1040", mid)
	}
	if len(c.pkts) != 4 {
		t.Fatalf("delivered %d packets, want 4", len(c.pkts))
	}
	for i, pkt := range c.pkts {
		if !pkt.CE {
			t.Fatalf("delivered packet %d not CE-marked", i)
		}
	}
	if p.Backlog() != 0 || q.Bytes() != 0 || q.Len() != 0 {
		t.Fatalf("queue not empty after run: backlog=%d bytes=%d len=%d",
			p.Backlog(), q.Bytes(), q.Len())
	}
}

// TestPipeDrainInterleavedWithDRROnSameSwitch runs both transmitter
// implementations side by side on one switch: a plain-FIFO port on the
// virtual-transmitter fast path (lazy PopDrained accounting) and a DRR port
// on the event-driven txDone path. The DRR port's events fire between the
// FIFO port's sends and drains on the same engine; both must keep exact,
// independent accounting and identical delivery pacing.
func TestPipeDrainInterleavedWithDRROnSameSwitch(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(eng, "t")
	cf := &collector{eng: eng}
	cd := &collector{eng: eng}
	fifoPipe := NewPipe(eng, 10*units.Gbps, 0, 0, 0, cf)
	drrPipe := NewPipe(eng, 10*units.Gbps, 0, 0, 0, cd)
	drrPipe.SetScheduler(queue.NewDRR(2, 0, 0, nil))
	sw.AddRoute(5, sw.AddPort(fifoPipe))
	sw.AddRoute(6, sw.AddPort(drrPipe))

	const n = 8
	for i := 0; i < n; i++ {
		i := i
		// Arrivals every 100ns against an 832ns serialization time: both
		// ports build queues, and every DRR txDone fires between two FIFO
		// sends.
		eng.At(sim.Time(i*100), func() {
			sw.Receive(packet.NewData(0, 5, 1, int64(i), 1000))
			sw.Receive(packet.NewData(0, 6, packet.FlowID(2+i%2), int64(i), 1000))
		})
	}
	// At t=900 each port has received 8 packets and finished exactly one
	// (at t=832), with one more in service: 6 waiting on both, whichever
	// transmitter implementation is counting.
	var fifoMid, drrMid int
	eng.At(900, func() { fifoMid = fifoPipe.Backlog(); drrMid = drrPipe.Backlog() })
	eng.Run()

	if fifoMid != 6*1040 || drrMid != 6*1040 {
		t.Fatalf("mid-flight backlogs fifo=%d drr=%d, want %d on both", fifoMid, drrMid, 6*1040)
	}
	if len(cf.pkts) != n || len(cd.pkts) != n {
		t.Fatalf("delivered fifo=%d drr=%d, want %d each", len(cf.pkts), len(cd.pkts), n)
	}
	for i := 1; i < n; i++ {
		if got := cf.times[i] - cf.times[i-1]; got != 832 {
			t.Fatalf("fifo delivery spacing %d = %v, want 832ns", i, got)
		}
		if got := cd.times[i] - cd.times[i-1]; got != 832 {
			t.Fatalf("drr delivery spacing %d = %v, want 832ns", i, got)
		}
	}
	for i, pkt := range cf.pkts {
		if pkt.Seq != int64(i) {
			t.Fatalf("fifo delivery %d has seq %d, want arrival order", i, pkt.Seq)
		}
	}
	if fifoPipe.Backlog() != 0 || drrPipe.Backlog() != 0 {
		t.Fatalf("backlogs not drained: fifo=%d drr=%d", fifoPipe.Backlog(), drrPipe.Backlog())
	}
	if fifoPipe.TxPackets != n || drrPipe.TxPackets != n {
		t.Fatalf("tx counters fifo=%d drr=%d, want %d each", fifoPipe.TxPackets, drrPipe.TxPackets, n)
	}
}
