package core

import (
	"aqueue/internal/sim"
	"aqueue/internal/units"
)

// Strawman implements the D(t) discrepancy function of §3.2 (Expressions
// 4–5): the unclamped integrated difference between arrival rate and
// allocated rate during backlogged periods, decayed (but clamped at zero)
// during empty periods.
//
// Unlike the A-Gap, D(t) can go negative during backlogged periods — the
// "surplus" — which lets a CC that overly reduced its rate later overshoot
// the allocation (Figure 3a). The type exists to reproduce Figure 3 and for
// the ablation benchmarks; AQ proper never uses it.
type Strawman struct {
	rate     float64 // bytes per nanosecond
	d        float64 // D(t) in bytes
	lastTime sim.Time
}

// NewStrawman returns a D(t) tracker for allocated rate r.
func NewStrawman(r units.BitRate) *Strawman {
	return &Strawman{rate: r.BytesPerNano()}
}

// D returns the current discrepancy in bytes (may be negative).
func (s *Strawman) D() float64 { return s.d }

// Arrive accounts a packet of the given size arriving at time now during a
// backlogged period: D accumulates the integrated difference with no
// clamping (Expression 4).
func (s *Strawman) Arrive(now sim.Time, size int) float64 {
	s.d -= float64(now-s.lastTime) * s.rate
	s.d += float64(size)
	s.lastTime = now
	return s.d
}

// Idle advances time to now across an empty period: D decays at rate R but
// is clamped at zero (Expression 5).
func (s *Strawman) Idle(now sim.Time) float64 {
	s.d -= float64(now-s.lastTime) * s.rate
	if s.d < 0 {
		s.d = 0
	}
	s.lastTime = now
	return s.d
}
