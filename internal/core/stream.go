package core

import (
	"aqueue/internal/packet"
)

// StreamCursor batches a table's per-entity fluid work across one lane
// epoch, the fluid analogue of BurstCursor. Two costs amortize:
//
//   - the AQ lookup: a cohort of same-tag entities resolves its AQ once —
//     the cursor memoizes the last (id → aq) resolution, so after the first
//     entity of a cohort every Resolve is one integer compare;
//   - the counters: fluidEpochs/fluidMisses accumulate in plain locals and
//     flush to the table's atomics once per epoch instead of once per
//     entity (two contended atomic adds per entity at a million entities).
//
// Feedback is byte-identical to Table.ProcessFluid: the memo only
// short-cuts *where* the AQ pointer comes from, never what runs, and the
// per-table generation counter invalidates the memo the moment a Deploy or
// Remove changes membership mid-epoch. A cursor is owned by one lane and
// used only between Bind/Flush on the engine goroutine.
type StreamCursor struct {
	t   *Table
	gen uint64

	lastID   packet.AQID
	lastAQ   *AQ // may be nil: a memoized miss is still a memo hit
	haveLast bool

	epochs uint64
	misses uint64
}

// Bind points the cursor at a table and clears any stale memo or counts.
// Call once per epoch; cheap enough to call unconditionally.
func (c *StreamCursor) Bind(t *Table) {
	c.t = t
	c.gen = t.gen
	c.haveLast = false
	c.epochs, c.misses = 0, 0
}

// Resolve is ProcessFluid's tag match through the epoch memo: it counts one
// per-entity epoch integration and returns the deployed AQ, or nil for a
// miss (pass-through — the caller accepts everything, as ProcessFluid
// does). Callers must handle packet.NoAQ themselves: untagged streams never
// reach the table and touch no counter, exactly like ProcessFluid's early
// return.
func (c *StreamCursor) Resolve(id packet.AQID) *AQ {
	c.epochs++
	t := c.t
	if t.gen != c.gen {
		c.gen = t.gen
		c.haveLast = false
	}
	var aq *AQ
	if c.haveLast && c.lastID == id {
		aq = c.lastAQ
	} else {
		aq = t.lookup(id)
		c.lastID, c.lastAQ, c.haveLast = id, aq, true
	}
	if aq == nil {
		c.misses++
	}
	return aq
}

// Flush folds the locally accumulated counts into the table's atomic
// counters — at most one atomic add per counter per epoch — and resets the
// cursor for the next epoch.
func (c *StreamCursor) Flush() {
	if c.t == nil {
		return
	}
	if c.epochs > 0 {
		c.t.fluidEpochs.Add(c.epochs)
	}
	if c.misses > 0 {
		c.t.fluidMisses.Add(c.misses)
	}
	c.epochs, c.misses = 0, 0
	c.haveLast = false
}
