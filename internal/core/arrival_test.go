package core

import (
	"math"
	"testing"
	"testing/quick"

	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/units"
)

// TestFluidPacketEquivalence is the property test binding the two arrival
// forms together: a constant-rate stream pushed through OnFluidEpoch must
// trace the same clamped A-Gap trajectory as the equivalent back-to-back
// packet arrivals, to within one epoch of quantization (one epoch's worth
// of bytes plus one packet of discretization).
func TestFluidPacketEquivalence(t *testing.T) {
	const (
		pktSize = 1500
		epoch   = 100 * sim.Microsecond
		horizon = 20 * sim.Millisecond
	)
	prop := func(rateMbps uint16, allocMbps uint16) bool {
		// Arrival rates in (0, ~65] Gbps, allocations in (0, ~65] Gbps:
		// the quick checker sweeps underload, overload (limit drops) and
		// near-balance.
		arrival := units.BitRate(float64(rateMbps)+1) * units.Mbps * 100
		alloc := units.BitRate(float64(allocMbps)+1) * units.Mbps * 100

		pktAQ := New(Config{ID: 1, Rate: alloc})
		fluAQ := New(Config{ID: 1, Rate: alloc})

		r := arrival.BytesPerNano() // bytes per ns
		gapPkt := float64(pktSize) / r
		nextPkt := gapPkt
		tol := r*float64(epoch) + pktSize

		for now := epoch; now <= horizon; now += epoch {
			// Packet lane: back-to-back packets up to the epoch boundary.
			// The fluid epoch gets exactly the mass those packets carried,
			// so the comparison isolates the integration forms from the
			// inter-arrival rounding of the packet schedule.
			var epochBytes float64
			for sim.Time(nextPkt) <= now {
				pktAQ.arrived++
				pktAQ.arrivedBytes += uint64(pktSize)
				if gap := pktAQ.Update(sim.Time(nextPkt), pktSize); gap > pktAQ.limit {
					pktAQ.gap = gap - pktSize
					pktAQ.drops++
				}
				nextPkt += gapPkt
				epochBytes += pktSize
			}
			// Fluid lane: one epoch integral of the same mass.
			fluAQ.OnFluidEpoch(now, epochBytes, epoch)

			// Trajectories must agree at every epoch boundary. Advance the
			// packet AQ's drain to the boundary for an apples-to-apples
			// read (its last arrival may precede it).
			g := pktAQ.gap
			if d := float64(now - pktAQ.lastTime); d > 0 {
				g = math.Max(0, g-d*alloc.BytesPerNano())
			}
			if math.Abs(g-fluAQ.gap) > tol {
				t.Logf("arrival=%v alloc=%v t=%v: packet gap %.1f vs fluid gap %.1f (tol %.1f)",
					arrival, alloc, now, g, fluAQ.gap, tol)
				return false
			}
		}

		// Accepted bytes must match to the same order: what the packet AQ
		// let through vs the fluid accepted mass, within a small number of
		// epochs' quantization over the run.
		pktAccepted := float64(pktAQ.arrivedBytes) - float64(pktAQ.drops)*pktSize
		fluAccepted := fluAQ.fluidBytes - fluAQ.fluidDropped
		if math.Abs(pktAccepted-fluAccepted) > 10*tol {
			t.Logf("arrival=%v alloc=%v: accepted packet %.0f vs fluid %.0f",
				arrival, alloc, pktAccepted, fluAccepted)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestOnFluidEpochECNMarkFraction pins the closed-form mark fraction: a
// rate held exactly at the allocation with the gap parked above the
// threshold marks everything; a drained gap marks nothing; a trajectory
// crossing the threshold mid-epoch marks the fraction above it.
func TestOnFluidEpochECNMarkFraction(t *testing.T) {
	alloc := 1 * units.Gbps
	aq := New(Config{ID: 1, Rate: alloc, CC: ECNType})
	r := alloc.BytesPerNano()
	epoch := sim.Time(sim.Millisecond)

	// Below threshold, rate == allocation: gap flat at ~0, no marks.
	fb := aq.OnFluidEpoch(epoch, r*float64(epoch), epoch)
	if fb.MarkFrac != 0 {
		t.Fatalf("flat low trajectory marked %.3f, want 0", fb.MarkFrac)
	}
	// Push the gap from 0 through the threshold at double rate: the gap
	// climbs linearly to 2*K(ish); roughly the second half of the climb
	// is above K.
	need := 2 * aq.ecnThreshold
	dt := sim.Time(need / r) // at slope r (2r in, r drained)
	fb = aq.OnFluidEpoch(epoch+dt, 2*r*float64(dt), dt)
	if math.Abs(fb.MarkFrac-0.5) > 0.02 {
		t.Fatalf("threshold-crossing epoch marked %.3f, want ~0.5", fb.MarkFrac)
	}
	if math.Abs(fb.Gap-need) > 1 {
		t.Fatalf("gap = %.1f, want %.1f", fb.Gap, need)
	}
	// Now hold exactly at allocation: gap stays parked above K, everything
	// marks.
	fb = aq.OnFluidEpoch(epoch+dt+epoch, r*float64(epoch), epoch)
	if fb.MarkFrac != 1 {
		t.Fatalf("parked-above-K epoch marked %.3f, want 1", fb.MarkFrac)
	}
}

// TestOnFluidEpochLimitSheds: offered mass beyond the AQ limit is dropped,
// not accrued — the fluid form of Algorithm 2's drop rule.
func TestOnFluidEpochLimitSheds(t *testing.T) {
	aq := New(Config{ID: 1, Rate: units.Gbps, Limit: 10_000})
	epoch := sim.Time(sim.Millisecond)
	offered := 500_000.0
	fb := aq.OnFluidEpoch(epoch, offered, epoch)
	drained := units.BitRate(units.Gbps).BytesPerNano() * float64(epoch)
	wantAccepted := drained + 10_000 // what drained plus what the limit holds
	if math.Abs(fb.Accepted-wantAccepted) > 1 {
		t.Fatalf("accepted %.0f, want %.0f", fb.Accepted, wantAccepted)
	}
	if fb.Gap != 10_000 {
		t.Fatalf("gap = %.0f, want parked at the limit", fb.Gap)
	}
	if lf := fb.LossFrac(); lf <= 0.7 {
		t.Fatalf("loss fraction = %.3f, want heavy loss", lf)
	}
}

// TestProcessFluidUnmatched: untagged or unmatched streams pass with
// everything accepted, mirroring the packet path.
func TestProcessFluidUnmatched(t *testing.T) {
	tbl := NewTable()
	fb := tbl.ProcessFluid(sim.Millisecond, 0, 1000, sim.Millisecond)
	if fb.Accepted != 1000 || fb.Dropped != 0 {
		t.Fatalf("NoAQ stream: %+v", fb)
	}
	fb = tbl.ProcessFluid(sim.Millisecond, 42, 1000, sim.Millisecond)
	if fb.Accepted != 1000 {
		t.Fatalf("unmatched stream: %+v", fb)
	}
	st := tbl.Stats()
	if st.FluidEpochs != 1 || st.FluidMisses != 1 {
		t.Fatalf("stats = %+v, want 1 epoch, 1 miss (NoAQ not counted)", st)
	}
}

// TestDeployBatchMatchesDeploy: the bulk path must land the same table as
// per-config Deploy, including the dense mirror.
func TestDeployBatchMatchesDeploy(t *testing.T) {
	cfgs := make([]Config, 100)
	for i := range cfgs {
		cfgs[i] = Config{ID: packet.AQID(i + 1), Rate: units.Gbps}
	}
	a := NewTableDense(true)
	for _, c := range cfgs {
		a.Deploy(c)
	}
	b := NewTableDense(true)
	b.DeployBatch(cfgs)
	if a.Len() != b.Len() {
		t.Fatalf("len %d vs %d", a.Len(), b.Len())
	}
	for _, c := range cfgs {
		if b.Lookup(c.ID) == nil {
			t.Fatalf("batch table missing %d", c.ID)
		}
	}
}
