package core

import (
	"fmt"
	"sort"
	"sync/atomic"

	"aqueue/internal/ident"
	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/trace"
)

// Table is the per-pipeline AQ lookup table of a switch (§4.2): a map from
// the AQ ID carried in the packet header to the deployed AQ state. A switch
// has one table for its ingress pipeline and one for its egress pipeline.
//
// The table also implements the §6 work-conservation extension: when a
// Bypass predicate is installed and reports true (e.g. "the physical queue
// of the output port is empty"), AQ processing is skipped so entities may
// exceed their allocations while the network is idle.
type Table struct {
	aqs map[packet.AQID]*AQ

	// dense, when non-nil, is a direct-indexed mirror of aqs covering
	// [0, maxID]: the hot path indexes it with the packet's tag instead of
	// hashing. It is rebuilt on every Deploy/Remove and only kept while
	// denseOK is set and ident.Dense approves the ID range (sparse deploys
	// fall back to the map). Both layouts hold the same *AQ pointers, so
	// which one serves a lookup is unobservable in results.
	dense []*AQ

	// denseOK permits the dense layout; fixed at construction from the
	// engine options (or the process defaults for bare NewTable).
	denseOK bool

	// gen counts membership changes (Deploy/Remove). BurstCursor snapshots
	// it so a memoized lookup can never survive a table rebuild.
	gen uint64

	// Bypass, when non-nil, is consulted per packet; a true return skips
	// AQ processing entirely (work-conserving mode, §6).
	Bypass func(p *packet.Packet) bool

	// trace, when non-nil, receives AQDrop and AQMark events — the two
	// outcomes only the AQ layer can observe. traceWhere labels them.
	trace      trace.Sink
	traceWhere string

	// Counters. Atomic because a table may be observed from outside its
	// simulation goroutine: the control-plane server reports tables over
	// TCP while traffic flows, and the parallel experiment harness snapshots
	// them after concurrent runs.
	lookups  atomic.Uint64
	misses   atomic.Uint64
	bypassed atomic.Uint64

	// Fluid-lane counters, separate so the packet counters (and any
	// fingerprint folded over them) are untouched when the fluid lane is
	// off. fluidEpochs counts per-entity epoch integrations.
	fluidEpochs atomic.Uint64
	fluidMisses atomic.Uint64
}

// TableStats is a consistent-enough snapshot of the table's counters
// (each counter is read atomically; the set is not fenced as a group,
// which is fine for reporting).
type TableStats struct {
	Lookups  uint64 `json:"lookups"`
	Misses   uint64 `json:"misses"`
	Bypassed uint64 `json:"bypassed"`
	// Fluid-lane counters; omitted while zero so snapshots taken with the
	// fluid lane disabled serialize exactly as before it existed.
	FluidEpochs uint64 `json:"fluid_epochs,omitempty"`
	FluidMisses uint64 `json:"fluid_misses,omitempty"`
}

// Stats returns a snapshot of the lookup/miss/bypass counters.
func (t *Table) Stats() TableStats {
	return TableStats{
		Lookups:     t.lookups.Load(),
		Misses:      t.misses.Load(),
		Bypassed:    t.bypassed.Load(),
		FluidEpochs: t.fluidEpochs.Load(),
		FluidMisses: t.fluidMisses.Load(),
	}
}

// NewTable returns an empty AQ table, with the dense layout governed by the
// process default options. Components with an engine in hand should prefer
// NewTableDense(eng.Options().DenseTables).
func NewTable() *Table {
	return NewTableDense(sim.DefaultOptions().DenseTables)
}

// NewTableDense returns an empty AQ table with the dense lookup layout
// explicitly permitted or forbidden.
func NewTableDense(dense bool) *Table {
	return &Table{aqs: make(map[packet.AQID]*AQ), denseOK: dense}
}

// Deploy installs (or replaces) an AQ built from cfg and returns it.
func (t *Table) Deploy(cfg Config) *AQ {
	aq := New(cfg)
	t.aqs[cfg.ID] = aq
	t.rebuild()
	return aq
}

// DeployBatch installs (or replaces) an AQ per config, rebuilding the
// lookup layout once at the end. Deploy rebuilds per call — O(table) each,
// quadratic for bulk deploys — which the million-entity fluid scenarios
// cannot afford. The AQs of one batch are allocated as a single slab, so a
// lane sweeping the table in ID order walks contiguous memory instead of
// pointer-chasing one heap object per AQ.
func (t *Table) DeployBatch(cfgs []Config) {
	slab := make([]AQ, len(cfgs))
	for i, cfg := range cfgs {
		slab[i].init(cfg)
		t.aqs[cfg.ID] = &slab[i]
	}
	t.rebuild()
}

// Remove undeploys the AQ with the given ID.
func (t *Table) Remove(id packet.AQID) {
	delete(t.aqs, id)
	t.rebuild()
}

// rebuild refreshes the dense mirror after a membership change.
func (t *Table) rebuild() {
	t.gen++
	t.dense = nil
	if !t.denseOK || len(t.aqs) == 0 {
		return
	}
	maxID := -1
	for id := range t.aqs {
		if int(id) > maxID {
			maxID = int(id)
		}
	}
	if !ident.Dense(maxID, len(t.aqs)) {
		return
	}
	d := make([]*AQ, maxID+1)
	for id, aq := range t.aqs {
		d[id] = aq
	}
	t.dense = d
}

// Lookup returns the AQ deployed under id, or nil.
func (t *Table) Lookup(id packet.AQID) *AQ { return t.aqs[id] }

// Generation returns the membership generation counter — it ticks on every
// Deploy/Remove. Cursors and lanes snapshot it to decide whether memoized
// lookups (or lookup-free fast paths) are still valid.
func (t *Table) Generation() uint64 { return t.gen }

// Len returns the number of deployed AQs.
func (t *Table) Len() int { return len(t.aqs) }

// IDs returns the deployed AQ IDs in ascending order (for reports/tests).
func (t *Table) IDs() []packet.AQID {
	ids := make([]packet.AQID, 0, len(t.aqs))
	for id := range t.aqs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Process matches the packet's tag for this pipeline position and, when an
// AQ is deployed under it, runs the per-packet framework. It returns Drop
// only when a matched AQ drops the packet; unmatched or untagged packets
// pass through, as do all packets while the bypass predicate holds.
func (t *Table) Process(now sim.Time, id packet.AQID, p *packet.Packet) Verdict {
	if id == packet.NoAQ {
		return Pass
	}
	if t.Bypass != nil && t.Bypass(p) {
		t.bypassed.Add(1)
		return Pass
	}
	t.lookups.Add(1)
	aq := t.lookup(id)
	if aq == nil {
		t.misses.Add(1)
		return Pass
	}
	return t.run(now, aq, p)
}

// lookup resolves id through whichever layout the table currently holds.
func (t *Table) lookup(id packet.AQID) *AQ {
	if t.dense != nil {
		if int(id) < len(t.dense) {
			return t.dense[id]
		}
		return nil
	}
	return t.aqs[id]
}

// run executes the matched AQ's per-packet framework, recording trace
// events when a sink is attached. Shared by Process and BurstCursor.
func (t *Table) run(now sim.Time, aq *AQ, p *packet.Packet) Verdict {
	if t.trace == nil {
		return aq.Process(now, p)
	}
	marksBefore := aq.marks
	v := aq.Process(now, p)
	if v == Drop {
		t.trace.Record(trace.FromPacket(now, trace.AQDrop, p, t.traceWhere))
	} else if aq.marks != marksBefore {
		t.trace.Record(trace.FromPacket(now, trace.AQMark, p, t.traceWhere))
	}
	return v
}

// SetTrace attaches a sink that receives an AQDrop or AQMark event for
// every packet the table's AQs drop or ECN-mark, labelled with where.
// A nil sink detaches tracing; the hot path then pays one branch.
func (t *Table) SetTrace(s trace.Sink, where string) {
	t.trace = s
	t.traceWhere = where
}

// MemoryBytes models the SRAM footprint of the deployed AQs using the
// paper's layout (§5.5, Figure 12): 4 B AQ ID, 3 B rate, 3 B limit, 3 B gap
// and 2 B last_time = 15 B per AQ.
func (t *Table) MemoryBytes() int { return len(t.aqs) * BytesPerAQ }

// BytesPerAQ is the paper's per-AQ switch memory cost (Figure 12).
const BytesPerAQ = 15

// String summarises the table.
func (t *Table) String() string {
	s := t.Stats()
	return fmt.Sprintf("aq.Table{%d AQs, %d lookups, %d misses}", len(t.aqs), s.Lookups, s.Misses)
}
