package core

import (
	"aqueue/internal/packet"
	"aqueue/internal/sim"
)

// This file is the fluid half of the unified arrival-stream abstraction.
//
// Expression 7 defines the A-Gap over an entity's arrival *rate*, not its
// packets; Algorithm 1 is merely the streaming form for the special case
// where arrivals are point masses. The same clamped integral admits a
// second streaming form for piecewise-constant rates: over an epoch of
// width dt in which the entity contributes `bytes`, the arrival rate is
// r = bytes/dt and the gap trajectory is the clamped linear function
//
//	g(t) = max(0, g0 + (r - R)·t),  t in [0, dt]
//
// which OnFluidEpoch evaluates in closed form. Both forms share the
// rate-integration kernel AQ.advance: the packet form drains then deposits
// a point mass, the fluid form folds the deposit into the slope. The
// equivalence is exercised by TestFluidPacketEquivalence: a constant-rate
// stream produces the same clamped trajectory through either entry point,
// to within one epoch of quantization.

// FluidFeedback is the outcome of integrating one fluid epoch through an
// AQ — the fluid analogue of Verdict, with the binary drop/mark decisions
// of Algorithm 2 widened to fractions of the epoch's bytes so fluid
// senders can react to them as probabilities.
type FluidFeedback struct {
	// Accepted is the portion of the offered bytes that counted against
	// the entity's allocation; Dropped is the excess shed by the AQ-limit
	// rule (the fluid form of Algorithm 2 lines 2-4: dropped traffic does
	// not accrue gap).
	Accepted float64
	Dropped  float64
	// MarkFrac is the fraction of the epoch during which arrivals saw the
	// gap above the ECN threshold — the marking probability an ECN-based
	// fluid sender feeds into its reduction term. Zero unless the AQ is
	// ECNType.
	MarkFrac float64
	// Gap is the A-Gap at the epoch boundary, after the limit rule.
	Gap float64
	// Delay is the virtual queuing delay Gap/R at the epoch boundary, the
	// feedback signal for delay-based fluid senders.
	Delay sim.Time
}

// LossFrac returns the dropped fraction of the offered bytes — the drop
// probability a loss-based fluid sender reacts to.
func (fb FluidFeedback) LossFrac() float64 {
	total := fb.Accepted + fb.Dropped
	if total <= 0 {
		return 0
	}
	return fb.Dropped / total
}

// ArrivalStream is the unified arrival abstraction: anything that
// contributes bytes to an AQ over time. Discrete packets are the
// degenerate case (all bytes at one instant, routed through
// Table.Process for speed); fluid flows report an epoch's worth of bytes
// at once and consume the AQ's decision as fractional feedback.
type ArrivalStream interface {
	// AQID returns the tag the stream's bytes carry, matched against the
	// table like a packet's header tag. NoAQ streams pass unmatched.
	AQID() packet.AQID
	// OfferedBytes returns the bytes the stream contributes over the
	// epoch (now-dt, now].
	OfferedBytes(now sim.Time, dt sim.Time) float64
	// OnFeedback delivers the AQ's epoch verdict back to the stream.
	OnFeedback(fb FluidFeedback)
}

// OnFluidEpoch integrates one fluid epoch through the AQ: `bytes` arrived
// at a constant rate over (now-dt, now]. It advances the same registers as
// Update — the two entry points may interleave on one AQ — and returns the
// epoch's feedback.
//
// If packet arrivals already advanced last_time into this epoch, only the
// remaining sub-interval is integrated and the epoch's full mass is spread
// over it; the displacement is at most one epoch, within the fidelity
// contract of the fluid lane.
func (a *AQ) OnFluidEpoch(now sim.Time, bytes float64, dt sim.Time) FluidFeedback {
	if bytes < 0 {
		bytes = 0
	}
	start := now - dt
	if dt <= 0 || a.lastTime > start {
		start = a.lastTime
	}
	width := float64(now - start)
	g0 := a.gap
	var g1, markFrac float64
	if width <= 0 {
		// Nothing left of the epoch to integrate: the mass lands as a
		// point deposit, exactly the packet form.
		g1 = g0 + bytes
		if a.cc == ECNType && g1 > a.ecnThreshold {
			markFrac = 1
		}
	} else {
		slope := bytes/width - a.rate
		g1 = g0 + slope*width
		if g1 < 0 {
			g1 = 0
		}
		if a.cc == ECNType {
			markFrac = markFraction(g0, slope, width, a.ecnThreshold)
		}
	}
	// The fluid form of the AQ-limit rule: the gap may not end the epoch
	// beyond the limit; the excess is shed and (as in Algorithm 2) does
	// not count against the allocation.
	dropped := g1 - a.limit
	if dropped < 0 {
		dropped = 0
	}
	if dropped > bytes {
		dropped = bytes
	}
	a.gap = g1 - dropped
	a.lastTime = now
	accepted := bytes - dropped
	a.fluidBytes += bytes
	a.fluidDropped += dropped
	a.fluidMarked += accepted * markFrac
	fb := FluidFeedback{
		Accepted: accepted,
		Dropped:  dropped,
		MarkFrac: markFrac,
		Gap:      a.gap,
	}
	if a.rate > 0 {
		fb.Delay = sim.Time(a.gap / a.rate)
	}
	return fb
}

// markFraction returns the fraction of [0, width] during which the linear
// gap trajectory g0 + slope·t sits above the threshold k.
func markFraction(g0, slope, width, k float64) float64 {
	switch {
	case slope > 0:
		if g0 >= k {
			return 1
		}
		t := (k - g0) / slope
		if t >= width {
			return 0
		}
		return (width - t) / width
	case slope < 0:
		if g0 <= k {
			return 0
		}
		t := (g0 - k) / -slope
		if t >= width {
			return 1
		}
		return t / width
	default:
		if g0 > k {
			return 1
		}
		return 0
	}
}

// ProcessFluid is the fluid counterpart of Table.Process: it matches the
// tag and integrates the epoch through the deployed AQ. Unmatched or
// untagged streams pass with everything accepted, mirroring the packet
// path's pass-through. The work-conservation bypass is packet-only (it
// consults a physical queue the fluid lane never enters), and fluid
// epochs are not traced.
func (t *Table) ProcessFluid(now sim.Time, id packet.AQID, bytes float64, dt sim.Time) FluidFeedback {
	if id == packet.NoAQ {
		return FluidFeedback{Accepted: bytes}
	}
	t.fluidEpochs.Add(1)
	aq := t.lookup(id)
	if aq == nil {
		t.fluidMisses.Add(1)
		return FluidFeedback{Accepted: bytes}
	}
	return aq.OnFluidEpoch(now, bytes, dt)
}

// ProcessStream drives one arrival stream through the table for the epoch
// ending at now: ask the stream for its bytes, integrate them, hand the
// verdict back. This is the fluid lane's per-entity step.
func (t *Table) ProcessStream(now sim.Time, dt sim.Time, s ArrivalStream) FluidFeedback {
	fb := t.ProcessFluid(now, s.AQID(), s.OfferedBytes(now, dt), dt)
	s.OnFeedback(fb)
	return fb
}
