package core

import (
	"aqueue/internal/packet"
	"aqueue/internal/sim"
)

// BurstCursor batches a table's per-packet work across one delivery burst
// (§5 discussion; the iRED-style decoupling of decision work from
// per-packet processing). Two costs amortize:
//
//   - the AQ lookup: consecutive packets of one burst overwhelmingly carry
//     the same tag (a back-to-back departure run is usually one flow), so
//     the cursor memoizes the last (id → aq) resolution and skips the
//     table walk — the "one register transaction" for same-entity packets;
//   - the counters: lookups/misses/bypassed accumulate in plain locals and
//     flush to the table's atomics once per burst instead of once per
//     packet.
//
// Verdicts are byte-identical to Table.Process: the memo only short-cuts
// *where* the AQ pointer comes from, never what runs, and the per-table
// generation counter invalidates the memo the moment a Deploy or Remove
// changes membership mid-burst. A cursor is owned by one switch and used
// only between BeginBurst/EndBurst on the engine goroutine.
type BurstCursor struct {
	t   *Table
	gen uint64

	lastID   packet.AQID
	lastAQ   *AQ // may be nil: a memoized miss is still a memo hit
	haveLast bool

	lookups  uint64
	misses   uint64
	bypassed uint64
}

// Bind points the cursor at a table and clears any stale memo or counts.
// Call once per burst (BeginBurst); cheap enough to call unconditionally.
func (c *BurstCursor) Bind(t *Table) {
	c.t = t
	c.gen = t.gen
	c.haveLast = false
	c.lookups, c.misses, c.bypassed = 0, 0, 0
}

// Process is Table.Process through the burst memo. Same verdicts, same
// per-packet counter semantics — only the atomics and the lookup coalesce.
func (c *BurstCursor) Process(now sim.Time, id packet.AQID, p *packet.Packet) Verdict {
	t := c.t
	if id == packet.NoAQ {
		return Pass
	}
	if t.Bypass != nil && t.Bypass(p) {
		c.bypassed++
		return Pass
	}
	c.lookups++
	if t.gen != c.gen {
		c.gen = t.gen
		c.haveLast = false
	}
	var aq *AQ
	if c.haveLast && c.lastID == id {
		aq = c.lastAQ
	} else {
		aq = t.lookup(id)
		c.lastID, c.lastAQ, c.haveLast = id, aq, true
	}
	if aq == nil {
		c.misses++
		return Pass
	}
	return t.run(now, aq, p)
}

// Flush folds the locally accumulated counts into the table's atomic
// counters — at most one atomic add per counter per burst — and resets the
// cursor for the next burst.
func (c *BurstCursor) Flush() {
	if c.t == nil {
		return
	}
	if c.lookups > 0 {
		c.t.lookups.Add(c.lookups)
	}
	if c.misses > 0 {
		c.t.misses.Add(c.misses)
	}
	if c.bypassed > 0 {
		c.t.bypassed.Add(c.bypassed)
	}
	c.lookups, c.misses, c.bypassed = 0, 0, 0
	c.haveLast = false
}
