package core_test

import (
	"fmt"

	"aqueue/internal/core"
	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/units"
)

// ExampleAQ walks Algorithm 1 and Algorithm 2 by hand: an AQ with a
// 1 Gbps allocation and a 3 KB limit sees three back-to-back 1000-byte
// packets — the A-Gap climbs 1000, 2000, 3000 — and drops the fourth.
func ExampleAQ() {
	aq := core.New(core.Config{ID: 1, Rate: 1 * units.Gbps, Limit: 3000})
	for i := 0; i < 4; i++ {
		p := packet.NewData(0, 1, 1, int64(i*960), 960) // 1000 B on the wire
		verdict := aq.Process(0, p)
		fmt.Printf("packet %d: gap=%.0f verdict=%v\n", i+1, aq.Gap(), verdict == core.Pass)
	}
	// Output:
	// packet 1: gap=1000 verdict=true
	// packet 2: gap=2000 verdict=true
	// packet 3: gap=3000 verdict=true
	// packet 4: gap=3000 verdict=false
}

// ExampleAQ_virtualDelay shows the delay feedback of §3.3.2: the time the
// AQ needs to drain its gap at the allocated rate, stamped into the packet.
func ExampleAQ_virtualDelay() {
	aq := core.New(core.Config{ID: 1, Rate: 1 * units.Gbps, Limit: 1 << 20})
	p := packet.NewData(0, 1, 1, 0, 960)
	aq.Process(0, p)
	fmt.Println(p.VirtualDelay) // 1000 B at 0.125 B/ns
	// Output:
	// 8.000us
}

// ExampleTable shows the switch-pipeline view: packets tagged with an AQ
// ID are matched and processed; untagged traffic passes untouched.
func ExampleTable() {
	tbl := core.NewTable()
	tbl.Deploy(core.Config{ID: 7, Rate: units.Gbps, Limit: 1500})
	tagged := packet.NewData(0, 1, 1, 0, 960)
	tagged.IngressAQ = 7
	plain := packet.NewData(0, 1, 2, 0, 960)
	fmt.Println(tbl.Process(sim.Time(0), tagged.IngressAQ, tagged) == core.Pass)
	fmt.Println(tbl.Process(sim.Time(0), plain.IngressAQ, plain) == core.Pass)
	fmt.Println(tbl.MemoryBytes(), "bytes of switch memory")
	// Output:
	// true
	// true
	// 15 bytes of switch memory
}
