package core

import (
	"testing"

	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/units"
)

func TestTableDeployLookupRemove(t *testing.T) {
	tbl := NewTable()
	aq := tbl.Deploy(Config{ID: 7, Rate: units.Gbps})
	if tbl.Lookup(7) != aq {
		t.Fatal("lookup after deploy failed")
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tbl.Len())
	}
	tbl.Remove(7)
	if tbl.Lookup(7) != nil {
		t.Fatal("lookup after remove succeeded")
	}
}

func TestTableProcessUntaggedPasses(t *testing.T) {
	tbl := NewTable()
	tbl.Deploy(Config{ID: 7, Rate: units.Gbps, Limit: 1})
	p := packet.NewData(1, 2, 1, 0, 960)
	if tbl.Process(0, packet.NoAQ, p) != Pass {
		t.Fatal("untagged packet did not pass")
	}
	if tbl.Stats().Lookups != 0 {
		t.Fatal("untagged packet hit the table")
	}
}

func TestTableProcessMissPasses(t *testing.T) {
	tbl := NewTable()
	p := packet.NewData(1, 2, 1, 0, 960)
	if tbl.Process(0, 42, p) != Pass {
		t.Fatal("miss should pass")
	}
	if got := tbl.Stats().Misses; got != 1 {
		t.Fatalf("Misses = %d, want 1", got)
	}
}

func TestTableProcessMatchDrops(t *testing.T) {
	tbl := NewTable()
	tbl.Deploy(Config{ID: 9, Rate: units.Kbps, Limit: 100})
	p := packet.NewData(1, 2, 1, 0, 960)
	if tbl.Process(0, 9, p) != Drop {
		t.Fatal("over-limit packet not dropped by matched AQ")
	}
}

func TestTableBypass(t *testing.T) {
	tbl := NewTable()
	tbl.Deploy(Config{ID: 9, Rate: units.Kbps, Limit: 100})
	bypass := true
	tbl.Bypass = func(*packet.Packet) bool { return bypass }
	p := packet.NewData(1, 2, 1, 0, 960)
	if tbl.Process(0, 9, p) != Pass {
		t.Fatal("bypass did not skip AQ processing")
	}
	if got := tbl.Stats().Bypassed; got != 1 {
		t.Fatalf("Bypassed = %d, want 1", got)
	}
	bypass = false
	if tbl.Process(0, 9, p) != Drop {
		t.Fatal("AQ not enforced once bypass lifted")
	}
}

// TestTableCountersConcurrent hammers Process from several goroutines and
// reads Stats concurrently; run with -race this pins the counters'
// thread-safety (the control-plane server and the parallel harness both
// observe tables while traffic flows).
func TestTableCountersConcurrent(t *testing.T) {
	tbl := NewTable()
	tbl.Deploy(Config{ID: 1, Rate: units.Gbps, Limit: 1 << 30})
	const workers, perWorker = 4, 1000
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			p := packet.NewData(1, 2, 1, 0, 960)
			for i := 0; i < perWorker; i++ {
				tbl.Process(sim.Time(i), 1, p)
				tbl.Process(sim.Time(i), 42, p) // miss
			}
		}()
	}
	for w := 0; w < workers; w++ {
		_ = tbl.Stats() // concurrent reads must not race
		<-done
	}
	s := tbl.Stats()
	if s.Lookups != 2*workers*perWorker || s.Misses != workers*perWorker {
		t.Fatalf("Stats = %+v, want %d lookups, %d misses", s, 2*workers*perWorker, workers*perWorker)
	}
}

func TestTableIDsSorted(t *testing.T) {
	tbl := NewTable()
	for _, id := range []packet.AQID{5, 1, 9, 3} {
		tbl.Deploy(Config{ID: id, Rate: units.Gbps})
	}
	ids := tbl.IDs()
	want := []packet.AQID{1, 3, 5, 9}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs() = %v, want %v", ids, want)
		}
	}
}

func TestTableMemoryModel(t *testing.T) {
	tbl := NewTable()
	for i := 1; i <= 100; i++ {
		tbl.Deploy(Config{ID: packet.AQID(i), Rate: units.Gbps})
	}
	if tbl.MemoryBytes() != 100*BytesPerAQ {
		t.Fatalf("MemoryBytes = %d, want %d", tbl.MemoryBytes(), 100*BytesPerAQ)
	}
}

func TestStrawmanAllowsSurplusAGapDoesNot(t *testing.T) {
	// Reproduce the essence of Figure 3: a source that underuses its
	// allocation builds negative D(t) (surplus) with the strawman, but the
	// A-Gap clamps at ~0, so a later burst is penalized immediately by the
	// A-Gap while the strawman absorbs it.
	rate := units.Gbps // 0.125 B/ns
	s := NewStrawman(rate)
	aq := New(Config{ID: 1, Rate: rate, Limit: 1 << 30})
	// Send at half the allocated rate for a while: one 1000 B packet every
	// 16000 ns (allocation drains 2000 B per interval).
	now := sim.Time(0)
	for i := 0; i < 100; i++ {
		now += 16000
		s.Arrive(now, 1000)
		aq.Update(now, 1000)
	}
	if s.D() >= 0 {
		t.Fatalf("strawman D = %v, want negative (surplus)", s.D())
	}
	if aq.Gap() > 1000 {
		t.Fatalf("A-Gap = %v, want clamped near zero", aq.Gap())
	}
	// Burst: 50 packets back to back.
	for i := 0; i < 50; i++ {
		now++
		s.Arrive(now, 1000)
		aq.Update(now, 1000)
	}
	if s.D() >= aq.Gap() {
		t.Fatalf("strawman D (%v) should lag A-Gap (%v) after the burst due to surplus",
			s.D(), aq.Gap())
	}
}

func TestStrawmanIdleClampsAtZero(t *testing.T) {
	s := NewStrawman(units.Gbps)
	s.Arrive(0, 10000)
	if s.Idle(1<<30) != 0 {
		t.Fatal("idle decay did not clamp at zero")
	}
}
