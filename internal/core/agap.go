// Package core implements the paper's contribution: the Augmented Queue
// (AQ) abstraction.
//
// An AQ tracks, per traffic entity, the A-Gap — the clamped integral of the
// difference between the entity's arrival rate r(t) and its allocated rate R
// (Expression 7). Theorem 3.2 converts the continuous definition to the
// per-packet streaming recurrence implemented here (Algorithm 1):
//
//	A(p_k.time) = max(0, A(p_{k-1}.time) - Δ(k)·R) + p_k.size
//
// On top of the A-Gap, the traffic-control framework (Algorithm 2) drops
// packets once the A-Gap exceeds the AQ limit (rate limiting / feedback for
// drop-based CC), marks ECN once it exceeds a virtual threshold (feedback
// for ECN-based CC), and stamps the virtual queuing delay A(k)/R into the
// packet (feedback for delay-based CC). All of this is independent of the
// physical queue, which is the point of the abstraction.
package core

import (
	"fmt"

	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/units"
)

// CCType selects the network-feedback generation behaviour of an AQ
// (Algorithm 2). Drop-based CC needs no extra action: AQ-limit drops are the
// feedback.
type CCType uint8

const (
	// DropType serves loss-based CC algorithms (CUBIC, NewReno, Illinois)
	// and plain rate limiting of non-reactive traffic (UDP).
	DropType CCType = iota
	// ECNType serves ECN-based CC algorithms (DCTCP): packets are marked
	// when the A-Gap exceeds the AQ's ECN threshold.
	ECNType
	// DelayType serves delay-based CC algorithms (Swift): the virtual
	// queuing delay A(k)/R is accumulated into the packet header.
	DelayType
)

// String implements fmt.Stringer.
func (c CCType) String() string {
	switch c {
	case DropType:
		return "drop"
	case ECNType:
		return "ecn"
	case DelayType:
		return "delay"
	default:
		return fmt.Sprintf("CCType(%d)", uint8(c))
	}
}

// Config is the AQ configuration the controller deploys to a switch
// (Table 1: CC fields, AQ ID, AQ rate, AQ limit; gap and last_time are the
// runtime registers).
type Config struct {
	ID   packet.AQID
	Rate units.BitRate // allocated rate R
	// Limit is the maximum A-Gap in bytes; packets arriving with the gap
	// beyond it are dropped (§3.2.2). Zero selects DefaultLimit.
	Limit int
	CC    CCType
	// ECNThreshold is the virtual marking threshold in bytes, used when
	// CC == ECNType. Zero selects DefaultECNThreshold.
	ECNThreshold int
}

// Default A-Gap parameters. The paper ties AQ limit configuration to the
// physical-queue limit (§6); these defaults match the simulator's default
// physical queue and work for all reproduced experiments.
const (
	DefaultLimit        = 200 * 1000 // 200 KB
	DefaultECNThreshold = 65 * 1000  // 65 KB, DCTCP-style K for 10G
)

// AQ is one augmented queue: the deployed configuration plus the two runtime
// registers of Algorithm 1 (gap and last_time). The paper stores these in
// switch SRAM; the 15-byte-per-AQ layout is modelled in internal/control.
type AQ struct {
	id           packet.AQID
	rate         float64 // bytes per nanosecond
	rateBits     units.BitRate
	limit        float64 // bytes
	cc           CCType
	ecnThreshold float64 // bytes

	gap      float64  // A-Gap in bytes
	lastTime sim.Time // arrival time of the previous packet

	// Counters, exposed through Stats. Plain (non-atomic) fields: an AQ is
	// only touched from its engine's goroutine while traffic flows, and the
	// harness snapshots results only after a run completes (the worker
	// pool's WaitGroup provides the happens-before edge).
	arrived      uint64
	arrivedBytes uint64
	drops        uint64
	marks        uint64

	// Fluid-lane counters, kept separate from the packet counters so the
	// per-packet accounting stays exact when both lanes feed one AQ. Bytes
	// are fractional: an epoch integrates a real-valued rate.
	fluidBytes   float64 // bytes offered by fluid epochs
	fluidDropped float64 // bytes shed by the AQ-limit excess rule
	fluidMarked  float64 // accepted bytes ECN-marked (mark-fraction weighted)
}

// AQStats is a snapshot of an AQ's per-packet counters, mirroring
// Table.Stats.
type AQStats struct {
	Arrived      uint64 `json:"arrived"`
	ArrivedBytes uint64 `json:"arrived_bytes"`
	Drops        uint64 `json:"drops"`
	Marks        uint64 `json:"marks"`
	// Fluid-lane counters; omitted when the AQ never saw a fluid epoch, so
	// snapshots (and the fingerprints folded over them) are byte-identical
	// with the fluid lane disabled.
	FluidBytes   float64 `json:"fluid_bytes,omitempty"`
	FluidDropped float64 `json:"fluid_dropped,omitempty"`
	FluidMarked  float64 `json:"fluid_marked,omitempty"`
}

// Stats returns a snapshot of the arrival/drop/mark counters.
func (a *AQ) Stats() AQStats {
	return AQStats{
		Arrived:      a.arrived,
		ArrivedBytes: a.arrivedBytes,
		Drops:        a.drops,
		Marks:        a.marks,
		FluidBytes:   a.fluidBytes,
		FluidDropped: a.fluidDropped,
		FluidMarked:  a.fluidMarked,
	}
}

// New builds an AQ from a configuration, applying defaults.
func New(cfg Config) *AQ {
	a := new(AQ)
	a.init(cfg)
	return a
}

// init configures an AQ in place, applying defaults. Shared by New and the
// slab-allocating DeployBatch so both construction paths stay identical.
func (a *AQ) init(cfg Config) {
	limit := cfg.Limit
	if limit == 0 {
		limit = DefaultLimit
	}
	ecn := cfg.ECNThreshold
	if ecn == 0 {
		ecn = DefaultECNThreshold
	}
	*a = AQ{
		id:           cfg.ID,
		rate:         cfg.Rate.BytesPerNano(),
		rateBits:     cfg.Rate,
		limit:        float64(limit),
		cc:           cfg.CC,
		ecnThreshold: float64(ecn),
	}
}

// ID returns the AQ's identifier.
func (a *AQ) ID() packet.AQID { return a.id }

// Rate returns the allocated rate R.
func (a *AQ) Rate() units.BitRate { return a.rateBits }

// Limit returns the maximum A-Gap in bytes.
func (a *AQ) Limit() int { return int(a.limit) }

// CC returns the configured feedback type.
func (a *AQ) CC() CCType { return a.cc }

// Gap returns the current A-Gap in bytes.
func (a *AQ) Gap() float64 { return a.gap }

// SetRate updates the allocated rate R in place. The controller uses this
// in weighted mode when the set of active entities sharing a link changes
// (§4.1): the gap register is preserved, only the drain rate changes.
func (a *AQ) SetRate(r units.BitRate) {
	a.rate = r.BytesPerNano()
	a.rateBits = r
}

// advance is the rate-integration kernel shared by the packet path (Update)
// and the fluid path (OnFluidEpoch): it drains the A-Gap at the allocated
// rate R for the time elapsed since the previous arrival, clamped at zero,
// and moves last_time forward:
//
//	Δ = now - aq.last_time
//	aq.gap = max(0, aq.gap - Δ·aq.rate)
//	aq.last_time = now
func (a *AQ) advance(now sim.Time) {
	delta := float64(now - a.lastTime)
	if delta > 0 {
		a.gap -= delta * a.rate
		if a.gap < 0 {
			a.gap = 0
		}
	}
	a.lastTime = now
}

// Update runs Algorithm 1 for a packet arriving at time now with the given
// size in bytes, and returns the new A-Gap:
//
//	Δ = pkt.time - aq.last_time
//	aq.gap = max(0, aq.gap - Δ·aq.rate) + pkt.size
//	aq.last_time = pkt.time
//
// A packet is the degenerate arrival stream: all its bytes land at one
// instant, so the drain (advance) and the deposit commute trivially. The
// fluid path integrates the same recurrence over an interval instead
// (OnFluidEpoch in arrival.go).
func (a *AQ) Update(now sim.Time, size int) float64 {
	a.advance(now)
	a.gap += float64(size)
	return a.gap
}

// Verdict is the outcome of running the traffic-control framework
// (Algorithm 2) on one packet.
type Verdict uint8

const (
	// Pass lets the packet continue, possibly mutated (CE mark, virtual
	// delay stamp).
	Pass Verdict = iota
	// Drop discards the packet before it enters the network.
	Drop
)

// Process runs Algorithm 1 followed by Algorithm 2 on packet p arriving at
// time now. On Drop the A-Gap is decremented by the packet size again
// (Algorithm 2 lines 2–4), so dropped traffic does not count against the
// entity's allocation.
func (a *AQ) Process(now sim.Time, p *packet.Packet) Verdict {
	a.arrived++
	a.arrivedBytes += uint64(p.Size)
	gap := a.Update(now, p.Size)
	if gap > a.limit {
		a.gap = gap - float64(p.Size)
		a.drops++
		return Drop
	}
	if a.cc == ECNType && gap > a.ecnThreshold && p.EcnCapable {
		p.CE = true
		a.marks++
	}
	// Virtual queuing delay: the time the AQ needs to "drain" the current
	// A-Gap at rate R, accumulated along the path (§3.3.2). It is stamped
	// for every CC type — delay-based CC consumes it as feedback, and §5.5
	// reports its distribution as the AQ analogue of queuing delay.
	if a.rate > 0 {
		p.VirtualDelay += sim.Time(gap / a.rate)
	}
	return Pass
}

// VirtualDelay returns the current virtual queuing delay A(t)/R without
// processing a packet; exposed for stats collection.
func (a *AQ) VirtualDelay() sim.Time {
	if a.rate <= 0 {
		return 0
	}
	return sim.Time(a.gap / a.rate)
}

// Reset clears the runtime registers; used when an AQ is redeployed.
func (a *AQ) Reset() {
	a.gap = 0
	a.lastTime = 0
	a.arrived, a.arrivedBytes, a.drops, a.marks = 0, 0, 0, 0
	a.fluidBytes, a.fluidDropped, a.fluidMarked = 0, 0, 0
}
