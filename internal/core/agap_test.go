package core

import (
	"math"
	"testing"
	"testing/quick"

	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/units"
)

func TestUpdateRecurrence(t *testing.T) {
	// R = 1 Gbps = 0.125 bytes/ns. Walk the recurrence by hand.
	aq := New(Config{ID: 1, Rate: 1 * units.Gbps})
	// First packet at t=0: gap = 0 + 1000.
	if got := aq.Update(0, 1000); got != 1000 {
		t.Fatalf("gap after first packet = %v, want 1000", got)
	}
	// Second packet 4000ns later: drain 4000*0.125 = 500 -> 500 + 1000.
	if got := aq.Update(4000, 1000); got != 1500 {
		t.Fatalf("gap = %v, want 1500", got)
	}
	// Third packet 100000ns later: drain 12500 >> 1500 -> clamp 0 + 1000.
	if got := aq.Update(104000, 1000); got != 1000 {
		t.Fatalf("gap = %v, want 1000 (clamped)", got)
	}
}

func TestUpdateNeverNegativeBeforeAdd(t *testing.T) {
	// Property (Expression 7): A(t) >= size of the arriving packet, i.e.
	// the pre-add value is clamped at zero.
	f := func(gaps []uint32, sizes []uint16) bool {
		aq := New(Config{ID: 1, Rate: 10 * units.Gbps, Limit: math.MaxInt32})
		now := sim.Time(0)
		n := len(gaps)
		if len(sizes) < n {
			n = len(sizes)
		}
		for i := 0; i < n; i++ {
			now += sim.Time(gaps[i])
			size := int(sizes[i]%1500) + 1
			g := aq.Update(now, size)
			if g < float64(size)-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAGapBoundsRateOverInterval(t *testing.T) {
	// §3.2.2: with limit L, the bytes admitted over any backlogged interval
	// [t0, t1] are at most (t1-t0)·R + L. Send a greedy on-off stream far
	// above R and check the bound on admitted bytes.
	const limit = 50000
	rate := 2 * units.Gbps // 0.25 B/ns
	aq := New(Config{ID: 1, Rate: rate, Limit: limit})
	now := sim.Time(0)
	admitted := 0
	start := now
	for i := 0; i < 200000; i++ {
		p := packet.NewData(1, 2, 1, 0, 960)
		if aq.Process(now, p) == Pass {
			admitted += p.Size
		}
		now += 100 // 10x the allocated rate
	}
	elapsed := float64(now - start)
	bound := elapsed*rate.BytesPerNano() + limit
	if float64(admitted) > bound+1 {
		t.Fatalf("admitted %d bytes, bound %v", admitted, bound)
	}
	// And it should be close to the bound (the limiter is not overly
	// conservative): at least 95%% of elapsed·R.
	if float64(admitted) < 0.95*elapsed*rate.BytesPerNano() {
		t.Fatalf("admitted %d bytes, under-utilizes allocation %v",
			admitted, elapsed*rate.BytesPerNano())
	}
}

func TestProcessDropRestoresGap(t *testing.T) {
	// Algorithm 2 lines 2-4: a dropped packet's size is removed from the
	// gap so dropped traffic doesn't count against the entity.
	aq := New(Config{ID: 1, Rate: 1 * units.Gbps, Limit: 2000})
	p1 := packet.NewData(1, 2, 1, 0, 1960) // size 2000
	if aq.Process(0, p1) != Pass {
		t.Fatal("first packet at the limit should pass")
	}
	gapBefore := aq.Gap()
	p2 := packet.NewData(1, 2, 1, 0, 960) // size 1000, pushes beyond limit
	if aq.Process(0, p2) != Drop {
		t.Fatal("packet beyond the limit should drop")
	}
	if aq.Gap() != gapBefore {
		t.Fatalf("gap after drop = %v, want %v", aq.Gap(), gapBefore)
	}
	if st := aq.Stats(); st.Drops != 1 {
		t.Fatalf("Drops = %d, want 1", st.Drops)
	}
}

func TestProcessECNMarking(t *testing.T) {
	aq := New(Config{ID: 1, Rate: 1 * units.Gbps, Limit: 100000, CC: ECNType, ECNThreshold: 3000})
	mk := func() *packet.Packet {
		p := packet.NewData(1, 2, 1, 0, 960)
		p.EcnCapable = true
		return p
	}
	// Three back-to-back packets: gap 1000, 2000, 3000 — no marks yet.
	for i := 0; i < 3; i++ {
		p := mk()
		if aq.Process(0, p) != Pass || p.CE {
			t.Fatalf("packet %d should pass unmarked (gap %v)", i, aq.Gap())
		}
	}
	// Fourth: gap 4000 > 3000 — marked.
	p := mk()
	if aq.Process(0, p) != Pass || !p.CE {
		t.Fatal("packet above virtual ECN threshold should be marked")
	}
	if st := aq.Stats(); st.Marks != 1 {
		t.Fatalf("Marks = %d, want 1", st.Marks)
	}
	// Non-ECN-capable traffic is never marked.
	q := packet.NewData(1, 2, 1, 0, 960)
	aq.Process(0, q)
	if q.CE {
		t.Fatal("non-ECN-capable packet was marked")
	}
}

func TestProcessVirtualDelay(t *testing.T) {
	// R = 1 Gbps = 0.125 B/ns; a gap of 1000 B drains in 8000 ns.
	aq := New(Config{ID: 1, Rate: 1 * units.Gbps, Limit: 100000})
	p := packet.NewData(1, 2, 1, 0, 960) // size 1000
	aq.Process(0, p)
	if p.VirtualDelay != 8000 {
		t.Fatalf("virtual delay = %v, want 8000ns", p.VirtualDelay)
	}
	// A second hop accumulates.
	aq2 := New(Config{ID: 2, Rate: 1 * units.Gbps, Limit: 100000})
	aq2.Process(0, p)
	if p.VirtualDelay != 16000 {
		t.Fatalf("accumulated virtual delay = %v, want 16000ns", p.VirtualDelay)
	}
	if aq.VirtualDelay() != 8000 {
		t.Fatalf("VirtualDelay() = %v, want 8000", aq.VirtualDelay())
	}
}

func TestAGapEqualsQueueLengthWhenRateIsLineRate(t *testing.T) {
	// §3.2: "The A-Gap equals the physical queue length when the allocated
	// rate R is the link capacity." Feed the same arrival sequence to an
	// AQ at R=line rate and to a fluid queue draining at line rate.
	rate := 10 * units.Gbps
	aq := New(Config{ID: 1, Rate: rate, Limit: math.MaxInt32})
	r := sim.NewRand(5)
	qlen := 0.0 // fluid queue in bytes
	last := sim.Time(0)
	for i := 0; i < 5000; i++ {
		now := last + sim.Time(r.Intn(2000))
		size := 100 + r.Intn(1400)
		qlen -= float64(now-last) * rate.BytesPerNano()
		if qlen < 0 {
			qlen = 0
		}
		qlen += float64(size)
		got := aq.Update(now, size)
		if math.Abs(got-qlen) > 1e-6 {
			t.Fatalf("step %d: A-Gap %v != fluid queue %v", i, got, qlen)
		}
		last = now
	}
}

func TestSetRatePreservesGap(t *testing.T) {
	aq := New(Config{ID: 1, Rate: 1 * units.Gbps})
	aq.Update(0, 5000)
	aq.SetRate(2 * units.Gbps)
	if aq.Gap() != 5000 {
		t.Fatalf("gap after SetRate = %v, want 5000", aq.Gap())
	}
	if aq.Rate() != 2*units.Gbps {
		t.Fatalf("rate = %v, want 2Gbps", aq.Rate())
	}
	// Drain now happens at the new rate: 2 Gbps = 0.25 B/ns.
	got := aq.Update(4000, 0)
	if got != 4000 { // 5000 - 4000*0.25
		t.Fatalf("gap after drain at new rate = %v, want 4000", got)
	}
}

func TestDefaultsApplied(t *testing.T) {
	aq := New(Config{ID: 1, Rate: units.Gbps})
	if aq.Limit() != DefaultLimit {
		t.Fatalf("default limit = %d, want %d", aq.Limit(), DefaultLimit)
	}
}

func TestReset(t *testing.T) {
	aq := New(Config{ID: 1, Rate: units.Gbps})
	aq.Process(0, packet.NewData(1, 2, 1, 0, 960))
	aq.Reset()
	if aq.Gap() != 0 || aq.Stats() != (AQStats{}) {
		t.Fatal("Reset did not clear state")
	}
}

func TestCCTypeString(t *testing.T) {
	if DropType.String() != "drop" || ECNType.String() != "ecn" || DelayType.String() != "delay" {
		t.Fatal("CCType String mismatch")
	}
	if CCType(99).String() != "CCType(99)" {
		t.Fatal("unknown CCType String mismatch")
	}
}
