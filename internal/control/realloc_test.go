package control

import (
	"math"
	"testing"

	"aqueue/internal/core"
	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/units"
)

// feed drives synthetic arrivals into an AQ at a given offered rate.
func feed(eng *sim.Engine, aq *core.AQ, rate units.BitRate, until sim.Time) {
	const size = 1000
	interval := sim.Time(rate.TransmitNanos(size))
	var tick func()
	tick = func() {
		if eng.Now() >= until {
			return
		}
		p := packet.NewData(0, 1, 1, 0, size-packet.HeaderBytes)
		aq.Process(eng.Now(), p)
		eng.After(interval, tick)
	}
	eng.After(0, tick)
}

func TestReallocatorShiftsIdleShare(t *testing.T) {
	eng := sim.NewEngine()
	ctrl := NewController(10 * units.Gbps)
	tbl := core.NewTable()
	gA, _ := ctrl.Grant(Request{Tenant: "a", Mode: Weighted, Weight: 1, Limit: 1 << 30}, tbl)
	gB, _ := ctrl.Grant(Request{Tenant: "b", Mode: Weighted, Weight: 1, Limit: 1 << 30}, tbl)
	aqA, aqB := tbl.Lookup(gA.ID), tbl.Lookup(gB.ID)

	re := NewReallocator(eng, ctrl, 5*sim.Millisecond)
	re.Manage(gA.ID, tbl, 1)
	re.Manage(gB.ID, tbl, 1)
	re.Start()

	// Entity A offers far more than its 5G share (it will be pinned at its
	// allocation); entity B offers only 1G.
	feed(eng, aqA, 9*units.Gbps, 100*sim.Millisecond)
	feed(eng, aqB, 1*units.Gbps, 100*sim.Millisecond)
	eng.RunUntil(100 * sim.Millisecond)

	if re.Rounds < 10 {
		t.Fatalf("only %d rounds ran", re.Rounds)
	}
	// B keeps ~its demand (with slack), A absorbs the rest.
	if got := float64(aqB.Rate()); got > 2.5e9 {
		t.Fatalf("idle-ish entity kept %v, want ~1.2G", aqB.Rate())
	}
	if got := float64(aqA.Rate()); got < 7e9 {
		t.Fatalf("backlogged entity got %v, want most of the link", aqA.Rate())
	}
	total := float64(aqA.Rate()) + float64(aqB.Rate())
	if total > 10.2e9 {
		t.Fatalf("allocations sum to %v, exceeding capacity", total)
	}
}

func TestReallocatorRestoresFairShareOnDemand(t *testing.T) {
	eng := sim.NewEngine()
	ctrl := NewController(10 * units.Gbps)
	tbl := core.NewTable()
	gA, _ := ctrl.Grant(Request{Tenant: "a", Mode: Weighted, Weight: 1, Limit: 1 << 30}, tbl)
	gB, _ := ctrl.Grant(Request{Tenant: "b", Mode: Weighted, Weight: 1, Limit: 1 << 30}, tbl)
	aqA, aqB := tbl.Lookup(gA.ID), tbl.Lookup(gB.ID)

	re := NewReallocator(eng, ctrl, 5*sim.Millisecond)
	re.Manage(gA.ID, tbl, 1)
	re.Manage(gB.ID, tbl, 1)
	re.Start()

	// Phase 1: only A active. Phase 2: B wakes up and saturates too.
	feed(eng, aqA, 9*units.Gbps, 200*sim.Millisecond)
	eng.At(100*sim.Millisecond, func() {
		feed(eng, aqB, 9*units.Gbps, 200*sim.Millisecond)
	})
	eng.RunUntil(95 * sim.Millisecond)
	if got := float64(aqA.Rate()); got < 8e9 {
		t.Fatalf("phase 1: A at %v, want ~all", aqA.Rate())
	}
	eng.RunUntil(200 * sim.Millisecond)
	// Both pinned: back to ~weighted halves.
	if math.Abs(float64(aqA.Rate())-5e9) > 1.5e9 {
		t.Fatalf("phase 2: A at %v, want ~5G", aqA.Rate())
	}
	if math.Abs(float64(aqB.Rate())-5e9) > 1.5e9 {
		t.Fatalf("phase 2: B at %v, want ~5G", aqB.Rate())
	}
	re.Stop()
}

func TestWeightedWaterfill(t *testing.T) {
	// Equal weights, one small demand: [1, 100, 100] over 10 -> [1, 4.5, 4.5].
	got := weightedWaterfill(10, []float64{1, 100, 100}, []float64{1. / 3, 1. / 3, 1. / 3})
	if math.Abs(got[0]-1) > 1e-9 || math.Abs(got[1]-4.5) > 1e-9 || math.Abs(got[2]-4.5) > 1e-9 {
		t.Fatalf("waterfill = %v", got)
	}
	// Weighted 1:3 with ample demands splits 2.5:7.5.
	got = weightedWaterfill(10, []float64{100, 100}, []float64{0.25, 0.75})
	if math.Abs(got[0]-2.5) > 1e-9 || math.Abs(got[1]-7.5) > 1e-9 {
		t.Fatalf("weighted waterfill = %v", got)
	}
}
