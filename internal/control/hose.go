package control

import (
	"fmt"

	"aqueue/internal/core"
	"aqueue/internal/packet"
	"aqueue/internal/units"
)

// This file implements hose-model admission for VM traffic profiles
// (§2.3's bi-directional guarantees; the hose model of [14, 16, 33]): a
// set of per-VM inbound/outbound reservations is admissible on a
// single-switch star iff every access link can carry its VM's profile,
// because the switch fabric itself is non-blocking. For multi-VM-per-link
// topologies the per-link sums apply.
//
// The AQ Controller uses this to answer the Example 3 question — "can
// every VM get its profile regardless of the traffic matrix?" — before
// granting the pair of ingress/egress AQs that enforce it.

// HoseProfile is one VM's reservation.
type HoseProfile struct {
	VM  packet.HostID
	Out units.BitRate
	In  units.BitRate
}

// HoseError reports why a profile set is inadmissible.
type HoseError struct {
	VM     packet.HostID
	Dir    string // "inbound" or "outbound"
	Need   units.BitRate
	Have   units.BitRate
	Shared int // VMs sharing the access link
}

// Error implements error.
func (e *HoseError) Error() string {
	return fmt.Sprintf("control: hose profile of VM %d inadmissible: %s needs %v of a %v link (shared by %d VMs)",
		e.VM, e.Dir, e.Need, e.Have, e.Shared)
}

// AdmitHose checks a profile set against per-VM access-link capacity.
// linkOf maps a VM to its access-link identifier (VMs mapping to the same
// identifier share the link); nil gives every VM a dedicated link.
func AdmitHose(profiles []HoseProfile, access units.BitRate, linkOf func(packet.HostID) int) error {
	if access <= 0 {
		return fmt.Errorf("control: hose admission needs a positive access capacity")
	}
	if linkOf == nil {
		linkOf = func(h packet.HostID) int { return int(h) }
	}
	type sums struct {
		out, in units.BitRate
		n       int
		firstVM packet.HostID
	}
	links := make(map[int]*sums)
	for _, p := range profiles {
		if p.Out < 0 || p.In < 0 {
			return fmt.Errorf("control: negative reservation for VM %d", p.VM)
		}
		l := linkOf(p.VM)
		s, ok := links[l]
		if !ok {
			s = &sums{firstVM: p.VM}
			links[l] = s
		}
		s.out += p.Out
		s.in += p.In
		s.n++
	}
	for _, s := range links {
		if s.out > access {
			return &HoseError{VM: s.firstVM, Dir: "outbound", Need: s.out, Have: access, Shared: s.n}
		}
		if s.in > access {
			return &HoseError{VM: s.firstVM, Dir: "inbound", Need: s.in, Have: access, Shared: s.n}
		}
	}
	return nil
}

// HoseGrant pairs the two AQs that enforce one VM's profile.
type HoseGrant struct {
	VM  packet.HostID
	Out Grant // ingress-pipeline AQ (outbound)
	In  Grant // egress-pipeline AQ (inbound)
}

// GrantHose admits the profile set (AdmitHose with dedicated access links)
// and, on success, grants the paired ingress/egress AQs for every VM on
// the given switch tables. On any failure previously granted AQs are
// released, so the operation is all-or-nothing.
func (c *Controller) GrantHose(profiles []HoseProfile, access units.BitRate,
	ingress, egress *core.Table, limit int) ([]HoseGrant, error) {
	if err := AdmitHose(profiles, access, nil); err != nil {
		return nil, err
	}
	grants := make([]HoseGrant, 0, len(profiles))
	rollback := func() {
		for _, g := range grants {
			c.Release(g.Out.ID)
			c.Release(g.In.ID)
		}
	}
	for _, p := range profiles {
		out, err := c.Grant(Request{Tenant: fmt.Sprintf("vm%d-out", p.VM),
			Mode: Absolute, Bandwidth: p.Out, Limit: limit, Position: Ingress}, ingress)
		if err != nil {
			rollback()
			return nil, err
		}
		in, err := c.Grant(Request{Tenant: fmt.Sprintf("vm%d-in", p.VM),
			Mode: Absolute, Bandwidth: p.In, Limit: limit, Position: Egress}, egress)
		if err != nil {
			c.Release(out.ID)
			rollback()
			return nil, err
		}
		grants = append(grants, HoseGrant{VM: p.VM, Out: out, In: in})
	}
	return grants, nil
}
