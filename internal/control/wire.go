package control

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"

	"aqueue/internal/core"
	"aqueue/internal/packet"
	"aqueue/internal/units"
)

// This file implements the controller's wire protocol: newline-delimited
// JSON over TCP. Tenants (cmd/aqctl's client mode, or the hypervisor agent
// of §4.1) send requests; the controller answers with grants. The protocol
// is versioned (see codes.go): v1 is the original grant/release/
// set_active/list surface of §4.1, v2 adds guarantee reconfiguration and
// the verbs of the long-running fabric service (internal/service,
// cmd/aqsimd). The full schema is documented in DESIGN.md.

// WireRequest is one client message.
type WireRequest struct {
	// V is the protocol version the client speaks; absent (0) means v1.
	V         int     `json:"v,omitempty"`
	Op        string  `json:"op"`
	Tenant    string  `json:"tenant,omitempty"`
	Mode      string  `json:"mode,omitempty"` // absolute | weighted
	Bandwidth float64 `json:"bandwidth_bps,omitempty"`
	Weight    float64 `json:"weight,omitempty"`
	CC        string  `json:"cc,omitempty"` // drop | ecn | delay
	Position  string  `json:"position,omitempty"`
	Switch    string  `json:"switch,omitempty"`
	ID        uint32  `json:"id,omitempty"`
	Active    *bool   `json:"active,omitempty"`

	// v2 fields, used by the service verbs (internal/service).
	Kind     string  `json:"kind,omitempty"`     // attach: flow-size distribution (websearch|datamining|fixed) or "fluid"
	Entities int     `json:"entities,omitempty"` // attach: fluid entity count (kind "fluid")
	Load     float64 `json:"load,omitempty"`     // attach: offered load as a fraction of the bottleneck rate
	Size     int64   `json:"size,omitempty"`     // attach: flow size in bytes for kind "fixed"
	Seed     uint64  `json:"seed,omitempty"`     // attach: workload seed (0 picks one deterministically)
	Count    int     `json:"count,omitempty"`    // watch/trace/step: how many snapshots/events/windows
	UntilNS  int64   `json:"until_ns,omitempty"` // advance: absolute sim-time target in nanoseconds
}

// WireResponse is the controller's answer.
type WireResponse struct {
	// V echoes the negotiated protocol version for v2+ exchanges; v1
	// responses omit it, byte-compatible with pre-versioning servers.
	V     int    `json:"v,omitempty"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Code is the machine-readable error class (codes.go), set on every
	// v2 error; scripts branch on it instead of parsing Error.
	Code string   `json:"code,omitempty"`
	ID   uint32   `json:"id,omitempty"`
	Rate float64  `json:"rate_bps,omitempty"`
	IDs  []uint32 `json:"ids,omitempty"`
	// Data carries a structured payload — a service.Snapshot, a trace
	// tail, version info — whose shape is op-specific (see DESIGN.md).
	Data json.RawMessage `json:"data,omitempty"`
}

// Handler processes one decoded request and emits one or more responses.
// emit returns false once the connection is gone; a streaming handler
// (watch) should stop emitting then. Handlers run on the connection's
// goroutine, so a streaming handler blocks further requests on that
// connection only.
type Handler func(req WireRequest, emit func(WireResponse) bool)

// WireServer runs the newline-delimited-JSON loop for any Handler: it
// owns the listener, decodes requests, enforces the version ceiling, and
// normalizes responses (version echo, error-code fallback). The
// controller's Server and the fabric service's wire front end are both
// built on it.
type WireServer struct {
	h  Handler
	mu sync.Mutex
	ln net.Listener
	wg sync.WaitGroup
}

// NewWireServer wraps a handler.
func NewWireServer(h Handler) *WireServer { return &WireServer{h: h} }

// Serve accepts connections on ln until the listener closes. It blocks;
// run it in a goroutine and call Close to stop.
func (s *WireServer) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.wg.Wait()
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops the listener; in-flight connections finish their current
// request.
func (s *WireServer) Close() error {
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		return ln.Close()
	}
	return nil
}

func (s *WireServer) handle(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req WireRequest
		if err := json.Unmarshal(line, &req); err != nil {
			if encErr := enc.Encode(Errf(CodeMalformed, "malformed request: %v", err)); encErr != nil {
				return
			}
			continue
		}
		alive := true
		emit := func(resp WireResponse) bool {
			if !alive {
				return false
			}
			// Echo the version on v2+ exchanges; leave v1 responses
			// byte-compatible with the pre-versioning protocol. Errors
			// without a class default to bad_request so v2 clients can
			// always branch on Code.
			if req.V >= ProtoV2 && resp.V == 0 {
				resp.V = req.V
			}
			if resp.Error != "" && resp.Code == "" {
				resp.Code = CodeBadRequest
			}
			if err := enc.Encode(resp); err != nil {
				alive = false
			}
			return alive
		}
		if req.V > ProtoMax {
			// Tell the newer client our ceiling so it can downgrade.
			resp := Errf(CodeUnsupportedVersion, "protocol v%d not supported (max v%d)", req.V, ProtoMax)
			resp.V = ProtoMax
			if err := enc.Encode(resp); err != nil {
				return
			}
			continue
		}
		s.h(req, emit)
		if !alive {
			return
		}
	}
}

// Server exposes a Controller over TCP. Pipeline tables are registered
// under "switch/position" names; grants address them by those names.
type Server struct {
	ctrl *Controller
	ws   *WireServer

	mu     sync.Mutex
	tables map[string]*core.Table
}

// NewServer wraps a controller.
func NewServer(ctrl *Controller) *Server {
	s := &Server{ctrl: ctrl, tables: make(map[string]*core.Table)}
	s.ws = NewWireServer(func(req WireRequest, emit func(WireResponse) bool) {
		emit(s.dispatch(req))
	})
	return s
}

// RegisterTable exposes a pipeline table under the given switch name and
// position, creating the table if nil is passed.
func (s *Server) RegisterTable(sw string, pos Position, tbl *core.Table) *core.Table {
	if tbl == nil {
		tbl = core.NewTable()
	}
	s.mu.Lock()
	s.tables[tableKey(sw, pos)] = tbl
	s.mu.Unlock()
	return tbl
}

func tableKey(sw string, pos Position) string { return sw + "/" + pos.String() }

// lookup resolves a registered pipeline table, nil if absent.
func (s *Server) lookup(sw string, pos Position) *core.Table {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tables[tableKey(sw, pos)]
}

// Serve accepts connections on ln until the listener closes. It blocks;
// run it in a goroutine and call Close to stop.
func (s *Server) Serve(ln net.Listener) error { return s.ws.Serve(ln) }

// Close stops the listener; in-flight connections finish their current
// request.
func (s *Server) Close() error { return s.ws.Close() }

func (s *Server) dispatch(req WireRequest) WireResponse {
	if resp, handled := DispatchController(s.ctrl, s.lookup, req); handled {
		return resp
	}
	return Errf(CodeUnknownOp, "unknown op %q", req.Op)
}

// DispatchController executes one controller verb — the v1 surface plus
// the v2 reconfiguration verbs — against ctrl, resolving pipeline tables
// through lookup. It reports handled=false for ops outside that set, so a
// larger server (internal/service) can layer its own verbs around the
// same controller dispatch instead of re-implementing it.
func DispatchController(ctrl *Controller, lookup func(sw string, pos Position) *core.Table, req WireRequest) (WireResponse, bool) {
	switch req.Op {
	case "hello":
		// Version discovery: data lists every protocol version the server
		// accepts. v1 clients that never send "hello" lose nothing.
		data, err := json.Marshal(struct {
			Versions []int `json:"versions"`
		}{Versions: []int{ProtoV1, ProtoV2}})
		if err != nil {
			return Errf(CodeInternal, "encoding hello: %v", err), true
		}
		return WireResponse{OK: true, V: ProtoMax, Data: data}, true
	case "grant":
		r, err := parseRequest(req)
		if err != nil {
			return ErrToResponse(err), true
		}
		tbl := lookup(req.Switch, r.Position)
		if tbl == nil {
			return Errf(CodeUnknownTable, "unknown switch/position %q/%s", req.Switch, r.Position), true
		}
		g, err := ctrl.Grant(r, tbl)
		if err != nil {
			return ErrToResponse(err), true
		}
		return WireResponse{OK: true, ID: uint32(g.ID), Rate: float64(g.Rate)}, true
	case "release":
		if !ctrl.Release(packet.AQID(req.ID)) && req.V >= ProtoV2 {
			// v1 kept release idempotent-silent; v2 reports the miss.
			return Errf(CodeUnknownID, "no grant with id %d", req.ID), true
		}
		return WireResponse{OK: true}, true
	case "set_active":
		if req.Active == nil {
			return Errf(CodeBadRequest, "set_active needs \"active\""), true
		}
		if !ctrl.SetActive(packet.AQID(req.ID), *req.Active) && req.V >= ProtoV2 {
			return Errf(CodeUnknownID, "no grant with id %d", req.ID), true
		}
		return WireResponse{OK: true, ID: req.ID, Rate: float64(ctrl.Rate(packet.AQID(req.ID)))}, true
	case "set_rate":
		// v2: reconfigure an absolute guarantee in place.
		rate, err := ctrl.SetGuarantee(packet.AQID(req.ID), units.BitRate(req.Bandwidth), 0)
		if err != nil {
			return ErrToResponse(err), true
		}
		return WireResponse{OK: true, ID: req.ID, Rate: float64(rate)}, true
	case "set_weight":
		// v2: reconfigure a weighted share in place.
		rate, err := ctrl.SetGuarantee(packet.AQID(req.ID), 0, req.Weight)
		if err != nil {
			return ErrToResponse(err), true
		}
		return WireResponse{OK: true, ID: req.ID, Rate: float64(rate)}, true
	case "list":
		ids := ctrl.Grants()
		out := make([]uint32, len(ids))
		for i, id := range ids {
			out[i] = uint32(id)
		}
		return WireResponse{OK: true, IDs: out}, true
	}
	return WireResponse{}, false
}

// parseRequest converts the wire form into a Request.
func parseRequest(w WireRequest) (Request, error) {
	r := Request{
		Tenant:    w.Tenant,
		Bandwidth: units.BitRate(w.Bandwidth),
		Weight:    w.Weight,
	}
	switch strings.ToLower(w.Mode) {
	case "absolute", "":
		r.Mode = Absolute
	case "weighted":
		r.Mode = Weighted
	default:
		return r, fmt.Errorf("%w: unknown mode %q", ErrBadRequest, w.Mode)
	}
	switch strings.ToLower(w.CC) {
	case "drop", "":
		r.CC = core.DropType
	case "ecn":
		r.CC = core.ECNType
	case "delay":
		r.CC = core.DelayType
	default:
		return r, fmt.Errorf("%w: unknown cc %q", ErrBadRequest, w.CC)
	}
	switch strings.ToLower(w.Position) {
	case "ingress", "":
		r.Position = Ingress
	case "egress":
		r.Position = Egress
	default:
		return r, fmt.Errorf("%w: unknown position %q", ErrBadRequest, w.Position)
	}
	return r, nil
}

// Client talks the wire protocol.
type Client struct {
	conn net.Conn
	enc  *json.Encoder
	sc   *bufio.Scanner
}

// Dial connects to a controller daemon.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an existing connection (useful with net.Pipe in tests).
func NewClient(conn net.Conn) *Client {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	return &Client{conn: conn, enc: json.NewEncoder(conn), sc: sc}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do performs one round trip.
func (c *Client) Do(req WireRequest) (WireResponse, error) {
	if err := c.enc.Encode(req); err != nil {
		return WireResponse{}, err
	}
	return c.Recv()
}

// Recv reads one more response line — the tail of a streaming verb like
// "watch", whose server emits Count responses for one request.
func (c *Client) Recv() (WireResponse, error) {
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return WireResponse{}, err
		}
		return WireResponse{}, fmt.Errorf("control: connection closed")
	}
	var resp WireResponse
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		return WireResponse{}, err
	}
	if !resp.OK && resp.Error != "" {
		return resp, fmt.Errorf("control: %s", resp.Error)
	}
	return resp, nil
}
