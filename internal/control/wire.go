package control

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"

	"aqueue/internal/core"
	"aqueue/internal/packet"
	"aqueue/internal/units"
)

// This file implements the controller's wire protocol: newline-delimited
// JSON over TCP. Tenants (cmd/aqctl's client mode, or the hypervisor agent
// of §4.1) send requests; the controller answers with grants. The protocol
// is deliberately small — grant, release, set_active, list — because that
// is the entire §4.1 interaction surface.

// WireRequest is one client message.
type WireRequest struct {
	Op        string  `json:"op"` // grant | release | set_active | list
	Tenant    string  `json:"tenant,omitempty"`
	Mode      string  `json:"mode,omitempty"` // absolute | weighted
	Bandwidth float64 `json:"bandwidth_bps,omitempty"`
	Weight    float64 `json:"weight,omitempty"`
	CC        string  `json:"cc,omitempty"` // drop | ecn | delay
	Position  string  `json:"position,omitempty"`
	Switch    string  `json:"switch,omitempty"`
	ID        uint32  `json:"id,omitempty"`
	Active    *bool   `json:"active,omitempty"`
}

// WireResponse is the controller's answer.
type WireResponse struct {
	OK    bool     `json:"ok"`
	Error string   `json:"error,omitempty"`
	ID    uint32   `json:"id,omitempty"`
	Rate  float64  `json:"rate_bps,omitempty"`
	IDs   []uint32 `json:"ids,omitempty"`
}

// Server exposes a Controller over TCP. Pipeline tables are registered
// under "switch/position" names; grants address them by those names.
type Server struct {
	ctrl *Controller

	mu     sync.Mutex
	tables map[string]*core.Table
	ln     net.Listener
	wg     sync.WaitGroup
}

// NewServer wraps a controller.
func NewServer(ctrl *Controller) *Server {
	return &Server{ctrl: ctrl, tables: make(map[string]*core.Table)}
}

// RegisterTable exposes a pipeline table under the given switch name and
// position, creating the table if nil is passed.
func (s *Server) RegisterTable(sw string, pos Position, tbl *core.Table) *core.Table {
	if tbl == nil {
		tbl = core.NewTable()
	}
	s.mu.Lock()
	s.tables[tableKey(sw, pos)] = tbl
	s.mu.Unlock()
	return tbl
}

func tableKey(sw string, pos Position) string { return sw + "/" + pos.String() }

// Serve accepts connections on ln until the listener closes. It blocks;
// run it in a goroutine and call Close to stop.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.wg.Wait()
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// Close stops the listener; in-flight connections finish their current
// request.
func (s *Server) Close() error {
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		return ln.Close()
	}
	return nil
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	enc := json.NewEncoder(conn)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var req WireRequest
		var resp WireResponse
		if err := json.Unmarshal(line, &req); err != nil {
			resp = WireResponse{Error: "malformed request: " + err.Error()}
		} else {
			resp = s.dispatch(req)
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (s *Server) dispatch(req WireRequest) WireResponse {
	switch req.Op {
	case "grant":
		r, err := parseRequest(req)
		if err != nil {
			return WireResponse{Error: err.Error()}
		}
		s.mu.Lock()
		tbl := s.tables[tableKey(req.Switch, r.Position)]
		s.mu.Unlock()
		if tbl == nil {
			return WireResponse{Error: fmt.Sprintf("unknown switch/position %q/%s", req.Switch, r.Position)}
		}
		g, err := s.ctrl.Grant(r, tbl)
		if err != nil {
			return WireResponse{Error: err.Error()}
		}
		return WireResponse{OK: true, ID: uint32(g.ID), Rate: float64(g.Rate)}
	case "release":
		s.ctrl.Release(packet.AQID(req.ID))
		return WireResponse{OK: true}
	case "set_active":
		if req.Active == nil {
			return WireResponse{Error: "set_active needs \"active\""}
		}
		s.ctrl.SetActive(packet.AQID(req.ID), *req.Active)
		return WireResponse{OK: true, ID: req.ID, Rate: float64(s.ctrl.Rate(packet.AQID(req.ID)))}
	case "list":
		ids := s.ctrl.Grants()
		out := make([]uint32, len(ids))
		for i, id := range ids {
			out[i] = uint32(id)
		}
		return WireResponse{OK: true, IDs: out}
	default:
		return WireResponse{Error: fmt.Sprintf("unknown op %q", req.Op)}
	}
}

// parseRequest converts the wire form into a Request.
func parseRequest(w WireRequest) (Request, error) {
	r := Request{
		Tenant:    w.Tenant,
		Bandwidth: units.BitRate(w.Bandwidth),
		Weight:    w.Weight,
	}
	switch strings.ToLower(w.Mode) {
	case "absolute", "":
		r.Mode = Absolute
	case "weighted":
		r.Mode = Weighted
	default:
		return r, fmt.Errorf("unknown mode %q", w.Mode)
	}
	switch strings.ToLower(w.CC) {
	case "drop", "":
		r.CC = core.DropType
	case "ecn":
		r.CC = core.ECNType
	case "delay":
		r.CC = core.DelayType
	default:
		return r, fmt.Errorf("unknown cc %q", w.CC)
	}
	switch strings.ToLower(w.Position) {
	case "ingress", "":
		r.Position = Ingress
	case "egress":
		r.Position = Egress
	default:
		return r, fmt.Errorf("unknown position %q", w.Position)
	}
	return r, nil
}

// Client talks the wire protocol.
type Client struct {
	conn net.Conn
	enc  *json.Encoder
	sc   *bufio.Scanner
}

// Dial connects to a controller daemon.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an existing connection (useful with net.Pipe in tests).
func NewClient(conn net.Conn) *Client {
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	return &Client{conn: conn, enc: json.NewEncoder(conn), sc: sc}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do performs one round trip.
func (c *Client) Do(req WireRequest) (WireResponse, error) {
	if err := c.enc.Encode(req); err != nil {
		return WireResponse{}, err
	}
	if !c.sc.Scan() {
		if err := c.sc.Err(); err != nil {
			return WireResponse{}, err
		}
		return WireResponse{}, fmt.Errorf("control: connection closed")
	}
	var resp WireResponse
	if err := json.Unmarshal(c.sc.Bytes(), &resp); err != nil {
		return WireResponse{}, err
	}
	if !resp.OK && resp.Error != "" {
		return resp, fmt.Errorf("control: %s", resp.Error)
	}
	return resp, nil
}
