package control

import (
	"errors"
	"fmt"
)

// Wire protocol versions. A request carries its version in the "v" field;
// an absent field (0) means v1, the original four-verb protocol, which is
// accepted forever for backward compatibility. v2 adds the service verbs
// (attach/detach, set_rate/set_weight, stats/watch/trace, run control),
// machine-readable error codes, and structured payloads in "data".
const (
	ProtoV1 = 1
	ProtoV2 = 2
	// ProtoMax is the newest version this build speaks. Requests beyond it
	// are rejected with CodeUnsupportedVersion and the server's ceiling in
	// the response "v" field, so a newer client can downgrade.
	ProtoMax = ProtoV2
)

// Machine-readable error codes carried in WireResponse.Code (v2). The
// human-readable Error string may change freely; scripts branch on these.
const (
	// CodeMalformed: the request line was not valid JSON.
	CodeMalformed = "malformed"
	// CodeUnsupportedVersion: the request's "v" exceeds ProtoMax.
	CodeUnsupportedVersion = "unsupported_version"
	// CodeUnknownOp: the op is not recognized at the negotiated version.
	CodeUnknownOp = "unknown_op"
	// CodeBadRequest: the op is known but its arguments are invalid.
	CodeBadRequest = "bad_request"
	// CodeInsufficientBandwidth: an absolute grant or reconfiguration does
	// not fit the link capacity.
	CodeInsufficientBandwidth = "insufficient_bandwidth"
	// CodeUnknownTable: the switch/position names no registered table.
	CodeUnknownTable = "unknown_table"
	// CodeUnknownID: the AQ or driver id names nothing currently granted.
	CodeUnknownID = "unknown_id"
	// CodeNotPaused: a step was requested while the fabric free-runs.
	CodeNotPaused = "not_paused"
	// CodeShuttingDown: the service is quitting; no further mutations.
	CodeShuttingDown = "shutting_down"
	// CodeInternal: the server failed to encode a payload (a bug).
	CodeInternal = "internal"
)

// Errf builds an error response with a machine-readable code.
func Errf(code, format string, args ...any) WireResponse {
	return WireResponse{Error: fmt.Sprintf(format, args...), Code: code}
}

// ErrToResponse maps a controller error to its wire form: the sentinel
// errors get their dedicated codes, anything else is a bad request.
func ErrToResponse(err error) WireResponse {
	code := CodeBadRequest
	switch {
	case errors.Is(err, ErrInsufficientBandwidth):
		code = CodeInsufficientBandwidth
	case errors.Is(err, ErrUnknownID):
		code = CodeUnknownID
	}
	return WireResponse{Error: err.Error(), Code: code}
}
