package control

import "aqueue/internal/core"

// ResourceModel accounts for the switch data-plane resources the AQ
// program consumes on a Tofino-class pipeline. The percentages are the
// paper's measured usage on its testbed (Figure 11); the memory curve is
// exact arithmetic over the 15-byte-per-AQ register layout of Table 1 /
// Figure 12 (4 B AQ ID, 3 B rate, 3 B limit, 3 B gap, 2 B last_time).
//
// The paper compiled its P4 program with the Tofino toolchain; since that
// toolchain is unavailable here, the static usage numbers are encoded
// constants (a documented substitution in DESIGN.md) while everything
// derived from the per-AQ layout is computed.
type ResourceModel struct {
	// TotalSRAMBytes is the switch's register SRAM budget. Tofino-class
	// chips ship tens of MB; the default matches the paper's "tens of MB"
	// discussion.
	TotalSRAMBytes int
}

// Fig. 11 resource usage percentages as reported by the paper.
const (
	PipelineStagesPct = 16.8
	MAUsPct           = 12.5
	PHVSizePct        = 7.5
	SRAMBasePct       = 4.2 // fixed program overhead, excluding AQ entries
)

// DefaultSRAMBytes is the default register budget (20 MB).
const DefaultSRAMBytes = 20 * 1000 * 1000

// NewResourceModel returns the model with the default SRAM budget.
func NewResourceModel() *ResourceModel {
	return &ResourceModel{TotalSRAMBytes: DefaultSRAMBytes}
}

// Usage is one data-plane resource dimension with its utilization.
type Usage struct {
	Resource string
	Percent  float64
}

// StaticUsage returns the fixed per-program resource usage of Figure 11.
func (m *ResourceModel) StaticUsage() []Usage {
	return []Usage{
		{"pipeline stages", PipelineStagesPct},
		{"match-action units", MAUsPct},
		{"PHV size", PHVSizePct},
		{"SRAM (program)", SRAMBasePct},
	}
}

// MemoryBytes returns the switch memory consumed by n deployed AQs
// (Figure 12: 15 bytes per AQ).
func (m *ResourceModel) MemoryBytes(n int) int { return n * core.BytesPerAQ }

// MaxAQs returns how many AQs fit in the SRAM budget.
func (m *ResourceModel) MaxAQs() int {
	if m.TotalSRAMBytes <= 0 {
		return 0
	}
	return m.TotalSRAMBytes / core.BytesPerAQ
}

// SRAMPct returns the fraction of the SRAM budget n AQs consume, in percent.
func (m *ResourceModel) SRAMPct(n int) float64 {
	if m.TotalSRAMBytes <= 0 {
		return 0
	}
	return float64(m.MemoryBytes(n)) / float64(m.TotalSRAMBytes) * 100
}
