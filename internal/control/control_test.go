package control

import (
	"errors"
	"math"
	"net"
	"testing"

	"aqueue/internal/core"
	"aqueue/internal/units"
)

func TestAbsoluteAdmission(t *testing.T) {
	c := NewController(10 * units.Gbps)
	tbl := core.NewTable()
	g1, err := c.Grant(Request{Tenant: "a", Mode: Absolute, Bandwidth: 6 * units.Gbps}, tbl)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Rate != 6*units.Gbps {
		t.Fatalf("granted rate %v", g1.Rate)
	}
	if tbl.Lookup(g1.ID) == nil {
		t.Fatal("AQ not deployed")
	}
	// A second 6G absolute grant exceeds the 10G link.
	if _, err := c.Grant(Request{Tenant: "b", Mode: Absolute, Bandwidth: 6 * units.Gbps}, tbl); !errors.Is(err, ErrInsufficientBandwidth) {
		t.Fatalf("overcommit not rejected: %v", err)
	}
	// 4G fits.
	if _, err := c.Grant(Request{Tenant: "b", Mode: Absolute, Bandwidth: 4 * units.Gbps}, tbl); err != nil {
		t.Fatal(err)
	}
	// Release frees capacity.
	c.Release(g1.ID)
	if tbl.Lookup(g1.ID) != nil {
		t.Fatal("AQ not removed on release")
	}
	if _, err := c.Grant(Request{Tenant: "c", Mode: Absolute, Bandwidth: 6 * units.Gbps}, tbl); err != nil {
		t.Fatalf("capacity not freed: %v", err)
	}
}

func TestWeightedRebalance(t *testing.T) {
	c := NewController(10 * units.Gbps)
	tbl := core.NewTable()
	g1, _ := c.Grant(Request{Tenant: "a", Mode: Weighted, Weight: 1}, tbl)
	if got := c.Rate(g1.ID); got != 10*units.Gbps {
		t.Fatalf("single weighted entity rate %v, want full link", got)
	}
	g2, _ := c.Grant(Request{Tenant: "b", Mode: Weighted, Weight: 1}, tbl)
	if got := c.Rate(g1.ID); got != 5*units.Gbps {
		t.Fatalf("rate after second grant %v, want 5G", got)
	}
	// Weights 1:2 - wait, regrant b with weight 3 → shares 1:3.
	c.Release(g2.ID)
	g3, _ := c.Grant(Request{Tenant: "b", Mode: Weighted, Weight: 3}, tbl)
	if got := c.Rate(g1.ID); math.Abs(float64(got)-2.5e9) > 1 {
		t.Fatalf("weighted 1:3 rate %v, want 2.5G", got)
	}
	if got := c.Rate(g3.ID); math.Abs(float64(got)-7.5e9) > 1 {
		t.Fatalf("weighted 1:3 rate %v, want 7.5G", got)
	}
	// The deployed AQ object tracks the rebalanced rate.
	if got := tbl.Lookup(g1.ID).Rate(); math.Abs(float64(got)-2.5e9) > 1 {
		t.Fatalf("deployed AQ rate %v", got)
	}
}

func TestWeightedActiveSet(t *testing.T) {
	// Fig. 9 behaviour: as entities go idle/active, the active ones share.
	c := NewController(10 * units.Gbps)
	tbl := core.NewTable()
	var ids []Grant
	for i := 0; i < 5; i++ {
		g, err := c.Grant(Request{Tenant: "e", Mode: Weighted, Weight: 1}, tbl)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, g)
	}
	if got := c.Rate(ids[0].ID); got != 2*units.Gbps {
		t.Fatalf("5 active: %v, want 2G", got)
	}
	c.SetActive(ids[3].ID, false)
	c.SetActive(ids[4].ID, false)
	if got := c.Rate(ids[0].ID); math.Abs(float64(got)-10e9/3) > 1 {
		t.Fatalf("3 active: %v, want 3.33G", got)
	}
	c.SetActive(ids[3].ID, true)
	if got := c.Rate(ids[0].ID); got != 2.5*units.Gbps {
		t.Fatalf("4 active: %v, want 2.5G", got)
	}
}

func TestMixedModeRebalance(t *testing.T) {
	c := NewController(10 * units.Gbps)
	tbl := core.NewTable()
	if _, err := c.Grant(Request{Tenant: "res", Mode: Absolute, Bandwidth: 4 * units.Gbps}, tbl); err != nil {
		t.Fatal(err)
	}
	g, _ := c.Grant(Request{Tenant: "w", Mode: Weighted, Weight: 1}, tbl)
	if got := c.Rate(g.ID); got != 6*units.Gbps {
		t.Fatalf("weighted share with 4G reserved = %v, want 6G", got)
	}
}

func TestBadRequests(t *testing.T) {
	c := NewController(10 * units.Gbps)
	tbl := core.NewTable()
	if _, err := c.Grant(Request{Mode: Absolute}, tbl); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("zero-bandwidth absolute: %v", err)
	}
	if _, err := c.Grant(Request{Mode: Weighted}, tbl); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("zero-weight weighted: %v", err)
	}
	if _, err := c.Grant(Request{Mode: Absolute, Bandwidth: units.Gbps}, nil); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("nil table: %v", err)
	}
}

func TestUniqueIDs(t *testing.T) {
	c := NewController(units.Tbps)
	tbl := core.NewTable()
	seen := map[uint32]bool{}
	for i := 0; i < 100; i++ {
		g, err := c.Grant(Request{Mode: Absolute, Bandwidth: units.Mbps}, tbl)
		if err != nil {
			t.Fatal(err)
		}
		if seen[uint32(g.ID)] {
			t.Fatal("duplicate AQ ID")
		}
		seen[uint32(g.ID)] = true
	}
	if got := len(c.Grants()); got != 100 {
		t.Fatalf("Grants() = %d", got)
	}
}

func TestResourceModel(t *testing.T) {
	m := NewResourceModel()
	if got := m.MemoryBytes(1_000_000); got != 15_000_000 {
		t.Fatalf("1M AQs = %d bytes, want 15MB", got)
	}
	if m.MaxAQs() < 1_000_000 {
		t.Fatalf("MaxAQs = %d; the paper's point is millions fit", m.MaxAQs())
	}
	if got := m.SRAMPct(m.MaxAQs()); math.Abs(got-100) > 0.1 {
		t.Fatalf("full budget pct = %v", got)
	}
	if len(m.StaticUsage()) != 4 {
		t.Fatal("static usage rows missing")
	}
	for _, u := range m.StaticUsage() {
		if u.Percent <= 0 || u.Percent >= 100 {
			t.Fatalf("%s = %v%%", u.Resource, u.Percent)
		}
	}
}

func TestWireProtocolOverTCP(t *testing.T) {
	ctrl := NewController(10 * units.Gbps)
	srv := NewServer(ctrl)
	tbl := srv.RegisterTable("S1", Ingress, nil)
	srv.RegisterTable("S1", Egress, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	cli, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	resp, err := cli.Do(WireRequest{Op: "grant", Tenant: "t1", Mode: "weighted",
		Weight: 1, CC: "ecn", Position: "ingress", Switch: "S1"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID == 0 || resp.Rate != 10e9 {
		t.Fatalf("grant response %+v", resp)
	}
	if got := tbl.Len(); got != 1 {
		t.Fatalf("table has %d AQs", got)
	}
	// Second weighted grant rebalances to 5G each.
	resp2, err := cli.Do(WireRequest{Op: "grant", Tenant: "t2", Mode: "weighted",
		Weight: 1, Position: "ingress", Switch: "S1"})
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Rate != 5e9 {
		t.Fatalf("second grant rate %v", resp2.Rate)
	}
	// set_active false on t2 gives t1 everything again.
	off := false
	if _, err := cli.Do(WireRequest{Op: "set_active", ID: resp2.ID, Active: &off}); err != nil {
		t.Fatal(err)
	}
	if got := ctrl.Rate(1); got != 10*units.Gbps {
		t.Fatalf("rate after idle = %v", got)
	}
	// list returns both grants.
	lr, err := cli.Do(WireRequest{Op: "list"})
	if err != nil {
		t.Fatal(err)
	}
	if len(lr.IDs) != 2 {
		t.Fatalf("list = %v", lr.IDs)
	}
	// Unknown op errors but keeps the connection usable.
	if _, err := cli.Do(WireRequest{Op: "bogus"}); err == nil {
		t.Fatal("bogus op accepted")
	}
	if _, err := cli.Do(WireRequest{Op: "release", ID: resp2.ID}); err != nil {
		t.Fatal(err)
	}
	if got := tbl.Len(); got != 1 {
		t.Fatalf("table has %d AQs after release", got)
	}
	// Unknown switch errors cleanly.
	if _, err := cli.Do(WireRequest{Op: "grant", Mode: "absolute", Bandwidth: 1e9,
		Switch: "nope"}); err == nil {
		t.Fatal("unknown switch accepted")
	}
}
