package control_test

import (
	"fmt"

	"aqueue/internal/control"
	"aqueue/internal/core"
	"aqueue/internal/units"
)

// ExampleController shows the §4.1 flow: tenants request bandwidth, the
// controller admits against link capacity (absolute mode) or shares by
// weight (weighted mode, rebalanced as the active set changes), and
// deploys AQ configurations into a switch pipeline table.
func ExampleController() {
	ctrl := control.NewController(10 * units.Gbps)
	ingress := core.NewTable()

	// An absolute 4 Gbps reservation.
	res, _ := ctrl.Grant(control.Request{
		Tenant: "latency-svc", Mode: control.Absolute,
		Bandwidth: 4 * units.Gbps, CC: core.DelayType,
	}, ingress)
	fmt.Println("reserved:", res.Rate)

	// Two weighted tenants share what is left.
	a, _ := ctrl.Grant(control.Request{Tenant: "a", Mode: control.Weighted, Weight: 1}, ingress)
	b, _ := ctrl.Grant(control.Request{Tenant: "b", Mode: control.Weighted, Weight: 2}, ingress)
	fmt.Println("a:", ctrl.Rate(a.ID), " b:", ctrl.Rate(b.ID))

	// Tenant b goes idle; a absorbs its share.
	ctrl.SetActive(b.ID, false)
	fmt.Println("a after b idles:", ctrl.Rate(a.ID))
	// Output:
	// reserved: 4Gbps
	// a: 2Gbps  b: 4Gbps
	// a after b idles: 6Gbps
}
