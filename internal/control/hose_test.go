package control

import (
	"errors"
	"testing"

	"aqueue/internal/core"
	"aqueue/internal/packet"
	"aqueue/internal/units"
)

func TestAdmitHoseDedicatedLinks(t *testing.T) {
	profiles := []HoseProfile{
		{VM: 0, Out: 5 * units.Gbps, In: 5 * units.Gbps},
		{VM: 1, Out: 20 * units.Gbps, In: 10 * units.Gbps},
	}
	if err := AdmitHose(profiles, 25*units.Gbps, nil); err != nil {
		t.Fatalf("admissible set rejected: %v", err)
	}
	profiles[1].In = 30 * units.Gbps
	err := AdmitHose(profiles, 25*units.Gbps, nil)
	var he *HoseError
	if !errors.As(err, &he) {
		t.Fatalf("expected HoseError, got %v", err)
	}
	if he.VM != 1 || he.Dir != "inbound" {
		t.Fatalf("wrong diagnosis: %+v", he)
	}
}

func TestAdmitHoseSharedLinks(t *testing.T) {
	// Two VMs share one access link: their sums must fit.
	profiles := []HoseProfile{
		{VM: 0, Out: 6 * units.Gbps, In: 3 * units.Gbps},
		{VM: 1, Out: 6 * units.Gbps, In: 3 * units.Gbps},
	}
	share := func(packet.HostID) int { return 0 }
	err := AdmitHose(profiles, 10*units.Gbps, share)
	var he *HoseError
	if !errors.As(err, &he) {
		t.Fatalf("oversubscribed shared link accepted: %v", err)
	}
	if he.Shared != 2 || he.Dir != "outbound" {
		t.Fatalf("wrong diagnosis: %+v", he)
	}
	if err := AdmitHose(profiles, 12*units.Gbps, share); err != nil {
		t.Fatalf("fitting shared link rejected: %v", err)
	}
}

func TestAdmitHoseRejectsBadInput(t *testing.T) {
	if err := AdmitHose(nil, 0, nil); err == nil {
		t.Fatal("zero capacity accepted")
	}
	if err := AdmitHose([]HoseProfile{{VM: 1, Out: -1}}, units.Gbps, nil); err == nil {
		t.Fatal("negative reservation accepted")
	}
}

func TestGrantHoseAllOrNothing(t *testing.T) {
	// Four VMs at 5G each on a 25G switch: 20G of absolute reservations
	// per pipeline — fits. A fifth VM at 10G pushes the ingress table past
	// capacity; the whole grant must roll back.
	c := NewController(25 * units.Gbps)
	ingress, egress := core.NewTable(), core.NewTable()
	profiles := []HoseProfile{
		{VM: 0, Out: 5 * units.Gbps, In: 5 * units.Gbps},
		{VM: 1, Out: 5 * units.Gbps, In: 5 * units.Gbps},
		{VM: 2, Out: 5 * units.Gbps, In: 5 * units.Gbps},
		{VM: 3, Out: 5 * units.Gbps, In: 5 * units.Gbps},
	}
	grants, err := c.GrantHose(profiles, 25*units.Gbps, ingress, egress, 0)
	if err != nil {
		t.Fatalf("admissible hose rejected: %v", err)
	}
	if len(grants) != 4 || ingress.Len() != 4 || egress.Len() != 4 {
		t.Fatalf("deployed %d/%d AQs", ingress.Len(), egress.Len())
	}
	// Too much for the remaining ingress capacity: rollback expected.
	more := []HoseProfile{{VM: 4, Out: 10 * units.Gbps, In: 1 * units.Gbps}}
	if _, err := c.GrantHose(more, 25*units.Gbps, ingress, egress, 0); err == nil {
		t.Fatal("over-capacity hose accepted")
	}
	if ingress.Len() != 4 || egress.Len() != 4 {
		t.Fatalf("rollback failed: %d/%d AQs deployed", ingress.Len(), egress.Len())
	}
	// Inadmissible per-link profile never reaches the controller.
	bad := []HoseProfile{{VM: 5, Out: 30 * units.Gbps, In: 1 * units.Gbps}}
	if _, err := c.GrantHose(bad, 25*units.Gbps, ingress, egress, 0); err == nil {
		t.Fatal("inadmissible profile accepted")
	}
}
