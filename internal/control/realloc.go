package control

import (
	"sort"

	"aqueue/internal/core"
	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/units"
)

// Reallocator implements the second work-conservation mechanism of §6:
// "dynamically adjust the allocated bandwidth of traffic constituents with
// the AQ abstraction ... measure their arrival rates in the network and
// then allow AQ to periodically recompute their allocated bandwidth",
// in the spirit of EyeQ and Seawall.
//
// Every interval it reads each managed AQ's arrival-byte counter, derives a
// demand estimate, and re-divides the link capacity: entities with demand
// below their weighted fair share keep (slightly more than) their demand,
// and the spare capacity is given to the backlogged entities — a max-min
// allocation over demands with weighted floors.
type Reallocator struct {
	eng      *sim.Engine
	ctrl     *Controller
	interval sim.Time

	entries []reallocEntry

	// Rounds counts completed adjustment rounds (for tests).
	Rounds int
	tickT  *sim.Timer
	stop   bool
}

type reallocEntry struct {
	id        packet.AQID
	aq        *core.AQ
	weight    float64
	lastBytes uint64
}

// NewReallocator builds a reallocator on top of a controller. interval <= 0
// selects 5 ms, a typical EyeQ-style adjustment period.
func NewReallocator(eng *sim.Engine, ctrl *Controller, interval sim.Time) *Reallocator {
	if interval <= 0 {
		interval = 5 * sim.Millisecond
	}
	r := &Reallocator{eng: eng, ctrl: ctrl, interval: interval}
	r.tickT = eng.NewTimer(r.tick)
	return r
}

// Manage adds a granted AQ (deployed in tbl) to the reallocation set with
// the given weight.
func (r *Reallocator) Manage(id packet.AQID, tbl *core.Table, weight float64) {
	if weight <= 0 {
		weight = 1
	}
	aq := tbl.Lookup(id)
	if aq == nil {
		return
	}
	r.entries = append(r.entries, reallocEntry{id: id, aq: aq, weight: weight})
}

// Start begins the periodic adjustment; Stop halts it.
func (r *Reallocator) Start() { r.tickT.ArmAfter(r.interval) }

// Stop halts the loop after the current interval.
func (r *Reallocator) Stop() { r.stop = true }

func (r *Reallocator) tick() {
	if r.stop || len(r.entries) == 0 {
		return
	}
	r.Rounds++
	capacity := float64(r.ctrl.Capacity())
	var totalW float64
	demands := make([]float64, len(r.entries))
	for i := range r.entries {
		e := &r.entries[i]
		totalW += e.weight
		arrivedBytes := e.aq.Stats().ArrivedBytes
		bytes := arrivedBytes - e.lastBytes
		e.lastBytes = arrivedBytes
		offered := float64(bytes) * 8 / r.interval.Seconds()
		// Demand headroom: an entity pinned at its allocation is assumed
		// to want more (its true demand is unobservable, as in EyeQ's
		// congestion detectors); a clearly under-using entity is taken at
		// its measured rate plus slack.
		cur := float64(e.aq.Rate())
		if offered > 0.9*cur {
			demands[i] = capacity
		} else {
			demands[i] = offered * 1.2
		}
	}
	// Weighted max-min: satisfy small demands, then split the remainder by
	// weight among the unsatisfied.
	alloc := weightedWaterfill(capacity, demands, r.weights(totalW))
	for i := range r.entries {
		e := &r.entries[i]
		rate := units.BitRate(alloc[i])
		// Keep a small floor so an idle entity can restart promptly.
		if min := units.BitRate(capacity * 0.01); rate < min {
			rate = min
		}
		e.aq.SetRate(rate)
	}
	r.tickT.RearmAfter(r.interval)
}

func (r *Reallocator) weights(total float64) []float64 {
	w := make([]float64, len(r.entries))
	for i := range r.entries {
		w[i] = r.entries[i].weight / total
	}
	return w
}

// weightedWaterfill allocates capacity c over demands with weighted fair
// shares: repeatedly give each unsatisfied entity its weighted share of the
// remaining capacity, capping at demand, until fixpoint.
func weightedWaterfill(c float64, demands, weights []float64) []float64 {
	n := len(demands)
	out := make([]float64, n)
	type item struct {
		idx   int
		dPerW float64
	}
	items := make([]item, n)
	for i := range demands {
		w := weights[i]
		if w <= 0 {
			w = 1e-12
		}
		items[i] = item{i, demands[i] / w}
	}
	sort.Slice(items, func(a, b int) bool { return items[a].dPerW < items[b].dPerW })
	remaining := c
	remW := 0.0
	for _, it := range items {
		remW += weights[it.idx]
	}
	for _, it := range items {
		i := it.idx
		share := remaining * weights[i] / remW
		a := demands[i]
		if a > share {
			a = share
		}
		out[i] = a
		remaining -= a
		remW -= weights[i]
		if remW <= 0 {
			break
		}
	}
	return out
}
