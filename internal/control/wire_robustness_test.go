package control

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"testing"

	"aqueue/internal/units"
)

// dialTestServer spins up a server with one registered switch and returns
// a raw connection plus cleanup.
func dialTestServer(t *testing.T) (net.Conn, func()) {
	t.Helper()
	ctrl := NewController(10 * units.Gbps)
	srv := NewServer(ctrl)
	srv.RegisterTable("S1", Ingress, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	return conn, func() { conn.Close(); srv.Close() }
}

func roundTrip(t *testing.T, conn net.Conn, line string) WireResponse {
	t.Helper()
	if _, err := conn.Write([]byte(line + "\n")); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		t.Fatalf("no response to %q (err %v)", line, sc.Err())
	}
	var resp WireResponse
	if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
		t.Fatalf("bad response %q: %v", sc.Text(), err)
	}
	return resp
}

func TestWireMalformedJSONKeepsConnectionAlive(t *testing.T) {
	conn, done := dialTestServer(t)
	defer done()
	resp := roundTrip(t, conn, "{this is not json")
	if resp.OK || resp.Error == "" {
		t.Fatalf("malformed line accepted: %+v", resp)
	}
	// The connection must survive for a valid follow-up.
	resp = roundTrip(t, conn, `{"op":"grant","mode":"absolute","bandwidth_bps":1e9,"switch":"S1"}`)
	if !resp.OK || resp.ID == 0 {
		t.Fatalf("valid grant after junk failed: %+v", resp)
	}
}

func TestWireUnknownFieldsIgnored(t *testing.T) {
	conn, done := dialTestServer(t)
	defer done()
	resp := roundTrip(t, conn,
		`{"op":"grant","mode":"weighted","weight":2,"switch":"S1","future_field":123}`)
	if !resp.OK {
		t.Fatalf("forward-compatible request rejected: %+v", resp)
	}
}

func TestWireRejections(t *testing.T) {
	conn, done := dialTestServer(t)
	defer done()
	cases := []string{
		`{"op":"grant","mode":"sideways","switch":"S1"}`,
		`{"op":"grant","mode":"absolute","bandwidth_bps":1e9,"cc":"quantum","switch":"S1"}`,
		`{"op":"grant","mode":"absolute","bandwidth_bps":1e9,"position":"middle","switch":"S1"}`,
		`{"op":"grant","mode":"absolute","bandwidth_bps":1e9,"switch":"S9"}`,
		`{"op":"grant","mode":"absolute","switch":"S1"}`, // zero bandwidth
		`{"op":"set_active","id":1}`,                     // missing active
		`{"op":"transmogrify"}`,
	}
	for _, c := range cases {
		resp := roundTrip(t, conn, c)
		if resp.OK || resp.Error == "" {
			t.Fatalf("request %q accepted: %+v", c, resp)
		}
	}
}

func TestWireEmptyLinesSkipped(t *testing.T) {
	conn, done := dialTestServer(t)
	defer done()
	if _, err := conn.Write([]byte("\n\n")); err != nil {
		t.Fatal(err)
	}
	resp := roundTrip(t, conn, `{"op":"list"}`)
	if !resp.OK {
		t.Fatalf("list after blank lines failed: %+v", resp)
	}
}

func TestWireConcurrentClients(t *testing.T) {
	ctrl := NewController(100 * units.Gbps)
	srv := NewServer(ctrl)
	srv.RegisterTable("S1", Ingress, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	const clients = 8
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func() {
			cli, err := Dial(ln.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			for j := 0; j < 20; j++ {
				if _, err := cli.Do(WireRequest{Op: "grant", Mode: "absolute",
					Bandwidth: 1e8, Switch: "S1"}); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := len(ctrl.Grants()); got != clients*20 {
		t.Fatalf("granted %d, want %d", got, clients*20)
	}
}

func TestWireVersionNegotiation(t *testing.T) {
	conn, done := dialTestServer(t)
	defer done()

	// hello reports every accepted version and the server's ceiling.
	resp := roundTrip(t, conn, `{"op":"hello","v":2}`)
	if !resp.OK || resp.V != ProtoMax {
		t.Fatalf("hello: %+v", resp)
	}
	var info struct {
		Versions []int `json:"versions"`
	}
	if err := json.Unmarshal(resp.Data, &info); err != nil || len(info.Versions) != 2 {
		t.Fatalf("hello data %s (err %v)", resp.Data, err)
	}

	// A version beyond the ceiling is refused with a machine-readable code
	// and the ceiling echoed, so the client can downgrade.
	resp = roundTrip(t, conn, `{"op":"list","v":99}`)
	if resp.OK || resp.Code != CodeUnsupportedVersion || resp.V != ProtoMax {
		t.Fatalf("v99 accepted or mis-coded: %+v", resp)
	}

	// v1 (absent field) still works and gets no version echo — the
	// response bytes are what a pre-versioning server produced.
	resp = roundTrip(t, conn, `{"op":"list"}`)
	if !resp.OK || resp.V != 0 {
		t.Fatalf("v1 list: %+v", resp)
	}

	// v2 errors carry codes.
	resp = roundTrip(t, conn, `{"op":"transmogrify","v":2}`)
	if resp.OK || resp.Code != CodeUnknownOp || resp.V != ProtoV2 {
		t.Fatalf("unknown op under v2: %+v", resp)
	}
	resp = roundTrip(t, conn, `{"op":"release","id":999,"v":2}`)
	if resp.OK || resp.Code != CodeUnknownID {
		t.Fatalf("v2 release of unknown id: %+v", resp)
	}
	// ... while v1 keeps the idempotent-silent release semantics.
	resp = roundTrip(t, conn, `{"op":"release","id":999}`)
	if !resp.OK {
		t.Fatalf("v1 release of unknown id must stay silent: %+v", resp)
	}
}

func TestWireErrorCodes(t *testing.T) {
	conn, done := dialTestServer(t)
	defer done()
	cases := []struct {
		line string
		code string
	}{
		{"{not json", CodeMalformed},
		{`{"op":"grant","mode":"sideways","switch":"S1","v":2}`, CodeBadRequest},
		{`{"op":"grant","mode":"absolute","bandwidth_bps":1e9,"switch":"S9","v":2}`, CodeUnknownTable},
		{`{"op":"grant","mode":"absolute","bandwidth_bps":99e9,"switch":"S1","v":2}`, CodeInsufficientBandwidth},
		{`{"op":"set_rate","id":777,"bandwidth_bps":1e9,"v":2}`, CodeUnknownID},
	}
	for _, c := range cases {
		resp := roundTrip(t, conn, c.line)
		if resp.OK || resp.Code != c.code {
			t.Errorf("%q: got code %q (%+v), want %q", c.line, resp.Code, resp, c.code)
		}
	}
}

func TestWireSetRateSetWeight(t *testing.T) {
	conn, done := dialTestServer(t)
	defer done()

	g1 := roundTrip(t, conn, `{"op":"grant","mode":"absolute","bandwidth_bps":4e9,"switch":"S1","v":2}`)
	g2 := roundTrip(t, conn, `{"op":"grant","mode":"weighted","weight":1,"switch":"S1","v":2}`)
	g3 := roundTrip(t, conn, `{"op":"grant","mode":"weighted","weight":1,"switch":"S1","v":2}`)
	if !g1.OK || !g2.OK || !g3.OK {
		t.Fatalf("grants failed: %+v %+v %+v", g1, g2, g3)
	}

	// Shrink the absolute guarantee; the weighted pair splits the freed
	// headroom — 8 Gbps spare over weights 1:1 — at the next rebalance.
	resp := roundTrip(t, conn, fmt.Sprintf(`{"op":"set_rate","id":%d,"bandwidth_bps":2e9,"v":2}`, g1.ID))
	if !resp.OK || resp.Rate != 2e9 {
		t.Fatalf("set_rate: %+v", resp)
	}
	resp = roundTrip(t, conn, fmt.Sprintf(`{"op":"set_weight","id":%d,"weight":3,"v":2}`, g2.ID))
	if !resp.OK || resp.Rate != 6e9 {
		t.Fatalf("set_weight: got rate %v, want 6e9 (3/4 of 8G spare): %+v", resp.Rate, resp)
	}

	// Mode mismatches are rejected with bad_request.
	resp = roundTrip(t, conn, fmt.Sprintf(`{"op":"set_rate","id":%d,"bandwidth_bps":1e9,"v":2}`, g2.ID))
	if resp.OK || resp.Code != CodeBadRequest {
		t.Fatalf("set_rate on weighted grant: %+v", resp)
	}
	// Growing the absolute grant past capacity is refused and leaves the
	// deployed rate unchanged.
	resp = roundTrip(t, conn, fmt.Sprintf(`{"op":"set_rate","id":%d,"bandwidth_bps":99e9,"v":2}`, g1.ID))
	if resp.OK || resp.Code != CodeInsufficientBandwidth {
		t.Fatalf("oversubscribing set_rate: %+v", resp)
	}
}

func TestWireOversizedLine(t *testing.T) {
	conn, done := dialTestServer(t)
	defer done()
	// A huge (but under the scanner cap) request with a long tenant name
	// still parses.
	long := strings.Repeat("x", 100_000)
	resp := roundTrip(t, conn,
		`{"op":"grant","mode":"absolute","bandwidth_bps":1e9,"switch":"S1","tenant":"`+long+`"}`)
	if !resp.OK {
		t.Fatalf("large request rejected: %+v", resp)
	}
}
