package control

import (
	"bufio"
	"encoding/json"
	"net"
	"strings"
	"testing"

	"aqueue/internal/units"
)

// dialTestServer spins up a server with one registered switch and returns
// a raw connection plus cleanup.
func dialTestServer(t *testing.T) (net.Conn, func()) {
	t.Helper()
	ctrl := NewController(10 * units.Gbps)
	srv := NewServer(ctrl)
	srv.RegisterTable("S1", Ingress, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	return conn, func() { conn.Close(); srv.Close() }
}

func roundTrip(t *testing.T, conn net.Conn, line string) WireResponse {
	t.Helper()
	if _, err := conn.Write([]byte(line + "\n")); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(conn)
	if !sc.Scan() {
		t.Fatalf("no response to %q (err %v)", line, sc.Err())
	}
	var resp WireResponse
	if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
		t.Fatalf("bad response %q: %v", sc.Text(), err)
	}
	return resp
}

func TestWireMalformedJSONKeepsConnectionAlive(t *testing.T) {
	conn, done := dialTestServer(t)
	defer done()
	resp := roundTrip(t, conn, "{this is not json")
	if resp.OK || resp.Error == "" {
		t.Fatalf("malformed line accepted: %+v", resp)
	}
	// The connection must survive for a valid follow-up.
	resp = roundTrip(t, conn, `{"op":"grant","mode":"absolute","bandwidth_bps":1e9,"switch":"S1"}`)
	if !resp.OK || resp.ID == 0 {
		t.Fatalf("valid grant after junk failed: %+v", resp)
	}
}

func TestWireUnknownFieldsIgnored(t *testing.T) {
	conn, done := dialTestServer(t)
	defer done()
	resp := roundTrip(t, conn,
		`{"op":"grant","mode":"weighted","weight":2,"switch":"S1","future_field":123}`)
	if !resp.OK {
		t.Fatalf("forward-compatible request rejected: %+v", resp)
	}
}

func TestWireRejections(t *testing.T) {
	conn, done := dialTestServer(t)
	defer done()
	cases := []string{
		`{"op":"grant","mode":"sideways","switch":"S1"}`,
		`{"op":"grant","mode":"absolute","bandwidth_bps":1e9,"cc":"quantum","switch":"S1"}`,
		`{"op":"grant","mode":"absolute","bandwidth_bps":1e9,"position":"middle","switch":"S1"}`,
		`{"op":"grant","mode":"absolute","bandwidth_bps":1e9,"switch":"S9"}`,
		`{"op":"grant","mode":"absolute","switch":"S1"}`, // zero bandwidth
		`{"op":"set_active","id":1}`,                     // missing active
		`{"op":"transmogrify"}`,
	}
	for _, c := range cases {
		resp := roundTrip(t, conn, c)
		if resp.OK || resp.Error == "" {
			t.Fatalf("request %q accepted: %+v", c, resp)
		}
	}
}

func TestWireEmptyLinesSkipped(t *testing.T) {
	conn, done := dialTestServer(t)
	defer done()
	if _, err := conn.Write([]byte("\n\n")); err != nil {
		t.Fatal(err)
	}
	resp := roundTrip(t, conn, `{"op":"list"}`)
	if !resp.OK {
		t.Fatalf("list after blank lines failed: %+v", resp)
	}
}

func TestWireConcurrentClients(t *testing.T) {
	ctrl := NewController(100 * units.Gbps)
	srv := NewServer(ctrl)
	srv.RegisterTable("S1", Ingress, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	const clients = 8
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func() {
			cli, err := Dial(ln.Addr().String())
			if err != nil {
				errs <- err
				return
			}
			defer cli.Close()
			for j := 0; j < 20; j++ {
				if _, err := cli.Do(WireRequest{Op: "grant", Mode: "absolute",
					Bandwidth: 1e8, Switch: "S1"}); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := len(ctrl.Grants()); got != clients*20 {
		t.Fatalf("granted %d, want %d", got, clients*20)
	}
}

func TestWireOversizedLine(t *testing.T) {
	conn, done := dialTestServer(t)
	defer done()
	// A huge (but under the scanner cap) request with a long tenant name
	// still parses.
	long := strings.Repeat("x", 100_000)
	resp := roundTrip(t, conn,
		`{"op":"grant","mode":"absolute","bandwidth_bps":1e9,"switch":"S1","tenant":"`+long+`"}`)
	if !resp.OK {
		t.Fatalf("large request rejected: %+v", resp)
	}
}
