// Package control implements the AQ control plane of §4: the AQ Controller
// that receives tenant requests, grants them against link capacity (in
// absolute mode) or network weights (in weighted mode), generates unique AQ
// IDs, and deploys AQ configurations into switch pipeline tables. It also
// provides the switch resource model used to reproduce Figures 11 and 12,
// and a TCP wire protocol so the controller can run as a daemon (cmd/aqctl).
package control

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"aqueue/internal/core"
	"aqueue/internal/packet"
	"aqueue/internal/units"
)

// Position selects the switch pipeline an AQ is deployed at (§4.1): the
// ingress pipeline controls traffic a VM sends (outbound); the egress
// pipeline controls traffic it receives (inbound).
type Position uint8

const (
	// Ingress deploys at the ingress pipeline.
	Ingress Position = iota
	// Egress deploys at the egress pipeline.
	Egress
)

// String implements fmt.Stringer.
func (p Position) String() string {
	if p == Egress {
		return "egress"
	}
	return "ingress"
}

// Mode selects how bandwidth is allocated (§4.1).
type Mode uint8

const (
	// Absolute requests a hard bandwidth guarantee; the controller admits
	// it only if the link has spare capacity.
	Absolute Mode = iota
	// Weighted requests a proportional share: active weighted AQs divide
	// the remaining capacity by weight.
	Weighted
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Weighted {
		return "weighted"
	}
	return "absolute"
}

// Request is a tenant's AQ request (Table 1: bandwidth demand, CC fields,
// position profile).
type Request struct {
	Tenant    string
	Mode      Mode
	Bandwidth units.BitRate // absolute mode
	Weight    float64       // weighted mode
	CC        core.CCType
	// ECNThreshold and Limit override the AQ defaults when non-zero.
	ECNThreshold int
	Limit        int
	Position     Position
}

// Grant is the controller's answer: the unique AQ ID the tenant must tag
// into its packet headers, and the rate the AQ was deployed with.
type Grant struct {
	ID   packet.AQID
	Rate units.BitRate
}

// ErrInsufficientBandwidth rejects absolute requests beyond link capacity.
var ErrInsufficientBandwidth = errors.New("control: insufficient bandwidth for absolute guarantee")

// ErrBadRequest rejects malformed requests.
var ErrBadRequest = errors.New("control: bad request")

// ErrUnknownID rejects operations naming a grant that does not exist.
var ErrUnknownID = errors.New("control: unknown id")

// Controller manages the AQs of one bottleneck link: admission, ID
// generation, deployment, and weighted-mode rebalancing when the set of
// active entities changes.
type Controller struct {
	mu       sync.Mutex
	capacity units.BitRate
	nextID   packet.AQID
	grants   map[packet.AQID]*grantState
}

type grantState struct {
	req    Request
	table  *core.Table
	aq     *core.AQ
	rate   units.BitRate
	active bool
}

// NewController returns a controller for a link of the given capacity.
func NewController(capacity units.BitRate) *Controller {
	return &Controller{capacity: capacity, nextID: 1, grants: make(map[packet.AQID]*grantState)}
}

// Capacity returns the managed link capacity.
func (c *Controller) Capacity() units.BitRate { return c.capacity }

// Grant admits the request and deploys the AQ into tbl (the pipeline table
// matching the request's position profile on the target switch). Weighted
// grants start active and trigger a rebalance.
func (c *Controller) Grant(req Request, tbl *core.Table) (Grant, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if tbl == nil {
		return Grant{}, fmt.Errorf("%w: nil table", ErrBadRequest)
	}
	switch req.Mode {
	case Absolute:
		if req.Bandwidth <= 0 {
			return Grant{}, fmt.Errorf("%w: absolute request needs a bandwidth", ErrBadRequest)
		}
		if c.absoluteReservedLocked(tbl)+req.Bandwidth > c.capacity {
			return Grant{}, ErrInsufficientBandwidth
		}
	case Weighted:
		if req.Weight <= 0 {
			return Grant{}, fmt.Errorf("%w: weighted request needs a weight", ErrBadRequest)
		}
	default:
		return Grant{}, fmt.Errorf("%w: unknown mode %d", ErrBadRequest, req.Mode)
	}
	id := c.nextID
	c.nextID++
	gs := &grantState{req: req, table: tbl, active: true}
	c.grants[id] = gs
	gs.aq = tbl.Deploy(core.Config{
		ID:           id,
		Rate:         req.Bandwidth, // weighted rate fixed by rebalance below
		Limit:        req.Limit,
		CC:           req.CC,
		ECNThreshold: req.ECNThreshold,
	})
	gs.rate = req.Bandwidth
	if req.Mode == Weighted {
		c.rebalanceLocked(tbl)
	}
	return Grant{ID: id, Rate: gs.rate}, nil
}

// Release undeploys a granted AQ and rebalances its table. It reports
// whether the id named a live grant (callers that must distinguish a miss,
// like the v2 wire protocol, check it; v1 semantics ignore it).
func (c *Controller) Release(id packet.AQID) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	gs, ok := c.grants[id]
	if !ok {
		return false
	}
	delete(c.grants, id)
	gs.table.Remove(id)
	c.rebalanceLocked(gs.table)
	return true
}

// SetActive marks a weighted entity active or idle, reporting whether the
// id named a live grant. The §5.2 experiments (Fig. 9) rely on this: when
// an entity stops sending, the operator marks it idle and the remaining
// active entities absorb its share.
func (c *Controller) SetActive(id packet.AQID, active bool) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	gs, ok := c.grants[id]
	if !ok {
		return false
	}
	if gs.active != active {
		gs.active = active
		c.rebalanceLocked(gs.table)
	}
	return true
}

// SetGuarantee reconfigures a live grant in place — the §4 control plane's
// runtime mutation: an absolute grant moves to the new bandwidth (admission
// re-checked against the other reservations), a weighted grant to the new
// weight. Exactly one of bw/weight must be non-zero, matching the grant's
// mode; the other argument must be zero. It returns the grant's deployed
// rate after the change (for weighted grants, the post-rebalance share).
func (c *Controller) SetGuarantee(id packet.AQID, bw units.BitRate, weight float64) (units.BitRate, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	gs, ok := c.grants[id]
	if !ok {
		return 0, fmt.Errorf("%w: no grant with id %d", ErrUnknownID, id)
	}
	switch {
	case bw > 0 && weight == 0:
		if gs.req.Mode != Absolute {
			return 0, fmt.Errorf("%w: grant %d is weighted; use a weight", ErrBadRequest, id)
		}
		if c.absoluteReservedLocked(gs.table)-gs.req.Bandwidth+bw > c.capacity {
			return 0, ErrInsufficientBandwidth
		}
		gs.req.Bandwidth = bw
		gs.rate = bw
		gs.aq.SetRate(bw)
	case weight > 0 && bw == 0:
		if gs.req.Mode != Weighted {
			return 0, fmt.Errorf("%w: grant %d is absolute; use a bandwidth", ErrBadRequest, id)
		}
		gs.req.Weight = weight
	default:
		return 0, fmt.Errorf("%w: need exactly one of bandwidth or weight", ErrBadRequest)
	}
	c.rebalanceLocked(gs.table)
	return gs.rate, nil
}

// GrantInfo is one grant's introspectable state: identity, guarantee, and
// the deployed AQ's packet counters — the per-tenant slice of a telemetry
// snapshot.
type GrantInfo struct {
	ID     packet.AQID  `json:"id"`
	Tenant string       `json:"tenant"`
	Mode   string       `json:"mode"`
	Rate   float64      `json:"rate_bps"`
	Weight float64      `json:"weight,omitempty"`
	Active bool         `json:"active"`
	AQ     core.AQStats `json:"aq"`
}

// Info snapshots every grant in ascending ID order.
func (c *Controller) Info() []GrantInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]GrantInfo, 0, len(c.grants))
	for id, gs := range c.grants {
		out = append(out, GrantInfo{
			ID:     id,
			Tenant: gs.req.Tenant,
			Mode:   gs.req.Mode.String(),
			Rate:   float64(gs.rate),
			Weight: gs.req.Weight,
			Active: gs.active,
			AQ:     gs.aq.Stats(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Rate reports the currently deployed rate of a grant.
func (c *Controller) Rate(id packet.AQID) units.BitRate {
	c.mu.Lock()
	defer c.mu.Unlock()
	if gs, ok := c.grants[id]; ok {
		return gs.rate
	}
	return 0
}

// Grants returns the granted IDs in ascending order.
func (c *Controller) Grants() []packet.AQID {
	c.mu.Lock()
	defer c.mu.Unlock()
	ids := make([]packet.AQID, 0, len(c.grants))
	for id := range c.grants {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// absoluteReservedLocked sums the absolute reservations on a table.
func (c *Controller) absoluteReservedLocked(tbl *core.Table) units.BitRate {
	var sum units.BitRate
	for _, gs := range c.grants {
		if gs.table == tbl && gs.req.Mode == Absolute {
			sum += gs.req.Bandwidth
		}
	}
	return sum
}

// rebalanceLocked recomputes weighted rates on one table: active weighted
// AQs split the capacity left over by absolute reservations, by weight.
func (c *Controller) rebalanceLocked(tbl *core.Table) {
	avail := c.capacity - c.absoluteReservedLocked(tbl)
	var total float64
	for _, gs := range c.grants {
		if gs.table == tbl && gs.req.Mode == Weighted && gs.active {
			total += gs.req.Weight
		}
	}
	if total <= 0 {
		return
	}
	for _, gs := range c.grants {
		if gs.table != tbl || gs.req.Mode != Weighted || !gs.active {
			continue
		}
		rate := units.BitRate(float64(avail) * gs.req.Weight / total)
		gs.rate = rate
		gs.aq.SetRate(rate)
	}
}
