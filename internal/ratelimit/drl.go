package ratelimit

import (
	"sort"

	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/topo"
	"aqueue/internal/units"
)

// Profile is a VM's bandwidth profile for the dynamic rate limiter:
// OutMin is the VM's guaranteed outbound bandwidth (ElasticSwitch's
// guarantee-partitioning tier), OutMax the outbound cap it may not exceed,
// and InMax the cap on aggregate traffic *to* the VM. For a paper-style
// exact traffic profile (§2.3) OutMin = OutMax = InMax = the reservation;
// for best-effort work-conserving VMs OutMax and InMax are the link
// capacity.
type Profile struct {
	OutMin units.BitRate
	OutMax units.BitRate
	InMax  units.BitRate
}

// DRL is the ElasticSwitch-style dynamic rate limiter: every adjustment
// interval (15 ms in the paper) it re-divides each VM's outbound and
// inbound bandwidth among the VM pairs that showed demand in the previous
// interval, using max-min water-filling, and reprograms per-pair token
// buckets. Because the demand estimate is always one interval stale, bursty
// traffic under-utilizes its allocation — the effect §5.2 measures.
type DRL struct {
	eng      *sim.Engine
	interval sim.Time
	capacity units.BitRate // shared bottleneck capacity
	floor    units.BitRate // bootstrap rate for newly active pairs

	vms   map[packet.HostID]*drlVM
	pairs map[pairKey]*drlPair

	// Ticks counts adjustment rounds (for tests).
	Ticks int

	tickT   *sim.Timer
	started bool
}

type pairKey struct{ src, dst packet.HostID }

type drlVM struct {
	host    *topo.Host
	profile Profile
}

type drlPair struct {
	tb        *TokenBucket
	submitted uint64 // bytes offered this interval
	idleFor   int
	rate      units.BitRate
}

// DefaultInterval is the paper's DRL adjustment interval (§5.1).
const DefaultInterval = 15 * sim.Millisecond

// NewDRL builds a DRL for a set of VMs sharing a bottleneck of the given
// capacity.
func NewDRL(eng *sim.Engine, capacity units.BitRate, interval sim.Time) *DRL {
	if interval <= 0 {
		interval = DefaultInterval
	}
	return &DRL{
		eng:      eng,
		interval: interval,
		capacity: capacity,
		floor:    50 * units.Mbps,
		vms:      make(map[packet.HostID]*drlVM),
		pairs:    make(map[pairKey]*drlPair),
	}
}

// AddVM registers a VM with its profile and installs the outbound filter.
func (d *DRL) AddVM(h *topo.Host, p Profile) {
	d.vms[h.ID()] = &drlVM{host: h, profile: p}
	h.Filter = func(pkt *packet.Packet) bool {
		if pkt.Kind != packet.Data {
			return false
		}
		d.submit(h, pkt)
		return true
	}
}

// Start begins the periodic adjustment loop.
func (d *DRL) Start() {
	if d.started {
		return
	}
	d.started = true
	d.tickT = d.eng.NewTimer(d.tick)
	d.tickT.ArmAfter(d.interval)
}

// PairRate reports the current allocation of a pair (0 if inactive).
func (d *DRL) PairRate(src, dst packet.HostID) units.BitRate {
	if p, ok := d.pairs[pairKey{src, dst}]; ok {
		return p.rate
	}
	return 0
}

// submit shapes one outbound packet through its pair limiter. A new pair
// starts at its guarantee-partitioned share immediately — ElasticSwitch's
// GP layer reacts to a pair becoming active right away; only the
// work-conserving RA layer is interval-paced.
func (d *DRL) submit(h *topo.Host, pkt *packet.Packet) {
	k := pairKey{h.ID(), pkt.Dst}
	p, ok := d.pairs[k]
	if !ok {
		init := d.initialRate(k)
		p = &drlPair{rate: init}
		p.tb = NewTokenBucket(d.eng, init, 0, h.Transmit)
		d.pairs[k] = p
	}
	p.submitted += uint64(pkt.Size)
	p.tb.Submit(pkt)
}

// initialRate guarantees a newly active pair min(outbound guarantee over
// the source's active pairs, inbound cap over the destination's active
// pairs), floored.
func (d *DRL) initialRate(k pairKey) units.BitRate {
	nSrc, nDst := 1, 1
	for k2 := range d.pairs {
		if k2.src == k.src {
			nSrc++
		}
		if k2.dst == k.dst {
			nDst++
		}
	}
	out := d.capacity
	if vm, ok := d.vms[k.src]; ok && vm.profile.OutMin > 0 {
		out = vm.profile.OutMin
	}
	in := d.capacity
	if vm, ok := d.vms[k.dst]; ok && vm.profile.InMax > 0 {
		in = vm.profile.InMax
	}
	r := units.BitRate(float64(out) / float64(nSrc))
	if r2 := units.BitRate(float64(in) / float64(nDst)); r2 < r {
		r = r2
	}
	if r < d.floor {
		r = d.floor
	}
	return r
}

// tick runs one ElasticSwitch adjustment round.
func (d *DRL) tick() {
	d.Ticks++
	var demands []pairDemand
	for k, p := range d.pairs {
		offered := float64(p.submitted) * 8 / d.interval.Seconds()
		backlog := float64(p.tb.Backlog()) * 8 / d.interval.Seconds()
		p.submitted = 0
		if offered == 0 && backlog == 0 {
			p.idleFor++
			if p.idleFor >= 3 {
				p.rate = d.floor
				p.tb.SetRate(d.floor)
				continue
			}
		} else {
			p.idleFor = 0
		}
		// The demand estimate grows past the current allocation when the
		// pair is backlogged, so allocations ramp up across intervals —
		// ElasticSwitch's rate-allocation probing, one interval at a time.
		est := offered*1.5 + backlog
		if backlog > 0 || offered > 0.8*float64(p.rate) {
			// The pair is throttled by its own limiter: its true demand is
			// unobservable, so claim at least the source's guarantee (the
			// GP layer reacts immediately) and double the current rate
			// (the RA layer's congestion-free increase).
			if vm, ok := d.vms[k.src]; ok && est < float64(vm.profile.OutMin) {
				est = float64(vm.profile.OutMin)
			}
			if est < 2*float64(p.rate) {
				est = 2 * float64(p.rate)
			}
		}
		if est < float64(d.floor) {
			est = float64(d.floor)
		}
		demands = append(demands, pairDemand{k, est})
	}
	if len(demands) == 0 {
		d.tickT.RearmAfter(d.interval)
		return
	}
	sort.Slice(demands, func(i, j int) bool { // deterministic iteration
		if demands[i].key.src != demands[j].key.src {
			return demands[i].key.src < demands[j].key.src
		}
		return demands[i].key.dst < demands[j].key.dst
	})

	// Stage 1: inbound water-fill per destination VM.
	caps := make([]float64, len(demands))
	for i := range caps {
		caps[i] = demands[i].est
	}
	caps = d.waterfillBy(demands, caps, func(k pairKey) (packet.HostID, float64) {
		in := d.capacity
		if vm, ok := d.vms[k.dst]; ok && vm.profile.InMax > 0 {
			in = vm.profile.InMax
		}
		return k.dst, float64(in)
	})
	// Stage 2: outbound water-fill per source VM.
	caps = d.waterfillBy(demands, caps, func(k pairKey) (packet.HostID, float64) {
		out := d.capacity
		if vm, ok := d.vms[k.src]; ok && vm.profile.OutMax > 0 {
			out = vm.profile.OutMax
		}
		return k.src, float64(out)
	})
	// Stage 3: the guaranteed tier — each source VM's OutMin is divided
	// among its demanding pairs first (guarantee partitioning)...
	guaranteed := d.waterfillBy(demands, caps, func(k pairKey) (packet.HostID, float64) {
		var g units.BitRate
		if vm, ok := d.vms[k.src]; ok {
			g = vm.profile.OutMin
		}
		return k.src, float64(g)
	})
	// ...and stage 4: the capacity left over by all guarantees is shared
	// work-conservingly among the residual demands (rate allocation).
	var gSum float64
	resid := make([]float64, len(caps))
	for i := range caps {
		gSum += guaranteed[i]
		resid[i] = caps[i] - guaranteed[i]
		if resid[i] < 0 {
			resid[i] = 0
		}
	}
	leftover := float64(d.capacity)*0.98 - gSum
	extra := waterfill(leftover, resid)
	for i, dm := range demands {
		rate := units.BitRate(guaranteed[i] + extra[i])
		if rate < d.floor {
			rate = d.floor
		}
		p := d.pairs[dm.key]
		p.rate = rate
		p.tb.SetRate(rate)
	}
	d.tickT.RearmAfter(d.interval)
}

// pairDemand is one pair's estimated demand in bits per second.
type pairDemand struct {
	key pairKey
	est float64
}

// waterfillBy groups the demands by the key function and water-fills each
// group's capacity over the current caps.
func (d *DRL) waterfillBy(demands []pairDemand, caps []float64, group func(pairKey) (packet.HostID, float64)) []float64 {
	type bucket struct {
		idx []int
		cap float64
	}
	groups := make(map[packet.HostID]*bucket)
	for i, dm := range demands {
		id, c := group(dm.key)
		b, ok := groups[id]
		if !ok {
			b = &bucket{cap: c}
			groups[id] = b
		}
		b.idx = append(b.idx, i)
	}
	out := make([]float64, len(caps))
	for _, b := range groups {
		sub := make([]float64, len(b.idx))
		for j, i := range b.idx {
			sub[j] = caps[i]
		}
		alloc := waterfill(b.cap, sub)
		for j, i := range b.idx {
			out[i] = alloc[j]
		}
	}
	return out
}

// waterfill computes the max-min fair allocation of capacity c over demands
// (each allocation is capped at its demand; spare capacity is reassigned to
// unsatisfied demands).
func waterfill(c float64, demands []float64) []float64 {
	n := len(demands)
	out := make([]float64, n)
	if n == 0 || c <= 0 {
		return out
	}
	type item struct {
		d   float64
		idx int
	}
	items := make([]item, n)
	for i, d := range demands {
		items[i] = item{d, i}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].d < items[j].d })
	remaining := c
	for i, it := range items {
		share := remaining / float64(n-i)
		a := it.d
		if a > share {
			a = share
		}
		out[it.idx] = a
		remaining -= a
	}
	return out
}
