package ratelimit

import (
	"testing"

	"aqueue/internal/cc"
	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/stats"
	"aqueue/internal/topo"
	"aqueue/internal/transport"
	"aqueue/internal/units"
)

func TestTokenBucketRate(t *testing.T) {
	eng := sim.NewEngine()
	var released uint64
	tb := NewTokenBucket(eng, 1*units.Gbps, 0, func(p *packet.Packet) {
		released += uint64(p.Size)
	})
	// Offer 2 Gbps for 50 ms: a 1040B packet every 4160 ns.
	var next func()
	n := 0
	next = func() {
		if n >= 24000 {
			return
		}
		n++
		tb.Submit(packet.NewData(0, 1, 1, 0, 1000))
		eng.After(4160, next)
	}
	eng.After(0, next)
	eng.RunUntil(100 * sim.Millisecond)
	gbps := stats.RateGbps(released, 100*sim.Millisecond)
	if gbps < 0.93 || gbps > 1.05 {
		t.Fatalf("released %.3f Gbps, want ~1", gbps)
	}
	if tb.Dropped == 0 {
		t.Fatal("sustained 2x overload should overflow the shaper queue")
	}
}

func TestTokenBucketBurstThenIdlePassesImmediately(t *testing.T) {
	eng := sim.NewEngine()
	var out []*packet.Packet
	tb := NewTokenBucket(eng, 1*units.Gbps, 5000, func(p *packet.Packet) { out = append(out, p) })
	tb.Submit(packet.NewData(0, 1, 1, 0, 1000))
	if len(out) != 1 {
		t.Fatal("first packet within burst should pass immediately")
	}
	eng.Run()
}

func TestTokenBucketSetRate(t *testing.T) {
	eng := sim.NewEngine()
	var released int
	tb := NewTokenBucket(eng, 1*units.Mbps, 1100, func(p *packet.Packet) { released++ })
	for i := 0; i < 10; i++ {
		tb.Submit(packet.NewData(0, 1, 1, 0, 1000))
	}
	eng.RunUntil(sim.Millisecond)
	low := released
	tb.SetRate(1 * units.Gbps)
	eng.RunUntil(2 * sim.Millisecond)
	if released <= low {
		t.Fatalf("rate increase had no effect (%d -> %d)", low, released)
	}
	if tb.Rate() != 1*units.Gbps {
		t.Fatalf("Rate() = %v", tb.Rate())
	}
}

func TestPRLCapsTCPFlow(t *testing.T) {
	eng := sim.NewEngine()
	d := topo.NewDumbbell(eng, 1, 1, topo.DefaultSim(), topo.DefaultSim())
	AttachPRL(d.Left[0], 2*units.Gbps)
	s := transport.NewSender(d.Left[0], d.Right[0], 0, cc.NewCubic(), transport.Options{})
	s.Start(0)
	const horizon = 100 * sim.Millisecond
	eng.RunUntil(horizon)
	gbps := stats.RateGbps(uint64(s.AckedBytes()), horizon)
	if gbps < 1.6 || gbps > 2.1 {
		t.Fatalf("PRL-shaped CUBIC achieved %.2f Gbps, want ~2", gbps)
	}
	s.Stop()
}

func TestPRLDoesNotShapeAcks(t *testing.T) {
	eng := sim.NewEngine()
	d := topo.NewDumbbell(eng, 1, 1, topo.DefaultSim(), topo.DefaultSim())
	// Receiver side has a tiny PRL; ACKs must still flow at full speed.
	AttachPRL(d.Right[0], 1*units.Mbps)
	s := transport.NewSender(d.Left[0], d.Right[0], 1000*1000, cc.NewCubic(), transport.Options{})
	s.Start(0)
	eng.RunUntil(100 * sim.Millisecond)
	if !s.Done() {
		t.Fatal("flow blocked — receiver PRL must not shape ACKs")
	}
}

func TestWaterfill(t *testing.T) {
	got := waterfill(10, []float64{2, 4, 100})
	if got[0] != 2 || got[1] != 4 || got[2] != 4 {
		t.Fatalf("waterfill = %v, want [2 4 4]", got)
	}
	got = waterfill(9, []float64{100, 100, 100})
	for _, v := range got {
		if v != 3 {
			t.Fatalf("equal demands: %v", got)
		}
	}
	if got := waterfill(10, nil); len(got) != 0 {
		t.Fatal("empty demands")
	}
	// Total never exceeds capacity.
	got = waterfill(5, []float64{10, 1, 3})
	var sum float64
	for _, v := range got {
		sum += v
	}
	if sum > 5.0001 {
		t.Fatalf("waterfill overallocated: %v", got)
	}
}

func TestDRLRampsUpBackloggedPair(t *testing.T) {
	eng := sim.NewEngine()
	d := topo.NewDumbbell(eng, 2, 2, topo.DefaultSim(), topo.DefaultSim())
	drl := NewDRL(eng, 10*units.Gbps, DefaultInterval)
	for _, h := range d.Left {
		drl.AddVM(h, Profile{OutMax: 10 * units.Gbps, InMax: 10 * units.Gbps})
	}
	drl.Start()
	s := transport.NewSender(d.Left[0], d.Right[0], 0, cc.NewCubic(), transport.Options{})
	s.Start(0)
	const horizon = 300 * sim.Millisecond
	eng.RunUntil(horizon)
	// A single backlogged pair should ramp toward the bottleneck over the
	// adjustment rounds; over the whole run the average stays below line
	// rate (the lag), but the final allocation should be high.
	final := drl.PairRate(d.Left[0].ID(), d.Right[0].ID())
	if final < 8*units.Gbps {
		t.Fatalf("final pair allocation %v, want near capacity", final)
	}
	gbps := stats.RateGbps(uint64(s.AckedBytes()), horizon)
	if gbps < 5 {
		t.Fatalf("DRL flow achieved %.2f Gbps over %v", gbps, horizon)
	}
	if drl.Ticks < 15 {
		t.Fatalf("only %d adjustment rounds", drl.Ticks)
	}
	s.Stop()
}

func TestDRLRespectsInboundCap(t *testing.T) {
	// Three senders blast one receiver whose InMax is 5 Gbps; the sum of
	// pair allocations toward it must approach but not exceed the cap.
	eng := sim.NewEngine()
	st := topo.NewStar(eng, 4, topo.DefaultTestbed())
	drl := NewDRL(eng, 25*units.Gbps, DefaultInterval)
	for _, h := range st.Hosts {
		drl.AddVM(h, Profile{OutMax: 25 * units.Gbps, InMax: 5 * units.Gbps})
	}
	drl.Start()
	var senders []*transport.Sender
	for i := 1; i < 4; i++ {
		s := transport.NewSender(st.Hosts[i], st.Hosts[0], 0, cc.NewCubic(), transport.Options{})
		s.Start(0)
		senders = append(senders, s)
	}
	const horizon = 300 * sim.Millisecond
	eng.RunUntil(horizon)
	var sumAlloc units.BitRate
	var acked int64
	for i, s := range senders {
		sumAlloc += drl.PairRate(st.Hosts[i+1].ID(), st.Hosts[0].ID())
		acked += s.AckedBytes()
	}
	if sumAlloc > 5.6*units.Gbps {
		t.Fatalf("inbound allocations sum to %v, cap is 5Gbps", sumAlloc)
	}
	gbps := stats.RateGbps(uint64(acked), horizon)
	if gbps > 5.5 {
		t.Fatalf("aggregate inbound %.2f Gbps exceeds the 5 Gbps profile", gbps)
	}
	if gbps < 2.5 {
		t.Fatalf("aggregate inbound %.2f Gbps, severely under-utilized", gbps)
	}
	for _, s := range senders {
		s.Stop()
	}
}

func TestDRLIdlePairsReturnToFloor(t *testing.T) {
	eng := sim.NewEngine()
	d := topo.NewDumbbell(eng, 1, 1, topo.DefaultSim(), topo.DefaultSim())
	drl := NewDRL(eng, 10*units.Gbps, 10*sim.Millisecond)
	drl.AddVM(d.Left[0], Profile{OutMax: 10 * units.Gbps, InMax: 10 * units.Gbps})
	drl.Start()
	s := transport.NewSender(d.Left[0], d.Right[0], 2*1000*1000, cc.NewCubic(), transport.Options{})
	s.Start(0)
	eng.RunUntil(500 * sim.Millisecond)
	if !s.Done() {
		t.Fatal("short flow did not finish")
	}
	if got := drl.PairRate(d.Left[0].ID(), d.Right[0].ID()); got != 50*units.Mbps {
		t.Fatalf("idle pair rate = %v, want the 50Mbps floor", got)
	}
}
