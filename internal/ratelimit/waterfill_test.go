package ratelimit

import (
	"testing"
	"testing/quick"
)

func TestWaterfillProperties(t *testing.T) {
	// Properties: (1) Σalloc ≤ capacity, (2) alloc_i ≤ demand_i,
	// (3) if Σdemand ≤ capacity everyone is fully satisfied,
	// (4) max-min: an unsatisfied entity's allocation is ≥ every satisfied
	//     entity's allocation... (weaker check: unsatisfied allocations are
	//     all equal to the water level within epsilon).
	f := func(rawC uint16, raw []uint16) bool {
		c := float64(rawC) + 1
		demands := make([]float64, len(raw))
		var sum float64
		for i, v := range raw {
			demands[i] = float64(v)
			sum += demands[i]
		}
		out := waterfill(c, demands)
		var total float64
		level := -1.0
		for i, a := range out {
			if a > demands[i]+1e-9 {
				return false
			}
			total += a
			if a < demands[i]-1e-9 { // unsatisfied -> at the water level
				if level < 0 {
					level = a
				} else if a < level-1e-6 || a > level+1e-6 {
					return false
				}
			}
		}
		if total > c+1e-6 {
			return false
		}
		if sum <= c && total < sum-1e-6 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDRLGuaranteeTier(t *testing.T) {
	// With OutMin guarantees, a newly active pair's initial rate reflects
	// its guarantee, not the bootstrap floor.
	// (Integration coverage for the guarantee tier lives in the
	// experiments package; this checks initialRate arithmetic.)
	d := NewDRL(nil, 10e9, DefaultInterval)
	// No VMs registered: capacity-based split.
	if got := d.initialRate(pairKey{1, 2}); got != 10e9*1.0 {
		t.Fatalf("initialRate without profiles = %v", got)
	}
}
