// Package ratelimit implements the two end-host rate-limiting baselines the
// paper compares AQ against (§5.1): the pre-determined rate limiter (PRL,
// an HTB-style static token bucket per VM) and the dynamic rate limiter
// (DRL, an ElasticSwitch-style controller that re-divides guarantees among
// communicating VM pairs every 15 ms).
package ratelimit

import (
	"aqueue/internal/packet"
	"aqueue/internal/queue"
	"aqueue/internal/sim"
	"aqueue/internal/topo"
	"aqueue/internal/units"
)

// TokenBucket is an event-driven token-bucket shaper: packets submitted
// while tokens are available leave immediately; otherwise they queue (up to
// a byte limit, like an HTB qdisc buffer) and are released as tokens refill.
type TokenBucket struct {
	eng    *sim.Engine
	pool   *packet.Pool
	rate   float64 // bytes per nanosecond
	burst  float64 // bucket depth in bytes
	tokens float64
	last   sim.Time
	q      *queue.FIFO
	out    func(*packet.Packet)
	drainT *sim.Timer

	// Submitted and Dropped count shaper arrivals and queue-limit drops.
	Submitted uint64
	Dropped   uint64
}

// Default shaper queue: deep enough to absorb a window, small enough that
// unresponsive senders see loss (as with a real qdisc).
const defaultShaperQueue = 500 * 1000

// NewTokenBucket builds a shaper releasing packets through out.
func NewTokenBucket(eng *sim.Engine, rate units.BitRate, burst int, out func(*packet.Packet)) *TokenBucket {
	if burst <= 0 {
		burst = 3 * packet.MaxDataBytes
	}
	tb := &TokenBucket{
		eng:    eng,
		pool:   packet.PoolFor(eng),
		rate:   rate.BytesPerNano(),
		burst:  float64(burst),
		tokens: float64(burst),
		q:      queue.New(defaultShaperQueue, 0),
		out:    out,
	}
	tb.drainT = eng.NewTimer(tb.drain)
	return tb
}

// Rate returns the configured rate.
func (tb *TokenBucket) Rate() units.BitRate {
	return units.BitRate(tb.rate * 8e9)
}

// SetRate changes the shaping rate, preserving accumulated tokens. Any
// pending release timer is rescheduled under the new rate.
func (tb *TokenBucket) SetRate(r units.BitRate) {
	tb.refill()
	tb.rate = r.BytesPerNano()
	tb.drainT.Disarm()
	tb.schedule()
}

// Backlog returns the queued bytes waiting for tokens.
func (tb *TokenBucket) Backlog() int { return tb.q.Bytes() }

// Submit shapes one packet.
func (tb *TokenBucket) Submit(p *packet.Packet) {
	tb.Submitted++
	tb.refill()
	if tb.q.Len() == 0 && tb.tokens >= float64(p.Size) {
		tb.tokens -= float64(p.Size)
		tb.out(p)
		return
	}
	if !tb.q.Push(tb.eng.Now(), p) {
		tb.Dropped++
		tb.pool.Release(p)
		return
	}
	tb.schedule()
}

// refill adds tokens for the time elapsed since the last refill.
func (tb *TokenBucket) refill() {
	now := tb.eng.Now()
	tb.tokens += float64(now-tb.last) * tb.rate
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
	tb.last = now
}

// drain releases every packet the current tokens cover, then reschedules.
func (tb *TokenBucket) drain() {
	tb.refill()
	for {
		head := tb.q.Peek()
		if head == nil {
			return
		}
		if tb.tokens < float64(head.Size) {
			tb.schedule()
			return
		}
		tb.tokens -= float64(head.Size)
		tb.out(tb.q.Pop())
	}
}

// schedule arms the release timer for when the head packet's tokens arrive.
func (tb *TokenBucket) schedule() {
	head := tb.q.Peek()
	if head == nil {
		return
	}
	if tb.drainT.Pending() && tb.drainT.Time() > tb.eng.Now() {
		return // a timer is already pending; drain will reschedule
	}
	need := float64(head.Size) - tb.tokens
	var wait sim.Time = 1
	if need > 0 && tb.rate > 0 {
		wait = sim.Time(need / tb.rate)
		if wait < 1 {
			wait = 1
		}
	}
	tb.drainT.RearmAfter(wait)
}

// AttachPRL installs a static outbound shaper on the host (the HTB-style
// pre-determined rate limiter): data packets are shaped, ACKs pass. The
// shaper is returned for rate changes and inspection.
func AttachPRL(h *topo.Host, rate units.BitRate) *TokenBucket {
	tb := NewTokenBucket(h.Engine(), rate, 0, h.Transmit)
	h.Filter = func(p *packet.Packet) bool {
		if p.Kind != packet.Data {
			return false
		}
		tb.Submit(p)
		return true
	}
	return tb
}
