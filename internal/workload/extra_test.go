package workload

import (
	"testing"

	"aqueue/internal/sim"
	"aqueue/internal/topo"
)

func TestDataMiningSampleRange(t *testing.T) {
	r := sim.NewRand(4)
	var dm DataMining
	for i := 0; i < 50000; i++ {
		s := dm.Sample(r)
		if s < 100 || s > 30_000_000 {
			t.Fatalf("sample out of range: %d", s)
		}
	}
}

func TestDataMiningHeavierTailThanWebSearch(t *testing.T) {
	// Data mining is far more bimodal: more tiny flows AND a bigger share
	// of bytes in giant flows.
	r := sim.NewRand(5)
	var dm DataMining
	tiny := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if dm.Sample(r) < 2000 {
			tiny++
		}
	}
	frac := float64(tiny) / n
	if frac < 0.5 || frac > 0.7 {
		t.Fatalf("tiny-flow fraction %.2f, want ~0.6", frac)
	}
	if dm.MeanBytes() < 1_000_000 {
		t.Fatalf("mean %.0f too small for the data-mining trace", dm.MeanBytes())
	}
}

func TestDataMiningEmpiricalMean(t *testing.T) {
	r := sim.NewRand(6)
	var dm DataMining
	const n = 400000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(dm.Sample(r))
	}
	emp := sum / n
	ana := dm.MeanBytes()
	if emp < 0.95*ana || emp > 1.05*ana {
		t.Fatalf("empirical mean %.0f vs analytic %.0f", emp, ana)
	}
}

func TestIncastRounds(t *testing.T) {
	eng := sim.NewEngine()
	st := topo.NewStar(eng, 5, topo.DefaultTestbed())
	in := Incast{
		Senders:       st.Hosts[1:],
		Receiver:      st.Hosts[0],
		ResponseBytes: 20_000,
		Period:        2 * sim.Millisecond,
		Rounds:        5,
	}
	in.Start()
	eng.RunUntil(sim.Second)
	if in.Tracker.Started != 4*5 {
		t.Fatalf("started %d responses, want 20", in.Tracker.Started)
	}
	if !in.Tracker.AllDone() {
		t.Fatalf("completed %d/%d", in.Tracker.Completed, in.Tracker.Started)
	}
}

func TestIncastUnboundedStopsAtHorizon(t *testing.T) {
	eng := sim.NewEngine()
	st := topo.NewStar(eng, 3, topo.DefaultTestbed())
	in := Incast{
		Senders:       st.Hosts[1:],
		Receiver:      st.Hosts[0],
		ResponseBytes: 10_000,
		Period:        sim.Millisecond,
	}
	in.Start()
	eng.RunUntil(10 * sim.Millisecond)
	// ~10 rounds of 2 senders.
	if in.Tracker.Started < 16 || in.Tracker.Started > 24 {
		t.Fatalf("started %d responses over 10 rounds", in.Tracker.Started)
	}
}
