package workload

import (
	"aqueue/internal/cc"
	"aqueue/internal/sim"
	"aqueue/internal/stats"
	"aqueue/internal/topo"
	"aqueue/internal/transport"
	"aqueue/internal/units"
)

// Entity describes one traffic entity (a distributed application, a CC
// class, or a VM group) running a batch of trace flows. The traffic pattern
// is arbitrary: each flow picks a uniform random source VM from Sources and
// destination from Dests.
type Entity struct {
	Name    string
	Sources []*topo.Host
	Dests   []*topo.Host
	// CC builds the congestion controller for each flow.
	CC cc.Factory
	// Opt is applied to every flow (AQ tags, ECN capability, MSS).
	Opt transport.Options
	// Tracker accumulates completion statistics; allocated by Generate if
	// nil.
	Tracker *stats.FCT
}

// Batch describes one generated workload: a number of flows drawn from a
// size distribution, arriving as a Poisson process at the given offered
// load relative to a reference rate.
type Batch struct {
	Flows  int
	Sizes  Sizer
	Load   float64       // fraction of RefRate offered on average
	Ref    units.BitRate // reference rate (the bottleneck)
	Seed   uint64
	Jitter sim.Time // extra uniform start offset per flow (optional)
}

// Generate schedules the batch for the entity on the engine. Flows start by
// Poisson arrivals with mean inter-arrival = meanSize/(Load·Ref); each
// records completion into the entity's tracker. The returned senders allow
// inspection after the run.
func Generate(eng *sim.Engine, e *Entity, b Batch) []*transport.Sender {
	if e.Tracker == nil {
		e.Tracker = &stats.FCT{}
	}
	r := sim.NewRand(b.Seed)
	mean := 1.0
	if s, ok := b.Sizes.(interface{ MeanBytes() float64 }); ok {
		mean = s.MeanBytes()
	} else {
		mean = float64(b.Sizes.Sample(r))
	}
	loadRate := b.Load * float64(b.Ref) / 8 // bytes per second offered
	meanGap := sim.Time(mean / loadRate * 1e9)
	if meanGap < 1 {
		meanGap = 1
	}
	senders := make([]*transport.Sender, 0, b.Flows)
	at := sim.Time(0)
	for i := 0; i < b.Flows; i++ {
		at += r.ExpTime(meanGap)
		start := at
		if b.Jitter > 0 {
			start += sim.Time(r.Uint64() % uint64(b.Jitter))
		}
		src := e.Sources[r.Intn(len(e.Sources))]
		dst := e.Dests[r.Intn(len(e.Dests))]
		size := b.Sizes.Sample(r)
		if size < 1 {
			size = 1
		}
		s := transport.NewSender(src, dst, size, e.CC(), e.Opt)
		tr := e.Tracker
		st := start
		s.OnComplete = func(now sim.Time) { tr.FlowDone(st, now) }
		tr.FlowStarted(size)
		s.Start(start)
		senders = append(senders, s)
	}
	return senders
}
