package workload

import (
	"testing"

	"aqueue/internal/cc"
	"aqueue/internal/sim"
	"aqueue/internal/topo"
	"aqueue/internal/units"
)

func TestWebSearchSampleRange(t *testing.T) {
	r := sim.NewRand(1)
	var ws WebSearch
	for i := 0; i < 100000; i++ {
		s := ws.Sample(r)
		if s < 1000 || s > 20_000_000 {
			t.Fatalf("sample out of range: %d", s)
		}
	}
}

func TestWebSearchEmpiricalMeanMatchesAnalytic(t *testing.T) {
	r := sim.NewRand(2)
	var ws WebSearch
	const n = 300000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(ws.Sample(r))
	}
	emp := sum / n
	ana := ws.MeanBytes()
	if emp < 0.97*ana || emp > 1.03*ana {
		t.Fatalf("empirical mean %.0f vs analytic %.0f", emp, ana)
	}
}

func TestWebSearchQuantiles(t *testing.T) {
	// The distribution is dominated by small flows: the median must be
	// well under 100 KB while the mean is above 500 KB (heavy tail).
	r := sim.NewRand(3)
	var ws WebSearch
	small := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if ws.Sample(r) < 100_000 {
			small++
		}
	}
	frac := float64(small) / n
	if frac < 0.5 || frac > 0.65 {
		t.Fatalf("fraction of <100KB flows = %.2f, want ~0.57", frac)
	}
	if ws.MeanBytes() < 500_000 {
		t.Fatalf("mean %.0f too small for a heavy-tailed trace", ws.MeanBytes())
	}
}

func TestFixedSizer(t *testing.T) {
	if Fixed(1234).Sample(sim.NewRand(1)) != 1234 {
		t.Fatal("Fixed sizer broken")
	}
}

func TestGenerateRunsBatchToCompletion(t *testing.T) {
	eng := sim.NewEngine()
	d := topo.NewDumbbell(eng, 2, 2, topo.DefaultSim(), topo.DefaultSim())
	e := &Entity{
		Name:    "app",
		Sources: d.Left,
		Dests:   d.Right,
		CC:      func() cc.Algorithm { return cc.NewDCTCP() },
	}
	e.Opt.EcnCapable = true
	senders := Generate(eng, e, Batch{
		Flows: 50,
		Sizes: Fixed(50_000),
		Load:  0.5,
		Ref:   10 * units.Gbps,
		Seed:  7,
	})
	if len(senders) != 50 {
		t.Fatalf("generated %d senders", len(senders))
	}
	eng.RunUntil(2 * sim.Second)
	if !e.Tracker.AllDone() {
		t.Fatalf("completed %d/%d flows", e.Tracker.Completed, e.Tracker.Started)
	}
	if e.Tracker.Bytes != 50*50_000 {
		t.Fatalf("tracked bytes = %d", e.Tracker.Bytes)
	}
	if e.Tracker.CompletionTime() <= 0 {
		t.Fatal("no completion time recorded")
	}
}

func TestGenerateArrivalSpacingMatchesLoad(t *testing.T) {
	// At load 0.8 of 10 Gbps with 1 MB flows, the mean inter-arrival is
	// 1 ms; the 200th flow should start around 200 ms.
	eng := sim.NewEngine()
	d := topo.NewDumbbell(eng, 1, 1, topo.DefaultSim(), topo.DefaultSim())
	e := &Entity{
		Name:    "x",
		Sources: d.Left,
		Dests:   d.Right,
		CC:      func() cc.Algorithm { return cc.NewCubic() },
	}
	Generate(eng, e, Batch{Flows: 200, Sizes: Fixed(1_000_000), Load: 0.8, Ref: 10 * units.Gbps, Seed: 9})
	// Mean gap = 1e6 bytes / (0.8 * 1.25e9 B/s) = 1 ms; 200 flows ≈ 200 ms
	// of arrivals. Run long enough and check everything completed.
	eng.RunUntil(3 * sim.Second)
	if !e.Tracker.AllDone() {
		t.Fatalf("completed %d/%d", e.Tracker.Completed, e.Tracker.Started)
	}
	ct := e.Tracker.CompletionTime()
	if ct < 150*sim.Millisecond || ct > 800*sim.Millisecond {
		t.Fatalf("completion time %v, want a few hundred ms", ct)
	}
}
