package workload

import "aqueue/internal/sim"

// dataMiningCDF is the companion data-mining flow-size distribution used
// across the DC literature (VL2/DCTCP follow-ups): half the flows are tiny
// control messages while nearly all bytes live in multi-megabyte flows.
// The tail is truncated at 30 MB to keep simulated runs tractable; the
// truncation is noted in DESIGN.md and only fattens the paper's own
// "arbitrary traffic" assumption modestly.
var dataMiningCDF = []cdfPoint{
	{300, 0.30},
	{1_000, 0.50},
	{2_000, 0.60},
	{10_000, 0.70},
	{100_000, 0.80},
	{1_000_000, 0.90},
	{5_000_000, 0.95},
	{30_000_000, 1.00},
}

// DataMining samples the (truncated) data-mining distribution.
type DataMining struct{}

// Sample implements Sizer.
func (DataMining) Sample(r *sim.Rand) int64 {
	u := r.Float64()
	prevB, prevP := 100.0, 0.0
	for _, pt := range dataMiningCDF {
		if u <= pt.prob {
			frac := (u - prevP) / (pt.prob - prevP)
			return int64(prevB + frac*(pt.bytes-prevB))
		}
		prevB, prevP = pt.bytes, pt.prob
	}
	return int64(dataMiningCDF[len(dataMiningCDF)-1].bytes)
}

// MeanBytes returns the analytic mean of the truncated distribution.
func (DataMining) MeanBytes() float64 {
	prevB, prevP := 100.0, 0.0
	mean := 0.0
	for _, pt := range dataMiningCDF {
		mean += (pt.prob - prevP) * (prevB + pt.bytes) / 2
		prevB, prevP = pt.bytes, pt.prob
	}
	return mean
}
