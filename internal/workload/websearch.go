// Package workload regenerates the paper's traffic: the web-search flow
// size distribution (the DCTCP trace used by §5.1), Poisson flow arrivals,
// and the "arbitrary traffic pattern" in which any VM of an entity sends to
// any destination VM with arbitrary volume at arbitrary times.
package workload

import (
	"aqueue/internal/sim"
)

// cdfPoint is one knot of a piecewise-linear CDF over flow sizes.
type cdfPoint struct {
	bytes float64
	prob  float64
}

// webSearchCDF is the flow-size distribution of the production web-search
// workload published with DCTCP [4], as commonly tabulated for NS3
// reproductions: a heavy mix of small (<100 KB) query traffic and
// multi-megabyte background flows.
var webSearchCDF = []cdfPoint{
	{6_000, 0.15},
	{13_000, 0.20},
	{19_000, 0.30},
	{33_000, 0.40},
	{53_000, 0.53},
	{133_000, 0.60},
	{667_000, 0.70},
	{1_467_000, 0.80},
	{3_333_000, 0.90},
	{6_667_000, 0.97},
	{20_000_000, 1.00},
}

// Sizer samples flow sizes in bytes.
type Sizer interface {
	Sample(r *sim.Rand) int64
}

// WebSearch samples the web-search distribution by inverse-transform over
// the piecewise-linear CDF.
type WebSearch struct{}

// Sample implements Sizer.
func (WebSearch) Sample(r *sim.Rand) int64 {
	u := r.Float64()
	prevB, prevP := 1000.0, 0.0
	for _, pt := range webSearchCDF {
		if u <= pt.prob {
			frac := (u - prevP) / (pt.prob - prevP)
			return int64(prevB + frac*(pt.bytes-prevB))
		}
		prevB, prevP = pt.bytes, pt.prob
	}
	return int64(webSearchCDF[len(webSearchCDF)-1].bytes)
}

// MeanBytes returns the analytic mean of the distribution, used to convert
// an offered load fraction into a Poisson arrival rate.
func (WebSearch) MeanBytes() float64 {
	prevB, prevP := 1000.0, 0.0
	mean := 0.0
	for _, pt := range webSearchCDF {
		mean += (pt.prob - prevP) * (prevB + pt.bytes) / 2
		prevB, prevP = pt.bytes, pt.prob
	}
	return mean
}

// Fixed always samples the same size; used by tests and microbenchmarks.
type Fixed int64

// Sample implements Sizer.
func (f Fixed) Sample(*sim.Rand) int64 { return int64(f) }
