package workload

import (
	"aqueue/internal/cc"
	"aqueue/internal/sim"
	"aqueue/internal/stats"
	"aqueue/internal/topo"
	"aqueue/internal/transport"
)

// Incast drives the classic partition-aggregate pattern: every sender
// transmits one response of ResponseBytes to the single receiver at the
// same instant, and a new round starts Period after the previous round's
// first transmission. This is the burstiest inbound pattern a VM's traffic
// profile has to survive.
type Incast struct {
	Senders  []*topo.Host
	Receiver *topo.Host
	// ResponseBytes per sender per round.
	ResponseBytes int64
	// Period between round starts; a round that outlives the period delays
	// the next one (rounds never overlap per sender).
	Period sim.Time
	// Rounds to run; 0 means until the horizon.
	Rounds int
	// CC builds the controller for each response flow.
	CC cc.Factory
	// Opt is applied to every flow (AQ tags etc.).
	Opt transport.Options
	// Tracker records per-response completions.
	Tracker *stats.FCT
}

// Start schedules the incast rounds. Each sender drives its own rounds on
// its own engine at the fixed times 0, Period, 2·Period, …: round starts
// are construction data, not runtime coordination, so the pattern is
// identical however the fabric is partitioned into domains (a single
// scheduling engine would have to create senders on other domains'
// engines mid-window, which the conservative sync protocol forbids).
func (in *Incast) Start() {
	if in.Tracker == nil {
		in.Tracker = &stats.FCT{}
	}
	if in.Period <= 0 {
		in.Period = sim.Millisecond
	}
	if in.CC == nil {
		in.CC = func() cc.Algorithm { return cc.NewDCTCP() }
	}
	for _, src := range in.Senders {
		src := src
		eng := src.Engine()
		round := 0
		var roundT *sim.Timer
		roundT = eng.NewTimer(func() {
			if in.Rounds > 0 && round >= in.Rounds {
				return
			}
			round++
			s := transport.NewSender(src, in.Receiver, in.ResponseBytes, in.CC(), in.Opt)
			start := eng.Now()
			tr := in.Tracker
			tr.FlowStarted(in.ResponseBytes)
			s.OnComplete = func(now sim.Time) { tr.FlowDone(start, now) }
			s.Start(0)
			roundT.RearmAfter(in.Period)
		})
		roundT.ArmAfter(0)
	}
}
