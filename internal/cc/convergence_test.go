package cc_test

import (
	"testing"

	"aqueue/internal/cc"
	"aqueue/internal/core"
	"aqueue/internal/sim"
	"aqueue/internal/stats"
	"aqueue/internal/topo"
	"aqueue/internal/transport"
	"aqueue/internal/units"
)

// TestSameCCPairsConverge runs two same-algorithm flows on a shared
// bottleneck for every registered algorithm and checks they split the
// link roughly evenly — intra-algorithm fairness is a prerequisite for
// the paper's inter-algorithm experiments to mean anything.
func TestSameCCPairsConverge(t *testing.T) {
	for _, name := range cc.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			eng := sim.NewEngine()
			d := topo.NewDumbbell(eng, 2, 2, topo.DefaultSim(), topo.DefaultSim())
			opt := transport.Options{EcnCapable: name == "dctcp"}
			a := transport.NewSender(d.Left[0], d.Right[0], 0, cc.ByName(name)(), opt)
			b := transport.NewSender(d.Left[1], d.Right[1], 0, cc.ByName(name)(), opt)
			a.Start(0)
			b.Start(5 * sim.Millisecond) // staggered: the late flow must catch up
			const horizon = 250 * sim.Millisecond
			eng.RunUntil(horizon)
			// Compare over the second half, after convergence.
			ga := float64(a.AckedBytes())
			gb := float64(b.AckedBytes())
			total := stats.RateGbps(uint64(ga+gb), horizon)
			minTotal := 7.5
			if name == "bbr" {
				// BBRv1's model-based probing leaves utilization gaps when
				// two instances fight over the bandwidth estimate.
				minTotal = 6.0
			}
			if total < minTotal {
				t.Fatalf("%s pair total %.2f Gbps, under-utilized", name, total)
			}
			ratio := ga / gb
			// The late start costs b a little; allow a generous band but
			// catch real starvation.
			if ratio < 0.55 || ratio > 2.5 {
				t.Fatalf("%s pair split %.2f:1 (%.0f vs %.0f bytes)", name, ratio, ga, gb)
			}
		})
	}
}

// TestEveryCCWorksUnderAQ gives each algorithm a 4 Gbps AQ with its
// matching feedback type and requires it to reach most of the allocation —
// the §7 claim that the abstraction accommodates all of them.
func TestEveryCCWorksUnderAQ(t *testing.T) {
	feedback := map[string]string{
		"newreno": "drop", "cubic": "drop", "illinois": "drop", "bbr": "drop",
		"dctcp": "ecn", "swift": "delay", "timely": "delay",
	}
	for _, name := range cc.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			eng := sim.NewEngine()
			d := topo.NewDumbbell(eng, 1, 1, topo.DefaultSim(), topo.DefaultSim())
			cfg := aqConfigFor(feedback[name])
			d.S1.Ingress.Deploy(cfg)
			opt := transport.Options{EcnCapable: name == "dctcp", IngressAQ: cfg.ID}
			flows := make([]*transport.Sender, 3)
			for i := range flows {
				flows[i] = transport.NewSender(d.Left[0], d.Right[0], 0, cc.ByName(name)(), opt)
				flows[i].Start(sim.Time(i) * 100 * sim.Microsecond)
			}
			const horizon = 200 * sim.Millisecond
			eng.RunUntil(horizon)
			var acked uint64
			for _, f := range flows {
				acked += uint64(f.AckedBytes())
			}
			gbps := stats.RateGbps(acked, horizon)
			if gbps < 3.0 || gbps > 4.6 {
				t.Fatalf("%s under a 4 Gbps AQ achieved %.2f Gbps", name, gbps)
			}
		})
	}
}

// aqConfigFor builds a 4 Gbps AQ of the named feedback type.
func aqConfigFor(kind string) core.Config {
	cfg := core.Config{ID: 1, Rate: 4 * units.Gbps, Limit: 400_000}
	switch kind {
	case "ecn":
		cfg.CC = core.ECNType
	case "delay":
		cfg.CC = core.DelayType
	}
	return cfg
}
