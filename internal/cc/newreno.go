package cc

import "aqueue/internal/sim"

// NewReno is classic TCP NewReno [17]: slow start to ssthresh, additive
// increase of one segment per RTT in congestion avoidance, halve on loss.
type NewReno struct {
	cwnd     float64
	ssthresh float64
}

// NewNewReno returns a NewReno controller with the standard initial window.
func NewNewReno() *NewReno {
	return &NewReno{cwnd: initialCwnd, ssthresh: initialThresh}
}

// Name implements Algorithm.
func (n *NewReno) Name() string { return "newreno" }

// Cwnd implements Algorithm.
func (n *NewReno) Cwnd() float64 { return n.cwnd }

// OnAck implements Algorithm.
func (n *NewReno) OnAck(a Ack) {
	segs := ackSegs(a)
	if n.cwnd < n.ssthresh {
		n.cwnd += segs // slow start: +1 per acked segment
	} else {
		n.cwnd += segs / n.cwnd // congestion avoidance: +1 per RTT
	}
	n.cwnd = clamp(n.cwnd, minLossCwnd, maxCwnd)
}

// OnLoss implements Algorithm.
func (n *NewReno) OnLoss(sim.Time) {
	n.ssthresh = clamp(n.cwnd/2, 2, maxCwnd)
	n.cwnd = n.ssthresh
}

// OnTimeout implements Algorithm.
func (n *NewReno) OnTimeout(sim.Time) {
	n.ssthresh = clamp(n.cwnd/2, 2, maxCwnd)
	n.cwnd = minLossCwnd
}
