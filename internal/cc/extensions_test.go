package cc

import (
	"testing"

	"aqueue/internal/sim"
)

func TestNamesAllResolve(t *testing.T) {
	for _, n := range Names() {
		f := ByName(n)
		if f == nil {
			t.Fatalf("ByName(%q) = nil", n)
		}
		if got := f().Name(); got != n {
			t.Fatalf("factory for %q produced %q", n, got)
		}
	}
}

func TestBBRConvergesToDeliveryRate(t *testing.T) {
	b := NewBBR()
	// Feed a steady delivery: one 1000B segment every 800ns = 10 Gbps,
	// RTT 100us.
	now := sim.Time(0)
	for i := 0; i < 5000; i++ {
		now += 800
		b.OnAck(Ack{Now: now, RTT: 100 * sim.Microsecond, Bytes: mss, MSS: mss})
	}
	if got := b.BtlBwGbps(); got < 9 || got > 13 {
		t.Fatalf("BtlBw estimate %.2f Gbps, want ~10", got)
	}
	// cwnd should be around gain * BDP = 2 * 125 segments (with the probe
	// cycle wobble).
	bdp := 10e9 / 8 * 100e-6 / float64(mss) // 125 segments
	if b.Cwnd() < bdp || b.Cwnd() > 3*bdp {
		t.Fatalf("cwnd = %.1f, want around %.0f-%.0f", b.Cwnd(), 2*bdp*0.75, 2*bdp*1.25)
	}
}

func TestBBRIgnoresIsolatedLoss(t *testing.T) {
	b := NewBBR()
	now := sim.Time(0)
	for i := 0; i < 1000; i++ {
		now += 800
		b.OnAck(Ack{Now: now, RTT: 100 * sim.Microsecond, Bytes: mss, MSS: mss})
	}
	w := b.Cwnd()
	b.OnLoss(now)
	if b.Cwnd() != w {
		t.Fatal("BBR reacted to an isolated loss")
	}
	b.OnTimeout(now)
	if b.Cwnd() >= w {
		t.Fatal("BBR did not collapse on timeout")
	}
}

func TestTimelyGradientResponse(t *testing.T) {
	tm := NewTimely()
	tm.cwnd = 100
	now := sim.Time(0)
	// Low delay: growth.
	for i := 0; i < 50; i++ {
		now += 100 * sim.Microsecond
		tm.OnAck(Ack{Now: now, RTT: 60 * sim.Microsecond,
			Delay: 10 * sim.Microsecond, Bytes: mss, MSS: mss})
	}
	if tm.Cwnd() <= 100 {
		t.Fatalf("cwnd = %v at low delay, want growth", tm.Cwnd())
	}
	// Sharply rising delay above T_high: decrease.
	w := tm.Cwnd()
	for i := 0; i < 20; i++ {
		now += 100 * sim.Microsecond
		tm.OnAck(Ack{Now: now, RTT: 400 * sim.Microsecond,
			Delay: sim.Time(200+20*i) * sim.Microsecond, Bytes: mss, MSS: mss})
	}
	if tm.Cwnd() >= w {
		t.Fatalf("cwnd = %v after sustained high delay, want decrease from %v", tm.Cwnd(), w)
	}
}

func TestTimelyNegativeGradientGrowsInBand(t *testing.T) {
	tm := NewTimely()
	tm.cwnd = 50
	now := sim.Time(0)
	// Delay between T_low and T_high but falling: gradient <= 0 -> grow.
	for i := 0; i < 30; i++ {
		now += 100 * sim.Microsecond
		d := sim.Time(120-2*i) * sim.Microsecond
		tm.OnAck(Ack{Now: now, RTT: 200 * sim.Microsecond, Delay: d, Bytes: mss, MSS: mss})
	}
	if tm.Cwnd() <= 50 {
		t.Fatalf("cwnd = %v with falling in-band delay, want growth", tm.Cwnd())
	}
}

func TestBBRAndTimelySaturateALink(t *testing.T) {
	// Integration sanity lives in the transport tests; here just check the
	// windows stay in bounds across a noisy feed.
	for _, f := range []Factory{ByName("bbr"), ByName("timely")} {
		alg := f()
		r := sim.NewRand(9)
		now := sim.Time(0)
		for i := 0; i < 20000; i++ {
			now += sim.Time(200 + r.Intn(2000))
			alg.OnAck(Ack{
				Now:   now,
				RTT:   sim.Time(50+r.Intn(200)) * sim.Microsecond,
				Delay: sim.Time(r.Intn(300)) * sim.Microsecond,
				ECE:   r.Intn(10) == 0,
				Bytes: mss, MSS: mss,
			})
			if i%97 == 0 {
				alg.OnLoss(now)
			}
			w := alg.Cwnd()
			if w <= 0 || w > maxCwnd {
				t.Fatalf("%s: cwnd out of bounds: %v", alg.Name(), w)
			}
		}
	}
}
