package cc

import "aqueue/internal/sim"

// Timely implements the RTT-gradient algorithm TIMELY [43], the other
// delay-based algorithm the paper cites: the rate (expressed here as a
// window) increases additively while the delay gradient is non-positive or
// the delay sits below a low threshold, and decreases multiplicatively in
// proportion to the gradient when the delay is rising, with hard
// overshoot protection above a high threshold.
type Timely struct {
	cwnd float64

	prevDelay sim.Time
	gradient  float64 // EWMA of the normalized delay gradient
	lastDec   sim.Time
	lastRTT   sim.Time
}

// TIMELY parameters (scaled for intra-DC microsecond delays).
const (
	timelyTLow   = 30 * sim.Microsecond
	timelyTHigh  = 150 * sim.Microsecond
	timelyAlpha  = 0.875 // EWMA weight on the previous gradient
	timelyBeta   = 0.8
	timelyAI     = 1.0
	timelyMinWin = 0.01
)

// NewTimely returns a TIMELY controller.
func NewTimely() *Timely {
	return &Timely{cwnd: initialCwnd}
}

// Name implements Algorithm.
func (t *Timely) Name() string { return "timely" }

// Cwnd implements Algorithm.
func (t *Timely) Cwnd() float64 { return t.cwnd }

// OnAck implements Algorithm.
func (t *Timely) OnAck(a Ack) {
	if a.RTT > 0 {
		t.lastRTT = a.RTT
	}
	delay := a.Delay
	if t.prevDelay > 0 {
		norm := float64(delay-t.prevDelay) / float64(timelyTLow)
		t.gradient = timelyAlpha*t.gradient + (1-timelyAlpha)*norm
	}
	t.prevDelay = delay
	segs := ackSegs(a)
	switch {
	case delay < timelyTLow:
		t.cwnd += timelyAI * segs / t.cwnd
	case delay > timelyTHigh:
		if t.canDecrease(a.Now) {
			t.cwnd *= 1 - timelyBeta*(1-float64(timelyTHigh)/float64(delay))
			t.lastDec = a.Now
		}
	case t.gradient <= 0:
		t.cwnd += timelyAI * segs / t.cwnd
	default:
		if t.canDecrease(a.Now) {
			dec := timelyBeta * t.gradient
			if dec > 0.5 {
				dec = 0.5
			}
			t.cwnd *= 1 - dec
			t.lastDec = a.Now
		}
	}
	t.cwnd = clamp(t.cwnd, timelyMinWin, maxCwnd)
}

func (t *Timely) canDecrease(now sim.Time) bool {
	rtt := t.lastRTT
	if rtt <= 0 {
		rtt = 100 * sim.Microsecond
	}
	return now-t.lastDec >= rtt
}

// OnLoss implements Algorithm.
func (t *Timely) OnLoss(now sim.Time) {
	if t.canDecrease(now) {
		t.cwnd = clamp(t.cwnd*0.5, timelyMinWin, maxCwnd)
		t.lastDec = now
	}
}

// OnTimeout implements Algorithm.
func (t *Timely) OnTimeout(now sim.Time) {
	t.cwnd = clamp(t.cwnd*0.5, timelyMinWin, maxCwnd)
	t.lastDec = now
}
