package cc

import "aqueue/internal/sim"

// Swift implements the delay-based algorithm of [34]: additive increase
// while the fabric delay is below a target, multiplicative decrease
// proportional to the overshoot (at most once per RTT), and fractional
// windows (cwnd < 1) realised through sender pacing when the target cannot
// sustain one packet per RTT.
//
// The fabric-delay signal comes from Ack.Delay, which under AQ is the
// virtual queuing delay of §3.3.2 and under a physical queue is the real
// queuing delay.
type Swift struct {
	cwnd float64

	// Target is the fabric delay target. The zero value selects
	// DefaultSwiftTarget.
	target sim.Time

	lastDecrease sim.Time
	lastRTT      sim.Time
}

// Swift constants (per the SIGCOMM'20 paper's recommended configuration).
const (
	swiftAI      = 1.0  // additive increase, packets per RTT
	swiftBeta    = 0.8  // multiplicative-decrease scaling
	swiftMaxMdf  = 0.5  // largest single decrease
	swiftMinCwnd = 0.01 // fractional floor (paced)
	// DefaultSwiftTarget is the default fabric-delay target. It sits below
	// the delay a DCTCP-threshold queue imposes at 10 Gbps (52 us at the threshold), which
	// is what starves Swift when it shares a physical queue with CC
	// algorithms that fill the queue to the marking point (§2.2).
	DefaultSwiftTarget = 30 * sim.Microsecond
)

// NewSwift returns a Swift controller with the default delay target.
func NewSwift() *Swift { return NewSwiftTarget(DefaultSwiftTarget) }

// NewSwiftTarget returns a Swift controller with an explicit delay target.
func NewSwiftTarget(target sim.Time) *Swift {
	if target <= 0 {
		target = DefaultSwiftTarget
	}
	return &Swift{cwnd: initialCwnd, target: target}
}

// Name implements Algorithm.
func (s *Swift) Name() string { return "swift" }

// Cwnd implements Algorithm.
func (s *Swift) Cwnd() float64 { return s.cwnd }

// Target returns the configured fabric-delay target.
func (s *Swift) Target() sim.Time { return s.target }

// OnAck implements Algorithm.
func (s *Swift) OnAck(a Ack) {
	if a.RTT > 0 {
		s.lastRTT = a.RTT
	}
	segs := ackSegs(a)
	if a.Delay < s.target {
		if s.cwnd >= 1 {
			s.cwnd += swiftAI * segs / s.cwnd
		} else {
			s.cwnd += swiftAI * segs * s.cwnd // paced regime grows slowly
		}
	} else if s.canDecrease(a.Now) {
		over := float64(a.Delay-s.target) / float64(a.Delay)
		mdf := swiftBeta * over
		if mdf > swiftMaxMdf {
			mdf = swiftMaxMdf
		}
		s.cwnd *= 1 - mdf
		s.lastDecrease = a.Now
	}
	s.cwnd = clamp(s.cwnd, swiftMinCwnd, maxCwnd)
}

// canDecrease gates multiplicative decreases to once per RTT.
func (s *Swift) canDecrease(now sim.Time) bool {
	rtt := s.lastRTT
	if rtt <= 0 {
		rtt = 100 * sim.Microsecond
	}
	return now-s.lastDecrease >= rtt
}

// OnLoss implements Algorithm.
func (s *Swift) OnLoss(now sim.Time) {
	if s.canDecrease(now) {
		s.cwnd = clamp(s.cwnd*(1-swiftMaxMdf), swiftMinCwnd, maxCwnd)
		s.lastDecrease = now
	}
}

// OnTimeout implements Algorithm.
func (s *Swift) OnTimeout(now sim.Time) {
	s.cwnd = clamp(s.cwnd*(1-swiftMaxMdf), swiftMinCwnd, maxCwnd)
	s.lastDecrease = now
}
