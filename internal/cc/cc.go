// Package cc implements the five congestion-control algorithms the paper
// evaluates (§5.1): the drop-based CUBIC, NewReno and Illinois, the
// ECN-based DCTCP, and the delay-based Swift.
//
// Algorithms are pure window controllers: the transport feeds them ACK
// events (with RTT, fabric-delay and ECN-echo information) plus loss and
// timeout notifications, and reads back the congestion window. Everything
// is expressed in packets (fractional windows are allowed; Swift uses
// cwnd < 1 with pacing, per its SIGCOMM'20 design).
package cc

import (
	"aqueue/internal/sim"
)

// Ack carries the per-acknowledgement feedback an algorithm sees.
type Ack struct {
	Now sim.Time
	// RTT is the measured round-trip time of the newest acked segment.
	RTT sim.Time
	// Delay is the fabric-delay signal: physical queuing delay plus any
	// virtual queuing delay stamped by delay-type AQs (§3.3.2). Delay-based
	// algorithms use this instead of raw RTT.
	Delay sim.Time
	// ECE reports the receiver's ECN echo for the acked segment.
	ECE bool
	// Bytes is the number of newly acknowledged bytes.
	Bytes int
	// MSS is the sender's segment size in bytes.
	MSS int
}

// Algorithm is a congestion window controller.
type Algorithm interface {
	// Name identifies the algorithm in reports ("cubic", "dctcp", ...).
	Name() string
	// OnAck processes one new acknowledgement.
	OnAck(a Ack)
	// OnLoss reacts to a fast-retransmit loss event (at most once per
	// window; the transport gates re-entry during recovery).
	OnLoss(now sim.Time)
	// OnTimeout reacts to a retransmission timeout.
	OnTimeout(now sim.Time)
	// Cwnd returns the congestion window in packets; values below 1
	// request paced sub-packet-per-RTT operation.
	Cwnd() float64
}

// Factory builds a fresh algorithm instance for a new flow.
type Factory func() Algorithm

// ByName returns a factory for the given algorithm name, or nil when the
// name is unknown. The paper's five evaluation algorithms are newreno,
// cubic, illinois, dctcp and swift; bbr and timely are the §7 extensions.
func ByName(name string) Factory {
	switch name {
	case "newreno":
		return func() Algorithm { return NewNewReno() }
	case "cubic":
		return func() Algorithm { return NewCubic() }
	case "illinois":
		return func() Algorithm { return NewIllinois() }
	case "dctcp":
		return func() Algorithm { return NewDCTCP() }
	case "swift":
		return func() Algorithm { return NewSwift() }
	case "bbr":
		return func() Algorithm { return NewBBR() }
	case "timely":
		return func() Algorithm { return NewTimely() }
	default:
		return nil
	}
}

// Names lists every registered algorithm.
func Names() []string {
	return []string{"newreno", "cubic", "illinois", "dctcp", "swift", "bbr", "timely"}
}

// Shared window bounds.
const (
	initialCwnd   = 10.0
	maxCwnd       = 10000.0
	minLossCwnd   = 1.0 // floor for loss/ECN-based algorithms
	initialThresh = 1e9 // "infinite" initial slow-start threshold
)

// ackSegs converts acknowledged bytes to segments with appropriate byte
// counting (RFC 3465, L=2): a giant cumulative ACK after loss recovery
// fills holes, it does not certify that the path can absorb a burst, so
// window growth per ACK is capped at two segments.
func ackSegs(a Ack) float64 {
	segs := float64(a.Bytes) / float64(a.MSS)
	if segs > 2 {
		return 2
	}
	return segs
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
