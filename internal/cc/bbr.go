package cc

import "aqueue/internal/sim"

// BBR implements a compact BBR-style controller (Cardwell et al. [12]),
// which §7 of the paper names as accommodating AQ: it estimates the
// bottleneck bandwidth from the delivery rate and the propagation RTT from
// the RTT floor, and sets cwnd to a gain times the estimated BDP. The
// probing cycle periodically raises the gain to discover new bandwidth and
// lowers it to drain the queue it created.
//
// Under AQ, the "bottleneck bandwidth" BBR converges to is the entity's
// allocated rate: limit-drops and the virtual-delay contribution to RTT
// bound the delivery rate exactly as a physical bottleneck would.
type BBR struct {
	cwnd float64

	// Delivery-rate sampling: bytes acked per sampling epoch (≈ one RTT),
	// fed into a two-bucket windowed-max filter so the bandwidth estimate
	// survives transient dips but ages out in ~one window.
	epBytes  int
	epStart  sim.Time
	bwCur    float64 // bytes per ns, max in the current half-window
	bwPrev   float64 // max in the previous half-window
	bwRotate sim.Time

	minRTT   sim.Time
	minRTTAt sim.Time
	cycleIdx int
	cycleAt  sim.Time
}

// BBR constants (simplified from the BBRv1 description).
const (
	bbrBwWindow   = 10 * sim.Millisecond  // bandwidth filter window
	bbrMinRTTWin  = 200 * sim.Millisecond // min-RTT validity window
	bbrCwndGain   = 2.0
	bbrCycleLen   = 8
	bbrProbeGain  = 1.25
	bbrDrainGain  = 0.75
	bbrMinCwndBBR = 4.0
)

// NewBBR returns a BBR controller.
func NewBBR() *BBR {
	return &BBR{cwnd: initialCwnd}
}

// Name implements Algorithm.
func (b *BBR) Name() string { return "bbr" }

// Cwnd implements Algorithm.
func (b *BBR) Cwnd() float64 { return b.cwnd }

// btlBw returns the filtered bandwidth estimate in bytes per ns.
func (b *BBR) btlBw() float64 {
	if b.bwPrev > b.bwCur {
		return b.bwPrev
	}
	return b.bwCur
}

// BtlBwGbps exposes the bandwidth estimate for tests.
func (b *BBR) BtlBwGbps() float64 { return b.btlBw() * 8 }

// OnAck implements Algorithm.
func (b *BBR) OnAck(a Ack) {
	now := a.Now
	if a.RTT > 0 && (b.minRTT == 0 || a.RTT < b.minRTT || now-b.minRTTAt > bbrMinRTTWin) {
		b.minRTT = a.RTT
		b.minRTTAt = now
	}
	// Delivery-rate sampling over ≈ one RTT epochs. A giant cumulative ACK
	// after loss recovery does not certify instantaneous delivery, so the
	// per-ACK contribution is capped (appropriate byte counting, as in the
	// window growth rules).
	counted := a.Bytes
	if max := 2 * a.MSS; counted > max {
		counted = max
	}
	b.epBytes += counted
	if b.epStart == 0 {
		b.epStart = now
	}
	epoch := b.minRTT
	if epoch < 50*sim.Microsecond {
		epoch = 50 * sim.Microsecond
	}
	if now-b.epStart >= epoch {
		rate := float64(b.epBytes) / float64(now-b.epStart)
		if rate > b.bwCur {
			b.bwCur = rate
		}
		b.epBytes = 0
		b.epStart = now
		if now-b.bwRotate >= bbrBwWindow/2 {
			b.bwPrev = b.bwCur
			b.bwCur = rate
			b.bwRotate = now
		}
	}
	bw := b.btlBw()
	if bw <= 0 || b.minRTT <= 0 {
		b.cwnd = clamp(b.cwnd+ackSegs(a), bbrMinCwndBBR, maxCwnd) // startup
		return
	}
	// Advance the probing cycle once per min RTT. In real BBR the gain
	// cycle modulates the *pacing* rate; applied to a window it would
	// periodically under-fill the pipe, so the cwnd cap stays at the
	// steady 2x BDP and probing happens through the occasional probe
	// phase only.
	if now-b.cycleAt > b.minRTT {
		b.cycleIdx = (b.cycleIdx + 1) % bbrCycleLen
		b.cycleAt = now
	}
	gain := 1.0
	if b.cycleIdx == 0 {
		gain = bbrProbeGain
	}
	bdpSegs := bw * float64(b.minRTT) / float64(a.MSS)
	b.cwnd = clamp(bbrCwndGain*gain*bdpSegs, bbrMinCwndBBR, maxCwnd)
}

// OnLoss implements Algorithm. BBR mostly ignores isolated losses; it
// relies on its model, which is what lets it coexist with AQ limit drops.
func (b *BBR) OnLoss(sim.Time) {}

// OnTimeout implements Algorithm: fall back to a conservative window and
// rebuild the model.
func (b *BBR) OnTimeout(sim.Time) {
	b.cwnd = bbrMinCwndBBR
	b.bwCur, b.bwPrev = 0, 0
}
