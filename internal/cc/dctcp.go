package cc

import "aqueue/internal/sim"

// DCTCP implements Data Center TCP [4]: the window is cut in proportion to
// the EWMA fraction alpha of ECN-marked segments, observed over one-RTT
// windows, giving a gentle multiplicative decrease that keeps the queue (or
// the A-Gap, under an ECN-type AQ) pinned near the marking threshold.
type DCTCP struct {
	cwnd     float64
	ssthresh float64

	alpha       float64 // EWMA of the marked fraction
	ackedBytes  int
	markedBytes int
	windowEnd   sim.Time
	lastRTT     sim.Time
}

// DCTCP constants (g = 1/16 per the paper).
const dctcpG = 1.0 / 16

// NewDCTCP returns a DCTCP controller. Alpha starts at 1, as in the Linux
// implementation, so the first congestion episode reacts like a Reno halve
// instead of a 1/32 nudge.
func NewDCTCP() *DCTCP {
	return &DCTCP{cwnd: initialCwnd, ssthresh: initialThresh, alpha: 1}
}

// Name implements Algorithm.
func (d *DCTCP) Name() string { return "dctcp" }

// Cwnd implements Algorithm.
func (d *DCTCP) Cwnd() float64 { return d.cwnd }

// Alpha exposes the current marked-fraction estimate for tests and reports.
func (d *DCTCP) Alpha() float64 { return d.alpha }

// OnAck implements Algorithm.
func (d *DCTCP) OnAck(a Ack) {
	if a.RTT > 0 {
		d.lastRTT = a.RTT
	}
	d.ackedBytes += a.Bytes
	if a.ECE {
		d.markedBytes += a.Bytes
		// Exit slow start promptly on the first congestion signal; the
		// per-window alpha machinery takes over from there.
		if d.cwnd < d.ssthresh {
			d.cwnd = clamp(d.cwnd*(1-d.alpha/2), minLossCwnd, maxCwnd)
			d.ssthresh = d.cwnd
		}
	}
	if d.windowEnd == 0 {
		d.windowEnd = a.Now + a.RTT
	}
	if a.Now >= d.windowEnd && d.ackedBytes > 0 {
		frac := float64(d.markedBytes) / float64(d.ackedBytes)
		d.alpha = (1-dctcpG)*d.alpha + dctcpG*frac
		if d.markedBytes > 0 {
			d.cwnd = clamp(d.cwnd*(1-d.alpha/2), minLossCwnd, maxCwnd)
			d.ssthresh = d.cwnd
		}
		d.ackedBytes, d.markedBytes = 0, 0
		rtt := d.lastRTT
		if rtt <= 0 {
			rtt = 100 * sim.Microsecond
		}
		d.windowEnd = a.Now + rtt
		return
	}
	// Growth between window cuts follows standard TCP.
	segs := ackSegs(a)
	if d.cwnd < d.ssthresh {
		d.cwnd += segs
	} else {
		d.cwnd += segs / d.cwnd
	}
	d.cwnd = clamp(d.cwnd, minLossCwnd, maxCwnd)
}

// OnLoss implements Algorithm. DCTCP falls back to Reno behaviour on loss.
func (d *DCTCP) OnLoss(sim.Time) {
	d.ssthresh = clamp(d.cwnd/2, 2, maxCwnd)
	d.cwnd = d.ssthresh
}

// OnTimeout implements Algorithm.
func (d *DCTCP) OnTimeout(sim.Time) {
	d.ssthresh = clamp(d.cwnd/2, 2, maxCwnd)
	d.cwnd = minLossCwnd
}
