package cc

import (
	"math"

	"aqueue/internal/sim"
)

// Cubic implements TCP CUBIC [22]: after a loss the window follows the
// cubic curve W(t) = C(t-K)^3 + Wmax anchored at the pre-loss maximum, with
// the standard TCP-friendliness lower bound.
type Cubic struct {
	cwnd     float64
	ssthresh float64

	wMax       float64
	epochStart sim.Time // zero means "no epoch yet"
	k          float64  // seconds to reach wMax on the cubic curve
	origin     float64
	tcpCwnd    float64 // Reno-friendly estimate
	lastRTT    sim.Time
}

// CUBIC constants from the paper/RFC 8312.
const (
	cubicC    = 0.4
	cubicBeta = 0.7
)

// NewCubic returns a CUBIC controller.
func NewCubic() *Cubic {
	return &Cubic{cwnd: initialCwnd, ssthresh: initialThresh}
}

// Name implements Algorithm.
func (c *Cubic) Name() string { return "cubic" }

// Cwnd implements Algorithm.
func (c *Cubic) Cwnd() float64 { return c.cwnd }

// OnAck implements Algorithm.
func (c *Cubic) OnAck(a Ack) {
	c.lastRTT = a.RTT
	segs := ackSegs(a)
	if c.cwnd < c.ssthresh {
		c.cwnd = clamp(c.cwnd+segs, minLossCwnd, maxCwnd)
		return
	}
	if c.epochStart == 0 {
		c.epochStart = a.Now
		if c.cwnd < c.wMax {
			c.k = math.Cbrt(c.wMax * (1 - cubicBeta) / cubicC)
			c.origin = c.wMax
		} else {
			c.k = 0
			c.origin = c.cwnd
		}
		c.tcpCwnd = c.cwnd
	}
	t := (a.Now - c.epochStart).Seconds()
	target := c.origin + cubicC*math.Pow(t-c.k, 3)
	// TCP-friendly region (RFC 8312 §4.2).
	if a.RTT > 0 {
		c.tcpCwnd += 3 * (1 - cubicBeta) / (1 + cubicBeta) * segs / c.cwnd
		if c.tcpCwnd > target {
			target = c.tcpCwnd
		}
	}
	if target > c.cwnd {
		c.cwnd += (target - c.cwnd) / c.cwnd * segs
	} else {
		c.cwnd += 0.01 * segs / c.cwnd // minimal probing
	}
	c.cwnd = clamp(c.cwnd, minLossCwnd, maxCwnd)
}

// OnLoss implements Algorithm.
func (c *Cubic) OnLoss(sim.Time) {
	c.epochStart = 0
	c.wMax = c.cwnd
	c.cwnd = clamp(c.cwnd*cubicBeta, minLossCwnd, maxCwnd)
	c.ssthresh = c.cwnd
}

// OnTimeout implements Algorithm.
func (c *Cubic) OnTimeout(sim.Time) {
	c.epochStart = 0
	c.wMax = c.cwnd
	c.ssthresh = clamp(c.cwnd*cubicBeta, 2, maxCwnd)
	c.cwnd = minLossCwnd
}
