package cc

import (
	"testing"
	"testing/quick"

	"aqueue/internal/sim"
)

const mss = 1000

func ackAt(now sim.Time, rtt sim.Time) Ack {
	return Ack{Now: now, RTT: rtt, Delay: 0, Bytes: mss, MSS: mss}
}

func all() []Factory {
	return []Factory{
		func() Algorithm { return NewNewReno() },
		func() Algorithm { return NewCubic() },
		func() Algorithm { return NewIllinois() },
		func() Algorithm { return NewDCTCP() },
		func() Algorithm { return NewSwift() },
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"newreno", "cubic", "illinois", "dctcp", "swift"} {
		f := ByName(name)
		if f == nil {
			t.Fatalf("ByName(%q) = nil", name)
		}
		if got := f().Name(); got != name {
			t.Fatalf("ByName(%q)().Name() = %q", name, got)
		}
	}
	if ByName("hpcc") != nil {
		t.Fatal("unknown name returned a factory")
	}
}

func TestSlowStartDoublesPerRTT(t *testing.T) {
	// Loss-based algorithms in slow start add one segment per acked
	// segment: acking a full window doubles it.
	for _, f := range []Factory{
		func() Algorithm { return NewNewReno() },
		func() Algorithm { return NewCubic() },
		func() Algorithm { return NewIllinois() },
	} {
		a := f()
		w0 := a.Cwnd()
		for i := 0; i < int(w0); i++ {
			a.OnAck(ackAt(sim.Time(i)*1000, 100*sim.Microsecond))
		}
		if got := a.Cwnd(); got < 2*w0-0.01 {
			t.Errorf("%s: cwnd after acking one window = %v, want ~%v", a.Name(), got, 2*w0)
		}
	}
}

func TestLossReducesWindow(t *testing.T) {
	for _, f := range all() {
		a := f()
		// Grow a bit first.
		for i := 0; i < 100; i++ {
			a.OnAck(ackAt(sim.Time(i)*100000, 100*sim.Microsecond))
		}
		before := a.Cwnd()
		a.OnLoss(sim.Time(100) * sim.Millisecond)
		if a.Cwnd() >= before {
			t.Errorf("%s: cwnd did not shrink on loss (%v -> %v)", a.Name(), before, a.Cwnd())
		}
	}
}

func TestTimeoutCollapsesLossBased(t *testing.T) {
	for _, f := range []Factory{
		func() Algorithm { return NewNewReno() },
		func() Algorithm { return NewCubic() },
		func() Algorithm { return NewIllinois() },
		func() Algorithm { return NewDCTCP() },
	} {
		a := f()
		for i := 0; i < 50; i++ {
			a.OnAck(ackAt(sim.Time(i)*100000, 100*sim.Microsecond))
		}
		a.OnTimeout(sim.Time(10) * sim.Millisecond)
		if a.Cwnd() != minLossCwnd {
			t.Errorf("%s: cwnd after timeout = %v, want %v", a.Name(), a.Cwnd(), minLossCwnd)
		}
	}
}

func TestCwndAlwaysPositiveAndBounded(t *testing.T) {
	// Property: any interleaving of acks/losses/timeouts keeps the window
	// within (0, maxCwnd].
	f := func(ops []uint8) bool {
		for _, fac := range all() {
			a := fac()
			now := sim.Time(0)
			for _, op := range ops {
				now += sim.Time(op) * sim.Microsecond
				switch op % 5 {
				case 0, 1, 2:
					a.OnAck(Ack{Now: now, RTT: 100 * sim.Microsecond,
						Delay: sim.Time(op) * sim.Microsecond, ECE: op%2 == 0,
						Bytes: mss, MSS: mss})
				case 3:
					a.OnLoss(now)
				case 4:
					a.OnTimeout(now)
				}
				w := a.Cwnd()
				if w <= 0 || w > maxCwnd {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCubicRecoversTowardWmax(t *testing.T) {
	c := NewCubic()
	// Enter congestion avoidance at a known window.
	c.cwnd, c.ssthresh = 100, 50
	c.OnLoss(0)
	wAfterLoss := c.Cwnd()
	if wAfterLoss >= 100*cubicBeta+1 || wAfterLoss <= 100*cubicBeta-1 {
		t.Fatalf("post-loss cwnd = %v, want ~%v", wAfterLoss, 100*cubicBeta)
	}
	// Feed acks over time; the cubic curve should approach wMax=100.
	now := sim.Time(0)
	for i := 0; i < 5000; i++ {
		now += 100 * sim.Microsecond
		c.OnAck(ackAt(now, 100*sim.Microsecond))
	}
	if c.Cwnd() < 95 {
		t.Fatalf("cwnd = %v after long recovery, want to approach 100", c.Cwnd())
	}
}

func TestDCTCPAlphaTracksMarkingRate(t *testing.T) {
	d := NewDCTCP()
	d.cwnd, d.ssthresh = 50, 1 // force congestion avoidance
	now := sim.Time(0)
	rtt := 100 * sim.Microsecond
	// 100% marking drives alpha toward 1.
	for i := 0; i < 3000; i++ {
		now += 10 * sim.Microsecond
		d.OnAck(Ack{Now: now, RTT: rtt, ECE: true, Bytes: mss, MSS: mss})
	}
	if d.Alpha() < 0.9 {
		t.Fatalf("alpha = %v under full marking, want ~1", d.Alpha())
	}
	// No marking decays alpha toward 0.
	for i := 0; i < 3000; i++ {
		now += 10 * sim.Microsecond
		d.OnAck(Ack{Now: now, RTT: rtt, ECE: false, Bytes: mss, MSS: mss})
	}
	if d.Alpha() > 0.05 {
		t.Fatalf("alpha = %v with no marking, want ~0", d.Alpha())
	}
}

func TestDCTCPGentlerThanRenoAtLowAlpha(t *testing.T) {
	d := NewDCTCP()
	d.cwnd, d.ssthresh = 100, 1
	d.alpha = 0.1
	now := sim.Time(0)
	rtt := 100 * sim.Microsecond
	// One marked window should cut by roughly alpha/2 = 5%, not 50%.
	d.windowEnd = 1 // force the window boundary on the next ack
	d.markedBytes = mss
	d.ackedBytes = mss * 10
	d.OnAck(Ack{Now: now + rtt, RTT: rtt, ECE: true, Bytes: mss, MSS: mss})
	if d.Cwnd() < 90 {
		t.Fatalf("cwnd = %v after low-alpha mark, want a gentle cut", d.Cwnd())
	}
}

func TestSwiftDecreasesAboveTarget(t *testing.T) {
	s := NewSwiftTarget(50 * sim.Microsecond)
	s.cwnd = 100
	now := sim.Time(sim.Second)
	s.OnAck(Ack{Now: now, RTT: 100 * sim.Microsecond,
		Delay: 100 * sim.Microsecond, Bytes: mss, MSS: mss})
	if s.Cwnd() >= 100 {
		t.Fatalf("cwnd = %v with delay above target, want decrease", s.Cwnd())
	}
	// Decrease is gated to once per RTT.
	w := s.Cwnd()
	s.OnAck(Ack{Now: now + 1, RTT: 100 * sim.Microsecond,
		Delay: 200 * sim.Microsecond, Bytes: mss, MSS: mss})
	if s.Cwnd() != w {
		t.Fatalf("second decrease within one RTT (%v -> %v)", w, s.Cwnd())
	}
}

func TestSwiftGrowsBelowTarget(t *testing.T) {
	s := NewSwiftTarget(50 * sim.Microsecond)
	w0 := s.Cwnd()
	s.OnAck(Ack{Now: 1000, RTT: 40 * sim.Microsecond,
		Delay: 10 * sim.Microsecond, Bytes: mss, MSS: mss})
	if s.Cwnd() <= w0 {
		t.Fatalf("cwnd did not grow below target (%v -> %v)", w0, s.Cwnd())
	}
}

func TestSwiftSupportsFractionalWindow(t *testing.T) {
	s := NewSwiftTarget(50 * sim.Microsecond)
	now := sim.Time(0)
	for i := 0; i < 200; i++ {
		now += sim.Millisecond
		s.OnAck(Ack{Now: now, RTT: 100 * sim.Microsecond,
			Delay: sim.Millisecond, Bytes: mss, MSS: mss})
	}
	if s.Cwnd() >= 1 {
		t.Fatalf("cwnd = %v under persistent overload, want < 1", s.Cwnd())
	}
	if s.Cwnd() < swiftMinCwnd {
		t.Fatalf("cwnd = %v below the Swift floor", s.Cwnd())
	}
}

func TestIllinoisAlphaAdaptsToDelay(t *testing.T) {
	il := NewIllinois()
	il.cwnd, il.ssthresh = 10, 1
	// Establish base and max RTT: low delay keeps alpha at max.
	now := sim.Time(0)
	for i := 0; i < 100; i++ {
		now += 10 * sim.Microsecond
		rtt := 100 * sim.Microsecond
		if i == 0 {
			rtt = 500 * sim.Microsecond // one spike defines dm
		}
		il.OnAck(Ack{Now: now, RTT: rtt, Bytes: mss, MSS: mss})
	}
	if il.alpha < ilAlphaMax-0.5 {
		t.Fatalf("alpha = %v at low delay, want ~%v", il.alpha, ilAlphaMax)
	}
	// Sustained high delay shrinks alpha and raises beta.
	for i := 0; i < 200; i++ {
		now += 10 * sim.Microsecond
		il.OnAck(Ack{Now: now, RTT: 480 * sim.Microsecond, Bytes: mss, MSS: mss})
	}
	if il.alpha > 1.0 {
		t.Fatalf("alpha = %v at high delay, want small", il.alpha)
	}
	if il.beta < ilBetaMax-0.01 {
		t.Fatalf("beta = %v at high delay, want ~%v", il.beta, ilBetaMax)
	}
}
