package cc

import "aqueue/internal/sim"

// Illinois implements TCP-Illinois [40]: a loss-based algorithm whose
// additive-increase factor alpha shrinks and multiplicative-decrease factor
// beta grows with the average queueing delay, making it aggressive when the
// path looks empty and gentle near congestion.
type Illinois struct {
	cwnd     float64
	ssthresh float64

	baseRTT sim.Time // minimum observed RTT
	maxRTT  sim.Time // maximum observed RTT
	sumRTT  sim.Time
	cntRTT  int
	alpha   float64
	beta    float64
}

// Illinois constants (from the paper's recommended setting).
const (
	ilAlphaMin = 0.3
	ilAlphaMax = 10.0
	ilBetaMin  = 0.125
	ilBetaMax  = 0.5
)

// NewIllinois returns a TCP-Illinois controller.
func NewIllinois() *Illinois {
	return &Illinois{cwnd: initialCwnd, ssthresh: initialThresh, alpha: ilAlphaMax, beta: ilBetaMin}
}

// Name implements Algorithm.
func (il *Illinois) Name() string { return "illinois" }

// Cwnd implements Algorithm.
func (il *Illinois) Cwnd() float64 { return il.cwnd }

// OnAck implements Algorithm.
func (il *Illinois) OnAck(a Ack) {
	if a.RTT > 0 {
		if il.baseRTT == 0 || a.RTT < il.baseRTT {
			il.baseRTT = a.RTT
		}
		if a.RTT > il.maxRTT {
			il.maxRTT = a.RTT
		}
		il.sumRTT += a.RTT
		il.cntRTT++
		if il.cntRTT >= int(il.cwnd) && il.cntRTT > 0 {
			il.updateParams()
			il.sumRTT, il.cntRTT = 0, 0
		}
	}
	segs := ackSegs(a)
	if il.cwnd < il.ssthresh {
		il.cwnd += segs
	} else {
		il.cwnd += il.alpha * segs / il.cwnd
	}
	il.cwnd = clamp(il.cwnd, minLossCwnd, maxCwnd)
}

// updateParams recomputes alpha and beta from the average queueing delay,
// following the piecewise curves of the Illinois paper.
func (il *Illinois) updateParams() {
	if il.cntRTT == 0 || il.maxRTT <= il.baseRTT {
		il.alpha, il.beta = ilAlphaMax, ilBetaMin
		return
	}
	avg := il.sumRTT / sim.Time(il.cntRTT)
	da := float64(avg - il.baseRTT)       // current average queueing delay
	dm := float64(il.maxRTT - il.baseRTT) // maximum queueing delay seen
	d1 := 0.01 * dm                       // low-delay knee
	if da <= d1 {
		il.alpha = ilAlphaMax
	} else {
		// alpha = k1/(k2+da) calibrated so alpha(d1)=alphaMax, alpha(dm)=alphaMin.
		k2 := dm*(ilAlphaMin/ilAlphaMax) - d1
		if k2 <= -d1 {
			il.alpha = ilAlphaMin
		} else {
			k1 := ilAlphaMax * (k2 + d1)
			il.alpha = clamp(k1/(k2+da), ilAlphaMin, ilAlphaMax)
		}
	}
	// beta grows linearly from betaMin at 0.1*dm to betaMax at 0.8*dm.
	d2, d3 := 0.1*dm, 0.8*dm
	switch {
	case da <= d2:
		il.beta = ilBetaMin
	case da >= d3:
		il.beta = ilBetaMax
	default:
		il.beta = ilBetaMin + (ilBetaMax-ilBetaMin)*(da-d2)/(d3-d2)
	}
}

// OnLoss implements Algorithm.
func (il *Illinois) OnLoss(sim.Time) {
	il.ssthresh = clamp(il.cwnd*(1-il.beta), 2, maxCwnd)
	il.cwnd = il.ssthresh
}

// OnTimeout implements Algorithm.
func (il *Illinois) OnTimeout(sim.Time) {
	il.ssthresh = clamp(il.cwnd/2, 2, maxCwnd)
	il.cwnd = minLossCwnd
	il.alpha, il.beta = ilAlphaMax, ilBetaMin
}
