package packet

import (
	"strings"
	"testing"
)

func TestNewData(t *testing.T) {
	p := NewData(1, 2, 7, 3000, 1000)
	if p.Kind != Data {
		t.Fatal("kind")
	}
	if p.Size != 1000+HeaderBytes {
		t.Fatalf("size = %d", p.Size)
	}
	if p.Seq != 3000 || p.Payload != 1000 {
		t.Fatalf("seq/payload = %d/%d", p.Seq, p.Payload)
	}
	if p.Src != 1 || p.Dst != 2 || p.Flow != 7 {
		t.Fatal("addressing")
	}
	if p.IngressAQ != NoAQ || p.EgressAQ != NoAQ {
		t.Fatal("fresh packets must carry the default AQ tags")
	}
}

func TestNewAck(t *testing.T) {
	p := NewAck(2, 1, 7, 5000)
	if p.Kind != Ack {
		t.Fatal("kind")
	}
	if p.Size != HeaderBytes {
		t.Fatalf("ACK size = %d", p.Size)
	}
	if p.Ack != 5000 {
		t.Fatalf("ack = %d", p.Ack)
	}
}

func TestString(t *testing.T) {
	d := NewData(1, 2, 7, 0, 1000)
	if !strings.Contains(d.String(), "DATA") {
		t.Fatalf("String() = %q", d.String())
	}
	a := NewAck(2, 1, 7, 5000)
	if !strings.Contains(a.String(), "ACK") || !strings.Contains(a.String(), "5000") {
		t.Fatalf("String() = %q", a.String())
	}
}
