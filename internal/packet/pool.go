package packet

import (
	"sync"
	"sync/atomic"
)

// Steady-state forwarding must not allocate: every data segment and ACK
// comes out of a process-wide sync.Pool and goes back the moment its owner
// is done with it. Ownership is linear — a packet belongs to exactly one
// component at a time (sender → queue → wire → receiver), and whichever
// component terminates that chain (a drop site or the delivering host)
// calls Release. See DESIGN.md "Hot-path architecture" for the ownership
// rules.
//
// A process-wide pool (rather than an engine-scoped free list) keeps the
// parallel experiment harness simple: engines on different goroutines
// share the pool safely, and because a recycled packet is fully zeroed
// before reuse, run results stay byte-identical whether a packet's memory
// is fresh or reused — the pooled-vs-unpooled fingerprint test holds the
// simulator to that.
var pool = sync.Pool{New: func() any { return new(Packet) }}

// pooling gates the allocator; the lifecycle tests flip it to compare
// pooled and unpooled runs.
var pooling atomic.Bool

func init() { pooling.Store(true) }

// SetPooling enables or disables packet reuse (it is on by default).
// Disabling is only meant for A/B determinism tests and debugging: Get
// falls back to the garbage collector and Release becomes a no-op.
func SetPooling(on bool) { pooling.Store(on) }

// PoolingEnabled reports whether packets are being reused.
func PoolingEnabled() bool { return pooling.Load() }

// Get returns a zeroed packet from the pool. Prefer NewData/NewAck, which
// also fill in the common header fields.
func Get() *Packet {
	if !pooling.Load() {
		return new(Packet)
	}
	p := pool.Get().(*Packet)
	*p = Packet{}
	debugAcquire(p)
	return p
}

// Release returns a packet to the pool. Only the packet's current owner —
// the component the linear ownership chain ended at — may call it, exactly
// once, and must not touch the packet afterwards. Under `-tags aqdebug`
// the packet is poisoned on release and a double release panics.
func Release(p *Packet) {
	if p == nil || !pooling.Load() {
		return
	}
	debugRelease(p)
	pool.Put(p)
}
