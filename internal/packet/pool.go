package packet

import (
	"sync"

	"aqueue/internal/sim"
)

// Steady-state forwarding must not allocate: every data segment and ACK
// comes out of a process-wide sync.Pool and goes back the moment its owner
// is done with it. Ownership is linear — a packet belongs to exactly one
// component at a time (sender → queue → wire → receiver), and whichever
// component terminates that chain (a drop site or the delivering host)
// calls Release. See DESIGN.md "Hot-path architecture" for the ownership
// rules.
//
// A process-wide pool (rather than an engine-scoped free list) keeps the
// parallel experiment harness simple: engines on different goroutines
// share the pool safely, and because a recycled packet is fully zeroed
// before reuse, run results stay byte-identical whether a packet's memory
// is fresh or reused — the pooled-vs-unpooled fingerprint test holds the
// simulator to that.
var pool = sync.Pool{New: func() any { return new(Packet) }}

// Get returns a zeroed packet from the pool. Prefer NewData/NewAck, which
// also fill in the common header fields. Engine-bound components should
// use their engine's Pool, which fixes the pooling choice at engine
// construction (sim.WithPooling) — that is the only way to disable reuse;
// the package-level form always recycles.
func Get() *Packet {
	p := pool.Get().(*Packet)
	*p = Packet{}
	debugAcquire(p)
	return p
}

// Release returns a packet to the pool. Only the packet's current owner —
// the component the linear ownership chain ended at — may call it, exactly
// once, and must not touch the packet afterwards. Under `-tags aqdebug`
// the packet is poisoned on release and a double release panics.
func Release(p *Packet) {
	if p == nil {
		return
	}
	debugRelease(p)
	pool.Put(p)
}

// maxEngineFree caps an engine-local free list; the overflow spills to the
// shared sync.Pool. A single-bottleneck run keeps a few hundred packets in
// flight, so the cap is generous without pinning unbounded memory per
// engine.
const maxEngineFree = 4096

// Pool is an engine-local packet free list layered over the shared
// sync.Pool. The simulator is single-goroutine per engine, so the list
// needs no locking, and parallel harness workers recycling through their
// own engine's Pool never contend on — or bounce cache lines through — the
// process-wide pool; the sync.Pool is only the spill/refill tier. A Pool
// honours its engine's Pooling option and the aqdebug poisoning exactly
// like the package Get/Release, and packets are fully zeroed on reuse
// either way, so which tier served an allocation is unobservable in
// results.
type Pool struct {
	free []*Packet
	// enabled is the engine's Pooling option, cached so the hot path pays
	// no atomic load: the choice is fixed for the life of the engine.
	enabled bool
}

// PoolFor returns the engine's packet free list, creating it on first use.
// It is stored in the engine's opaque pool slot, so components built on the
// same engine share one list; whether it recycles at all is the engine's
// Pooling option.
func PoolFor(e *sim.Engine) *Pool {
	slot := e.PacketPoolSlot()
	if p, ok := (*slot).(*Pool); ok {
		return p
	}
	p := &Pool{enabled: e.Options().Pooling}
	*slot = p
	return p
}

// Get returns a zeroed packet, preferring the engine-local free list.
func (pl *Pool) Get() *Packet {
	if !pl.enabled {
		return new(Packet)
	}
	if n := len(pl.free); n > 0 {
		p := pl.free[n-1]
		pl.free[n-1] = nil
		pl.free = pl.free[:n-1]
		*p = Packet{}
		debugAcquire(p)
		return p
	}
	p := pool.Get().(*Packet)
	*p = Packet{}
	debugAcquire(p)
	return p
}

// Release returns a packet to the engine-local free list (spilling to the
// shared pool past the cap). Same ownership contract as the package-level
// Release.
func (pl *Pool) Release(p *Packet) {
	if p == nil || !pl.enabled {
		return
	}
	debugRelease(p)
	if len(pl.free) < maxEngineFree {
		pl.free = append(pl.free, p)
		return
	}
	pool.Put(p)
}

// Drain spills the whole free list to the shared pool. The engine calls it
// (via interface assertion — sim cannot import packet) when RunUntil
// returns, so packets recycled during a run outlive their engine and the
// next run starts from a warm shared pool instead of the allocator.
func (pl *Pool) Drain() {
	for i, p := range pl.free {
		pool.Put(p)
		pl.free[i] = nil
	}
	pl.free = pl.free[:0]
}

// NewData allocates a data segment from this pool; see the package-level
// NewData for field semantics.
func (pl *Pool) NewData(src, dst HostID, flow FlowID, seq int64, payload int) *Packet {
	p := pl.Get()
	fillData(p, src, dst, flow, seq, payload)
	return p
}

// NewAck allocates an ACK from this pool; see the package-level NewAck.
func (pl *Pool) NewAck(src, dst HostID, flow FlowID, cumAck int64) *Packet {
	p := pl.Get()
	fillAck(p, src, dst, flow, cumAck)
	return p
}
