//go:build aqdebug

package packet

import "testing"

// TestReleasePoisons asserts the debug mode's core property: a released
// packet is unreadable — its fields carry the poison pattern until the
// pool hands it out again (zeroed).
func TestReleasePoisons(t *testing.T) {
	p := NewData(1, 2, 3, 4096, 1000)
	Release(p)
	if !Poisoned(p) {
		t.Fatalf("released packet not poisoned: %+v", *p)
	}
	if p.Size > 0 {
		t.Fatal("released packet still has a plausible size")
	}
}

// TestDoubleReleasePanics asserts the second Release of the same packet is
// caught rather than silently corrupting the pool.
func TestDoubleReleasePanics(t *testing.T) {
	p := NewAck(1, 2, 3, 100)
	Release(p)
	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
		// Drain the poisoned packet so later tests get a clean pool entry.
		q := Get()
		Release(q)
	}()
	Release(p)
}
