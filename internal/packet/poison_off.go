//go:build !aqdebug

package packet

// DebugPool reports whether the aqdebug lifecycle instrumentation is
// compiled in.
const DebugPool = false

// In release builds the lifecycle hooks compile to nothing.
func debugAcquire(*Packet) {}
func debugRelease(*Packet) {}
