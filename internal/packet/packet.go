// Package packet defines the on-the-wire unit the simulator moves around.
//
// A Packet carries the fields a real data-center header stack would: L2/L3
// addressing (collapsed to host IDs), a transport flow ID with sequence and
// acknowledgement numbers, the two ECN bits, and — per §4.1 of the paper —
// the two AQ ID tags (one matched at the ingress pipeline, one at the
// egress pipeline) plus the piggybacked virtual queuing delay AQ accumulates
// for delay-based congestion control (§3.3.2).
package packet

import (
	"fmt"

	"aqueue/internal/sim"
)

// HostID identifies an end host (a VM in the paper's terminology).
type HostID int32

// FlowID identifies a transport flow end to end.
type FlowID uint64

// AQID identifies an augmented queue. The zero value is the default tag
// meaning "no AQ deployed at this position" (§4.1: "The field is set to a
// default value if there is no AQ deployed at either position").
type AQID uint32

// NoAQ is the default AQ tag.
const NoAQ AQID = 0

// Kind distinguishes the transport payload types the simulator models.
type Kind uint8

const (
	// Data is a transport data segment.
	Data Kind = iota
	// Ack is a transport acknowledgement.
	Ack
)

// Default sizes in bytes. MSS-sized data packets plus a fixed header; ACKs
// are header-only. The values mirror common NS3 DC configurations.
const (
	HeaderBytes  = 40
	DefaultMSS   = 1000
	MaxDataBytes = DefaultMSS + HeaderBytes
)

// Packet is one simulated packet. Packets are pool-allocated (see pool.go)
// and owned by exactly one component at a time (queue, wire, or endpoint),
// so no copying or locking is needed; the owner that terminates the chain
// — a drop site or the delivering host — releases it back to the pool.
type Packet struct {
	Src, Dst HostID
	Flow     FlowID
	Kind     Kind
	Size     int // bytes on the wire, including header

	// Transport fields.
	Seq     int64 // first payload byte of a Data segment
	Ack     int64 // cumulative ACK (valid when Kind == Ack)
	Payload int   // payload bytes of a Data segment
	// EchoSeq, on an ACK, is the sequence number of the data segment that
	// triggered it — a one-block SACK that lets the sender run FACK-style
	// loss recovery.
	EchoSeq int64

	// ECN: CE is the congestion-experienced codepoint set by queues/AQs;
	// EcnCapable gates marking (UDP entities in the experiments are not
	// ECN-capable, so AQ drops their excess instead); EcnEcho is the
	// receiver's echo carried on ACKs.
	EcnCapable bool
	CE         bool
	EcnEcho    bool

	// AQ tags matched by switches (§4.2). Tenants tag data packets; ACKs
	// carry NoAQ and bypass AQ processing.
	IngressAQ AQID
	EgressAQ  AQID

	// VirtualDelay is the accumulated virtual queuing delay A(k)/R stamped
	// by delay-type AQs along the path; the receiver echoes it back on the
	// ACK in EchoVirtualDelay so the sender's delay-based CC can use it.
	VirtualDelay     sim.Time
	EchoVirtualDelay sim.Time

	// QueueDelay is the accumulated physical queuing delay the packet
	// experienced (stamped at each dequeue), standing in for the NIC
	// hardware timestamps Swift-class algorithms use to measure fabric
	// delay. The receiver echoes the data packet's value in
	// EchoQueueDelay.
	QueueDelay     sim.Time
	EchoQueueDelay sim.Time

	// Timestamps. SentAt is set by the sender and echoed on the ACK in
	// EchoSentAt for RTT measurement; EnqueuedAt is bookkeeping for
	// physical-queue delay statistics.
	SentAt     sim.Time
	EchoSentAt sim.Time
	EnqueuedAt sim.Time

	// Retransmission marker, used by transport accounting and tests.
	Retransmit bool
}

// NewData builds an MSS-or-smaller data segment. The packet comes from the
// pool; whoever ends its ownership chain must call Release.
func NewData(src, dst HostID, flow FlowID, seq int64, payload int) *Packet {
	p := Get()
	fillData(p, src, dst, flow, seq, payload)
	return p
}

func fillData(p *Packet, src, dst HostID, flow FlowID, seq int64, payload int) {
	p.Src = src
	p.Dst = dst
	p.Flow = flow
	p.Kind = Data
	p.Size = payload + HeaderBytes
	p.Seq = seq
	p.Payload = payload
}

// NewAck builds a header-only acknowledgement for the given flow. The
// packet comes from the pool; whoever ends its ownership chain must call
// Release.
func NewAck(src, dst HostID, flow FlowID, ack int64) *Packet {
	p := Get()
	fillAck(p, src, dst, flow, ack)
	return p
}

func fillAck(p *Packet, src, dst HostID, flow FlowID, ack int64) {
	p.Src = src
	p.Dst = dst
	p.Flow = flow
	p.Kind = Ack
	p.Size = HeaderBytes
	p.Ack = ack
}

// String renders a compact description for logs and test failures.
func (p *Packet) String() string {
	k := "DATA"
	if p.Kind == Ack {
		k = "ACK"
	}
	return fmt.Sprintf("%s %d->%d flow=%d seq=%d ack=%d size=%d ce=%v aq=(%d,%d)",
		k, p.Src, p.Dst, p.Flow, p.Seq, p.Ack, p.Size, p.CE, p.IngressAQ, p.EgressAQ)
}
