package packet

import (
	"sync"
	"testing"

	"aqueue/internal/sim"
)

func TestGetReturnsZeroedPacket(t *testing.T) {
	p := NewData(1, 2, 3, 4096, 1000)
	p.CE = true
	p.VirtualDelay = 123
	Release(p)
	q := Get()
	if *q != (Packet{}) {
		t.Fatalf("pooled packet not zeroed: %+v", *q)
	}
	Release(q)
}

func TestReleaseNilIsNoop(t *testing.T) {
	Release(nil)
}

// TestEnginePoolFixedAtConstruction pins the options-first contract: an
// engine built with WithPooling(false) gets a Pool that never recycles —
// the engine option is the only pooling switch left in the system.
func TestEnginePoolFixedAtConstruction(t *testing.T) {
	e := sim.NewEngine(sim.WithPooling(false))
	pl := PoolFor(e)
	p := pl.NewData(1, 2, 3, 0, 1000)
	pl.Release(p)
	if p.Size != 1000+HeaderBytes {
		t.Fatal("unpooled engine Pool mutated a released packet")
	}
	q := pl.Get()
	if q == p {
		t.Fatal("unpooled engine Pool recycled a packet")
	}
}

// TestPoolConcurrentChurn hammers the pool from many goroutines under
// -race: the parallel experiment harness shares it across engines.
func TestPoolConcurrentChurn(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				p := NewData(HostID(g), 1, FlowID(i), int64(i), 1000)
				if p.Seq != int64(i) || p.Payload != 1000 {
					panic("packet fields corrupted")
				}
				a := NewAck(1, HostID(g), FlowID(i), int64(i))
				Release(p)
				if a.Ack != int64(i) {
					panic("ack fields corrupted")
				}
				Release(a)
			}
		}(g)
	}
	wg.Wait()
}
