//go:build aqdebug

package packet

import (
	"fmt"
	"sync"

	"aqueue/internal/sim"
)

// DebugPool reports whether the aqdebug lifecycle instrumentation is
// compiled in. Build with `go test -tags aqdebug` to enable it.
const DebugPool = true

// Poison values written into a released packet. Any component that reads a
// packet after releasing it sees these instead of plausible data, so the
// bug surfaces as an absurd size/sequence rather than a silent corruption.
const (
	PoisonSize = -0x5EAD
	PoisonSeq  = -0x5EADBEEF
)

// released tracks packets currently sitting in the pool, to catch double
// releases. A sync.Map because engines on different goroutines share the
// pool.
var released sync.Map

func debugAcquire(p *Packet) {
	released.Delete(p)
}

func debugRelease(p *Packet) {
	if _, dup := released.LoadOrStore(p, struct{}{}); dup {
		panic(fmt.Sprintf("packet: double release of %p", p))
	}
	*p = Packet{
		Src: -1, Dst: -1,
		Flow:   ^FlowID(0),
		Kind:   Kind(0xFF),
		Size:   PoisonSize,
		Seq:    PoisonSeq,
		Ack:    PoisonSeq,
		SentAt: sim.Time(PoisonSeq),
	}
}

// Poisoned reports whether p carries the release-time poison pattern, i.e.
// it was released and not reacquired. Test helper.
func Poisoned(p *Packet) bool {
	return p.Size == PoisonSize && p.Seq == PoisonSeq
}
