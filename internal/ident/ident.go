// Package ident provides compact dense ID allocation and the density
// heuristic the data plane uses to choose between direct-indexed slice
// tables and map fallbacks.
//
// The paper's hardware design (§4.2) matches AQ tags against
// direct-indexed register arrays; the simulator gets the same effect only
// when IDs are small and contiguous. Topology builders and experiments
// already number hosts and AQs from zero upward — an Allocator makes that
// an invariant instead of a convention, and Dense decides, per table, when
// the invariant holds well enough to pay for a flat slice.
package ident

// Allocator hands out consecutive IDs starting at a base. It is not
// safe for concurrent use; allocate during topology construction, which is
// single-threaded per engine by design.
type Allocator struct {
	base uint64
	next uint64
}

// NewAllocator returns an allocator whose first ID is base. AQ allocators
// use base 1 because AQID 0 is the reserved NoAQ tag; host allocators use
// base 0.
func NewAllocator(base uint64) *Allocator {
	return &Allocator{base: base, next: base}
}

// Next returns the next dense ID.
func (a *Allocator) Next() uint64 {
	id := a.next
	a.next++
	return id
}

// Count reports how many IDs have been handed out.
func (a *Allocator) Count() int { return int(a.next - a.base) }

// DenseSlack is the fixed slice-length floor Dense tolerates regardless of
// live-entry count, so small tables (a handful of AQs numbered 1..4, a
// rack of 64 hosts) always qualify.
const DenseSlack = 64

// Dense reports whether a direct-indexed slice over [0, maxID] is an
// acceptable layout for count live IDs. The rule: the slice may be at most
// 4x the live entries plus DenseSlack — beyond that the wasted memory and
// cache footprint of the empty slots outweigh the saved hash.
func Dense(maxID int, count int) bool {
	if count <= 0 || maxID < 0 {
		return false
	}
	return maxID+1 <= 4*count+DenseSlack
}
