package ident

import "testing"

func TestAllocatorDense(t *testing.T) {
	a := NewAllocator(1)
	for want := uint64(1); want <= 100; want++ {
		if got := a.Next(); got != want {
			t.Fatalf("Next() = %d, want %d", got, want)
		}
	}
	if a.Count() != 100 {
		t.Fatalf("Count() = %d, want 100", a.Count())
	}
	b := NewAllocator(0)
	if got := b.Next(); got != 0 {
		t.Fatalf("base-0 Next() = %d, want 0", got)
	}
}

func TestDenseHeuristic(t *testing.T) {
	cases := []struct {
		maxID, count int
		want         bool
	}{
		{0, 0, false},       // empty table: nothing to index
		{-1, 5, false},      // no IDs seen
		{4, 4, true},        // AQs 1..4
		{63, 1, true},       // within the fixed slack
		{64, 1, true},       // 4*1+64 = 68 >= 65
		{1000, 2, false},    // sparse: two AQs at high IDs
		{4095, 1024, true},  // exactly 4x
		{4159, 1024, true},  // 4x + slack boundary: maxID+1 == 4*count+64
		{4160, 1024, false}, // just past it
		{1 << 20, 1 << 18, true},
		{1 << 20, 100, false},
	}
	for _, c := range cases {
		if got := Dense(c.maxID, c.count); got != c.want {
			t.Errorf("Dense(%d, %d) = %v, want %v", c.maxID, c.count, got, c.want)
		}
	}
}
