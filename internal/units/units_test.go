package units

import (
	"testing"
	"testing/quick"
)

func TestBytesPerNano(t *testing.T) {
	// 10 Gbps = 10e9 bits/s = 1.25e9 bytes/s = 1.25 bytes/ns.
	if got := (10 * Gbps).BytesPerNano(); got != 1.25 {
		t.Fatalf("10Gbps BytesPerNano = %v, want 1.25", got)
	}
	if got := (8 * BitPerSecond).BytesPerNano(); got != 1e-9 {
		t.Fatalf("8bps BytesPerNano = %v, want 1e-9", got)
	}
}

func TestTransmitNanos(t *testing.T) {
	// 1500 bytes at 10 Gbps: 12000 bits / 10e9 bps = 1.2us = 1200ns.
	if got := (10 * Gbps).TransmitNanos(1500); got != 1200 {
		t.Fatalf("1500B@10G = %dns, want 1200", got)
	}
	// 1 byte at 1 Gbps = 8ns exactly.
	if got := (1 * Gbps).TransmitNanos(1); got != 8 {
		t.Fatalf("1B@1G = %dns, want 8", got)
	}
	// Rounds up: 1 byte at 3 Gbps = 2.66..ns -> 3ns.
	if got := (3 * Gbps).TransmitNanos(1); got != 3 {
		t.Fatalf("1B@3G = %dns, want 3", got)
	}
	if got := BitRate(0).TransmitNanos(100); got != 0 {
		t.Fatalf("zero rate transmit = %d, want 0", got)
	}
	if got := (1 * Gbps).TransmitNanos(0); got != 0 {
		t.Fatalf("zero size transmit = %d, want 0", got)
	}
}

func TestTransmitNanosNeverUnderestimates(t *testing.T) {
	// Property: the reported serialization time is always enough to carry
	// the packet at the stated rate (no early finish).
	f := func(size uint16, rateMbps uint16) bool {
		if size == 0 || rateMbps == 0 {
			return true
		}
		r := BitRate(rateMbps) * Mbps
		ns := r.TransmitNanos(int(size))
		carried := float64(ns) * r.BytesPerNano()
		return carried >= float64(size)-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestBitRateString(t *testing.T) {
	cases := map[BitRate]string{
		10 * Gbps:  "10Gbps",
		2.5 * Gbps: "2.5Gbps",
		100 * Mbps: "100Mbps",
		1 * Kbps:   "1Kbps",
		512:        "512bps",
		1 * Tbps:   "1Tbps",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", float64(in), got, want)
		}
	}
}
