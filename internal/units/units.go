// Package units defines the physical quantities used throughout the
// simulator: bit rates, byte sizes and the conversions between them and
// simulated time. Keeping the conversions in one place avoids the classic
// bits-vs-bytes and seconds-vs-nanoseconds mistakes in rate arithmetic.
package units

import "fmt"

// BitRate is a link or allocation rate in bits per second.
type BitRate float64

// Common rate constants.
const (
	BitPerSecond BitRate = 1
	Kbps                 = 1e3 * BitPerSecond
	Mbps                 = 1e3 * Kbps
	Gbps                 = 1e3 * Mbps
	Tbps                 = 1e3 * Gbps
)

// Byte size constants (powers of ten, as used for network quantities).
const (
	Byte = 1
	KB   = 1e3 * Byte
	MB   = 1e6 * Byte
	GB   = 1e9 * Byte
)

// BytesPerNano returns the rate expressed in bytes per nanosecond. This is
// the unit the A-Gap recurrence and transmission-time computations use,
// because simulated time is integer nanoseconds.
func (r BitRate) BytesPerNano() float64 { return float64(r) / 8e9 }

// TransmitNanos returns the serialization time, in nanoseconds, of a packet
// of the given size at this rate. The result is rounded up so that a
// transmitter never finishes "early" and two back-to-back packets cannot
// overlap on the wire; a zero or negative rate reports zero to keep callers
// from scheduling events in the past.
func (r BitRate) TransmitNanos(sizeBytes int) int64 {
	if r <= 0 || sizeBytes <= 0 {
		return 0
	}
	bits := float64(sizeBytes) * 8
	ns := bits / float64(r) * 1e9
	n := int64(ns)
	if float64(n) < ns {
		n++
	}
	return n
}

// String renders the rate with a human-friendly unit, e.g. "10Gbps".
func (r BitRate) String() string {
	switch {
	case r >= Tbps:
		return trim(float64(r)/float64(Tbps), "Tbps")
	case r >= Gbps:
		return trim(float64(r)/float64(Gbps), "Gbps")
	case r >= Mbps:
		return trim(float64(r)/float64(Mbps), "Mbps")
	case r >= Kbps:
		return trim(float64(r)/float64(Kbps), "Kbps")
	default:
		return trim(float64(r), "bps")
	}
}

func trim(v float64, unit string) string {
	s := fmt.Sprintf("%.2f", v)
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s + unit
}
