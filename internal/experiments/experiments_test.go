package experiments

import (
	"strings"
	"testing"

	"aqueue/internal/sim"
)

func TestApproachString(t *testing.T) {
	want := map[Approach]string{PQ: "PQ", AQ: "AQ", PRL: "PRL", DRL: "DRL"}
	for a, s := range want {
		if a.String() != s {
			t.Fatalf("%d.String() = %q", int(a), a.String())
		}
	}
	if Approach(9).String() != "Approach(9)" {
		t.Fatal("unknown approach string")
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{Title: "T", Header: []string{"a", "long-header"}}
	tbl.AddRow("x", 1.23456)
	tbl.AddRow("longer-cell", "y")
	out := tbl.Render()
	if !strings.Contains(out, "T\n") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "1.23") {
		t.Fatalf("float not formatted: %q", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("rendered %d lines, want 5", len(lines))
	}
	// All rows align to the same width.
	if len(lines[1]) != len(lines[2]) && len(lines[2]) != len(lines[3]) {
		t.Fatalf("misaligned table:\n%s", out)
	}
}

func TestFig3SurplusAmplification(t *testing.T) {
	r := Fig3(6)
	if len(r.PeaksD) != 6 || len(r.PeaksA) != 6 {
		t.Fatalf("peak counts %d/%d", len(r.PeaksD), len(r.PeaksA))
	}
	// The strawman's later peaks overshoot far beyond the A-Gap's.
	if r.PeaksD[2] < 1.4*r.PeaksA[2] {
		t.Fatalf("strawman peak %v not amplified vs A-Gap peak %v",
			r.PeaksD[2], r.PeaksA[2])
	}
	// The A-Gap peaks stay essentially flat.
	for i := 1; i < len(r.PeaksA); i++ {
		if r.PeaksA[i] > r.PeaksA[0]*1.2 {
			t.Fatalf("A-Gap peaks grew: %v", r.PeaksA)
		}
	}
}

func TestCCShareAQEqualizesDCTCPvsCUBIC(t *testing.T) {
	entities := []ccEntity{{cc: "cubic", flows: 5}, {cc: "dctcp", flows: 5}}
	pq := runCCShare(PQ, entities, 80*sim.Millisecond, 1, 1, nil)
	if pq[1].Gbps < 2*pq[0].Gbps {
		t.Fatalf("PQ: DCTCP %v vs CUBIC %v — expected DCTCP dominance",
			pq[1].Gbps, pq[0].Gbps)
	}
	aq := runCCShare(AQ, entities, 80*sim.Millisecond, 1, 1, nil)
	ratio := aq[0].Gbps / aq[1].Gbps
	if ratio < 0.85 || ratio > 1.18 {
		t.Fatalf("AQ split %.2f:%.2f, want near equal", aq[0].Gbps, aq[1].Gbps)
	}
	if aq[0].Gbps+aq[1].Gbps < 8.5 {
		t.Fatalf("AQ total %.2f Gbps, network under-utilized", aq[0].Gbps+aq[1].Gbps)
	}
}

func TestCCSharePQStarvesSwift(t *testing.T) {
	entities := []ccEntity{{cc: "cubic", flows: 5}, {cc: "swift", flows: 5}}
	pq := runCCShare(PQ, entities, 80*sim.Millisecond, 1, 1, nil)
	if pq[1].Gbps > pq[0].Gbps/4 {
		t.Fatalf("PQ: Swift %v vs CUBIC %v — expected starvation", pq[1].Gbps, pq[0].Gbps)
	}
	aq := runCCShare(AQ, entities, 80*sim.Millisecond, 1, 1, nil)
	if aq[1].Gbps < 4.0 {
		t.Fatalf("AQ: Swift only achieved %v Gbps of its 5 Gbps share", aq[1].Gbps)
	}
}

func TestFig8WeightedIsolation(t *testing.T) {
	const horizon = 60 * sim.Millisecond
	pqA, pqB := fig8Run(PQ, 16, 1, 1, horizon, 1, nil)
	if pqB < 3*pqA {
		t.Fatalf("PQ with 16:1 flows split %.2f/%.2f, want B dominant", pqA, pqB)
	}
	aqA, aqB := fig8Run(AQ, 16, 1, 1, horizon, 1, nil)
	if r := aqA / aqB; r < 0.9 || r > 1.12 {
		t.Fatalf("AQ 1:1 split %.2f/%.2f", aqA, aqB)
	}
	wA, wB := fig8Run(AQ, 16, 1, 2, horizon, 1, nil)
	if r := wB / wA; r < 1.7 || r > 2.3 {
		t.Fatalf("AQ 1:2 split %.2f/%.2f, want ratio ~2", wA, wB)
	}
}

func TestFig9ActiveSetSharing(t *testing.T) {
	res := fig9Run(AQ, 40*sim.Millisecond, 1, nil)
	// In the final phase all 5 entities are active: each should sit near
	// 10/5 = 2 Gbps, including the UDP entity.
	last := len(Fig9Entities)
	for i := range Fig9Entities {
		got := res.Series[i][last]
		if got < 1.4 || got > 2.7 {
			t.Fatalf("entity %d final-phase rate %.2f Gbps, want ~2", i, got)
		}
	}
	// First phase: only entity 0 active, near full rate.
	if res.Series[0][0] < 8 {
		t.Fatalf("single active entity got %.2f Gbps", res.Series[0][0])
	}

	pq := fig9Run(PQ, 40*sim.Millisecond, 1, nil)
	// Under PQ the UDP entity (index 2) dominates once it starts.
	if pq.Series[2][last] < 6 {
		t.Fatalf("PQ: UDP got %.2f Gbps in final phase, expected dominance", pq.Series[2][last])
	}
}

func TestWorkloadCompletionAQTracksPQ(t *testing.T) {
	specs := []wlSpec{{name: "app", cc: "cubic", vms: 4, weight: 1, flows: 30}}
	base := wlRun(PQ, specs, 3, 1, nil)[0]
	aq := wlRun(AQ, specs, 3, 1, nil)[0]
	ratio := float64(aq) / float64(base)
	if ratio > 1.2 || ratio < 0.8 {
		t.Fatalf("AQ/PQ completion ratio %.2f, want ~1", ratio)
	}
	prl := wlRun(PRL, specs, 3, 1, nil)[0]
	if float64(prl)/float64(base) < 1.1 {
		t.Fatalf("PRL at 4 VMs ratio %.2f, expected slowdown", float64(prl)/float64(base))
	}
}

func TestWorkloadFairnessAQ(t *testing.T) {
	specs := []wlSpec{
		{name: "A", cc: "cubic", vms: 1, weight: 1, flows: 60},
		{name: "B", cc: "cubic", vms: 4, weight: 1, flows: 60},
	}
	aq := fairness(wlRun(AQ, specs, 5, 1, nil))
	if aq < 0.78 {
		t.Fatalf("AQ entity fairness %.2f, want near 1", aq)
	}
}

func TestTable3AQHoldsProfile(t *testing.T) {
	row := table3RunFor(AQ, 7, 150*sim.Millisecond, 1, nil)
	if row.OutLo < 4.2 || row.OutHi > 5.8 {
		t.Fatalf("AQ outbound %.2f~%.2f, want ~5", row.OutLo, row.OutHi)
	}
	if row.InLo < 4.2 || row.InHi > 5.8 {
		t.Fatalf("AQ inbound %.2f~%.2f, want ~5", row.InLo, row.InHi)
	}
}

func TestTable3PRLViolatesInbound(t *testing.T) {
	row := table3RunFor(PRL, 7, 150*sim.Millisecond, 1, nil)
	if row.OutHi > 6 {
		t.Fatalf("PRL outbound %.2f~%.2f, want capped at ~5", row.OutLo, row.OutHi)
	}
	if row.InLo < 10 {
		t.Fatalf("PRL inbound %.2f~%.2f, expected ~15 (3 senders x 5G)", row.InLo, row.InHi)
	}
}

func TestTable3PQUnbounded(t *testing.T) {
	row := table3RunFor(PQ, 7, 150*sim.Millisecond, 1, nil)
	if row.InHi < 15 {
		t.Fatalf("PQ inbound %.2f~%.2f, expected near link capacity", row.InLo, row.InHi)
	}
}

func TestTable4BehaviourPreserved(t *testing.T) {
	pqG, pqD := table4RunFor("cubic", false, 120*sim.Millisecond, 1, nil)
	aqG, aqD := table4RunFor("cubic", true, 120*sim.Millisecond, 1, nil)
	if pqG < 22 || aqG < 22 {
		t.Fatalf("throughput PQ %.2f / AQ %.2f, want ~24", pqG, aqG)
	}
	p95pq := pqD.Quantile(0.95)
	p95aq := aqD.Quantile(0.95)
	rel := (p95aq - p95pq) / p95pq
	if rel < 0 {
		rel = -rel
	}
	if rel > 0.15 {
		t.Fatalf("CUBIC p95 delay PQ %v vs AQ %v (rel %.2f), want close",
			sim.Time(p95pq), sim.Time(p95aq), rel)
	}
}

func TestFig11Fig12(t *testing.T) {
	f11 := Fig11()
	if len(f11.Rows) != 4 {
		t.Fatalf("Fig11 rows = %d", len(f11.Rows))
	}
	f12 := Fig12()
	if len(f12.Rows) != len(Fig12Counts) {
		t.Fatalf("Fig12 rows = %d", len(f12.Rows))
	}
	// 1M AQs must fit ("millions of traffic constituents").
	for i, n := range Fig12Counts {
		if n == 1_000_000 && f12.Rows[i][3] != "yes" {
			t.Fatal("1M AQs do not fit the SRAM budget")
		}
	}
}
