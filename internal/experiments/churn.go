package experiments

import (
	"fmt"

	"aqueue/internal/control"
	"aqueue/internal/service"
	"aqueue/internal/sim"
)

// Churn exercises the fabric-service mutation path as an experiment: a
// dumbbell run where tenants are granted, loaded, reconfigured, and torn
// down at fixed window boundaries through internal/service — the same
// code path cmd/aqsimd drives over the wire. Because every mutation lands
// exactly on its scripted boundary, the whole run (including its
// rendered tables) is deterministic and rides the harness fingerprint
// gates like any other scenario.
//
// The script, over 20 equal windows:
//
//	w0:  tenant A — weighted 1, websearch at 0.4 load
//	w5:  tenant B — weighted 2, fixed 50 KB flows at 0.3 load
//	w10: A's weight raised to 3 (live reconfiguration)
//	w15: B detached and marked idle (A absorbs the link)
func Churn(horizon sim.Time, domains int, opts ...sim.Option) (*Table, *Table) {
	const windows = 20
	cfg := service.Config{
		Hosts:    4,
		Domains:  domains,
		Window:   horizon / windows,
		Sim:      opts,
		TraceLen: 0, // traces are for the daemon; experiments stay lean
	}
	f, err := service.NewFabric(cfg)
	if err != nil {
		panic(err)
	}
	grant := func(f *service.Fabric, tenant string, weight float64) *service.Driver {
		g, err := f.Ctrl().Grant(control.Request{
			Tenant: tenant, Mode: control.Weighted, Weight: weight,
			Limit: aqLimitFor(f.Config().Trunk),
		}, f.LookupTable("S1", control.Ingress))
		if err != nil {
			panic(err)
		}
		spec := service.LoadSpec{Tenant: tenant, AQ: g.ID, Kind: "websearch", Load: 0.4}
		if tenant == "B" {
			spec = service.LoadSpec{Tenant: tenant, AQ: g.ID, Kind: "fixed", Size: 50_000, Load: 0.3}
		}
		d, err := f.Attach(spec)
		if err != nil {
			panic(err)
		}
		return d
	}
	var driverB uint32
	f.ScriptAt(0, func(f *service.Fabric) { grant(f, "A", 1) })
	f.ScriptAt(5, func(f *service.Fabric) { driverB = grant(f, "B", 2).ID })
	f.ScriptAt(10, func(f *service.Fabric) {
		if _, err := f.Ctrl().SetGuarantee(1, 0, 3); err != nil {
			panic(err)
		}
	})
	f.ScriptAt(15, func(f *service.Fabric) {
		if !f.Detach(driverB) {
			panic("churn: detach of driver B missed")
		}
		if !f.Ctrl().SetActive(2, false) {
			panic("churn: idling tenant B missed")
		}
	})

	// Advance window by window, accumulating per-phase bottleneck
	// throughput (phases = the four script epochs, 5 windows each).
	const perPhase = windows / 4
	var phaseGbps [4]float64
	var snap service.Snapshot
	for w := 0; w < windows; w++ {
		snap = f.AdvanceWindow()
		for _, p := range snap.Pipes {
			if p.Name == "S1->S2" {
				phaseGbps[w/perPhase] += p.Gbps / perPhase
			}
		}
	}

	phases := &Table{
		Title:  "Service churn: bottleneck throughput per script phase (Gbps)",
		Header: []string{"phase", "windows", "tenants", "bottleneck Gbps"},
	}
	labels := []string{"A@1", "A@1 + B@2", "A@3 + B@2", "A@3 (B detached)"}
	for i, g := range phaseGbps {
		phases.AddRow(fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%d-%d", i*perPhase, (i+1)*perPhase-1), labels[i], g)
	}

	final := &Table{
		Title:  "Service churn: final tenant and driver state",
		Header: []string{"tenant", "mode", "weight", "active", "aq arrived", "flows started", "flows done"},
	}
	drivers := map[string]service.DriverSnap{}
	for _, d := range snap.Drivers {
		drivers[d.Tenant] = d
	}
	for _, g := range snap.Tenants {
		d := drivers[g.Tenant]
		final.AddRow(g.Tenant, g.Mode, g.Weight, g.Active, g.AQ.Arrived, d.Started, d.Completed)
	}
	return phases, final
}
