package experiments

import (
	"fmt"

	"aqueue/internal/core"
	"aqueue/internal/sim"
	"aqueue/internal/units"
)

// Fig3Result holds the successive arrival-rate peaks of a rate-controlled
// source when its feedback comes from the strawman D(t) versus the A-Gap.
type Fig3Result struct {
	PeaksD []float64 // Gbps at each control cycle, strawman discrepancy
	PeaksA []float64 // Gbps at each control cycle, A-Gap discrepancy
}

// Fig3 reproduces Figure 3's behaviour: a congestion controller that
// overly reduces its rate (multiplicative decrease to 20% on positive
// discrepancy, additive increase otherwise) is driven once by the strawman
// D(t) (Expressions 4-5) and once by the A-Gap (Expression 7), against the
// same allocated rate R. Under D(t) the surplus accumulated while
// transmitting below R lets every cycle peak higher than the last
// (Fig. 3a); under the A-Gap the surplus is clamped away and the peaks stay
// flat (Fig. 3b).
func Fig3(cycles int) Fig3Result {
	const (
		tick    = 10 * sim.Microsecond
		thresh  = 20_000.0 // bytes of positive discrepancy that trigger MD
		aiGbps  = 0.25     // additive increase per tick
		mdRatio = 0.2
	)
	R := 5 * units.Gbps

	run := func(useStrawman bool) []float64 {
		s := core.NewStrawman(R)
		aq := core.New(core.Config{ID: 1, Rate: R, Limit: 1 << 40})
		rate := float64(R)
		now := sim.Time(0)
		var peaks []float64
		refractory := 0
		for len(peaks) < cycles {
			now += tick
			bytes := int(rate / 8 * tick.Seconds())
			var disc float64
			if useStrawman {
				disc = s.Arrive(now, bytes)
			} else {
				disc = aq.Update(now, bytes)
			}
			if refractory > 0 {
				refractory--
				continue
			}
			if disc > thresh {
				peaks = append(peaks, rate/1e9)
				rate *= mdRatio
				refractory = 50 // let the discrepancy drain before reacting again
			} else {
				rate += aiGbps * 1e9
			}
		}
		return peaks
	}
	return Fig3Result{PeaksD: run(true), PeaksA: run(false)}
}

// Fig3Table renders the peak sequences side by side.
func Fig3Table(cycles int) *Table {
	r := Fig3(cycles)
	t := &Table{
		Title:  "Figure 3: arrival-rate peaks under strawman D(t) vs A-Gap (allocated R = 5 Gbps)",
		Header: []string{"cycle", "peak with D(t) (Gbps)", "peak with A-Gap (Gbps)"},
	}
	for i := range r.PeaksD {
		t.AddRow(fmt.Sprint(i+1), r.PeaksD[i], r.PeaksA[i])
	}
	return t
}
