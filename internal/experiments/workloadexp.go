package experiments

import (
	"aqueue/internal/cc"
	"aqueue/internal/control"
	"aqueue/internal/packet"
	"aqueue/internal/ratelimit"
	"aqueue/internal/sim"
	"aqueue/internal/stats"
	"aqueue/internal/topo"
	"aqueue/internal/transport"
	"aqueue/internal/units"
	"aqueue/internal/workload"
)

// wlSpec declares one entity of a workload-completion experiment: its CC,
// its VM count, its share weight, and how many trace flows it must finish.
type wlSpec struct {
	name   string
	cc     string
	vms    int
	weight float64
	flows  int
}

// wlRun executes the entities' closed-loop web-search workloads on a
// dumbbell under the given approach and returns each entity's workload
// completion time. Each VM of an entity replays flows from the entity's
// shared trace queue one after another ("runs the web search trace",
// §5.2): concurrency equals the VM count, which is exactly what makes the
// four approaches differ.
func wlRun(approach Approach, specs []wlSpec, seed uint64, domains int, opts []sim.Option) []sim.Time {
	c := newClusterN(domains, opts...)
	defer c.Close()
	spec := simSpec()
	totalVMs := 0
	for _, s := range specs {
		totalVMs += s.vms
	}
	d := topo.NewDumbbellIn(c, totalVMs, totalVMs, spec, spec)

	var totalWeight float64
	for _, s := range specs {
		totalWeight += s.weight
	}

	ctrl := control.NewController(spec.Rate)
	var drl *ratelimit.DRL
	if approach == DRL {
		// The DRL control loop re-programs every sender VM's token buckets
		// each interval; all sender VMs live in domain 0 by construction
		// (NewDumbbellIn keeps the left side whole), so the loop runs there.
		drl = ratelimit.NewDRL(d.Eng, spec.Rate, ratelimit.DefaultInterval)
	}

	r := sim.NewRand(seed)
	// All entities replay the same drawn trace ("they both run the web
	// search trace", §5.2), so completion-time ratios compare bandwidth
	// shares, not sampling luck.
	maxFlows := 0
	for _, s := range specs {
		if s.flows > maxFlows {
			maxFlows = s.flows
		}
	}
	trace := make([]int64, maxFlows)
	var ws workload.WebSearch
	for j := range trace {
		trace[j] = ws.Sample(r)
	}
	trackers := make([]*stats.FCT, len(specs))
	vmBase := 0
	for i, s := range specs {
		srcs := d.Left[vmBase : vmBase+s.vms]
		dsts := d.Right[vmBase : vmBase+s.vms]
		vmBase += s.vms

		share := units.BitRate(float64(spec.Rate) * s.weight / totalWeight)
		var opt transport.Options
		var grantID packet.AQID
		switch approach {
		case AQ:
			g, err := ctrl.Grant(control.Request{
				Tenant:   s.name,
				Mode:     control.Weighted,
				Weight:   s.weight,
				CC:       ccTypeFor(s.cc),
				Limit:    aqLimitFor(spec),
				Position: control.Ingress,
			}, d.S1.Ingress)
			if err != nil {
				panic(err)
			}
			opt.IngressAQ = g.ID
			grantID = g.ID
		case PRL:
			perVM := units.BitRate(float64(share) / float64(s.vms))
			for _, h := range srcs {
				ratelimit.AttachPRL(h, perVM)
			}
		case DRL:
			perVM := units.BitRate(float64(share) / float64(s.vms))
			for _, h := range srcs {
				drl.AddVM(h, ratelimit.Profile{
					OutMin: perVM,
					OutMax: spec.Rate,
					InMax:  spec.Rate,
				})
			}
		}
		opt.EcnCapable = ecnCapable(s.cc)

		sizes := trace[:s.flows]
		tr := &stats.FCT{}
		trackers[i] = tr
		id := grantID
		runClosedLoop(srcs, dsts, sizes, ccFactory(s.cc), opt, tr, r, func() {
			if approach == AQ {
				// The entity is done; return its share to the others
				// (weighted-mode rebalance, §4.1).
				ctrl.SetActive(id, false)
			}
		})
	}
	if drl != nil {
		drl.Start()
	}
	c.RunUntil(60 * sim.Second) // generous; closed loops finish well before
	out := make([]sim.Time, len(specs))
	for i, tr := range trackers {
		if !tr.AllDone() {
			// Report the horizon so a stuck run is visible, not fatal.
			out[i] = 60 * sim.Second
			continue
		}
		out[i] = tr.CompletionTime()
	}
	return out
}

// runClosedLoop starts one closed-loop worker per source VM: each worker
// repeatedly takes the next flow from the shared trace and runs it to a
// random destination VM of the entity, until the trace is exhausted.
//
// The shared cursor and random stream are drawn from completion callbacks
// at runtime, which is only deterministic across domain counts because
// every source VM lives in domain 0 (NewDumbbellIn keeps the sender side
// whole) and the conservative sync protocol preserves each engine's event
// order exactly as in the single-engine run.
func runClosedLoop(srcs, dsts []*topo.Host, sizes []int64,
	fac cc.Factory, opt transport.Options, tr *stats.FCT,
	r *sim.Rand, onAllDone func()) {
	next := 0
	var launch func(vm *topo.Host)
	launch = func(vm *topo.Host) {
		if next >= len(sizes) {
			if tr.Completed == len(sizes) && onAllDone != nil {
				onAllDone()
			}
			return
		}
		size := sizes[next]
		next++
		dst := dsts[r.Intn(len(dsts))]
		s := transport.NewSender(vm, dst, size, fac(), opt)
		start := vm.Engine().Now()
		tr.FlowStarted(size)
		s.OnComplete = func(now sim.Time) {
			tr.FlowDone(start, now)
			launch(vm)
		}
		s.Start(sim.Time(r.Intn(20_000)))
	}
	for _, vm := range srcs {
		launch(vm)
	}
}
