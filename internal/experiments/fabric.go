package experiments

import (
	"aqueue/internal/cc"
	"aqueue/internal/control"
	"aqueue/internal/core"
	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/stats"
	"aqueue/internal/topo"
	"aqueue/internal/transport"
	"aqueue/internal/units"
	"aqueue/internal/workload"
)

// The fabric extension experiments take AQ beyond the paper's dumbbell and
// star: a leaf-spine fabric with ECMP, with the entity's AQs deployed on
// every leaf switch (§4.1 allows multiple AQs per entity). They check that
// the guarantees survive multi-pathing and multi-hop AQ traversal.

// fabricSpecs builds the fabric link classes: 10G edges and 10G
// leaf-spine links, i.e. a 2:1 oversubscribed fabric where the leaf
// uplinks are the contended resource.
func fabricSpecs() (edge, fab topo.LinkSpec) {
	edge = simSpec()
	fab = simSpec()
	return
}

// ExtFabricIsolation shares a 2-leaf/2-spine fabric between two entities
// whose VMs are split across both leaves; entity B opens 4x the flows.
// Under PQ the split follows flow counts; with weighted AQs deployed on
// both leaf ingress pipelines it follows the weights. Returns per-entity
// Gbps for (PQ A, PQ B, AQ A, AQ B).
func ExtFabricIsolation(horizon sim.Time, domains int, opts ...sim.Option) (pqA, pqB, aqA, aqB float64) {
	run := func(useAQ bool) (float64, float64) {
		c := newClusterN(domains, opts...)
		defer c.Close()
		edge, fab := fabricSpecs()
		f := topo.NewLeafSpineIn(c, 2, 2, 4, edge, fab)
		// Entity A: hosts 0,1 (leaf 0) -> hosts 4,5 (leaf 1).
		// Entity B: hosts 2,3 (leaf 0) -> hosts 6,7 (leaf 1).
		rc := newRxClassifier(f.Hosts[4:], 2, sim.Millisecond, func(p *packet.Packet) int {
			switch p.Dst {
			case 4, 5:
				return 0
			case 6, 7:
				return 1
			}
			return -1
		})
		var optA, optB transport.Options
		if useAQ {
			// One grant per entity per leaf switch: the controller hands
			// out distinct IDs, the tenant tags by source leaf.
			ctrl := control.NewController(edge.Rate * 2) // two uplinked hosts per entity
			gA, err := ctrl.Grant(control.Request{Tenant: "A", Mode: control.Weighted,
				Weight: 1, Limit: aqLimitFor(edge), Position: control.Ingress}, f.Leaves[0].Ingress)
			if err != nil {
				panic(err)
			}
			gB, err := ctrl.Grant(control.Request{Tenant: "B", Mode: control.Weighted,
				Weight: 1, Limit: aqLimitFor(edge), Position: control.Ingress}, f.Leaves[0].Ingress)
			if err != nil {
				panic(err)
			}
			optA.IngressAQ = gA.ID
			optB.IngressAQ = gB.ID
		}
		longFlows([]*topo.Host{f.Hosts[0], f.Hosts[1]},
			[]*topo.Host{f.Hosts[4], f.Hosts[5]}, 8, ccFactory("cubic"), optA)
		longFlows([]*topo.Host{f.Hosts[2], f.Hosts[3]},
			[]*topo.Host{f.Hosts[6], f.Hosts[7]}, 16, ccFactory("cubic"), optB)
		c.RunUntil(horizon)
		warm := horizon / 4
		return rc.Gbps(0, warm, horizon), rc.Gbps(1, warm, horizon)
	}
	pqA, pqB = run(false)
	aqA, aqB = run(true)
	return
}

// ExtFabricIncast fires an 8:1 incast across the fabric at a receiver with
// a 2 Gbps inbound guarantee enforced by an egress-pipeline AQ on its
// leaf. It returns the receiver's measured inbound rate and the fraction
// of incast rounds completed, with and without the AQ.
func ExtFabricIncast(horizon sim.Time, domains int, opts ...sim.Option) (pqGbps, aqGbps float64) {
	run := func(useAQ bool) float64 {
		c := newClusterN(domains, opts...)
		defer c.Close()
		edge, fab := fabricSpecs()
		f := topo.NewLeafSpineIn(c, 3, 2, 3, edge, fab)
		victim := f.Hosts[0]
		meter := stats.NewMeter(sim.Millisecond)
		victim.RxHook = func(p *packet.Packet) {
			if p.Kind == packet.Data {
				meter.Add(victim.Engine().Now(), p.Size)
			}
		}
		var opt transport.Options
		opt.EcnCapable = true
		if useAQ {
			ctrl := control.NewController(edge.Rate)
			g, err := ctrl.Grant(control.Request{Tenant: "victim-in", Mode: control.Absolute,
				Bandwidth: 2 * units.Gbps, CC: core.ECNType, Limit: aqLimitFor(edge),
				Position: control.Egress}, f.Leaf(0).Egress)
			if err != nil {
				panic(err)
			}
			opt.EgressAQ = g.ID
		}
		in := workload.Incast{
			Senders:       f.Hosts[1:],
			Receiver:      victim,
			ResponseBytes: 400_000,
			Period:        4 * sim.Millisecond,
			CC:            func() cc.Algorithm { return cc.NewDCTCP() },
			Opt:           opt,
		}
		in.Start()
		c.RunUntil(horizon)
		return meter.Gbps(horizon/4, horizon)
	}
	return run(false), run(true)
}

// ExtFabric renders both fabric extension results.
func ExtFabric(horizon sim.Time, domains int, opts ...sim.Option) *Table {
	t := &Table{
		Title:  "Extension: AQ on a 2-tier ECMP leaf-spine fabric",
		Header: []string{"scenario", "PQ", "AQ"},
	}
	pqA, pqB, aqA, aqB := ExtFabricIsolation(horizon, domains, opts...)
	t.AddRow("isolation: entity A (8 flows) Gbps", pqA, aqA)
	t.AddRow("isolation: entity B (32 flows) Gbps", pqB, aqB)
	pqIn, aqIn := ExtFabricIncast(horizon, domains, opts...)
	t.AddRow("8:1 incast victim inbound Gbps (guarantee 2)", pqIn, aqIn)
	return t
}
