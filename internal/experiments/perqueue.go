package experiments

import (
	"fmt"

	"aqueue/internal/control"
	"aqueue/internal/packet"
	"aqueue/internal/queue"
	"aqueue/internal/sim"
	"aqueue/internal/stats"
	"aqueue/internal/topo"
	"aqueue/internal/transport"
)

// ExtPerEntityQueues quantifies the paper's scaling argument against
// per-flow/per-entity queueing (§1, §7): a switch has only a handful of
// hardware queues, so once entities outnumber them, hash-collided entities
// share a queue and fairness collapses — while AQ state is 15 bytes per
// entity and keeps the shares exact.
//
// N entities share a 10 Gbps bottleneck; entity i opens 1+(3i mod 5) long
// CUBIC flows, so colliding entities also differ in aggressiveness. The
// bottleneck port runs a DRR scheduler with hwQueues hardware queues
// (classified by entity tag); the same setup is run with one weighted AQ
// per entity instead. Returns Jain's fairness index across the entities'
// goodputs for DRR and AQ.
func ExtPerEntityQueues(entities, hwQueues int, horizon sim.Time, domains int, opts ...sim.Option) (drrJain, aqJain float64) {
	run := func(useAQ bool) float64 {
		c := newClusterN(domains, opts...)
		defer c.Close()
		spec := simSpec()
		d := topo.NewDumbbellIn(c, entities, entities, spec, spec)
		if !useAQ {
			// Replace the bottleneck's FIFO with a DRR over the hardware
			// queues, classified by the entity tag in the header.
			d.Bottleneck.SetScheduler(queue.NewDRR(hwQueues, packet.MaxDataBytes,
				spec.QueueLimit/hwQueues,
				func(p *packet.Packet) uint64 { return uint64(p.IngressAQ) }))
		}
		ctrl := control.NewController(spec.Rate)
		for i := 0; i < entities; i++ {
			var opt transport.Options
			if useAQ {
				g, err := ctrl.Grant(control.Request{Tenant: fmt.Sprint(i),
					Mode: control.Weighted, Weight: 1, Limit: aqLimitFor(spec),
					Position: control.Ingress}, d.S1.Ingress)
				if err != nil {
					panic(err)
				}
				opt.IngressAQ = g.ID
			} else {
				// Tag with a synthetic entity ID for the DRR classifier;
				// no AQ is deployed, so switches pass the tag through.
				opt.IngressAQ = packet.AQID(i + 1)
			}
			longFlows(d.Left[i:i+1], d.Right[i:i+1], 1+(3*i)%5, ccFactory("cubic"), opt)
		}
		c.RunUntil(horizon)
		warm := horizon / 4
		shares := make([]float64, entities)
		for i := 0; i < entities; i++ {
			shares[i] = float64(d.Right[i].RxBytes)
		}
		_ = warm
		return stats.JainIndex(shares)
	}
	return run(false), run(true)
}

// ExtPerQueueTable sweeps the entity count against a fixed 8-queue DRR
// port and renders the fairness comparison.
func ExtPerQueueTable(horizon sim.Time, domains int, opts ...sim.Option) *Table {
	t := &Table{
		Title:  "Extension: per-entity hardware queues (DRR, 8 queues) vs AQ — Jain fairness",
		Header: []string{"#entities", "DRR(8 queues)", "AQ"},
	}
	for _, n := range []int{4, 8, 16, 32} {
		dj, aj := ExtPerEntityQueues(n, 8, horizon, domains, opts...)
		t.AddRow(fmt.Sprint(n), dj, aj)
	}
	return t
}
