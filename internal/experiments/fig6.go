package experiments

import (
	"fmt"

	"aqueue/internal/sim"
)

// Fig6 reproduces Figure 6: one distributed application (entity) runs the
// web-search trace over 1..8 VMs; its workload completion time under each
// approach is normalized to PQ, which fully utilizes the network. AQ
// should track PQ; PRL and DRL should degrade as the VM count grows
// because their per-VM allocations mismatch the trace's bursty demand.
func Fig6(vmCounts []int, flows int, seed uint64, domains int, opts ...sim.Option) *Table {
	if len(vmCounts) == 0 {
		vmCounts = []int{1, 2, 4, 8}
	}
	t := &Table{
		Title:  "Figure 6: normalized workload completion time vs number of VMs",
		Header: []string{"#VMs", "PQ", "AQ", "PRL", "DRL"},
	}
	for _, k := range vmCounts {
		spec := []wlSpec{{name: "app", cc: "dctcp", vms: k, weight: 1, flows: flows}}
		base := wlRun(PQ, spec, seed, domains, opts)[0]
		row := []any{fmt.Sprint(k), 1.0}
		for _, ap := range []Approach{AQ, PRL, DRL} {
			ct := wlRun(ap, spec, seed, domains, opts)[0]
			row = append(row, float64(ct)/float64(base))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig7 reproduces Figure 7: entity A (1 VM) and entity B (1..8 VMs) run
// the same web-search trace with equal weights; entity fairness is the
// ratio of the shorter workload completion time to the longer. AQ holds it
// near 1; PQ favours B (flow-level fairness rewards its concurrency); PRL
// and DRL penalize B (fixed/laggy per-VM splits).
func Fig7(vmCounts []int, flows int, seed uint64, domains int, opts ...sim.Option) *Table {
	if len(vmCounts) == 0 {
		vmCounts = []int{1, 2, 4, 8}
	}
	t := &Table{
		Title:  "Figure 7: entity fairness vs number of VMs in entity B",
		Header: []string{"#VMs in B", "PQ", "AQ", "PRL", "DRL"},
	}
	for _, k := range vmCounts {
		specs := []wlSpec{
			{name: "A", cc: "dctcp", vms: 1, weight: 1, flows: flows},
			{name: "B", cc: "dctcp", vms: k, weight: 1, flows: flows},
		}
		row := []any{fmt.Sprint(k)}
		for _, ap := range Approaches {
			ct := wlRun(ap, specs, seed, domains, opts)
			row = append(row, fairness(ct))
		}
		t.AddRow(row...)
	}
	return t
}

// fairness is the paper's entity-fairness metric: shorter completion over
// longer completion.
func fairness(ct []sim.Time) float64 {
	lo, hi := ct[0], ct[0]
	for _, c := range ct {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	if hi <= 0 {
		return 0
	}
	return float64(lo) / float64(hi)
}

// Fig10CCSettings are the CC pairings of Figure 10 (two entities, four VMs
// each).
var Fig10CCSettings = [][2]string{
	{"cubic", "dctcp"},
	{"newreno", "dctcp"},
	{"cubic", "swift"},
	{"dctcp", "swift"},
}

// Fig10 reproduces Figure 10: entity fairness (a) and total workload
// completion time (b) for two 4-VM entities under different CC mixes and
// all four approaches. Completion is reported normalized to PQ.
func Fig10(flows int, seed uint64, domains int, opts ...sim.Option) (*Table, *Table) {
	fair := &Table{
		Title:  "Figure 10(a): entity fairness under different CC settings",
		Header: []string{"CC setting", "PQ", "AQ", "PRL", "DRL"},
	}
	total := &Table{
		Title:  "Figure 10(b): total workload completion time (normalized to PQ)",
		Header: []string{"CC setting", "PQ", "AQ", "PRL", "DRL"},
	}
	for _, pair := range Fig10CCSettings {
		specs := []wlSpec{
			{name: "A", cc: pair[0], vms: 4, weight: 1, flows: flows},
			{name: "B", cc: pair[1], vms: 4, weight: 1, flows: flows},
		}
		frow := []any{pair[0] + "+" + pair[1]}
		trow := []any{pair[0] + "+" + pair[1]}
		var base sim.Time
		for _, ap := range Approaches {
			ct := wlRun(ap, specs, seed, domains, opts)
			frow = append(frow, fairness(ct))
			tot := ct[0]
			if ct[1] > tot {
				tot = ct[1]
			}
			if ap == PQ {
				base = tot
			}
			trow = append(trow, float64(tot)/float64(base))
		}
		fair.AddRow(frow...)
		total.AddRow(trow...)
	}
	return fair, total
}
