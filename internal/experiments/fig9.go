package experiments

import (
	"fmt"

	"aqueue/internal/control"
	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/topo"
	"aqueue/internal/transport"
)

// Fig9Entities is the §5.2 protocol-type experiment: five entities with
// equal weights join the bottleneck one after another; the third is a
// line-rate UDP blast, the others are single CUBIC flows.
var Fig9Entities = []struct {
	Name string
	UDP  bool
}{
	{"tcp-1", false},
	{"tcp-2", false},
	{"udp", true},
	{"tcp-3", false},
	{"tcp-4", false},
}

// Fig9Result carries the per-phase average goodput of every entity.
type Fig9Result struct {
	Phase  sim.Time // phase length
	Series [][]float64
}

// fig9Run runs the staggered-start experiment under PQ or AQ. Entity i
// starts at i*phase; the run ends after len(entities)+1 phases. Under AQ
// the controller re-divides the link among the active entities at every
// join (weighted mode, §4.1).
func fig9Run(approach Approach, phase sim.Time, domains int, opts []sim.Option) Fig9Result {
	c := newClusterN(domains, opts...)
	defer c.Close()
	spec := simSpec()
	n := len(Fig9Entities)
	d := topo.NewDumbbellIn(c, n, n, spec, spec)
	rc := newRxClassifier(d.Right, n, sim.Millisecond, func(p *packet.Packet) int {
		return int(p.Dst) - n
	})
	ctrl := control.NewController(spec.Rate)
	for i, e := range Fig9Entities {
		var opt transport.Options
		if approach == AQ {
			g, err := ctrl.Grant(control.Request{Tenant: e.Name, Mode: control.Weighted,
				Weight: 1, Limit: aqLimitFor(spec), Position: control.Ingress}, d.S1.Ingress)
			if err != nil {
				panic(err)
			}
			// Granted but idle until the entity starts sending. The
			// activation mutates S1's AQ table, so it must run on S1's
			// engine — under partitioning that is the domain whose events
			// actually read the table.
			ctrl.SetActive(g.ID, false)
			opt.IngressAQ = g.ID
			id := g.ID
			d.S1.Engine().At(sim.Time(i)*phase, func() { ctrl.SetActive(id, true) })
		}
		src, dst := d.Left[i], d.Right[i]
		start := sim.Time(i) * phase
		if e.UDP {
			u := transport.NewUDPSender(src, dst, spec.Rate, opt)
			u.Start(start)
		} else {
			s := transport.NewSender(src, dst, 0, ccFactory("cubic")(), opt)
			s.Start(start)
		}
	}
	horizon := sim.Time(n+1) * phase
	c.RunUntil(horizon)

	res := Fig9Result{Phase: phase, Series: make([][]float64, n)}
	for i := 0; i < n; i++ {
		series := make([]float64, n+1)
		for ph := 0; ph <= n; ph++ {
			from := sim.Time(ph)*phase + phase/5 // skip the join transient
			to := sim.Time(ph+1) * phase
			series[ph] = rc.Gbps(i, from, to)
		}
		res.Series[i] = series
	}
	return res
}

// Fig9 reproduces Figure 9: per-phase throughput of TCP and UDP entities
// under PQ (a) and AQ (b).
func Fig9(phase sim.Time, domains int, opts ...sim.Option) (*Table, *Table) {
	if phase <= 0 {
		phase = 100 * sim.Millisecond
	}
	mk := func(ap Approach, title string) *Table {
		r := fig9Run(ap, phase, domains, opts)
		t := &Table{Title: title, Header: []string{"entity"}}
		for ph := 0; ph < len(Fig9Entities)+1; ph++ {
			t.Header = append(t.Header, fmt.Sprintf("phase %d (n=%d)", ph+1, min(ph+1, len(Fig9Entities))))
		}
		for i, e := range Fig9Entities {
			row := []any{e.Name}
			for _, v := range r.Series[i] {
				row = append(row, v)
			}
			t.AddRow(row...)
		}
		return t
	}
	return mk(PQ, "Figure 9(a): throughput with PQ (Gbps per phase)"),
		mk(AQ, "Figure 9(b): throughput with AQ (Gbps per phase)")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
