package experiments

import (
	"sync"

	"aqueue/internal/harness"
	"aqueue/internal/sim"
)

// DefaultParams returns the full-scale §5 parameter set (400 ms horizon,
// 150 flows per entity, seed 1); quick selects the reduced workload the
// old -quick flag used.
func DefaultParams(quick bool) harness.Params {
	p := harness.Params{Horizon: 400 * sim.Millisecond, Flows: 150, Seed: 1, Quick: quick}
	if quick {
		p.Horizon = 120 * sim.Millisecond
		p.Flows = 40
	}
	return p
}

// withDefaults fills zero-valued knobs from DefaultParams so callers can
// set only what they care about.
func withDefaults(p harness.Params) harness.Params {
	d := DefaultParams(p.Quick)
	if p.Horizon <= 0 {
		p.Horizon = d.Horizon
	}
	if p.Flows <= 0 {
		p.Flows = d.Flows
	}
	if p.Seed == 0 {
		p.Seed = d.Seed
	}
	return p
}

var (
	descMu sync.RWMutex
	descs  = map[string]string{}
)

// Description returns the one-line summary of a registered experiment.
func Description(name string) string {
	descMu.RLock()
	defer descMu.RUnlock()
	return descs[name]
}

// register wires one experiment into the harness registry with its
// description, normalizing params before the runner sees them.
func register(name, desc string, fn func(harness.Params) (*harness.Result, error)) {
	descMu.Lock()
	descs[name] = desc
	descMu.Unlock()
	harness.Register(harness.NewFunc(name, func(p harness.Params) (*harness.Result, error) {
		return fn(withDefaults(p))
	}))
}

// tables is shorthand for a Result that is purely rendered tables.
func tables(ts ...*Table) *harness.Result { return &harness.Result{Tables: ts} }

// init registers every figure and table of the paper's evaluation plus the
// repo's extensions, in the paper's presentation order. cmd/aqsim lists
// and dispatches from this registry.
func init() {
	register("fig1", "CC interference in one shared physical queue (motivation)",
		func(p harness.Params) (*harness.Result, error) {
			return tables(Fig1(p.Horizon, p.Domains, p.Sim...)), nil
		})
	register("fig3", "strawman D(t) vs A-Gap under an aggressive rate controller",
		func(p harness.Params) (*harness.Result, error) {
			r := Fig3(8)
			res := tables(Fig3Table(8))
			res.Metrics = map[string]float64{
				"strawman_peak_gbps": r.PeaksD[len(r.PeaksD)-1],
				"agap_peak_gbps":     r.PeaksA[len(r.PeaksA)-1],
			}
			return res, nil
		})
	register("fig6", "workload completion time vs number of VMs per entity",
		func(p harness.Params) (*harness.Result, error) {
			return tables(Fig6(nil, p.Flows, p.Seed, p.Domains, p.Sim...)), nil
		})
	register("fig7", "entity fairness vs number of VMs per entity",
		func(p harness.Params) (*harness.Result, error) {
			return tables(Fig7(nil, p.Flows, p.Seed, p.Domains, p.Sim...)), nil
		})
	register("fig8", "isolation vs per-entity flow count",
		func(p harness.Params) (*harness.Result, error) {
			return tables(Fig8(nil, p.Horizon, p.Domains, p.Sim...)), nil
		})
	register("fig9", "staggered TCP and UDP entities joining the bottleneck",
		func(p harness.Params) (*harness.Result, error) {
			a, b := Fig9(p.Horizon/4, p.Domains, p.Sim...)
			return tables(a, b), nil
		})
	register("fig10", "mixed-CC workloads: fairness and total throughput",
		func(p harness.Params) (*harness.Result, error) {
			fair, total := Fig10(p.Flows, p.Seed, p.Domains, p.Sim...)
			return tables(fair, total), nil
		})
	register("fig11", "switch resource usage of the AQ pipelines",
		func(p harness.Params) (*harness.Result, error) {
			return tables(Fig11()), nil
		})
	register("fig12", "switch memory vs number of deployed AQs",
		func(p harness.Params) (*harness.Result, error) {
			return tables(Fig12()), nil
		})
	register("table2", "cross-CC sharing under PQ/AQ/PRL/DRL",
		func(p harness.Params) (*harness.Result, error) {
			return tables(Table2(p.Horizon, p.Domains, p.Sim...)), nil
		})
	register("table3", "VM bandwidth guarantees on the testbed star",
		func(p harness.Params) (*harness.Result, error) {
			return tables(Table3(p.Domains, p.Sim...)), nil
		})
	register("table4", "AQ vs PQ behaviour preservation per CC",
		func(p harness.Params) (*harness.Result, error) {
			t, rows := Table4(p.Domains, p.Sim...)
			res := tables(t)
			res.Metrics = map[string]float64{}
			for _, r := range rows {
				res.Metrics["p95_rel_pct."+r.CC] = r.RelP95DeltaPct
				res.Metrics["thpt_delta_pct."+r.CC] = r.ThroughputDelta
			}
			return res, nil
		})
	register("extfabric", "leaf-spine extension: ECMP isolation and incast",
		func(p harness.Params) (*harness.Result, error) {
			return tables(ExtFabric(p.Horizon, p.Domains, p.Sim...)), nil
		})
	register("extqueues", "per-entity DRR queues vs AQ at scale",
		func(p harness.Params) (*harness.Result, error) {
			return tables(ExtPerQueueTable(p.Horizon, p.Domains, p.Sim...)), nil
		})
	register("fluidbg", "fluid-background fidelity: foreground guarantees vs all-packet baseline",
		func(p harness.Params) (*harness.Result, error) {
			r := FluidBG(p.Horizon, p.Flows, p.Seed, p.Domains, p.Sim...)
			res := tables(FluidBGTable(r))
			res.Metrics = map[string]float64{
				"guarantee_delta_pct":  r.GuaranteeDeltaPct,
				"jain_delta_pct":       r.JainDeltaPct,
				"completion_delta_pct": r.CompletionDeltaPct,
			}
			return res, nil
		})
	register("churn", "runtime tenant churn through the fabric service (aqsimd path)",
		func(p harness.Params) (*harness.Result, error) {
			phases, final := Churn(p.Horizon, p.Domains, p.Sim...)
			return tables(phases, final), nil
		})
}
