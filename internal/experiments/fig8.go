package experiments

import (
	"fmt"

	"aqueue/internal/control"
	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/topo"
	"aqueue/internal/transport"
)

// fig8Run shares the bottleneck between entity A (1 long flow) and entity
// B (n long flows), each on its own VM, and returns (A, B) goodput in Gbps.
// weights sets the A:B share when AQ is used.
func fig8Run(approach Approach, nB int, wA, wB float64, horizon sim.Time, domains int, opts []sim.Option) (float64, float64) {
	c := newClusterN(domains, opts...)
	defer c.Close()
	spec := simSpec()
	d := topo.NewDumbbellIn(c, 2, 2, spec, spec)
	rc := newRxClassifier(d.Right, 2, sim.Millisecond, func(p *packet.Packet) int {
		return int(p.Dst) - 2 // dst 2 -> entity A, dst 3 -> entity B
	})
	ctrl := control.NewController(spec.Rate)
	var optA, optB transport.Options
	if approach == AQ {
		gA, err := ctrl.Grant(control.Request{Tenant: "A", Mode: control.Weighted,
			Weight: wA, Limit: aqLimitFor(spec), Position: control.Ingress}, d.S1.Ingress)
		if err != nil {
			panic(err)
		}
		gB, err := ctrl.Grant(control.Request{Tenant: "B", Mode: control.Weighted,
			Weight: wB, Limit: aqLimitFor(spec), Position: control.Ingress}, d.S1.Ingress)
		if err != nil {
			panic(err)
		}
		optA.IngressAQ = gA.ID
		optB.IngressAQ = gB.ID
	}
	longFlows(d.Left[:1], d.Right[:1], 1, ccFactory("cubic"), optA)
	longFlows(d.Left[1:2], d.Right[1:2], nB, ccFactory("cubic"), optB)
	c.RunUntil(horizon)
	warm := horizon / 4
	return rc.Gbps(0, warm, horizon), rc.Gbps(1, warm, horizon)
}

// Fig8 reproduces Figure 8: throughput of two entities when entity B
// raises its flow count. Under PQ the split follows the flow count; under
// AQ it follows the configured weights (1:1 and 1:2 shown, as in the
// paper).
func Fig8(flowCounts []int, horizon sim.Time, domains int, opts ...sim.Option) *Table {
	if len(flowCounts) == 0 {
		flowCounts = []int{1, 4, 16, 64}
	}
	t := &Table{
		Title:  "Figure 8: throughput (Gbps) of entity A (1 flow) vs entity B (n flows)",
		Header: []string{"flows in B", "PQ A", "PQ B", "AQ 1:1 A", "AQ 1:1 B", "AQ 1:2 A", "AQ 1:2 B"},
	}
	for _, n := range flowCounts {
		pqA, pqB := fig8Run(PQ, n, 1, 1, horizon, domains, opts)
		aqA, aqB := fig8Run(AQ, n, 1, 1, horizon, domains, opts)
		wA, wB := fig8Run(AQ, n, 1, 2, horizon, domains, opts)
		t.AddRow(fmt.Sprint(n), pqA, pqB, aqA, aqB, wA, wB)
	}
	return t
}
