// Package experiments reproduces every table and figure of the paper's
// evaluation (§5) plus the motivating Figure 1 and the conceptual Figure 3.
// Each experiment builds its topology, wires the entities under one of the
// four approaches (PQ, AQ, PRL, DRL), runs the simulation, and returns the
// same rows or series the paper reports. cmd/aqsim prints them;
// bench_test.go regenerates them under `go test -bench`.
package experiments

import (
	"fmt"

	"aqueue/internal/cc"
	"aqueue/internal/core"
	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/stats"
	"aqueue/internal/topo"
	"aqueue/internal/transport"
)

// Approach selects the network-sharing mechanism under test (§5.1).
type Approach int

// The four approaches of the paper's evaluation.
const (
	PQ Approach = iota
	AQ
	PRL
	DRL
)

// String implements fmt.Stringer.
func (a Approach) String() string {
	switch a {
	case PQ:
		return "PQ"
	case AQ:
		return "AQ"
	case PRL:
		return "PRL"
	case DRL:
		return "DRL"
	default:
		return fmt.Sprintf("Approach(%d)", int(a))
	}
}

// Approaches is the canonical comparison order.
var Approaches = []Approach{PQ, AQ, PRL, DRL}

// ccTypeFor maps an algorithm name to the AQ feedback type it needs.
func ccTypeFor(name string) core.CCType {
	switch name {
	case "dctcp":
		return core.ECNType
	case "swift":
		return core.DelayType
	default:
		return core.DropType
	}
}

// ccFactory returns the cc.Factory for a name, panicking on unknown names
// (experiment definitions are static, so this is a programming error).
func ccFactory(name string) cc.Factory {
	f := cc.ByName(name)
	if f == nil {
		panic("experiments: unknown CC " + name)
	}
	return f
}

// ecnCapable reports whether flows of this CC should set ECT.
func ecnCapable(name string) bool { return name == "dctcp" }

// rxClassifier measures per-entity receive throughput on a set of hosts.
// The classify function maps a data packet to an entity index (or -1 to
// ignore).
type rxClassifier struct {
	meters []*stats.Meter
}

// newRxClassifier installs hooks on the hosts and returns meters indexed by
// entity.
func newRxClassifier(hosts []*topo.Host, n int, bucket sim.Time, classify func(*packet.Packet) int) *rxClassifier {
	rc := &rxClassifier{meters: make([]*stats.Meter, n)}
	for i := range rc.meters {
		rc.meters[i] = stats.NewMeter(bucket)
	}
	for _, h := range hosts {
		h := h
		prev := h.RxHook
		h.RxHook = func(p *packet.Packet) {
			if prev != nil {
				prev(p)
			}
			if p.Kind != packet.Data {
				return
			}
			if idx := classify(p); idx >= 0 && idx < n {
				rc.meters[idx].Add(h.Engine().Now(), p.Size)
			}
		}
	}
	return rc
}

// Gbps returns entity i's average rate over [from, to].
func (rc *rxClassifier) Gbps(i int, from, to sim.Time) float64 {
	return rc.meters[i].Gbps(from, to)
}

// Meter returns entity i's meter.
func (rc *rxClassifier) Meter(i int) *stats.Meter { return rc.meters[i] }

// longFlows starts n long-lived flows for an entity, spreading them across
// the given source and destination host lists round-robin.
func longFlows(srcs, dsts []*topo.Host, n int, alg cc.Factory, opt transport.Options) []*transport.Sender {
	out := make([]*transport.Sender, 0, n)
	for i := 0; i < n; i++ {
		src := srcs[i%len(srcs)]
		dst := dsts[i%len(dsts)]
		s := transport.NewSender(src, dst, 0, alg(), opt)
		// Stagger starts by a few microseconds so slow-start bursts do not
		// collide pathologically.
		s.Start(sim.Time(i) * 20 * sim.Microsecond)
		out = append(out, s)
	}
	return out
}

// sumAcked totals the acked bytes across senders.
func sumAcked(ss []*transport.Sender) uint64 {
	var sum uint64
	for _, s := range ss {
		sum += uint64(s.AckedBytes())
	}
	return sum
}

// gbpsOf converts bytes over a horizon into Gbit/s.
func gbpsOf(bytes uint64, horizon sim.Time) float64 {
	return stats.RateGbps(bytes, horizon)
}

// newClusterN builds the simulation cluster for one run: domains engines
// synchronized by conservative lookahead windows (see sim.Cluster), each
// configured with the experiment's engine options. Values below 1 mean a
// single engine. Every experiment routes its topology construction through
// the cluster builders so that the same scenario produces byte-identical
// results for any domain count (and any option setting).
func newClusterN(domains int, opts ...sim.Option) *sim.Cluster {
	if domains < 1 {
		domains = 1
	}
	return sim.NewCluster(domains, opts...)
}

// simSpec is the default §5.1 simulation link spec.
func simSpec() topo.LinkSpec { return topo.DefaultSim() }

// testbedSpec is the default §5.4 testbed link spec.
func testbedSpec() topo.LinkSpec { return topo.DefaultTestbed() }

// aqLimitFor picks the AQ limit used when granting against a link spec:
// the paper's §6 default of "the physical queue limit".
func aqLimitFor(spec topo.LinkSpec) int { return spec.QueueLimit }
