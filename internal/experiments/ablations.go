package experiments

import (
	"aqueue/internal/control"
	"aqueue/internal/sim"
	"aqueue/internal/topo"
	"aqueue/internal/transport"
	"aqueue/internal/units"
)

// AblationAQLimit measures the goodput of a 5 Gbps drop-type AQ entity as
// a function of the AQ limit (§6: "low allocated bandwidth can lead to a
// small AQ limit, which might hinder the entity to achieve its allocated
// bandwidth due to excess packet drops"). Returns Gbps.
func AblationAQLimit(limit int, horizon sim.Time) float64 {
	eng := sim.NewEngine()
	spec := simSpec()
	d := topo.NewDumbbell(eng, 1, 1, spec, spec)
	ctrl := control.NewController(spec.Rate)
	g, err := ctrl.Grant(control.Request{Tenant: "x", Mode: control.Absolute,
		Bandwidth: 5 * units.Gbps, Limit: limit, Position: control.Ingress}, d.S1.Ingress)
	if err != nil {
		panic(err)
	}
	flows := longFlows(d.Left, d.Right, 4, ccFactory("cubic"), transport.Options{IngressAQ: g.ID})
	eng.RunUntil(horizon)
	return gbpsOf(sumAcked(flows), horizon)
}

// AblationWorkConservation measures an entity with a 3 Gbps guarantee on
// an otherwise idle 10 Gbps link, with and without the §6 empty-queue
// bypass. Returns the entity's Gbps: ~3 strict, ~10 with the bypass.
func AblationWorkConservation(bypass bool, horizon sim.Time) float64 {
	eng := sim.NewEngine()
	spec := simSpec()
	d := topo.NewDumbbell(eng, 1, 1, spec, spec)
	d.S1.WorkConserving = bypass
	ctrl := control.NewController(spec.Rate)
	g, err := ctrl.Grant(control.Request{Tenant: "x", Mode: control.Absolute,
		Bandwidth: 3 * units.Gbps, Limit: aqLimitFor(spec), Position: control.Ingress}, d.S1.Ingress)
	if err != nil {
		panic(err)
	}
	flows := longFlows(d.Left, d.Right, 4, ccFactory("cubic"), transport.Options{IngressAQ: g.ID})
	eng.RunUntil(horizon)
	return gbpsOf(sumAcked(flows), horizon)
}

// AblationWeightedRebalance measures the surviving entity's rate after its
// peer goes idle halfway, with and without the controller's active-set
// rebalance (§4.1). With rebalance the survivor absorbs the idle share
// (~10 Gbps); without it the survivor stays at its static 5 Gbps.
func AblationWeightedRebalance(rebalance bool, horizon sim.Time) float64 {
	eng := sim.NewEngine()
	spec := simSpec()
	d := topo.NewDumbbell(eng, 2, 2, spec, spec)
	ctrl := control.NewController(spec.Rate)
	grant := func(tenant string) control.Grant {
		g, err := ctrl.Grant(control.Request{Tenant: tenant, Mode: control.Weighted,
			Weight: 1, Limit: aqLimitFor(spec), Position: control.Ingress}, d.S1.Ingress)
		if err != nil {
			panic(err)
		}
		return g
	}
	gA := grant("A")
	gB := grant("B")

	a := transport.NewSender(d.Left[0], d.Right[0], 0, ccFactory("cubic")(),
		transport.Options{IngressAQ: gA.ID})
	a.Start(0)
	b := transport.NewSender(d.Left[1], d.Right[1], 0, ccFactory("cubic")(),
		transport.Options{IngressAQ: gB.ID})
	b.Start(0)

	half := horizon / 2
	eng.RunUntil(half)
	b.Stop()
	if rebalance {
		ctrl.SetActive(gB.ID, false)
	}
	ackedAtHalf := uint64(a.AckedBytes())
	eng.RunUntil(horizon)
	return gbpsOf(uint64(a.AckedBytes())-ackedAtHalf, horizon-half)
}

// AblationReallocator measures entity A's rate when its peer B demands
// only 1 Gbps of its 5 Gbps weighted share, with and without the §6
// arrival-rate reallocator (internal/control.Reallocator). Without it A is
// pinned at its static 5 Gbps; with it A absorbs B's idle capacity.
func AblationReallocator(enabled bool, horizon sim.Time) float64 {
	eng := sim.NewEngine()
	spec := simSpec()
	d := topo.NewDumbbell(eng, 2, 2, spec, spec)
	ctrl := control.NewController(spec.Rate)
	gA, err := ctrl.Grant(control.Request{Tenant: "A", Mode: control.Weighted,
		Weight: 1, Limit: aqLimitFor(spec), Position: control.Ingress}, d.S1.Ingress)
	if err != nil {
		panic(err)
	}
	gB, err := ctrl.Grant(control.Request{Tenant: "B", Mode: control.Weighted,
		Weight: 1, Limit: aqLimitFor(spec), Position: control.Ingress}, d.S1.Ingress)
	if err != nil {
		panic(err)
	}
	if enabled {
		re := control.NewReallocator(eng, ctrl, 5*sim.Millisecond)
		re.Manage(gA.ID, d.S1.Ingress, 1)
		re.Manage(gB.ID, d.S1.Ingress, 1)
		re.Start()
	}
	flows := longFlows(d.Left[:1], d.Right[:1], 4, ccFactory("cubic"),
		transport.Options{IngressAQ: gA.ID})
	// Entity B: a 1 Gbps CBR — far under its share.
	u := transport.NewUDPSender(d.Left[1], d.Right[1], 1*units.Gbps,
		transport.Options{IngressAQ: gB.ID})
	u.Start(0)
	// Measure A over the second half (the reallocator needs a few rounds).
	half := horizon / 2
	eng.RunUntil(half)
	at := sumAcked(flows)
	eng.RunUntil(horizon)
	return gbpsOf(sumAcked(flows)-at, horizon-half)
}
