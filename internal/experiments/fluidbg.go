package experiments

import (
	"fmt"
	"math"

	"aqueue/internal/control"
	"aqueue/internal/fluid"
	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/stats"
	"aqueue/internal/topo"
	"aqueue/internal/transport"
	"aqueue/internal/units"
	"aqueue/internal/workload"
)

// This file is the fidelity gate of the hybrid fluid/packet split: the
// fig9-style guarantee scenario and the fig6-style completion scenario
// each run twice — background load as a packet-level UDP blaster, then as
// a fluid entity — and the foreground results must agree. The fluid lane
// earns its million-entity scaling only if replacing background packets
// with rate ODEs is unobservable (within tolerance) to the packet-level
// foreground it shares the fabric with.

// FluidBGTolerancePct is the fidelity gate: foreground guarantee
// precision, fairness and completion time under a fluid background must be
// within this percentage of the all-packet baseline.
const FluidBGTolerancePct = 5.0

// FluidBGResult carries both scenarios' paired runs and the fidelity
// deltas between them.
type FluidBGResult struct {
	// Guarantee scenario (fig9-style): per-foreground-entity goodputs in
	// Gbps over the steady window, under packet and fluid background.
	GoodputPkt   []float64
	GoodputFluid []float64
	JainPkt      float64
	JainFluid    float64
	// Background goodput in each variant (reported, not gated: the
	// foreground is what the gate protects).
	BGPkt   float64
	BGFluid float64
	// Completion scenario (fig6-style): the foreground tenant's workload
	// completion time under each background.
	CompletionPkt   sim.Time
	CompletionFluid sim.Time

	// The gated deltas, in percent.
	GuaranteeDeltaPct  float64
	JainDeltaPct       float64
	CompletionDeltaPct float64
}

// MaxDeltaPct returns the worst gated delta.
func (r FluidBGResult) MaxDeltaPct() float64 {
	return math.Max(r.GuaranteeDeltaPct, math.Max(r.JainDeltaPct, r.CompletionDeltaPct))
}

// relDeltaPct is |b-a|/a in percent (0 when a is 0).
func relDeltaPct(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return math.Abs(b-a) / math.Abs(a) * 100
}

// fluidGuaranteeRun is the fig9-style scenario: three foreground CUBIC
// entities and one line-rate background blaster share the bottleneck
// under AQ weighted mode (2.5 Gbps each). The background is a UDP packet
// sender or a fluid Fixed entity depending on fluidBG. Returns the
// foreground goodputs over the steady window and the background goodput.
func fluidGuaranteeRun(fluidBG bool, horizon sim.Time, domains int, opts []sim.Option) (fg []float64, bg float64) {
	const nFG = 3
	n := nFG + 1
	c := newClusterN(domains, opts...)
	defer c.Close()
	spec := simSpec()
	d := topo.NewDumbbellIn(c, n, n, spec, spec)
	rc := newRxClassifier(d.Right, n, sim.Millisecond, func(p *packet.Packet) int {
		return int(p.Dst) - n
	})
	ctrl := control.NewController(spec.Rate)

	grant := func(name string) packet.AQID {
		g, err := ctrl.Grant(control.Request{Tenant: name, Mode: control.Weighted,
			Weight: 1, Limit: aqLimitFor(spec), Position: control.Ingress}, d.S1.Ingress)
		if err != nil {
			panic(err)
		}
		return g.ID
	}
	for i := 0; i < nFG; i++ {
		opt := transport.Options{IngressAQ: grant(fmt.Sprintf("fg-%d", i))}
		s := transport.NewSender(d.Left[i], d.Right[i], 0, ccFactory("cubic")(), opt)
		s.Start(sim.Time(i) * 20 * sim.Microsecond)
	}
	bgID := grant("bg")

	var bgEntity fluid.Entity
	if fluidBG {
		// The lane lives on S1's engine: its table, the bottleneck pipe
		// and the epoch timer are all domain-local there.
		lane := fluid.NewLane(d.S1.Engine(), d.S1.Ingress, 0)
		pi := lane.AddPipe(d.Bottleneck)
		bgEntity = lane.Add(fluid.EntityConfig{
			AQ: bgID, CC: "udp", Rate: spec.Rate, Pipe: pi,
		})
		lane.SetDeadline(horizon)
		lane.Start(0)
	} else {
		u := transport.NewUDPSender(d.Left[nFG], d.Right[nFG], spec.Rate,
			transport.Options{IngressAQ: bgID})
		u.Start(0)
	}
	c.RunUntil(horizon)

	from, to := horizon/4, horizon // skip the slow-start transient
	fg = make([]float64, nFG)
	for i := range fg {
		fg[i] = rc.Gbps(i, from, to)
	}
	if fluidBG {
		bg = bgEntity.Delivered() * 8 / float64(horizon)
	} else {
		bg = rc.Gbps(nFG, 0, horizon)
	}
	return fg, bg
}

// fluidCompletionRun is the fig6-style scenario: a four-VM tenant replays
// a closed-loop web-search trace against a line-rate background blaster,
// both holding weight-1 AQ grants. Returns the tenant's workload
// completion time. The background stops when the tenant finishes, so the
// run ends promptly in both variants.
func fluidCompletionRun(fluidBG bool, flows int, seed uint64, domains int, opts []sim.Option) sim.Time {
	const vms = 4
	c := newClusterN(domains, opts...)
	defer c.Close()
	spec := simSpec()
	d := topo.NewDumbbellIn(c, vms+1, vms+1, spec, spec)
	ctrl := control.NewController(spec.Rate)

	g, err := ctrl.Grant(control.Request{Tenant: "tenant", Mode: control.Weighted,
		Weight: 1, Limit: aqLimitFor(spec), Position: control.Ingress}, d.S1.Ingress)
	if err != nil {
		panic(err)
	}
	bgGrant, err := ctrl.Grant(control.Request{Tenant: "bg", Mode: control.Weighted,
		Weight: 1, Limit: aqLimitFor(spec), Position: control.Ingress}, d.S1.Ingress)
	if err != nil {
		panic(err)
	}

	r := sim.NewRand(seed)
	var ws workload.WebSearch
	sizes := make([]int64, flows)
	var traceBytes int64
	for i := range sizes {
		sizes[i] = ws.Sample(r)
		traceBytes += sizes[i]
	}
	// The tenant's share is half the link; cap the run at several times
	// the ideal completion so a stuck run is visible, not endless.
	share := units.BitRate(float64(spec.Rate) / 2)
	ideal := sim.Time(float64(traceBytes*8) / float64(share) * 1e9)
	runCap := 6*ideal + 200*sim.Millisecond

	var stopBG func()
	if fluidBG {
		lane := fluid.NewLane(d.S1.Engine(), d.S1.Ingress, 0)
		pi := lane.AddPipe(d.Bottleneck)
		lane.Add(fluid.EntityConfig{AQ: bgGrant.ID, CC: "udp", Rate: spec.Rate, Pipe: pi})
		lane.SetDeadline(runCap)
		lane.Start(0)
		stopBG = lane.Stop
	} else {
		u := transport.NewUDPSender(d.Left[vms], d.Right[vms], spec.Rate,
			transport.Options{IngressAQ: bgGrant.ID})
		u.Start(0)
		stopBG = u.Stop
	}

	tr := &stats.FCT{}
	opt := transport.Options{IngressAQ: g.ID}
	id := g.ID
	runClosedLoop(d.Left[:vms], d.Right[:vms], sizes, ccFactory("cubic"), opt, tr, r, func() {
		ctrl.SetActive(id, false)
		stopBG()
	})
	c.RunUntil(runCap)
	if !tr.AllDone() {
		return runCap
	}
	return tr.CompletionTime()
}

// FluidBG runs both fidelity scenarios and computes the gated deltas.
func FluidBG(horizon sim.Time, flows int, seed uint64, domains int, opts ...sim.Option) FluidBGResult {
	var r FluidBGResult
	r.GoodputPkt, r.BGPkt = fluidGuaranteeRun(false, horizon, domains, opts)
	r.GoodputFluid, r.BGFluid = fluidGuaranteeRun(true, horizon, domains, opts)
	r.JainPkt = stats.JainIndex(r.GoodputPkt)
	r.JainFluid = stats.JainIndex(r.GoodputFluid)
	for i := range r.GoodputPkt {
		if d := relDeltaPct(r.GoodputPkt[i], r.GoodputFluid[i]); d > r.GuaranteeDeltaPct {
			r.GuaranteeDeltaPct = d
		}
	}
	r.JainDeltaPct = relDeltaPct(r.JainPkt, r.JainFluid)

	r.CompletionPkt = fluidCompletionRun(false, flows, seed, domains, opts)
	r.CompletionFluid = fluidCompletionRun(true, flows, seed, domains, opts)
	r.CompletionDeltaPct = relDeltaPct(float64(r.CompletionPkt), float64(r.CompletionFluid))
	return r
}

// FluidBGTable renders the paired runs side by side.
func FluidBGTable(r FluidBGResult) *Table {
	t := &Table{
		Title:  "Fluid background fidelity: foreground results, packet vs fluid background",
		Header: []string{"metric", "packet bg", "fluid bg", "delta %"},
	}
	for i := range r.GoodputPkt {
		t.AddRow(fmt.Sprintf("fg-%d goodput (Gbps)", i), r.GoodputPkt[i], r.GoodputFluid[i],
			relDeltaPct(r.GoodputPkt[i], r.GoodputFluid[i]))
	}
	t.AddRow("fg Jain index", r.JainPkt, r.JainFluid, r.JainDeltaPct)
	t.AddRow("bg goodput (Gbps)", r.BGPkt, r.BGFluid, relDeltaPct(r.BGPkt, r.BGFluid))
	t.AddRow("tenant completion (ms)",
		float64(r.CompletionPkt)/float64(sim.Millisecond),
		float64(r.CompletionFluid)/float64(sim.Millisecond),
		r.CompletionDeltaPct)
	return t
}
