package experiments

import (
	"testing"

	"aqueue/internal/sim"
)

func TestFabricIsolationAcrossECMP(t *testing.T) {
	pqA, pqB, aqA, aqB := ExtFabricIsolation(80*sim.Millisecond, 1)
	if pqB < 1.5*pqA {
		t.Fatalf("PQ fabric split %.2f/%.2f, expected flow-count bias", pqA, pqB)
	}
	if r := aqA / aqB; r < 0.85 || r > 1.18 {
		t.Fatalf("AQ fabric split %.2f/%.2f, want ~equal", aqA, aqB)
	}
	if aqA+aqB < 17 {
		t.Fatalf("AQ fabric total %.2f Gbps of ~20 available", aqA+aqB)
	}
}

func TestFabricIncastGuarantee(t *testing.T) {
	pqIn, aqIn := ExtFabricIncast(80*sim.Millisecond, 1)
	if pqIn < 4 {
		t.Fatalf("PQ incast inbound %.2f Gbps, expected the burst to land", pqIn)
	}
	if aqIn < 1.6 || aqIn > 2.3 {
		t.Fatalf("AQ incast inbound %.2f Gbps, want the 2 Gbps profile", aqIn)
	}
}
