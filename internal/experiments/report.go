package experiments

import "aqueue/internal/harness"

// Table is the rendered experiment result. It now lives in
// internal/harness (the harness serializes it to JSON alongside run
// metadata); the alias keeps every experiment definition and its tests
// unchanged.
type Table = harness.Table
