package experiments

import (
	"fmt"

	"aqueue/internal/control"
	"aqueue/internal/packet"
	"aqueue/internal/ratelimit"
	"aqueue/internal/sim"
	"aqueue/internal/stats"
	"aqueue/internal/topo"
	"aqueue/internal/transport"
	"aqueue/internal/units"
	"aqueue/internal/workload"
)

// Table3Row is VM A's measured rate ranges under one approach.
type Table3Row struct {
	Approach        string
	OutLo, OutHi    float64
	InLo, InHi      float64
	HasMeasurements bool
}

// table3Run builds the Figure 2 star (four VMs, 25 Gbps): VM A sends the
// web-search trace to B, C and D while B, C and D send to A, everyone
// saturating. VM A's traffic profile is 5 Gbps outbound and 5 Gbps
// inbound. The function returns the windowed min~max of A's outbound and
// inbound rates.
func table3Run(approach Approach, seed uint64, domains int, opts []sim.Option) Table3Row {
	return table3RunFor(approach, seed, 400*sim.Millisecond, domains, opts)
}

// table3RunFor is table3Run with an explicit horizon (tests shorten it).
func table3RunFor(approach Approach, seed uint64, horizon sim.Time, domains int, opts []sim.Option) Table3Row {
	c := newClusterN(domains, opts...)
	defer c.Close()
	spec := testbedSpec()
	st := topo.NewStarIn(c, 4, spec)
	warmup := horizon / 4
	window := horizon / 12
	const profile = 5 * units.Gbps
	a := st.Hosts[0]

	// Outbound = data from A delivered anywhere; inbound = data delivered
	// to A. The hooks read the receiving host's own clock: under
	// partitioning the run has no single "the" engine to ask for the time.
	outMeter := stats.NewMeter(sim.Millisecond)
	inMeter := stats.NewMeter(sim.Millisecond)
	for _, h := range st.Hosts {
		h := h
		h.RxHook = func(p *packet.Packet) {
			if p.Kind != packet.Data {
				return
			}
			if p.Src == a.ID() {
				outMeter.Add(h.Engine().Now(), p.Size)
			}
			if p.Dst == a.ID() {
				inMeter.Add(h.Engine().Now(), p.Size)
			}
		}
	}

	ctrl := control.NewController(spec.Rate)
	outAQ := make(map[packet.HostID]packet.AQID)
	inAQ := make(map[packet.HostID]packet.AQID)
	var drl *ratelimit.DRL
	switch approach {
	case AQ:
		for _, h := range st.Hosts {
			gOut, err := ctrl.Grant(control.Request{Tenant: "out", Mode: control.Absolute,
				Bandwidth: profile, Limit: aqLimitFor(spec), Position: control.Ingress}, st.SW.Ingress)
			if err != nil {
				panic(err)
			}
			gIn, err := ctrl.Grant(control.Request{Tenant: "in", Mode: control.Absolute,
				Bandwidth: profile, Limit: aqLimitFor(spec), Position: control.Egress}, st.SW.Egress)
			if err != nil {
				panic(err)
			}
			outAQ[h.ID()] = gOut.ID
			inAQ[h.ID()] = gIn.ID
		}
	case PRL:
		for _, h := range st.Hosts {
			ratelimit.AttachPRL(h, profile)
		}
	case DRL:
		// All VMs live in domain 0 (NewStarIn keeps the hosts together for
		// exactly this reason), so the DRL control loop runs there.
		drl = ratelimit.NewDRL(st.Eng, spec.Rate, ratelimit.DefaultInterval)
		for _, h := range st.Hosts {
			drl.AddVM(h, ratelimit.Profile{OutMin: profile, OutMax: profile, InMax: profile})
		}
		drl.Start()
	}

	r := sim.NewRand(seed)
	var ws workload.WebSearch
	// Continuous closed-loop workers: A sends to the others; the others
	// send to A. Eight workers each keep every direction saturated.
	startWorkers := func(src *topo.Host, dsts []*topo.Host, workers int) {
		for w := 0; w < workers; w++ {
			var loop func()
			loop = func() {
				dst := dsts[r.Intn(len(dsts))]
				opt := transport.Options{
					IngressAQ: outAQ[src.ID()],
					EgressAQ:  inAQ[dst.ID()],
				}
				s := transport.NewSender(src, dst, ws.Sample(r), ccFactory("cubic")(), opt)
				s.OnComplete = func(sim.Time) { loop() }
				s.Start(sim.Time(r.Intn(50_000)))
			}
			loop()
		}
	}
	others := []*topo.Host{st.Hosts[1], st.Hosts[2], st.Hosts[3]}
	startWorkers(a, others, 8)
	for _, h := range others {
		startWorkers(h, []*topo.Host{a}, 8)
	}
	c.RunUntil(horizon)

	rangeOf := func(m *stats.Meter) (float64, float64) {
		lo, hi := -1.0, -1.0
		for from := warmup; from+window <= horizon; from += window {
			g := m.Gbps(from, from+window)
			if lo < 0 || g < lo {
				lo = g
			}
			if g > hi {
				hi = g
			}
		}
		return lo, hi
	}
	row := Table3Row{Approach: approach.String(), HasMeasurements: true}
	row.OutLo, row.OutHi = rangeOf(outMeter)
	row.InLo, row.InHi = rangeOf(inMeter)
	return row
}

// Table3 reproduces Table 3: VM A's outbound and inbound rate ranges under
// the four approaches, plus a second AQ run standing in for the paper's
// independent simulator measurement (different seed; documented
// substitution).
func Table3(domains int, opts ...sim.Option) *Table {
	t := &Table{
		Title:  "Table 3: outbound and inbound rates of VM A (profile 5 Gbps each way)",
		Header: []string{"approach", "outbound (Gbps)", "inbound (Gbps)"},
	}
	t.AddRow("Ideal", "5.00", "5.00")
	rows := []Table3Row{
		table3Run(PQ, 1, domains, opts),
		table3Run(PRL, 1, domains, opts),
		table3Run(DRL, 1, domains, opts),
		table3Run(AQ, 1, domains, opts),
	}
	labels := []string{"PQ", "PRL", "DRL", "AQ-testbed"}
	for i, r := range rows {
		t.AddRow(labels[i],
			fmt.Sprintf("%.1f ~ %.1f", r.OutLo, r.OutHi),
			fmt.Sprintf("%.1f ~ %.1f", r.InLo, r.InHi))
	}
	sim2 := table3Run(AQ, 424242, domains, opts)
	t.AddRow("AQ-simulator",
		fmt.Sprintf("%.1f ~ %.1f", sim2.OutLo, sim2.OutHi),
		fmt.Sprintf("%.1f ~ %.1f", sim2.InLo, sim2.InHi))
	return t
}
