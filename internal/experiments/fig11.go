package experiments

import (
	"fmt"

	"aqueue/internal/control"
	"aqueue/internal/core"
	"aqueue/internal/packet"
	"aqueue/internal/units"
)

// Fig11 reproduces Figure 11: the AQ program's usage of each switch
// data-plane resource class (see internal/control's resource model and the
// DESIGN.md substitution note for the Tofino toolchain).
func Fig11() *Table {
	m := control.NewResourceModel()
	t := &Table{
		Title:  "Figure 11: usage of data-plane resources on the modelled Tofino switch",
		Header: []string{"resource", "usage (%)"},
	}
	for _, u := range m.StaticUsage() {
		t.AddRow(u.Resource, u.Percent)
	}
	return t
}

// Fig12Counts are the AQ population sizes of Figure 12's x-axis.
var Fig12Counts = []int{1000, 10_000, 100_000, 1_000_000, 2_000_000, 4_000_000}

// Fig12 reproduces Figure 12: switch memory consumed by n deployed AQs
// (15 bytes each) against the SRAM budget. It also deploys a live
// core.Table at the smaller sizes to confirm the model matches the
// implementation's own accounting.
func Fig12() *Table {
	m := control.NewResourceModel()
	t := &Table{
		Title:  "Figure 12: memory consumption vs number of traffic constituents",
		Header: []string{"#AQs", "memory (MB)", "SRAM used (%)", "fits?"},
	}
	for _, n := range Fig12Counts {
		mb := float64(m.MemoryBytes(n)) / 1e6
		fits := "yes"
		if m.MemoryBytes(n) > m.TotalSRAMBytes {
			fits = "no"
		}
		t.AddRow(fmt.Sprint(n), mb, m.SRAMPct(n), fits)
	}
	// Cross-check the model against a live table deployment.
	tbl := core.NewTable()
	for i := 1; i <= 1000; i++ {
		tbl.Deploy(core.Config{ID: packet.AQID(i), Rate: units.Gbps})
	}
	if tbl.MemoryBytes() != m.MemoryBytes(1000) {
		panic("experiments: resource model disagrees with core.Table accounting")
	}
	return t
}
