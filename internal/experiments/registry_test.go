package experiments

import (
	"testing"

	"aqueue/internal/harness"
	"aqueue/internal/sim"
)

// expectedExperiments is every experiment the seed repo ships, in the
// paper's presentation order.
var expectedExperiments = []string{
	"fig1", "fig3", "fig6", "fig7", "fig8", "fig9", "fig10",
	"fig11", "fig12", "table2", "table3", "table4", "extfabric", "extqueues",
}

func TestRegistryHasEveryExperiment(t *testing.T) {
	pos := map[string]int{}
	for i, name := range harness.Names() {
		pos[name] = i
	}
	prev := -1
	for _, name := range expectedExperiments {
		e, ok := harness.Get(name)
		if !ok {
			t.Fatalf("experiment %q not registered", name)
		}
		if e.Name() != name {
			t.Fatalf("experiment %q reports name %q", name, e.Name())
		}
		if Description(name) == "" {
			t.Errorf("experiment %q has no description", name)
		}
		at, listed := pos[name]
		if !listed {
			t.Fatalf("experiment %q missing from Names()", name)
		}
		if at <= prev {
			t.Errorf("experiment %q out of presentation order", name)
		}
		prev = at
	}
}

func TestRegistryRejectsUnknownNames(t *testing.T) {
	if _, ok := harness.Get("fig99"); ok {
		t.Fatal("unknown experiment resolved")
	}
	if _, err := harness.Jobs([]string{"fig1", "fig99"}, nil, harness.Params{}); err == nil {
		t.Fatal("Jobs accepted an unknown name")
	}
}

func TestDefaultParams(t *testing.T) {
	full := DefaultParams(false)
	if full.Horizon != 400*sim.Millisecond || full.Flows != 150 || full.Seed != 1 {
		t.Fatalf("full params = %+v", full)
	}
	quick := DefaultParams(true)
	if quick.Horizon != 120*sim.Millisecond || quick.Flows != 40 || !quick.Quick {
		t.Fatalf("quick params = %+v", quick)
	}
}

// TestHarnessParallelMatchesSequential is the determinism contract of the
// parallel harness: running a batch of experiments concurrently (run with
// -race in CI) must produce results byte-identical to running the same
// batch sequentially with the same seeds.
func TestHarnessParallelMatchesSequential(t *testing.T) {
	names := []string{"fig3", "fig11", "fig12", "fig1", "fig6"}
	base := harness.Params{Horizon: 10 * sim.Millisecond, Flows: 8, Seed: 7}
	jobs, err := harness.Jobs(names, []uint64{7}, base)
	if err != nil {
		t.Fatal(err)
	}
	seq := (&harness.Pool{Workers: 1}).Run(jobs)
	par := (&harness.Pool{Workers: 4}).Run(jobs)
	for i := range jobs {
		if seq[i].Error != "" || par[i].Error != "" {
			t.Fatalf("%s failed: seq=%q par=%q", seq[i].Name, seq[i].Error, par[i].Error)
		}
		if len(seq[i].Tables) == 0 {
			t.Fatalf("%s produced no tables", seq[i].Name)
		}
		if harness.Fingerprint(seq[i]) != harness.Fingerprint(par[i]) {
			t.Errorf("%s: parallel result differs from sequential:\nseq: %s\npar: %s",
				seq[i].Name, seq[i].Rendered(), par[i].Rendered())
		}
	}
}

// TestRunsAreReproducible pins the engine-scoped determinism that the
// harness relies on: the same (experiment, seed) fingerprints identically
// on repeated runs within one process.
func TestRunsAreReproducible(t *testing.T) {
	e, ok := harness.Get("fig6")
	if !ok {
		t.Fatal("fig6 not registered")
	}
	p := harness.Params{Horizon: 10 * sim.Millisecond, Flows: 6, Seed: 3}
	a, err := e.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if harness.Fingerprint(a) != harness.Fingerprint(b) {
		t.Fatalf("repeated runs differ:\n%s\nvs\n%s", a.Rendered(), b.Rendered())
	}
}
