package experiments

import (
	"testing"

	"aqueue/internal/sim"
)

// TestFluidBGFidelityGate is the fidelity gate of the hybrid fluid/packet
// split: foreground guarantee precision, Jain fairness and workload
// completion under a fluid background must sit within FluidBGTolerancePct
// of the all-packet baseline. CI runs this by name under -race.
func TestFluidBGFidelityGate(t *testing.T) {
	r := FluidBG(60*sim.Millisecond, 12, 1, 1)
	if r.GuaranteeDeltaPct > FluidBGTolerancePct {
		t.Errorf("guarantee delta %.2f%% exceeds %.1f%% (pkt %v vs fluid %v)",
			r.GuaranteeDeltaPct, FluidBGTolerancePct, r.GoodputPkt, r.GoodputFluid)
	}
	if r.JainDeltaPct > FluidBGTolerancePct {
		t.Errorf("Jain delta %.2f%% exceeds %.1f%% (pkt %.4f vs fluid %.4f)",
			r.JainDeltaPct, FluidBGTolerancePct, r.JainPkt, r.JainFluid)
	}
	if r.CompletionDeltaPct > FluidBGTolerancePct {
		t.Errorf("completion delta %.2f%% exceeds %.1f%% (pkt %v vs fluid %v)",
			r.CompletionDeltaPct, FluidBGTolerancePct, r.CompletionPkt, r.CompletionFluid)
	}
	// Sanity: the guarantee scenario must actually have loaded the link —
	// every foreground entity near its 2.5 Gbps share in both variants.
	for i, g := range r.GoodputPkt {
		if g < 1.5 {
			t.Errorf("packet-bg fg-%d goodput %.2f Gbps: scenario underloaded", i, g)
		}
	}
}

// TestFluidBGDomainParity: the fluid lane is domain-local, so the paired
// scenarios must produce identical results for any partitioning.
func TestFluidBGDomainParity(t *testing.T) {
	base := FluidBG(30*sim.Millisecond, 6, 1, 1)
	for _, domains := range []int{2, 4} {
		got := FluidBG(30*sim.Millisecond, 6, 1, domains)
		if len(got.GoodputPkt) != len(base.GoodputPkt) || len(got.GoodputFluid) != len(base.GoodputFluid) {
			t.Fatalf("domains=%d: result shape changed", domains)
		}
		for i := range base.GoodputPkt {
			if got.GoodputPkt[i] != base.GoodputPkt[i] || got.GoodputFluid[i] != base.GoodputFluid[i] {
				t.Errorf("domains=%d: fg-%d goodput diverged: %v vs %v / %v vs %v",
					domains, i, got.GoodputPkt[i], base.GoodputPkt[i],
					got.GoodputFluid[i], base.GoodputFluid[i])
			}
		}
		if got.CompletionPkt != base.CompletionPkt || got.CompletionFluid != base.CompletionFluid {
			t.Errorf("domains=%d: completion diverged: %v/%v vs %v/%v",
				domains, got.CompletionPkt, got.CompletionFluid,
				base.CompletionPkt, base.CompletionFluid)
		}
	}
}
