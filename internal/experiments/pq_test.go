package experiments

import (
	"testing"

	"aqueue/internal/sim"
)

func TestPerEntityQueuesScalingArgument(t *testing.T) {
	// With entities within the hardware queue count, DRR is fair; beyond
	// it, hash-collided entities share a queue and flow-count capture
	// breaks fairness, while AQ (15 B/entity) keeps it.
	drr4, aq4 := ExtPerEntityQueues(4, 8, 60*sim.Millisecond, 1)
	if drr4 < 0.9 || aq4 < 0.9 {
		t.Fatalf("n=4: DRR %.3f AQ %.3f, both should be fair", drr4, aq4)
	}
	drr32, aq32 := ExtPerEntityQueues(32, 8, 60*sim.Millisecond, 1)
	if aq32 < 0.9 {
		t.Fatalf("n=32: AQ fairness %.3f, want ~1", aq32)
	}
	if drr32 > aq32-0.04 {
		t.Fatalf("n=32: DRR %.3f not clearly below AQ %.3f", drr32, aq32)
	}
}
