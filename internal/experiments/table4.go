package experiments

import (
	"fmt"

	"aqueue/internal/control"
	"aqueue/internal/core"
	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/stats"
	"aqueue/internal/topo"
	"aqueue/internal/transport"
	"aqueue/internal/units"
)

// Table4Row compares one CC algorithm's behaviour under a 25 Gbps physical
// network (PQ) and under a 25 Gbps AQ allocation on a 100 Gbps network.
type Table4Row struct {
	CC              string
	PQGbps, AQGbps  float64
	PQP95d, AQP95d  sim.Time
	RelP95DeltaPct  float64
	PQP50d, AQP50d  sim.Time
	ThroughputDelta float64
}

// table4Run measures one side of the comparison. Under PQ the trunk runs
// at 25 Gbps and the physical queuing delay at the trunk is recorded;
// under AQ the trunk runs at 100 Gbps with a 25 Gbps AQ, and the virtual
// queuing delay carried in the packets is recorded (§5.5).
func table4Run(ccName string, useAQ bool, domains int, opts []sim.Option) (float64, *stats.Percentiles) {
	return table4RunFor(ccName, useAQ, 300*sim.Millisecond, domains, opts)
}

// table4RunFor is table4Run with an explicit horizon (tests shorten it).
func table4RunFor(ccName string, useAQ bool, horizon sim.Time, domains int, opts []sim.Option) (float64, *stats.Percentiles) {
	c := newClusterN(domains, opts...)
	defer c.Close()
	const (
		qLimit = 1000 * 1000
		ecnK   = 160 * 1000
		// The AQ's virtual marking threshold is tuned slightly below the
		// physical K: the A-Gap oscillates a little wider than a physical
		// queue (nothing meters arrivals at the AQ), and §6 notes AQ
		// thresholds are configured empirically per entity.
		aqEcnK = 110 * 1000
	)
	edge := topo.LinkSpec{Rate: 100 * units.Gbps, Delay: 2 * sim.Microsecond,
		QueueLimit: 4 * qLimit, Jitter: 80}
	trunk := edge
	if !useAQ {
		trunk.Rate = 25 * units.Gbps
		trunk.QueueLimit = qLimit
		trunk.ECNThreshold = ecnK
	}
	d := topo.NewDumbbellIn(c, 2, 2, edge, trunk)

	delays := &stats.Percentiles{}
	var opt transport.Options
	opt.EcnCapable = ecnCapable(ccName)
	if useAQ {
		ctrl := control.NewController(100 * units.Gbps)
		g, err := ctrl.Grant(control.Request{Tenant: ccName, Mode: control.Absolute,
			Bandwidth: 25 * units.Gbps, CC: ccTypeFor(ccName),
			Limit: qLimit, ECNThreshold: aqEcnK, Position: control.Ingress}, d.S1.Ingress)
		if err != nil {
			panic(err)
		}
		opt.IngressAQ = g.ID
		for _, h := range d.Right {
			h.RxHook = func(p *packet.Packet) {
				if p.Kind == packet.Data {
					delays.AddDuration(p.VirtualDelay)
				}
			}
		}
	} else {
		d.Bottleneck.DelayHook = func(dl sim.Time, p *packet.Packet) {
			if p.Kind == packet.Data {
				delays.AddDuration(dl)
			}
		}
	}
	flows := longFlows(d.Left, d.Right, 5, ccFactory(ccName), opt)
	c.RunUntil(horizon)
	gbps := gbpsOf(sumAcked(flows), horizon)
	_ = core.BytesPerAQ
	return gbps, delays
}

// Table4CCs are the algorithms the paper reports in Table 4.
var Table4CCs = []string{"cubic", "newreno", "dctcp"}

// Table4 reproduces Table 4: throughput and 95th-percentile queuing delay
// of an entity under PQ (25 Gbps link) and AQ (25 Gbps allocation on a
// 100 Gbps link).
func Table4(domains int, opts ...sim.Option) (*Table, []Table4Row) {
	t := &Table{
		Title:  "Table 4: AQ vs PQ behaviour preservation (25 Gbps entity)",
		Header: []string{"CC", "PQ thpt (Gbps)", "PQ p95 delay", "AQ thpt (Gbps)", "AQ p95 delay", "p95 rel diff"},
	}
	var rows []Table4Row
	for _, ccName := range Table4CCs {
		pqG, pqD := table4Run(ccName, false, domains, opts)
		aqG, aqD := table4Run(ccName, true, domains, opts)
		row := Table4Row{
			CC:     ccName,
			PQGbps: pqG, AQGbps: aqG,
			PQP95d: sim.Time(pqD.Quantile(0.95)),
			AQP95d: sim.Time(aqD.Quantile(0.95)),
			PQP50d: sim.Time(pqD.Quantile(0.50)),
			AQP50d: sim.Time(aqD.Quantile(0.50)),
		}
		if row.PQP95d > 0 {
			row.RelP95DeltaPct = 100 * float64(row.AQP95d-row.PQP95d) / float64(row.PQP95d)
			if row.RelP95DeltaPct < 0 {
				row.RelP95DeltaPct = -row.RelP95DeltaPct
			}
		}
		if pqG > 0 {
			row.ThroughputDelta = 100 * (aqG - pqG) / pqG
		}
		rows = append(rows, row)
		t.AddRow(ccName, pqG, row.PQP95d.String(), aqG, row.AQP95d.String(),
			fmt.Sprintf("%.1f%%", row.RelP95DeltaPct))
	}
	return t, rows
}
