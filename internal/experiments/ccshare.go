package experiments

import (
	"fmt"

	"aqueue/internal/control"
	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/topo"
	"aqueue/internal/transport"
)

// ccEntity describes one entity in a CC-sharing experiment: either n TCP
// flows under one algorithm or a line-rate UDP blast.
type ccEntity struct {
	cc    string // "udp" for the UDP entity
	flows int
	udp   bool
}

// CCShareResult is one entity's outcome.
type CCShareResult struct {
	Label string
	Gbps  float64
}

// runCCShare shares a 10 Gbps dumbbell among the entities under the given
// approach (PQ or AQ; the rate-limiting baselines are not part of these
// experiments) and returns per-entity goodput measured after warmup.
// domains selects how many conservative time-synced engines carry the run.
func runCCShare(approach Approach, entities []ccEntity, horizon sim.Time, seed uint64, domains int, opts []sim.Option) []CCShareResult {
	c := newClusterN(domains, opts...)
	defer c.Close()
	spec := simSpec()
	m := len(entities)
	hostsPer := 2
	d := topo.NewDumbbellIn(c, m*hostsPer, m*hostsPer, spec, spec)

	classify := func(p *packet.Packet) int {
		// Destination hosts are allocated per entity in blocks.
		idx := int(p.Dst) - m*hostsPer
		if idx < 0 {
			return -1
		}
		return idx / hostsPer
	}
	rc := newRxClassifier(d.Right, m, sim.Millisecond, classify)

	ctrl := control.NewController(spec.Rate)
	for i, e := range entities {
		srcs := d.Left[i*hostsPer : (i+1)*hostsPer]
		dsts := d.Right[i*hostsPer : (i+1)*hostsPer]
		var opt transport.Options
		if approach == AQ {
			g, err := ctrl.Grant(control.Request{
				Tenant:   e.cc,
				Mode:     control.Weighted,
				Weight:   1,
				CC:       ccTypeFor(e.cc),
				Limit:    aqLimitFor(spec),
				Position: control.Ingress,
			}, d.S1.Ingress)
			if err != nil {
				panic(err)
			}
			opt.IngressAQ = g.ID
		}
		if e.udp {
			u := transport.NewUDPSender(srcs[0], dsts[0], spec.Rate, opt)
			u.Start(0)
			continue
		}
		opt.EcnCapable = ecnCapable(e.cc)
		longFlows(srcs, dsts, e.flows, ccFactory(e.cc), opt)
	}
	_ = seed
	c.RunUntil(horizon)

	warmup := horizon / 4
	out := make([]CCShareResult, m)
	for i, e := range entities {
		label := fmt.Sprintf("%d %s", e.flows, e.cc)
		if e.udp {
			label = "1 udp"
		}
		out[i] = CCShareResult{Label: label, Gbps: rc.Gbps(i, warmup, horizon)}
	}
	return out
}

// Fig1Pairs are the CC pairings of the motivating Figure 1 (10 flows each,
// shared physical queue).
var Fig1Pairs = [][2]string{
	{"cubic", "newreno"},
	{"cubic", "dctcp"},
	{"newreno", "dctcp"},
	{"cubic", "swift"},
	{"dctcp", "swift"},
	{"newreno", "swift"},
}

// Fig1 reproduces Figure 1: traffic interference between CC algorithm
// pairs sharing a physical queue (no AQ).
func Fig1(horizon sim.Time, domains int, opts ...sim.Option) *Table {
	t := &Table{
		Title:  "Figure 1: CC interference in a shared physical queue (10 flows each)",
		Header: []string{"pair", "thpt A (Gbps)", "thpt B (Gbps)"},
	}
	for _, pair := range Fig1Pairs {
		res := runCCShare(PQ, []ccEntity{
			{cc: pair[0], flows: 10},
			{cc: pair[1], flows: 10},
		}, horizon, 1, domains, opts)
		t.AddRow(pair[0]+" + "+pair[1], res[0].Gbps, res[1].Gbps)
	}
	return t
}

// Table2Settings are the paper's Table 2 rows.
var Table2Settings = [][]ccEntity{
	{{cc: "cubic", flows: 5}, {cc: "cubic", flows: 5}},
	{{cc: "cubic", flows: 5}, {cc: "dctcp", flows: 5}},
	{{cc: "newreno", flows: 5}, {cc: "dctcp", flows: 5}},
	{{cc: "illinois", flows: 5}, {cc: "dctcp", flows: 5}},
	{{cc: "cubic", flows: 5}, {cc: "swift", flows: 5}},
	{{cc: "dctcp", flows: 5}, {cc: "swift", flows: 5}},
	{{cc: "dctcp", flows: 10}, {cc: "newreno", flows: 5}},
	{{cc: "dctcp", flows: 10}, {cc: "swift", flows: 5}},
	{
		{cc: "udp", flows: 1, udp: true},
		{cc: "cubic", flows: 3},
		{cc: "dctcp", flows: 3},
		{cc: "swift", flows: 3},
	},
}

// Table2 reproduces Table 2: entity throughput under the CC settings, for
// PQ and AQ.
func Table2(horizon sim.Time, domains int, opts ...sim.Option) *Table {
	t := &Table{
		Title:  "Table 2: Throughput of entities with different CC settings (Gbps)",
		Header: []string{"congestion control", "PQ", "AQ"},
	}
	for _, setting := range Table2Settings {
		pq := runCCShare(PQ, setting, horizon, 1, domains, opts)
		aq := runCCShare(AQ, setting, horizon, 1, domains, opts)
		label, pqS, aqS := "", "", ""
		for i := range setting {
			if i > 0 {
				label += " + "
				pqS += " + "
				aqS += " + "
			}
			label += pq[i].Label
			pqS += fmt.Sprintf("%.1f", pq[i].Gbps)
			aqS += fmt.Sprintf("%.1f", aq[i].Gbps)
		}
		t.AddRow(label, pqS, aqS)
	}
	return t
}
