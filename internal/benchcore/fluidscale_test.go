package benchcore

import (
	"os"
	"testing"

	"aqueue/internal/sim"
)

// TestRunFluidScaleSmall exercises the scenario at 1/300th scale: every
// entity must advance every epoch, the AQ admission path must actually
// shed bytes (the allocations undercut the offered load by design), the
// foreground must move packets, and a partitioned run must reproduce the
// single-engine run exactly — the property the full-scale benchmark's
// Identical field records.
func TestRunFluidScaleSmall(t *testing.T) {
	const (
		k        = 4
		entities = 3200
		fgFlows  = 8
		epoch    = 200 * sim.Microsecond
		horizon  = 2 * sim.Millisecond
	)
	single := RunFluidScale(k, entities, fgFlows, epoch, horizon, 1, false)

	lanes := uint64(k * k / 2)
	epochsPerLane := uint64(horizon / epoch)
	if single.Epochs != lanes*epochsPerLane {
		t.Errorf("epochs = %d, want %d lanes x %d", single.Epochs, lanes, epochsPerLane)
	}
	if single.EntityEpochs != uint64(entities)*epochsPerLane {
		t.Errorf("entity-epochs = %d, want %d x %d", single.EntityEpochs, entities, epochsPerLane)
	}
	if single.Delivered <= 0 {
		t.Errorf("no fluid bytes delivered")
	}
	if single.Dropped <= 0 {
		t.Errorf("no fluid bytes shed: the AQ admission path was not exercised")
	}
	if single.FGPackets == 0 {
		t.Errorf("foreground moved no packets")
	}
	if single.AQModelBytes != entities*15 {
		t.Errorf("AQ model bytes = %d, want %d (15 B/AQ)", single.AQModelBytes, entities*15)
	}

	for _, domains := range []int{2, 4} {
		parted := RunFluidScale(k, entities, fgFlows, epoch, horizon, domains, false)
		if parted.Delivered != single.Delivered || parted.Dropped != single.Dropped ||
			parted.EntityEpochs != single.EntityEpochs || parted.FGPackets != single.FGPackets {
			t.Errorf("domains=%d diverged: delivered %v/%v dropped %v/%v entity-epochs %d/%d fg %d/%d",
				domains, parted.Delivered, single.Delivered, parted.Dropped, single.Dropped,
				parted.EntityEpochs, single.EntityEpochs, parted.FGPackets, single.FGPackets)
		}
	}
}

// TestMeasureFluidScaleFull is the full-scale 1M-entity measurement,
// opt-in via AQ_FLUIDSCALE_FULL=1 — it needs several hundred MB of heap
// and tens of seconds, so tier-1 runs skip it. `aqsim -benchcore` records
// the same configuration in BENCH_simcore.json.
func TestMeasureFluidScaleFull(t *testing.T) {
	if os.Getenv("AQ_FLUIDSCALE_FULL") == "" {
		t.Skip("set AQ_FLUIDSCALE_FULL=1 to run the full-scale scenario")
	}
	r := MeasureFluidScale(FluidScaleSpec{
		K: 8, Entities: 1_000_000, FGFlows: 64,
		Epoch: 500 * sim.Microsecond, Horizon: 5 * sim.Millisecond,
	}, 2)
	t.Logf("%.0f ns/entity-epoch, %.1fM entity-epochs/sec, setup %dms single %dms partitioned %dms",
		r.NsPerEntityEpoch, r.EntityEpochsPerSec/1e6, r.SetupNS/1e6, r.SingleNS/1e6, r.PartitionedNS/1e6)
	t.Logf("delivered %.1fMB shed %.1fMB fg=%d aqmodel=%dB heap=%dMB identical=%v",
		r.FluidDeliveredBytes/1e6, r.FluidDroppedBytes/1e6, r.FGPackets,
		r.AQModelBytes, r.HeapBytes/1e6, r.Identical)
	if !r.Identical {
		t.Errorf("partitioned full-scale run diverged from single-engine")
	}
	if r.EntityEpochs != 10_000_000 {
		t.Errorf("entity-epochs = %d, want 10M (1M entities x 10 epochs)", r.EntityEpochs)
	}
}
