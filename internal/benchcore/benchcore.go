// Package benchcore holds the simulation-core benchmark scenarios shared
// by the `go test -bench` suite and `cmd/aqsim -benchcore`: an engine-only
// event churn, the single-bottleneck forwarding macro-scenario, and the
// full quick experiment sweep. Keeping them here means the CLI records the
// exact workload the benchmarks measure, so BENCH_simcore.json numbers and
// `go test -bench` output stay comparable across PRs.
package benchcore

import (
	"runtime"
	"time"

	"aqueue/internal/cc"
	"aqueue/internal/core"
	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/topo"
	"aqueue/internal/transport"
	"aqueue/internal/units"
)

// RunSingleBottleneck forwards traffic from four entities (two CUBIC flows
// each, tagged with per-entity ingress AQs) plus one unreactive UDP blaster
// through a shared 10 Gbps dumbbell bottleneck for the given horizon. It
// returns the packets put on the bottleneck wire — the quantity the
// forwarding benchmark normalizes by.
func RunSingleBottleneck(horizon sim.Time) uint64 {
	eng := sim.NewEngine()
	spec := topo.DefaultSim()
	d := topo.NewDumbbell(eng, 4, 4, spec, spec)
	for i := 0; i < 4; i++ {
		d.S1.Ingress.Deploy(core.Config{ID: packet.AQID(i + 1), Rate: 2 * units.Gbps})
	}
	var senders []*transport.Sender
	for i := 0; i < 4; i++ {
		opt := transport.Options{IngressAQ: packet.AQID(i + 1)}
		for j := 0; j < 2; j++ {
			s := transport.NewSender(d.Left[i], d.Right[i], 0, cc.NewCubic(), opt)
			s.Start(0)
			senders = append(senders, s)
		}
	}
	u := transport.NewUDPSender(d.Left[0], d.Right[3], 3*units.Gbps,
		transport.Options{IngressAQ: 1})
	u.Start(0)
	eng.RunUntil(horizon)
	for _, s := range senders {
		s.Stop()
	}
	u.Stop()
	return d.Bottleneck.TxPackets
}

// RunEngineChurn drives an engine-only workload: width self-perpetuating
// timers, each firing re-arming itself, until the requested number of
// events has fired. It isolates the event core from the network model, and
// rides the Timer API so it measures whichever scheduling lane timer-class
// events actually use — the hierarchical wheel by default, the heap when
// the wheel is disabled.
func RunEngineChurn(events int, width int) {
	if width > events {
		width = events
	}
	eng := sim.NewEngine()
	fired := 0
	for i := 0; i < width; i++ {
		interval := sim.Time(i + 1)
		var t *sim.Timer
		t = eng.NewTimer(func() {
			fired++
			if fired+width <= events {
				t.RearmAfter(interval)
			}
		})
		t.ArmAfter(interval)
	}
	eng.Run()
}

// EngineResult is the engine micro-benchmark record.
type EngineResult struct {
	Events       int     `json:"events"`
	WallNS       int64   `json:"wall_ns"`
	NsPerEvent   float64 `json:"ns_per_event"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// MeasureEngine times RunEngineChurn over the given number of events.
func MeasureEngine(events int) EngineResult {
	const width = 1024
	RunEngineChurn(events/16, width) // warm-up: heat the free list and heap
	start := time.Now()
	RunEngineChurn(events, width)
	wall := time.Since(start)
	return EngineResult{
		Events:       events,
		WallNS:       wall.Nanoseconds(),
		NsPerEvent:   float64(wall.Nanoseconds()) / float64(events),
		EventsPerSec: float64(events) / wall.Seconds(),
	}
}

// ForwardingResult is the macro forwarding benchmark record. One op is a
// full single-bottleneck run over the configured horizon.
type ForwardingResult struct {
	Runs          int     `json:"runs"`
	HorizonNS     int64   `json:"horizon_ns"`
	PacketsPerOp  uint64  `json:"packets_per_op"`
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	BytesPerOp    float64 `json:"bytes_per_op"`
	NsPerPacket   float64 `json:"ns_per_packet"`
	PacketsPerSec float64 `json:"packets_per_sec"`
}

// MeasureForwarding runs the single-bottleneck scenario `runs` times and
// reports per-op wall time plus per-op allocation counts from
// runtime.MemStats (measured across all runs, divided back out — the same
// accounting `go test -bench` uses).
func MeasureForwarding(runs int, horizon sim.Time) ForwardingResult {
	pkts := RunSingleBottleneck(horizon) // warm-up: fill the packet pool
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < runs; i++ {
		pkts = RunSingleBottleneck(horizon)
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	nsPerOp := float64(wall.Nanoseconds()) / float64(runs)
	return ForwardingResult{
		Runs:          runs,
		HorizonNS:     int64(horizon),
		PacketsPerOp:  pkts,
		NsPerOp:       nsPerOp,
		AllocsPerOp:   float64(after.Mallocs-before.Mallocs) / float64(runs),
		BytesPerOp:    float64(after.TotalAlloc-before.TotalAlloc) / float64(runs),
		NsPerPacket:   nsPerOp / float64(pkts),
		PacketsPerSec: float64(pkts) * float64(runs) / wall.Seconds(),
	}
}

// RunTimerHeavy drives the timer-dominated workload: `flows` CUBIC senders
// crowd a 10 Gbps dumbbell built for a handful, so congestion windows
// collapse to fractional values and every flow lives in pacing/RTO churn —
// the RTO deadline slides on every ACK, pacing timers re-arm between
// segments, and losses fire real retransmission timeouts. It returns the
// packets put on the bottleneck wire, the quantity the wheel-vs-heap
// determinism check compares.
func RunTimerHeavy(flows int, horizon sim.Time) uint64 {
	eng := sim.NewEngine()
	spec := topo.DefaultSim()
	d := topo.NewDumbbell(eng, 4, 4, spec, spec)
	var senders []*transport.Sender
	for i := 0; i < flows; i++ {
		s := transport.NewSender(d.Left[i%4], d.Right[(i+3)%4], 0, cc.NewCubic(),
			transport.Options{})
		s.Start(sim.Time(i) * sim.Microsecond)
		senders = append(senders, s)
	}
	eng.RunUntil(horizon)
	for _, s := range senders {
		s.Stop()
	}
	return d.Bottleneck.TxPackets
}

// TimersResult is the timer-lane benchmark record: the same timer-heavy run
// measured once on the hierarchical wheel (the default) and once forced
// back onto the event heap. Identical reports whether both lanes delivered
// exactly the same traffic — the determinism gate at benchmark scope.
type TimersResult struct {
	Flows        int     `json:"flows"`
	HorizonNS    int64   `json:"horizon_ns"`
	PacketsPerOp uint64  `json:"packets_per_op"`
	WheelNS      int64   `json:"wheel_ns"`
	HeapNS       int64   `json:"heap_ns"`
	Speedup      float64 `json:"speedup"`
	Identical    bool    `json:"identical"`
}

// MeasureTimers times RunTimerHeavy with the wheel on and off. The wheel is
// restored to its default (enabled) before returning.
func MeasureTimers(flows int, horizon sim.Time) TimersResult {
	r := TimersResult{Flows: flows, HorizonNS: int64(horizon)}
	defer sim.SetTimerWheel(true)

	sim.SetTimerWheel(true)
	RunTimerHeavy(flows, horizon/4) // warm-up: heat pools and the wheel
	start := time.Now()
	wheelPkts := RunTimerHeavy(flows, horizon)
	r.WheelNS = time.Since(start).Nanoseconds()
	r.PacketsPerOp = wheelPkts

	sim.SetTimerWheel(false)
	RunTimerHeavy(flows, horizon/4)
	start = time.Now()
	heapPkts := RunTimerHeavy(flows, horizon)
	r.HeapNS = time.Since(start).Nanoseconds()

	r.Identical = wheelPkts == heapPkts
	if r.WheelNS > 0 {
		r.Speedup = float64(r.HeapNS) / float64(r.WheelNS)
	}
	return r
}

// FatTreeResult is the partitioned large-fabric benchmark record: one op is
// a full k-ary fat-tree run over the configured horizon, measured once on a
// single engine and once split into Domains conservative time-synced
// domains. ParallelMeasured reports whether the partitioned pass actually
// ran its domains on goroutines: on a GOMAXPROCS=1 host a "parallel"
// wall-clock would be fiction, so the pass runs cooperatively instead, the
// speedup is omitted, and Note says why — the same honesty convention the
// sweep benchmark uses for worker counts beyond GOMAXPROCS.
type FatTreeResult struct {
	K                int     `json:"k"`
	Domains          int     `json:"domains"`
	HorizonNS        int64   `json:"horizon_ns"`
	PacketsPerOp     uint64  `json:"packets_per_op"`
	SingleNS         int64   `json:"single_ns"`
	PartitionedNS    int64   `json:"partitioned_ns"`
	Windows          uint64  `json:"windows"`
	ParallelMeasured bool    `json:"parallel_measured"`
	Speedup          float64 `json:"speedup,omitempty"`
	// Identical reports whether the partitioned run delivered exactly the
	// same traffic as the single-engine run — the cross-domain determinism
	// check at benchmark scope.
	Identical bool   `json:"identical"`
	Note      string `json:"note,omitempty"`
}

// RunFatTree drives a k-ary fat tree partitioned into the given number of
// domains: every host opens one long CUBIC flow to its counterpart two pods
// over, so all traffic crosses the core and every agg<->core boundary
// mailbox carries load. The workload is setup-only (no runtime callbacks
// reach across domains), which is what makes the parallel window mode sound
// for it. It returns total delivered data packets and the number of sync
// windows the cluster ran.
func RunFatTree(k int, horizon sim.Time, domains int, parallel bool) (delivered uint64, windows uint64) {
	c := sim.NewCluster(domains)
	c.SetParallel(parallel)
	spec := topo.DefaultSim()
	f := topo.NewFatTreeIn(c, k, spec, spec)
	n := len(f.Hosts)
	perPod := f.HostsPerPod()
	for i, src := range f.Hosts {
		dst := f.Hosts[(i+2*perPod)%n]
		s := transport.NewSender(src, dst, 0, cc.NewCubic(), transport.Options{})
		s.Start(sim.Time(i) * 10 * sim.Microsecond)
	}
	c.RunUntil(horizon)
	for _, h := range f.Hosts {
		delivered += h.RxPackets
	}
	return delivered, c.Windows
}

// MeasureFatTree times the fat-tree scenario single-engine vs partitioned.
// The partitioned pass advances its domains on goroutines only when the
// host actually has cores to back them (GOMAXPROCS >= domains); otherwise
// it runs cooperatively and the record says so instead of inventing a
// speedup.
func MeasureFatTree(k int, horizon sim.Time, domains int) FatTreeResult {
	if domains < 2 {
		domains = 2
	}
	r := FatTreeResult{K: k, Domains: domains, HorizonNS: int64(horizon)}

	RunFatTree(k, horizon/4, 1, false) // warm-up: heat pools and heaps
	start := time.Now()
	single, _ := RunFatTree(k, horizon, 1, false)
	r.SingleNS = time.Since(start).Nanoseconds()
	r.PacketsPerOp = single

	r.ParallelMeasured = runtime.GOMAXPROCS(0) >= domains
	if !r.ParallelMeasured {
		r.Note = "GOMAXPROCS < domains: partitioned pass ran cooperatively; a parallel speedup cannot be measured on this host"
	}
	start = time.Now()
	parted, windows := RunFatTree(k, horizon, domains, r.ParallelMeasured)
	r.PartitionedNS = time.Since(start).Nanoseconds()
	r.Windows = windows
	r.Identical = parted == single
	if r.ParallelMeasured && r.PartitionedNS > 0 {
		r.Speedup = float64(r.SingleNS) / float64(r.PartitionedNS)
	}
	return r
}
