// Package benchcore holds the simulation-core benchmark scenarios shared
// by the `go test -bench` suite and `cmd/aqsim -benchcore`: an engine-only
// event churn, the single-bottleneck forwarding macro-scenario, and the
// full quick experiment sweep. Keeping them here means the CLI records the
// exact workload the benchmarks measure, so BENCH_simcore.json numbers and
// `go test -bench` output stay comparable across PRs.
package benchcore

import (
	"fmt"
	"runtime"
	"time"

	"aqueue/internal/cc"
	"aqueue/internal/core"
	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/topo"
	"aqueue/internal/transport"
	"aqueue/internal/units"
)

// BottleneckResult is one single-bottleneck run's outcome: the packets put
// on the bottleneck wire (the quantity the forwarding benchmark normalizes
// by) and the engine's event accounting — events dispatched through the
// scheduler plus deliveries drained inline by burst mode, whose sum is the
// same for any burst size.
type BottleneckResult struct {
	TxPackets uint64
	Events    uint64
	Inlined   uint64
}

// RunSingleBottleneck forwards traffic from four entities (two CUBIC flows
// each, tagged with per-entity ingress AQs) plus one unreactive UDP blaster
// through a shared 10 Gbps dumbbell bottleneck for the given horizon, on an
// engine configured with opts.
func RunSingleBottleneck(horizon sim.Time, opts ...sim.Option) BottleneckResult {
	eng := sim.NewEngine(opts...)
	spec := topo.DefaultSim()
	d := topo.NewDumbbell(eng, 4, 4, spec, spec)
	for i := 0; i < 4; i++ {
		d.S1.Ingress.Deploy(core.Config{ID: packet.AQID(i + 1), Rate: 2 * units.Gbps})
	}
	var senders []*transport.Sender
	for i := 0; i < 4; i++ {
		opt := transport.Options{IngressAQ: packet.AQID(i + 1)}
		for j := 0; j < 2; j++ {
			s := transport.NewSender(d.Left[i], d.Right[i], 0, cc.NewCubic(), opt)
			s.Start(0)
			senders = append(senders, s)
		}
	}
	u := transport.NewUDPSender(d.Left[0], d.Right[3], 3*units.Gbps,
		transport.Options{IngressAQ: 1})
	u.Start(0)
	eng.RunUntil(horizon)
	for _, s := range senders {
		s.Stop()
	}
	u.Stop()
	return BottleneckResult{
		TxPackets: d.Bottleneck.TxPackets,
		Events:    eng.Processed,
		Inlined:   eng.Inlined,
	}
}

// RunEngineChurn drives an engine-only workload: width self-perpetuating
// timers, each firing re-arming itself, until the requested number of
// events has fired. It isolates the event core from the network model, and
// rides the Timer API so it measures whichever scheduling lane timer-class
// events actually use — the hierarchical wheel by default, the heap when
// the wheel is disabled.
func RunEngineChurn(events int, width int) {
	if width > events {
		width = events
	}
	eng := sim.NewEngine()
	fired := 0
	for i := 0; i < width; i++ {
		interval := sim.Time(i + 1)
		var t *sim.Timer
		t = eng.NewTimer(func() {
			fired++
			if fired+width <= events {
				t.RearmAfter(interval)
			}
		})
		t.ArmAfter(interval)
	}
	eng.Run()
}

// EngineResult is the engine micro-benchmark record.
type EngineResult struct {
	Events       int     `json:"events"`
	WallNS       int64   `json:"wall_ns"`
	NsPerEvent   float64 `json:"ns_per_event"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// MeasureEngine times RunEngineChurn over the given number of events.
func MeasureEngine(events int) EngineResult {
	const width = 1024
	RunEngineChurn(events/16, width) // warm-up: heat the free list and heap
	start := time.Now()
	RunEngineChurn(events, width)
	wall := time.Since(start)
	return EngineResult{
		Events:       events,
		WallNS:       wall.Nanoseconds(),
		NsPerEvent:   float64(wall.Nanoseconds()) / float64(events),
		EventsPerSec: float64(events) / wall.Seconds(),
	}
}

// ForwardingResult is the macro forwarding benchmark record. One op is a
// full single-bottleneck run over the configured horizon, executed with the
// configured burst size; a second, untimed-for-comparison pass with burst
// mode off records the per-packet baseline event count, and Identical
// reports whether both passes put exactly the same traffic on the wire —
// the burst determinism gate at benchmark scope.
type ForwardingResult struct {
	Runs         int    `json:"runs"`
	HorizonNS    int64  `json:"horizon_ns"`
	BurstSize    int    `json:"burst_size"`
	PacketsPerOp uint64 `json:"packets_per_op"`

	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	BytesPerOp    float64 `json:"bytes_per_op"`
	NsPerPacket   float64 `json:"ns_per_packet"`
	PacketsPerSec float64 `json:"packets_per_sec"`

	// EventsPerOp counts events dispatched through the scheduler per run;
	// InlinedPerOp counts deliveries burst mode drained without an event.
	// EventsPerPacket = EventsPerOp / PacketsPerOp is the headline
	// amortization metric; NoBurstEventsPerPacket is the same ratio with
	// burst mode off (where InlinedPerOp is zero by construction).
	EventsPerOp            uint64  `json:"events_per_op"`
	InlinedPerOp           uint64  `json:"inlined_per_op"`
	EventsPerPacket        float64 `json:"events_per_packet"`
	NoBurstEventsPerPacket float64 `json:"no_burst_events_per_packet"`
	Identical              bool    `json:"identical"`
}

// MeasureForwarding runs the single-bottleneck scenario `runs` times at the
// given burst size and reports per-op wall time plus per-op allocation
// counts from runtime.MemStats (measured across all runs, divided back out
// — the same accounting `go test -bench` uses). One extra untimed pass with
// burst mode off records the baseline events/packet and checks the two
// modes delivered identical traffic.
func MeasureForwarding(runs int, horizon sim.Time, burst int) ForwardingResult {
	opts := []sim.Option{sim.WithBurstSize(burst)}
	r := RunSingleBottleneck(horizon, opts...) // warm-up: fill the packet pool
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < runs; i++ {
		r = RunSingleBottleneck(horizon, opts...)
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	ref := RunSingleBottleneck(horizon, sim.WithBurstSize(0))
	nsPerOp := float64(wall.Nanoseconds()) / float64(runs)
	return ForwardingResult{
		Runs:         runs,
		HorizonNS:    int64(horizon),
		BurstSize:    burst,
		PacketsPerOp: r.TxPackets,

		NsPerOp:       nsPerOp,
		AllocsPerOp:   float64(after.Mallocs-before.Mallocs) / float64(runs),
		BytesPerOp:    float64(after.TotalAlloc-before.TotalAlloc) / float64(runs),
		NsPerPacket:   nsPerOp / float64(r.TxPackets),
		PacketsPerSec: float64(r.TxPackets) * float64(runs) / wall.Seconds(),

		EventsPerOp:            r.Events,
		InlinedPerOp:           r.Inlined,
		EventsPerPacket:        float64(r.Events) / float64(r.TxPackets),
		NoBurstEventsPerPacket: float64(ref.Events) / float64(ref.TxPackets),
		Identical:              r.TxPackets == ref.TxPackets,
	}
}

// drainSink counts and recycles packets delivered by a drain run.
type drainSink struct {
	pool *packet.Pool
	n    uint64
}

func (s *drainSink) Receive(p *packet.Packet) {
	s.n++
	s.pool.Release(p)
}

// DrainResult is the drain-run benchmark record: one op queues `packets`
// back-to-back onto an idle 10 Gbps pipe and runs the engine until the
// buffer empties into a sink. With nothing else on the calendar every
// departure is part of one long back-to-back run — the regime burst mode
// is built for — so events/packet collapses toward 1/burst, whereas the
// closed-loop forwarding scenario's interleaved ACK and pacing events keep
// its runs short. The two scenarios bracket burst mode's range.
type DrainResult struct {
	Runs         int    `json:"runs"`
	PacketsPerOp uint64 `json:"packets_per_op"`
	BurstSize    int    `json:"burst_size"`

	NsPerOp     float64 `json:"ns_per_op"`
	NsPerPacket float64 `json:"ns_per_packet"`

	EventsPerOp            uint64  `json:"events_per_op"`
	InlinedPerOp           uint64  `json:"inlined_per_op"`
	EventsPerPacket        float64 `json:"events_per_packet"`
	NoBurstEventsPerPacket float64 `json:"no_burst_events_per_packet"`
	Identical              bool    `json:"identical"`
}

// RunDrain queues `packets` MSS-sized packets onto an idle pipe at t=0 and
// drains them to a sink. It returns delivered packets, the engine's final
// clock, and the event accounting.
func RunDrain(packets int, opts ...sim.Option) (delivered uint64, end sim.Time, events, inlined uint64) {
	eng := sim.NewEngine(opts...)
	sink := &drainSink{pool: packet.PoolFor(eng)}
	pipe := topo.NewPipe(eng, 10*units.Gbps, 5*sim.Microsecond, 0, 0, sink)
	for i := 0; i < packets; i++ {
		pipe.Send(sink.pool.NewData(1, 2, 1, int64(i)*packet.DefaultMSS, packet.DefaultMSS))
	}
	eng.Run()
	return sink.n, eng.Now(), eng.Processed, eng.Inlined
}

// MeasureDrain times RunDrain at the given burst size, plus one untimed
// burst-off pass for the events/packet baseline and the identity check.
func MeasureDrain(runs, packets, burst int) DrainResult {
	opts := []sim.Option{sim.WithBurstSize(burst)}
	RunDrain(packets, opts...) // warm-up: fill the packet pool
	var delivered, events, inlined uint64
	var end sim.Time
	start := time.Now()
	for i := 0; i < runs; i++ {
		delivered, end, events, inlined = RunDrain(packets, opts...)
	}
	wall := time.Since(start)
	refDelivered, refEnd, refEvents, _ := RunDrain(packets, sim.WithBurstSize(0))
	nsPerOp := float64(wall.Nanoseconds()) / float64(runs)
	return DrainResult{
		Runs:         runs,
		PacketsPerOp: delivered,
		BurstSize:    burst,

		NsPerOp:     nsPerOp,
		NsPerPacket: nsPerOp / float64(delivered),

		EventsPerOp:            events,
		InlinedPerOp:           inlined,
		EventsPerPacket:        float64(events) / float64(delivered),
		NoBurstEventsPerPacket: float64(refEvents) / float64(refDelivered),
		Identical:              delivered == refDelivered && end == refEnd,
	}
}

// RunTimerHeavy drives the timer-dominated workload: `flows` CUBIC senders
// crowd a 10 Gbps dumbbell built for a handful, so congestion windows
// collapse to fractional values and every flow lives in pacing/RTO churn —
// the RTO deadline slides on every ACK, pacing timers re-arm between
// segments, and losses fire real retransmission timeouts. It returns the
// packets put on the bottleneck wire, the quantity the wheel-vs-heap
// determinism check compares.
func RunTimerHeavy(flows int, horizon sim.Time, opts ...sim.Option) uint64 {
	eng := sim.NewEngine(opts...)
	spec := topo.DefaultSim()
	d := topo.NewDumbbell(eng, 4, 4, spec, spec)
	var senders []*transport.Sender
	for i := 0; i < flows; i++ {
		s := transport.NewSender(d.Left[i%4], d.Right[(i+3)%4], 0, cc.NewCubic(),
			transport.Options{})
		s.Start(sim.Time(i) * sim.Microsecond)
		senders = append(senders, s)
	}
	eng.RunUntil(horizon)
	for _, s := range senders {
		s.Stop()
	}
	return d.Bottleneck.TxPackets
}

// TimersResult is the timer-lane benchmark record: the same timer-heavy run
// measured once on the hierarchical wheel (the default) and once forced
// back onto the event heap. Identical reports whether both lanes delivered
// exactly the same traffic — the determinism gate at benchmark scope.
type TimersResult struct {
	Flows        int     `json:"flows"`
	HorizonNS    int64   `json:"horizon_ns"`
	PacketsPerOp uint64  `json:"packets_per_op"`
	WheelNS      int64   `json:"wheel_ns"`
	HeapNS       int64   `json:"heap_ns"`
	Speedup      float64 `json:"speedup"`
	Identical    bool    `json:"identical"`
}

// MeasureTimers times RunTimerHeavy with the wheel on and off, configured
// per engine through options — nothing process-global is touched.
func MeasureTimers(flows int, horizon sim.Time) TimersResult {
	r := TimersResult{Flows: flows, HorizonNS: int64(horizon)}

	RunTimerHeavy(flows, horizon/4, sim.WithTimerWheel(true)) // warm-up: heat pools and the wheel
	start := time.Now()
	wheelPkts := RunTimerHeavy(flows, horizon, sim.WithTimerWheel(true))
	r.WheelNS = time.Since(start).Nanoseconds()
	r.PacketsPerOp = wheelPkts

	RunTimerHeavy(flows, horizon/4, sim.WithTimerWheel(false))
	start = time.Now()
	heapPkts := RunTimerHeavy(flows, horizon, sim.WithTimerWheel(false))
	r.HeapNS = time.Since(start).Nanoseconds()

	r.Identical = wheelPkts == heapPkts
	if r.WheelNS > 0 {
		r.Speedup = float64(r.HeapNS) / float64(r.WheelNS)
	}
	return r
}

// FatTreeResult is the partitioned large-fabric benchmark record: one op is
// a full k-ary fat-tree run over the configured horizon, measured once on a
// single engine and once split into Domains conservative time-synced
// domains. ParallelMeasured reports whether the partitioned pass actually
// ran its domains on goroutines: on a GOMAXPROCS=1 host a "parallel"
// wall-clock would be fiction, so the pass runs cooperatively instead, the
// speedup is omitted, and Note says why — the same honesty convention the
// sweep benchmark uses for worker counts beyond GOMAXPROCS.
type FatTreeResult struct {
	K                int     `json:"k"`
	Domains          int     `json:"domains"`
	HorizonNS        int64   `json:"horizon_ns"`
	PacketsPerOp     uint64  `json:"packets_per_op"`
	SingleNS         int64   `json:"single_ns"`
	PartitionedNS    int64   `json:"partitioned_ns"`
	Windows          uint64  `json:"windows"`
	ParallelMeasured bool    `json:"parallel_measured"`
	Speedup          float64 `json:"speedup,omitempty"`
	// The sync-cost breakdown of the partitioned pass, from
	// sim.Cluster.SyncStats: FlushedMsgs counts boundary deliveries moved at
	// round barriers, BarrierNS is wall time spent in barrier/flush/bound
	// work rather than inside domains, AdvanceNS the whole partitioned
	// wall. These are host wall-clock figures — they never feed simulated
	// results — and they are what the windows-per-run reduction is gated on
	// when a parallel speedup cannot be measured.
	Flushes     uint64 `json:"flushes"`
	FlushedMsgs uint64 `json:"flushed_msgs"`
	BarrierNS   int64  `json:"barrier_ns"`
	AdvanceNS   int64  `json:"advance_ns"`
	// DomainLoads is the per-domain busy breakdown of the partitioned pass;
	// Utilization is sum(busy)/(domains × partitioned wall) — near 1/domains
	// on a cooperative pass, approaching 1.0 on a well-balanced parallel
	// pass.
	DomainLoads []sim.DomainLoad `json:"domain_loads,omitempty"`
	Utilization float64          `json:"utilization,omitempty"`
	// Identical reports whether the partitioned run delivered exactly the
	// same traffic as the single-engine run — the cross-domain determinism
	// check at benchmark scope.
	Identical bool   `json:"identical"`
	Note      string `json:"note,omitempty"`
}

// SpeedupTarget is the acceptance bar for a measured parallel pass on a
// wide (k >= 8) fabric: the partitioned run must beat the single engine by
// at least this factor, or the benchmark run fails.
const SpeedupTarget = 2.0

// CheckSpeedup enforces the parallel acceptance bar. It applies only to
// results whose parallel pass was actually measured (GOMAXPROCS >= domains)
// on a k >= 8 fabric; cooperative passes and small fabrics return nil, so
// the gate arms itself automatically the moment the host has the cores.
func (r FatTreeResult) CheckSpeedup() error {
	if !r.ParallelMeasured || r.K < 8 {
		return nil
	}
	if r.Speedup < SpeedupTarget {
		return fmt.Errorf("benchcore: parallel k=%d fat tree across %d domains reached %.2fx, below the %.1fx bar",
			r.K, r.Domains, r.Speedup, SpeedupTarget)
	}
	return nil
}

// RunFatTree drives a k-ary fat tree partitioned into the given number of
// domains: every host opens one long CUBIC flow to its counterpart two pods
// over, so all traffic crosses the core and every agg<->core boundary
// mailbox carries load. The workload is setup-only (no runtime callbacks
// reach across domains), which is what makes the parallel window mode sound
// for it. It returns total delivered data packets and the cluster's sync
// accounting (rounds, flushes, barrier cost, per-domain load).
func RunFatTree(k int, horizon sim.Time, domains int, parallel bool) (delivered uint64, stats sim.SyncStats) {
	c := sim.NewCluster(domains)
	defer c.Close()
	c.SetParallel(parallel)
	spec := topo.DefaultSim()
	f := topo.NewFatTreeIn(c, k, spec, spec)
	n := len(f.Hosts)
	perPod := f.HostsPerPod()
	for i, src := range f.Hosts {
		dst := f.Hosts[(i+2*perPod)%n]
		s := transport.NewSender(src, dst, 0, cc.NewCubic(), transport.Options{})
		s.Start(sim.Time(i) * 10 * sim.Microsecond)
	}
	c.RunUntil(horizon)
	for _, h := range f.Hosts {
		delivered += h.RxPackets
	}
	return delivered, c.SyncStats()
}

// MeasureFatTree times the fat-tree scenario single-engine vs partitioned.
// The partitioned pass advances its domains on goroutines only when the
// host actually has cores to back them (GOMAXPROCS >= domains); otherwise
// it runs cooperatively and the record says so instead of inventing a
// speedup.
func MeasureFatTree(k int, horizon sim.Time, domains int) FatTreeResult {
	if domains < 2 {
		domains = 2
	}
	r := FatTreeResult{K: k, Domains: domains, HorizonNS: int64(horizon)}

	RunFatTree(k, horizon/4, 1, false) // warm-up: heat pools and heaps
	start := time.Now()
	single, _ := RunFatTree(k, horizon, 1, false)
	r.SingleNS = time.Since(start).Nanoseconds()
	r.PacketsPerOp = single

	r.ParallelMeasured = runtime.GOMAXPROCS(0) >= domains
	if !r.ParallelMeasured {
		r.Note = "GOMAXPROCS < domains: partitioned pass ran cooperatively; a parallel speedup cannot be measured on this host"
	}
	start = time.Now()
	parted, sync := RunFatTree(k, horizon, domains, r.ParallelMeasured)
	r.PartitionedNS = time.Since(start).Nanoseconds()
	r.Windows = sync.Windows
	r.Flushes = sync.Flushes
	r.FlushedMsgs = sync.FlushedMsgs
	r.BarrierNS = sync.BarrierNS
	r.AdvanceNS = sync.AdvanceNS
	r.DomainLoads = sync.Domains
	if r.PartitionedNS > 0 && len(sync.Domains) > 0 {
		var busy int64
		for _, d := range sync.Domains {
			busy += d.BusyNS
		}
		r.Utilization = float64(busy) / (float64(r.PartitionedNS) * float64(len(sync.Domains)))
	}
	r.Identical = parted == single
	if r.ParallelMeasured && r.PartitionedNS > 0 {
		r.Speedup = float64(r.SingleNS) / float64(r.PartitionedNS)
	}
	return r
}
