package benchcore

import (
	"runtime"
	"time"

	"aqueue/internal/cc"
	"aqueue/internal/core"
	"aqueue/internal/fluid"
	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/topo"
	"aqueue/internal/transport"
	"aqueue/internal/units"
)

// This file is the million-entity scenario: a k-ary fat tree whose edge
// switches each carry a fluid lane with tens of thousands of background
// entities, sharing host uplinks with a packet-level CUBIC foreground. It
// is the scaling claim the hybrid fidelity split was built for — entity
// counts three orders of magnitude beyond what the packet lane can carry,
// with the AQ tables doing real admission work (the per-entity allocations
// undercut the offered load, so every epoch sheds bytes) and the residual
// coupling squeezing the foreground exactly as a packet background would.

// FluidScaleRun is one pass's raw outcome, compared across the
// single-engine and partitioned passes for the determinism check.
type FluidScaleRun struct {
	SetupNS      int64
	RunNS        int64
	Epochs       uint64
	EntityEpochs uint64
	Delivered    float64
	Dropped      float64
	FGPackets    uint64
	AQModelBytes int
	HeapBytes    uint64
}

// RunFluidScale builds a k-ary fat tree split into the given domains,
// spreads `entities` fluid entities evenly over the edge-switch ingress
// tables (every entity holds its own AQ, deployed in bulk), points each at
// its source host's uplink for residual accounting, and runs `fgFlows`
// packet CUBIC foreground flows cross-pod for the horizon. Three of four
// entities are fixed-rate blasters, every fourth is a loss-model AIMD
// flow; allocations undercut the per-entity fair share and buffer limits
// are sized to a couple of epochs of allocation, so the AQ admission
// path — not just the link clip — sheds bytes every epoch.
// Lanes are per-edge and therefore domain-local, so any partitioning
// yields the identical simulation.
func RunFluidScale(k, entities, fgFlows int, epoch, horizon sim.Time, domains int, parallel bool) FluidScaleRun {
	var r FluidScaleRun
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	heapBefore := ms.HeapAlloc

	setup := time.Now()
	c := sim.NewCluster(domains)
	defer c.Close()
	c.SetParallel(parallel)
	spec := topo.DefaultSim()
	f := topo.NewFatTreeIn(c, k, spec, spec)
	half := k / 2
	nHosts := len(f.Hosts)
	perPod := f.HostsPerPod()

	// Per-edge entity population. The per-entity fair share divides the
	// edge's total uplink capacity; the AQ allocation undercuts it by half
	// so admission sheds bytes even after the link clip.
	edges := k * half
	perEdge := entities / edges
	extra := entities % edges
	lanes := make([]*fluid.Lane, 0, edges)
	edgeIdx := 0
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			n := perEdge
			if edgeIdx < extra {
				n++
			}
			edgeIdx++
			if n == 0 {
				continue
			}
			sw := f.Edges[p][e]
			share := units.BitRate(float64(half) * float64(spec.Rate) / float64(n))
			alloc := units.BitRate(0.5 * float64(share))
			// The buffer limit scales with the allocation — two epochs of
			// allocated bytes, as a switch would size per-flow state — so
			// the sustained excess hits the drop rule within a few epochs.
			limit := int(alloc.BytesPerNano() * float64(2*epoch))
			if limit < 1 {
				limit = 1
			}
			cfgs := make([]core.Config, n)
			for i := range cfgs {
				cfgs[i] = core.Config{ID: packet.AQID(i + 1), Rate: alloc, Limit: limit}
			}
			sw.Ingress.DeployBatch(cfgs)
			r.AQModelBytes += sw.Ingress.MemoryBytes()

			lane := fluid.NewLane(sw.Engine(), sw.Ingress, epoch)
			pipes := make([]int, half)
			base := (p*half + e) * half
			for i := 0; i < half; i++ {
				pipes[i] = lane.AddPipe(f.Hosts[base+i].Uplink())
			}
			lossPar := fluid.ParamsFor("cubic")
			lossPar.MinRate = share.BytesPerNano() / 4
			for i := 0; i < n; i++ {
				cfg := fluid.EntityConfig{
					AQ:   packet.AQID(i + 1),
					Rate: units.BitRate(2 * float64(share)),
					Pipe: pipes[i%half],
				}
				if i%4 == 0 {
					cfg.Params = &lossPar
					cfg.Demand = units.BitRate(2 * float64(share))
				}
				lane.Add(cfg)
			}
			lane.SetDeadline(horizon)
			lane.Start(0)
			lanes = append(lanes, lane)
		}
	}
	for i := 0; i < fgFlows; i++ {
		src := f.Hosts[i%nHosts]
		dst := f.Hosts[(i+2*perPod)%nHosts]
		s := transport.NewSender(src, dst, 0, cc.NewCubic(), transport.Options{})
		s.Start(sim.Time(i) * 10 * sim.Microsecond)
	}
	r.SetupNS = time.Since(setup).Nanoseconds()
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > heapBefore {
		r.HeapBytes = ms.HeapAlloc - heapBefore
	}

	start := time.Now()
	c.RunUntil(horizon)
	r.RunNS = time.Since(start).Nanoseconds()

	for _, l := range lanes {
		st := l.Stats()
		r.Epochs += st.Epochs
		r.EntityEpochs += st.EntityEpochs
		r.Delivered += st.DeliveredBytes
		r.Dropped += st.DroppedBytes
	}
	for _, h := range f.Hosts {
		r.FGPackets += h.RxPackets
	}
	return r
}

// FluidScaleResult is the million-entity benchmark record. NsPerEntityEpoch
// is the headline: the cost of carrying one background flow for one epoch,
// including its AQ admission step and its share of the residual
// accounting. AQModelBytes is the paper's 15 B/AQ switch-memory model
// summed over the edge tables; HeapBytes is the measured host cost of
// holding the whole population. Identical compares the partitioned pass
// against the single-engine pass — same fluid bytes, same entity-epochs,
// same foreground packets — the cross-domain determinism check at
// benchmark scope.
type FluidScaleResult struct {
	K         int   `json:"k"`
	Entities  int   `json:"entities"`
	FGFlows   int   `json:"fg_flows"`
	Domains   int   `json:"domains"`
	HorizonNS int64 `json:"horizon_ns"`
	EpochNS   int64 `json:"epoch_ns"`

	Epochs       uint64 `json:"epochs"`
	EntityEpochs uint64 `json:"entity_epochs"`

	SetupNS          int64   `json:"setup_ns"`
	SingleNS         int64   `json:"single_ns"`
	PartitionedNS    int64   `json:"partitioned_ns"`
	ParallelMeasured bool    `json:"parallel_measured"`
	Speedup          float64 `json:"speedup,omitempty"`

	NsPerEntityEpoch   float64 `json:"ns_per_entity_epoch"`
	EntityEpochsPerSec float64 `json:"entity_epochs_per_sec"`

	FluidDeliveredBytes float64 `json:"fluid_delivered_bytes"`
	FluidDroppedBytes   float64 `json:"fluid_dropped_bytes"`
	FGPackets           uint64  `json:"fg_packets"`
	AQModelBytes        int     `json:"aq_model_bytes"`
	HeapBytes           uint64  `json:"heap_bytes"`

	Identical bool   `json:"identical"`
	Note      string `json:"note,omitempty"`
}

// MeasureFluidScale runs the fluid-scale scenario once on a single engine
// (the timed pass the per-entity-epoch figures come from) and once
// partitioned, with the same parallel-honesty convention as the fat-tree
// benchmark: domains run on goroutines only when the host has the cores,
// otherwise the pass is cooperative and no speedup is recorded.
func MeasureFluidScale(k, entities, fgFlows int, epoch, horizon sim.Time, domains int) FluidScaleResult {
	if domains < 2 {
		domains = 2
	}
	r := FluidScaleResult{
		K: k, Entities: entities, FGFlows: fgFlows, Domains: domains,
		HorizonNS: int64(horizon), EpochNS: int64(epoch),
	}

	// Warm-up at 1% scale: heats the pools, the allocator and the wheel
	// without paying a third full-scale pass.
	warm := entities / 100
	if warm < 1000 {
		warm = entities
	}
	RunFluidScale(k, warm, fgFlows, epoch, horizon/5, 1, false)

	single := RunFluidScale(k, entities, fgFlows, epoch, horizon, 1, false)
	r.SetupNS = single.SetupNS
	r.SingleNS = single.RunNS
	r.Epochs = single.Epochs
	r.EntityEpochs = single.EntityEpochs
	r.FluidDeliveredBytes = single.Delivered
	r.FluidDroppedBytes = single.Dropped
	r.FGPackets = single.FGPackets
	r.AQModelBytes = single.AQModelBytes
	r.HeapBytes = single.HeapBytes
	if single.EntityEpochs > 0 {
		r.NsPerEntityEpoch = float64(single.RunNS) / float64(single.EntityEpochs)
		r.EntityEpochsPerSec = float64(single.EntityEpochs) / (float64(single.RunNS) / 1e9)
	}

	r.ParallelMeasured = runtime.GOMAXPROCS(0) >= domains
	if !r.ParallelMeasured {
		r.Note = "GOMAXPROCS < domains: partitioned pass ran cooperatively; a parallel speedup cannot be measured on this host"
	}
	parted := RunFluidScale(k, entities, fgFlows, epoch, horizon, domains, r.ParallelMeasured)
	r.PartitionedNS = parted.RunNS
	r.Identical = parted.Delivered == single.Delivered &&
		parted.EntityEpochs == single.EntityEpochs &&
		parted.FGPackets == single.FGPackets
	if r.ParallelMeasured && r.PartitionedNS > 0 {
		r.Speedup = float64(r.SingleNS) / float64(r.PartitionedNS)
	}
	return r
}
