package benchcore

import (
	"runtime"
	"time"

	"aqueue/internal/cc"
	"aqueue/internal/core"
	"aqueue/internal/fluid"
	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/topo"
	"aqueue/internal/transport"
	"aqueue/internal/units"
)

// This file is the million-entity scenario: a k-ary fat tree whose edge
// switches each carry a fluid lane with tens of thousands of background
// entities, sharing host uplinks with a packet-level CUBIC foreground. It
// is the scaling claim the hybrid fidelity split was built for — entity
// counts three orders of magnitude beyond what the packet lane can carry,
// with the AQ tables doing real admission work (the per-entity allocations
// undercut the offered load, so every epoch sheds bytes) and the residual
// coupling squeezing the foreground exactly as a packet background would.
//
// Registration is grouped by (class, pipe) so entities land in long
// structure-of-arrays cohort runs — the layout the lane's epoch loop is
// built around — and the AQ configs are deployed in the same order, so the
// lane's table walk is sequential over the DeployBatch slab.

// FluidScaleSpec parameterises the scale scenario. The zero-extended
// legacy shape (EntitiesPerAQ ≤ 1, FillFrac 0) is the original
// one-AQ-per-entity population.
type FluidScaleSpec struct {
	K        int
	Entities int
	FGFlows  int
	Epoch    sim.Time
	Horizon  sim.Time
	// EntitiesPerAQ shares one AQ grant among each group of entities — the
	// paper's tenant-level grant carried by many flows — which is what
	// makes the 10M-entity population affordable in host memory: the AQ
	// state amortizes across the group. 0 or 1 deploys one AQ per entity.
	EntitiesPerAQ int
	// FillFrac is the fraction of each edge's population registered as
	// untagged fixed-rate fill with no pipe accounting: a quiescent
	// background the lane folds in O(1) per cohort-epoch after the first
	// pass. 0 disables the fill population.
	FillFrac float64
	// FillRateFrac scales the fill entities' rate relative to the
	// per-entity fair share; 0 selects 0.5.
	FillRateFrac float64
}

// FluidScaleRun is one pass's raw outcome, compared across the
// single-engine and partitioned passes for the determinism check.
type FluidScaleRun struct {
	SetupNS             int64
	RunNS               int64
	Epochs              uint64
	EntityEpochs        uint64
	SkippedEntityEpochs uint64
	Delivered           float64
	Dropped             float64
	FGPackets           uint64
	AQModelBytes        int
	HeapBytes           uint64
}

// RunFluidScale runs the legacy-shaped scenario: one AQ per entity, no
// fill population.
func RunFluidScale(k, entities, fgFlows int, epoch, horizon sim.Time, domains int, parallel bool) FluidScaleRun {
	return RunFluidScaleSpec(FluidScaleSpec{
		K: k, Entities: entities, FGFlows: fgFlows, Epoch: epoch, Horizon: horizon,
	}, domains, parallel)
}

// RunFluidScaleSpec builds a k-ary fat tree split into the given domains,
// spreads the entities evenly over the edge-switch ingress tables (AQs
// deployed in bulk, one per group of EntitiesPerAQ), points each tagged
// entity at a source-host uplink for residual accounting, and runs the
// packet CUBIC foreground cross-pod for the horizon. Within the tagged
// population, three of four AQ groups are fixed-rate blasters and every
// fourth is a loss-model AIMD flow; allocations undercut the per-entity
// fair share and buffer limits are sized to a couple of epochs of
// allocation, so the AQ admission path — not just the link clip — sheds
// bytes every epoch. Lanes are per-edge and therefore domain-local, so
// any partitioning yields the identical simulation.
func RunFluidScaleSpec(spec FluidScaleSpec, domains int, parallel bool) FluidScaleRun {
	var r FluidScaleRun
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	heapBefore := ms.HeapAlloc

	setup := time.Now()
	c := sim.NewCluster(domains)
	defer c.Close()
	c.SetParallel(parallel)
	tspec := topo.DefaultSim()
	f := topo.NewFatTreeIn(c, spec.K, tspec, tspec)
	k := spec.K
	half := k / 2
	nHosts := len(f.Hosts)
	perPod := f.HostsPerPod()

	gsize := spec.EntitiesPerAQ
	if gsize < 1 {
		gsize = 1
	}
	fillRateFrac := spec.FillRateFrac
	if fillRateFrac <= 0 {
		fillRateFrac = 0.5
	}

	// Per-edge entity population. The per-entity fair share divides the
	// edge's total uplink capacity; the AQ allocation undercuts it by half
	// so admission sheds bytes even after the link clip.
	edges := k * half
	perEdge := spec.Entities / edges
	extra := spec.Entities % edges
	lanes := make([]*fluid.Lane, 0, edges)
	edgeIdx := 0
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			n := perEdge
			if edgeIdx < extra {
				n++
			}
			edgeIdx++
			if n == 0 {
				continue
			}
			sw := f.Edges[p][e]
			fill := int(spec.FillFrac * float64(n))
			tagged := n - fill
			groups := (tagged + gsize - 1) / gsize
			share := units.BitRate(float64(half) * float64(tspec.Rate) / float64(n))

			// AQ configs in registration order — fixed groups first, then
			// loss, sub-ordered by pipe — so the DeployBatch slab is laid
			// out exactly as the lane walks it. Group g keeps the stable
			// tag g+1, is loss-model iff g%4 == 0, and shares the uplink
			// of host g%half; its allocation scales with its population.
			groupSize := func(g int) int {
				gn := gsize
				if g == groups-1 {
					gn = tagged - g*gsize
				}
				return gn
			}
			cfgs := make([]core.Config, 0, groups)
			for class := 0; class < 2; class++ {
				for pp := 0; pp < half; pp++ {
					for g := 0; g < groups; g++ {
						loss := g%4 == 0
						if (class == 1) != loss || g%half != pp {
							continue
						}
						alloc := units.BitRate(0.5 * float64(share) * float64(groupSize(g)))
						limit := int(alloc.BytesPerNano() * float64(2*spec.Epoch))
						if limit < 1 {
							limit = 1
						}
						cfgs = append(cfgs, core.Config{ID: packet.AQID(g + 1), Rate: alloc, Limit: limit})
					}
				}
			}
			sw.Ingress.DeployBatch(cfgs)
			r.AQModelBytes += sw.Ingress.MemoryBytes()

			lane := fluid.NewLane(sw.Engine(), sw.Ingress, spec.Epoch)
			pipes := make([]int, half)
			base := (p*half + e) * half
			for i := 0; i < half; i++ {
				pipes[i] = lane.AddPipe(f.Hosts[base+i].Uplink())
			}
			lossPar := fluid.ParamsFor("cubic")
			lossPar.MinRate = share.BytesPerNano() / 4
			for class := 0; class < 2; class++ {
				for pp := 0; pp < half; pp++ {
					for g := 0; g < groups; g++ {
						loss := g%4 == 0
						if (class == 1) != loss || g%half != pp {
							continue
						}
						cfg := fluid.EntityConfig{
							AQ:   packet.AQID(g + 1),
							Rate: units.BitRate(2 * float64(share)),
							Pipe: pipes[pp],
						}
						if loss {
							cfg.Params = &lossPar
							cfg.Demand = units.BitRate(2 * float64(share))
						}
						lane.AddN(cfg, groupSize(g))
					}
				}
			}
			if fill > 0 {
				// The quiescent tail: untagged, unpiped, fixed-rate — after
				// one priming epoch the lane folds the whole cohort per
				// epoch without touching its entities.
				lane.AddN(fluid.EntityConfig{
					Rate: units.BitRate(fillRateFrac * float64(share)),
					Pipe: -1,
				}, fill)
			}
			lane.SetDeadline(spec.Horizon)
			lane.Start(0)
			lanes = append(lanes, lane)
		}
	}
	for i := 0; i < spec.FGFlows; i++ {
		src := f.Hosts[i%nHosts]
		dst := f.Hosts[(i+2*perPod)%nHosts]
		s := transport.NewSender(src, dst, 0, cc.NewCubic(), transport.Options{})
		s.Start(sim.Time(i) * 10 * sim.Microsecond)
	}
	r.SetupNS = time.Since(setup).Nanoseconds()
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > heapBefore {
		r.HeapBytes = ms.HeapAlloc - heapBefore
	}

	start := time.Now()
	c.RunUntil(spec.Horizon)
	r.RunNS = time.Since(start).Nanoseconds()

	for _, l := range lanes {
		st := l.Stats()
		r.Epochs += st.Epochs
		r.EntityEpochs += st.EntityEpochs
		r.SkippedEntityEpochs += st.SkippedEntityEpochs
		r.Delivered += st.DeliveredBytes
		r.Dropped += st.DroppedBytes
	}
	for _, h := range f.Hosts {
		r.FGPackets += h.RxPackets
	}
	return r
}

// FluidScaleResult is the scale benchmark record. NsPerEntityEpoch is the
// headline: the cost of carrying one background flow for one epoch,
// including its AQ admission step and its share of the residual
// accounting. AQModelBytes is the paper's 15 B/AQ switch-memory model
// summed over the edge tables; HeapBytes is the measured host cost of
// holding the whole population, HeapBytesPerEntity the same per entity —
// the figure the 10M-entity record budgets. Identical compares the
// partitioned pass against the single-engine pass — same fluid bytes,
// same entity-epochs (skipped included), same foreground packets — the
// cross-domain determinism check at benchmark scope.
type FluidScaleResult struct {
	K         int   `json:"k"`
	Entities  int   `json:"entities"`
	FGFlows   int   `json:"fg_flows"`
	Domains   int   `json:"domains"`
	HorizonNS int64 `json:"horizon_ns"`
	EpochNS   int64 `json:"epoch_ns"`

	EntitiesPerAQ int     `json:"entities_per_aq,omitempty"`
	FillFrac      float64 `json:"fill_frac,omitempty"`

	Epochs              uint64 `json:"epochs"`
	EntityEpochs        uint64 `json:"entity_epochs"`
	SkippedEntityEpochs uint64 `json:"skipped_entity_epochs,omitempty"`

	SetupNS          int64   `json:"setup_ns"`
	SingleNS         int64   `json:"single_ns"`
	PartitionedNS    int64   `json:"partitioned_ns"`
	ParallelMeasured bool    `json:"parallel_measured"`
	Speedup          float64 `json:"speedup,omitempty"`

	NsPerEntityEpoch   float64 `json:"ns_per_entity_epoch"`
	EntityEpochsPerSec float64 `json:"entity_epochs_per_sec"`
	QuiescentSkipPct   float64 `json:"quiescent_skip_pct,omitempty"`

	FluidDeliveredBytes float64 `json:"fluid_delivered_bytes"`
	FluidDroppedBytes   float64 `json:"fluid_dropped_bytes"`
	FGPackets           uint64  `json:"fg_packets"`
	AQModelBytes        int     `json:"aq_model_bytes"`
	HeapBytes           uint64  `json:"heap_bytes"`
	HeapBytesPerEntity  float64 `json:"heap_bytes_per_entity,omitempty"`

	Identical bool   `json:"identical"`
	Note      string `json:"note,omitempty"`
}

// HeapBudgetPerEntity is the gating host-memory budget for the 10M-entity
// record: the structure-of-arrays layout plus the amortized shared-AQ
// state must stay within this many heap bytes per entity at setup.
const HeapBudgetPerEntity = 150.0

// MeasureFluidScale runs the scale scenario once on a single engine (the
// timed pass the per-entity-epoch figures come from) and once partitioned,
// with the same parallel-honesty convention as the fat-tree benchmark:
// domains run on goroutines only when the host has the cores, otherwise
// the pass is cooperative and no speedup is recorded.
func MeasureFluidScale(spec FluidScaleSpec, domains int) FluidScaleResult {
	if domains < 2 {
		domains = 2
	}
	r := FluidScaleResult{
		K: spec.K, Entities: spec.Entities, FGFlows: spec.FGFlows, Domains: domains,
		HorizonNS: int64(spec.Horizon), EpochNS: int64(spec.Epoch),
		EntitiesPerAQ: spec.EntitiesPerAQ, FillFrac: spec.FillFrac,
	}

	// Warm-up at 1% scale: heats the pools, the allocator and the wheel
	// without paying a third full-scale pass.
	warmSpec := spec
	warmSpec.Entities = spec.Entities / 100
	if warmSpec.Entities < 1000 {
		warmSpec.Entities = spec.Entities
	}
	warmSpec.Horizon = spec.Horizon / 5
	RunFluidScaleSpec(warmSpec, 1, false)

	single := RunFluidScaleSpec(spec, 1, false)
	r.SetupNS = single.SetupNS
	r.SingleNS = single.RunNS
	r.Epochs = single.Epochs
	r.EntityEpochs = single.EntityEpochs
	r.SkippedEntityEpochs = single.SkippedEntityEpochs
	r.FluidDeliveredBytes = single.Delivered
	r.FluidDroppedBytes = single.Dropped
	r.FGPackets = single.FGPackets
	r.AQModelBytes = single.AQModelBytes
	r.HeapBytes = single.HeapBytes
	if single.EntityEpochs > 0 {
		r.NsPerEntityEpoch = float64(single.RunNS) / float64(single.EntityEpochs)
		r.EntityEpochsPerSec = float64(single.EntityEpochs) / (float64(single.RunNS) / 1e9)
		r.QuiescentSkipPct = 100 * float64(single.SkippedEntityEpochs) / float64(single.EntityEpochs)
	}
	if spec.Entities > 0 {
		r.HeapBytesPerEntity = float64(single.HeapBytes) / float64(spec.Entities)
	}

	r.ParallelMeasured = runtime.GOMAXPROCS(0) >= domains
	if !r.ParallelMeasured {
		r.Note = "GOMAXPROCS < domains: partitioned pass ran cooperatively; a parallel speedup cannot be measured on this host"
	}
	parted := RunFluidScaleSpec(spec, domains, r.ParallelMeasured)
	r.PartitionedNS = parted.RunNS
	r.Identical = parted.Delivered == single.Delivered &&
		parted.EntityEpochs == single.EntityEpochs &&
		parted.SkippedEntityEpochs == single.SkippedEntityEpochs &&
		parted.FGPackets == single.FGPackets
	if r.ParallelMeasured && r.PartitionedNS > 0 {
		r.Speedup = float64(r.SingleNS) / float64(r.PartitionedNS)
	}
	return r
}
