package harness

import (
	"encoding/csv"
	"fmt"
	"strings"
)

// Table is a rendered experiment result: a title, a header row, and data
// rows, printed in fixed-width columns like the paper's tables. It is the
// unit every experiment returns and the unit the JSON report serializes.
type Table struct {
	Title  string     `json:"title,omitempty"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// AddRow appends a row formatted with fmt.Sprint on each cell.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render returns the fixed-width text form.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if w := widths[i] - len(c); w > 0 {
				b.WriteString(strings.Repeat(" ", w))
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV renders the table as RFC 4180 CSV (header row first, title omitted)
// for downstream plotting.
func (t *Table) CSV() string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	_ = w.Write(t.Header)
	for _, row := range t.Rows {
		_ = w.Write(row)
	}
	w.Flush()
	return b.String()
}
