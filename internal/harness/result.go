package harness

import (
	"encoding/json"
	"io"
	"os"
	"runtime"
)

// ResultSchema identifies the JSON layout of a Report. Bump on any
// incompatible change to Report/Result/Table.
const ResultSchema = "aqueue/harness-results/v1"

// Result is one experiment run's structured outcome. Experiments fill
// Tables and Metrics; the pool fills Name, Params, WallNS, and Error.
type Result struct {
	Name   string `json:"name"`
	Params Params `json:"params"`
	// Tables are the rendered figure/table rows, in the order the paper
	// presents them.
	Tables []*Table `json:"tables,omitempty"`
	// Metrics are headline scalars (rates in Gbit/s, fairness indices,
	// relative deltas in percent) keyed by a stable name.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// WallNS is the wall-clock duration of the run in nanoseconds.
	WallNS int64 `json:"wall_ns"`
	// Error is the failure (or recovered panic) of the run, empty on
	// success. A failed run still occupies its slot in the report so a
	// sweep's output always has one entry per requested job.
	Error string `json:"error,omitempty"`
}

// Rendered concatenates the textual form of the result's tables.
func (r *Result) Rendered() string {
	var out string
	for _, t := range r.Tables {
		out += t.Render() + "\n"
	}
	return out
}

// Report is the serialized outcome of a batch of runs.
type Report struct {
	Schema     string    `json:"schema"`
	GOMAXPROCS int       `json:"gomaxprocs"`
	Workers    int       `json:"workers"`
	Results    []*Result `json:"results"`
}

// NewReport wraps results run under the given worker count.
func NewReport(workers int, results []*Result) *Report {
	return &Report{
		Schema:     ResultSchema,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    workers,
		Results:    results,
	}
}

// WriteJSON writes the indented JSON form.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteJSONFile writes the report to path (0644, truncating).
func (r *Report) WriteJSONFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
