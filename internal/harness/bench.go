package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"
)

// BenchSchema identifies the JSON layout of a Bench. Bump on any
// incompatible change.
const BenchSchema = "aqueue/harness-bench/v2"

// BenchRun is the per-job timing of the parallel pass.
type BenchRun struct {
	Name   string `json:"name"`
	Seed   uint64 `json:"seed"`
	WallNS int64  `json:"wall_ns"`
	Error  string `json:"error,omitempty"`
}

// Bench records a sequential-vs-parallel execution of one batch: the
// sweep section of BENCH_simcore.json tracks SequentialNS, ParallelNS,
// and Speedup across PRs (aqsim -bench writes the same record to a local,
// untracked file).
type Bench struct {
	Schema     string `json:"schema"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// RequestedWorkers is what the caller asked for; Workers is what the
	// parallel pass actually used (capped at the job count). Recording
	// both keeps the artifact honest about how wide the pass really ran.
	RequestedWorkers int     `json:"requested_workers"`
	Workers          int     `json:"workers"`
	Jobs             int     `json:"jobs"`
	SequentialNS     int64   `json:"sequential_ns"`
	ParallelNS       int64   `json:"parallel_ns"`
	Speedup          float64 `json:"speedup"`
	// WorkerBusyNS is each parallel worker's time spent inside jobs;
	// Utilization is the mean fraction of the parallel wall the workers
	// were busy (1.0 = perfectly balanced saturation). A low value with a
	// low speedup distinguishes "badly balanced batch" from "no cores".
	WorkerBusyNS []int64 `json:"worker_busy_ns"`
	Utilization  float64 `json:"utilization"`
	// Identical reports whether the parallel pass produced byte-identical
	// tables and metrics to the sequential pass — the determinism check.
	Identical bool       `json:"identical"`
	Runs      []BenchRun `json:"runs"`
}

// RunBench executes jobs twice — once on a single worker, once on the
// given worker count — and reports the timing ratio plus whether the two
// passes produced identical results. workers < 1 selects GOMAXPROCS.
// Asking for more workers than GOMAXPROCS is an error, not a benchmark:
// the runtime would multiplex them onto fewer threads and the recorded
// "speedup" would be fiction (a committed artifact once showed 4 workers
// at 0.99x on GOMAXPROCS=1 for exactly this reason).
func RunBench(jobs []Job, workers int) (*Bench, error) {
	procs := runtime.GOMAXPROCS(0)
	if workers < 1 {
		workers = procs
	}
	if workers > procs {
		return nil, fmt.Errorf("harness: benchmarking %d workers with GOMAXPROCS=%d would record a meaningless speedup; raise GOMAXPROCS or lower the worker count", workers, procs)
	}
	requested := workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	seqStart := time.Now()
	seq := (&Pool{Workers: 1}).Run(jobs)
	seqNS := time.Since(seqStart).Nanoseconds()

	parStart := time.Now()
	par, busy := (&Pool{Workers: workers}).RunTracked(jobs)
	parNS := time.Since(parStart).Nanoseconds()

	b := &Bench{
		Schema:           BenchSchema,
		GOMAXPROCS:       procs,
		RequestedWorkers: requested,
		Workers:          workers,
		Jobs:             len(jobs),
		SequentialNS:     seqNS,
		ParallelNS:       parNS,
		WorkerBusyNS:     busy,
		Identical:        true,
	}
	if parNS > 0 {
		b.Speedup = float64(seqNS) / float64(parNS)
	}
	if parNS > 0 && len(busy) > 0 {
		var busySum int64
		for _, bn := range busy {
			busySum += bn
		}
		b.Utilization = float64(busySum) / (float64(parNS) * float64(len(busy)))
	}
	for i, r := range par {
		b.Runs = append(b.Runs, BenchRun{
			Name:   r.Name,
			Seed:   r.Params.Seed,
			WallNS: r.WallNS,
			Error:  r.Error,
		})
		if Fingerprint(r) != Fingerprint(seq[i]) {
			b.Identical = false
		}
	}
	return b, nil
}

// Fingerprint digests everything deterministic about a result — name,
// params, tables, metrics, error — and excludes wall time and the domain
// count. Two runs of the same (experiment, seed) must fingerprint
// identically regardless of what else runs in the process, and a
// partitioned run (Params.Domains > 1) must fingerprint identically to the
// single-engine run it is an execution strategy for.
func Fingerprint(r *Result) string {
	c := *r
	c.WallNS = 0
	c.Params.Domains = 0
	c.Params.Parallel = false
	buf, err := json.Marshal(&c)
	if err != nil {
		return "unmarshalable: " + err.Error()
	}
	return string(buf)
}

// WriteJSON writes the indented JSON form.
func (b *Bench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// WriteJSONFile writes the bench record to path (0644, truncating).
func (b *Bench) WriteJSONFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := b.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
