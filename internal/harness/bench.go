package harness

import (
	"encoding/json"
	"io"
	"os"
	"runtime"
	"time"
)

// BenchSchema identifies the JSON layout of a Bench. Bump on any
// incompatible change.
const BenchSchema = "aqueue/harness-bench/v1"

// BenchRun is the per-job timing of the parallel pass.
type BenchRun struct {
	Name   string `json:"name"`
	Seed   uint64 `json:"seed"`
	WallNS int64  `json:"wall_ns"`
	Error  string `json:"error,omitempty"`
}

// Bench records a sequential-vs-parallel execution of one batch: the perf
// trajectory artifact (BENCH_harness.json) tracks SequentialNS,
// ParallelNS, and Speedup across PRs.
type Bench struct {
	Schema       string  `json:"schema"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	Workers      int     `json:"workers"`
	Jobs         int     `json:"jobs"`
	SequentialNS int64   `json:"sequential_ns"`
	ParallelNS   int64   `json:"parallel_ns"`
	Speedup      float64 `json:"speedup"`
	// Identical reports whether the parallel pass produced byte-identical
	// tables and metrics to the sequential pass — the determinism check.
	Identical bool       `json:"identical"`
	Runs      []BenchRun `json:"runs"`
}

// RunBench executes jobs twice — once on a single worker, once on the
// given worker count — and reports the timing ratio plus whether the two
// passes produced identical results.
func RunBench(jobs []Job, workers int) *Bench {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	seqStart := time.Now()
	seq := (&Pool{Workers: 1}).Run(jobs)
	seqNS := time.Since(seqStart).Nanoseconds()

	parStart := time.Now()
	par := (&Pool{Workers: workers}).Run(jobs)
	parNS := time.Since(parStart).Nanoseconds()

	b := &Bench{
		Schema:       BenchSchema,
		GOMAXPROCS:   runtime.GOMAXPROCS(0),
		Workers:      workers,
		Jobs:         len(jobs),
		SequentialNS: seqNS,
		ParallelNS:   parNS,
		Identical:    true,
	}
	if parNS > 0 {
		b.Speedup = float64(seqNS) / float64(parNS)
	}
	for i, r := range par {
		b.Runs = append(b.Runs, BenchRun{
			Name:   r.Name,
			Seed:   r.Params.Seed,
			WallNS: r.WallNS,
			Error:  r.Error,
		})
		if Fingerprint(r) != Fingerprint(seq[i]) {
			b.Identical = false
		}
	}
	return b
}

// Fingerprint digests everything deterministic about a result — name,
// params, tables, metrics, error — and excludes wall time. Two runs of the
// same (experiment, seed) must fingerprint identically regardless of what
// else runs in the process.
func Fingerprint(r *Result) string {
	c := *r
	c.WallNS = 0
	buf, err := json.Marshal(&c)
	if err != nil {
		return "unmarshalable: " + err.Error()
	}
	return string(buf)
}

// WriteJSON writes the indented JSON form.
func (b *Bench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// WriteJSONFile writes the bench record to path (0644, truncating).
func (b *Bench) WriteJSONFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := b.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
