// Package harness orchestrates experiment runs: a uniform Experiment
// interface, a package-level registry the CLI dispatches from, a worker
// pool that executes independent runs in parallel, and machine-readable
// JSON results.
//
// Every run owns its own sim.Engine, topology, and random streams (see
// sim.Engine.NextSeq), so a run's outcome is a pure function of
// (experiment, Params). That is what lets the pool saturate GOMAXPROCS
// while keeping each result byte-identical to a sequential run with the
// same parameters.
package harness

import (
	"fmt"
	"sort"
	"sync"

	"aqueue/internal/sim"
)

// Params carries the knobs common to every experiment. Experiments read
// what they need and ignore the rest; zero values select the experiment's
// own defaults.
type Params struct {
	// Horizon bounds the simulated time of open-loop experiments.
	Horizon sim.Time `json:"horizon_ns"`
	// Flows sizes closed-loop workloads (flows per entity).
	Flows int `json:"flows"`
	// Seed selects the workload random streams.
	Seed uint64 `json:"seed"`
	// Quick requests a reduced workload for a fast look.
	Quick bool `json:"quick,omitempty"`
	// Domains partitions the scenario's topology into this many
	// conservative time-synced simulation domains (see sim.Cluster); 0 and
	// 1 both mean a single engine. Results are byte-identical for any
	// value — the knob trades nothing but execution strategy — which is
	// why Fingerprint excludes it.
	Domains int `json:"domains,omitempty"`
	// Parallel advances a partitioned run's domains on the cluster's
	// persistent worker goroutines instead of cooperatively (see
	// sim.Cluster.SetParallel). Like Domains it trades only execution
	// strategy — results stay byte-identical, which the parallel parity
	// gate enforces under the race detector — so Fingerprint excludes it
	// too. The runner applies it by appending sim.WithParallelDomains to
	// the job's Sim options.
	Parallel bool `json:"parallel,omitempty"`
	// Sim overrides engine options (dense layouts, timer wheel, pooling,
	// burst size) for the experiment's engines. Like Domains, every knob
	// here trades only execution strategy — results are byte-identical for
	// any setting, which the fingerprint gates enforce — so the field is
	// excluded from result JSON and fingerprints.
	Sim []sim.Option `json:"-"`
}

// Experiment is a registered, named experiment. Run must be safe to call
// concurrently with other experiments' Run (but not with itself): it must
// build all mutable state — engine, topology, flows — per call.
type Experiment interface {
	Name() string
	Run(Params) (*Result, error)
}

// Func adapts a function to the Experiment interface.
type Func struct {
	name string
	fn   func(Params) (*Result, error)
}

// NewFunc wraps fn as a named Experiment.
func NewFunc(name string, fn func(Params) (*Result, error)) Func {
	return Func{name: name, fn: fn}
}

// Name implements Experiment.
func (f Func) Name() string { return f.name }

// Run implements Experiment.
func (f Func) Run(p Params) (*Result, error) { return f.fn(p) }

// The package-level registry. Experiments register themselves (typically
// from init functions); the CLI lists and dispatches by name.
var registry = struct {
	mu    sync.RWMutex
	byKey map[string]Experiment
	order []string
}{byKey: make(map[string]Experiment)}

// Register adds an experiment to the registry. It panics on a duplicate
// name: registration is static, so a collision is a programming error.
func Register(e Experiment) {
	name := e.Name()
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.byKey[name]; dup {
		panic(fmt.Sprintf("harness: experiment %q registered twice", name))
	}
	registry.byKey[name] = e
	registry.order = append(registry.order, name)
}

// Get returns the experiment registered under name.
func Get(name string) (Experiment, bool) {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	e, ok := registry.byKey[name]
	return e, ok
}

// Names returns the registered names in registration order (the canonical
// presentation order of the paper's figures and tables).
func Names() []string {
	registry.mu.RLock()
	defer registry.mu.RUnlock()
	out := make([]string, len(registry.order))
	copy(out, registry.order)
	return out
}

// SortedNames returns the registered names in lexical order.
func SortedNames() []string {
	out := Names()
	sort.Strings(out)
	return out
}
