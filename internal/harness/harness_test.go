package harness

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

func tableOf(title string, rows ...[]string) *Table {
	t := &Table{Title: title, Header: []string{"k", "v"}}
	t.Rows = rows
	return t
}

func okExperiment(name string) Experiment {
	return NewFunc(name, func(p Params) (*Result, error) {
		return &Result{
			Tables:  []*Table{tableOf(name, []string{"seed", fmt.Sprint(p.Seed)})},
			Metrics: map[string]float64{"seed": float64(p.Seed)},
		}, nil
	})
}

func TestRegistryRegisterGetNames(t *testing.T) {
	a, b := okExperiment("test-reg-a"), okExperiment("test-reg-b")
	Register(a)
	Register(b)
	if _, ok := Get("test-reg-a"); !ok {
		t.Fatal("registered experiment not found")
	}
	if _, ok := Get("test-reg-nope"); ok {
		t.Fatal("unknown name resolved")
	}
	names := Names()
	ia, ib := -1, -1
	for i, n := range names {
		switch n {
		case "test-reg-a":
			ia = i
		case "test-reg-b":
			ib = i
		}
	}
	if ia < 0 || ib < 0 || ib != ia+1 {
		t.Fatalf("registration order not preserved: %v", names)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	Register(okExperiment("test-dup"))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(okExperiment("test-dup"))
}

func TestJobsCrossProductAndUnknown(t *testing.T) {
	Register(okExperiment("test-jobs-x"))
	Register(okExperiment("test-jobs-y"))
	jobs, err := Jobs([]string{"test-jobs-x", "test-jobs-y"}, []uint64{3, 4}, Params{Flows: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 4 {
		t.Fatalf("len(jobs) = %d, want 4", len(jobs))
	}
	// Name-major order, base params preserved, seed overridden.
	if jobs[1].Experiment.Name() != "test-jobs-x" || jobs[1].Params.Seed != 4 || jobs[1].Params.Flows != 7 {
		t.Fatalf("jobs[1] = %v %+v", jobs[1].Experiment.Name(), jobs[1].Params)
	}
	if jobs[2].Experiment.Name() != "test-jobs-y" || jobs[2].Params.Seed != 3 {
		t.Fatalf("jobs[2] = %v %+v", jobs[2].Experiment.Name(), jobs[2].Params)
	}
	if _, err := Jobs([]string{"test-jobs-missing"}, nil, Params{}); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestJobsDefaultSeed(t *testing.T) {
	Register(okExperiment("test-jobs-def"))
	jobs, err := Jobs([]string{"test-jobs-def"}, nil, Params{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].Params.Seed != 9 {
		t.Fatalf("jobs = %+v", jobs)
	}
}

func TestPoolRunsAllInOrder(t *testing.T) {
	e := okExperiment("test-pool-order")
	var jobs []Job
	for seed := uint64(1); seed <= 16; seed++ {
		jobs = append(jobs, Job{Experiment: e, Params: Params{Seed: seed}})
	}
	results := (&Pool{Workers: 4}).Run(jobs)
	if len(results) != len(jobs) {
		t.Fatalf("len(results) = %d", len(results))
	}
	for i, r := range results {
		if r.Name != "test-pool-order" || r.Params.Seed != uint64(i+1) {
			t.Fatalf("result %d out of order: %+v", i, r)
		}
		if r.Metrics["seed"] != float64(i+1) {
			t.Fatalf("result %d payload mismatch: %+v", i, r.Metrics)
		}
		if r.WallNS < 0 {
			t.Fatalf("result %d wall time not recorded", i)
		}
	}
}

func TestPoolRecoversPanicsAndErrors(t *testing.T) {
	boom := NewFunc("test-pool-boom", func(Params) (*Result, error) {
		panic("kaboom")
	})
	fail := NewFunc("test-pool-fail", func(Params) (*Result, error) {
		return nil, errors.New("deliberate failure")
	})
	nilres := NewFunc("test-pool-nil", func(Params) (*Result, error) {
		return nil, nil
	})
	jobs := []Job{
		{Experiment: boom, Params: Params{Seed: 1}},
		{Experiment: okExperiment("test-pool-ok"), Params: Params{Seed: 2}},
		{Experiment: fail, Params: Params{Seed: 3}},
		{Experiment: nilres, Params: Params{Seed: 4}},
	}
	results := (&Pool{Workers: 2}).Run(jobs)
	if !strings.Contains(results[0].Error, "kaboom") {
		t.Fatalf("panic not recovered into result: %q", results[0].Error)
	}
	if results[1].Error != "" || results[1].Metrics["seed"] != 2 {
		t.Fatalf("healthy run corrupted by neighbour's panic: %+v", results[1])
	}
	if results[2].Error != "deliberate failure" {
		t.Fatalf("error not captured: %q", results[2].Error)
	}
	if results[3].Error == "" {
		t.Fatal("nil result not flagged")
	}
}

func TestPoolDefaultWorkersAndEmpty(t *testing.T) {
	if got := (&Pool{}).Run(nil); len(got) != 0 {
		t.Fatalf("empty batch produced %d results", len(got))
	}
	var calls atomic.Int64
	e := NewFunc("test-pool-default", func(p Params) (*Result, error) {
		calls.Add(1)
		return &Result{}, nil
	})
	results := (&Pool{}).Run([]Job{{Experiment: e}, {Experiment: e}})
	if calls.Load() != 2 || len(results) != 2 {
		t.Fatalf("calls = %d, results = %d", calls.Load(), len(results))
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	res := &Result{
		Name:    "test-json",
		Params:  Params{Seed: 5, Flows: 10},
		Tables:  []*Table{tableOf("t", []string{"a", "b"})},
		Metrics: map[string]float64{"gbps": 9.5},
		WallNS:  123,
	}
	var buf bytes.Buffer
	if err := NewReport(4, []*Result{res}).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != ResultSchema || back.Workers != 4 || len(back.Results) != 1 {
		t.Fatalf("report round trip: %+v", back)
	}
	r := back.Results[0]
	if r.Name != "test-json" || r.Params.Seed != 5 || r.Metrics["gbps"] != 9.5 {
		t.Fatalf("result round trip: %+v", r)
	}
	if len(r.Tables) != 1 || r.Tables[0].Rows[0][1] != "b" {
		t.Fatalf("table round trip: %+v", r.Tables)
	}
}

func TestFingerprintIgnoresWallTime(t *testing.T) {
	a := &Result{Name: "x", Metrics: map[string]float64{"m": 1}, WallNS: 10}
	b := &Result{Name: "x", Metrics: map[string]float64{"m": 1}, WallNS: 99999}
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("fingerprint depends on wall time")
	}
	c := &Result{Name: "x", Metrics: map[string]float64{"m": 2}, WallNS: 10}
	if Fingerprint(a) == Fingerprint(c) {
		t.Fatal("fingerprint misses metric change")
	}
}

func TestRunBenchIdenticalAndTimed(t *testing.T) {
	// The worker count under test may exceed this box's core count; raise
	// GOMAXPROCS so RunBench's oversubscription guard stays out of the way
	// (the scheduling is still legal, just not a meaningful speedup).
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	e := okExperiment("test-bench")
	var jobs []Job
	for seed := uint64(1); seed <= 8; seed++ {
		jobs = append(jobs, Job{Experiment: e, Params: Params{Seed: seed}})
	}
	b, err := RunBench(jobs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b.Schema != BenchSchema || b.Jobs != 8 || b.Workers != 4 || b.RequestedWorkers != 4 {
		t.Fatalf("bench header: %+v", b)
	}
	if !b.Identical {
		t.Fatal("deterministic experiment reported non-identical passes")
	}
	if len(b.Runs) != 8 || b.SequentialNS <= 0 || b.ParallelNS <= 0 {
		t.Fatalf("bench timing: %+v", b)
	}
	if len(b.WorkerBusyNS) != 4 {
		t.Fatalf("WorkerBusyNS = %v, want 4 entries", b.WorkerBusyNS)
	}
	if b.Utilization <= 0 || b.Utilization > 1.5 {
		t.Fatalf("Utilization = %v, want a sane busy fraction", b.Utilization)
	}
}

func TestRunBenchRefusesOversubscription(t *testing.T) {
	// Benchmarking more workers than schedulable processors must be a hard
	// error: the recorded speedup would describe a configuration that never
	// ran (the regression this guards against shipped a 4-worker "0.99x
	// speedup" measured on GOMAXPROCS=1).
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	jobs := []Job{{Experiment: okExperiment("test-bench-oversub")}}
	if _, err := RunBench(jobs, 2); err == nil {
		t.Fatal("RunBench accepted 2 workers on GOMAXPROCS=1")
	}
}

func TestRunBenchCapsWorkersAtJobs(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	e := okExperiment("test-bench-cap")
	jobs := []Job{
		{Experiment: e, Params: Params{Seed: 1}},
		{Experiment: e, Params: Params{Seed: 2}},
	}
	b, err := RunBench(jobs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b.RequestedWorkers != 4 || b.Workers != 2 {
		t.Fatalf("requested/effective = %d/%d, want 4/2", b.RequestedWorkers, b.Workers)
	}
	if len(b.WorkerBusyNS) != 2 {
		t.Fatalf("WorkerBusyNS = %v, want 2 entries", b.WorkerBusyNS)
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tbl := &Table{Title: "T", Header: []string{"name", "v"}}
	tbl.AddRow("a", 1.5)
	tbl.AddRow("bee", 2)
	text := tbl.Render()
	if !strings.HasPrefix(text, "T\n") || !strings.Contains(text, "1.50") {
		t.Fatalf("render: %q", text)
	}
	csv := tbl.CSV()
	if !strings.HasPrefix(csv, "name,v\n") || !strings.Contains(csv, "bee,2\n") {
		t.Fatalf("csv: %q", csv)
	}
}
