package harness

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"aqueue/internal/sim"
)

// Job pairs an experiment with the parameters of one run.
type Job struct {
	Experiment Experiment
	Params     Params
}

// Jobs builds the cross product names × seeds against the registry: one
// job per (experiment, seed), in name-major order. Unknown names are an
// error.
func Jobs(names []string, seeds []uint64, base Params) ([]Job, error) {
	if len(seeds) == 0 {
		seeds = []uint64{base.Seed}
	}
	jobs := make([]Job, 0, len(names)*len(seeds))
	for _, name := range names {
		e, ok := Get(name)
		if !ok {
			return nil, fmt.Errorf("harness: unknown experiment %q (have %v)", name, Names())
		}
		for _, seed := range seeds {
			p := base
			p.Seed = seed
			jobs = append(jobs, Job{Experiment: e, Params: p})
		}
	}
	return jobs, nil
}

// Pool runs jobs on a bounded set of workers.
type Pool struct {
	// Workers is the number of concurrent runs; values < 1 select
	// GOMAXPROCS.
	Workers int
}

// Run executes the jobs and returns one Result per job, in job order.
// A run that returns an error or panics yields a Result with Error set;
// the rest of the batch is unaffected.
func (pl *Pool) Run(jobs []Job) []*Result {
	results, _ := pl.RunTracked(jobs)
	return results
}

// RunTracked is Run plus per-worker accounting: the second return value
// holds each worker's cumulative time inside jobs, which RunBench turns
// into a utilization figure for the benchmark artifact.
func (pl *Pool) RunTracked(jobs []Job) ([]*Result, []int64) {
	workers := pl.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]*Result, len(jobs))
	if len(jobs) == 0 {
		return results, nil
	}
	busy := make([]int64, workers)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range idx {
				start := time.Now()
				results[i] = runOne(jobs[i])
				busy[w] += time.Since(start).Nanoseconds()
			}
		}(w)
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results, busy
}

// runOne executes one job with wall-clock accounting and panic recovery.
func runOne(j Job) (res *Result) {
	start := time.Now()
	defer func() {
		if p := recover(); p != nil {
			res = &Result{Error: fmt.Sprintf("panic: %v\n%s", p, debug.Stack())}
		}
		if res == nil {
			res = &Result{Error: "experiment returned nil result"}
		}
		res.Name = j.Experiment.Name()
		res.Params = j.Params
		res.WallNS = time.Since(start).Nanoseconds()
	}()
	p := j.Params
	if p.Parallel {
		// Copy before appending: jobs from one Jobs() call share the Sim
		// backing array, and the pool runs them concurrently.
		p.Sim = append(append([]sim.Option(nil), p.Sim...), sim.WithParallelDomains(true))
	}
	r, err := j.Experiment.Run(p)
	if err != nil {
		return &Result{Error: err.Error()}
	}
	return r
}
