// Dense-table equivalence tests at simulator scope: the direct-indexed
// forwarding and AQ tables are a layout change only — a run on the dense
// fast paths must fingerprint byte-identically to the same run forced onto
// the map paths, across every registered quick-sweep scenario.
package aqueue_test

import (
	"testing"

	"aqueue/internal/experiments"
	"aqueue/internal/harness"
	"aqueue/internal/sim"
)

// sweepJobs builds one job per registered experiment at quick parameters
// with the horizon cut further, the same trick the pool lifecycle tests
// use: equivalence needs identical runs, not converged ones. The engine
// options are carried per job (harness.Params.Sim), so two sweeps with
// different options never race through process globals.
func sweepJobs(t *testing.T, opts ...sim.Option) []harness.Job {
	t.Helper()
	base := experiments.DefaultParams(true)
	base.Horizon = 20 * sim.Millisecond
	base.Flows = 4
	base.Sim = opts
	jobs, err := harness.Jobs(harness.Names(), nil, base)
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// TestDenseRunsFingerprintMatchMap is the dense-layout determinism gate:
// switching Table and Switch lookups between slice indexing and map probes
// must never influence a result — same drops, same marks, same seq
// consumption, same ordering.
func TestDenseRunsFingerprintMatchMap(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick sweep twice")
	}

	jobs := sweepJobs(t, sim.WithDenseTables(true), sim.WithDenseForwarding(true))
	if len(jobs) < 14 {
		t.Fatalf("registry holds %d quick-sweep scenarios, expected the full 14", len(jobs))
	}
	dense := (&harness.Pool{Workers: 1}).Run(jobs)

	mapped := (&harness.Pool{Workers: 1}).Run(
		sweepJobs(t, sim.WithDenseTables(false), sim.WithDenseForwarding(false)))

	for i := range dense {
		df, mf := harness.Fingerprint(dense[i]), harness.Fingerprint(mapped[i])
		if df != mf {
			t.Errorf("%s: dense and map fingerprints differ\ndense: %s\nmap:   %s",
				dense[i].Name, df, mf)
		}
	}
}
