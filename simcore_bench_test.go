// Simulation-core benchmarks: the hot path a packet takes through the
// simulator — engine events, pipes, physical queues, AQ pipelines,
// transport. The scenarios live in internal/benchcore so that
// `cmd/aqsim -benchcore` records the exact same workloads into
// BENCH_simcore.json and the perf trajectory accumulates per PR.
package aqueue_test

import (
	"testing"

	"aqueue/internal/benchcore"
	"aqueue/internal/sim"
)

// BenchmarkSingleBottleneckForwarding is the headline forwarding benchmark:
// one op is a 10 ms single-bottleneck run. ns/op and allocs/op divided by
// the pkts metric give the per-packet cost.
func BenchmarkSingleBottleneckForwarding(b *testing.B) {
	b.ReportAllocs()
	var pkts uint64
	for i := 0; i < b.N; i++ {
		pkts = benchcore.RunSingleBottleneck(10 * sim.Millisecond)
	}
	b.ReportMetric(float64(pkts), "pkts")
}

// BenchmarkEngineChurn measures the event core in isolation under the same
// self-perpetuating timer workload -benchcore uses; one op is one fired
// event.
func BenchmarkEngineChurn(b *testing.B) {
	b.ReportAllocs()
	benchcore.RunEngineChurn(b.N, 1024)
}

// BenchmarkTimerHeavyWheel and BenchmarkTimerHeavyHeap bracket the
// timer-dominated scenario -benchcore records: 64 flows crowding a
// dumbbell, every one in pacing/RTO churn, scheduled on the hierarchical
// timing wheel vs forced back onto the event heap (DESIGN.md §3c).
func BenchmarkTimerHeavyWheel(b *testing.B) {
	defer sim.SetTimerWheel(true)
	sim.SetTimerWheel(true)
	b.ReportAllocs()
	var pkts uint64
	for i := 0; i < b.N; i++ {
		pkts = benchcore.RunTimerHeavy(64, 20*sim.Millisecond)
	}
	b.ReportMetric(float64(pkts), "pkts")
}

func BenchmarkTimerHeavyHeap(b *testing.B) {
	defer sim.SetTimerWheel(true)
	sim.SetTimerWheel(false)
	b.ReportAllocs()
	var pkts uint64
	for i := 0; i < b.N; i++ {
		pkts = benchcore.RunTimerHeavy(64, 20*sim.Millisecond)
	}
	b.ReportMetric(float64(pkts), "pkts")
}

// BenchmarkFatTreeSingleEngine and BenchmarkFatTreePartitioned bracket the
// partitioned large-fabric scenario -benchcore records: a k=4 fat tree with
// all-cross-pod long flows, run whole vs split into two cooperative
// domains. Comparing the two isolates the windowed-synchronization
// overhead; any parallel speedup on multicore hosts comes on top of it.
func BenchmarkFatTreeSingleEngine(b *testing.B) {
	b.ReportAllocs()
	var pkts uint64
	for i := 0; i < b.N; i++ {
		pkts, _ = benchcore.RunFatTree(4, 5*sim.Millisecond, 1, false)
	}
	b.ReportMetric(float64(pkts), "pkts")
}

func BenchmarkFatTreePartitioned(b *testing.B) {
	b.ReportAllocs()
	var pkts uint64
	for i := 0; i < b.N; i++ {
		pkts, _ = benchcore.RunFatTree(4, 5*sim.Millisecond, 2, false)
	}
	b.ReportMetric(float64(pkts), "pkts")
}
