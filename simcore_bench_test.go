// Simulation-core benchmarks: the hot path a packet takes through the
// simulator — engine events, pipes, physical queues, AQ pipelines,
// transport. The scenarios live in internal/benchcore so that
// `cmd/aqsim -benchcore` records the exact same workloads into
// BENCH_simcore.json and the perf trajectory accumulates per PR.
package aqueue_test

import (
	"testing"

	"aqueue/internal/benchcore"
	"aqueue/internal/sim"
)

// BenchmarkSingleBottleneckForwarding is the headline forwarding benchmark:
// one op is a 10 ms single-bottleneck run with the default burst size.
// ns/op and allocs/op divided by the pkts metric give the per-packet cost;
// the events metric shows the burst amortization (events dispatched per op).
func BenchmarkSingleBottleneckForwarding(b *testing.B) {
	b.ReportAllocs()
	var r benchcore.BottleneckResult
	for i := 0; i < b.N; i++ {
		r = benchcore.RunSingleBottleneck(10 * sim.Millisecond)
	}
	b.ReportMetric(float64(r.TxPackets), "pkts")
	b.ReportMetric(float64(r.Events), "events")
}

// BenchmarkSingleBottleneckForwardingNoBurst is the same scenario with
// burst draining disabled — the per-packet reference path.
func BenchmarkSingleBottleneckForwardingNoBurst(b *testing.B) {
	b.ReportAllocs()
	var r benchcore.BottleneckResult
	for i := 0; i < b.N; i++ {
		r = benchcore.RunSingleBottleneck(10*sim.Millisecond, sim.WithBurstSize(0))
	}
	b.ReportMetric(float64(r.TxPackets), "pkts")
	b.ReportMetric(float64(r.Events), "events")
}

// BenchmarkDrainRun is the back-to-back departure scenario burst mode is
// built for: one op queues 20k packets onto an idle 10 Gbps pipe at t=0
// and drains them to a sink. With nothing else on the calendar the whole
// drain is one long run, so events/op collapses toward pkts/burst.
func BenchmarkDrainRun(b *testing.B) {
	b.ReportAllocs()
	var delivered, events uint64
	for i := 0; i < b.N; i++ {
		delivered, _, events, _ = benchcore.RunDrain(20_000)
	}
	b.ReportMetric(float64(delivered), "pkts")
	b.ReportMetric(float64(events), "events")
}

// TestDrainRunBurstParity pins the drain scenario's two burst-mode claims:
// the traffic is byte-identical with burst draining on and off, and the
// burst pass dispatches well under a tenth of the per-packet pass's events.
func TestDrainRunBurstParity(t *testing.T) {
	const pkts = 5000
	d, end, ev, inl := benchcore.RunDrain(pkts)
	refD, refEnd, refEv, refInl := benchcore.RunDrain(pkts, sim.WithBurstSize(0))
	if d != pkts || refD != pkts {
		t.Fatalf("delivered %d burst vs %d per-packet, want %d", d, refD, pkts)
	}
	if end != refEnd {
		t.Fatalf("final clock %d burst vs %d per-packet", end, refEnd)
	}
	if refInl != 0 {
		t.Fatalf("burst-off pass inlined %d deliveries", refInl)
	}
	if ev+inl != refEv+refInl {
		t.Fatalf("event+inline total %d burst vs %d per-packet", ev+inl, refEv+refInl)
	}
	if ev*10 >= refEv {
		t.Fatalf("burst drain dispatched %d events vs %d per-packet — expected >10x cut", ev, refEv)
	}
}

// BenchmarkEngineChurn measures the event core in isolation under the same
// self-perpetuating timer workload -benchcore uses; one op is one fired
// event.
func BenchmarkEngineChurn(b *testing.B) {
	b.ReportAllocs()
	benchcore.RunEngineChurn(b.N, 1024)
}

// BenchmarkTimerHeavyWheel and BenchmarkTimerHeavyHeap bracket the
// timer-dominated scenario -benchcore records: 64 flows crowding a
// dumbbell, every one in pacing/RTO churn, scheduled on the hierarchical
// timing wheel vs forced back onto the event heap (DESIGN.md §3c).
func BenchmarkTimerHeavyWheel(b *testing.B) {
	b.ReportAllocs()
	var pkts uint64
	for i := 0; i < b.N; i++ {
		pkts = benchcore.RunTimerHeavy(64, 20*sim.Millisecond, sim.WithTimerWheel(true))
	}
	b.ReportMetric(float64(pkts), "pkts")
}

func BenchmarkTimerHeavyHeap(b *testing.B) {
	b.ReportAllocs()
	var pkts uint64
	for i := 0; i < b.N; i++ {
		pkts = benchcore.RunTimerHeavy(64, 20*sim.Millisecond, sim.WithTimerWheel(false))
	}
	b.ReportMetric(float64(pkts), "pkts")
}

// BenchmarkFatTreeSingleEngine and BenchmarkFatTreePartitioned bracket the
// partitioned large-fabric scenario -benchcore records: a k=4 fat tree with
// all-cross-pod long flows, run whole vs split into two cooperative
// domains. Comparing the two isolates the windowed-synchronization
// overhead; any parallel speedup on multicore hosts comes on top of it.
func BenchmarkFatTreeSingleEngine(b *testing.B) {
	b.ReportAllocs()
	var pkts uint64
	for i := 0; i < b.N; i++ {
		pkts, _ = benchcore.RunFatTree(4, 5*sim.Millisecond, 1, false)
	}
	b.ReportMetric(float64(pkts), "pkts")
}

func BenchmarkFatTreePartitioned(b *testing.B) {
	b.ReportAllocs()
	var pkts uint64
	for i := 0; i < b.N; i++ {
		pkts, _ = benchcore.RunFatTree(4, 5*sim.Millisecond, 2, false)
	}
	b.ReportMetric(float64(pkts), "pkts")
}
