// Domain-partitioning equivalence tests at simulator scope: splitting a
// scenario's topology across N conservative time-synced engines (see
// sim.Cluster) is an execution strategy, not a model change — a run
// partitioned into any number of domains must fingerprint byte-identically
// to the single-engine run, across every registered quick-sweep scenario
// and under both the dense and the map table layouts.
package aqueue_test

import (
	"testing"

	"aqueue/internal/experiments"
	"aqueue/internal/harness"
	"aqueue/internal/sim"
)

// domainJobs builds one job per registered experiment at quick parameters
// with the horizon cut further (the sweepJobs trick), partitioned into the
// given number of domains and carrying the given engine options per job.
func domainJobs(t *testing.T, domains int, parallel bool, opts ...sim.Option) []harness.Job {
	t.Helper()
	base := experiments.DefaultParams(true)
	base.Horizon = 20 * sim.Millisecond
	base.Flows = 4
	base.Domains = domains
	base.Parallel = parallel
	base.Sim = opts
	jobs, err := harness.Jobs(harness.Names(), nil, base)
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// runSweep executes the full quick sweep partitioned into the given number
// of domains and returns the results. The pool runs one worker: parity
// needs identical runs, and the domains themselves advance cooperatively
// inside each run.
func runSweep(t *testing.T, domains int, parallel bool, opts ...sim.Option) []*harness.Result {
	t.Helper()
	jobs := domainJobs(t, domains, parallel, opts...)
	if len(jobs) < 16 {
		t.Fatalf("registry holds %d quick-sweep scenarios, expected the full 16", len(jobs))
	}
	return (&harness.Pool{Workers: 1}).Run(jobs)
}

// TestDomainRunsFingerprintMatchSingleEngine is the partitioning
// determinism gate: every quick-sweep scenario must produce byte-identical
// results when its topology is split across 2 and 4 domains, under both
// table layouts. A divergence means some event ordering, sequence draw, or
// measurement leaked the partitioning into the model.
func TestDomainRunsFingerprintMatchSingleEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick sweep six times")
	}

	for _, layout := range []struct {
		name  string
		dense bool
	}{{"dense", true}, {"map", false}} {
		layout := layout
		t.Run(layout.name, func(t *testing.T) {
			opts := []sim.Option{
				sim.WithDenseTables(layout.dense),
				sim.WithDenseForwarding(layout.dense),
			}
			single := runSweep(t, 1, false, opts...)
			for _, domains := range []int{2, 4} {
				parted := runSweep(t, domains, false, opts...)
				for i := range single {
					sf, pf := harness.Fingerprint(single[i]), harness.Fingerprint(parted[i])
					if sf != pf {
						t.Errorf("%s: %d-domain fingerprint differs from single-engine\nsingle: %s\n%d-dom: %s",
							single[i].Name, domains, sf, domains, pf)
					}
				}
			}
		})
	}
}

// TestParallelDomainsFingerprintMatchSingleEngine is the parallel-execution
// determinism gate: every quick-sweep scenario, split across 2 and 4
// domains and advanced on the cluster's persistent worker goroutines
// (Params.Parallel), must still fingerprint byte-identically to the
// cooperative single-engine run. CI runs this gate under -race, so it also
// proves that the only cross-domain traffic under workers is the mailbox
// hand-off at round barriers — any other shared write is a detected race.
func TestParallelDomainsFingerprintMatchSingleEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick sweep three times")
	}

	single := runSweep(t, 1, false)
	for _, domains := range []int{2, 4} {
		parted := runSweep(t, domains, true)
		for i := range single {
			sf, pf := harness.Fingerprint(single[i]), harness.Fingerprint(parted[i])
			if sf != pf {
				t.Errorf("%s: parallel %d-domain fingerprint differs from single-engine\nsingle: %s\n%d-dom: %s",
					single[i].Name, domains, sf, domains, pf)
			}
		}
	}
}
