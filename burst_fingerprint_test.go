// Burst-drain equivalence tests at simulator scope: draining back-to-back
// pipe deliveries inside one engine event (see sim.Options.BurstSize and
// topo.Pipe) elides only events that would fire next anyway, so a run with
// bursting on must fingerprint byte-identically to the per-packet run,
// across every registered quick-sweep scenario, any domain partitioning,
// and under both table layouts and both timer lanes.
package aqueue_test

import (
	"testing"

	"aqueue/internal/harness"
	"aqueue/internal/sim"
)

// runBurstSweep executes the full quick sweep with the given burst size
// (0 = per-packet reference), partitioned into the given number of domains,
// with any extra engine options layered on top. One worker: the equivalence
// needs identical runs.
func runBurstSweep(t *testing.T, burst, domains int, extra ...sim.Option) []*harness.Result {
	t.Helper()
	opts := append([]sim.Option{sim.WithBurstSize(burst)}, extra...)
	jobs := domainJobs(t, domains, false, opts...)
	if len(jobs) < 14 {
		t.Fatalf("registry holds %d quick-sweep scenarios, expected the full 14", len(jobs))
	}
	return (&harness.Pool{Workers: 1}).Run(jobs)
}

func requireSameFingerprints(t *testing.T, label string, on, off []*harness.Result) {
	t.Helper()
	for i := range on {
		bf, pf := harness.Fingerprint(on[i]), harness.Fingerprint(off[i])
		if bf != pf {
			t.Errorf("%s (%s): burst and per-packet fingerprints differ\nburst:      %s\nper-packet: %s",
				on[i].Name, label, bf, pf)
		}
	}
}

// TestBurstRunsFingerprintMatchPerPacket is the burst-mode determinism
// gate: every quick-sweep scenario must produce byte-identical results with
// burst draining on and off, at 1, 2, and 4 domains, and — at one domain —
// under the map table layout with the timer wheel forced back onto the
// heap. A divergence means an inlined delivery ran ahead of an event that
// should have preceded it, or a burst crossed a boundary it must not.
func TestBurstRunsFingerprintMatchPerPacket(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick sweep eight times")
	}

	for _, domains := range []int{1, 2, 4} {
		on := runBurstSweep(t, sim.DefaultBurstSize, domains)
		off := runBurstSweep(t, 0, domains)
		requireSameFingerprints(t, nDomains(domains), on, off)
	}

	// The other engine configurations share one pass: the burst cursors on
	// the map table layout, and the inline gate peeking a heap-lane timer
	// instead of the wheel.
	alt := []sim.Option{
		sim.WithDenseTables(false),
		sim.WithDenseForwarding(false),
		sim.WithTimerWheel(false),
	}
	on := runBurstSweep(t, sim.DefaultBurstSize, 1, alt...)
	off := runBurstSweep(t, 0, 1, alt...)
	requireSameFingerprints(t, "map layout, heap timers", on, off)
}

func nDomains(n int) string {
	return map[int]string{1: "1 domain", 2: "2 domains", 4: "4 domains"}[n]
}
