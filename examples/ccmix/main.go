// ccmix: the transport-layer isolation use case (§5.3). A DCTCP tenant and
// a CUBIC tenant share a bottleneck. Through the shared physical queue
// DCTCP crushes CUBIC; with one AQ per tenant — the DCTCP tenant's AQ
// generating virtual ECN marks, the CUBIC tenant's generating limit drops —
// both get their share and keep their own congestion-control behaviour.
//
// Run: go run ./examples/ccmix
package main

import (
	"fmt"

	"aqueue/internal/cc"
	"aqueue/internal/control"
	"aqueue/internal/core"
	"aqueue/internal/sim"
	"aqueue/internal/stats"
	"aqueue/internal/topo"
	"aqueue/internal/transport"
)

func run(useAQ bool) (cubicG, dctcpG float64) {
	eng := sim.NewEngine()
	spec := topo.DefaultSim()
	d := topo.NewDumbbell(eng, 2, 2, spec, spec)

	var cubicOpt, dctcpOpt transport.Options
	dctcpOpt.EcnCapable = true
	if useAQ {
		ctrl := control.NewController(spec.Rate)
		gC, err := ctrl.Grant(control.Request{Tenant: "cubic-tenant",
			Mode: control.Weighted, Weight: 1, CC: core.DropType,
			Limit: spec.QueueLimit, Position: control.Ingress}, d.S1.Ingress)
		if err != nil {
			panic(err)
		}
		gD, err := ctrl.Grant(control.Request{Tenant: "dctcp-tenant",
			Mode: control.Weighted, Weight: 1, CC: core.ECNType,
			Limit: spec.QueueLimit, Position: control.Ingress}, d.S1.Ingress)
		if err != nil {
			panic(err)
		}
		cubicOpt.IngressAQ = gC.ID
		dctcpOpt.IngressAQ = gD.ID
	}

	var cubs, dcts []*transport.Sender
	for i := 0; i < 5; i++ {
		c := transport.NewSender(d.Left[0], d.Right[0], 0, cc.NewCubic(), cubicOpt)
		c.Start(sim.Time(i) * 20 * sim.Microsecond)
		cubs = append(cubs, c)
		dd := transport.NewSender(d.Left[1], d.Right[1], 0, cc.NewDCTCP(), dctcpOpt)
		dd.Start(sim.Time(i) * 20 * sim.Microsecond)
		dcts = append(dcts, dd)
	}
	const horizon = 200 * sim.Millisecond
	eng.RunUntil(horizon)
	sum := func(ss []*transport.Sender) (b uint64) {
		for _, s := range ss {
			b += uint64(s.AckedBytes())
		}
		return
	}
	return stats.RateGbps(sum(cubs), horizon), stats.RateGbps(sum(dcts), horizon)
}

func main() {
	pqC, pqD := run(false)
	aqC, aqD := run(true)
	fmt.Println("5 CUBIC flows (tenant A) vs 5 DCTCP flows (tenant B), 10 Gbps bottleneck")
	fmt.Printf("  shared physical queue: CUBIC %.2f Gbps, DCTCP %.2f Gbps\n", pqC, pqD)
	fmt.Printf("  one AQ per tenant:     CUBIC %.2f Gbps, DCTCP %.2f Gbps\n", aqC, aqD)
	fmt.Println("\nAQ gives each CC algorithm its own feedback (drops vs virtual ECN),")
	fmt.Println("so incompatible algorithms co-exist at their allocated shares (Table 2).")
}
