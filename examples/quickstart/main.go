// Quickstart: two applications share a 10 Gbps bottleneck. Application B
// opens 16 flows to application A's one — under the physical queue alone B
// would grab almost everything — but each application gets a weighted
// Augmented Queue, so they share 50:50 regardless of flow count.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"

	"aqueue/internal/cc"
	"aqueue/internal/control"
	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/stats"
	"aqueue/internal/topo"
	"aqueue/internal/transport"
)

func main() {
	eng := sim.NewEngine()
	spec := topo.DefaultSim() // 10 Gbps, 10 us links (the paper's NS3 setup)
	d := topo.NewDumbbell(eng, 2, 2, spec, spec)

	// The operator-side controller manages the bottleneck link; each
	// application requests a weighted AQ at the ingress pipeline of S1.
	ctrl := control.NewController(spec.Rate)
	grantFor := func(tenant string) packet.AQID {
		g, err := ctrl.Grant(control.Request{
			Tenant:   tenant,
			Mode:     control.Weighted,
			Weight:   1,
			Limit:    spec.QueueLimit,
			Position: control.Ingress,
		}, d.S1.Ingress)
		if err != nil {
			panic(err)
		}
		fmt.Printf("granted %s: AQ id=%d rate=%v\n", tenant, g.ID, g.Rate)
		return g.ID
	}
	idA := grantFor("app-A")
	idB := grantFor("app-B")

	// Application A: one long CUBIC flow, tagged with its AQ ID.
	a := transport.NewSender(d.Left[0], d.Right[0], 0, cc.NewCubic(),
		transport.Options{IngressAQ: idA})
	a.Start(0)

	// Application B: sixteen long CUBIC flows from its own VM.
	var bs []*transport.Sender
	for i := 0; i < 16; i++ {
		s := transport.NewSender(d.Left[1], d.Right[1], 0, cc.NewCubic(),
			transport.Options{IngressAQ: idB})
		s.Start(sim.Time(i) * 50 * sim.Microsecond)
		bs = append(bs, s)
	}

	const horizon = 200 * sim.Millisecond
	eng.RunUntil(horizon)

	var bAcked uint64
	for _, s := range bs {
		bAcked += uint64(s.AckedBytes())
	}
	fmt.Printf("\nafter %v:\n", horizon)
	fmt.Printf("  app-A (1 flow):   %.2f Gbps\n", stats.RateGbps(uint64(a.AckedBytes()), horizon))
	fmt.Printf("  app-B (16 flows): %.2f Gbps\n", stats.RateGbps(bAcked, horizon))
	fmt.Println("\nequal weights -> equal shares, regardless of flow count (Figure 8).")
}
