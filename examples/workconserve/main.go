// workconserve: the §6 extension. Bandwidth guarantees are not work
// conserving: a 3 Gbps entity sharing a 10 Gbps link with an idle peer
// still gets only 3 Gbps. With the switch's work-conservation option, AQ
// processing is bypassed while the physical queue is empty, so the active
// entity grabs the idle capacity — and as soon as the peer wakes up and
// the queue builds, AQ enforcement snaps back.
//
// Run: go run ./examples/workconserve
package main

import (
	"fmt"

	"aqueue/internal/cc"
	"aqueue/internal/control"
	"aqueue/internal/sim"
	"aqueue/internal/stats"
	"aqueue/internal/topo"
	"aqueue/internal/transport"
	"aqueue/internal/units"
)

func run(workConserving bool) (aloneG, sharedG float64) {
	eng := sim.NewEngine()
	spec := topo.DefaultSim()
	d := topo.NewDumbbell(eng, 2, 2, spec, spec)
	d.S1.WorkConserving = workConserving

	ctrl := control.NewController(spec.Rate)
	gA, err := ctrl.Grant(control.Request{Tenant: "A", Mode: control.Absolute,
		Bandwidth: 3 * units.Gbps, Limit: spec.QueueLimit, Position: control.Ingress}, d.S1.Ingress)
	if err != nil {
		panic(err)
	}
	gB, err := ctrl.Grant(control.Request{Tenant: "B", Mode: control.Absolute,
		Bandwidth: 7 * units.Gbps, Limit: spec.QueueLimit, Position: control.Ingress}, d.S1.Ingress)
	if err != nil {
		panic(err)
	}

	// Entity A runs the whole time; entity B (7 Gbps guarantee) only wakes
	// up for the second half.
	a := transport.NewSender(d.Left[0], d.Right[0], 0, cc.NewCubic(),
		transport.Options{IngressAQ: gA.ID})
	a.Start(0)
	const half = 100 * sim.Millisecond
	var bs []*transport.Sender
	for i := 0; i < 4; i++ {
		b := transport.NewSender(d.Left[1], d.Right[1], 0, cc.NewCubic(),
			transport.Options{IngressAQ: gB.ID})
		b.Start(half + sim.Time(i)*30*sim.Microsecond)
		bs = append(bs, b)
	}

	eng.RunUntil(half)
	acked1 := uint64(a.AckedBytes())
	eng.RunUntil(2 * half)
	acked2 := uint64(a.AckedBytes()) - acked1
	_ = bs
	return stats.RateGbps(acked1, half), stats.RateGbps(acked2, half)
}

func main() {
	strictAlone, strictShared := run(false)
	wcAlone, wcShared := run(true)
	fmt.Println("entity A: 3 Gbps guarantee; entity B: 7 Gbps guarantee, idle for the first 100 ms")
	fmt.Printf("  strict AQ:           A alone %.2f Gbps, A with B active %.2f Gbps\n",
		strictAlone, strictShared)
	fmt.Printf("  work-conserving (§6): A alone %.2f Gbps, A with B active %.2f Gbps\n",
		wcAlone, wcShared)
	fmt.Println("\nwith the empty-queue bypass, A uses the idle link (≈10 Gbps) and falls")
	fmt.Println("back to its 3 Gbps guarantee once B's traffic builds the queue.")
}
