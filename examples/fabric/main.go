// fabric: AQ beyond a single switch. Two tenants spread across a 2-leaf /
// 2-spine ECMP fabric (2:1 oversubscribed) contend for the leaf uplinks;
// tenant B opens four times the flows. A weighted AQ per tenant on the
// sending leaf's ingress pipeline restores the 50:50 split that the
// physical queues hand to whoever opens more flows.
//
// Run: go run ./examples/fabric
package main

import (
	"fmt"

	"aqueue/internal/experiments"
	"aqueue/internal/sim"
)

func main() {
	const horizon = 150 * sim.Millisecond
	pqA, pqB, aqA, aqB := experiments.ExtFabricIsolation(horizon, 1)
	fmt.Println("2-leaf/2-spine fabric, ECMP, 2:1 oversubscribed; A: 8 flows, B: 32 flows")
	fmt.Printf("  physical queues: A %.2f Gbps, B %.2f Gbps\n", pqA, pqB)
	fmt.Printf("  weighted AQs:    A %.2f Gbps, B %.2f Gbps\n", aqA, aqB)

	pqIn, aqIn := experiments.ExtFabricIncast(horizon, 1)
	fmt.Println("\n8:1 incast at a VM with a 2 Gbps inbound guarantee:")
	fmt.Printf("  physical queues: %.2f Gbps land on the victim\n", pqIn)
	fmt.Printf("  egress AQ:       %.2f Gbps (the profile holds)\n", aqIn)
}
