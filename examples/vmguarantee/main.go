// vmguarantee: the link-layer use case (§5.4, Figure 2). Four VMs hang off
// one 25 Gbps switch. VM A has a traffic profile of 5 Gbps outbound and
// 5 Gbps inbound. Three VMs blast traffic at A while A sends to all of
// them. An ingress-pipeline AQ enforces A's outbound profile and an
// egress-pipeline AQ enforces its inbound profile — something neither the
// physical queue nor end-host rate limiters can do (Table 3).
//
// Run: go run ./examples/vmguarantee
package main

import (
	"fmt"

	"aqueue/internal/cc"
	"aqueue/internal/control"
	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/stats"
	"aqueue/internal/topo"
	"aqueue/internal/transport"
	"aqueue/internal/units"
)

func main() {
	eng := sim.NewEngine()
	spec := topo.DefaultTestbed() // 25 Gbps star, the paper's Tofino setup
	st := topo.NewStar(eng, 4, spec)
	a := st.Hosts[0]
	const profile = 5 * units.Gbps

	ctrl := control.NewController(spec.Rate)
	outAQ := make(map[packet.HostID]packet.AQID)
	inAQ := make(map[packet.HostID]packet.AQID)
	for _, h := range st.Hosts {
		gOut, err := ctrl.Grant(control.Request{Tenant: "vm-out", Mode: control.Absolute,
			Bandwidth: profile, Limit: spec.QueueLimit, Position: control.Ingress}, st.SW.Ingress)
		if err != nil {
			panic(err)
		}
		gIn, err := ctrl.Grant(control.Request{Tenant: "vm-in", Mode: control.Absolute,
			Bandwidth: profile, Limit: spec.QueueLimit, Position: control.Egress}, st.SW.Egress)
		if err != nil {
			panic(err)
		}
		outAQ[h.ID()] = gOut.ID
		inAQ[h.ID()] = gIn.ID
	}

	// Measure VM A's two directions.
	outMeter := stats.NewMeter(sim.Millisecond)
	inMeter := stats.NewMeter(sim.Millisecond)
	for _, h := range st.Hosts {
		h.RxHook = func(p *packet.Packet) {
			if p.Kind != packet.Data {
				return
			}
			if p.Src == a.ID() {
				outMeter.Add(eng.Now(), p.Size)
			}
			if p.Dst == a.ID() {
				inMeter.Add(eng.Now(), p.Size)
			}
		}
	}

	// Saturating long flows: A -> everyone, everyone -> A, tagged with the
	// granted AQ IDs (the hypervisor's job in §4.1).
	start := func(src, dst *topo.Host, n int) {
		for i := 0; i < n; i++ {
			s := transport.NewSender(src, dst, 0, cc.NewCubic(), transport.Options{
				IngressAQ: outAQ[src.ID()],
				EgressAQ:  inAQ[dst.ID()],
			})
			s.Start(sim.Time(i) * 30 * sim.Microsecond)
		}
	}
	for _, h := range st.Hosts[1:] {
		start(a, h, 3)
		start(h, a, 3)
	}

	const horizon = 200 * sim.Millisecond
	eng.RunUntil(horizon)
	warm := horizon / 4
	fmt.Println("VM A profile: 5 Gbps outbound + 5 Gbps inbound on a 25 Gbps fabric")
	fmt.Printf("  measured outbound: %.2f Gbps\n", outMeter.Gbps(warm, horizon))
	fmt.Printf("  measured inbound:  %.2f Gbps (three VMs sending simultaneously)\n",
		inMeter.Gbps(warm, horizon))
	fmt.Println("\nan end-host limiter would have let inbound reach ~15 Gbps (Table 3);")
	fmt.Println("the egress-pipeline AQ holds it at the profile.")
}
