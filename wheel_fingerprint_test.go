// Timing-wheel equivalence tests at simulator scope: routing timer-class
// events (RTO, pacing, UDP ticks, rate-limiter drains, controller ticks)
// through the hierarchical wheel instead of the event heap is a scheduling
// lane change only — a run with the wheel enabled must fingerprint
// byte-identically to the same run forced back onto the heap, across every
// registered quick-sweep scenario and any domain partitioning.
package aqueue_test

import (
	"testing"

	"aqueue/internal/harness"
	"aqueue/internal/sim"
)

// runWheelSweep executes the full quick sweep with the timing wheel set as
// given (per-job via engine options), partitioned into the given number of
// domains. One worker: the equivalence needs identical runs.
func runWheelSweep(t *testing.T, wheel bool, domains int) []*harness.Result {
	t.Helper()
	jobs := domainJobs(t, domains, false, sim.WithTimerWheel(wheel))
	if len(jobs) < 14 {
		t.Fatalf("registry holds %d quick-sweep scenarios, expected the full 14", len(jobs))
	}
	return (&harness.Pool{Workers: 1}).Run(jobs)
}

// TestWheelRunsFingerprintMatchHeap is the timer-lane determinism gate:
// every quick-sweep scenario must produce byte-identical results with the
// wheel on and off, at 1, 2, and 4 domains. A divergence means a timer
// fired in a different order relative to packet events — some ordering
// word, sequence draw, or window boundary leaked the lane into the model.
func TestWheelRunsFingerprintMatchHeap(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick sweep six times")
	}

	for _, domains := range []int{1, 2, 4} {
		on := runWheelSweep(t, true, domains)
		off := runWheelSweep(t, false, domains)
		for i := range on {
			of, hf := harness.Fingerprint(on[i]), harness.Fingerprint(off[i])
			if of != hf {
				t.Errorf("%s (%d domains): wheel and heap fingerprints differ\nwheel: %s\nheap:  %s",
					on[i].Name, domains, of, hf)
			}
		}
	}
}
