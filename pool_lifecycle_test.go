// Packet-pool lifecycle tests at simulator scope: recycling packets must
// be invisible — a pooled run and an unpooled run of the same experiment
// produce byte-identical results, and concurrent pooled runs stay
// deterministic under -race.
package aqueue_test

import (
	"testing"

	"aqueue/internal/experiments"
	"aqueue/internal/harness"
	"aqueue/internal/packet"
	"aqueue/internal/sim"
)

// lifecycleJobs is a small cross-section of the sweep: an open-loop figure
// with AQ drops and ECN (fig8 exercises queues, AQs, and retransmission
// timers) and the conceptual fig3 (strawman vs A-Gap, no transport). The
// horizon is cut far below -quick so the -race CI pass stays fast; the
// fingerprint comparison only needs identical runs, not converged ones.
func lifecycleJobs(t *testing.T, opts ...sim.Option) []harness.Job {
	t.Helper()
	base := experiments.DefaultParams(true)
	base.Horizon = 20 * sim.Millisecond
	base.Flows = 4
	base.Sim = opts
	jobs, err := harness.Jobs([]string{"fig3", "fig8"}, nil, base)
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// TestPooledRunsFingerprintMatchUnpooled is the pooling determinism gate:
// recycled packet memory must never influence a result.
func TestPooledRunsFingerprintMatchUnpooled(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full experiment passes")
	}
	pooled := (&harness.Pool{Workers: 1}).Run(lifecycleJobs(t, sim.WithPooling(true)))
	unpooled := (&harness.Pool{Workers: 1}).Run(lifecycleJobs(t, sim.WithPooling(false)))

	for i := range pooled {
		pf, uf := harness.Fingerprint(pooled[i]), harness.Fingerprint(unpooled[i])
		if pf != uf {
			t.Errorf("%s: pooled and unpooled fingerprints differ\npooled:   %s\nunpooled: %s",
				pooled[i].Name, pf, uf)
		}
	}
}

// TestPooledParallelDeterministic runs the same jobs concurrently with the
// shared pool (the harness's normal mode) and checks the results are
// byte-identical to a sequential pass — under -race this also proves the
// pool is the only cross-engine state and it is data-race free.
func TestPooledParallelDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full experiment passes")
	}
	jobs := lifecycleJobs(t)
	// Duplicate the batch so several engines churn the pool at once.
	jobs = append(jobs, jobs...)
	seq := (&harness.Pool{Workers: 1}).Run(jobs)
	par := (&harness.Pool{Workers: 4}).Run(jobs)
	for i := range seq {
		if harness.Fingerprint(seq[i]) != harness.Fingerprint(par[i]) {
			t.Errorf("job %d (%s): parallel fingerprint differs from sequential", i, seq[i].Name)
		}
	}
}

// TestReleasedPacketNotHeldBySimulation drives a short end-to-end run and
// then drains the pool: if any component had released a packet it still
// holds (double release), the pool would hand the same pointer out twice.
func TestReleasedPacketNotHeldBySimulation(t *testing.T) {
	exp, ok := harness.Get("fig3")
	if !ok {
		t.Fatal("fig3 not registered")
	}
	res, err := exp.Run(harness.Params{Quick: true, Seed: 1})
	if err != nil || res == nil {
		t.Fatalf("fig3 run failed: %v", err)
	}
	seen := make(map[*packet.Packet]bool)
	var got []*packet.Packet
	for i := 0; i < 4096; i++ {
		p := packet.Get()
		if seen[p] {
			t.Fatal("pool handed out the same live packet twice — double release upstream")
		}
		seen[p] = true
		got = append(got, p)
	}
	for _, p := range got {
		packet.Release(p)
	}
}
