// Package aqueue_test is the benchmark harness: one benchmark per table
// and figure of the paper's evaluation (run with `go test -bench=.`), plus
// microbenchmarks of the per-packet A-Gap hot path and ablation benches
// for the design choices DESIGN.md calls out.
//
// The figure/table benches run reduced-size versions of the experiments
// (the full-size runs are `cmd/aqsim -experiment all`) and report the
// headline quantities via b.ReportMetric so `-benchmem` output doubles as
// a regression record.
package aqueue_test

import (
	"fmt"
	"testing"

	"aqueue/internal/core"
	"aqueue/internal/experiments"
	"aqueue/internal/packet"
	"aqueue/internal/sim"
	"aqueue/internal/units"
)

// ---------------------------------------------------------------------------
// Microbenchmarks: the per-packet data-plane cost that makes AQ scalable.

func BenchmarkAGapUpdate(b *testing.B) {
	aq := core.New(core.Config{ID: 1, Rate: 10 * units.Gbps})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		aq.Update(sim.Time(i)*800, 1040)
	}
}

func BenchmarkAGapProcessDrop(b *testing.B) {
	aq := core.New(core.Config{ID: 1, Rate: 10 * units.Gbps})
	p := packet.NewData(0, 1, 1, 0, 1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		aq.Process(sim.Time(i)*800, p)
		p.VirtualDelay = 0
	}
}

func BenchmarkAGapProcessECN(b *testing.B) {
	aq := core.New(core.Config{ID: 1, Rate: 10 * units.Gbps, CC: core.ECNType})
	p := packet.NewData(0, 1, 1, 0, 1000)
	p.EcnCapable = true
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		aq.Process(sim.Time(i)*800, p)
		p.CE = false
		p.VirtualDelay = 0
	}
}

// BenchmarkTableMillionAQs exercises the R3 scalability requirement: one
// switch pipeline holding a million AQs, packets spread across all of them.
func BenchmarkTableMillionAQs(b *testing.B) {
	tbl := core.NewTable()
	const n = 1_000_000
	for i := 1; i <= n; i++ {
		tbl.Deploy(core.Config{ID: packet.AQID(i), Rate: units.Gbps})
	}
	b.ReportMetric(float64(tbl.MemoryBytes())/1e6, "modelMB")
	p := packet.NewData(0, 1, 1, 0, 1000)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		id := packet.AQID(i%n + 1)
		tbl.Process(sim.Time(i)*100, id, p)
		p.VirtualDelay = 0
	}
}

// ---------------------------------------------------------------------------
// One benchmark per paper figure/table.

func BenchmarkFig1CCInterference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig1(60*sim.Millisecond, 1)
		if len(t.Rows) != len(experiments.Fig1Pairs) {
			b.Fatal("missing rows")
		}
	}
}

func BenchmarkFig3StrawmanVsAGap(b *testing.B) {
	var lastD, lastA float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig3(8)
		lastD, lastA = r.PeaksD[7], r.PeaksA[7]
	}
	b.ReportMetric(lastD, "Dpeak-gbps")
	b.ReportMetric(lastA, "Apeak-gbps")
}

func BenchmarkFig6CompletionVsVMs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig6([]int{1, 4}, 40, 1, 1)
		if len(t.Rows) != 2 {
			b.Fatal("missing rows")
		}
	}
}

func BenchmarkFig7EntityFairness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig7([]int{4}, 40, 1, 1)
		if len(t.Rows) != 1 {
			b.Fatal("missing rows")
		}
	}
}

func BenchmarkFig8FlowCountIsolation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig8([]int{1, 16}, 60*sim.Millisecond, 1)
		if len(t.Rows) != 2 {
			b.Fatal("missing rows")
		}
	}
}

func BenchmarkFig9UDPvsTCP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pq, aq := experiments.Fig9(40*sim.Millisecond, 1)
		if len(pq.Rows) != 5 || len(aq.Rows) != 5 {
			b.Fatal("missing rows")
		}
	}
}

func BenchmarkFig10CCWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fair, total := experiments.Fig10(30, 1, 1)
		if len(fair.Rows) == 0 || len(total.Rows) == 0 {
			b.Fatal("missing rows")
		}
	}
}

func BenchmarkFig11SwitchResources(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Fig11().Rows) != 4 {
			b.Fatal("missing rows")
		}
	}
}

func BenchmarkFig12MemoryScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.Fig12().Rows) != len(experiments.Fig12Counts) {
			b.Fatal("missing rows")
		}
	}
}

func BenchmarkTable2CCSharing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table2(60*sim.Millisecond, 1)
		if len(t.Rows) != len(experiments.Table2Settings) {
			b.Fatal("missing rows")
		}
	}
}

func BenchmarkTable3VMGuarantee(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table3(1)
		if len(t.Rows) != 6 {
			b.Fatal("missing rows")
		}
	}
}

func BenchmarkTable4AQvsPQBehaviour(b *testing.B) {
	var rel float64
	for i := 0; i < b.N; i++ {
		_, rows := experiments.Table4(1)
		rel = rows[0].RelP95DeltaPct
	}
	b.ReportMetric(rel, "cubic-p95-rel%")
}

// BenchmarkExtFabric runs the leaf-spine extension (isolation across ECMP
// and the incast inbound guarantee).
func BenchmarkExtFabric(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.ExtFabric(50*sim.Millisecond, 1).Rows) != 3 {
			b.Fatal("missing rows")
		}
	}
}

// BenchmarkExtPerEntityQueues runs the DRR-vs-AQ scaling comparison.
func BenchmarkExtPerEntityQueues(b *testing.B) {
	var drr, aq float64
	for i := 0; i < b.N; i++ {
		drr, aq = experiments.ExtPerEntityQueues(32, 8, 50*sim.Millisecond, 1)
	}
	b.ReportMetric(drr, "drr-jain")
	b.ReportMetric(aq, "aq-jain")
}

// BenchmarkFluidBG runs the fluid-background fidelity experiment (fig6 and
// fig9 with their backgrounds as fluid rate ODEs) and reports the worst
// foreground deviation from the all-packet baseline.
func BenchmarkFluidBG(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		r := experiments.FluidBG(60*sim.Millisecond, 12, 1, 1)
		worst = r.MaxDeltaPct()
	}
	b.ReportMetric(worst, "maxdelta-pct")
}

// ---------------------------------------------------------------------------
// Ablations for the design choices DESIGN.md calls out.

// BenchmarkAblationAQLimit sweeps the AQ limit (the §6 configuration
// discussion): too small a limit drops excessively and starves the entity;
// the default tracks the physical-queue limit.
func BenchmarkAblationAQLimit(b *testing.B) {
	for _, limit := range []int{4_000, 40_000, 400_000} {
		limit := limit
		b.Run(fmt.Sprintf("limit=%dKB", limit/1000), func(b *testing.B) {
			var gbps float64
			for i := 0; i < b.N; i++ {
				gbps = experiments.AblationAQLimit(limit, 60*sim.Millisecond)
			}
			b.ReportMetric(gbps, "gbps")
		})
	}
}

// BenchmarkAblationWorkConservation compares strict AQ enforcement with the
// §6 empty-queue bypass when half the allocation is idle.
func BenchmarkAblationWorkConservation(b *testing.B) {
	for _, wc := range []bool{false, true} {
		wc := wc
		name := "strict"
		if wc {
			name = "bypass"
		}
		b.Run(name, func(b *testing.B) {
			var gbps float64
			for i := 0; i < b.N; i++ {
				gbps = experiments.AblationWorkConservation(wc, 60*sim.Millisecond)
			}
			b.ReportMetric(gbps, "gbps")
		})
	}
}

// BenchmarkAblationWeightedRebalance compares the controller's active-set
// rebalancing (§4.1) against static weighted rates when an entity goes
// idle: without rebalance the idle share is wasted.
func BenchmarkAblationWeightedRebalance(b *testing.B) {
	for _, rebalance := range []bool{false, true} {
		rebalance := rebalance
		name := "static"
		if rebalance {
			name = "rebalance"
		}
		b.Run(name, func(b *testing.B) {
			var gbps float64
			for i := 0; i < b.N; i++ {
				gbps = experiments.AblationWeightedRebalance(rebalance, 60*sim.Millisecond)
			}
			b.ReportMetric(gbps, "gbps")
		})
	}
}

// BenchmarkAblationReallocator compares static weighted allocations with
// the §6 arrival-rate reallocator when one entity under-uses its share.
func BenchmarkAblationReallocator(b *testing.B) {
	for _, on := range []bool{false, true} {
		on := on
		name := "static"
		if on {
			name = "realloc"
		}
		b.Run(name, func(b *testing.B) {
			var gbps float64
			for i := 0; i < b.N; i++ {
				gbps = experiments.AblationReallocator(on, 100*sim.Millisecond)
			}
			b.ReportMetric(gbps, "gbps")
		})
	}
}
