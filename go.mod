module aqueue

go 1.22
